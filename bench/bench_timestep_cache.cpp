// Time-step operator caching: a transient scenario where the stiffness
// values change only every CHANGE_EVERY-th step (material updates, contact
// re-linearization, adaptive time stepping — anything that leaves K alone
// for stretches of steps). update_values() consults the problem's value
// versions/content hashes and skips the numeric refactorization and
// explicit F̃ reassembly entirely on clean steps, so a cached step must
// cost orders of magnitude less than a full one — the staged-lifecycle
// payoff (Algorithm 2) the set/update/apply split exists for.
//
// `--quick` runs the CI smoke configuration: fewer keys and steps on a
// smaller problem, still asserting for every key that (a) at least one
// step skipped refactorization, (b) cached steps refreshed zero
// subdomains, and (c) the cached operator state matches a cold rebuild.

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common.hpp"
#include "core/dualop_registry.hpp"

using namespace feti;
using namespace feti::bench;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  gpu::ExecutionContext& device = shared_context();
  const std::vector<std::string> keys =
      quick ? std::vector<std::string>{"expl legacy", "impl mkl",
                                       "expl legacy x2"}
            : std::vector<std::string>{"expl legacy", "expl modern",
                                       "impl legacy", "impl mkl", "expl mkl",
                                       "expl hybrid", "expl legacy x2"};
  const int steps = quick ? 8 : 12;
  const int change_every = 4;  // K changes on steps 0, 4, 8, ...

  BuiltProblem bp = build_problem(2, fem::Physics::HeatTransfer,
                                  quick ? 8 : 16, mesh::ElementOrder::Linear);
  const std::size_t n = static_cast<std::size_t>(bp.problem.num_lambdas);
  std::printf("=== time-step cache: K changes every %d-th of %d steps "
              "(%s mode, %d subdomains) ===\n",
              change_every, steps, quick ? "quick" : "full",
              bp.problem.num_subdomains());

  Table table({"key", "full step [ms]", "cached step [ms]", "speedup",
               "skipped/steps"});
  bool all_skipped = true;
  bool cached_steps_clean = true;
  bool matches_cold = true;

  for (const std::string& key : keys) {
    core::DualOpConfig cfg =
        core::recommend_config(key, 2, bp.dofs_per_subdomain);
    auto op = core::make_dual_operator(bp.problem, cfg, &device);
    op->prepare();

    double full_ms = 0.0, cached_ms = 0.0;
    int full_steps = 0, cached_steps = 0;
    for (int step = 0; step < steps; ++step) {
      if (step % change_every == 0) decomp::scale_step(bp.problem, 1.05);
      const core::CacheStats before = op->cache_stats();
      Timer t;
      op->update_values();
      const double ms = t.millis();
      const core::CacheStats after = op->cache_stats();
      const long refreshed =
          after.refreshed_subdomains - before.refreshed_subdomains;
      if (refreshed == 0) {
        cached_ms += ms;
        ++cached_steps;
      } else {
        full_ms += ms;
        ++full_steps;
        // A dirty step must refresh without leaving stale subdomains: a
        // whole-problem change refreshes the whole (owned) set.
        if (after.skipped_subdomains != before.skipped_subdomains)
          cached_steps_clean = false;
      }
      // The change schedule dictates the cache outcome exactly.
      const bool expect_cached = step % change_every != 0;
      if (expect_cached != (refreshed == 0)) cached_steps_clean = false;
    }
    const core::CacheStats stats = op->cache_stats();
    if (stats.skipped_steps < 1) all_skipped = false;

    // Cached operator state must match a cold rebuild on the final values.
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
      x[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
    std::vector<double> y(n, 0.0), y_cold(n, 0.0);
    op->apply(x.data(), y.data());
    auto cold = core::make_dual_operator(bp.problem, cfg, &device);
    cold->prepare();
    cold->update_values();
    cold->apply(x.data(), y_cold.data());
    double scale = 0.0;
    for (double v : y_cold) scale = std::max(scale, std::fabs(v));
    for (std::size_t i = 0; i < n; ++i)
      if (std::fabs(y[i] - y_cold[i]) > 1e-9 * std::max(1.0, scale))
        matches_cold = false;

    const double full_avg = full_steps > 0 ? full_ms / full_steps : 0.0;
    const double cached_avg =
        cached_steps > 0 ? cached_ms / cached_steps : 0.0;
    table.add_row({key, Table::num(full_avg, 4), Table::num(cached_avg, 4),
                   Table::num(cached_avg > 0.0 ? full_avg / cached_avg : 0.0,
                              1),
                   std::to_string(stats.skipped_steps) + "/" +
                       std::to_string(stats.steps)});
  }

  table.print();
  std::printf("\nCSV:\n");
  table.print_csv(std::cout);
  shape_check("every key skipped refactorization on at least one step",
              all_skipped);
  shape_check("cache outcome follows the change schedule exactly "
              "(clean steps refresh zero subdomains)",
              cached_steps_clean);
  shape_check("cached operator state matches a cold rebuild", matches_cold);
  // All three are hard correctness gates (CI runs --quick on every push);
  // the cached-vs-full speedup itself is advisory on loaded machines.
  return (all_skipped && cached_steps_clean && matches_cold) ? 0 : 1;
}
