// Tests of the orthogonal-axes configuration API, the string-keyed
// dual-operator registry, and the batched multi-RHS lifecycle: the nine
// Table-III keys, axis to_string/parse round-trips, legacy-enum
// resolution, and apply(X, Y, nrhs) consistency for every constructible
// approach.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "core/autotune.hpp"
#include "core/dualop_registry.hpp"
#include "core/feti_solver.hpp"
#include "test_helpers.hpp"

namespace feti::core {
namespace {

using decomp::FetiProblem;
using fem::Physics;
using mesh::ElementOrder;

gpu::ExecutionContext& test_context() {
  static gpu::ExecutionContext ctx([] {
    gpu::DeviceConfig cfg;
    cfg.worker_threads = 4;
    cfg.launch_latency_us = 0.0;
    cfg.memory_bytes = 512ull << 20;
    return cfg;
  }());
  return ctx;
}

FetiProblem heat2d_problem(idx cells = 6, idx splits = 2) {
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
  return decomp::build_feti_problem(dec, Physics::HeatTransfer);
}

// ---------------------------------------------------------------------------
// Registry contents and metadata
// ---------------------------------------------------------------------------

TEST(Registry, ListsTheNineTableThreeKeysAndShardedVariants) {
  std::vector<std::string> expected = {
      "impl mkl",       "impl cholmod",   "impl legacy",    "impl modern",
      "expl mkl",       "expl cholmod",   "expl legacy",    "expl modern",
      "expl hybrid",    "expl legacy x2", "expl legacy x4",
      "expl modern x2", "expl modern x4", "impl legacy x2",
      "impl legacy x4", "impl modern x2", "impl modern x4",
      "expl hybrid x2", "expl hybrid x4",
      // fp32-storage variants of the explicit families (+ sharding).
      "expl mkl f32",        "expl cholmod f32",    "expl legacy f32",
      "expl modern f32",     "expl hybrid f32",     "expl legacy f32 x2",
      "expl legacy f32 x4",  "expl modern f32 x2",  "expl modern f32 x4",
      "expl hybrid f32 x2",  "expl hybrid f32 x4",
      // sparsity-aware (boundary-restricted) assembly variants of every
      // explicit family, composed with fp32 storage and sharding.
      "expl mkl sp",           "expl mkl sp f32",
      "expl cholmod sp",       "expl cholmod sp f32",
      "expl legacy sp",        "expl legacy sp f32",
      "expl legacy sp x2",     "expl legacy sp x4",
      "expl legacy sp f32 x2", "expl legacy sp f32 x4",
      "expl modern sp",        "expl modern sp f32",
      "expl modern sp x2",     "expl modern sp x4",
      "expl modern sp f32 x2", "expl modern sp f32 x4",
      "expl hybrid sp",        "expl hybrid sp f32",
      "expl hybrid sp x2",     "expl hybrid sp x4",
      "expl hybrid sp f32 x2", "expl hybrid sp f32 x4"};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(DualOperatorRegistry::instance().keys(), expected);
  EXPECT_EQ(DualOperatorRegistry::instance().size(), expected.size());
}

TEST(Registry, F32KeysCarryThePrecisionAxis) {
  auto& registry = DualOperatorRegistry::instance();
  for (const std::string& key : registry.keys()) {
    const DualOperatorInfo info = registry.info(key);
    const bool f32_key = key.find(" f32") != std::string::npos;
    EXPECT_EQ(info.axes.precision == Precision::F32, f32_key) << key;
    if (f32_key) {
      EXPECT_EQ(info.axes.repr, Representation::Explicit) << key;
    }
  }
}

TEST(Registry, SpKeysCarryTheSparsityAxis) {
  auto& registry = DualOperatorRegistry::instance();
  int sp_keys = 0;
  for (const std::string& key : registry.keys()) {
    const DualOperatorInfo info = registry.info(key);
    const bool sp_key = key.find(" sp") != std::string::npos;
    EXPECT_EQ(info.axes.sparsity, sp_key) << key;
    if (sp_key) {
      ++sp_keys;
      EXPECT_EQ(info.axes.repr, Representation::Explicit) << key;
      // Every sp key has the dense sibling with the tag stripped.
      std::string sibling = key;
      sibling.erase(sibling.find(" sp"), 3);
      EXPECT_TRUE(registry.contains(sibling)) << key;
    }
  }
  // 2 CPU families × {f64, f32} + (legacy, modern, hybrid) × {f64, f32} ×
  // {single, x2, x4}.
  EXPECT_EQ(sp_keys, 22);
}

TEST(Registry, MetadataAgreesWithLegacyCapabilityQueries) {
  auto& registry = DualOperatorRegistry::instance();
  for (Approach a : all_approaches()) {
    const ApproachAxes axes = axes_of(a);
    const std::string key = axes.key();
    ASSERT_TRUE(registry.contains(key)) << key;
    const DualOperatorInfo& info = registry.info(key);
    EXPECT_EQ(info.key, key);
    EXPECT_EQ(info.axes, axes);
    EXPECT_FALSE(info.summary.empty());
    EXPECT_EQ(uses_gpu(a), registry.uses_gpu(key)) << key;
    EXPECT_EQ(uses_gpu(a), axes.device != ExecDevice::Cpu) << key;
    EXPECT_EQ(is_explicit(a), registry.is_explicit(key)) << key;
    EXPECT_EQ(is_explicit(a), axes.repr == Representation::Explicit) << key;
  }
}

TEST(Registry, UnknownKeyIsRejected) {
  auto& registry = DualOperatorRegistry::instance();
  EXPECT_FALSE(registry.contains("expl quantum"));
  EXPECT_FALSE(registry.available("expl quantum", &test_context()));
  EXPECT_THROW((void)registry.info("expl quantum"), std::invalid_argument);
  FetiProblem p = heat2d_problem(4);
  DualOpConfig cfg;
  EXPECT_THROW(registry.create("expl quantum", p, cfg, nullptr),
               std::invalid_argument);
  cfg.key = "not a key";
  EXPECT_THROW(make_dual_operator(p, cfg, nullptr), std::invalid_argument);
}

TEST(Registry, AvailabilityTracksDeviceRequirement) {
  auto& registry = DualOperatorRegistry::instance();
  EXPECT_TRUE(registry.available("impl mkl", nullptr));
  EXPECT_FALSE(registry.available("expl legacy", nullptr));
  EXPECT_TRUE(registry.available("expl legacy", &test_context()));
  FetiProblem p = heat2d_problem(4);
  DualOpConfig cfg;
  EXPECT_THROW(registry.create("expl hybrid", p, cfg, nullptr),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Axis round-trips
// ---------------------------------------------------------------------------

TEST(ConfigAxes, KeyRoundTripsForAllNineApproaches) {
  for (Approach a : all_approaches()) {
    const ApproachAxes axes = axes_of(a);
    EXPECT_TRUE(axes.valid());
    const std::string key = axes.key();
    EXPECT_EQ(key, to_string(a));
    EXPECT_EQ(parse_axes(key), axes) << key;
    EXPECT_EQ(approach_of(axes), a) << key;
    EXPECT_EQ(parse_approach(to_string(a)), a);
  }
}

TEST(ConfigAxes, AxisEnumsRoundTrip) {
  for (Representation r : {Representation::Implicit,
                           Representation::Explicit})
    EXPECT_EQ(parse_representation(to_string(r)), r);
  for (ExecDevice d : {ExecDevice::Cpu, ExecDevice::Gpu, ExecDevice::Hybrid})
    EXPECT_EQ(parse_exec_device(to_string(d)), d);
  for (sparse::Backend b : {sparse::Backend::Simplicial,
                            sparse::Backend::Supernodal}) {
    EXPECT_EQ(sparse::parse_backend(sparse::axis_name(b)), b);
    EXPECT_EQ(sparse::parse_backend(sparse::to_string(b)), b);
  }
  for (gpu::sparse::Api api : {gpu::sparse::Api::Legacy,
                               gpu::sparse::Api::Modern})
    EXPECT_EQ(gpu::sparse::parse_api(gpu::sparse::to_string(api)), api);
  for (Precision p : {Precision::F64, Precision::F32})
    EXPECT_EQ(parse_precision(to_string(p)), p);
  EXPECT_EQ(parse_precision("fp32"), Precision::F32);
  EXPECT_EQ(parse_precision("double"), Precision::F64);
  EXPECT_THROW(parse_precision("f16"), std::invalid_argument);
  EXPECT_THROW(parse_representation("matrix-free"), std::invalid_argument);
  EXPECT_THROW(parse_exec_device("tpu"), std::invalid_argument);
  EXPECT_THROW(sparse::parse_backend("umfpack"), std::invalid_argument);
  EXPECT_THROW(gpu::sparse::parse_api("future"), std::invalid_argument);
}

TEST(ConfigAxes, InvalidTuplesAreRejected) {
  ApproachAxes gpu_supernodal;
  gpu_supernodal.device = ExecDevice::Gpu;
  gpu_supernodal.backend = sparse::Backend::Supernodal;
  EXPECT_FALSE(gpu_supernodal.valid());
  EXPECT_THROW(gpu_supernodal.key(), std::invalid_argument);

  ApproachAxes implicit_hybrid;
  implicit_hybrid.repr = Representation::Implicit;
  implicit_hybrid.device = ExecDevice::Hybrid;
  implicit_hybrid.backend = sparse::Backend::Supernodal;
  EXPECT_FALSE(implicit_hybrid.valid());

  EXPECT_THROW(parse_axes("impl hybrid"), std::invalid_argument);
  EXPECT_THROW(parse_axes("expl"), std::invalid_argument);
  EXPECT_THROW(parse_axes("garbage key"), std::invalid_argument);
  EXPECT_THROW((void)parse_approach("fastest"), std::invalid_argument);

  // The precision axis is explicit-only: fp32 has no F̃ to demote on the
  // implicit families.
  ApproachAxes impl_f32 = parse_axes("impl mkl");
  impl_f32.precision = Precision::F32;
  EXPECT_FALSE(impl_f32.valid());
  EXPECT_THROW(parse_axes("impl mkl f32"), std::invalid_argument);
  EXPECT_THROW(parse_axes("impl legacy f32"), std::invalid_argument);

  // The sparsity axis is explicit-only too: the implicit families never
  // assemble, so there is no solve panel to restrict.
  ApproachAxes impl_sp = parse_axes("impl mkl");
  impl_sp.sparsity = true;
  EXPECT_FALSE(impl_sp.valid());
  EXPECT_THROW(parse_axes("impl mkl sp"), std::invalid_argument);
  EXPECT_THROW(parse_axes("impl legacy sp"), std::invalid_argument);
  EXPECT_THROW(parse_axes("impl modern sp f32"), std::invalid_argument);
}

TEST(ConfigAxes, SpKeysRoundTrip) {
  for (const char* key : {"expl mkl sp", "expl cholmod sp",
                          "expl legacy sp", "expl modern sp",
                          "expl hybrid sp", "expl mkl sp f32",
                          "expl legacy sp f32", "expl hybrid sp f32"}) {
    const ApproachAxes axes = parse_axes(key);
    EXPECT_TRUE(axes.valid()) << key;
    EXPECT_TRUE(axes.sparsity) << key;
    EXPECT_EQ(axes.repr, Representation::Explicit) << key;
    EXPECT_EQ(axes.key(), key);
    // The dense sibling differs only in the sparsity axis, and the " sp"
    // tag sits between the base key and the " f32" suffix.
    ApproachAxes sibling = axes;
    sibling.sparsity = false;
    std::string base(key);
    base.erase(base.find(" sp"), 3);
    EXPECT_EQ(sibling.key(), base);
    // No legacy Approach enumerator exists for sp tuples.
    EXPECT_THROW((void)approach_of(axes), std::invalid_argument);
  }
}

TEST(ConfigAxes, F32KeysRoundTrip) {
  for (const char* key : {"expl mkl f32", "expl cholmod f32",
                          "expl legacy f32", "expl modern f32",
                          "expl hybrid f32"}) {
    const ApproachAxes axes = parse_axes(key);
    EXPECT_TRUE(axes.valid()) << key;
    EXPECT_EQ(axes.precision, Precision::F32) << key;
    EXPECT_EQ(axes.repr, Representation::Explicit) << key;
    EXPECT_EQ(axes.key(), key);
    // The fp64 sibling differs only in the precision axis.
    ApproachAxes sibling = axes;
    sibling.precision = Precision::F64;
    const std::string base(key, std::strlen(key) - 4);
    EXPECT_EQ(sibling.key(), base);
    // No legacy Approach enumerator exists for fp32 tuples.
    EXPECT_THROW((void)approach_of(axes), std::invalid_argument);
  }
}

TEST(ConfigAxes, DualOpConfigKeyOverridesLegacyApproach) {
  DualOpConfig cfg;
  cfg.approach = Approach::ImplMkl;
  EXPECT_EQ(cfg.resolved_key(), "impl mkl");
  cfg.key = "expl legacy";
  EXPECT_EQ(cfg.resolved_key(), "expl legacy");
  EXPECT_EQ(cfg.axes().repr, Representation::Explicit);
  EXPECT_EQ(cfg.axes().device, ExecDevice::Gpu);

  DualOpConfig selected;
  selected.select(axes_of(Approach::ExplHybrid));
  EXPECT_EQ(selected.resolved_key(), "expl hybrid");
}

TEST(Autotune, RecommendConfigFollowsAxes) {
  // CPU axes keep the (unused) defaults; GPU axes pick up the Table-II
  // parameters of their API generation.
  DualOpConfig cpu = recommend_config(parse_axes("expl mkl"), 3, 20000);
  EXPECT_EQ(cpu.resolved_key(), "expl mkl");
  DualOpConfig legacy = recommend_config(parse_axes("expl legacy"), 3, 20000);
  EXPECT_EQ(legacy.gpu.fwd_storage, FactorStorage::Sparse);
  DualOpConfig modern = recommend_config(parse_axes("expl modern"), 3, 20000);
  EXPECT_EQ(modern.gpu.fwd_storage, FactorStorage::Dense);
  // A batched workload asks for more streams, capped at 8.
  DualOpConfig batched = recommend_config(parse_axes("expl legacy"), 3,
                                          20000, /*nrhs_hint=*/6);
  EXPECT_EQ(batched.gpu.streams, 6);
  DualOpConfig huge = recommend_config(parse_axes("expl legacy"), 3, 20000,
                                       /*nrhs_hint=*/64);
  EXPECT_EQ(huge.gpu.streams, 8);
}

// ---------------------------------------------------------------------------
// Legacy enum resolves to the registered implementations
// ---------------------------------------------------------------------------

TEST(LegacyEnum, ResolvesToTheRegisteredImplementation) {
  FetiProblem p = heat2d_problem(4);
  for (Approach a : all_approaches()) {
    DualOpConfig cfg;
    cfg.approach = a;
    auto op = make_dual_operator(p, cfg, &test_context());
    ASSERT_NE(op, nullptr);
    // Every implementation reports its registry key as its name.
    EXPECT_EQ(std::string(op->name()), axes_of(a).key());
  }
}

// ---------------------------------------------------------------------------
// Batched multi-RHS lifecycle
// ---------------------------------------------------------------------------

TEST(BatchedApply, MatchesSequentialAppliesForEveryRegisteredKey) {
  // The full consistency matrix: every registered key (including the x2/x4
  // sharded variants of all three GPU families) × several batch widths.
  // The final narrow batch after the widest one exercises the grow-only
  // batch buffers (a draining lockstep block solve shrinks its batch). The
  // loop-fallback counter staying 0 proves that no key — in particular no
  // GPU key — serves a batch through the base-class loop of single
  // applies.
  FetiProblem p = heat2d_problem(6, 2);
  auto& registry = DualOperatorRegistry::instance();
  const idx n = p.num_lambdas;
  for (const std::string& key : registry.keys()) {
    DualOpConfig cfg = recommend_config(key, 2, p.max_subdomain_dofs());
    auto op = registry.create(key, p, cfg, &test_context());
    op->prepare();
    op->update_values();

    // Tolerance tiers: fp64 keys to fp64 round-off; the " f32" keys run
    // fp32 SYMM/SYMV kernels whose rounding differs between the batched
    // and the per-column traversal, so they get the relaxed fp32 tier.
    const double tol = key.find(" f32") != std::string::npos ? 2e-6 : 1e-10;
    for (idx nrhs : {1, 3, 8, 3}) {
      Rng rng(23u + static_cast<unsigned>(nrhs));
      std::vector<double> x(static_cast<std::size_t>(n) * nrhs);
      for (auto& v : x) v = rng.uniform(-1, 1);
      std::vector<double> y_batch(x.size(), 0.0), y_seq(x.size(), 0.0);
      op->apply(x.data(), y_batch.data(), nrhs);
      for (idx j = 0; j < nrhs; ++j)
        op->apply(x.data() + static_cast<std::size_t>(j) * n,
                  y_seq.data() + static_cast<std::size_t>(j) * n);
      double scale = 0.0;
      for (double v : y_seq) scale = std::max(scale, std::fabs(v));
      for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y_batch[i], y_seq[i], tol * std::max(1.0, scale))
            << "entry " << i << " key " << key << " nrhs " << nrhs;
    }
    EXPECT_EQ(op->loop_fallback_count(), 0)
        << "key '" << key << "' served a batch through the base-class loop";
  }
}

TEST(MixedPrecision, F32KeysMatchTheirF64SiblingsForEveryBatchWidth) {
  // Every registered " f32" key against the key with the suffix stripped
  // (sharded variants included: "expl legacy f32 x2" vs "expl legacy x2"),
  // single and batched applies, within the relaxed fp32 tolerance tier —
  // the storage is demoted to fp32, so ~1e-7 relative per entry is the
  // floor; 1e-5 leaves headroom for accumulation ordering. The fallback
  // counter staying 0 proves the f32 keys serve batches through the real
  // block implementations, not the base-class loop.
  FetiProblem p = heat2d_problem(6, 2);
  auto& registry = DualOperatorRegistry::instance();
  const idx n = p.num_lambdas;
  int f32_keys = 0;
  for (const std::string& key : registry.keys()) {
    const std::size_t pos = key.find(" f32");
    if (pos == std::string::npos) continue;
    ++f32_keys;
    std::string sibling = key;
    sibling.erase(pos, 4);
    ASSERT_TRUE(registry.contains(sibling)) << key;

    auto make = [&](const std::string& k) {
      DualOpConfig cfg = recommend_config(k, 2, p.max_subdomain_dofs());
      auto op = registry.create(k, p, cfg, &test_context());
      op->prepare();
      op->update_values();
      return op;
    };
    auto op32 = make(key);
    auto op64 = make(sibling);
    EXPECT_EQ(std::string(op32->name()), key);

    // fp32 storage of the same F̃ must be (about) half the fp64 bytes.
    if (op64->apply_bytes() > 0) {
      EXPECT_EQ(op32->apply_bytes() * 2, op64->apply_bytes()) << key;
    }

    for (idx nrhs : {1, 3, 8}) {
      Rng rng(57u + static_cast<unsigned>(nrhs));
      std::vector<double> x(static_cast<std::size_t>(n) * nrhs);
      for (auto& v : x) v = rng.uniform(-1, 1);
      std::vector<double> y32(x.size(), 0.0), y64(x.size(), 0.0);
      op32->apply(x.data(), y32.data(), nrhs);
      op64->apply(x.data(), y64.data(), nrhs);
      double scale = 0.0;
      for (double v : y64) scale = std::max(scale, std::fabs(v));
      for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y32[i], y64[i], 1e-5 * std::max(1.0, scale))
            << "entry " << i << " key " << key << " nrhs " << nrhs;
    }
    EXPECT_EQ(op32->loop_fallback_count(), 0) << key;
  }
  // Every dense f32 key gained an sp f32 sibling, doubling the count.
  EXPECT_EQ(f32_keys, 22);
}

TEST(SparsityAware, SpKeysMatchTheirDenseSiblingsForEveryBatchWidth) {
  // Every registered " sp" key against the dense key with the tag stripped
  // (sharded and fp32 variants included: "expl legacy sp f32 x2" vs
  // "expl legacy f32 x2"): the boundary-restricted assembly is an exact
  // algebraic reformulation — F̃ = B_b (E_b K⁺ E_bᵀ) B_bᵀ = B̃ K⁺ B̃ᵀ because
  // B̃'s column support IS the boundary set — so fp64 sp keys match their
  // dense siblings to round-off and only the fp32 tier is relaxed. The
  // solve-column counters certify the panel reduction (nb < m columns per
  // subdomain), and the fallback counter staying 0 proves the sp keys
  // serve batches through the real block implementations.
  FetiProblem p = heat2d_problem(6, 2);
  auto& registry = DualOperatorRegistry::instance();
  const idx n = p.num_lambdas;
  int sp_keys = 0;
  for (const std::string& key : registry.keys()) {
    const std::size_t pos = key.find(" sp");
    if (pos == std::string::npos) continue;
    ++sp_keys;
    std::string sibling = key;
    sibling.erase(pos, 3);
    ASSERT_TRUE(registry.contains(sibling)) << key;

    auto make = [&](const std::string& k) {
      DualOpConfig cfg = recommend_config(k, 2, p.max_subdomain_dofs());
      auto op = registry.create(k, p, cfg, &test_context());
      op->prepare();
      op->update_values();
      return op;
    };
    auto op_sp = make(key);
    auto op_dense = make(sibling);
    EXPECT_EQ(std::string(op_sp->name()), key);

    // The sp assembly solved strictly fewer K⁻¹ columns than the dense one
    // (every interior subdomain has redundant multipliers and interior
    // DOFs on this grid), and both counters are non-zero.
    EXPECT_GT(op_sp->solve_columns(), 0) << key;
    EXPECT_LT(op_sp->solve_columns(), op_dense->solve_columns()) << key;

    const double tol = key.find(" f32") != std::string::npos ? 2e-6 : 1e-10;
    for (idx nrhs : {1, 3, 8}) {
      Rng rng(91u + static_cast<unsigned>(nrhs));
      std::vector<double> x(static_cast<std::size_t>(n) * nrhs);
      for (auto& v : x) v = rng.uniform(-1, 1);
      std::vector<double> y_sp(x.size(), 0.0), y_dense(x.size(), 0.0);
      op_sp->apply(x.data(), y_sp.data(), nrhs);
      op_dense->apply(x.data(), y_dense.data(), nrhs);
      double scale = 0.0;
      for (double v : y_dense) scale = std::max(scale, std::fabs(v));
      for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y_sp[i], y_dense[i], tol * std::max(1.0, scale))
            << "entry " << i << " key " << key << " nrhs " << nrhs;
    }
    EXPECT_EQ(op_sp->loop_fallback_count(), 0) << key;
  }
  EXPECT_EQ(sp_keys, 22);
}

TEST(SparsityAware, EndToEndSolveMatchesReferenceOnSpKeys) {
  // Full PCPG through one sp key per explicit family (CPU Schur, CPU TRSM,
  // GPU, hybrid) against the global direct solve: the boundary-restricted
  // assembly must not move the converged solution.
  FetiProblem p = heat2d_problem(8, 2);
  mesh::Mesh m = mesh::make_grid_2d(8, 8, ElementOrder::Linear);
  const auto u_ref = fem::reference_solve(
      fem::assemble_global(m, Physics::HeatTransfer));
  double scale = 1.0;
  for (double v : u_ref) scale = std::max(scale, std::fabs(v));

  for (const char* key : {"expl mkl sp", "expl cholmod sp", "expl legacy sp",
                          "expl modern sp", "expl hybrid sp"}) {
    FetiSolverOptions opts;
    opts.dualop = recommend_config(key, 2, p.max_subdomain_dofs());
    opts.pcpg.rel_tolerance = 1e-10;
    FetiSolver solver(p, opts, &test_context());
    solver.prepare();
    const FetiStepResult res = solver.solve_step();
    ASSERT_TRUE(res.converged) << key;
    ASSERT_EQ(res.u.size(), u_ref.size());
    for (std::size_t i = 0; i < u_ref.size(); ++i)
      EXPECT_NEAR(res.u[i], u_ref[i], 1e-7 * scale) << key;
  }
}

TEST(MixedPrecision, EndToEndSolveConvergesOnF32Keys) {
  // PCPG stays fully fp64 (the operator is a black box returning fp64 dual
  // vectors), so an fp32 operator converges to the same solution tolerance
  // as its fp64 sibling — possibly in a few more iterations. The tolerance
  // must sit above the fp32 operator's noise floor (cond(F̃) × fp32 eps):
  // pushing a conjugate gradient below the precision of its operator
  // breaks down (p·Fp hits rounding noise) in any precision. Checked
  // against the direct solve for one CPU and one GPU f32 key.
  FetiProblem p = heat2d_problem(8, 2);
  mesh::Mesh m = mesh::make_grid_2d(8, 8, ElementOrder::Linear);
  const auto u_ref = fem::reference_solve(
      fem::assemble_global(m, Physics::HeatTransfer));
  double scale = 1.0;
  for (double v : u_ref) scale = std::max(scale, std::fabs(v));

  auto solve = [&](const std::string& key, double tol) {
    FetiSolverOptions opts;
    opts.dualop = recommend_config(key, 2, p.max_subdomain_dofs());
    opts.pcpg.rel_tolerance = tol;
    FetiSolver solver(p, opts, &test_context());
    solver.prepare();
    return solver.solve_step();
  };

  for (const char* key : {"expl mkl f32", "expl legacy f32"}) {
    const FetiStepResult res = solve(key, 1e-5);
    ASSERT_TRUE(res.converged) << key;
    EXPECT_EQ(res.operator_precision, Precision::F32) << key;
    ASSERT_EQ(res.u.size(), u_ref.size());
    for (std::size_t i = 0; i < u_ref.size(); ++i)
      EXPECT_NEAR(res.u[i], u_ref[i], 1e-5 * scale) << key;

    // The fp64 sibling at the same tolerance: same solution (to that
    // tolerance), an iteration count in the same ballpark, and the
    // precision field reporting F64.
    std::string sibling(key);
    sibling.erase(sibling.find(" f32"), 4);
    const FetiStepResult ref = solve(sibling, 1e-5);
    ASSERT_TRUE(ref.converged) << sibling;
    EXPECT_EQ(ref.operator_precision, Precision::F64) << sibling;
    EXPECT_LE(std::abs(res.pcpg_iterations - ref.pcpg_iterations), 3) << key;
    for (std::size_t i = 0; i < u_ref.size(); ++i)
      EXPECT_NEAR(res.u[i], ref.u[i], 2e-5 * scale) << key;
  }
}

TEST(Autotune, WorkloadHintSelectsF32Storage) {
  const ApproachAxes expl_gpu = parse_axes("expl legacy");
  // No hint: fp64 stays.
  EXPECT_EQ(recommend_config(expl_gpu, 3, 20000).resolved_key(),
            "expl legacy");
  // Bandwidth-bound workloads halve the streamed bytes.
  WorkloadHint bandwidth;
  bandwidth.bandwidth_bound = true;
  EXPECT_EQ(recommend_config(expl_gpu, 3, 20000, 1, {}, bandwidth)
                .resolved_key(),
            "expl legacy f32");
  // A memory budget the fp64 footprint overflows (but fp32 fits) demotes:
  // 8 subdomains × 1000² × 8 B = 64 MB > 48 MB budget; fp32 needs 32 MB.
  WorkloadHint tight;
  tight.num_subdomains = 8;
  tight.lambdas_per_subdomain = 1000;
  tight.memory_budget_bytes = 48ull << 20;
  EXPECT_EQ(recommend_config(expl_gpu, 3, 20000, 1, {}, tight).resolved_key(),
            "expl legacy f32");
  // A comfortable budget keeps fp64; a hopeless one (even fp32 overflows)
  // also keeps fp64 — precision cannot save that run.
  WorkloadHint roomy = tight;
  roomy.memory_budget_bytes = 256ull << 20;
  EXPECT_EQ(recommend_config(expl_gpu, 3, 20000, 1, {}, roomy).resolved_key(),
            "expl legacy");
  WorkloadHint hopeless = tight;
  hopeless.memory_budget_bytes = 8ull << 20;
  EXPECT_EQ(
      recommend_config(expl_gpu, 3, 20000, 1, {}, hopeless).resolved_key(),
      "expl legacy");
  // The sharded remap composes: the budget is per shard, and the f32 tag
  // sits before the shard suffix.
  gpu::DeviceTopology two;
  two.num_devices = 2;
  WorkloadHint per_shard = tight;
  per_shard.memory_budget_bytes = 24ull << 20;  // 2 shards × 24 MB < 64 MB
  EXPECT_EQ(
      recommend_config(expl_gpu, 3, 20000, 1, two, per_shard).resolved_key(),
      "expl legacy f32 x2");
  // Implicit families have no F̃ storage: the hint never touches them.
  EXPECT_EQ(recommend_config(parse_axes("impl legacy"), 3, 20000, 1, {},
                             bandwidth)
                .resolved_key(),
            "impl legacy");
}

TEST(Autotune, WorkloadHintSelectsSparsityAwareAssembly) {
  const ApproachAxes expl_gpu = parse_axes("expl legacy");
  // No hint (boundary fraction unknown): the dense assembly stays.
  EXPECT_EQ(recommend_config(expl_gpu, 3, 20000).resolved_key(),
            "expl legacy");
  // Interior-heavy subdomains (small boundary fraction) select the
  // boundary-restricted solve panel.
  WorkloadHint interior;
  interior.boundary_fraction = 0.2;
  EXPECT_EQ(recommend_config(expl_gpu, 3, 20000, 1, {}, interior)
                .resolved_key(),
            "expl legacy sp");
  // Boundary-dominated subdomains keep the dense panel: the sp expansion
  // SpMMs would be pure overhead.
  WorkloadHint surface;
  surface.boundary_fraction = 0.9;
  EXPECT_EQ(recommend_config(expl_gpu, 3, 20000, 1, {}, surface)
                .resolved_key(),
            "expl legacy");
  // Composes with the precision hint and the sharded topology remap: the
  // tags stack as "<base> sp f32 xN" per the key grammar.
  WorkloadHint both = interior;
  both.bandwidth_bound = true;
  EXPECT_EQ(recommend_config(expl_gpu, 3, 20000, 1, {}, both).resolved_key(),
            "expl legacy sp f32");
  gpu::DeviceTopology two;
  two.num_devices = 2;
  EXPECT_EQ(recommend_config(expl_gpu, 3, 20000, 1, two, both).resolved_key(),
            "expl legacy sp f32 x2");
  // CPU explicit axes take the hint too; implicit families never do.
  EXPECT_EQ(recommend_config(parse_axes("expl mkl"), 3, 20000, 1, {},
                             interior)
                .resolved_key(),
            "expl mkl sp");
  EXPECT_EQ(recommend_config(parse_axes("impl legacy"), 3, 20000, 1, {},
                             interior)
                .resolved_key(),
            "impl legacy");
}

namespace {

/// Minimal operator that does NOT override apply_many: batches degrade to
/// the counted base-class loop (what every built-in operator must avoid).
class LoopOnlyOp final : public DualOperator {
 public:
  using DualOperator::DualOperator;
  void prepare() override {}
  void update_values() override {}
  void kplus_solve(idx, const double*, double*) const override {}
  [[nodiscard]] const char* name() const override { return "loop only"; }

 protected:
  void apply_one(const double* x, double* y) override {
    std::copy_n(x, p_.num_lambdas, y);
  }
};

}  // namespace

TEST(BatchedApply, BaseClassLoopFallbackIsCounted) {
  FetiProblem p = heat2d_problem(4);
  LoopOnlyOp op(p);
  EXPECT_EQ(op.loop_fallback_count(), 0);
  const std::size_t n = static_cast<std::size_t>(p.num_lambdas);
  std::vector<double> x(n * 2, 1.0), y(x.size(), 0.0);
  op.apply(x.data(), y.data());
  op.apply(x.data(), y.data(), 1);  // single column routes to apply_one
  EXPECT_EQ(op.loop_fallback_count(), 0);
  op.apply(x.data(), y.data(), 2);
  EXPECT_EQ(op.loop_fallback_count(), 1);
}

TEST(BatchedApply, SmallBatchEdgeCases) {
  FetiProblem p = heat2d_problem(4);
  DualOpConfig cfg;
  cfg.key = "expl mkl";
  auto op = make_dual_operator(p, cfg);
  op->prepare();
  op->update_values();
  const idx n = p.num_lambdas;
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y1(x.size(), 0.0), y2(x.size(), 0.0);
  op->apply(x.data(), y1.data());
  op->apply(x.data(), y2.data(), 1);  // nrhs == 1 routes to the same path
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y1[i], y2[i]);
  op->apply(nullptr, nullptr, 0);  // nrhs == 0 is a no-op
  EXPECT_THROW(op->apply(x.data(), y1.data(), -1), std::invalid_argument);
}

TEST(PcpgBlock, SolveManyMatchesIndividualSolves) {
  FetiProblem p = heat2d_problem(8, 2);
  DualOpConfig cfg =
      recommend_config(parse_axes("expl mkl"), 2, p.max_subdomain_dofs());
  auto op = make_dual_operator(p, cfg);
  op->prepare();
  op->update_values();
  Projector projector(p);

  std::vector<double> d0(static_cast<std::size_t>(p.num_lambdas));
  op->compute_d(d0.data());
  std::vector<std::vector<double>> ds;
  for (int j = 0; j < 3; ++j) {
    ds.push_back(d0);
    for (auto& v : ds.back()) v *= 1.0 + 0.5 * j;
  }

  PcpgOptions popts;
  popts.rel_tolerance = 1e-10;
  Pcpg pcpg(*op, projector, popts);
  std::vector<PcpgResult> block = pcpg.solve_many(ds);
  ASSERT_EQ(block.size(), ds.size());
  for (std::size_t j = 0; j < ds.size(); ++j) {
    PcpgResult single = pcpg.solve(ds[j]);
    ASSERT_TRUE(block[j].converged);
    ASSERT_TRUE(single.converged);
    // The batched SYMM and the single-vector SYMV round differently, which
    // can move the tolerance crossing by one iteration.
    EXPECT_NEAR(block[j].iterations, single.iterations, 1) << "system " << j;
    double scale = 0.0;
    for (double v : single.lambda) scale = std::max(scale, std::fabs(v));
    for (std::size_t i = 0; i < single.lambda.size(); ++i)
      EXPECT_NEAR(block[j].lambda[i], single.lambda[i],
                  1e-8 * std::max(1.0, scale));
    ASSERT_EQ(block[j].alpha.size(), single.alpha.size());
    for (std::size_t i = 0; i < single.alpha.size(); ++i)
      EXPECT_NEAR(block[j].alpha[i], single.alpha[i], 1e-8);
  }
}

// ---------------------------------------------------------------------------
// Execution context, device pool, and sharded operators
// ---------------------------------------------------------------------------

TEST(ExecutionContext, StreamSpanClampsAndSharesThePool) {
  gpu::DeviceConfig cfg;
  cfg.worker_threads = 2;
  cfg.launch_latency_us = 0.0;
  cfg.memory_bytes = 16ull << 20;
  gpu::ExecutionContext ctx(cfg);
  EXPECT_EQ(ctx.pooled_streams(), 0);
  EXPECT_EQ(ctx.stream_span(3).size(), 3u);
  EXPECT_EQ(ctx.pooled_streams(), 3);
  // A smaller request reuses the existing streams; a zero/negative request
  // clamps to one.
  EXPECT_EQ(ctx.stream_span(2).size(), 2u);
  EXPECT_EQ(ctx.stream_span(0).size(), 1u);
  EXPECT_EQ(ctx.pooled_streams(), 3);
  EXPECT_EQ(ctx.stream_span(10000).size(),
            static_cast<std::size_t>(gpu::ExecutionContext::kMaxStreams));
  // The main stream is distinct from the worker pool and stable.
  gpu::Stream main1 = ctx.main_stream();
  gpu::Stream main2 = ctx.main_stream();
  EXPECT_TRUE(main1.valid());
  EXPECT_TRUE(main2.valid());
  ctx.synchronize();
}

TEST(DevicePool, PartitionsSubdomainsRoundRobin) {
  gpu::DeviceConfig cfg;
  cfg.worker_threads = 4;
  cfg.launch_latency_us = 0.0;
  cfg.memory_bytes = 64ull << 20;
  gpu::DevicePool pool(3, gpu::DevicePool::split_config(cfg, 3));
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.topology().num_devices, 3);
  // Every subdomain is owned by exactly one shard.
  const idx nsub = 8;
  std::vector<int> seen(static_cast<std::size_t>(nsub), 0);
  for (std::size_t shard = 0; shard < pool.size(); ++shard)
    for (idx s : pool.owned_subdomains(shard, nsub)) {
      EXPECT_EQ(pool.shard_of(s), shard);
      seen[static_cast<std::size_t>(s)] += 1;
    }
  for (int count : seen) EXPECT_EQ(count, 1);
  // The split keeps at least one worker per shard and divides memory.
  const gpu::DeviceConfig shard_cfg = pool.device(0).config();
  EXPECT_GE(shard_cfg.worker_threads, 1);
  EXPECT_LE(shard_cfg.memory_bytes, cfg.memory_bytes / 3 + 1);
}

TEST(Autotune, TopologyHintSelectsShardedVariantsAndStreams) {
  const ApproachAxes axes = parse_axes("expl legacy");
  gpu::DeviceTopology two;
  two.num_devices = 2;
  EXPECT_EQ(recommend_config(axes, 3, 20000, 1, two).resolved_key(),
            "expl legacy x2");
  gpu::DeviceTopology many;
  many.num_devices = 8;
  many.streams_per_device = 6;
  DualOpConfig cfg = recommend_config(axes, 3, 20000, 1, many);
  EXPECT_EQ(cfg.resolved_key(), "expl legacy x4");
  EXPECT_EQ(cfg.gpu.streams, 6);
  // Implicit and hybrid families have sharded registrations too, so the
  // topology routes them as well; CPU axes are unaffected.
  EXPECT_EQ(recommend_config(parse_axes("impl legacy"), 3, 20000, 1, many)
                .resolved_key(),
            "impl legacy x4");
  EXPECT_EQ(recommend_config(parse_axes("expl hybrid"), 3, 20000, 1, two)
                .resolved_key(),
            "expl hybrid x2");
  EXPECT_EQ(recommend_config(parse_axes("expl mkl"), 3, 20000, 1, many)
                .resolved_key(),
            "expl mkl");
  EXPECT_EQ(recommend_config(parse_axes("impl cholmod"), 3, 20000, 1, many)
                .resolved_key(),
            "impl cholmod");
}

TEST(ShardedOperator, MatchesSingleDeviceOperator) {
  // 3x3 subdomains so two shards own unequal subsets (5 + 4).
  FetiProblem p = heat2d_problem(9, 3);
  const idx n = p.num_lambdas;
  Rng rng(71);
  std::vector<double> x(static_cast<std::size_t>(n) * 2);
  for (auto& v : x) v = rng.uniform(-1, 1);

  auto run = [&](const std::string& key) {
    gpu::DeviceConfig cfg;
    cfg.worker_threads = 4;
    cfg.launch_latency_us = 0.0;
    cfg.memory_bytes = 512ull << 20;
    gpu::ExecutionContext ctx(cfg);
    auto& registry = DualOperatorRegistry::instance();
    DualOpConfig c = recommend_config(key, 2, p.max_subdomain_dofs());
    auto op = registry.create(key, p, c, &ctx);
    EXPECT_EQ(std::string(op->name()), key);
    op->prepare();
    op->update_values();
    std::vector<double> y(x.size(), 0.0);
    op->apply(x.data(), y.data(), 2);
    std::vector<double> d(static_cast<std::size_t>(n));
    op->compute_d(d.data());
    return std::make_pair(std::move(y), std::move(d));
  };

  const auto [y_single, d_single] = run("expl legacy");
  const auto [y_sharded, d_sharded] = run("expl legacy x2");
  double scale = 0.0;
  for (double v : y_single) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < y_single.size(); ++i)
    EXPECT_NEAR(y_sharded[i], y_single[i], 1e-10 * std::max(1.0, scale))
        << "entry " << i;
  // compute_d routes kplus_solve through the owning shard.
  for (std::size_t i = 0; i < d_single.size(); ++i)
    EXPECT_NEAR(d_sharded[i], d_single[i], 1e-10);
}

TEST(ShardedOperator, EndToEndSolveMatchesReference) {
  FetiProblem p = heat2d_problem(8, 2);
  gpu::DeviceConfig cfg;
  cfg.worker_threads = 4;
  cfg.launch_latency_us = 0.0;
  cfg.memory_bytes = 512ull << 20;
  gpu::ExecutionContext ctx(cfg);
  FetiSolverOptions opts;
  opts.dualop = recommend_config("expl legacy x2", 2,
                                 p.max_subdomain_dofs());
  opts.pcpg.rel_tolerance = 1e-10;
  FetiSolver solver(p, opts, &ctx);
  solver.prepare();
  FetiStepResult res = solver.solve_step();
  ASSERT_TRUE(res.converged);
  mesh::Mesh m = mesh::make_grid_2d(8, 8, ElementOrder::Linear);
  auto u_ref = fem::reference_solve(
      fem::assemble_global(m, Physics::HeatTransfer));
  ASSERT_EQ(res.u.size(), u_ref.size());
  for (std::size_t i = 0; i < u_ref.size(); ++i)
    EXPECT_NEAR(res.u[i], u_ref[i], 1e-7);
}

TEST(ShardedOperator, ShardsExceedingSubdomainsOwnNothing) {
  // x4 on a single-subdomain decomposition (three shards own nothing at
  // all) and on a 2x2 one (each shard owns exactly one subdomain).
  // Regression for the former: an empty owned list must not fall into the
  // "empty means all subdomains" factory convention, which would
  // multiply-count every contribution in the merged dual vector.
  for (idx splits : {1, 2}) {
    FetiProblem p = heat2d_problem(4, splits);
    gpu::DeviceConfig cfg;
    cfg.worker_threads = 4;
    cfg.launch_latency_us = 0.0;
    cfg.memory_bytes = 512ull << 20;
    gpu::ExecutionContext ctx(cfg);
    auto& registry = DualOperatorRegistry::instance();
    DualOpConfig c = recommend_config("expl legacy x4", 2,
                                      p.max_subdomain_dofs());
    auto op = registry.create("expl legacy x4", p, c, &ctx);
    op->prepare();
    op->update_values();

    DualOpConfig ref_cfg;
    ref_cfg.approach = Approach::ImplMkl;
    auto ref = make_dual_operator(p, ref_cfg);
    ref->prepare();
    ref->update_values();

    std::vector<double> x(static_cast<std::size_t>(p.num_lambdas), 1.0);
    std::vector<double> y(x.size()), y_ref(x.size());
    op->apply(x.data(), y.data());
    ref->apply(x.data(), y_ref.data());
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_NEAR(y[i], y_ref[i], 1e-9) << "splits " << splits;
  }
}

TEST(FetiSolverBlock, SolveStepManyMatchesSolveStepOnGpuKey) {
  // The solver-level multi-RHS entry: one preprocessing, all systems in
  // lockstep through Pcpg::solve_many, every iteration one batched apply —
  // served device-side (fallback counter stays 0) on a GPU key.
  FetiProblem p = heat2d_problem(8, 2);
  gpu::DeviceConfig cfg;
  cfg.worker_threads = 4;
  cfg.launch_latency_us = 0.0;
  cfg.memory_bytes = 512ull << 20;
  gpu::ExecutionContext ctx(cfg);
  FetiSolverOptions opts;
  opts.dualop = recommend_config("expl legacy", 2, p.max_subdomain_dofs());
  opts.pcpg.rel_tolerance = 1e-10;
  FetiSolver solver(p, opts, &ctx);
  solver.prepare();
  FetiStepResult single = solver.solve_step();
  ASSERT_TRUE(single.converged);

  std::vector<double> d(static_cast<std::size_t>(p.num_lambdas));
  solver.dual_operator().compute_d(d.data());
  std::vector<double> d_scaled = d;
  for (auto& v : d_scaled) v *= 1.5;
  std::vector<FetiStepResult> block = solver.solve_step_many({d, d_scaled});
  ASSERT_EQ(block.size(), 2u);
  ASSERT_TRUE(block[0].converged);
  ASSERT_TRUE(block[1].converged);
  EXPECT_EQ(solver.dual_operator().loop_fallback_count(), 0);
  // System 0 solves the physical d, so its primal solution matches the
  // single-RHS step.
  ASSERT_EQ(block[0].u.size(), single.u.size());
  double scale = 0.0;
  for (double v : single.u) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < single.u.size(); ++i)
    EXPECT_NEAR(block[0].u[i], single.u[i], 1e-7 * std::max(1.0, scale));
  EXPECT_TRUE(solver.solve_step_many({}).empty());
}

TEST(PcpgBlock, EmptyBatchReturnsEmpty) {
  FetiProblem p = heat2d_problem(4);
  DualOpConfig cfg;
  auto op = make_dual_operator(p, cfg);
  op->prepare();
  op->update_values();
  Projector projector(p);
  Pcpg pcpg(*op, projector, PcpgOptions{});
  EXPECT_TRUE(pcpg.solve_many({}).empty());
}

}  // namespace
}  // namespace feti::core
