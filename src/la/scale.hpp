#pragma once

// Shared beta-scaling helpers for the BLAS-like kernels.
//
// BLAS beta semantics: beta == 0 must OVERWRITE the destination without
// reading it — the output may be uninitialized memory (e.g. freshly
// allocated device buffers), and 0 * NaN would otherwise poison the result
// permanently.

#include "la/dense.hpp"

namespace feti::la::detail {

/// y = beta * y, without reading y when beta == 0.
inline void store_scaled(double beta, double& y) {
  if (beta == 0.0)
    y = 0.0;
  else if (beta != 1.0)
    y *= beta;
}

inline void scale_vec(idx n, double beta, double* y) {
  if (beta == 0.0) {
    for (idx i = 0; i < n; ++i) y[i] = 0.0;
  } else if (beta != 1.0) {
    for (idx i = 0; i < n; ++i) y[i] *= beta;
  }
}

}  // namespace feti::la::detail
