#include "decomp/heterogeneous.hpp"

#include <algorithm>

namespace feti::decomp {

namespace {

fem::Material scaled(const fem::Material& base, double jump) {
  fem::Material m = base;
  m.conductivity *= jump;
  m.youngs_modulus *= jump;
  return m;
}

}  // namespace

std::vector<fem::Material> checkerboard_materials_2d(
    idx sx, idx sy, double jump, const fem::Material& base) {
  check(sx > 0 && sy > 0, "checkerboard_materials_2d: grid must be positive");
  check(jump > 0.0, "checkerboard_materials_2d: jump must be positive");
  const fem::Material hard = scaled(base, jump);
  std::vector<fem::Material> mats;
  mats.reserve(static_cast<std::size_t>(sx) * static_cast<std::size_t>(sy));
  // Same loop order as decompose_2d: q (rows) outer, p (columns) inner.
  for (idx q = 0; q < sy; ++q)
    for (idx p = 0; p < sx; ++p)
      mats.push_back((p + q) % 2 == 1 ? hard : base);
  return mats;
}

std::vector<fem::Material> checkerboard_materials_3d(
    idx sx, idx sy, idx sz, double jump, const fem::Material& base) {
  check(sx > 0 && sy > 0 && sz > 0,
        "checkerboard_materials_3d: grid must be positive");
  check(jump > 0.0, "checkerboard_materials_3d: jump must be positive");
  const fem::Material hard = scaled(base, jump);
  std::vector<fem::Material> mats;
  mats.reserve(static_cast<std::size_t>(sx) * static_cast<std::size_t>(sy) *
               static_cast<std::size_t>(sz));
  // Same loop order as decompose_3d: r, then q, then p.
  for (idx r = 0; r < sz; ++r)
    for (idx q = 0; q < sy; ++q)
      for (idx p = 0; p < sx; ++p)
        mats.push_back((p + q + r) % 2 == 1 ? hard : base);
  return mats;
}

double coefficient_jump(const std::vector<fem::Material>& mats) {
  if (mats.empty()) return 1.0;
  double cmin = mats.front().conductivity, cmax = cmin;
  double emin = mats.front().youngs_modulus, emax = emin;
  for (const auto& m : mats) {
    cmin = std::min(cmin, m.conductivity);
    cmax = std::max(cmax, m.conductivity);
    emin = std::min(emin, m.youngs_modulus);
    emax = std::max(emax, m.youngs_modulus);
  }
  const double cjump = cmin > 0.0 ? cmax / cmin : 1.0;
  const double ejump = emin > 0.0 ? emax / emin : 1.0;
  return std::max(cjump, ejump);
}

}  // namespace feti::decomp
