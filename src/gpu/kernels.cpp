#include "gpu/kernels.hpp"

#include <algorithm>

namespace feti::gpu::kernels {

// The scatter/gather kernels are header templates (instantiated for the
// fp64 and fp32 local-panel scalars); only the non-template utilities and
// the demotion kernels live here.

void fill_zero(Stream& s, double* data, idx n) {
  s.submit([data, n] { std::fill_n(data, n, 0.0); });
}

void demote(Stream& s, DeviceDense src, DeviceDenseF32 dst) {
  s.submit([src, dst] { la::demote(src.cview(), dst.view()); });
}

void demote_triangle(Stream& s, la::Uplo uplo, DeviceDense src,
                     DeviceDenseF32 dst) {
  s.submit(
      [uplo, src, dst] { la::demote_triangle(uplo, src.cview(), dst.view()); });
}

void symmetrize(Stream& s, la::Uplo stored, DeviceDense a) {
  s.submit([stored, a] { la::symmetrize_from(a.view(), stored); });
}

}  // namespace feti::gpu::kernels
