#pragma once

// Elimination tree and symbolic Cholesky analysis.
//
// The paper's solvers split factorization into symbolic and numerical stages
// (Section III); this header provides the symbolic stage shared by the
// simplicial and supernodal numeric factorizations. The symbolic pass is run
// once per subdomain in the preparation phase; numeric factorization is
// repeated every time step.

#include <vector>

#include "la/csr.hpp"

namespace feti::sparse {

/// Elimination tree of a symmetric matrix given by its full pattern
/// (both triangles). parent[i] is the parent column, -1 for roots.
std::vector<idx> elimination_tree(const la::Csr& a);

/// Postorder of the forest described by parent[] (children in increasing
/// order). Returns post[new] = old, usable as a symmetric permutation.
std::vector<idx> postorder_forest(const std::vector<idx>& parent);

/// Result of the symbolic Cholesky analysis of a (permuted) matrix.
struct SymbolicFactor {
  idx n = 0;
  std::vector<idx> parent;      ///< elimination tree
  std::vector<idx> colcount;    ///< nnz per column of L, incl. diagonal
  std::vector<idx> colptr;      ///< CSC column pointers of L (size n+1)
  /// Row-wise pattern of L excluding the diagonal: row k's strictly-lower
  /// column indices, ascending, in rowpat[rowpat_ptr[k] .. rowpat_ptr[k+1]).
  std::vector<idx> rowpat_ptr;
  std::vector<idx> rowpat;
  widx nnz = 0;  ///< total nnz(L) including the diagonal
};

/// Full symbolic analysis (etree + row patterns + column counts) of a
/// symmetric positive definite pattern. `a` must already be permuted.
SymbolicFactor symbolic_cholesky(const la::Csr& a);

}  // namespace feti::sparse
