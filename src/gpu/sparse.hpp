#pragma once

// vcuSPARSE: sparse kernels with stream semantics — the cuSPARSE
// substitute, in two API flavours mirroring the paper's "legacy" (CUDA
// 11.7) and "modern" (CUDA 12.4 generic API) libraries:
//
//  * Legacy sparse TRSM: level-scheduled block algorithm; solves row-major
//    right-hand sides natively (vectorized across RHS columns); a
//    column-major RHS costs a temporary row-major copy of the RHS, and a
//    factor supplied in the non-native order costs a persistent value-
//    permutation buffer of the size of the factor — both effects the paper
//    reports for legacy cuSPARSE.
//  * Modern SpSM: generic implementation that always normalizes the factor
//    into an internal copy and stages the RHS through a persistently
//    allocated dense workspace, then solves column-by-column without
//    cross-RHS vectorization. This reproduces both observations of the
//    paper: the modern sparse TRSM is much slower, and it "requires very
//    large persistently allocated memory buffers".
//
// Factor order convention (Table I): RowMajor = CSR of the lower factor L;
// ColMajor = CSC of L, which equals CSR of U = L^T and is the orientation
// our simplicial solver exports natively.

#include <string_view>

#include "gpu/data.hpp"
#include "gpu/runtime.hpp"

namespace feti::gpu::sparse {

enum class Api : std::uint8_t { Legacy, Modern };

const char* to_string(Api a);

/// Inverse of to_string ("legacy" / "modern"). Throws std::invalid_argument
/// on unknown names.
Api parse_api(std::string_view s);

/// Persistent analysis object for a triangular solve with dense RHS
/// (cusparse csrsm2 / SpSM analogue). Creation performs the persistent
/// allocations and structure uploads; values are refreshed per time step.
class SpTrsmPlan {
 public:
  SpTrsmPlan() = default;
  /// `host_upper` is U = L^T in CSR with the diagonal first per row.
  /// `forward` selects L x = b (true) or L^T x = b (false).
  SpTrsmPlan(Device& dev, Stream& s, Api api, const la::Csr& host_upper,
             la::Layout factor_order, bool forward, la::Layout rhs_layout,
             idx max_rhs_cols);
  ~SpTrsmPlan();

  SpTrsmPlan(SpTrsmPlan&& o) noexcept;
  SpTrsmPlan& operator=(SpTrsmPlan&& o) noexcept;
  SpTrsmPlan(const SpTrsmPlan&) = delete;
  SpTrsmPlan& operator=(const SpTrsmPlan&) = delete;

  /// Stream-ordered refresh of the factor values from a new numeric
  /// factorization (same structure).
  void update_values(Stream& s, const la::Csr& host_upper);

  /// Solves op(factor) X = B in place of the device matrix `b`. `workspace`
  /// must point to at least workspace_bytes(b.cols) of temporary device
  /// memory for the legacy API (modern uses its persistent buffers);
  /// may be null when workspace_bytes is 0.
  void solve(Stream& s, DeviceDense b, void* workspace) const;

  /// Temporary workspace required per call (legacy col-major RHS).
  [[nodiscard]] std::size_t workspace_bytes(idx rhs_cols) const;
  /// Persistent device memory held by this plan.
  [[nodiscard]] std::size_t persistent_bytes() const {
    return persistent_bytes_;
  }
  /// Depth of the level schedule (legacy analysis introspection).
  [[nodiscard]] idx level_count() const { return levels_; }
  [[nodiscard]] bool valid() const { return dev_ != nullptr; }

 private:
  void release();

  Device* dev_ = nullptr;
  Api api_ = Api::Legacy;
  bool forward_ = true;
  la::Layout factor_order_ = la::Layout::ColMajor;
  la::Layout rhs_layout_ = la::Layout::RowMajor;
  idx n_ = 0;
  idx nnz_ = 0;
  idx max_cols_ = 0;
  DeviceCsr factor_;           ///< oriented factor (legacy) / lower (modern)
  double* staging_ = nullptr;  ///< uploaded U values (when reordering)
  idx* valperm_ = nullptr;     ///< U-value index -> factor value index
  double* modern_work_ = nullptr;  ///< persistent dense RHS workspace
  idx levels_ = 0;
  std::size_t persistent_bytes_ = 0;
};

/// y = alpha * op(A) x + beta * y.
void spmv(Stream& s, double alpha, DeviceCsr a, la::Trans trans,
          const double* x, double beta, double* y);

/// C = alpha * op(A) * B + beta * C (A sparse, B/C dense device).
void spmm(Stream& s, double alpha, DeviceCsr a, la::Trans trans,
          DeviceDense b, double beta, DeviceDense c);

/// Dense conversion on the device (zero-fills first).
void csr_to_dense(Stream& s, DeviceCsr a, DeviceDense out);
/// out = A^T as dense (builds the dense RHS B̃ᵀ directly from B̃).
void csr_to_dense_transposed(Stream& s, DeviceCsr a, DeviceDense out);

}  // namespace feti::gpu::sparse
