#pragma once

// String-keyed registry of preconditioner implementations — the
// preconditioner-layer mirror of core::DualOperatorRegistry.
//
// Key grammar: `<kind>[ <scaling>][ gpu]` with
//   kind    ∈ {none, lumped, superlumped, dirichlet}
//   scaling ∈ {multiplicity, stiffness}   (omitted = unscaled)
//   gpu     — device-side application on an ExecutionContext
// e.g. "lumped", "dirichlet stiffness", "superlumped multiplicity gpu".
// "none" has no scaling or device variants. The empty string normalizes to
// "none" (normalize_key below), so default-constructed options resolve.
//
// Every registered factory must return an *unprepared* preconditioner
// honoring the staged lifecycle (prepare once per pattern, update_values
// per step with dirty tracking, batched apply without loop degradation) —
// the same contract as the dual-operator registry, documented in
// docs/ARCHITECTURE.md.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "precond/preconditioner.hpp"

namespace feti::gpu {
class ExecutionContext;
}

namespace feti::precond {

/// Metadata registered alongside each factory.
struct PreconditionerInfo {
  std::string key;           ///< e.g. "dirichlet stiffness gpu"
  Kind kind = Kind::None;
  Scaling scaling = Scaling::None;
  bool gpu = false;          ///< device-side M⁻¹ application
  std::string summary;       ///< one-line description for listings
  [[nodiscard]] bool requires_device() const { return gpu; }
};

/// Factories receive the execution resources explicitly: the context is
/// required for GPU-backed implementations and ignored by CPU ones.
using PreconditionerFactory = std::function<std::unique_ptr<Preconditioner>(
    const decomp::FetiProblem&, gpu::ExecutionContext*)>;

/// "" → "none"; anything else passes through unchanged.
[[nodiscard]] std::string normalize_key(std::string_view key);

class PreconditionerRegistry {
 public:
  /// The process-wide registry, with the built-in kinds registered on
  /// first use.
  static PreconditionerRegistry& instance();

  /// Registers a factory under info.key. Throws std::invalid_argument on a
  /// duplicate or empty key or a null factory.
  void add(PreconditionerInfo info, PreconditionerFactory factory);

  [[nodiscard]] bool contains(std::string_view key) const;
  /// Metadata lookup (copy); throws std::invalid_argument for unknown keys.
  [[nodiscard]] PreconditionerInfo info(std::string_view key) const;
  /// All registered keys, sorted.
  [[nodiscard]] std::vector<std::string> keys() const;
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] bool uses_gpu(std::string_view key) const;
  /// Whether the implementation can be constructed in this process given
  /// the (possibly null) execution context.
  [[nodiscard]] bool available(std::string_view key,
                               const gpu::ExecutionContext* context) const;

  /// Constructs the implementation registered under `key`. Throws
  /// std::invalid_argument for unknown keys and when the implementation
  /// requires an execution context but none is supplied. The returned
  /// preconditioner is unprepared: call prepare() once, then
  /// update_values() before the first apply().
  [[nodiscard]] std::unique_ptr<Preconditioner> create(
      std::string_view key, const decomp::FetiProblem& problem,
      gpu::ExecutionContext* context = nullptr) const;

 private:
  struct Entry {
    PreconditionerInfo info;
    PreconditionerFactory factory;
  };
  /// Requires mutex_ held.
  const Entry* find_locked(std::string_view key) const;
  /// Copies the entry out under mutex_; throws for unknown keys.
  Entry at(std::string_view key) const;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// Registers the built-in block preconditioners (lumped / superlumped /
/// dirichlet × scalings × cpu/gpu, plus "none"); called once by
/// PreconditionerRegistry::instance(). Lives in block_precond.cpp.
void register_block_preconditioners(PreconditionerRegistry& registry);

}  // namespace feti::precond
