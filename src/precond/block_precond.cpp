// The built-in block preconditioners: per-subdomain dual blocks
// M̃ᵢ (lumped / superlumped / dirichlet) assembled on the CPU, applied as
// M⁻¹ x = Σᵢ scatterᵀ D M̃ᵢ D scatter x either host-side (one SYMV/SYMM per
// subdomain) or device-side (batched weighted scatter/gather kernels plus
// one vcuBLAS SYMV/SYMM per subdomain, mirroring the hybrid dual-operator
// apply path). Registration of all key-grammar points lives at the bottom.

#include <omp.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "decomp/boundary.hpp"
#include "gpu/blas.hpp"
#include "gpu/context.hpp"
#include "gpu/data.hpp"
#include "gpu/kernels.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"
#include "precond/precond_registry.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/supernodal_cholesky.hpp"
#include "util/omp_guard.hpp"

namespace feti::precond {

namespace {

void zero_view(la::DenseView v) {
  for (idx c = 0; c < v.cols; ++c)
    for (idx r = 0; r < v.rows; ++r) v.at(r, c) = 0.0;
}

// ---------------------------------------------------------------------------
// Identity ("none")
// ---------------------------------------------------------------------------

class IdentityPreconditioner final : public Preconditioner {
 public:
  using Preconditioner::Preconditioner;

  void prepare() override {}
  void update_values() override {
    // Nothing cached, but the lifecycle counters still tick so callers see
    // uniform cache_stats() across every registered key.
    end_update(begin_update());
  }
  [[nodiscard]] const char* key() const override { return "none"; }

 protected:
  void apply_one(const double* x, double* y) override {
    std::copy_n(x, static_cast<std::size_t>(p_.num_lambdas), y);
  }
  void apply_many(const double* x, double* y, idx nrhs) override {
    std::copy_n(x,
                static_cast<std::size_t>(p_.num_lambdas) *
                    static_cast<std::size_t>(nrhs),
                y);
  }
};

// ---------------------------------------------------------------------------
// Block assemblers (shared by the CPU and GPU appliers)
// ---------------------------------------------------------------------------

/// Strategy producing the per-subdomain dual block M̃ᵢ (m × m fp64, full
/// symmetric). prepare() analyzes the fixed pattern once; assemble() must
/// fully overwrite `out` from the problem's *current* K values and must be
/// safe to call concurrently for distinct subdomains.
class BlockAssembler {
 public:
  virtual ~BlockAssembler() = default;
  virtual void prepare(const decomp::FetiProblem& p) = 0;
  virtual void assemble(const decomp::FetiProblem& p, idx s,
                        la::DenseView out) = 0;
};

/// M̃ᵢ = B̃ᵢ Kᵢ B̃ᵢᵀ with the original (singular) subdomain stiffness.
class LumpedAssembler final : public BlockAssembler {
 public:
  void prepare(const decomp::FetiProblem& p) override {
    bt_.resize(p.sub.size());
    for (std::size_t s = 0; s < p.sub.size(); ++s)
      bt_[s] = p.sub[s].b.transposed();
  }

  void assemble(const decomp::FetiProblem& p, idx s,
                la::DenseView out) override {
    zero_view(out);
    const auto& fs = p.sub[static_cast<std::size_t>(s)];
    const la::Csr& b = fs.b;
    const la::Csr& k = fs.sys.k;
    const la::Csr& bt = bt_[static_cast<std::size_t>(s)];
    for (idx r = 0; r < b.nrows(); ++r)
      for (idx e1 = b.row_begin(r); e1 < b.row_end(r); ++e1) {
        const idx j = b.col(e1);
        const double v1 = b.val(e1);
        for (idx e2 = k.row_begin(j); e2 < k.row_end(j); ++e2) {
          const double kv = v1 * k.val(e2);
          const idx l = k.col(e2);
          for (idx e3 = bt.row_begin(l); e3 < bt.row_end(l); ++e3)
            out.at(r, bt.col(e3)) += kv * bt.val(e3);
        }
      }
  }

 private:
  std::vector<la::Csr> bt_;  ///< B̃ᵢᵀ, pattern-fixed
};

/// The diagonal-of-K approximation: M̃ᵢ(r,c) = Σⱼ B(r,j) Kⱼⱼ B(c,j).
class SuperlumpedAssembler final : public BlockAssembler {
 public:
  void prepare(const decomp::FetiProblem& p) override {
    bt_.resize(p.sub.size());
    for (std::size_t s = 0; s < p.sub.size(); ++s)
      bt_[s] = p.sub[s].b.transposed();
  }

  void assemble(const decomp::FetiProblem& p, idx s,
                la::DenseView out) override {
    zero_view(out);
    const auto& fs = p.sub[static_cast<std::size_t>(s)];
    const la::Csr& b = fs.b;
    const la::Csr& k = fs.sys.k;
    const la::Csr& bt = bt_[static_cast<std::size_t>(s)];
    for (idx r = 0; r < b.nrows(); ++r)
      for (idx e1 = b.row_begin(r); e1 < b.row_end(r); ++e1) {
        const idx j = b.col(e1);
        const double kd = b.val(e1) * k.at(j, j);
        for (idx e3 = bt.row_begin(j); e3 < bt.row_end(j); ++e3)
          out.at(r, bt.col(e3)) += kd * bt.val(e3);
      }
  }

 private:
  std::vector<la::Csr> bt_;
};

/// M̃ᵢ = B_b Sᵢ B_bᵀ with Sᵢ = K_bb − K_bi K_ii⁻¹ K_ib the Schur complement
/// of the subdomain stiffness onto the boundary DOFs (the column support of
/// B̃ᵢ — in Total FETI that includes the Dirichlet-constrained DOFs, which
/// is what keeps K_ii SPD despite K being singular). The K_bi K_ii⁻¹ K_ib
/// term reuses the supernodal augmented-Schur path of the explicit dual
/// operators; patterns and the symbolic analysis are fixed at prepare(),
/// assemble() refreshes values and runs the numeric factorization.
class DirichletAssembler final : public BlockAssembler {
 public:
  void prepare(const decomp::FetiProblem& p) override {
    subs_.resize(p.sub.size());
    for (std::size_t s = 0; s < p.sub.size(); ++s) prepare_sub(p, s);
  }

  void assemble(const decomp::FetiProblem& p, idx s,
                la::DenseView out) override {
    Sub& sub = subs_[static_cast<std::size_t>(s)];
    const auto& fs = p.sub[static_cast<std::size_t>(s)];
    const idx m = fs.num_local_lambdas();
    const idx nb = static_cast<idx>(sub.boundary.size());
    if (m == 0 || nb == 0) {
      zero_view(out);
      return;
    }
    refresh(sub.kbb, sub.kbb_map, fs.sys.k);
    la::DenseMatrix sdense(nb, nb, la::Layout::ColMajor);
    sub.kbb.to_dense(sdense.view());
    if (sub.solver) {
      refresh(sub.kii, sub.kii_map, fs.sys.k);
      refresh(sub.kbi, sub.kbi_map, fs.sys.k);
      la::DenseMatrix schur(nb, nb, la::Layout::ColMajor);
      // The augmented partial factorization returns +K_bi K_ii⁻¹ K_ib in
      // the requested triangle.
      sub.solver->factorize_schur(sub.kii, sub.kbi, schur.view(),
                                  la::Uplo::Upper);
      la::symmetrize_from(schur.view(), la::Uplo::Upper);
      for (std::size_t i = 0; i < sdense.size(); ++i)
        sdense.data()[i] -= schur.data()[i];
    }
    // M̃ = B_b S B_bᵀ: T = B_b S (row-major m × nb), then reuse T's storage
    // as the col-major view of Tᵀ = S B_bᵀ for the second sparse multiply.
    la::DenseMatrix t(m, nb, la::Layout::RowMajor);
    la::spmm(1.0, sub.b_b, la::Trans::No, sdense.cview(), 0.0, t.view());
    const la::ConstDenseView t_trans{t.data(), nb, m, t.ld(),
                                     la::Layout::ColMajor};
    la::spmm(1.0, sub.b_b, la::Trans::No, t_trans, 0.0, out);
  }

 private:
  struct Sub {
    std::vector<idx> boundary;  ///< ascending local DOFs in supp(B̃ᵢᵀ)
    la::Csr b_b;                ///< B̃ᵢ restricted to boundary columns
    la::Csr kii, kbi, kbb;      ///< K blocks (patterns fixed)
    std::vector<idx> kii_map, kbi_map, kbb_map;  ///< entry -> K value index
    std::unique_ptr<sparse::SupernodalCholesky> solver;  ///< null if ni == 0
  };

  /// Extracts the (rmap, cmap)-selected block of `k` plus the map from the
  /// block's value slots back into k.vals() (for per-step refreshes).
  /// rmap/cmap hold the local index per selected global DOF, -1 otherwise;
  /// monotone selections keep the column order sorted.
  static void extract_block(const la::Csr& k, const std::vector<idx>& rmap,
                            const std::vector<idx>& cmap, idx nr, idx nc,
                            la::Csr& out, std::vector<idx>& vmap) {
    std::vector<idx> rowptr(static_cast<std::size_t>(nr) + 1, 0);
    std::vector<idx> colidx;
    std::vector<double> vals;
    vmap.clear();
    for (idx r = 0; r < k.nrows(); ++r) {
      if (rmap[static_cast<std::size_t>(r)] < 0) continue;
      const idx lr = rmap[static_cast<std::size_t>(r)];
      for (idx e = k.row_begin(r); e < k.row_end(r); ++e) {
        const idx lc = cmap[static_cast<std::size_t>(k.col(e))];
        if (lc < 0) continue;
        ++rowptr[static_cast<std::size_t>(lr) + 1];
        colidx.push_back(lc);
        vals.push_back(k.val(e));
        vmap.push_back(e);
      }
    }
    for (idx r = 0; r < nr; ++r)
      rowptr[static_cast<std::size_t>(r) + 1] +=
          rowptr[static_cast<std::size_t>(r)];
    out = la::Csr(nr, nc, std::move(rowptr), std::move(colidx),
                  std::move(vals));
  }

  static void refresh(la::Csr& block, const std::vector<idx>& vmap,
                      const la::Csr& k) {
    for (std::size_t t = 0; t < vmap.size(); ++t)
      block.vals()[t] = k.val(vmap[t]);
  }

  void prepare_sub(const decomp::FetiProblem& p, std::size_t s) {
    Sub& sub = subs_[s];
    const auto& fs = p.sub[s];
    const la::Csr& k = fs.sys.k;
    const idx n = fs.ndof();

    // Boundary support of B̃ᵢ — shared with the sparsity-aware explicit
    // dual operators (same ascending boundary-local ordering).
    decomp::BoundaryDofs bd = decomp::boundary_dofs(fs);
    const idx nb = bd.count();
    sub.boundary = std::move(bd.dofs);
    sub.b_b = std::move(bd.b_b);
    const std::vector<idx>& bmap = bd.map;
    std::vector<idx> imap(static_cast<std::size_t>(n), -1);
    idx ni = 0;
    for (idx d = 0; d < n; ++d)
      if (bmap[static_cast<std::size_t>(d)] < 0)
        imap[static_cast<std::size_t>(d)] = ni++;

    extract_block(k, bmap, bmap, nb, nb, sub.kbb, sub.kbb_map);
    if (ni > 0 && nb > 0) {
      extract_block(k, imap, imap, ni, ni, sub.kii, sub.kii_map);
      extract_block(k, bmap, imap, nb, ni, sub.kbi, sub.kbi_map);
      sub.solver = std::make_unique<sparse::SupernodalCholesky>();
      sub.solver->analyze_schur(sub.kii, sub.kbi);
    }
  }

  std::vector<Sub> subs_;
};

std::unique_ptr<BlockAssembler> make_assembler(Kind kind) {
  switch (kind) {
    case Kind::Lumped: return std::make_unique<LumpedAssembler>();
    case Kind::Superlumped: return std::make_unique<SuperlumpedAssembler>();
    case Kind::Dirichlet: return std::make_unique<DirichletAssembler>();
    case Kind::None: break;
  }
  check(false, "make_assembler: kind has no block assembler");
  return nullptr;
}

// ---------------------------------------------------------------------------
// CPU applier
// ---------------------------------------------------------------------------

class CpuBlockPreconditioner final : public Preconditioner {
 public:
  CpuBlockPreconditioner(const decomp::FetiProblem& p, std::string key,
                         Kind kind, Scaling scaling)
      : Preconditioner(p), key_(std::move(key)),
        assembler_(make_assembler(kind)), scaling_(scaling) {}

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    assembler_->prepare(p_);
    const std::size_t nsub = p_.sub.size();
    blocks_.resize(nsub);
    lam_.resize(nsub);
    q_.resize(nsub);
    xp_.resize(nsub);
    qp_.resize(nsub);
    for (std::size_t s = 0; s < nsub; ++s) {
      const idx m = p_.sub[s].num_local_lambdas();
      blocks_[s] = la::DenseMatrix(m, m, la::Layout::ColMajor);
      lam_[s].resize(static_cast<std::size_t>(m));
      q_[s].resize(static_cast<std::size_t>(m));
    }
    // Multiplicity weights are pattern-only; stiffness weights track K and
    // are (re)computed inside update_values().
    if (scaling_ == Scaling::Multiplicity)
      weights_ = compute_scaling_weights(p_, scaling_);
  }

  void update_values() override {
    ScopedTimer t(timings_, "update_values");
    const UpdatePlan plan = begin_update();
    if (plan.skip()) return;
    const idx nd = static_cast<idx>(plan.dirty.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nd; ++k) {
      guard.run([&, k] {
        const idx s = plan.dirty[static_cast<std::size_t>(k)];
        assembler_->assemble(p_, s,
                             blocks_[static_cast<std::size_t>(s)].view());
      });
    }
    guard.rethrow();
    // Stiffness weights mix every sharing subdomain's K diagonal, so any
    // refresh invalidates all of them; they are never baked into the
    // cached blocks above.
    if (scaling_ == Scaling::Stiffness)
      weights_ = compute_scaling_weights(p_, scaling_);
    end_update(plan);
  }

  [[nodiscard]] const char* key() const override { return key_.c_str(); }

 protected:
  void apply_one(const double* x, double* y) override {
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[static_cast<std::size_t>(s)];
        const idx m = fs.num_local_lambdas();
        if (m == 0) return;
        const double* w = weight_of(s);
        double* lam = lam_[static_cast<std::size_t>(s)].data();
        for (idx i = 0; i < m; ++i) {
          const double wi = w != nullptr ? w[i] : 1.0;
          lam[i] = wi * x[fs.lm_l2c[static_cast<std::size_t>(i)]];
        }
        la::symv(la::Uplo::Upper, 1.0,
                 blocks_[static_cast<std::size_t>(s)].cview(), lam, 0.0,
                 q_[static_cast<std::size_t>(s)].data());
      });
    }
    guard.rethrow();
    std::fill_n(y, static_cast<std::size_t>(p_.num_lambdas), 0.0);
    for (idx s = 0; s < nsub; ++s) {
      const auto& fs = p_.sub[static_cast<std::size_t>(s)];
      const double* w = weight_of(s);
      const double* q = q_[static_cast<std::size_t>(s)].data();
      for (idx i = 0; i < fs.num_local_lambdas(); ++i) {
        const double wi = w != nullptr ? w[i] : 1.0;
        y[fs.lm_l2c[static_cast<std::size_t>(i)]] += wi * q[i];
      }
    }
  }

  void apply_many(const double* x, double* y, idx nrhs) override {
    const idx n = p_.num_lambdas;
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[static_cast<std::size_t>(s)];
        const idx m = fs.num_local_lambdas();
        if (m == 0) return;
        la::DenseMatrix& xs = xp_[static_cast<std::size_t>(s)];
        la::DenseMatrix& qs = qp_[static_cast<std::size_t>(s)];
        if (xs.cols() < nrhs) {
          xs = la::DenseMatrix(m, nrhs, la::Layout::ColMajor);
          qs = la::DenseMatrix(m, nrhs, la::Layout::ColMajor);
        }
        const double* w = weight_of(s);
        for (idx j = 0; j < nrhs; ++j) {
          const double* col = x + static_cast<widx>(j) * n;
          for (idx i = 0; i < m; ++i) {
            const double wi = w != nullptr ? w[i] : 1.0;
            xs.at(i, j) = wi * col[fs.lm_l2c[static_cast<std::size_t>(i)]];
          }
        }
        const la::ConstDenseView xv{xs.data(), m, nrhs, xs.ld(),
                                    la::Layout::ColMajor};
        const la::DenseView qv{qs.data(), m, nrhs, qs.ld(),
                               la::Layout::ColMajor};
        la::symm(la::Uplo::Upper, 1.0,
                 blocks_[static_cast<std::size_t>(s)].cview(), xv, 0.0, qv);
      });
    }
    guard.rethrow();
    std::fill_n(y, static_cast<std::size_t>(n) * nrhs, 0.0);
    for (idx s = 0; s < nsub; ++s) {
      const auto& fs = p_.sub[static_cast<std::size_t>(s)];
      const idx m = fs.num_local_lambdas();
      if (m == 0) continue;
      const double* w = weight_of(s);
      const la::DenseMatrix& qs = qp_[static_cast<std::size_t>(s)];
      for (idx j = 0; j < nrhs; ++j) {
        double* col = y + static_cast<widx>(j) * n;
        for (idx i = 0; i < m; ++i) {
          const double wi = w != nullptr ? w[i] : 1.0;
          col[fs.lm_l2c[static_cast<std::size_t>(i)]] += wi * qs.at(i, j);
        }
      }
    }
  }

 private:
  [[nodiscard]] const double* weight_of(idx s) const {
    return weights_.empty() ? nullptr
                            : weights_[static_cast<std::size_t>(s)].data();
  }

  std::string key_;
  std::unique_ptr<BlockAssembler> assembler_;
  Scaling scaling_;
  std::vector<la::DenseMatrix> blocks_;
  std::vector<std::vector<double>> weights_;
  std::vector<std::vector<double>> lam_, q_;  ///< single-RHS locals
  std::vector<la::DenseMatrix> xp_, qp_;      ///< grow-only batch panels
};

// ---------------------------------------------------------------------------
// GPU applier
// ---------------------------------------------------------------------------

/// Assembles on the CPU (same assemblers as above), keeps the M̃ᵢ blocks,
/// the multiplier maps, and the scaling diagonals resident on the shard's
/// device, and serves M⁻¹ entirely device-side: weighted batched scatter →
/// one SYMV/SYMM per subdomain across the context's worker streams →
/// weighted batched gather, one H2D and one D2H per apply.
class GpuBlockPreconditioner final : public Preconditioner {
 public:
  GpuBlockPreconditioner(const decomp::FetiProblem& p, std::string key,
                         Kind kind, Scaling scaling,
                         gpu::ExecutionContext& ctx)
      : Preconditioner(p), key_(std::move(key)),
        assembler_(make_assembler(kind)), scaling_(scaling), ctx_(ctx),
        dev_(ctx.device()) {}

  ~GpuBlockPreconditioner() override {
    dev_.synchronize();
    for (auto& d : m_dev_) gpu::free_dense(dev_, d);
    for (idx* p : map_dev_) free_ptr(p);
    for (double* p : weight_dev_) free_ptr(p);
    for (double* p : lam_dev_) free_ptr(p);
    for (double* p : q_dev_) free_ptr(p);
    for (double* p : lamb_dev_) free_ptr(p);
    for (double* p : qb_dev_) free_ptr(p);
    free_ptr(d_x_);
    free_ptr(d_y_);
    free_ptr(d_xb_);
    free_ptr(d_yb_);
  }

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    main_stream_ = ctx_.main_stream();
    streams_ = ctx_.stream_span(kStreams);
    assembler_->prepare(p_);
    const std::size_t nsub = p_.sub.size();
    m_host_.resize(nsub);
    m_dev_.resize(nsub);
    map_dev_.resize(nsub, nullptr);
    weight_dev_.resize(nsub, nullptr);
    lam_dev_.resize(nsub, nullptr);
    q_dev_.resize(nsub, nullptr);
    if (scaling_ == Scaling::Multiplicity)
      weights_ = compute_scaling_weights(p_, scaling_);
    for (std::size_t s = 0; s < nsub; ++s) {
      const auto& fs = p_.sub[s];
      const idx m = fs.num_local_lambdas();
      if (m == 0) continue;
      m_host_[s] = la::DenseMatrix(m, m, la::Layout::ColMajor);
      m_dev_[s] = gpu::alloc_dense(dev_, m, m, la::Layout::ColMajor);
      map_dev_[s] = gpu::upload_array(dev_, main_stream_, fs.lm_l2c);
      lam_dev_[s] = dev_.alloc_n<double>(static_cast<std::size_t>(m));
      q_dev_[s] = dev_.alloc_n<double>(static_cast<std::size_t>(m));
      if (scaling_ != Scaling::None) {
        weight_dev_[s] = dev_.alloc_n<double>(static_cast<std::size_t>(m));
        if (scaling_ == Scaling::Multiplicity)
          main_stream_.memcpy_h2d(weight_dev_[s], weights_[s].data(),
                                  static_cast<std::size_t>(m) *
                                      sizeof(double));
      }
    }
    const std::size_t n =
        std::max<std::size_t>(1, static_cast<std::size_t>(p_.num_lambdas));
    d_x_ = dev_.alloc_n<double>(n);
    d_y_ = dev_.alloc_n<double>(n);
    dev_.synchronize();
    ctx_.ensure_workspace();
  }

  void update_values() override {
    ScopedTimer t(timings_, "update_values");
    const UpdatePlan plan = begin_update();
    if (plan.skip()) return;
    const idx nd = static_cast<idx>(plan.dirty.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nd; ++k) {
      guard.run([&, k] {
        const idx s = plan.dirty[static_cast<std::size_t>(k)];
        if (p_.sub[static_cast<std::size_t>(s)].num_local_lambdas() == 0)
          return;
        la::DenseMatrix& host = m_host_[static_cast<std::size_t>(s)];
        assembler_->assemble(p_, s, host.view());
        gpu::Stream st =
            streams_[static_cast<std::size_t>(k) % streams_.size()];
        st.memcpy_h2d(m_dev_[static_cast<std::size_t>(s)].data, host.data(),
                      host.size() * sizeof(double));
      });
    }
    guard.rethrow();
    if (scaling_ == Scaling::Stiffness) {
      // Neighbor K values feed these diagonals, so every weight refreshes
      // whenever any subdomain does.
      weights_ = compute_scaling_weights(p_, scaling_);
      for (std::size_t s = 0; s < p_.sub.size(); ++s)
        if (weight_dev_[s] != nullptr)
          main_stream_.memcpy_h2d(weight_dev_[s], weights_[s].data(),
                                  weights_[s].size() * sizeof(double));
    }
    dev_.synchronize();
    end_update(plan);
  }

  [[nodiscard]] const char* key() const override { return key_.c_str(); }

  [[nodiscard]] gpu::ExecutionContext* device_context() override {
    return &ctx_;
  }

 protected:
  void apply_one(const double* x, double* y) override {
    const idx n = p_.num_lambdas;
    main_stream_.memcpy_h2d(d_x_, x,
                            static_cast<std::size_t>(n) * sizeof(double));
    gpu::kernels::scatter_batch(main_stream_, d_x_, make_jobs(lam_dev_));
    const gpu::Event scattered = main_stream_.record();
    for (auto& st : streams_) st.wait(scattered);
    const std::size_t ns = streams_.size();
    for (std::size_t s = 0; s < p_.sub.size(); ++s) {
      if (lam_dev_[s] == nullptr) continue;
      gpu::Stream& st = streams_[s % ns];
      gpu::blas::symv(st, la::Uplo::Upper, 1.0, m_dev_[s], lam_dev_[s], 0.0,
                      q_dev_[s]);
    }
    for (auto& st : streams_) main_stream_.wait(st.record());
    gpu::kernels::gather_batch(main_stream_, d_y_, n, make_jobs(q_dev_));
    main_stream_.memcpy_d2h(y, d_y_,
                            static_cast<std::size_t>(n) * sizeof(double));
    main_stream_.synchronize();
  }

  void apply_many(const double* x, double* y, idx nrhs) override {
    const idx n = p_.num_lambdas;
    ensure_batch(nrhs);
    main_stream_.memcpy_h2d(
        d_xb_, x,
        static_cast<std::size_t>(n) * nrhs * sizeof(double));
    gpu::kernels::scatter_batch(main_stream_, d_xb_, n, nrhs,
                                la::Layout::RowMajor,
                                make_block_jobs(lamb_dev_));
    const gpu::Event scattered = main_stream_.record();
    for (auto& st : streams_) st.wait(scattered);
    const std::size_t ns = streams_.size();
    for (std::size_t s = 0; s < p_.sub.size(); ++s) {
      if (lamb_dev_[s] == nullptr) continue;
      const idx m = p_.sub[s].num_local_lambdas();
      gpu::Stream& st = streams_[s % ns];
      const gpu::DeviceDense lam{lamb_dev_[s], m, nrhs, batch_cols_,
                                 la::Layout::RowMajor};
      const gpu::DeviceDense q{qb_dev_[s], m, nrhs, batch_cols_,
                               la::Layout::RowMajor};
      gpu::blas::symm(st, la::Uplo::Upper, 1.0, m_dev_[s], lam, 0.0, q);
    }
    for (auto& st : streams_) main_stream_.wait(st.record());
    gpu::kernels::gather_batch(main_stream_, d_yb_, n, n, nrhs,
                               la::Layout::RowMajor,
                               make_block_jobs(qb_dev_));
    main_stream_.memcpy_d2h(
        y, d_yb_, static_cast<std::size_t>(n) * nrhs * sizeof(double));
    main_stream_.synchronize();
  }

  /// Device-view apply for the device-state PCPG mode: identical kernels
  /// to apply_one/apply_many (nrhs == 1 keeps the SYMV path for bitwise
  /// agreement), but scatters from the caller's device columns and gathers
  /// into them directly — the d_x_/d_y_ staging memcpys disappear.
  void apply_many_device(const double* d_x, double* d_y, idx nrhs) override {
    const idx n = p_.num_lambdas;
    const std::size_t ns = streams_.size();
    if (nrhs == 1) {
      gpu::kernels::scatter_batch(main_stream_, d_x, make_jobs(lam_dev_));
      const gpu::Event scattered = main_stream_.record();
      for (auto& st : streams_) st.wait(scattered);
      for (std::size_t s = 0; s < p_.sub.size(); ++s) {
        if (lam_dev_[s] == nullptr) continue;
        gpu::Stream& st = streams_[s % ns];
        gpu::blas::symv(st, la::Uplo::Upper, 1.0, m_dev_[s], lam_dev_[s],
                        0.0, q_dev_[s]);
      }
      for (auto& st : streams_) main_stream_.wait(st.record());
      gpu::kernels::gather_batch(main_stream_, d_y, n, make_jobs(q_dev_));
      main_stream_.synchronize();
      return;
    }
    ensure_batch(nrhs);
    gpu::kernels::scatter_batch(main_stream_, d_x, n, nrhs,
                                la::Layout::RowMajor,
                                make_block_jobs(lamb_dev_));
    const gpu::Event scattered = main_stream_.record();
    for (auto& st : streams_) st.wait(scattered);
    for (std::size_t s = 0; s < p_.sub.size(); ++s) {
      if (lamb_dev_[s] == nullptr) continue;
      const idx m = p_.sub[s].num_local_lambdas();
      gpu::Stream& st = streams_[s % ns];
      const gpu::DeviceDense lam{lamb_dev_[s], m, nrhs, batch_cols_,
                                 la::Layout::RowMajor};
      const gpu::DeviceDense q{qb_dev_[s], m, nrhs, batch_cols_,
                               la::Layout::RowMajor};
      gpu::blas::symm(st, la::Uplo::Upper, 1.0, m_dev_[s], lam, 0.0, q);
    }
    for (auto& st : streams_) main_stream_.wait(st.record());
    gpu::kernels::gather_batch(main_stream_, d_y, n, n, nrhs,
                               la::Layout::RowMajor,
                               make_block_jobs(qb_dev_));
    main_stream_.synchronize();
  }

 private:
  static constexpr int kStreams = 4;

  void free_ptr(void* p) {
    if (p != nullptr) dev_.free(p);
  }

  [[nodiscard]] std::vector<gpu::kernels::DualMap> make_jobs(
      const std::vector<double*>& locals) const {
    std::vector<gpu::kernels::DualMap> jobs;
    jobs.reserve(locals.size());
    for (std::size_t s = 0; s < locals.size(); ++s) {
      if (locals[s] == nullptr) continue;
      jobs.push_back({map_dev_[s], p_.sub[s].num_local_lambdas(), locals[s],
                      weight_dev_[s]});
    }
    return jobs;
  }

  [[nodiscard]] std::vector<gpu::kernels::DualMapBlock> make_block_jobs(
      const std::vector<double*>& panels) const {
    std::vector<gpu::kernels::DualMapBlock> jobs;
    jobs.reserve(panels.size());
    for (std::size_t s = 0; s < panels.size(); ++s) {
      if (panels[s] == nullptr) continue;
      jobs.push_back({map_dev_[s], p_.sub[s].num_local_lambdas(), panels[s],
                      batch_cols_, weight_dev_[s]});
    }
    return jobs;
  }

  /// Grow-only batch storage: per-subdomain row-major panels (leading
  /// dimension = the allocated capacity) plus the cluster-wide blocks.
  void ensure_batch(idx nrhs) {
    if (nrhs <= batch_cols_) return;
    dev_.synchronize();
    const std::size_t nsub = p_.sub.size();
    lamb_dev_.resize(nsub, nullptr);
    qb_dev_.resize(nsub, nullptr);
    for (std::size_t s = 0; s < nsub; ++s) {
      const idx m = p_.sub[s].num_local_lambdas();
      if (m == 0) continue;
      free_ptr(lamb_dev_[s]);
      free_ptr(qb_dev_[s]);
      lamb_dev_[s] = dev_.alloc_n<double>(static_cast<std::size_t>(m) * nrhs);
      qb_dev_[s] = dev_.alloc_n<double>(static_cast<std::size_t>(m) * nrhs);
    }
    free_ptr(d_xb_);
    free_ptr(d_yb_);
    d_xb_ = dev_.alloc_n<double>(static_cast<std::size_t>(p_.num_lambdas) *
                                 nrhs);
    d_yb_ = dev_.alloc_n<double>(static_cast<std::size_t>(p_.num_lambdas) *
                                 nrhs);
    batch_cols_ = nrhs;
  }

  std::string key_;
  std::unique_ptr<BlockAssembler> assembler_;
  Scaling scaling_;
  gpu::ExecutionContext& ctx_;
  gpu::Device& dev_;
  gpu::Stream main_stream_;
  std::vector<gpu::Stream> streams_;
  std::vector<la::DenseMatrix> m_host_;
  std::vector<gpu::DeviceDense> m_dev_;
  std::vector<std::vector<double>> weights_;  ///< host copy of the diagonals
  std::vector<idx*> map_dev_;
  std::vector<double*> weight_dev_;  ///< null per sub when unscaled
  std::vector<double*> lam_dev_, q_dev_;
  std::vector<double*> lamb_dev_, qb_dev_;  ///< batch panels
  double* d_x_ = nullptr;
  double* d_y_ = nullptr;
  double* d_xb_ = nullptr;
  double* d_yb_ = nullptr;
  idx batch_cols_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

void register_block_preconditioners(PreconditionerRegistry& registry) {
  registry.add(
      {"none", Kind::None, Scaling::None, false,
       "identity — plain projected CG"},
      [](const decomp::FetiProblem& p, gpu::ExecutionContext*) {
        return std::make_unique<IdentityPreconditioner>(p);
      });

  struct KindRow {
    Kind kind;
    const char* summary;
  };
  const KindRow kinds[] = {
      {Kind::Lumped, "M̃ᵢ = B̃ᵢ Kᵢ B̃ᵢᵀ (lumped)"},
      {Kind::Superlumped, "M̃ᵢ from diag(Kᵢ) (superlumped)"},
      {Kind::Dirichlet, "M̃ᵢ = B_b Sᵢ B_bᵀ, boundary Schur (dirichlet)"},
  };
  const Scaling scalings[] = {Scaling::None, Scaling::Multiplicity,
                              Scaling::Stiffness};
  for (const KindRow& row : kinds) {
    for (Scaling scaling : scalings) {
      for (bool gpu : {false, true}) {
        std::string key = to_string(row.kind);
        if (scaling != Scaling::None)
          key += std::string(" ") + to_string(scaling);
        if (gpu) key += " gpu";
        std::string summary = row.summary;
        if (scaling != Scaling::None)
          summary += std::string(", ") + to_string(scaling) + " scaling";
        if (gpu) summary += ", device-side apply";
        const Kind kind = row.kind;
        PreconditionerFactory factory;
        if (gpu) {
          factory = [kind, scaling, key](const decomp::FetiProblem& p,
                                         gpu::ExecutionContext* ctx) {
            check(ctx != nullptr,
                  "preconditioner '" + key +
                      "' requires a GPU execution context");
            return std::unique_ptr<Preconditioner>(
                std::make_unique<GpuBlockPreconditioner>(p, key, kind,
                                                         scaling, *ctx));
          };
        } else {
          factory = [kind, scaling, key](const decomp::FetiProblem& p,
                                         gpu::ExecutionContext*) {
            return std::unique_ptr<Preconditioner>(
                std::make_unique<CpuBlockPreconditioner>(p, key, kind,
                                                         scaling));
          };
        }
        registry.add({key, kind, scaling, gpu, std::move(summary)},
                     std::move(factory));
      }
    }
  }
}

}  // namespace feti::precond
