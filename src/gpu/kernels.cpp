#include "gpu/kernels.hpp"

#include <algorithm>

#include "la/blas_dense.hpp"

namespace feti::gpu::kernels {

// The scatter/gather kernels are header templates (instantiated for the
// fp64 and fp32 local-panel scalars); only the non-template utilities and
// the demotion kernels live here.

void fill_zero(Stream& s, double* data, idx n) {
  s.submit([data, n] { std::fill_n(data, n, 0.0); });
}

void copy(Stream& s, const double* src, double* dst, idx n) {
  s.submit([src, dst, n] { std::copy_n(src, n, dst); });
}

void dot_many(Stream& s, std::vector<const double*> xs,
              std::vector<const double*> ys, idx n, double* out) {
  s.submit([xs = std::move(xs), ys = std::move(ys), n, out] {
    for (std::size_t b = 0; b < xs.size(); ++b)
      out[b] = la::dot(n, xs[b], ys[b]);
  });
}

void nrm2_many(Stream& s, std::vector<const double*> xs, idx n, double* out) {
  s.submit([xs = std::move(xs), n, out] {
    for (std::size_t b = 0; b < xs.size(); ++b) out[b] = la::nrm2(n, xs[b]);
  });
}

void axpy_many(Stream& s, std::vector<double> alphas,
               std::vector<const double*> xs, std::vector<double*> ys,
               idx n) {
  s.submit([alphas = std::move(alphas), xs = std::move(xs),
            ys = std::move(ys), n] {
    for (std::size_t b = 0; b < xs.size(); ++b)
      la::axpy(n, alphas[b], xs[b], ys[b]);
  });
}

void xpby_many(Stream& s, std::vector<const double*> ys,
               std::vector<double> betas, std::vector<double*> ps, idx n) {
  s.submit([ys = std::move(ys), betas = std::move(betas),
            ps = std::move(ps), n] {
    for (std::size_t b = 0; b < ys.size(); ++b) {
      const double beta = betas[b];
      const double* y = ys[b];
      double* p = ps[b];
      for (idx i = 0; i < n; ++i) p[i] = y[i] + beta * p[i];
    }
  });
}

void pack_columns(Stream& s, std::vector<const double*> srcs, double* panel,
                  idx n) {
  s.submit([srcs = std::move(srcs), panel, n] {
    for (std::size_t b = 0; b < srcs.size(); ++b)
      std::copy_n(srcs[b], n, panel + b * static_cast<std::size_t>(n));
  });
}

void unpack_columns(Stream& s, const double* panel, std::vector<double*> dsts,
                    idx n) {
  s.submit([panel, dsts = std::move(dsts), n] {
    for (std::size_t b = 0; b < dsts.size(); ++b)
      std::copy_n(panel + b * static_cast<std::size_t>(n), n, dsts[b]);
  });
}

void demote(Stream& s, DeviceDense src, DeviceDenseF32 dst) {
  s.submit([src, dst] { la::demote(src.cview(), dst.view()); });
}

void demote_triangle(Stream& s, la::Uplo uplo, DeviceDense src,
                     DeviceDenseF32 dst) {
  s.submit(
      [uplo, src, dst] { la::demote_triangle(uplo, src.cview(), dst.view()); });
}

void symmetrize(Stream& s, la::Uplo stored, DeviceDense a) {
  s.submit([stored, a] { la::symmetrize_from(a.view(), stored); });
}

}  // namespace feti::gpu::kernels
