// CPU dual-operator implementations:
//   * implicit (supernodal = "impl mkl", simplicial = "impl cholmod"):
//     apply = SpMV(B^T) -> forward/backward solve -> SpMV(B), per
//     subdomain, right-to-left as in eq. (13); the batched entry point
//     solves all right-hand sides through one SpMM / solve_many / SpMM
//     sweep per subdomain;
//   * explicit via augmented Schur complement ("expl mkl"): F̃ᵢ assembled by
//     the supernodal backend's partial factorization, exploiting the
//     sparsity of B̃ᵢ;
//   * explicit via factor extraction + dense-RHS TRSM ("expl cholmod"):
//     F̃ᵢ = (L^{-1} B̃ᵢᵀ)^T (L^{-1} B̃ᵢᵀ) with a densified right-hand side
//     (no B̃ᵢ sparsity exploited — the paper's reason it is slowest).
//     Both explicit operators serve the batched entry point with a single
//     SYMM per subdomain.
//
// register_cpu_dual_operators() at the bottom is this family's entry in
// the DualOperatorRegistry.

#include <omp.h>

#include <type_traits>

#include "core/dualop_impls.hpp"
#include "core/dualop_registry.hpp"
#include "decomp/boundary.hpp"
#include "util/omp_guard.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"
#include "sparse/simplicial_cholesky.hpp"
#include "sparse/supernodal_cholesky.hpp"

namespace feti::core {

namespace {

/// Column-permutes B̃ᵢ by the solver's fill-reducing permutation:
/// (B P^T)(:, new) = B(:, perm[new]), so entry (r, j) moves to (r, iperm[j]).
la::Csr permute_columns(const la::Csr& b, const std::vector<idx>& perm) {
  const std::vector<idx> iperm = la::invert_permutation(perm);
  std::vector<la::Triplet> t;
  t.reserve(static_cast<std::size_t>(b.nnz()));
  for (idx r = 0; r < b.nrows(); ++r)
    for (idx k = b.row_begin(r); k < b.row_end(r); ++k)
      t.push_back({r, iperm[b.col(k)], b.val(k)});
  return la::Csr::from_triplets(b.nrows(), b.ncols(), std::move(t));
}

/// Expands the boundary-restricted Gram block G_bb = E_b K⁻¹ E_bᵀ (with
/// only the `stored` triangle valid on entry) into the full F̃ target:
/// F̃ = B_b G_bb B_bᵀ via two sparse multiplies, reusing the first
/// product's storage as the transposed view for the second (the same trick
/// as the Dirichlet preconditioner's B_b S B_bᵀ). Writes the whole m × m
/// rectangle of `target`.
void expand_boundary(const la::Csr& b_b, la::DenseView g, la::Uplo stored,
                     la::DenseView target) {
  la::symmetrize_from(g, stored);
  const idx m = target.rows;
  const idx nb = g.rows;
  la::DenseMatrix t(m, nb, la::Layout::RowMajor);
  la::spmm(1.0, b_b, la::Trans::No, la::ConstDenseView(g), 0.0, t.view());
  const la::ConstDenseView t_trans{t.data(), nb, m, t.ld(),
                                   la::Layout::ColMajor};
  la::spmm(1.0, b_b, la::Trans::No, t_trans, 0.0, target);
}

void zero_fill(la::DenseView v) {
  for (idx c = 0; c < v.cols; ++c)
    for (idx r = 0; r < v.rows; ++r) v.at(r, c) = 0.0;
}

// ---------------------------------------------------------------------------
// Implicit CPU (impl mkl / impl cholmod)
// ---------------------------------------------------------------------------

class ImplicitCpuDualOp final : public DualOperator {
 public:
  ImplicitCpuDualOp(const decomp::FetiProblem& p, sparse::Backend backend,
                    sparse::OrderingKind ordering)
      : DualOperator(p), backend_(backend), ordering_(ordering) {}

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const idx nsub = p_.num_subdomains();
    solvers_.resize(static_cast<std::size_t>(nsub));
    lam_.resize(solvers_.size());
    tmp_.resize(solvers_.size());
    tmp2_.resize(solvers_.size());
    q_.resize(solvers_.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        solvers_[s] = sparse::make_solver(backend_);
        solvers_[s]->analyze(p_.sub[s].k_reg, ordering_);
        lam_[s].resize(static_cast<std::size_t>(p_.sub[s].num_local_lambdas()));
        tmp_[s].resize(static_cast<std::size_t>(p_.sub[s].ndof()));
        tmp2_[s].resize(static_cast<std::size_t>(p_.sub[s].ndof()));
        q_[s].resize(lam_[s].size());
      });
    }
    guard.rethrow();
  }

  void update_values() override {
    ScopedTimer t(timings_, "update_values");
    const UpdatePlan plan = begin_update();
    if (plan.skip()) return;
    const idx nd = static_cast<idx>(plan.dirty.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nd; ++k) {
      guard.run([&, k] {
        const idx s = plan.dirty[static_cast<std::size_t>(k)];
        solvers_[s]->factorize(p_.sub[s].k_reg);
      });
    }
    guard.rethrow();
    end_update(plan);
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override {
    return backend_ == sparse::Backend::Supernodal ? "impl mkl"
                                                   : "impl cholmod";
  }

 protected:
  void apply_one(const double* x, double* y) override {
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[s];
        scatter_cpu(x, s, lam_[s].data());
        la::spmv_trans(1.0, fs.b, lam_[s].data(), 0.0, tmp_[s].data());
        solvers_[s]->solve(tmp_[s].data(), tmp2_[s].data());
        la::spmv(1.0, fs.b, tmp2_[s].data(), 0.0, q_[s].data());
      });
    }
    guard.rethrow();
    std::fill_n(y, p_.num_lambdas, 0.0);
    for (idx s = 0; s < nsub; ++s) gather_add_cpu(q_[s].data(), s, y);
  }

  void apply_many(const double* x, double* y, idx nrhs) override {
    const idx nsub = p_.num_subdomains();
    const std::size_t stride = static_cast<std::size_t>(p_.num_lambdas);
    ensure_block_buffers(nrhs);
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[s];
        const idx m = fs.num_local_lambdas();
        const idx n = fs.ndof();
        // First-nrhs-columns views of the (possibly wider) cached blocks.
        la::DenseView lam{lam_blk_[s].data(), m, nrhs, m,
                          la::Layout::ColMajor};
        la::DenseView rhs{rhs_blk_[s].data(), n, nrhs, n,
                          la::Layout::ColMajor};
        la::DenseView sol{sol_blk_[s].data(), n, nrhs, n,
                          la::Layout::ColMajor};
        la::DenseView q{q_blk_[s].data(), m, nrhs, m, la::Layout::ColMajor};
        for (idx j = 0; j < nrhs; ++j)
          scatter_cpu(x + static_cast<std::size_t>(j) * stride, s,
                      lam.data + static_cast<std::size_t>(j) * m);
        la::spmm(1.0, fs.b, la::Trans::Yes, lam, 0.0, rhs);
        solvers_[s]->solve_many(rhs, sol);
        la::spmm(1.0, fs.b, la::Trans::No, sol, 0.0, q);
      });
    }
    guard.rethrow();
    std::fill_n(y, stride * static_cast<std::size_t>(nrhs), 0.0);
    for (idx s = 0; s < nsub; ++s) {
      const idx m = p_.sub[s].num_local_lambdas();
      for (idx j = 0; j < nrhs; ++j)
        gather_add_cpu(q_blk_[s].data() + static_cast<std::size_t>(j) * m, s,
                       y + static_cast<std::size_t>(j) * stride);
    }
  }

 private:
  /// Grow-only per-subdomain block workspaces; narrower batches reuse the
  /// leading columns (a lockstep block solve shrinks as systems converge,
  /// which must not trigger reallocation waves).
  void ensure_block_buffers(idx nrhs) {
    if (blk_nrhs_ >= nrhs) return;
    const idx nsub = p_.num_subdomains();
    lam_blk_.resize(static_cast<std::size_t>(nsub));
    rhs_blk_.resize(lam_blk_.size());
    sol_blk_.resize(lam_blk_.size());
    q_blk_.resize(lam_blk_.size());
    for (idx s = 0; s < nsub; ++s) {
      const idx m = p_.sub[s].num_local_lambdas();
      const idx n = p_.sub[s].ndof();
      lam_blk_[s] = la::DenseMatrix(m, nrhs, la::Layout::ColMajor);
      rhs_blk_[s] = la::DenseMatrix(n, nrhs, la::Layout::ColMajor);
      sol_blk_[s] = la::DenseMatrix(n, nrhs, la::Layout::ColMajor);
      q_blk_[s] = la::DenseMatrix(m, nrhs, la::Layout::ColMajor);
    }
    blk_nrhs_ = nrhs;
  }

  sparse::Backend backend_;
  sparse::OrderingKind ordering_;
  std::vector<std::unique_ptr<sparse::DirectSolver>> solvers_;
  std::vector<std::vector<double>> lam_, tmp_, tmp2_, q_;
  std::vector<la::DenseMatrix> lam_blk_, rhs_blk_, sol_blk_, q_blk_;
  idx blk_nrhs_ = 0;
};

// ---------------------------------------------------------------------------
// Shared pieces of the explicit CPU operators.
// ---------------------------------------------------------------------------

/// Common explicit-CPU state: dense F̃ᵢ (upper triangle) + SYMV/SYMM
/// application. `T` is the persistent F̃ storage scalar (the same pattern
/// as ExplicitGpuDualOpT): double for the fp64 operators, float for the
/// mixed-precision " f32" keys — assembly always runs in fp64 (a scratch
/// block demoted via commit_f), the apply streams T through the
/// T-instantiated SYMV/SYMM kernels, and the cluster-wide dual vectors
/// stay fp64 (the scatter downcasts, the gather accumulates in fp64).
template <typename T>
class ExplicitCpuBaseT : public DualOperator {
 public:
  using DualOperator::DualOperator;

  [[nodiscard]] std::size_t apply_bytes() const override {
    std::size_t total = 0;
    for (const auto& f : f_) total += f.size() * sizeof(T);
    return total;
  }

 protected:
  void apply_one(const double* x, double* y) override {
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& map = p_.sub[s].lm_l2c;
        for (std::size_t i = 0; i < map.size(); ++i)
          lam_[s][i] = static_cast<T>(x[map[i]]);
        la::symv(la::Uplo::Upper, 1.0, f_[s].cview(), lam_[s].data(), 0.0,
                 q_[s].data());
      });
    }
    guard.rethrow();
    std::fill_n(y, p_.num_lambdas, 0.0);
    // fp64 accumulation at the dual-vector reduction.
    for (idx s = 0; s < nsub; ++s) {
      const auto& map = p_.sub[s].lm_l2c;
      for (std::size_t i = 0; i < map.size(); ++i)
        y[map[i]] += static_cast<double>(q_[s][i]);
    }
  }

  void apply_many(const double* x, double* y, idx nrhs) override {
    // One SYMM per subdomain — the BLAS-3 payoff of the explicit
    // representation for block solvers. The blocks are row-major so the
    // SYMM inner loops stream contiguously over the right-hand sides.
    const idx nsub = p_.num_subdomains();
    const std::size_t stride = static_cast<std::size_t>(p_.num_lambdas);
    ensure_block_buffers(nrhs);
    // The cached blocks may be wider than this batch; their row stride is
    // the allocated width.
    const std::size_t ld = static_cast<std::size_t>(blk_nrhs_);
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& map = p_.sub[s].lm_l2c;
        const idx m = p_.sub[s].num_local_lambdas();
        T* lam = lam_blk_[s].data();
        for (std::size_t i = 0; i < map.size(); ++i) {
          const double* xg = x + map[i];
          T* row = lam + i * ld;
          for (idx j = 0; j < nrhs; ++j)
            row[j] =
                static_cast<T>(xg[static_cast<std::size_t>(j) * stride]);
        }
        la::ConstDenseViewT<T> lamv(lam, m, nrhs, blk_nrhs_,
                                    la::Layout::RowMajor);
        la::DenseViewT<T> qv{q_blk_[s].data(), m, nrhs, blk_nrhs_,
                             la::Layout::RowMajor};
        la::symm(la::Uplo::Upper, 1.0, f_[s].cview(), lamv, 0.0, qv);
      });
    }
    guard.rethrow();
    std::fill_n(y, stride * static_cast<std::size_t>(nrhs), 0.0);
    for (idx s = 0; s < nsub; ++s) {
      const auto& map = p_.sub[s].lm_l2c;
      const T* q = q_blk_[s].data();
      for (std::size_t i = 0; i < map.size(); ++i) {
        double* yg = y + map[i];
        const T* row = q + i * ld;
        for (idx j = 0; j < nrhs; ++j)
          yg[static_cast<std::size_t>(j) * stride] +=
              static_cast<double>(row[j]);
      }
    }
  }

  /// Grow-only per-subdomain block workspaces; narrower batches reuse the
  /// leading columns with the allocated width as row stride.
  void ensure_block_buffers(idx nrhs) {
    if (blk_nrhs_ >= nrhs) return;
    const idx nsub = p_.num_subdomains();
    lam_blk_.resize(static_cast<std::size_t>(nsub));
    q_blk_.resize(lam_blk_.size());
    for (idx s = 0; s < nsub; ++s) {
      const idx m = p_.sub[s].num_local_lambdas();
      lam_blk_[s] = la::DenseMatrixT<T>(m, nrhs, la::Layout::RowMajor);
      q_blk_[s] = la::DenseMatrixT<T>(m, nrhs, la::Layout::RowMajor);
    }
    blk_nrhs_ = nrhs;
  }

  void alloc_dense_f() {
    const idx nsub = p_.num_subdomains();
    f_.resize(static_cast<std::size_t>(nsub));
    lam_.resize(f_.size());
    q_.resize(f_.size());
    for (idx s = 0; s < nsub; ++s) {
      const idx m = p_.sub[s].num_local_lambdas();
      f_[s] = la::DenseMatrixT<T>(m, m, la::Layout::ColMajor);
      lam_[s].resize(static_cast<std::size_t>(m));
      q_[s].resize(static_cast<std::size_t>(m));
    }
  }

  /// The fp64 assembly target of one subdomain: the persistent block
  /// itself for the fp64 operator, a caller-provided scratch for the fp32
  /// one (demoted into the persistent block via commit_f afterwards).
  [[nodiscard]] la::DenseView assembly_target(idx s,
                                              la::DenseMatrix& scratch) {
    if constexpr (std::is_same_v<T, float>) {
      const idx m = p_.sub[s].num_local_lambdas();
      scratch = la::DenseMatrix(m, m, la::Layout::ColMajor);
      return scratch.view();
    } else {
      return f_[s].view();
    }
  }

  /// Commits an assembled subdomain: the fp32 operator demotes the fp64
  /// scratch triangle into the persistent block; the fp64 one already
  /// assembled in place (no-op).
  void commit_f([[maybe_unused]] idx s,
                [[maybe_unused]] const la::DenseMatrix& scratch) {
    if constexpr (std::is_same_v<T, float>)
      la::demote_triangle(la::Uplo::Upper, scratch.cview(), f_[s].view());
  }

  /// " f32"-suffixed name for the float instantiation.
  [[nodiscard]] static const char* precision_name(const char* f64_name,
                                                  const char* f32_name) {
    return std::is_same_v<T, float> ? f32_name : f64_name;
  }

  std::vector<la::DenseMatrixT<T>> f_;
  std::vector<std::vector<T>> lam_, q_;
  std::vector<la::DenseMatrixT<T>> lam_blk_, q_blk_;
  idx blk_nrhs_ = 0;
};

/// expl mkl: augmented incomplete factorization (Schur path).
template <typename T>
class ExplicitCpuSchurDualOp final : public ExplicitCpuBaseT<T> {
  using Base = ExplicitCpuBaseT<T>;
  using Base::p_, Base::timings_;
  using UpdatePlan = DualOperator::UpdatePlan;

 public:
  ExplicitCpuSchurDualOp(const decomp::FetiProblem& p,
                         sparse::OrderingKind ordering, bool sparsity)
      : Base(p), ordering_(ordering), sparsity_(sparsity) {}

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const idx nsub = p_.num_subdomains();
    solvers_.resize(static_cast<std::size_t>(nsub));
    if (sparsity_) {
      boundary_.resize(solvers_.size());
      e_b_.resize(solvers_.size());
    }
    this->alloc_dense_f();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        solvers_[s] = std::make_unique<sparse::SupernodalCholesky>();
        if (sparsity_) {
          // Boundary-restricted Schur: the augmented factorization runs
          // against the nb-row selection E_b instead of the m-row B̃ᵢ.
          boundary_[s] = decomp::boundary_dofs(p_.sub[s]);
          e_b_[s] = decomp::boundary_selection(boundary_[s],
                                               p_.sub[s].ndof());
          if (boundary_[s].count() > 0)
            solvers_[s]->analyze_schur(p_.sub[s].k_reg, e_b_[s], ordering_);
          else
            solvers_[s]->analyze(p_.sub[s].k_reg, ordering_);
        } else {
          solvers_[s]->analyze_schur(p_.sub[s].k_reg, p_.sub[s].b,
                                     ordering_);
        }
      });
    }
    guard.rethrow();
  }

  void update_values() override {
    ScopedTimer t(timings_, "update_values");
    const UpdatePlan plan = this->begin_update();
    if (plan.skip()) return;
    const idx nd = static_cast<idx>(plan.dirty.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nd; ++k) {
      guard.run([&, k] {
        const idx s = plan.dirty[static_cast<std::size_t>(k)];
        la::DenseMatrix scratch;
        la::DenseView target = this->assembly_target(s, scratch);
        if (sparsity_) {
          const idx nb = boundary_[s].count();
          if (nb == 0) {
            solvers_[s]->factorize(p_.sub[s].k_reg);
            zero_fill(target);
          } else {
            la::DenseMatrix g(nb, nb, la::Layout::ColMajor);
            solvers_[s]->factorize_schur(p_.sub[s].k_reg, e_b_[s], g.view(),
                                         la::Uplo::Upper);
            expand_boundary(boundary_[s].b_b, g.view(), la::Uplo::Upper,
                            target);
            this->solve_columns_.fetch_add(nb, std::memory_order_relaxed);
          }
        } else {
          solvers_[s]->factorize_schur(p_.sub[s].k_reg, p_.sub[s].b, target,
                                       la::Uplo::Upper);
          this->solve_columns_.fetch_add(p_.sub[s].num_local_lambdas(),
                                         std::memory_order_relaxed);
        }
        this->commit_f(s, scratch);
      });
    }
    guard.rethrow();
    this->end_update(plan);
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override {
    return sparsity_
               ? Base::precision_name("expl mkl sp", "expl mkl sp f32")
               : Base::precision_name("expl mkl", "expl mkl f32");
  }

 private:
  sparse::OrderingKind ordering_;
  bool sparsity_;
  std::vector<std::unique_ptr<sparse::SupernodalCholesky>> solvers_;
  std::vector<decomp::BoundaryDofs> boundary_;  ///< sp only
  std::vector<la::Csr> e_b_;                    ///< sp only: selection E_b
};

/// expl cholmod: factor extraction, densified B̃ᵀ, TRSM + SYRK.
template <typename T>
class ExplicitCpuTrsmDualOp final : public ExplicitCpuBaseT<T> {
  using Base = ExplicitCpuBaseT<T>;
  using Base::p_, Base::timings_;
  using UpdatePlan = DualOperator::UpdatePlan;

 public:
  ExplicitCpuTrsmDualOp(const decomp::FetiProblem& p,
                        sparse::OrderingKind ordering, bool sparsity)
      : Base(p), ordering_(ordering), sparsity_(sparsity) {}

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const idx nsub = p_.num_subdomains();
    solvers_.resize(static_cast<std::size_t>(nsub));
    bperm_.resize(solvers_.size());
    if (sparsity_) boundary_.resize(solvers_.size());
    this->alloc_dense_f();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        solvers_[s] = std::make_unique<sparse::SimplicialCholesky>();
        solvers_[s]->analyze(p_.sub[s].k_reg, ordering_);
        if (sparsity_) {
          // Boundary-restricted RHS: the forward solve runs against the
          // nb-column selection E_bᵀ instead of the m-column densified B̃ᵢᵀ.
          boundary_[s] = decomp::boundary_dofs(p_.sub[s]);
          bperm_[s] = permute_columns(
              decomp::boundary_selection(boundary_[s], p_.sub[s].ndof()),
              solvers_[s]->permutation());
        } else {
          bperm_[s] =
              permute_columns(p_.sub[s].b, solvers_[s]->permutation());
        }
      });
    }
    guard.rethrow();
  }

  void update_values() override {
    ScopedTimer t(timings_, "update_values");
    const UpdatePlan plan = this->begin_update();
    if (plan.skip()) return;
    const idx nd = static_cast<idx>(plan.dirty.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nd; ++k) {
      guard.run([&, k] {
        const idx s = plan.dirty[static_cast<std::size_t>(k)];
        const auto& fs = p_.sub[s];
        solvers_[s]->factorize(fs.k_reg);
        const la::Csr& u = solvers_[s]->factor_upper();
        la::DenseMatrix scratch;
        la::DenseView target = this->assembly_target(s, scratch);
        // The solve panel: the sp variant restricts it to the nb boundary
        // columns (E_b Pᵀ)ᵀ; the dense one densifies all m columns of
        // (B̃ᵢ Pᵀ)ᵀ — the point the paper makes about this approach: the
        // sparsity of B̃ᵢ is not used.
        const idx cols = bperm_[s].nrows();
        if (sparsity_ && cols == 0) {
          zero_fill(target);
          this->commit_f(s, scratch);
          return;
        }
        la::DenseMatrix x(fs.ndof(), cols, la::Layout::RowMajor);
        for (idx r = 0; r < bperm_[s].nrows(); ++r)
          for (idx k = bperm_[s].row_begin(r); k < bperm_[s].row_end(r); ++k)
            x.at(bperm_[s].col(k), r) = bperm_[s].val(k);
        // Forward solve L X = X (U^T X = X), then the Gram matrix X^T X:
        // the full F̃ for the dense variant, G_bb = E_b K⁻¹ E_bᵀ for sp.
        la::sp_trsm(la::Uplo::Upper, la::Trans::Yes, u, x.view());
        if (sparsity_) {
          la::DenseMatrix g(cols, cols, la::Layout::ColMajor);
          la::syrk(la::Uplo::Upper, la::Trans::Yes, 1.0, x.cview(), 0.0,
                   g.view());
          expand_boundary(boundary_[s].b_b, g.view(), la::Uplo::Upper,
                          target);
        } else {
          la::syrk(la::Uplo::Upper, la::Trans::Yes, 1.0, x.cview(), 0.0,
                   target);
        }
        this->solve_columns_.fetch_add(cols, std::memory_order_relaxed);
        this->commit_f(s, scratch);
      });
    }
    guard.rethrow();
    this->end_update(plan);
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override {
    return sparsity_ ? Base::precision_name("expl cholmod sp",
                                            "expl cholmod sp f32")
                     : Base::precision_name("expl cholmod", "expl cholmod f32");
  }

 private:
  sparse::OrderingKind ordering_;
  bool sparsity_;
  std::vector<std::unique_ptr<sparse::SimplicialCholesky>> solvers_;
  std::vector<la::Csr> bperm_;  ///< (B̃ᵢ Pᵀ) dense variant, (E_b Pᵀ) sp
  std::vector<decomp::BoundaryDofs> boundary_;  ///< sp only
};

}  // namespace

std::unique_ptr<DualOperator> make_implicit_cpu(
    const decomp::FetiProblem& p, sparse::Backend backend,
    sparse::OrderingKind ordering) {
  return std::make_unique<ImplicitCpuDualOp>(p, backend, ordering);
}

std::unique_ptr<DualOperator> make_explicit_cpu_schur(
    const decomp::FetiProblem& p, sparse::OrderingKind ordering,
    Precision precision, bool sparsity) {
  if (precision == Precision::F32)
    return std::make_unique<ExplicitCpuSchurDualOp<float>>(p, ordering,
                                                           sparsity);
  return std::make_unique<ExplicitCpuSchurDualOp<double>>(p, ordering,
                                                          sparsity);
}

std::unique_ptr<DualOperator> make_explicit_cpu_trsm(
    const decomp::FetiProblem& p, sparse::OrderingKind ordering,
    Precision precision, bool sparsity) {
  if (precision == Precision::F32)
    return std::make_unique<ExplicitCpuTrsmDualOp<float>>(p, ordering,
                                                          sparsity);
  return std::make_unique<ExplicitCpuTrsmDualOp<double>>(p, ordering,
                                                         sparsity);
}

void register_cpu_dual_operators(DualOperatorRegistry& registry) {
  using R = Representation;
  using D = ExecDevice;
  using B = sparse::Backend;
  const auto axes = [](R r, B b, Precision prec = Precision::F64,
                       bool sp = false) {
    ApproachAxes a;
    a.repr = r;
    a.device = D::Cpu;
    a.backend = b;
    a.precision = prec;
    a.sparsity = sp;
    return a;
  };
  registry.add(
      {"impl mkl", axes(R::Implicit, B::Supernodal),
       "implicit application, supernodal (PARDISO-like) solver on the CPU"},
      [](const decomp::FetiProblem& p, const DualOpConfig& c, gpu::ExecutionContext*) {
        return make_implicit_cpu(p, B::Supernodal, c.ordering);
      });
  registry.add(
      {"impl cholmod", axes(R::Implicit, B::Simplicial),
       "implicit application, simplicial (CHOLMOD-like) solver on the CPU"},
      [](const decomp::FetiProblem& p, const DualOpConfig& c, gpu::ExecutionContext*) {
        return make_implicit_cpu(p, B::Simplicial, c.ordering);
      });
  for (bool sp : {false, true}) {
    const char* sp_suffix = sp ? " sp" : "";
    const char* restrict_note =
        sp ? ", boundary-restricted RHS panel" : "";
    for (Precision prec : {Precision::F64, Precision::F32}) {
      const char* suffix = prec == Precision::F32 ? " f32" : "";
      const char* storage =
          prec == Precision::F32 ? ", fp32 storage + fp64 accumulation" : "";
      registry.add(
          {std::string("expl mkl") + sp_suffix + suffix,
           axes(R::Explicit, B::Supernodal, prec, sp),
           std::string("explicit F̃ via the augmented Schur complement on "
                       "the CPU") +
               restrict_note + storage},
          [prec, sp](const decomp::FetiProblem& p, const DualOpConfig& c,
                     gpu::ExecutionContext*) {
            return make_explicit_cpu_schur(p, c.ordering, prec, sp);
          });
      registry.add(
          {std::string("expl cholmod") + sp_suffix + suffix,
           axes(R::Explicit, B::Simplicial, prec, sp),
           std::string("explicit F̃ via factor extraction + dense TRSM on "
                       "the CPU") +
               restrict_note + storage},
          [prec, sp](const decomp::FetiProblem& p, const DualOpConfig& c,
                     gpu::ExecutionContext*) {
            return make_explicit_cpu_trsm(p, c.ordering, prec, sp);
          });
    }
  }
}

}  // namespace feti::core
