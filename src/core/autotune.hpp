#pragma once

// Auto-configuration of the explicit-assembly parameters — the Table-II
// recommendation logic of the paper ("In our implementation, we have an
// option to auto-configure these parameters based on the problem that is
// being solved").

#include "core/config.hpp"

namespace feti::core {

/// Returns the recommended Table-II parameter set for a given CUDA API
/// generation, problem dimensionality, and subdomain size (DOFs).
ExplicitGpuOptions recommend_options(gpu::sparse::Api api, int dim,
                                     idx dofs_per_subdomain);

/// Batched-workload variant: `nrhs_hint` is the number of simultaneous
/// right-hand sides the application phase is expected to serve (block PCPG
/// / multi-load-case runs). More in-flight RHS favour more streams, up to
/// the per-device sweet spot.
ExplicitGpuOptions recommend_options(gpu::sparse::Api api, int dim,
                                     idx dofs_per_subdomain, int nrhs_hint);

/// One-stop recommendation for an axis tuple: selects the implementation
/// (DualOpConfig::key) and, for the GPU-backed axes, fills the Table-II
/// assembly parameters for that tuple's sparse API generation. CPU axes
/// keep the defaults (the explicit CPU paths have no Table-I knobs).
DualOpConfig recommend_config(const ApproachAxes& axes, int dim,
                              idx dofs_per_subdomain, int nrhs_hint = 1);

}  // namespace feti::core
