// Service-layer throughput/latency harness — the "server never solves one
// problem at a time" scenario the ROADMAP's solver-as-a-service item calls
// for. Three phases:
//
//  1. Wave throughput: N compatible jobs (same fingerprint, distinct
//     load-multiplier right-hand sides — scaled copies of the physical d,
//     the span the dual system is actually consistent over) submitted as a
//     burst through the batching service vs one-at-a-time serial
//     submission. Hard gate: batched-wave jobs/sec beats serial jobs/sec —
//     the whole point of packing compatible solves into solve_step_many
//     waves.
//  2. Pooled resubmission: a repeated fingerprint with unchanged K must be
//     a pool hit that skips update_values() entirely. Hard gate:
//     pool_hit && values_cached && refreshed_subdomains == 0; a dirty
//     resubmission must refresh again.
//  3. Poisson arrival mix: heterogeneous jobs (two problem sizes, explicit
//     fp64/fp32 and implicit CPU keys, physical and custom load cases)
//     arriving with exponential inter-arrival times; reports jobs/sec and
//     p50/p99 queue/latency percentiles plus pool and wave statistics
//     (advisory — load-dependent, no hard gate).
//
// `--quick` runs the CI smoke configuration: smaller problems and counts,
// same hard gates.

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common.hpp"
#include "service/solver_service.hpp"
#include "util/rng.hpp"

using namespace feti;
using namespace feti::bench;

namespace {

/// The physical dual right-hand side d of eq. (7), computed once per
/// problem through a throwaway CPU operator. Job mixes scale it per tenant
/// (load multipliers) — an arbitrary random vector is NOT a valid dual RHS
/// (F is singular beyond the coarse space, so PCPG would stall on the
/// inconsistent component).
std::vector<double> physical_d(const decomp::FetiProblem& p) {
  auto cfg = core::recommend_config("impl mkl", 2, p.max_subdomain_dofs(), 1,
                                    gpu::DeviceTopology{1, 0});
  auto op = core::make_dual_operator(p, cfg, nullptr);
  op->prepare();
  op->update_values();
  std::vector<double> d(static_cast<std::size_t>(p.num_lambdas));
  op->compute_d(d.data());
  return d;
}

std::vector<double> scaled(const std::vector<double>& d, double factor) {
  std::vector<double> v = d;
  for (auto& x : v) x *= factor;
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const int burst_jobs = quick ? 12 : 32;
  const int poisson_jobs = quick ? 16 : 64;
  BuiltProblem small = build_2d(fem::Physics::HeatTransfer, quick ? 6 : 8,
                                mesh::ElementOrder::Linear);
  BuiltProblem big = build_2d(fem::Physics::HeatTransfer, quick ? 8 : 14,
                              mesh::ElementOrder::Linear);
  std::printf("=== solver service: %d-job burst + %d-job Poisson mix "
              "(%s mode; %d/%d dofs per subdomain) ===\n",
              burst_jobs, poisson_jobs, quick ? "quick" : "full",
              small.dofs_per_subdomain, big.dofs_per_subdomain);
  const std::vector<double> d_small = physical_d(small.problem);
  const std::vector<double> d_big = physical_d(big.problem);

  auto make_job = [&](const BuiltProblem& bp, std::string key,
                      std::vector<double> rhs) {
    service::SolveJob job;
    job.problem = &bp.problem;
    job.key = std::move(key);
    job.pcpg.rel_tolerance = 1e-8;
    job.pcpg.max_iterations = 2000;
    job.dual_rhs = std::move(rhs);
    return job;
  };

  // -- Phase 1: batched waves vs serial one-at-a-time submission ----------
  // Both services run one shard (the whole device) so the comparison
  // isolates wave packing itself, not device splitting.
  double serial_jps = 0.0, batched_jps = 0.0;
  {
    service::ServiceOptions serial_opts;
    serial_opts.num_shards = 1;
    serial_opts.batch_waves = false;
    service::SolverService serial(serial_opts);
    serial.submit(make_job(small, "expl legacy", {})).get();  // warm the pool
    Timer t;
    for (int j = 0; j < burst_jobs; ++j)
      serial
          .submit(make_job(small, "expl legacy",
                           scaled(d_small, 1.0 + 0.1 * j)))
          .get();
    serial_jps = burst_jobs / t.seconds();
  }
  int max_wave_seen = 1;
  double batched_h2d_mb = 0.0, batched_d2h_mb = 0.0;
  {
    service::ServiceOptions opts;
    opts.num_shards = 1;
    opts.max_wave = 8;
    service::SolverService batched(opts);
    batched.submit(make_job(small, "expl legacy", {})).get();  // warm the pool
    std::vector<service::SolveJob> jobs;
    for (int j = 0; j < burst_jobs; ++j)
      jobs.push_back(
          make_job(small, "expl legacy", scaled(d_small, 1.0 + 0.1 * j)));
    Timer t;
    std::vector<std::future<service::JobResult>> futures =
        batched.submit(std::move(jobs));
    for (auto& f : futures) {
      service::JobResult r = f.get();
      max_wave_seen = std::max(max_wave_seen, r.wave_size);
      // Every job of a wave reports the wave-level TransferCounters delta
      // (see FetiStepResult::pcpg_h2d_bytes), so the per-job share sums to
      // the burst's true PCIe total without double counting.
      batched_h2d_mb +=
          static_cast<double>(r.pcpg_h2d_bytes) / r.wave_size / 1e6;
      batched_d2h_mb +=
          static_cast<double>(r.pcpg_d2h_bytes) / r.wave_size / 1e6;
    }
    batched_jps = burst_jobs / t.seconds();
  }
  Table burst({"submission", "jobs", "jobs/sec", "max wave", "pcpg H2D [MB]",
               "pcpg D2H [MB]"});
  burst.add_row({"serial", std::to_string(burst_jobs),
                 Table::num(serial_jps, 1), "1", "-", "-"});
  burst.add_row({"batched waves", std::to_string(burst_jobs),
                 Table::num(batched_jps, 1), std::to_string(max_wave_seen),
                 Table::num(batched_h2d_mb, 2), Table::num(batched_d2h_mb, 2)});
  burst.print();
  const bool batched_beats_serial = batched_jps > serial_jps;
  const bool waves_packed = max_wave_seen > 1;

  // -- Phase 2: pooled resubmission skips update_values -------------------
  bool resubmit_cached = false, dirty_refreshes = false, cold_was_miss = false;
  {
    service::ServiceOptions opts;
    opts.num_shards = 2;
    service::SolverService svc(opts);
    service::JobResult cold =
        svc.submit(make_job(big, "expl legacy", {})).get();
    cold_was_miss = !cold.pool_hit;
    service::JobResult warm =
        svc.submit(make_job(big, "expl legacy", {})).get();
    resubmit_cached = warm.pool_hit && warm.values_cached &&
                      warm.refreshed_subdomains == 0;
    decomp::scale_step(const_cast<decomp::FetiProblem&>(big.problem), 1.05);
    service::JobResult dirty =
        svc.submit(make_job(big, "expl legacy", {})).get();
    dirty_refreshes = dirty.pool_hit && !dirty.values_cached &&
                      dirty.refreshed_subdomains ==
                          big.problem.num_subdomains();
    std::printf("\nresubmission: cold miss=%d, warm hit skipped "
                "update_values=%d (refreshed %ld), dirty hit refreshed all="
                "%d\n",
                cold_was_miss ? 1 : 0, resubmit_cached ? 1 : 0,
                warm.refreshed_subdomains, dirty_refreshes ? 1 : 0);
  }

  // -- Phase 3: Poisson arrival mix ---------------------------------------
  {
    service::ServiceOptions opts;
    opts.num_shards = 2;
    opts.pool_budget_bytes = 256ull << 20;
    service::SolverService svc(opts);
    Rng rng(7);
    const double mean_interarrival_s = quick ? 0.002 : 0.004;
    const char* keys[] = {"expl legacy", "expl legacy f32", "impl mkl"};
    std::vector<std::future<service::JobResult>> futures;
    Timer t;
    for (int j = 0; j < poisson_jobs; ++j) {
      const bool use_big = rng.raw() % 3 == 0;
      const BuiltProblem& bp = use_big ? big : small;
      std::vector<double> rhs;
      if (rng.raw() % 2 == 0)  // else empty = the physical d
        rhs = scaled(use_big ? d_big : d_small, rng.uniform(0.5, 2.0));
      service::SolveJob job = make_job(bp, keys[rng.raw() % 3], std::move(rhs));
      job.tenant = static_cast<std::uint64_t>(j % 4);
      futures.push_back(svc.submit(std::move(job)));
      const double gap = -mean_interarrival_s * std::log(1.0 - rng.uniform());
      std::this_thread::sleep_for(std::chrono::duration<double>(gap));
    }
    std::vector<double> queue_s, latency_s, pcpg_s;
    long batched_count = 0, total_iterations = 0;
    int min_iterations = 0, max_iterations = 0;
    double mix_h2d_mb = 0.0, mix_d2h_mb = 0.0;
    for (auto& f : futures) {
      service::JobResult r = f.get();
      queue_s.push_back(r.queue_seconds);
      latency_s.push_back(r.latency_seconds);
      pcpg_s.push_back(r.pcpg_seconds);
      mix_h2d_mb += static_cast<double>(r.pcpg_h2d_bytes) / r.wave_size / 1e6;
      mix_d2h_mb += static_cast<double>(r.pcpg_d2h_bytes) / r.wave_size / 1e6;
      if (r.wave_size > 1) ++batched_count;
      total_iterations += r.pcpg_iterations;
      min_iterations = queue_s.size() == 1
                           ? r.pcpg_iterations
                           : std::min(min_iterations, r.pcpg_iterations);
      max_iterations = std::max(max_iterations, r.pcpg_iterations);
    }
    const double elapsed = t.seconds();
    const LatencySummary lat = summarize_latencies(latency_s);
    const LatencySummary que = summarize_latencies(queue_s);
    const LatencySummary pcg = summarize_latencies(pcpg_s);
    const service::PoolStats ps = svc.pool_stats();
    const service::ServiceStats ss = svc.stats();

    std::printf("\n");
    Table mix({"metric", "value"});
    mix.add_row({"jobs/sec", Table::num(poisson_jobs / elapsed, 1)});
    mix.add_row({"latency p50/p99 [ms]", Table::num(lat.p50 * 1e3, 2) + " / " +
                                             Table::num(lat.p99 * 1e3, 2)});
    mix.add_row({"queue wait p50/p99 [ms]",
                 Table::num(que.p50 * 1e3, 2) + " / " +
                     Table::num(que.p99 * 1e3, 2)});
    mix.add_row({"pcpg p50/p99 [ms]", Table::num(pcg.p50 * 1e3, 2) + " / " +
                                          Table::num(pcg.p99 * 1e3, 2)});
    mix.add_row({"jobs sharing a wave", std::to_string(batched_count) + "/" +
                                            std::to_string(poisson_jobs)});
    mix.add_row({"pcpg iters min/mean/max",
                 std::to_string(min_iterations) + "/" +
                     Table::num(static_cast<double>(total_iterations) /
                                    poisson_jobs, 1) +
                     "/" + std::to_string(max_iterations)});
    mix.add_row({"waves", std::to_string(ss.waves)});
    mix.add_row({"pool hits/misses/evictions",
                 std::to_string(ps.hits) + "/" + std::to_string(ps.misses) +
                     "/" + std::to_string(ps.evictions)});
    mix.add_row({"pool resident [MB]",
                 Table::num(static_cast<double>(ps.resident_bytes) / 1e6, 1)});
    mix.add_row({"pcpg H2D/D2H [MB]", Table::num(mix_h2d_mb, 2) + " / " +
                                          Table::num(mix_d2h_mb, 2)});
    mix.print();
    std::printf("\nCSV:\n");
    mix.print_csv(std::cout);
  }

  shape_check("batched-wave submission beats serial one-job-at-a-time "
              "throughput",
              batched_beats_serial);
  shape_check("burst of compatible jobs actually shared waves", waves_packed);
  shape_check("repeated fingerprint is a pool hit that skips update_values "
              "(values_cached, zero refreshed subdomains)",
              cold_was_miss && resubmit_cached);
  shape_check("dirty resubmission refreshes every subdomain again",
              dirty_refreshes);
  return (batched_beats_serial && waves_packed && cold_was_miss &&
          resubmit_cached && dirty_refreshes)
             ? 0
             : 1;
}
