#pragma once

// The Total FETI solver driver — Algorithm 2 of the paper: one preparation
// phase, then per time step a FETI preprocessing (numeric factorization +
// explicit assembly where configured) followed by the PCPG iteration and
// primal recovery.

#include <cstdint>
#include <memory>
#include <string>

#include "core/krylov_recycler.hpp"
#include "core/pcpg.hpp"
#include "precond/preconditioner.hpp"

namespace feti::core {

struct FetiSolverOptions {
  DualOpConfig dualop;
  PcpgOptions pcpg;
};

struct FetiStepResult {
  std::vector<double> u;       ///< gathered global solution
  /// PCPG iterations this step took to converge (or hit max_iterations).
  int pcpg_iterations = 0;
  double rel_residual = 0.0;
  bool converged = false;
  /// Normalized preconditioner registry key that served this step.
  std::string preconditioner = "none";
  /// Width of the recycled Krylov deflation space PCPG started from this
  /// step (0 = cold start or recycling off — see core/krylov_recycler.hpp).
  int deflation_dim = 0;
  // Wall-clock phase split of the step. The three phases are the shared
  // measurement path for benches and the service layer's latency report
  // (bench/common.hpp aggregates them into percentile summaries):
  //   preprocess — DualOperator::update_values(),
  //   pcpg       — the whole PCPG iteration (projector + preconditioner +
  //                operator applies + recurrences),
  //   apply      — the dual-operator application share of the pcpg phase
  //                (from the operator's own "apply" timing registry).
  double preprocess_seconds = 0.0;  ///< DualOperator::update_values() time
  double pcpg_seconds = 0.0;   ///< wall-clock PCPG iteration time
  double apply_seconds = 0.0;  ///< total dual-operator application time
  double step_seconds = 0.0;
  // Time-step cache outcome of this step's update_values() (deltas of
  // DualOperator::cache_stats()): how many subdomains were refactorized vs
  // served from cache, and whether the whole preprocessing was skipped.
  long refreshed_subdomains = 0;
  long skipped_subdomains = 0;
  /// True when update_values() took the skip path (cache_stats() counted a
  /// skipped step — nothing was dirty, nothing was refactorized).
  bool values_cached = false;
  /// F̃ storage/apply precision of the operator that served this step
  /// (resolved from the configured key's axes). PCPG itself always
  /// iterates in fp64; F32 means the explicit blocks were stored and
  /// applied in fp32 with fp64 accumulation.
  Precision operator_precision = Precision::F64;
  /// PCIe traffic of this step's PCPG phase (deltas of the process-wide
  /// gpu::TransferCounters around the solve; 0 for CPU operators). Under
  /// the device-state PCPG mode the per-iteration D2H share is O(scalars);
  /// the host-staged loop instead pays O(num_lambdas) vector round trips
  /// per iteration. Concurrent solves on other threads pollute the deltas
  /// (the counters are process-global) — single-solve contexts only.
  std::uint64_t pcpg_h2d_bytes = 0;
  std::uint64_t pcpg_d2h_bytes = 0;
};

/// Drives one problem through Algorithm 2. Re-entrancy contract: distinct
/// FetiSolver instances are safe to run concurrently from different
/// threads, including instances sharing one FetiProblem — solving reads
/// the problem but never mutates it, and the operator/cache counters are
/// safe for concurrent readers. A single instance is NOT thread-safe: its
/// lifecycle calls (prepare / solve_step / solve_step_many) must be
/// externally serialized, which is exactly the exclusive-checkout
/// discipline the service layer's operator pool enforces. Mutating the
/// problem (scale_step, mark_values_changed) while any solver on it is
/// mid-step is a data race on the caller.
class FetiSolver {
 public:
  /// `context` supplies the execution resources for GPU-backed dual
  /// operators (ignored by CPU configurations).
  FetiSolver(const decomp::FetiProblem& problem, FetiSolverOptions options,
             gpu::ExecutionContext* context = nullptr);

  /// Preparation (Algorithm 2, line 1).
  void prepare();

  /// One time step (lines 2-7): preprocessing + PCPG + primal solution.
  FetiStepResult solve_step();

  /// One time step solved for a block of dual right-hand sides sharing the
  /// pattern and the coarse constraint (load multipliers, residual probes,
  /// deflation vectors): preprocessing runs once, then all systems iterate
  /// in lockstep through Pcpg::solve_many, so every PCPG iteration reaches
  /// the dual operator as one batched apply(X, Y, nrhs) — served
  /// device-side by the GPU operator families. Each dual_rhs[j] plays the
  /// role of the d vector of eq. (7); an *empty* dual_rhs[j] requests the
  /// physical d computed from the problem's current f (computed once per
  /// call, shared by every empty entry). Results are returned in input
  /// order, with the shared preprocessing/pcpg/apply/step times repeated
  /// in every entry.
  std::vector<FetiStepResult> solve_step_many(
      const std::vector<std::vector<double>>& dual_rhs);

  [[nodiscard]] DualOperator& dual_operator() { return *dualop_; }
  [[nodiscard]] const Projector& projector() const { return projector_; }

  /// Swaps the PCPG options for subsequent steps. The operator and the
  /// projector are untouched, so a pooled long-lived solver can serve
  /// tenants with different tolerances/preconditioners between checkouts —
  /// a changed preconditioner key rebuilds (and re-prepares) the pooled
  /// preconditioner lazily on the next step.
  void set_pcpg_options(const PcpgOptions& pcpg) { options_.pcpg = pcpg; }
  [[nodiscard]] const FetiSolverOptions& options() const { return options_; }
  [[nodiscard]] bool prepared() const { return prepared_; }

  /// The pooled preconditioner instance for the current options key (null
  /// for "none" or before the first prepare()/solve_step()).
  [[nodiscard]] precond::Preconditioner* preconditioner() {
    return precond_.get();
  }

  /// The cross-step Krylov recycler (null until the first step with
  /// pcpg.block.recycle enabled). Exposed for tests/diagnostics; lifecycle
  /// (creation, budget changes, invalidation on refreshed subdomains) is
  /// the solver's.
  [[nodiscard]] KrylovRecycler* recycler() { return recycler_.get(); }

  /// Scopes the recycled Krylov state to one tenant: a changed scope drops
  /// the retained panel, so a pooled solver serving several tenants under
  /// the service layer never replays one tenant's Krylov space in
  /// another's solve. The scope value itself is opaque (the service passes
  /// the wave's tenant id).
  void set_recycle_scope(std::uint64_t scope) {
    if (scope != recycle_scope_ && recycler_ != nullptr) recycler_->clear();
    recycle_scope_ = scope;
  }

 private:
  /// (Re)creates + prepares the pooled preconditioner when the options key
  /// changed since the last step; resolves "" to "none".
  void ensure_preconditioner();

  /// Creates/rebuilds (or drops) the recycler to match the current block
  /// options; called at the top of every step.
  void ensure_recycler();

  const decomp::FetiProblem& problem_;
  FetiSolverOptions options_;
  gpu::ExecutionContext* context_;
  std::unique_ptr<DualOperator> dualop_;
  Projector projector_;
  std::unique_ptr<precond::Preconditioner> precond_;
  std::string precond_key_ = "none";
  std::unique_ptr<KrylovRecycler> recycler_;
  std::uint64_t recycle_scope_ = 0;
  bool prepared_ = false;
};

}  // namespace feti::core
