#include "core/dual_operator.hpp"

#include <omp.h>

#include <numeric>

#include "core/dualop_registry.hpp"
#include "util/omp_guard.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"

namespace feti::core {

void DualOperator::apply(const double* x, double* y) {
  ScopedTimer t(timings_, "apply");
  apply_one(x, y);
}

void DualOperator::apply(const double* x, double* y, idx nrhs) {
  check(nrhs >= 0, "DualOperator::apply: negative nrhs");
  if (nrhs == 0) return;
  ScopedTimer t(timings_, "apply");
  if (nrhs == 1) {
    apply_one(x, y);
  } else {
    apply_many(x, y, nrhs);
  }
}

void DualOperator::apply_device(const double* d_x, double* d_y, idx nrhs) {
  check(nrhs >= 0, "DualOperator::apply_device: negative nrhs");
  if (nrhs == 0) return;
  ScopedTimer t(timings_, "apply");
  apply_many_device(d_x, d_y, nrhs);
}

void DualOperator::apply_many_device(const double*, double*, idx) {
  check(false, std::string(name()) +
                   ": no device-resident apply (device_context() is null)");
}

void DualOperator::apply_many(const double* x, double* y, idx nrhs) {
  // Fallback: one single-vector application per column. Every built-in
  // implementation overrides this with a real block path; the counter lets
  // tests (and callers) detect an operator that silently degrades a batch
  // into nrhs full passes.
  ++loop_fallbacks_;
  const std::size_t stride = static_cast<std::size_t>(p_.num_lambdas);
  for (idx j = 0; j < nrhs; ++j)
    apply_one(x + static_cast<std::size_t>(j) * stride,
              y + static_cast<std::size_t>(j) * stride);
}

DualOperator::UpdatePlan DualOperator::begin_update() {
  return tracker_.begin(p_, cache_stats_);
}

DualOperator::UpdatePlan DualOperator::begin_update(
    const std::vector<idx>& owned) {
  return tracker_.begin(p_, owned, cache_stats_);
}

void DualOperator::end_update(const UpdatePlan& plan) {
  tracker_.end(p_, plan, cache_stats_);
}

void DualOperator::scatter_cpu(const double* cluster, idx sub,
                               double* local) const {
  const auto& map = p_.sub[sub].lm_l2c;
  for (std::size_t i = 0; i < map.size(); ++i) local[i] = cluster[map[i]];
}

void DualOperator::gather_add_cpu(const double* local, idx sub,
                                  double* cluster) const {
  const auto& map = p_.sub[sub].lm_l2c;
  for (std::size_t i = 0; i < map.size(); ++i) cluster[map[i]] += local[i];
}

void DualOperator::compute_d(double* d) const {
  const idx nsub = p_.num_subdomains();
  std::vector<std::vector<double>> q(static_cast<std::size_t>(nsub));
  OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
  for (idx s = 0; s < nsub; ++s) {
    guard.run([&, s] {
      const auto& fs = p_.sub[s];
      std::vector<double> x(static_cast<std::size_t>(fs.ndof()));
      kplus_solve(s, fs.sys.f.data(), x.data());
      q[s].assign(static_cast<std::size_t>(fs.num_local_lambdas()), 0.0);
      la::spmv(1.0, fs.b, x.data(), 0.0, q[s].data());
    });
  }
  guard.rethrow();
  for (idx j = 0; j < p_.num_lambdas; ++j) d[j] = -p_.c[j];
  for (idx s = 0; s < nsub; ++s) gather_add_cpu(q[s].data(), s, d);
}

void DualOperator::primal_solution(
    const double* lambda, const std::vector<double>& alpha,
    std::vector<std::vector<double>>& u) const {
  const idx nsub = p_.num_subdomains();
  check(alpha.size() == static_cast<std::size_t>(p_.total_kernel_dim()),
        "primal_solution: alpha size mismatch");
  u.resize(static_cast<std::size_t>(nsub));
  std::vector<idx> alpha_offset(static_cast<std::size_t>(nsub) + 1, 0);
  for (idx s = 0; s < nsub; ++s)
    alpha_offset[s + 1] = alpha_offset[s] + p_.sub[s].kernel_dim();
  OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
  for (idx s = 0; s < nsub; ++s) {
    guard.run([&, s] {
      const auto& fs = p_.sub[s];
      std::vector<double> lam(static_cast<std::size_t>(fs.num_local_lambdas()));
      scatter_cpu(lambda, s, lam.data());
      std::vector<double> rhs(fs.sys.f);
      la::spmv_trans(-1.0, fs.b, lam.data(), 1.0, rhs.data());
      u[s].assign(static_cast<std::size_t>(fs.ndof()), 0.0);
      kplus_solve(s, rhs.data(), u[s].data());
      // + Rᵢ αᵢ.
      la::gemv(1.0, fs.r.cview(), la::Trans::No,
               alpha.data() + alpha_offset[s], 1.0, u[s].data());
    });
  }
  guard.rethrow();
}

std::unique_ptr<DualOperator> make_dual_operator(
    const decomp::FetiProblem& problem, const DualOpConfig& config,
    gpu::ExecutionContext* context) {
  return DualOperatorRegistry::instance().create(config.resolved_key(),
                                                 problem, config, context);
}

}  // namespace feti::core
