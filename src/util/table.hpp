#pragma once

// Plain-text table / CSV emitter used by the bench harnesses to print the
// rows and series of the paper's tables and figures.

#include <iostream>
#include <string>
#include <vector>

namespace feti {

/// Column-aligned text table with an optional CSV dump. Cells are strings;
/// numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Pretty-print with column alignment.
  void print(std::ostream& os = std::cout) const;

  /// Machine-readable CSV (comma separated, header first).
  void print_csv(std::ostream& os) const;

  static std::string num(double v, int precision = 4);
  static std::string sci(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace feti
