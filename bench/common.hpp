#pragma once

// Shared infrastructure for the figure/table reproduction harnesses:
// problem builders with target per-subdomain sizes, timing helpers for the
// preprocessing and application phases, and approach sweeps.
//
// Problem sizes are scaled to this machine (the paper ran on 128-core +
// A100 nodes with up to 2000 subdomains; the harnesses use a 2x2 / 2x2x2
// subdomain grid and sweep per-subdomain DOFs). All harnesses print both a
// human-readable table and CSV, plus a "shape check" verdict comparing the
// measured trend against the paper's qualitative claim.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/autotune.hpp"
#include "core/feti_solver.hpp"
#include "gpu/runtime.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace feti::bench {

struct BuiltProblem {
  decomp::FetiProblem problem;
  idx dofs_per_subdomain = 0;
  idx num_subdomains = 0;
};

/// The execution context shared by a harness run: one virtual device
/// configured from the environment (FETI_VGPU_*), its stream pool, and the
/// temporary-pool workspace. Harnesses that need a custom device (e.g.
/// latency sweeps) construct their own gpu::ExecutionContext instead.
inline gpu::ExecutionContext& shared_context() {
  static gpu::ExecutionContext ctx{gpu::DeviceConfig::from_env()};
  return ctx;
}

/// 2D problem with ~target DOFs per subdomain on a 2x2 subdomain grid.
inline BuiltProblem build_2d(fem::Physics physics, idx cells_per_subdomain,
                             mesh::ElementOrder order) {
  const idx c = cells_per_subdomain, splits = 2;
  mesh::Mesh m = mesh::make_grid_2d(c * splits, c * splits, order);
  auto dec = mesh::decompose_2d(m, c * splits, c * splits, splits, splits);
  BuiltProblem bp{decomp::build_feti_problem(dec, physics), 0,
                  static_cast<idx>(dec.subdomains.size())};
  bp.dofs_per_subdomain = bp.problem.max_subdomain_dofs();
  return bp;
}

/// 3D problem with ~target DOFs per subdomain on a 2x2x2 subdomain grid.
inline BuiltProblem build_3d(fem::Physics physics, idx cells_per_subdomain,
                             mesh::ElementOrder order) {
  const idx c = cells_per_subdomain, splits = 2;
  mesh::Mesh m = mesh::make_grid_3d(c * splits, c * splits, c * splits, order);
  auto dec = mesh::decompose_3d(m, c * splits, c * splits, c * splits, splits,
                                splits, splits);
  BuiltProblem bp{decomp::build_feti_problem(dec, physics), 0,
                  static_cast<idx>(dec.subdomains.size())};
  bp.dofs_per_subdomain = bp.problem.max_subdomain_dofs();
  return bp;
}

inline BuiltProblem build_problem(int dim, fem::Physics physics,
                                  idx cells_per_subdomain,
                                  mesh::ElementOrder order) {
  return dim == 2 ? build_2d(physics, cells_per_subdomain, order)
                  : build_3d(physics, cells_per_subdomain, order);
}

/// Measured per-subdomain times of one dual-operator configuration.
struct DualOpTiming {
  double preprocess_ms = 0.0;  ///< per subdomain
  double apply_ms = 0.0;       ///< per subdomain, per application
  /// Persistent operator state streamed by one apply (the F̃ blocks;
  /// DualOperator::apply_bytes), 0 when the operator cannot report it.
  std::size_t apply_bytes = 0;
  /// Achieved apply bandwidth, apply_bytes / measured apply time — the
  /// first-class metric for bandwidth-bound comparisons (fp32 vs fp64
  /// storage); 0 when apply_bytes is unknown.
  double apply_gbps = 0.0;
  /// PCIe traffic of one application (gpu::TransferCounters delta around a
  /// post-warm-up apply): the dual-vector staging cost a host-resident
  /// solver loop pays per iteration and the device-resident loop avoids.
  /// 0 for host-only operators.
  std::uint64_t apply_h2d_bytes = 0;
  std::uint64_t apply_d2h_bytes = 0;
};

/// Prepares the operator, then measures median value-update
/// ("preprocessing") and application times (normalized per subdomain) plus
/// the achieved apply bandwidth (bytes of F̃ streamed / apply time).
/// Marks the problem's values changed before every update so the
/// time-step cache cannot turn the measurement into its skip path (the
/// harnesses measure the full refresh; bench_timestep_cache measures the
/// cached path deliberately).
inline DualOpTiming measure_dualop(decomp::FetiProblem& problem,
                                   const core::DualOpConfig& config,
                                   gpu::ExecutionContext& context,
                                   int reps = 3, double min_seconds = 0.02) {
  auto op = core::make_dual_operator(problem, config, &context);
  op->prepare();
  op->update_values();  // warm-up
  DualOpTiming t;
  t.preprocess_ms = measure_median_seconds(reps, min_seconds,
                                           [&] {
                                             problem.mark_values_changed();
                                             op->update_values();
                                           }) *
      1e3 / problem.num_subdomains();
  std::vector<double> x(static_cast<std::size_t>(problem.num_lambdas), 1.0);
  std::vector<double> y(x.size(), 0.0);
  op->apply(x.data(), y.data());  // warm-up
  const double apply_seconds = measure_median_seconds(
      std::max(reps, 5), min_seconds, [&] { op->apply(x.data(), y.data()); });
  t.apply_ms = apply_seconds * 1e3 / problem.num_subdomains();
  t.apply_bytes = op->apply_bytes();
  if (t.apply_bytes > 0 && apply_seconds > 0.0)
    t.apply_gbps = static_cast<double>(t.apply_bytes) / apply_seconds / 1e9;
  const gpu::TransferCounters::Snapshot before =
      gpu::TransferCounters::global().snapshot();
  op->apply(x.data(), y.data());
  const gpu::TransferCounters::Snapshot traffic =
      gpu::TransferCounters::global().snapshot() - before;
  t.apply_h2d_bytes = traffic.h2d_bytes;
  t.apply_d2h_bytes = traffic.d2h_bytes;
  return t;
}

/// Percentile/latency summary over a sample set — the shared measurement
/// path between the service layer's latency report (bench_service: queue
/// wait and end-to-end job latency) and the per-step phase timings every
/// FetiStepResult carries (preprocess/pcpg/apply split). Percentiles use
/// the nearest-rank convention on the sorted samples.
struct LatencySummary {
  double p50 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

inline double percentile(std::vector<double> sorted_samples, double pct) {
  if (sorted_samples.empty()) return 0.0;
  const auto n = sorted_samples.size();
  std::size_t rank = static_cast<std::size_t>(pct / 100.0 *
                                              static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return sorted_samples[rank];
}

inline LatencySummary summarize_latencies(std::vector<double> seconds) {
  LatencySummary s;
  if (seconds.empty()) return s;
  std::sort(seconds.begin(), seconds.end());
  s.p50 = percentile(seconds, 50.0);
  s.p99 = percentile(seconds, 99.0);
  s.max = seconds.back();
  double total = 0.0;
  for (double v : seconds) total += v;
  s.mean = total / static_cast<double>(seconds.size());
  return s;
}

/// Table-II-tuned configuration for one approach; the API generation and
/// the GPU parameter block follow from the approach's axis tuple.
inline core::DualOpConfig config_for(core::Approach approach, int dim,
                                     idx dofs) {
  return core::recommend_config(core::axes_of(approach), dim, dofs);
}

/// Emits the standard harness footer: a PASS/DEVIATION line per shape check.
inline void shape_check(const char* claim, bool holds) {
  std::printf("shape-check [%s]: %s\n", holds ? "PASS" : "DEVIATION", claim);
}

}  // namespace feti::bench
