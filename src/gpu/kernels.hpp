#pragma once

// Auxiliary device kernels: batched scatter/gather between the cluster-wide
// dual vector and the per-subdomain dual vectors (Section IV-B/IV-C of the
// paper: a single kernel handles all subdomains when scatter/gather runs on
// the GPU), plus small vector utilities and the fp64→fp32 demotion kernels
// of the mixed-precision explicit operators.
//
// Both single-RHS and multi-RHS variants exist. The multi-RHS kernels move
// all subdomains × all right-hand sides in one submission: the cluster-wide
// block stores its columns at stride `cluster_ld` (column j of the dual
// system j starts at cluster + j * cluster_ld), and each subdomain's local
// block is an n × nrhs dense panel whose layout/leading dimension the
// caller chooses (a batch narrower than the allocated panel reuses the
// leading columns).
//
// The local-panel scalar is a template parameter: the cluster-wide dual
// vectors always stay fp64, and the fp32 instantiation downcasts on
// scatter and accumulates the fp32 locals into the fp64 cluster vector on
// gather (the "fp64 accumulation at the dual-vector reduction" of the
// mixed-precision apply).

#include <vector>

#include "gpu/data.hpp"
#include "gpu/runtime.hpp"

namespace feti::gpu::kernels {

/// One subdomain's slice of a scatter/gather: `map[i]` is the cluster index
/// of local lambda i. An optional per-row weight vector turns the pair of
/// kernels into the scaled restriction/prolongation of the preconditioner
/// layer (local = D·scatter(x) on the way in, cluster += D·local on the
/// way out); nullptr means unweighted, and existing braced initializers
/// stay valid because the member trails.
template <typename T>
struct DualMapT {
  const idx* map = nullptr;  ///< device array, length n
  idx n = 0;
  T* local = nullptr;        ///< device subdomain vector, length n
  const double* weight = nullptr;  ///< optional device array, length n
};

using DualMap = DualMapT<double>;
using DualMapF32 = DualMapT<float>;

/// One subdomain's slice of a multi-RHS scatter/gather: the local panel is
/// n × nrhs dense with leading dimension `ld` (row-major: ld >= nrhs,
/// col-major: ld >= n — the layout is a shared kernel argument).
template <typename T>
struct DualMapBlockT {
  const idx* map = nullptr;  ///< device array, length n
  idx n = 0;
  T* local = nullptr;        ///< device panel, n × nrhs, leading dim ld
  idx ld = 0;
  const double* weight = nullptr;  ///< optional device array, length n
};

using DualMapBlock = DualMapBlockT<double>;
using DualMapBlockF32 = DualMapBlockT<float>;

/// Single submission moving all subdomains × all RHS:
/// local(i, j) = T(cluster[map[i] + j * cluster_ld]) for j in [0, nrhs).
/// nrhs == 0 submits nothing (no-op).
template <typename T>
void scatter_batch(Stream& s, const double* cluster, idx cluster_ld,
                   idx nrhs, la::Layout local_layout,
                   std::vector<DualMapBlockT<T>> jobs) {
  if (nrhs == 0) return;
  s.submit([cluster, cluster_ld, nrhs, local_layout,
            jobs = std::move(jobs)] {
    for (const auto& j : jobs) {
      if (local_layout == la::Layout::RowMajor) {
        // Row i of the panel holds lambda i of every RHS: the inner loop
        // streams over the right-hand sides with one map lookup per row.
        for (idx i = 0; i < j.n; ++i) {
          const double* src = cluster + j.map[i];
          const double w = j.weight != nullptr ? j.weight[i] : 1.0;
          T* row = j.local + static_cast<widx>(i) * j.ld;
          for (idx r = 0; r < nrhs; ++r)
            row[r] =
                static_cast<T>(w * src[static_cast<widx>(r) * cluster_ld]);
        }
      } else {
        for (idx r = 0; r < nrhs; ++r) {
          const double* src = cluster + static_cast<widx>(r) * cluster_ld;
          T* col = j.local + static_cast<widx>(r) * j.ld;
          for (idx i = 0; i < j.n; ++i)
            col[i] = static_cast<T>(
                (j.weight != nullptr ? j.weight[i] : 1.0) * src[j.map[i]]);
        }
      }
    }
  });
}

/// Single submission: zero-fills the first nrhs cluster columns (each of
/// length cluster_size at stride cluster_ld), then accumulates
/// cluster[map[i] + j * cluster_ld] += local(i, j) over every subdomain —
/// overlapping dual indices sum, as in the single-RHS gather. The cluster
/// accumulation is always fp64, whatever the local-panel scalar.
/// nrhs == 0 submits nothing (the cluster block is left untouched).
template <typename T>
void gather_batch(Stream& s, double* cluster, idx cluster_size,
                  idx cluster_ld, idx nrhs, la::Layout local_layout,
                  std::vector<DualMapBlockT<T>> jobs) {
  if (nrhs == 0) return;
  s.submit([cluster, cluster_size, cluster_ld, nrhs, local_layout,
            jobs = std::move(jobs)] {
    for (idx r = 0; r < nrhs; ++r)
      std::fill_n(cluster + static_cast<widx>(r) * cluster_ld, cluster_size,
                  0.0);
    for (const auto& j : jobs) {
      if (local_layout == la::Layout::RowMajor) {
        for (idx i = 0; i < j.n; ++i) {
          double* dst = cluster + j.map[i];
          const double w = j.weight != nullptr ? j.weight[i] : 1.0;
          const T* row = j.local + static_cast<widx>(i) * j.ld;
          for (idx r = 0; r < nrhs; ++r)
            dst[static_cast<widx>(r) * cluster_ld] +=
                w * static_cast<double>(row[r]);
        }
      } else {
        for (idx r = 0; r < nrhs; ++r) {
          double* dst = cluster + static_cast<widx>(r) * cluster_ld;
          const T* col = j.local + static_cast<widx>(r) * j.ld;
          for (idx i = 0; i < j.n; ++i)
            dst[j.map[i]] += (j.weight != nullptr ? j.weight[i] : 1.0) *
                             static_cast<double>(col[i]);
        }
      }
    }
  });
}

/// Single submission: local[i] = cluster[map[i]] for every subdomain.
template <typename T>
void scatter_batch(Stream& s, const double* cluster,
                   std::vector<DualMapT<T>> jobs) {
  std::vector<DualMapBlockT<T>> blocks;
  blocks.reserve(jobs.size());
  for (const auto& j : jobs)
    blocks.push_back({j.map, j.n, j.local, 1, j.weight});
  scatter_batch(s, cluster, /*cluster_ld=*/0, /*nrhs=*/1,
                la::Layout::RowMajor, std::move(blocks));
}

/// Single submission: cluster = sum of scattered locals; zero-fills the
/// cluster vector first.
template <typename T>
void gather_batch(Stream& s, double* cluster, idx cluster_size,
                  std::vector<DualMapT<T>> jobs) {
  std::vector<DualMapBlockT<T>> blocks;
  blocks.reserve(jobs.size());
  for (const auto& j : jobs)
    blocks.push_back({j.map, j.n, j.local, 1, j.weight});
  gather_batch(s, cluster, cluster_size, /*cluster_ld=*/cluster_size,
               /*nrhs=*/1, la::Layout::RowMajor, std::move(blocks));
}

// Non-template fp64 overloads: template-argument deduction cannot see
// through a braced job list ({{map, n, local}}), and fp64 is the common
// case — these forward to the templates above.

inline void scatter_batch(Stream& s, const double* cluster, idx cluster_ld,
                          idx nrhs, la::Layout local_layout,
                          std::vector<DualMapBlock> jobs) {
  scatter_batch<double>(s, cluster, cluster_ld, nrhs, local_layout,
                        std::move(jobs));
}

inline void gather_batch(Stream& s, double* cluster, idx cluster_size,
                         idx cluster_ld, idx nrhs, la::Layout local_layout,
                         std::vector<DualMapBlock> jobs) {
  gather_batch<double>(s, cluster, cluster_size, cluster_ld, nrhs,
                       local_layout, std::move(jobs));
}

inline void scatter_batch(Stream& s, const double* cluster,
                          std::vector<DualMap> jobs) {
  scatter_batch<double>(s, cluster, std::move(jobs));
}

inline void gather_batch(Stream& s, double* cluster, idx cluster_size,
                         std::vector<DualMap> jobs) {
  gather_batch<double>(s, cluster, cluster_size, std::move(jobs));
}

/// Sets a device vector to zero.
void fill_zero(Stream& s, double* data, idx n);

// ---- device-resident PCPG vector kernels ----
// The solver-loop kernels of the device-state PCPG mode (core/pcpg.cpp):
// each submission performs the *identical* la:: / elementwise arithmetic
// the host-staged loop runs, looping over all systems of a lockstep batch
// in one launch — so a whole batch costs one submission, and the device
// path reproduces the host path bit-for-bit (device memory is host memory
// in the virtual runtime, and the operation order is mirrored exactly).

/// dst = src (device-to-device copy of an n-vector).
void copy(Stream& s, const double* src, double* dst, idx n);

/// One submission: out[b] = la::dot(n, xs[b], ys[b]).
void dot_many(Stream& s, std::vector<const double*> xs,
              std::vector<const double*> ys, idx n, double* out);

/// One submission: out[b] = la::nrm2(n, xs[b]).
void nrm2_many(Stream& s, std::vector<const double*> xs, idx n, double* out);

/// One submission: ys[b] += alphas[b] * xs[b] (the λ/r updates of the
/// lockstep step, all systems fused).
void axpy_many(Stream& s, std::vector<double> alphas,
               std::vector<const double*> xs, std::vector<double*> ys,
               idx n);

/// One submission: ps[b][i] = ys[b][i] + betas[b] * ps[b][i] — the
/// search-direction recurrence (Algorithm 1 line 14), all systems fused.
void xpby_many(Stream& s, std::vector<const double*> ys,
               std::vector<double> betas, std::vector<double*> ps, idx n);

/// One submission: panel column b (contiguous, leading dimension n) = srcs[b]
/// — the device mirror of the host path's std::copy_n panel packing.
void pack_columns(Stream& s, std::vector<const double*> srcs, double* panel,
                  idx n);

/// One submission: dsts[b] = panel column b — the unpack mirror.
void unpack_columns(Stream& s, const double* panel, std::vector<double*> dsts,
                    idx n);

/// fp64→fp32 demotion of a device dense matrix (full rectangle; layouts
/// and leading dimensions may differ). One stream-ordered submission.
void demote(Stream& s, DeviceDense src, DeviceDenseF32 dst);

/// Triangle-only demotion for symmetric-packed fp32 storage: only the
/// `uplo` triangle of `dst` is written, so two matrices sharing one packed
/// allocation with opposite triangles stay disjoint (paper footnote 1).
void demote_triangle(Stream& s, la::Uplo uplo, DeviceDense src,
                     DeviceDenseF32 dst);

/// Mirrors the stored triangle of a square device matrix onto the other
/// one (the device analogue of la::symmetrize_from). Used by the
/// sparsity-aware assembly to turn the one-triangle G_bb of SYRK into the
/// full symmetric operand of the two boundary SpMMs.
void symmetrize(Stream& s, la::Uplo stored, DeviceDense a);

}  // namespace feti::gpu::kernels
