#pragma once

// Auto-configuration of the explicit-assembly parameters — the Table-II
// recommendation logic of the paper ("In our implementation, we have an
// option to auto-configure these parameters based on the problem that is
// being solved").

#include "core/config.hpp"
#include "gpu/context.hpp"

namespace feti::core {

/// Returns the recommended Table-II parameter set for a given CUDA API
/// generation, problem dimensionality, and subdomain size (DOFs).
ExplicitGpuOptions recommend_options(gpu::sparse::Api api, int dim,
                                     idx dofs_per_subdomain);

/// Batched-workload variant: `nrhs_hint` is the number of simultaneous
/// right-hand sides the application phase is expected to serve (block PCPG
/// / multi-load-case runs). More in-flight RHS favour more streams, up to
/// the per-device sweet spot.
ExplicitGpuOptions recommend_options(gpu::sparse::Api api, int dim,
                                     idx dofs_per_subdomain, int nrhs_hint);

/// One-stop recommendation for an axis tuple: selects the implementation
/// (DualOpConfig::key) and, for the GPU-backed axes, fills the Table-II
/// assembly parameters for that tuple's sparse API generation. CPU axes
/// keep the defaults (the explicit CPU paths have no Table-I knobs).
///
/// `topology` is the device-topology hint: with num_devices >= 2 the
/// explicit GPU axes resolve to the largest registered sharded variant
/// ("expl legacy x2" / "x4") that the topology can feed, and a non-zero
/// streams_per_device overrides the worker-stream count (the paper uses
/// one stream per OpenMP thread).
DualOpConfig recommend_config(const ApproachAxes& axes, int dim,
                              idx dofs_per_subdomain, int nrhs_hint = 1,
                              const gpu::DeviceTopology& topology = {});

/// Key-based overload: resolves the axes through the registry metadata
/// (falling back to the Table-III key grammar for unregistered spellings)
/// and keeps `key` itself selected. Use this when iterating registry keys:
/// sharded variants share their axis tuple with the single-device base
/// implementation, so the axes alone cannot round-trip the key.
DualOpConfig recommend_config(std::string_view key, int dim,
                              idx dofs_per_subdomain, int nrhs_hint = 1,
                              const gpu::DeviceTopology& topology = {});

}  // namespace feti::core
