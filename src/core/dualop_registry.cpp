#include "core/dualop_registry.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "core/dualop_impls.hpp"

namespace feti::core {

DualOperatorRegistry& DualOperatorRegistry::instance() {
  static DualOperatorRegistry registry;
  static std::once_flag builtin_once;
  std::call_once(builtin_once, [] {
    // One registration call per implementation family; the calls live next
    // to the implementations themselves (dualop_cpu.cpp / dualop_gpu.cpp).
    register_cpu_dual_operators(registry);
    register_gpu_dual_operators(registry);
  });
  return registry;
}

void DualOperatorRegistry::add(DualOperatorInfo info,
                               DualOperatorFactory factory) {
  // The key is the registry identity; the axes are capability metadata and
  // need not reproduce the key's spelling (out-of-tree registrations like
  // "expl legacy x2" share an axis tuple with a built-in).
  check(!info.key.empty(), "DualOperatorRegistry::add: empty key");
  check(info.axes.valid(),
        "DualOperatorRegistry::add: invalid axes for key '" + info.key + "'");
  check(static_cast<bool>(factory),
        "DualOperatorRegistry::add: null factory for key '" + info.key + "'");
  std::lock_guard<std::mutex> lock(mutex_);
  check(find_locked(info.key) == nullptr,
        "DualOperatorRegistry::add: duplicate key '" + info.key + "'");
  entries_.push_back({std::move(info), std::move(factory)});
}

const DualOperatorRegistry::Entry* DualOperatorRegistry::find_locked(
    std::string_view key) const {
  for (const Entry& e : entries_)
    if (e.info.key == key) return &e;
  return nullptr;
}

DualOperatorRegistry::Entry DualOperatorRegistry::at(
    std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(key);
  check(e != nullptr, "DualOperatorRegistry: unknown dual-operator key '" +
                          std::string(key) + "'");
  return *e;
}

bool DualOperatorRegistry::contains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_locked(key) != nullptr;
}

DualOperatorInfo DualOperatorRegistry::info(std::string_view key) const {
  // Metadata-only read: avoid copying the factory std::function that
  // at() duplicates for create().
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(key);
  check(e != nullptr, "DualOperatorRegistry: unknown dual-operator key '" +
                          std::string(key) + "'");
  return e->info;
}

std::vector<std::string> DualOperatorRegistry::keys() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.info.key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t DualOperatorRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool DualOperatorRegistry::uses_gpu(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(key);
  check(e != nullptr, "DualOperatorRegistry: unknown dual-operator key '" +
                          std::string(key) + "'");
  return e->info.requires_device();
}

bool DualOperatorRegistry::is_explicit(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(key);
  check(e != nullptr, "DualOperatorRegistry: unknown dual-operator key '" +
                          std::string(key) + "'");
  return e->info.axes.repr == Representation::Explicit;
}

bool DualOperatorRegistry::available(std::string_view key,
                                     const gpu::ExecutionContext* context) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(key);
  return e != nullptr && (!e->info.requires_device() || context != nullptr);
}

std::unique_ptr<DualOperator> DualOperatorRegistry::create(
    std::string_view key, const decomp::FetiProblem& problem,
    const DualOpConfig& config, gpu::ExecutionContext* context) const {
  // Copy the entry out so the factory runs without holding the lock.
  const Entry e = at(key);
  check(!e.info.requires_device() || context != nullptr,
        "DualOperatorRegistry::create: '" + std::string(key) +
            "' requires a GPU execution context");
  return e.factory(problem, config, context);
}

ApproachAxes DualOpConfig::axes() const {
  if (key.empty()) return axes_of(approach);
  // Registered keys — including out-of-tree registrations whose spelling
  // the built-in grammar does not know — resolve through their metadata.
  const DualOperatorRegistry& registry = DualOperatorRegistry::instance();
  if (registry.contains(key)) return registry.info(key).axes;
  return parse_axes(key);
}

// Legacy capability queries — answered from the registered metadata.

bool uses_gpu(Approach a) {
  return DualOperatorRegistry::instance().uses_gpu(axes_of(a).key());
}

bool is_explicit(Approach a) {
  return DualOperatorRegistry::instance().is_explicit(axes_of(a).key());
}

}  // namespace feti::core
