#pragma once

// Shared generators for tests: random SPD sparse matrices, grid Laplacians,
// and dense reference factorizations.

#include <cmath>
#include <vector>

#include "la/blas_dense.hpp"
#include "la/csr.hpp"
#include "util/rng.hpp"

namespace feti::testing {

/// Random symmetric positive definite sparse matrix: symmetric random
/// pattern with diagonal dominance.
inline la::Csr random_spd(idx n, double density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  std::vector<double> rowsum(static_cast<std::size_t>(n), 0.0);
  for (idx r = 0; r < n; ++r)
    for (idx c = r + 1; c < n; ++c)
      if (rng.uniform() < density) {
        const double v = rng.uniform(-1.0, 1.0);
        t.push_back({r, c, v});
        t.push_back({c, r, v});
        rowsum[r] += std::fabs(v);
        rowsum[c] += std::fabs(v);
      }
  for (idx r = 0; r < n; ++r) t.push_back({r, r, rowsum[r] + 1.0});
  return la::Csr::from_triplets(n, n, std::move(t));
}

/// 5-point Laplacian on an nx-by-ny grid (SPD after adding eps to diagonal).
inline la::Csr grid_laplacian(idx nx, idx ny, double diag_shift = 1e-3) {
  auto id = [nx](idx i, idx j) { return j * nx + i; };
  std::vector<la::Triplet> t;
  for (idx j = 0; j < ny; ++j)
    for (idx i = 0; i < nx; ++i) {
      double d = diag_shift;
      auto link = [&](idx i2, idx j2) {
        if (i2 < 0 || i2 >= nx || j2 < 0 || j2 >= ny) return;
        t.push_back({id(i, j), id(i2, j2), -1.0});
        d += 1.0;
      };
      link(i - 1, j);
      link(i + 1, j);
      link(i, j - 1);
      link(i, j + 1);
      t.push_back({id(i, j), id(i, j), d});
    }
  return la::Csr::from_triplets(nx * ny, nx * ny, std::move(t));
}

/// Dense Cholesky (lower) for reference comparisons. Returns false if the
/// matrix is not positive definite.
inline bool dense_cholesky_lower(la::DenseMatrix& a) {
  const idx n = a.rows();
  for (idx j = 0; j < n; ++j) {
    double d = a.at(j, j);
    for (idx k = 0; k < j; ++k) d -= a.at(j, k) * a.at(j, k);
    if (d <= 0.0) return false;
    d = std::sqrt(d);
    a.at(j, j) = d;
    for (idx i = j + 1; i < n; ++i) {
      double v = a.at(i, j);
      for (idx k = 0; k < j; ++k) v -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = v / d;
    }
    for (idx i = 0; i < j; ++i) a.at(i, j) = 0.0;
  }
  return true;
}

inline std::vector<double> random_vector(idx n, std::uint64_t seed) {
  std::vector<double> v(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Random sparse rectangular matrix (for B in Schur tests).
inline la::Csr random_sparse(idx rows, idx cols, double density,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> t;
  for (idx r = 0; r < rows; ++r) {
    bool any = false;
    for (idx c = 0; c < cols; ++c)
      if (rng.uniform() < density) {
        t.push_back({r, c, rng.uniform(-1.0, 1.0)});
        any = true;
      }
    if (!any)  // keep every row non-empty so S has full structure
      t.push_back({r, static_cast<idx>(rng.integer(0, cols - 1)),
                   rng.uniform(-1.0, 1.0)});
  }
  return la::Csr::from_triplets(rows, cols, std::move(t));
}

}  // namespace feti::testing
