#include "la/blas_sparse.hpp"

#include "la/scale.hpp"

#include "la/blas_dense.hpp"

namespace feti::la {

void spmv(double alpha, CsrView a, const double* x, double beta,
          double* y) {
  for (idx r = 0; r < a.nrows(); ++r) {
    double acc = 0.0;
    for (idx k = a.row_begin(r); k < a.row_end(r); ++k)
      acc += a.val(k) * x[a.col(k)];
    detail::store_scaled(beta, y[r]);
    y[r] += alpha * acc;
  }
}

void spmv_trans(double alpha, CsrView a, const double* x, double beta,
                double* y) {
  detail::scale_vec(a.ncols(), beta, y);
  for (idx r = 0; r < a.nrows(); ++r) {
    const double xr = alpha * x[r];
    if (xr == 0.0) continue;
    for (idx k = a.row_begin(r); k < a.row_end(r); ++k)
      y[a.col(k)] += a.val(k) * xr;
  }
}

void spmm(double alpha, CsrView a, Trans ta, ConstDenseView b, double beta,
          DenseView c) {
  const idx m = ta == Trans::No ? a.nrows() : a.ncols();
  const idx k = ta == Trans::No ? a.ncols() : a.nrows();
  check(b.rows == k, "spmm: inner dimension mismatch");
  check(c.rows == m && c.cols == b.cols, "spmm: output dimension mismatch");
  // Scale C by beta (beta == 0 overwrites without reading).
  for (idx r = 0; r < c.rows; ++r)
    for (idx j = 0; j < c.cols; ++j) detail::store_scaled(beta, c.at(r, j));

  if (ta == Trans::No) {
    if (c.layout == Layout::RowMajor && b.layout == Layout::RowMajor) {
      // Fast path: accumulate scaled B rows into C rows.
      for (idx r = 0; r < a.nrows(); ++r) {
        double* crow = c.data + static_cast<widx>(r) * c.ld;
        for (idx p = a.row_begin(r); p < a.row_end(r); ++p) {
          const double v = alpha * a.val(p);
          const double* brow = b.data + static_cast<widx>(a.col(p)) * b.ld;
          axpy(b.cols, v, brow, crow);
        }
      }
    } else {
      for (idx r = 0; r < a.nrows(); ++r)
        for (idx p = a.row_begin(r); p < a.row_end(r); ++p) {
          const double v = alpha * a.val(p);
          const idx bc = a.col(p);
          for (idx j = 0; j < b.cols; ++j) c.at(r, j) += v * b.at(bc, j);
        }
    }
  } else {
    // C = alpha * A^T * B: scatter row r of A into all C rows it touches.
    for (idx r = 0; r < a.nrows(); ++r)
      for (idx p = a.row_begin(r); p < a.row_end(r); ++p) {
        const double v = alpha * a.val(p);
        const idx cr = a.col(p);
        if (c.layout == Layout::RowMajor && b.layout == Layout::RowMajor) {
          axpy(b.cols, v, b.data + static_cast<widx>(r) * b.ld,
               c.data + static_cast<widx>(cr) * c.ld);
        } else {
          for (idx j = 0; j < b.cols; ++j) c.at(cr, j) += v * b.at(r, j);
        }
      }
  }
}

void sp_trsv(Uplo uplo, Trans trans, CsrView t, double* x) {
  DenseView b{x, t.nrows(), 1, t.nrows(), Layout::ColMajor};
  sp_trsm(uplo, trans, t, b);
}

namespace {

/// Forward substitution, stored-lower CSR, no transpose. Diagonal is the
/// last entry of each row (rows sorted). Gather form.
void lower_notrans(CsrView t, DenseView b) {
  const idx n = t.nrows();
  const bool rm = b.layout == Layout::RowMajor;
  for (idx r = 0; r < n; ++r) {
    const idx e = t.row_end(r) - 1;
    FETI_ASSERT(t.col(e) == r, "sp_trsm: missing diagonal");
    const double dinv = 1.0 / t.val(e);
    if (rm) {
      double* xr = b.data + static_cast<widx>(r) * b.ld;
      for (idx k = t.row_begin(r); k < e; ++k)
        axpy(b.cols, -t.val(k), b.data + static_cast<widx>(t.col(k)) * b.ld,
             xr);
      scal(b.cols, dinv, xr);
    } else {
      for (idx j = 0; j < b.cols; ++j) {
        double acc = b.at(r, j);
        for (idx k = t.row_begin(r); k < e; ++k)
          acc -= t.val(k) * b.at(t.col(k), j);
        b.at(r, j) = acc * dinv;
      }
    }
  }
}

/// Backward substitution solving L^T x = b with stored-lower CSR. Scatter
/// form: once x_r is final, subtract L(r, c) * x_r from all c < r.
void lower_trans(CsrView t, DenseView b) {
  const idx n = t.nrows();
  const bool rm = b.layout == Layout::RowMajor;
  for (idx r = n - 1; r >= 0; --r) {
    const idx e = t.row_end(r) - 1;
    FETI_ASSERT(t.col(e) == r, "sp_trsm: missing diagonal");
    const double dinv = 1.0 / t.val(e);
    if (rm) {
      double* xr = b.data + static_cast<widx>(r) * b.ld;
      scal(b.cols, dinv, xr);
      for (idx k = t.row_begin(r); k < e; ++k)
        axpy(b.cols, -t.val(k), xr,
             b.data + static_cast<widx>(t.col(k)) * b.ld);
    } else {
      for (idx j = 0; j < b.cols; ++j) b.at(r, j) *= dinv;
      for (idx k = t.row_begin(r); k < e; ++k) {
        const double v = t.val(k);
        const idx c = t.col(k);
        for (idx j = 0; j < b.cols; ++j) b.at(c, j) -= v * b.at(r, j);
      }
    }
  }
}

/// Backward substitution, stored-upper CSR, no transpose. Diagonal first.
void upper_notrans(CsrView t, DenseView b) {
  const idx n = t.nrows();
  const bool rm = b.layout == Layout::RowMajor;
  for (idx r = n - 1; r >= 0; --r) {
    const idx s = t.row_begin(r);
    FETI_ASSERT(t.col(s) == r, "sp_trsm: missing diagonal");
    const double dinv = 1.0 / t.val(s);
    if (rm) {
      double* xr = b.data + static_cast<widx>(r) * b.ld;
      for (idx k = s + 1; k < t.row_end(r); ++k)
        axpy(b.cols, -t.val(k), b.data + static_cast<widx>(t.col(k)) * b.ld,
             xr);
      scal(b.cols, dinv, xr);
    } else {
      for (idx j = 0; j < b.cols; ++j) {
        double acc = b.at(r, j);
        for (idx k = s + 1; k < t.row_end(r); ++k)
          acc -= t.val(k) * b.at(t.col(k), j);
        b.at(r, j) = acc * dinv;
      }
    }
  }
}

/// Forward substitution solving U^T x = b with stored-upper CSR.
void upper_trans(CsrView t, DenseView b) {
  const idx n = t.nrows();
  const bool rm = b.layout == Layout::RowMajor;
  for (idx r = 0; r < n; ++r) {
    const idx s = t.row_begin(r);
    FETI_ASSERT(t.col(s) == r, "sp_trsm: missing diagonal");
    const double dinv = 1.0 / t.val(s);
    if (rm) {
      double* xr = b.data + static_cast<widx>(r) * b.ld;
      scal(b.cols, dinv, xr);
      for (idx k = s + 1; k < t.row_end(r); ++k)
        axpy(b.cols, -t.val(k), xr,
             b.data + static_cast<widx>(t.col(k)) * b.ld);
    } else {
      for (idx j = 0; j < b.cols; ++j) b.at(r, j) *= dinv;
      for (idx k = s + 1; k < t.row_end(r); ++k) {
        const double v = t.val(k);
        const idx c = t.col(k);
        for (idx j = 0; j < b.cols; ++j) b.at(c, j) -= v * b.at(r, j);
      }
    }
  }
}

}  // namespace

void sp_trsm(Uplo uplo, Trans trans, CsrView t, DenseView b) {
  check(t.nrows() == t.ncols(), "sp_trsm: factor must be square");
  check(t.nrows() == b.rows, "sp_trsm: dimension mismatch");
  if (t.nrows() == 0 || b.cols == 0) return;
  if (uplo == Uplo::Lower) {
    if (trans == Trans::No)
      lower_notrans(t, b);
    else
      lower_trans(t, b);
  } else {
    if (trans == Trans::No)
      upper_notrans(t, b);
    else
      upper_trans(t, b);
  }
}

}  // namespace feti::la
