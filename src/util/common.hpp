#pragma once

// Common scalar/index typedefs and assertion helpers shared by all modules.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace feti {

/// Index type used for matrix dimensions and sparse indices. Subdomain-local
/// systems in this library stay far below 2^31 nonzeros, and 32-bit indices
/// halve the memory traffic of sparse kernels.
using idx = std::int32_t;

/// Wide index for global counters (total nonzeros across subdomains, etc.).
using widx = std::int64_t;

/// Throwing check used for API misuse that must be caught in release builds
/// as well (dimension mismatches, invalid configurations).
inline void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Internal invariant check; compiled in all build types because the library
/// is numerical and silent corruption is worse than an abort.
#define FETI_ASSERT(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "FETI_ASSERT failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, msg);                            \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

}  // namespace feti
