#include "util/timer.hpp"

#include <algorithm>

namespace feti {

double measure_median_seconds(int min_reps, double min_seconds,
                              const std::function<void()>& body) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(min_reps));
  Timer budget;
  do {
    Timer t;
    body();
    samples.push_back(t.seconds());
  } while (static_cast<int>(samples.size()) < min_reps ||
           budget.seconds() < min_seconds);
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace feti
