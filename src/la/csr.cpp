#include "la/csr.hpp"

#include <algorithm>
#include <cmath>

namespace feti::la {

Csr::Csr(idx nrows, idx ncols, std::vector<idx> rowptr,
         std::vector<idx> colidx, std::vector<double> vals)
    : nrows_(nrows), ncols_(ncols), rowptr_(std::move(rowptr)),
      colidx_(std::move(colidx)), vals_(std::move(vals)) {
  check(rowptr_.size() == static_cast<std::size_t>(nrows_) + 1,
        "Csr: rowptr size mismatch");
  check(colidx_.size() == static_cast<std::size_t>(rowptr_.back()),
        "Csr: colidx size mismatch");
  check(vals_.empty() || vals_.size() == colidx_.size(),
        "Csr: vals size mismatch");
}

double Csr::at(idx r, idx c) const {
  const idx b = rowptr_[r], e = rowptr_[r + 1];
  const auto it = std::lower_bound(colidx_.begin() + b, colidx_.begin() + e, c);
  if (it != colidx_.begin() + e && *it == c)
    return vals_[static_cast<std::size_t>(it - colidx_.begin())];
  return 0.0;
}

Csr Csr::from_triplets(idx nrows, idx ncols, std::vector<Triplet> t) {
  std::sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  Csr m;
  m.nrows_ = nrows;
  m.ncols_ = ncols;
  m.rowptr_.assign(static_cast<std::size_t>(nrows) + 1, 0);
  m.colidx_.reserve(t.size());
  m.vals_.reserve(t.size());
  for (std::size_t k = 0; k < t.size();) {
    const idx r = t[k].row, c = t[k].col;
    check(r >= 0 && r < nrows && c >= 0 && c < ncols,
          "from_triplets: index out of range");
    double sum = 0.0;
    while (k < t.size() && t[k].row == r && t[k].col == c) sum += t[k++].val;
    m.colidx_.push_back(c);
    m.vals_.push_back(sum);
    m.rowptr_[static_cast<std::size_t>(r) + 1] += 1;
  }
  for (idx r = 0; r < nrows; ++r)
    m.rowptr_[static_cast<std::size_t>(r) + 1] +=
        m.rowptr_[static_cast<std::size_t>(r)];
  return m;
}

Csr Csr::from_dense(ConstDenseView a, double drop_tol) {
  std::vector<Triplet> t;
  for (idx r = 0; r < a.rows; ++r)
    for (idx c = 0; c < a.cols; ++c)
      if (std::fabs(a.at(r, c)) > drop_tol) t.push_back({r, c, a.at(r, c)});
  return from_triplets(a.rows, a.cols, std::move(t));
}

Csr Csr::transposed() const {
  Csr t;
  t.nrows_ = ncols_;
  t.ncols_ = nrows_;
  t.rowptr_.assign(static_cast<std::size_t>(ncols_) + 1, 0);
  t.colidx_.resize(colidx_.size());
  t.vals_.resize(vals_.size());
  for (idx k = 0; k < nnz(); ++k)
    t.rowptr_[static_cast<std::size_t>(colidx_[k]) + 1] += 1;
  for (idx c = 0; c < ncols_; ++c)
    t.rowptr_[static_cast<std::size_t>(c) + 1] +=
        t.rowptr_[static_cast<std::size_t>(c)];
  std::vector<idx> next(t.rowptr_.begin(), t.rowptr_.end() - 1);
  const bool with_vals = !vals_.empty();
  for (idx r = 0; r < nrows_; ++r) {
    for (idx k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      const idx pos = next[colidx_[k]]++;
      t.colidx_[pos] = r;
      if (with_vals) t.vals_[pos] = vals_[k];
    }
  }
  return t;
}

void Csr::to_dense(DenseView out) const {
  check(out.rows == nrows_ && out.cols == ncols_,
        "to_dense: dimension mismatch");
  if (out.layout == Layout::RowMajor) {
    for (idx r = 0; r < nrows_; ++r)
      std::fill_n(out.data + static_cast<widx>(r) * out.ld, ncols_, 0.0);
  } else {
    for (idx c = 0; c < ncols_; ++c)
      std::fill_n(out.data + static_cast<widx>(c) * out.ld, nrows_, 0.0);
  }
  for (idx r = 0; r < nrows_; ++r)
    for (idx k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
      out.at(r, colidx_[k]) = vals_[k];
}

DenseMatrix Csr::to_dense(Layout layout) const {
  DenseMatrix m(nrows_, ncols_, layout);
  to_dense(m.view());
  return m;
}

Csr Csr::permuted_symmetric(const std::vector<idx>& perm) const {
  check(nrows_ == ncols_, "permuted_symmetric: matrix must be square");
  check(perm.size() == static_cast<std::size_t>(nrows_),
        "permuted_symmetric: permutation size mismatch");
  const std::vector<idx> iperm = invert_permutation(perm);
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(nnz()));
  for (idx r = 0; r < nrows_; ++r)
    for (idx k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
      t.push_back({iperm[r], iperm[colidx_[k]],
                   vals_.empty() ? 0.0 : vals_[k]});
  Csr out = from_triplets(nrows_, ncols_, std::move(t));
  if (vals_.empty()) out.vals_.clear();
  return out;
}

Csr Csr::triangle(Uplo uplo) const {
  std::vector<Triplet> t;
  for (idx r = 0; r < nrows_; ++r)
    for (idx k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      const idx c = colidx_[k];
      if ((uplo == Uplo::Upper && c >= r) || (uplo == Uplo::Lower && c <= r))
        t.push_back({r, c, vals_.empty() ? 0.0 : vals_[k]});
    }
  Csr out = from_triplets(nrows_, ncols_, std::move(t));
  if (vals_.empty()) out.vals_.clear();
  return out;
}

void Csr::validate() const {
  check(rowptr_.size() == static_cast<std::size_t>(nrows_) + 1,
        "validate: rowptr size");
  check(rowptr_.front() == 0, "validate: rowptr[0] != 0");
  for (idx r = 0; r < nrows_; ++r) {
    check(rowptr_[r] <= rowptr_[r + 1], "validate: rowptr not monotone");
    for (idx k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      check(colidx_[k] >= 0 && colidx_[k] < ncols_,
            "validate: column index out of range");
      if (k > rowptr_[r])
        check(colidx_[k - 1] < colidx_[k], "validate: columns not sorted");
    }
  }
  check(colidx_.size() == static_cast<std::size_t>(nnz()), "validate: colidx");
  check(vals_.empty() || vals_.size() == colidx_.size(), "validate: vals");
}

std::vector<idx> invert_permutation(const std::vector<idx>& perm) {
  std::vector<idx> inv(perm.size(), -1);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    check(perm[i] >= 0 && static_cast<std::size_t>(perm[i]) < perm.size(),
          "invert_permutation: entry out of range");
    check(inv[perm[i]] == -1, "invert_permutation: not a permutation");
    inv[perm[i]] = static_cast<idx>(i);
  }
  return inv;
}

}  // namespace feti::la
