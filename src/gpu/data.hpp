#pragma once

// Device-resident matrix descriptors and upload helpers.
//
// Device memory is host memory here (see gpu/runtime.hpp), but every buffer
// below is allocated through Device::alloc and filled through stream-ordered
// copies, preserving the persistent-allocation discipline and transfer
// points of the paper's implementation.
//
// Dense descriptors are templated on the scalar: fp64 everywhere, plus the
// fp32 instantiation used by the mixed-precision explicit operators (F̃
// assembled in fp64, demoted to fp32 device storage — see
// gpu::kernels::demote).

#include "gpu/runtime.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"

namespace feti::gpu {

/// Dense matrix in device memory (descriptor; owner frees via free_dense).
template <typename T>
struct DeviceDenseT {
  T* data = nullptr;
  idx rows = 0;
  idx cols = 0;
  idx ld = 0;
  la::Layout layout = la::Layout::ColMajor;

  [[nodiscard]] la::DenseViewT<T> view() const {
    return {data, rows, cols, ld, layout};
  }
  [[nodiscard]] la::ConstDenseViewT<T> cview() const {
    return {data, rows, cols, ld, layout};
  }
  [[nodiscard]] std::size_t bytes() const {
    const widx span = layout == la::Layout::RowMajor
                          ? static_cast<widx>(rows) * ld
                          : static_cast<widx>(cols) * ld;
    return static_cast<std::size_t>(span) * sizeof(T);
  }
};

using DeviceDense = DeviceDenseT<double>;
using DeviceDenseF32 = DeviceDenseT<float>;

template <typename T>
DeviceDenseT<T> alloc_dense_t(Device& dev, idx rows, idx cols,
                              la::Layout layout) {
  DeviceDenseT<T> d;
  d.rows = rows;
  d.cols = cols;
  d.layout = layout;
  d.ld = layout == la::Layout::RowMajor ? cols : rows;
  d.data = dev.alloc_n<T>(static_cast<std::size_t>(
      std::max<widx>(1, static_cast<widx>(rows) * cols)));
  return d;
}

template <typename T>
void free_dense(Device& dev, DeviceDenseT<T>& d) {
  dev.free(d.data);
  d = DeviceDenseT<T>{};
}

inline DeviceDense alloc_dense(Device& dev, idx rows, idx cols,
                               la::Layout layout) {
  return alloc_dense_t<double>(dev, rows, cols, layout);
}

/// CSR matrix in device memory.
struct DeviceCsr {
  idx nrows = 0;
  idx ncols = 0;
  idx nnz = 0;
  idx* rowptr = nullptr;
  idx* colidx = nullptr;
  double* vals = nullptr;

  /// Host-side view over the device arrays (valid because the virtual
  /// device shares the address space; kernels use this internally).
  [[nodiscard]] la::Csr as_host_csr() const {
    return la::Csr(nrows, ncols,
                   std::vector<idx>(rowptr, rowptr + nrows + 1),
                   std::vector<idx>(colidx, colidx + nnz),
                   std::vector<double>(vals, vals + nnz));
  }
};

/// Allocates and uploads a full CSR matrix (structure + values).
DeviceCsr upload_csr(Device& dev, Stream& s, const la::Csr& m);
/// Stream-ordered value refresh (structure must match).
void update_csr_values(Stream& s, const DeviceCsr& d, const la::Csr& m);
void free_csr(Device& dev, DeviceCsr& d);

/// Uploads a plain array.
template <typename T>
T* upload_array(Device& dev, Stream& s, const std::vector<T>& host) {
  T* p = dev.alloc_n<T>(host.size());
  s.memcpy_h2d(p, host.data(), host.size() * sizeof(T));
  return p;
}

}  // namespace feti::gpu
