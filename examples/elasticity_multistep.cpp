// Multi-step simulation (Algorithm 2 of the paper): a 2D linear-elasticity
// cantilever whose material stiffens every second step while the load
// stays constant throughout. The symbolic factorization and all
// persistent GPU structures are prepared once; steps whose stiffness
// changed repeat the numeric factorization + explicit assembly, while
// steps with unchanged K are served from the time-step cache —
// update_values() detects the clean values and skips the refresh entirely
// (FetiStepResult::values_cached). A varying load alone would never force
// a refresh either: f never feeds cached operator state.

#include <cstdio>
#include <cmath>

#include "core/autotune.hpp"
#include "core/feti_solver.hpp"
#include "util/table.hpp"

int main() {
  using namespace feti;

  const idx cells = 12, splits = 3;
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, mesh::ElementOrder::Linear);
  mesh::Decomposition dec = mesh::decompose_2d(m, cells, cells, splits,
                                               splits);
  decomp::FetiProblem problem =
      decomp::build_feti_problem(dec, fem::Physics::LinearElasticity);
  std::printf("elasticity 2D cantilever: %d DOFs, %zu subdomains, "
              "%d multipliers\n",
              problem.global_dofs, dec.subdomains.size(),
              problem.num_lambdas);

  core::FetiSolverOptions opts;
  // Selection via the legacy Approach enum — kept working as a thin alias
  // over the axis tuple / registry key ("expl legacy").
  opts.dualop.approach = core::Approach::ExplLegacy;
  opts.dualop.gpu = core::recommend_options(gpu::sparse::Api::Legacy, 2,
                                            problem.max_subdomain_dofs());
  opts.pcpg.rel_tolerance = 1e-8;
  opts.pcpg.max_iterations = 3000;
  opts.pcpg.preconditioner = "lumped";

  gpu::ExecutionContext ctx(gpu::DeviceConfig::from_env());
  core::FetiSolver solver(problem, opts, &ctx);

  Timer prep_timer;
  solver.prepare();
  std::printf("preparation (symbolic + persistent GPU memory): %.3f ms\n\n",
              prep_timer.millis());

  // Time steps: the Young's modulus grows 25%% on every even step (values
  // change, the pattern does not) and stays put on odd steps, so half the
  // steps hit the time-step cache. The tip deflection scales with 1/E.
  Table table({"step", "E scale", "preproc [ms]", "cached", "iters",
               "tip uy"});
  double scale = 1.0;
  double full_ms = 0.0, cached_ms = 0.0;
  int full_steps = 0, cached_steps = 0;
  for (int step = 0; step < 6; ++step) {
    if (step > 0 && step % 2 == 0) {
      // Stiffen the material (marks every subdomain's values changed); the
      // load stays put, so the deflection must scale with 1/E. scale_step
      // scales f too (keeps u invariant); undo that part to model a pure
      // material change.
      decomp::scale_step(problem, 1.25);
      for (auto& s : problem.sub)
        for (auto& v : s.sys.f) v /= 1.25;
      scale *= 1.25;
    }
    core::FetiStepResult res = solver.solve_step();
    if (!res.converged) {
      std::printf("step %d did not converge!\n", step);
      return 1;
    }
    if (res.values_cached) {
      cached_ms += res.preprocess_seconds * 1e3;
      ++cached_steps;
    } else {
      full_ms += res.preprocess_seconds * 1e3;
      ++full_steps;
    }
    // Mean vertical deflection of the free edge (x = 1).
    double tip = 0.0;
    idx count = 0;
    for (idx n = 0; n < m.num_nodes; ++n)
      if (m.coord(n, 0) == 1.0) {
        tip += res.u[2 * n + 1];
        ++count;
      }
    tip /= count;
    table.add_row({std::to_string(step), Table::num(scale, 3),
                   Table::num(res.preprocess_seconds * 1e3, 3),
                   res.values_cached ? "yes" : "no",
                   std::to_string(res.pcpg_iterations), Table::sci(tip, 4)});
  }
  table.print();
  const core::CacheStats stats = solver.dual_operator().cache_stats();
  std::printf("\ncache: %ld/%ld steps skipped preprocessing entirely "
              "(%ld subdomain refreshes avoided); full step %.3f ms vs "
              "cached step %.3f ms on average\n",
              stats.skipped_steps, stats.steps, stats.skipped_subdomains,
              full_steps > 0 ? full_ms / full_steps : 0.0,
              cached_steps > 0 ? cached_ms / cached_steps : 0.0);
  std::printf("(tip deflection scales with 1/E: every material change "
              "shrinks it by 1/1.25)\n");
  return 0;
}
