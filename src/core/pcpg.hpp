#pragma once

// The preconditioned conjugate projected gradient method — Algorithm 1 of
// the paper: the dual operator F is applied once per iteration (line 7),
// the projector twice, the preconditioner once.
//
// solve_many() runs several independent dual systems in lockstep and
// funnels their per-iteration operator applications through the batched
// DualOperator::apply(X, Y, nrhs) entry point, so operators with a batch
// implementation (the explicit CPU ones: one SYMM per subdomain and
// iteration) serve a whole block of simultaneous right-hand sides at
// BLAS-3 rates; the others fall back to per-column applies. The
// preconditioner applications of a lockstep wave are batched the same way
// through Preconditioner::apply(X, Y, nrhs).
//
// The preconditioner is selected by registry key (see
// precond/precond_registry.hpp for the `<kind> <scaling>[ gpu]` grammar).
// Callers that manage the staged lifecycle themselves (FetiSolver, the
// service layer) pass a prepared precond::Preconditioner*; otherwise Pcpg
// creates and owns a CPU instance for the options key on construction.

#include <memory>
#include <string>
#include <vector>

#include "core/dual_operator.hpp"
#include "core/projector.hpp"

namespace feti::precond {
class Preconditioner;
}

namespace feti::core {

class KrylovRecycler;

/// Pre-registry preconditioner selector, kept so legacy callers compile;
/// the string key in PcpgOptions is the real interface now.
enum class PreconditionerKind : std::uint8_t { None, Lumped };

const char* to_string(PreconditionerKind p);

/// Block-mode and recycling knobs of the PCPG loop. Both default off — the
/// per-system lockstep iteration is the historical behavior.
struct BlockPcpgOptions {
  /// True block-PCPG: the still-active systems of a solve_many call share
  /// one Krylov search panel. Each iteration applies F to the whole panel
  /// (the same batched apply(X, Y, nrhs) path lockstep uses) and solves the
  /// small PᵀFP Gram system with rank-revealing pivoted Cholesky, so a
  /// nearly dependent search direction deflates to a thinner panel instead
  /// of triggering the per-system `pq <= 0` breakdown. Clustered
  /// right-hand sides (the service layer's waves) converge in fewer
  /// iterations because every system steps through the union of the
  /// block's search directions. solve() routes through the same path with
  /// a width-1 panel — required for recycling single-RHS time steps.
  bool enabled = false;
  /// Cross-step Krylov recycling: harvest the search-direction panel of
  /// this solve into the caller-provided KrylovRecycler (set_recycler) and
  /// start from its deflated subspace solution — λ₀ gets the Galerkin
  /// correction from the recycled space and every new direction stays
  /// F-orthogonal to it. Ignored without a recycler; the recycler is only
  /// valid while F is unchanged (FetiSolver clears it when update_values()
  /// actually refreshes a subdomain).
  bool recycle = false;
  /// Retained deflation directions (the recycler's panel budget).
  int deflation_budget = 16;
  /// Gram pivot floor, relative to the largest initial Gram diagonal: a
  /// pivot below it deflates the column.
  double pivot_rel_tolerance = 1e-12;

  bool operator==(const BlockPcpgOptions&) const = default;
};

struct PcpgOptions {
  /// Device-resident solver-loop state. When the resolved dual operator
  /// exposes a device context (DualOperator::device_context() != nullptr)
  /// and the preconditioner is absent or does too, the PCPG loop keeps
  /// λ, r, w, y, the search panel P and Q = F·P in device memory for the
  /// whole solve: operator and preconditioner applications consume device
  /// views (no per-iteration H2D/D2H vector staging), the projector and
  /// deflation G/U-panel products run as device kernels, and only the
  /// small Gram blocks and convergence scalars cross PCIe per iteration.
  /// Bit-identical to the host-staged loop (same kernels, same order), so
  /// iteration counts match exactly.
  ///   Auto — use the device path when eligible, fall back to the host
  ///          path otherwise (including on device out-of-memory);
  ///   Off  — always host-staged;
  ///   On   — require the device path; throws when the operator (or a
  ///          configured preconditioner) has no device context, and
  ///          propagates device out-of-memory instead of falling back.
  enum class DeviceState : std::uint8_t { Auto, Off, On };

  double rel_tolerance = 1e-9;
  int max_iterations = 1000;
  /// Preconditioner registry key ("none", "lumped", "dirichlet stiffness",
  /// ...); "" is treated as "none".
  std::string preconditioner = "none";
  /// Block-PCPG / Krylov-recycling configuration.
  BlockPcpgOptions block;
  /// Device-residency mode of the solver loop (see DeviceState).
  DeviceState device_state = DeviceState::Auto;

  /// Deprecated enum-based selector; assigns the equivalent registry key.
  [[deprecated("assign the registry key to `preconditioner` instead")]]
  void set_preconditioner(PreconditionerKind kind) {
    preconditioner = to_string(kind);
  }
};

struct PcpgResult {
  std::vector<double> lambda;
  std::vector<double> alpha;   ///< kernel coefficients (eq. (9))
  int iterations = 0;
  double rel_residual = 0.0;
  bool converged = false;
  /// Width of the recycled deflation space applied at the start of this
  /// solve (0 = cold start / recycling off).
  int deflation_dim = 0;
};

class Pcpg {
 public:
  /// `m` optionally supplies a prepared, value-current preconditioner
  /// matching options.preconditioner (the solver and service layers pool
  /// and update theirs across steps). When null and the options key is not
  /// "none", the constructor creates, prepares, and updates a CPU instance
  /// from the PreconditionerRegistry — GPU keys require the caller-supplied
  /// route, since Pcpg holds no execution context.
  Pcpg(DualOperator& f, const Projector& projector, PcpgOptions options,
       precond::Preconditioner* m = nullptr);
  ~Pcpg();

  /// Solves F λ = d subject to Gᵀλ = e.
  PcpgResult solve(const std::vector<double>& d);

  /// Solves F λᵢ = dᵢ subject to Gᵀλᵢ = e for several right-hand sides at
  /// once. Each system iterates with its own step lengths and stops on its
  /// own criterion; the F applications of all still-active systems are
  /// batched per iteration. Results are returned in input order. A system
  /// that loses positive definiteness is reported as non-converged without
  /// disturbing the remaining systems — regardless of batch size; only
  /// solve() keeps the historical throwing contract.
  std::vector<PcpgResult> solve_many(const std::vector<std::vector<double>>& d);

  /// Borrowed-RHS variant of solve_many: the caller aliases right-hand
  /// sides instead of copying them (several systems may point at one
  /// shared vector — the service layer's waves mix per-tenant load cases
  /// with the shared physical d). Named distinctly so brace-initialized
  /// calls to solve_many stay unambiguous.
  std::vector<PcpgResult> solve_many_ptrs(
      const std::vector<const std::vector<double>*>& d);

  /// Attaches the cross-step recycler consumed (and refilled) by the block
  /// path when options.block.recycle is set. The caller owns the recycler
  /// and its invalidation: it must be cleared whenever the operator's
  /// values change (FetiSolver does both). Null detaches.
  void set_recycler(KrylovRecycler* recycler) { recycler_ = recycler; }

 private:
  /// Routes a solve to the device-resident or host-staged engine per
  /// options.device_state (Auto additionally falls back to the host engine
  /// when the device runs out of memory mid-setup).
  std::vector<PcpgResult> run(const std::vector<double>* const* d,
                              std::size_t nsys, bool throw_on_breakdown);

  /// True when the device engines may run: the operator has a device
  /// context and the preconditioner (if any) does too. Throws under
  /// DeviceState::On when the requirement is unmet.
  [[nodiscard]] bool device_eligible();

  /// Shared lockstep implementation over borrowed right-hand sides.
  /// `throw_on_breakdown` preserves solve()'s historical throwing contract;
  /// solve_many() instead reports the broken system as non-converged.
  std::vector<PcpgResult> solve_impl(const std::vector<double>* const* d,
                                     std::size_t nsys,
                                     bool throw_on_breakdown);

  /// Shared-Krylov block implementation (options.block.enabled); same
  /// result contract as solve_impl, plus deflation/recycling.
  std::vector<PcpgResult> solve_block_impl(const std::vector<double>* const* d,
                                           std::size_t nsys,
                                           bool throw_on_breakdown);

  /// Device-resident twins of the two engines: per-system state lives on
  /// the operator's device for the whole solve, per-iteration PCIe traffic
  /// is O(scalars). Bit-identical results and iteration counts.
  std::vector<PcpgResult> solve_impl_device(const std::vector<double>* const* d,
                                            std::size_t nsys,
                                            bool throw_on_breakdown);
  std::vector<PcpgResult> solve_block_impl_device(
      const std::vector<double>* const* d, std::size_t nsys,
      bool throw_on_breakdown);

  DualOperator& f_;
  const Projector& projector_;
  PcpgOptions options_;
  precond::Preconditioner* m_ = nullptr;  ///< null = no preconditioning
  std::unique_ptr<precond::Preconditioner> owned_m_;  ///< fallback instance
  KrylovRecycler* recycler_ = nullptr;    ///< caller-owned, may be null
};

}  // namespace feti::core
