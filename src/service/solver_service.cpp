#include "service/solver_service.hpp"

#include <algorithm>

#include "precond/precond_registry.hpp"

namespace feti::service {

namespace {

/// Wave compatibility beyond the fingerprint: solve_step_many iterates one
/// PCPG option set for the whole block.
bool same_pcpg(const core::PcpgOptions& a, const core::PcpgOptions& b) {
  return a.rel_tolerance == b.rel_tolerance &&
         a.max_iterations == b.max_iterations &&
         a.preconditioner == b.preconditioner && a.block == b.block &&
         a.device_state == b.device_state;
}

/// With cross-step recycling on, a wave additionally sticks to one tenant:
/// the pooled solver's retained Krylov panel is scoped per tenant
/// (FetiSolver::set_recycle_scope), so mixing tenants in one recycled wave
/// would either leak one tenant's Krylov space into another's solve or
/// force a clear that defeats the recycling.
bool same_wave(const SolveJob& a, const SolveJob& b) {
  if (!same_pcpg(a.pcpg, b.pcpg)) return false;
  if (a.pcpg.block.enabled && a.pcpg.block.recycle && a.tenant != b.tenant)
    return false;
  return true;
}

}  // namespace

SolverService::SolverService(ServiceOptions options)
    : options_(options),
      devices_(std::max(1, options.num_shards),
               gpu::DevicePool::split_config(options.device,
                                             std::max(1, options.num_shards))),
      pool_(devices_, options.pool_budget_bytes) {
  options_.num_shards = std::max(1, options_.num_shards);
  options_.max_wave = std::max(1, options_.max_wave);
  const int workers =
      options_.workers > 0 ? options_.workers : options_.num_shards;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

SolverService::~SolverService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

core::DualOpConfig SolverService::plan_config(
    const SolveJob& job, int autotune_dim, const gpu::DeviceTopology& topology,
    std::size_t pool_budget_remaining, std::size_t pool_budget_total) {
  check(job.problem != nullptr, "SolveJob: problem must be set");
  const decomp::FetiProblem& p = *job.problem;
  const idx dofs = p.max_subdomain_dofs();
  if (!job.key.empty())
    return core::recommend_config(job.key, autotune_dim, dofs, 1, topology);

  // Auto-keyed job: explicit GPU assembly (the paper's fast path), with
  // the precision axis decided by the pool occupancy — the remaining pool
  // budget plays the WorkloadHint memory budget, so a crowded pool demotes
  // new entries to the fp32 storage tier instead of evicting harder.
  core::ApproachAxes axes;
  axes.repr = core::Representation::Explicit;
  axes.device = core::ExecDevice::Gpu;
  axes.backend = sparse::Backend::Simplicial;
  axes.api = gpu::sparse::Api::Modern;
  core::WorkloadHint hint;
  hint.num_subdomains = p.num_subdomains();
  for (const auto& s : p.sub)
    hint.lambdas_per_subdomain =
        std::max(hint.lambdas_per_subdomain, s.num_local_lambdas());
  if (pool_budget_total > 0) hint.memory_budget_bytes =
      std::max<std::size_t>(pool_budget_remaining, 1);
  return core::recommend_config(axes, autotune_dim, dofs, 1, topology, hint);
}

std::string SolverService::plan_key(const SolveJob& job) const {
  // Per-entry topology: a pooled operator lives on one shard, so the
  // planner sees a single device with that shard's stream budget (an
  // explicitly sharded job key still resolves to its own sharded variant).
  gpu::DeviceTopology per_shard{1, 0};
  return plan_config(job, options_.autotune_dim, per_shard,
                     pool_.remaining_budget(), options_.pool_budget_bytes)
      .resolved_key();
}

std::future<JobResult> SolverService::submit(SolveJob job) {
  std::vector<SolveJob> one;
  one.push_back(std::move(job));
  return std::move(submit(std::move(one)).front());
}

std::vector<std::future<JobResult>> SolverService::submit(
    std::vector<SolveJob> jobs) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  std::vector<PendingJob> pending;
  pending.reserve(jobs.size());
  for (SolveJob& job : jobs) {
    PendingJob p;
    p.config = plan_config(job, options_.autotune_dim,
                           gpu::DeviceTopology{1, 0}, pool_.remaining_budget(),
                           options_.pool_budget_bytes);
    p.fingerprint =
        job_fingerprint(*job.problem, p.config.resolved_key(),
                        precond::normalize_key(job.pcpg.preconditioner));
    if (!job.dual_rhs.empty())
      check(job.dual_rhs.size() ==
                static_cast<std::size_t>(job.problem->num_lambdas),
            "SolveJob: dual_rhs length must equal num_lambdas");
    p.job = std::move(job);
    futures.push_back(p.promise.get_future());
    pending.push_back(std::move(p));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    check(!stopping_, "SolverService: submit after shutdown");
    for (PendingJob& p : pending) {
      p.id = next_job_id_++;
      p.queued.reset();
      ++stats_.submitted;
      queue_.push_back(std::move(p));
    }
  }
  queue_cv_.notify_all();
  return futures;
}

void SolverService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<SolverService::PendingJob> SolverService::next_wave() {
  std::unique_lock<std::mutex> lock(mutex_);
  queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // stopping and drained

  std::vector<PendingJob> wave;
  wave.push_back(std::move(queue_.front()));
  queue_.pop_front();
  if (options_.batch_waves) {
    for (auto it = queue_.begin();
         it != queue_.end() &&
         wave.size() < static_cast<std::size_t>(options_.max_wave);) {
      if (it->fingerprint == wave.front().fingerprint &&
          same_wave(it->job, wave.front().job)) {
        wave.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  in_flight_ += static_cast<long>(wave.size());
  return wave;
}

void SolverService::solve_wave(std::vector<PendingJob> wave) {
  const std::uint64_t fingerprint = wave.front().fingerprint;
  const core::DualOpConfig config = wave.front().config;
  const core::PcpgOptions pcpg = wave.front().job.pcpg;
  const decomp::FetiProblem& problem = *wave.front().job.problem;

  std::vector<double> queue_seconds(wave.size());
  for (std::size_t j = 0; j < wave.size(); ++j)
    queue_seconds[j] = wave[j].queued.seconds();

  bool checked_out = false;
  bool counted = false;
  try {
    Timer solve_timer;
    OperatorPool::Checkout checkout =
        pool_.checkout(fingerprint, [&](gpu::ExecutionContext& context) {
          core::FetiSolverOptions o;
          o.dualop = config;
          o.pcpg = pcpg;
          return std::make_unique<core::FetiSolver>(problem, o, &context);
        });
    checked_out = true;
    checkout.solver->set_pcpg_options(pcpg);
    // Tenant-scoped recycling: a scope change drops the pooled solver's
    // retained Krylov panel, so consecutive checkouts by different tenants
    // never share Krylov state (same-tenant consecutive waves keep it).
    checkout.solver->set_recycle_scope(wave.front().job.tenant);

    std::vector<std::vector<double>> rhs(wave.size());
    for (std::size_t j = 0; j < wave.size(); ++j)
      rhs[j] = std::move(wave[j].job.dual_rhs);  // empty = physical d
    std::vector<core::FetiStepResult> steps =
        checkout.solver->solve_step_many(rhs);
    const double solve_seconds = solve_timer.seconds();

    pool_.give_back(fingerprint);
    checked_out = false;

    // Completion counters update BEFORE the promises are fulfilled: a
    // caller reading stats() right after future.get() must already see
    // this wave counted.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.completed += static_cast<long>(wave.size());
      ++stats_.waves;
      if (wave.size() > 1)
        stats_.batched_jobs += static_cast<long>(wave.size());
    }
    counted = true;

    for (std::size_t j = 0; j < wave.size(); ++j) {
      JobResult r;
      static_cast<core::FetiStepResult&>(r) = std::move(steps[j]);
      r.job_id = wave[j].id;
      r.tenant = wave[j].job.tenant;
      r.fingerprint = fingerprint;
      r.key = config.resolved_key();
      r.shard = checkout.shard;
      r.wave_size = static_cast<int>(wave.size());
      r.pool_hit = checkout.hit;
      r.queue_seconds = queue_seconds[j];
      r.solve_seconds = solve_seconds;
      r.latency_seconds = wave[j].queued.seconds();
      wave[j].promise.set_value(std::move(r));
    }
  } catch (...) {
    if (checked_out) pool_.give_back(fingerprint);
    for (PendingJob& p : wave)
      p.promise.set_exception(std::current_exception());
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_ -= static_cast<long>(wave.size());
    if (!counted) {  // exception path: the wave still completed (with error)
      stats_.completed += static_cast<long>(wave.size());
      ++stats_.waves;
      if (wave.size() > 1)
        stats_.batched_jobs += static_cast<long>(wave.size());
    }
  }
  drain_cv_.notify_all();
}

void SolverService::worker_loop() {
  for (;;) {
    std::vector<PendingJob> wave = next_wave();
    if (wave.empty()) return;
    solve_wave(std::move(wave));
  }
}

}  // namespace feti::service
