#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/common.hpp"

namespace feti {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  check(cells.size() == header_.size(), "Table row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace feti
