#include "decomp/boundary.hpp"

namespace feti::decomp {

BoundaryDofs boundary_dofs(const FetiSubdomain& s) {
  const la::Csr& b = s.b;
  const idx n = s.ndof();
  BoundaryDofs out;
  std::vector<char> on_boundary(static_cast<std::size_t>(n), 0);
  for (idx e = 0; e < b.nnz(); ++e)
    on_boundary[static_cast<std::size_t>(b.colidx()[e])] = 1;
  out.map.assign(static_cast<std::size_t>(n), -1);
  idx nb = 0;
  for (idx d = 0; d < n; ++d) {
    if (!on_boundary[static_cast<std::size_t>(d)]) continue;
    out.dofs.push_back(d);
    out.map[static_cast<std::size_t>(d)] = nb++;
  }
  // B̃ᵢ with columns renumbered boundary-local; the remap is monotone, so
  // each row's column order stays sorted.
  std::vector<idx> b_colidx(b.colidx());
  for (idx& c : b_colidx) c = out.map[static_cast<std::size_t>(c)];
  out.b_b =
      la::Csr(b.nrows(), nb, b.rowptr(), std::move(b_colidx), b.vals());
  return out;
}

la::Csr boundary_selection(const BoundaryDofs& boundary, idx ndof) {
  const idx nb = boundary.count();
  std::vector<idx> rowptr(static_cast<std::size_t>(nb) + 1);
  for (idx r = 0; r <= nb; ++r) rowptr[static_cast<std::size_t>(r)] = r;
  std::vector<idx> colidx(boundary.dofs);
  std::vector<double> vals(static_cast<std::size_t>(nb), 1.0);
  return la::Csr(nb, ndof, std::move(rowptr), std::move(colidx),
                 std::move(vals));
}

}  // namespace feti::decomp
