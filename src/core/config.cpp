#include "core/config.hpp"

namespace feti::core {

const char* to_string(Approach a) {
  switch (a) {
    case Approach::ImplMkl: return "impl mkl";
    case Approach::ImplCholmod: return "impl cholmod";
    case Approach::ImplLegacy: return "impl legacy";
    case Approach::ImplModern: return "impl modern";
    case Approach::ExplMkl: return "expl mkl";
    case Approach::ExplCholmod: return "expl cholmod";
    case Approach::ExplLegacy: return "expl legacy";
    case Approach::ExplModern: return "expl modern";
    case Approach::ExplHybrid: return "expl hybrid";
  }
  return "?";
}

std::vector<Approach> all_approaches() {
  return {Approach::ImplMkl,     Approach::ImplCholmod, Approach::ImplLegacy,
          Approach::ImplModern,  Approach::ExplMkl,     Approach::ExplCholmod,
          Approach::ExplLegacy,  Approach::ExplModern,  Approach::ExplHybrid};
}

bool uses_gpu(Approach a) {
  switch (a) {
    case Approach::ImplLegacy:
    case Approach::ImplModern:
    case Approach::ExplLegacy:
    case Approach::ExplModern:
    case Approach::ExplHybrid:
      return true;
    default:
      return false;
  }
}

bool is_explicit(Approach a) {
  switch (a) {
    case Approach::ExplMkl:
    case Approach::ExplCholmod:
    case Approach::ExplLegacy:
    case Approach::ExplModern:
    case Approach::ExplHybrid:
      return true;
    default:
      return false;
  }
}

const char* to_string(Path p) { return p == Path::Trsm ? "TRSM" : "SYRK"; }

const char* to_string(FactorStorage s) {
  return s == FactorStorage::Sparse ? "sparse" : "dense";
}

const char* to_string(SgLocation s) { return s == SgLocation::Cpu ? "CPU" : "GPU"; }

std::string ExplicitGpuOptions::describe() const {
  std::string out;
  out += "path=";
  out += to_string(path);
  out += " fwd=";
  out += to_string(fwd_storage);
  out += "/";
  out += la::to_string(fwd_order);
  if (path == Path::Trsm) {
    out += " bwd=";
    out += to_string(bwd_storage);
    out += "/";
    out += la::to_string(bwd_order);
  }
  out += " rhs=";
  out += la::to_string(rhs_order);
  out += " sg=";
  out += to_string(scatter_gather);
  return out;
}

}  // namespace feti::core
