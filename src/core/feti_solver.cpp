#include "core/feti_solver.hpp"

#include <algorithm>

#include "gpu/runtime.hpp"
#include "precond/precond_registry.hpp"
#include "util/timer.hpp"

namespace feti::core {

FetiSolver::FetiSolver(const decomp::FetiProblem& problem,
                       FetiSolverOptions options, gpu::ExecutionContext* context)
    : problem_(problem), options_(options), context_(context),
      dualop_(make_dual_operator(problem, options.dualop, context)),
      projector_(problem) {}

void FetiSolver::ensure_preconditioner() {
  const std::string key =
      precond::normalize_key(options_.pcpg.preconditioner);
  if (precond_ != nullptr && precond_key_ == key) return;
  precond_.reset();
  precond_key_ = key;
  if (key == "none") return;
  precond_ = precond::PreconditionerRegistry::instance().create(key, problem_,
                                                                context_);
  precond_->prepare();
}

void FetiSolver::ensure_recycler() {
  const BlockPcpgOptions& block = options_.pcpg.block;
  if (!block.enabled || !block.recycle) {
    // Recycling switched off (e.g. a pooled solver re-optioned between
    // checkouts): drop the stale Krylov state rather than park it.
    recycler_.reset();
    return;
  }
  const int budget = std::max(1, block.deflation_budget);
  if (recycler_ == nullptr || recycler_->budget() != budget)
    recycler_ =
        std::make_unique<KrylovRecycler>(problem_.num_lambdas, budget);
}

void FetiSolver::prepare() {
  dualop_->prepare();
  ensure_preconditioner();
  prepared_ = true;
}

FetiStepResult FetiSolver::solve_step() {
  check(prepared_, "FetiSolver: prepare() must be called first");
  Timer step_timer;
  FetiStepResult result;
  result.operator_precision = options_.dualop.axes().precision;

  ensure_preconditioner();
  {
    const CacheStats before = dualop_->cache_stats();
    Timer t;
    dualop_->update_values();
    if (precond_ != nullptr) precond_->update_values();
    result.preprocess_seconds = t.seconds();
    const CacheStats after = dualop_->cache_stats();
    result.refreshed_subdomains =
        after.refreshed_subdomains - before.refreshed_subdomains;
    result.skipped_subdomains =
        after.skipped_subdomains - before.skipped_subdomains;
    // The skipped-steps delta, not "refreshed == 0": an operator that does
    // not maintain cache_stats() (an out-of-tree update_values() override)
    // reports zero deltas everywhere and must read as NOT cached.
    result.values_cached = after.skipped_steps > before.skipped_steps;
  }
  ensure_recycler();
  // A refreshed subdomain means F changed: the recycled Krylov panel was
  // harvested from the old operator and would deflate against the wrong F.
  if (result.refreshed_subdomains > 0 && recycler_ != nullptr)
    recycler_->clear();

  std::vector<double> d(static_cast<std::size_t>(problem_.num_lambdas));
  dualop_->compute_d(d.data());

  const double apply_before = dualop_->timings().total("apply");
  const gpu::TransferCounters::Snapshot xfer_before =
      gpu::TransferCounters::global().snapshot();
  Timer pcpg_timer;
  Pcpg pcpg(*dualop_, projector_, options_.pcpg, precond_.get());
  pcpg.set_recycler(recycler_.get());
  PcpgResult pr = pcpg.solve(d);
  result.pcpg_seconds = pcpg_timer.seconds();
  const gpu::TransferCounters::Snapshot xfer =
      gpu::TransferCounters::global().snapshot() - xfer_before;
  result.pcpg_h2d_bytes = xfer.h2d_bytes;
  result.pcpg_d2h_bytes = xfer.d2h_bytes;
  result.pcpg_iterations = pr.iterations;
  result.preconditioner = precond_key_;
  result.rel_residual = pr.rel_residual;
  result.converged = pr.converged;
  result.deflation_dim = pr.deflation_dim;
  result.apply_seconds = dualop_->timings().total("apply") - apply_before;

  std::vector<std::vector<double>> u_local;
  dualop_->primal_solution(pr.lambda.data(), pr.alpha, u_local);
  result.u = decomp::gather_solution(problem_, u_local);
  result.step_seconds = step_timer.seconds();
  return result;
}

std::vector<FetiStepResult> FetiSolver::solve_step_many(
    const std::vector<std::vector<double>>& dual_rhs) {
  check(prepared_, "FetiSolver: prepare() must be called first");
  Timer step_timer;
  std::vector<FetiStepResult> results(dual_rhs.size());
  if (dual_rhs.empty()) return results;

  ensure_preconditioner();
  double preprocess_seconds = 0.0;
  const CacheStats cache_before = dualop_->cache_stats();
  {
    Timer t;
    dualop_->update_values();
    if (precond_ != nullptr) precond_->update_values();
    preprocess_seconds = t.seconds();
  }
  const CacheStats cache_after = dualop_->cache_stats();
  const long refreshed =
      cache_after.refreshed_subdomains - cache_before.refreshed_subdomains;
  const long skipped =
      cache_after.skipped_subdomains - cache_before.skipped_subdomains;
  const bool cached = cache_after.skipped_steps > cache_before.skipped_steps;
  ensure_recycler();
  // Same invalidation rule as solve_step(): a refreshed subdomain means the
  // retained panel was harvested from a different F.
  if (refreshed > 0 && recycler_ != nullptr) recycler_->clear();

  // An empty entry stands for the physical d of eq. (7), computed once
  // after the numeric refresh and shared by every such system (the service
  // layer mixes per-tenant load cases with physical steps in one wave).
  std::vector<double> physical_d;
  std::vector<const std::vector<double>*> rhs_ptrs(dual_rhs.size());
  for (std::size_t j = 0; j < dual_rhs.size(); ++j) {
    if (dual_rhs[j].empty() && physical_d.empty()) {
      physical_d.resize(static_cast<std::size_t>(problem_.num_lambdas));
      dualop_->compute_d(physical_d.data());
    }
    rhs_ptrs[j] = dual_rhs[j].empty() ? &physical_d : &dual_rhs[j];
  }

  const double apply_before = dualop_->timings().total("apply");
  const gpu::TransferCounters::Snapshot xfer_before =
      gpu::TransferCounters::global().snapshot();
  Timer pcpg_timer;
  Pcpg pcpg(*dualop_, projector_, options_.pcpg, precond_.get());
  pcpg.set_recycler(recycler_.get());
  std::vector<PcpgResult> prs = pcpg.solve_many_ptrs(rhs_ptrs);
  const double pcpg_seconds = pcpg_timer.seconds();
  const gpu::TransferCounters::Snapshot xfer =
      gpu::TransferCounters::global().snapshot() - xfer_before;
  const double apply_seconds =
      dualop_->timings().total("apply") - apply_before;

  for (std::size_t j = 0; j < prs.size(); ++j) {
    FetiStepResult& result = results[j];
    result.pcpg_iterations = prs[j].iterations;
    result.preconditioner = precond_key_;
    result.rel_residual = prs[j].rel_residual;
    result.converged = prs[j].converged;
    result.deflation_dim = prs[j].deflation_dim;
    result.preprocess_seconds = preprocess_seconds;
    result.pcpg_seconds = pcpg_seconds;
    result.apply_seconds = apply_seconds;
    result.refreshed_subdomains = refreshed;
    result.skipped_subdomains = skipped;
    result.values_cached = cached;
    result.operator_precision = options_.dualop.axes().precision;
    result.pcpg_h2d_bytes = xfer.h2d_bytes;
    result.pcpg_d2h_bytes = xfer.d2h_bytes;
    std::vector<std::vector<double>> u_local;
    dualop_->primal_solution(prs[j].lambda.data(), prs[j].alpha, u_local);
    result.u = decomp::gather_solution(problem_, u_local);
  }
  const double step_seconds = step_timer.seconds();
  for (auto& result : results) result.step_seconds = step_seconds;
  return results;
}

}  // namespace feti::core
