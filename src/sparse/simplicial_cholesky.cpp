#include "sparse/simplicial_cholesky.hpp"

#include <cmath>

#include "la/blas_sparse.hpp"

namespace feti::sparse {

namespace {

/// Permutes `a` symmetrically while recording where each permuted value
/// comes from, so repeated factorizations avoid re-sorting triplets.
la::Csr permute_with_map(const la::Csr& a, const std::vector<idx>& perm,
                         std::vector<idx>& value_map) {
  const std::vector<idx> iperm = la::invert_permutation(perm);
  std::vector<la::Triplet> t;
  t.reserve(static_cast<std::size_t>(a.nnz()));
  for (idx r = 0; r < a.nrows(); ++r)
    for (idx k = a.row_begin(r); k < a.row_end(r); ++k)
      t.push_back({iperm[r], iperm[a.col(k)], static_cast<double>(k)});
  la::Csr p = la::Csr::from_triplets(a.nrows(), a.ncols(), std::move(t));
  value_map.resize(static_cast<std::size_t>(p.nnz()));
  for (idx k = 0; k < p.nnz(); ++k)
    value_map[k] = static_cast<idx>(p.vals()[k]);
  return p;
}

}  // namespace

void SimplicialCholesky::analyze(const la::Csr& a, OrderingKind ordering) {
  check(a.nrows() == a.ncols(), "analyze: matrix must be square");
  n_ = a.nrows();
  lower_valid_ = false;
  factorized_ = false;

  // Fill-reducing ordering refined by an etree postorder (better locality,
  // and a prerequisite shared with the supernodal backend).
  std::vector<idx> perm1 = compute_ordering(a, ordering);
  {
    std::vector<idx> dummy_map;
    la::Csr a1 = permute_with_map(a, perm1, dummy_map);
    const std::vector<idx> parent = elimination_tree(a1);
    const std::vector<idx> post = postorder_forest(parent);
    perm_.resize(static_cast<std::size_t>(n_));
    for (idx i = 0; i < n_; ++i) perm_[i] = perm1[post[i]];
  }
  iperm_ = la::invert_permutation(perm_);

  ap_ = permute_with_map(a, perm_, value_map_);
  sym_ = symbolic_cholesky(ap_);

  // Build the fixed structure of U = L^T (CSR, diag first then ascending
  // row indices of L's column = ascending k with j in rowpat(k)).
  std::vector<idx> rowptr(sym_.colptr.begin(), sym_.colptr.end());
  std::vector<idx> colidx(static_cast<std::size_t>(sym_.nnz));
  std::vector<idx> fill(static_cast<std::size_t>(n_));
  for (idx j = 0; j < n_; ++j) {
    colidx[rowptr[j]] = j;  // diagonal first
    fill[j] = rowptr[j] + 1;
  }
  for (idx k = 0; k < n_; ++k)
    for (idx p = sym_.rowpat_ptr[k]; p < sym_.rowpat_ptr[k + 1]; ++p)
      colidx[fill[sym_.rowpat[p]]++] = k;
  upper_ = la::Csr(n_, n_, std::move(rowptr), std::move(colidx),
                   std::vector<double>(static_cast<std::size_t>(sym_.nnz)));
  analyzed_ = true;
}

void SimplicialCholesky::factorize(const la::Csr& a) {
  check(analyzed_, "factorize: analyze() must be called first");
  check(a.nnz() == static_cast<idx>(value_map_.size()),
        "factorize: pattern differs from the analyzed one");
  lower_valid_ = false;

  // Route original values into the permuted pattern.
  for (idx k = 0; k < ap_.nnz(); ++k) ap_.vals()[k] = a.vals()[value_map_[k]];

  auto& ux = upper_.vals();
  const auto& ui = upper_.colidx();
  const auto& up = upper_.rowptr();

  std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
  std::vector<idx> fill(static_cast<std::size_t>(n_));
  for (idx j = 0; j < n_; ++j) fill[j] = up[j] + 1;  // skip diagonal slot

  for (idx k = 0; k < n_; ++k) {
    // Scatter A(k, 0..k) into the workspace.
    double d = 0.0;
    for (idx p = ap_.row_begin(k); p < ap_.row_end(k); ++p) {
      const idx c = ap_.col(p);
      if (c < k)
        x[c] = ap_.val(p);
      else if (c == k)
        d = ap_.val(p);
    }
    // Up-looking solve along the row pattern (ascending columns).
    for (idx p = sym_.rowpat_ptr[k]; p < sym_.rowpat_ptr[k + 1]; ++p) {
      const idx j = sym_.rowpat[p];
      const double xj = x[j];
      x[j] = 0.0;
      const double lkj = xj / ux[up[j]];  // divide by L(j,j)
      // Apply previously computed entries of column j to the workspace.
      for (idx q = up[j] + 1; q < fill[j]; ++q) x[ui[q]] -= ux[q] * lkj;
      d -= lkj * lkj;
      FETI_ASSERT(ui[fill[j]] == k, "factorize: symbolic/numeric mismatch");
      ux[fill[j]++] = lkj;
    }
    if (d <= 0.0)
      throw std::runtime_error(
          "SimplicialCholesky: matrix is not positive definite at column " +
          std::to_string(k));
    ux[up[k]] = std::sqrt(d);
  }
  factorized_ = true;
}

void SimplicialCholesky::solve(const double* b, double* x) const {
  check(factorized_, "solve: factorize() must be called first");
  std::vector<double> y(static_cast<std::size_t>(n_));
  for (idx i = 0; i < n_; ++i) y[i] = b[perm_[i]];
  la::DenseView yv{y.data(), n_, 1, n_, la::Layout::ColMajor};
  // P A P^T = L L^T; U = L^T: forward solve is U^T y = b, backward U x = y.
  la::sp_trsm(la::Uplo::Upper, la::Trans::Yes, upper_, yv);
  la::sp_trsm(la::Uplo::Upper, la::Trans::No, upper_, yv);
  for (idx i = 0; i < n_; ++i) x[perm_[i]] = y[i];
}

const la::Csr& SimplicialCholesky::factor_upper() const {
  check(factorized_, "factor_upper: factorize() must be called first");
  return upper_;
}

const la::Csr& SimplicialCholesky::factor_lower() const {
  check(factorized_, "factor_lower: factorize() must be called first");
  if (!lower_valid_) {
    lower_ = upper_.transposed();
    lower_valid_ = true;
  }
  return lower_;
}

}  // namespace feti::sparse
