#pragma once

// The shared operator pool of the service layer: prepared FetiSolver
// instances (dual operator + projector) keyed by job fingerprint, with LRU
// eviction under a memory budget and an exclusive checkout/return
// discipline.
//
// Pooling amortizes the expensive once-per-pattern preparation (symbolic
// factorization, persistent device allocations) across every job that
// shares a fingerprint — the cross-tenant analogue of the time-step cache:
// the pool skips prepare(), the dirty tracking inside the pooled operator
// then skips update_values() when the tenant's K did not change either.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>

#include "gpu/context.hpp"
#include "service/solve_job.hpp"

namespace feti::service {

/// Pool effectiveness counters and occupancy, snapshot by stats().
struct PoolStats {
  long hits = 0;        ///< checkouts served by an existing prepared entry
  long misses = 0;      ///< checkouts that had to build + prepare an entry
  long evictions = 0;   ///< idle entries dropped to make room
  std::size_t entries = 0;         ///< resident entries right now
  std::size_t resident_bytes = 0;  ///< accounted bytes of those entries
  std::size_t budget_bytes = 0;    ///< configured budget (0 = unlimited)
};

class OperatorPool {
 public:
  /// Builds the pooled solver for a fingerprint on its creation shard.
  using SolverFactory = std::function<std::unique_ptr<core::FetiSolver>(
      gpu::ExecutionContext& context)>;

  /// An exclusive checkout of one pooled entry. Holds the shard lease of
  /// the entry's device for its lifetime; the caller must return the entry
  /// via give_back() when the solve is done (the lease releases itself).
  /// Device-state PCPG solves (PcpgOptions::device_state) depend on this:
  /// the solver loop's λ/r/w/P/Q state lives in the entry's device memory
  /// for the whole solve, so the shard lease is kept end to end — the
  /// device is never rebalanced or handed to another wave mid-solve.
  struct Checkout {
    core::FetiSolver* solver = nullptr;
    std::uint64_t fingerprint = 0;
    std::size_t shard = 0;
    bool hit = false;  ///< entry existed and was already prepared
    gpu::DevicePool::Lease lease;
  };

  /// `budget_bytes` bounds the accounted bytes of idle + checked-out
  /// entries (0 = unlimited). Checked-out entries are pinned: the pool may
  /// transiently exceed the budget when every resident entry is in use.
  OperatorPool(gpu::DevicePool& devices, std::size_t budget_bytes);

  OperatorPool(const OperatorPool&) = delete;
  OperatorPool& operator=(const OperatorPool&) = delete;

  /// Checks out the entry for `fingerprint`, building it with `make` on a
  /// miss: the pool acquires the least-loaded shard, runs the factory with
  /// that shard's context, calls prepare(), and accounts the entry's bytes
  /// (evicting idle entries, least recently used first, while over
  /// budget). On a hit the entry's own shard is re-leased. Blocks while
  /// another caller holds the same fingerprint — one wave at a time per
  /// pooled operator, which is what makes the pooled FetiSolver's
  /// single-instance lifecycle safe under concurrency.
  [[nodiscard]] Checkout checkout(std::uint64_t fingerprint,
                                  const SolverFactory& make);

  /// Returns a checked-out entry to the pool (wakes blocked checkouts).
  void give_back(std::uint64_t fingerprint);

  [[nodiscard]] PoolStats stats() const;
  /// Budget not yet consumed by resident entries (0 when over budget;
  /// budget 0 = unlimited reports 0 remaining as "no pressure" is encoded
  /// by budget_bytes == 0). Feeds the per-job autotune's WorkloadHint.
  [[nodiscard]] std::size_t remaining_budget() const;

 private:
  enum class State { Preparing, Idle, CheckedOut };

  struct Entry {
    std::uint64_t fingerprint = 0;
    State state = State::Preparing;
    std::unique_ptr<core::FetiSolver> solver;
    std::size_t shard = 0;
    std::size_t bytes = 0;
    std::uint64_t last_used = 0;
  };

  /// Requires mutex_ held. Evicts idle entries (LRU first) while the pool
  /// is over budget and something is evictable.
  void evict_over_budget_locked();
  Entry* find_locked(std::uint64_t fingerprint);

  gpu::DevicePool& devices_;
  const std::size_t budget_bytes_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::list<Entry> entries_;
  std::uint64_t tick_ = 0;
  long hits_ = 0;
  long misses_ = 0;
  long evictions_ = 0;
  std::size_t resident_bytes_ = 0;
};

/// Rough resident-byte floor for operators that cannot report
/// apply_bytes() (the implicit families): the numeric factors dominate, so
/// estimate two fill-factor copies of every K_reg plus the dense kernel
/// bases. Used only for pool accounting, never for allocation.
[[nodiscard]] std::size_t estimate_solver_bytes(
    const decomp::FetiProblem& problem);

}  // namespace feti::service
