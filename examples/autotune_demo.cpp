// Demonstrates the Table-II auto-configuration: for a grid of (API, dim,
// subdomain size) combinations, prints the recommended explicit-assembly
// parameters and measures the recommendation against the opposite choice of
// factor storage on a real subdomain.

#include <cstdio>

#include "core/autotune.hpp"
#include "core/feti_solver.hpp"
#include "util/table.hpp"

namespace {

using namespace feti;

gpu::ExecutionContext& demo_context() {
  static gpu::ExecutionContext ctx{gpu::DeviceConfig::from_env()};
  return ctx;
}

double measure_preprocess(decomp::FetiProblem& problem,
                          core::Approach approach,
                          const core::ExplicitGpuOptions& gpu_opts) {
  core::DualOpConfig cfg;
  cfg.approach = approach;
  cfg.gpu = gpu_opts;
  auto op = core::make_dual_operator(problem, cfg, &demo_context());
  op->prepare();
  op->update_values();  // warm-up
  // Mark the values dirty before each rep: this demo measures the full
  // refresh, not the time-step cache's skip path.
  return measure_median_seconds(3, 0.05, [&] {
    problem.mark_values_changed();
    op->update_values();
  });
}

}  // namespace

int main() {
  using core::FactorStorage;

  // Part 1: the recommendation table (mirrors Table II).
  Table rec({"API", "dim", "DOFs", "recommended parameters"});
  for (auto api : {gpu::sparse::Api::Legacy, gpu::sparse::Api::Modern})
    for (int dim : {2, 3})
      for (idx dofs : {2000, 20000})
        rec.add_row({gpu::sparse::to_string(api), std::to_string(dim),
                     std::to_string(dofs),
                     core::recommend_options(api, dim, dofs).describe()});
  rec.print();

  // Part 2: recommendation vs the flipped factor storage on a real 3D
  // subdomain (the decision the paper calls "challenging").
  const idx cells = 8, splits = 2;
  mesh::Mesh m = mesh::make_grid_3d(cells, cells, cells,
                                    mesh::ElementOrder::Linear);
  auto dec = mesh::decompose_3d(m, cells, cells, cells, splits, splits,
                                splits);
  auto problem = decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
  std::printf("\nheat 3D, %d DOFs per subdomain:\n",
              problem.max_subdomain_dofs());

  for (auto api : {gpu::sparse::Api::Legacy, gpu::sparse::Api::Modern}) {
    const auto approach = api == gpu::sparse::Api::Legacy
                              ? core::Approach::ExplLegacy
                              : core::Approach::ExplModern;
    core::ExplicitGpuOptions recommended =
        core::recommend_options(api, 3, problem.max_subdomain_dofs());
    core::ExplicitGpuOptions flipped = recommended;
    flipped.fwd_storage = recommended.fwd_storage == FactorStorage::Sparse
                              ? FactorStorage::Dense
                              : FactorStorage::Sparse;
    flipped.bwd_storage = flipped.fwd_storage;
    const double t_rec = measure_preprocess(problem, approach, recommended);
    const double t_flip = measure_preprocess(problem, approach, flipped);
    std::printf("  %s: recommended (%s) %.3f ms vs flipped (%s) %.3f ms%s\n",
                gpu::sparse::to_string(api),
                core::to_string(recommended.fwd_storage), t_rec * 1e3,
                core::to_string(flipped.fwd_storage), t_flip * 1e3,
                t_rec <= t_flip ? "  [recommendation wins]" : "");
  }
  return 0;
}
