#include "gpu/sparse.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "la/blas_sparse.hpp"

namespace feti::gpu::sparse {

const char* to_string(Api a) {
  return a == Api::Legacy ? "legacy" : "modern";
}

Api parse_api(std::string_view s) {
  if (s == "legacy") return Api::Legacy;
  if (s == "modern") return Api::Modern;
  throw std::invalid_argument("parse_api: unknown sparse API '" +
                              std::string(s) + "'");
}

namespace {

la::CsrView device_view(const DeviceCsr& d) {
  return {d.nrows, d.ncols, d.rowptr, d.colidx, d.vals};
}

/// Transpose-with-source-tracking: returns the CSR structure of the
/// transpose of `m` plus, for each transposed entry, the index of the
/// source entry in `m` (the value permutation).
void transpose_structure(const la::Csr& m, std::vector<idx>& rowptr,
                         std::vector<idx>& colidx, std::vector<idx>& srcidx) {
  const idx rows = m.nrows(), cols = m.ncols(), nnz = m.nnz();
  rowptr.assign(static_cast<std::size_t>(cols) + 1, 0);
  colidx.resize(static_cast<std::size_t>(nnz));
  srcidx.resize(static_cast<std::size_t>(nnz));
  for (idx k = 0; k < nnz; ++k) rowptr[m.colidx()[k] + 1] += 1;
  for (idx c = 0; c < cols; ++c) rowptr[c + 1] += rowptr[c];
  std::vector<idx> next(rowptr.begin(), rowptr.end() - 1);
  for (idx r = 0; r < rows; ++r)
    for (idx k = m.row_begin(r); k < m.row_end(r); ++k) {
      const idx pos = next[m.col(k)]++;
      colidx[pos] = r;
      srcidx[pos] = k;
    }
}

/// Level schedule depth of a triangular factor (dependency DAG longest
/// path). `lower` chooses the traversal direction.
idx compute_levels(const la::Csr& factor, bool stored_lower) {
  const idx n = factor.nrows();
  std::vector<idx> level(static_cast<std::size_t>(n), 0);
  idx depth = 0;
  if (stored_lower) {
    for (idx r = 0; r < n; ++r) {
      idx lv = 0;
      for (idx k = factor.row_begin(r); k < factor.row_end(r); ++k)
        if (factor.col(k) < r) lv = std::max(lv, level[factor.col(k)] + 1);
      level[r] = lv;
      depth = std::max(depth, lv + 1);
    }
  } else {
    for (idx r = n - 1; r >= 0; --r) {
      idx lv = 0;
      for (idx k = factor.row_begin(r); k < factor.row_end(r); ++k)
        if (factor.col(k) > r) lv = std::max(lv, level[factor.col(k)] + 1);
      level[r] = lv;
      depth = std::max(depth, lv + 1);
    }
  }
  return depth;
}

}  // namespace

// ---------------------------------------------------------------------------
// SpTrsmPlan
// ---------------------------------------------------------------------------

SpTrsmPlan::SpTrsmPlan(Device& dev, Stream& s, Api api,
                       const la::Csr& host_upper, la::Layout factor_order,
                       bool forward, la::Layout rhs_layout, idx max_rhs_cols)
    : dev_(&dev), api_(api), forward_(forward), factor_order_(factor_order),
      rhs_layout_(rhs_layout), n_(host_upper.nrows()),
      nnz_(host_upper.nnz()), max_cols_(max_rhs_cols) {
  check(host_upper.nrows() == host_upper.ncols(),
        "SpTrsmPlan: factor must be square");

  // The modern API always normalizes to its internal (lower CSR) format;
  // legacy uses the caller-provided orientation directly.
  const bool want_lower =
      api_ == Api::Modern || factor_order_ == la::Layout::RowMajor;

  auto track = [&](std::size_t bytes) { persistent_bytes_ += bytes; };

  factor_.nrows = n_;
  factor_.ncols = n_;
  factor_.nnz = nnz_;
  if (want_lower) {
    // Build the transposed structure (CSR of L) and the value permutation;
    // values are routed through a staging buffer every refresh. The extra
    // buffers model the "additional memory with the size around the size of
    // the factor" the paper reports for the non-native factor order.
    std::vector<idx> rowptr, colidx, srcidx;
    transpose_structure(host_upper, rowptr, colidx, srcidx);
    factor_.rowptr = dev.alloc_n<idx>(rowptr.size());
    factor_.colidx = dev.alloc_n<idx>(std::max<std::size_t>(1, colidx.size()));
    factor_.vals = dev.alloc_n<double>(std::max<idx>(1, nnz_));
    s.memcpy_h2d(factor_.rowptr, rowptr.data(), rowptr.size() * sizeof(idx));
    if (nnz_ > 0)
      s.memcpy_h2d(factor_.colidx, colidx.data(), colidx.size() * sizeof(idx));
    valperm_ = upload_array(dev, s, srcidx);
    staging_ = dev.alloc_n<double>(std::max<idx>(1, nnz_));
    track(sizeof(idx) * (rowptr.size() + 2 * colidx.size()) +
          sizeof(double) * 2 * static_cast<std::size_t>(nnz_));
    // The copies above read these block-local host buffers; wait for them
    // before the buffers go out of scope.
    s.synchronize();
  } else {
    factor_.rowptr = dev.alloc_n<idx>(static_cast<std::size_t>(n_) + 1);
    factor_.colidx = dev.alloc_n<idx>(std::max<idx>(1, nnz_));
    factor_.vals = dev.alloc_n<double>(std::max<idx>(1, nnz_));
    s.memcpy_h2d(factor_.rowptr, host_upper.rowptr().data(),
                 (static_cast<std::size_t>(n_) + 1) * sizeof(idx));
    if (nnz_ > 0)
      s.memcpy_h2d(factor_.colidx, host_upper.colidx().data(),
                   static_cast<std::size_t>(nnz_) * sizeof(idx));
    track(sizeof(idx) * (static_cast<std::size_t>(n_) + 1 + nnz_) +
          sizeof(double) * static_cast<std::size_t>(nnz_));
  }

  if (api_ == Api::Modern) {
    // Persistent dense RHS workspace — the large buffer the paper calls out.
    modern_work_ = dev.alloc_n<double>(
        std::max<widx>(1, static_cast<widx>(n_) * max_cols_));
    track(sizeof(double) * static_cast<std::size_t>(n_) * max_cols_);
  }

  levels_ = compute_levels(host_upper, /*stored_lower=*/false);
  update_values(s, host_upper);
  // The analysis phase is synchronous (as in cuSPARSE): the structure
  // uploads above read from constructor-local host buffers, which must stay
  // alive until the copies complete.
  s.synchronize();
}

void SpTrsmPlan::release() {
  if (dev_ == nullptr) return;
  dev_->free(factor_.rowptr);
  dev_->free(factor_.colidx);
  dev_->free(factor_.vals);
  dev_->free(staging_);
  dev_->free(valperm_);
  dev_->free(modern_work_);
  dev_ = nullptr;
}

SpTrsmPlan::~SpTrsmPlan() { release(); }

SpTrsmPlan::SpTrsmPlan(SpTrsmPlan&& o) noexcept { *this = std::move(o); }

SpTrsmPlan& SpTrsmPlan::operator=(SpTrsmPlan&& o) noexcept {
  if (this != &o) {
    release();
    dev_ = std::exchange(o.dev_, nullptr);
    api_ = o.api_;
    forward_ = o.forward_;
    factor_order_ = o.factor_order_;
    rhs_layout_ = o.rhs_layout_;
    n_ = o.n_;
    nnz_ = o.nnz_;
    max_cols_ = o.max_cols_;
    factor_ = std::exchange(o.factor_, DeviceCsr{});
    staging_ = std::exchange(o.staging_, nullptr);
    valperm_ = std::exchange(o.valperm_, nullptr);
    modern_work_ = std::exchange(o.modern_work_, nullptr);
    levels_ = o.levels_;
    persistent_bytes_ = o.persistent_bytes_;
  }
  return *this;
}

void SpTrsmPlan::update_values(Stream& s, const la::Csr& host_upper) {
  check(dev_ != nullptr, "SpTrsmPlan: invalid plan");
  check(host_upper.nnz() == nnz_, "SpTrsmPlan: factor nnz changed");
  if (nnz_ == 0) return;
  if (valperm_ != nullptr) {
    s.memcpy_h2d(staging_, host_upper.vals().data(),
                 static_cast<std::size_t>(nnz_) * sizeof(double));
    const double* src = staging_;
    double* dst = factor_.vals;
    const idx* perm = valperm_;
    const idx count = nnz_;
    s.submit([src, dst, perm, count] {
      for (idx k = 0; k < count; ++k) dst[k] = src[perm[k]];
    });
  } else {
    s.memcpy_h2d(factor_.vals, host_upper.vals().data(),
                 static_cast<std::size_t>(nnz_) * sizeof(double));
  }
}

std::size_t SpTrsmPlan::workspace_bytes(idx rhs_cols) const {
  if (api_ == Api::Modern) return 0;  // persistent workspace instead
  if (rhs_layout_ == la::Layout::RowMajor) return 0;
  // Legacy + col-major RHS: row-major staging copy of the RHS.
  return sizeof(double) * static_cast<std::size_t>(n_) * rhs_cols;
}

void SpTrsmPlan::solve(Stream& s, DeviceDense b, void* workspace) const {
  check(dev_ != nullptr, "SpTrsmPlan: invalid plan");
  check(b.rows == n_, "SpTrsmPlan: RHS dimension mismatch");
  check(b.cols <= max_cols_, "SpTrsmPlan: RHS wider than planned");
  check(b.layout == rhs_layout_, "SpTrsmPlan: RHS layout differs from plan");

  // Effective (uplo, trans) of the stored factor for the requested solve.
  const bool stored_lower =
      api_ == Api::Modern || factor_order_ == la::Layout::RowMajor;
  const la::Uplo uplo = stored_lower ? la::Uplo::Lower : la::Uplo::Upper;
  const la::Trans trans = (stored_lower == forward_)
                              ? la::Trans::No
                              : la::Trans::Yes;
  const DeviceCsr factor = factor_;

  if (api_ == Api::Legacy) {
    if (rhs_layout_ == la::Layout::RowMajor) {
      s.submit([factor, uplo, trans, b] {
        la::sp_trsm(uplo, trans, device_view(factor), b.view());
      });
    } else {
      check(workspace != nullptr,
            "SpTrsmPlan: legacy col-major RHS needs a workspace");
      auto* w = static_cast<double*>(workspace);
      s.submit([factor, uplo, trans, b, w] {
        // Stage through a row-major copy (vectorized solve), then copy back.
        la::DenseView tmp{w, b.rows, b.cols, b.cols, la::Layout::RowMajor};
        la::copy(b.cview(), tmp);
        la::sp_trsm(uplo, trans, device_view(factor), tmp);
        la::copy(la::ConstDenseView(tmp), b.view());
      });
    }
  } else {
    // Modern generic path: stage the RHS in the persistent col-major
    // workspace and solve column by column (no cross-RHS vectorization).
    double* work = modern_work_;
    s.submit([factor, uplo, trans, b, work] {
      la::DenseView tmp{work, b.rows, b.cols, b.rows, la::Layout::ColMajor};
      la::copy(b.cview(), tmp);
      for (idx j = 0; j < b.cols; ++j)
        la::sp_trsv(uplo, trans, device_view(factor),
                    work + static_cast<widx>(j) * b.rows);
      la::copy(la::ConstDenseView(tmp), b.view());
    });
  }
}

// ---------------------------------------------------------------------------
// SpMV / SpMM / conversions
// ---------------------------------------------------------------------------

void spmv(Stream& s, double alpha, DeviceCsr a, la::Trans trans,
          const double* x, double beta, double* y) {
  s.submit([=] {
    if (trans == la::Trans::No)
      la::spmv(alpha, device_view(a), x, beta, y);
    else
      la::spmv_trans(alpha, device_view(a), x, beta, y);
  });
}

void spmm(Stream& s, double alpha, DeviceCsr a, la::Trans trans,
          DeviceDense b, double beta, DeviceDense c) {
  s.submit([=] {
    la::spmm(alpha, device_view(a), trans, b.cview(), beta, c.view());
  });
}

void csr_to_dense(Stream& s, DeviceCsr a, DeviceDense out) {
  check(out.rows == a.nrows && out.cols == a.ncols,
        "csr_to_dense: dimension mismatch");
  s.submit([a, out] {
    la::DenseView o = out.view();
    for (idx r = 0; r < o.rows; ++r)
      for (idx c = 0; c < o.cols; ++c) o.at(r, c) = 0.0;
    const la::CsrView v = device_view(a);
    for (idx r = 0; r < v.nrows(); ++r)
      for (idx k = v.row_begin(r); k < v.row_end(r); ++k)
        o.at(r, v.col(k)) = v.val(k);
  });
}

void csr_to_dense_transposed(Stream& s, DeviceCsr a, DeviceDense out) {
  check(out.rows == a.ncols && out.cols == a.nrows,
        "csr_to_dense_transposed: dimension mismatch");
  s.submit([a, out] {
    la::DenseView o = out.view();
    for (idx r = 0; r < o.rows; ++r)
      for (idx c = 0; c < o.cols; ++c) o.at(r, c) = 0.0;
    const la::CsrView v = device_view(a);
    for (idx r = 0; r < v.nrows(); ++r)
      for (idx k = v.row_begin(r); k < v.row_end(r); ++k)
        o.at(v.col(k), r) = v.val(k);
  });
}

}  // namespace feti::gpu::sparse
