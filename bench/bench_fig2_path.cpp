// Reproduces Fig. 2 of the paper: the preprocessing speedup of the SYRK
// path over the TRSM path across all tested configurations (both API
// generations, both dimensionalities, both physics, several sizes and
// factor-storage settings), reported as a sorted speedup series with
// summary statistics. The paper reports an average speedup of 1.58 with
// TRSM winning only for very small subdomains.

#include <algorithm>

#include "common.hpp"

using namespace feti;
using namespace feti::bench;
using core::FactorStorage;

int main() {
  gpu::ExecutionContext& device = shared_context();
  struct Sample {
    double speedup;
    std::string label;
  };
  std::vector<Sample> samples;

  for (auto api : {gpu::sparse::Api::Legacy, gpu::sparse::Api::Modern})
    for (int dim : {2, 3})
      for (auto physics :
           {fem::Physics::HeatTransfer, fem::Physics::LinearElasticity})
        for (idx c : dim == 2 ? std::vector<idx>{6, 16}
                              : std::vector<idx>{3, 6})
          for (FactorStorage storage :
               {FactorStorage::Sparse, FactorStorage::Dense}) {
            BuiltProblem bp = build_problem(dim, physics, c,
                                            mesh::ElementOrder::Linear);
            core::DualOpConfig cfg;
            cfg.approach = api == gpu::sparse::Api::Legacy
                               ? core::Approach::ExplLegacy
                               : core::Approach::ExplModern;
            cfg.gpu = core::recommend_options(api, dim,
                                              bp.dofs_per_subdomain);
            cfg.gpu.fwd_storage = storage;
            cfg.gpu.bwd_storage = storage;
            cfg.gpu.path = core::Path::Trsm;
            const double trsm =
                measure_dualop(bp.problem, cfg, device, 2, 0.01)
                    .preprocess_ms;
            cfg.gpu.path = core::Path::Syrk;
            const double syrk =
                measure_dualop(bp.problem, cfg, device, 2, 0.01)
                    .preprocess_ms;
            std::string label = std::string(gpu::sparse::to_string(api)) +
                                " " + std::to_string(dim) + "D " +
                                fem::to_string(physics) + " n=" +
                                std::to_string(bp.dofs_per_subdomain) + " " +
                                core::to_string(storage);
            samples.push_back({trsm / syrk, std::move(label)});
          }

  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.speedup < b.speedup;
            });

  std::printf("=== Fig. 2: SYRK-path speedup over TRSM path (sorted) ===\n");
  Table table({"rank", "speedup", "configuration"});
  double sum = 0.0;
  int wins = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    table.add_row({std::to_string(i + 1), Table::num(samples[i].speedup, 3),
                   samples[i].label});
    sum += samples[i].speedup;
    if (samples[i].speedup > 1.0) ++wins;
  }
  table.print();
  const double mean = sum / samples.size();
  std::printf("\nconfigurations: %zu, SYRK faster in %d, mean speedup %.2f "
              "(paper: 1.58, TRSM better only for very small subdomains)\n",
              samples.size(), wins, mean);
  shape_check("SYRK is faster than TRSM for the majority of configurations",
              wins * 2 > static_cast<int>(samples.size()));
  shape_check("mean SYRK speedup exceeds 1.2",
              mean > 1.2);
  return 0;
}
