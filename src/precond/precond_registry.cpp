#include "precond/precond_registry.hpp"

#include <algorithm>
#include <mutex>

namespace feti::precond {

std::string normalize_key(std::string_view key) {
  // Canonical spelling: tokens separated by single spaces, no leading or
  // trailing whitespace; the empty selection means "none".
  std::string out;
  for (std::size_t i = 0; i < key.size();) {
    while (i < key.size() && (key[i] == ' ' || key[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < key.size() && key[i] != ' ' && key[i] != '\t') ++i;
    if (i == start) continue;
    if (!out.empty()) out += ' ';
    out.append(key.substr(start, i - start));
  }
  return out.empty() ? std::string("none") : out;
}

PreconditionerRegistry& PreconditionerRegistry::instance() {
  static PreconditionerRegistry registry;
  static std::once_flag builtin_once;
  std::call_once(builtin_once,
                 [] { register_block_preconditioners(registry); });
  return registry;
}

void PreconditionerRegistry::add(PreconditionerInfo info,
                                 PreconditionerFactory factory) {
  check(!info.key.empty(), "PreconditionerRegistry::add: empty key");
  check(static_cast<bool>(factory),
        "PreconditionerRegistry::add: null factory for key '" + info.key +
            "'");
  std::lock_guard<std::mutex> lock(mutex_);
  check(find_locked(info.key) == nullptr,
        "PreconditionerRegistry::add: duplicate key '" + info.key + "'");
  entries_.push_back({std::move(info), std::move(factory)});
}

const PreconditionerRegistry::Entry* PreconditionerRegistry::find_locked(
    std::string_view key) const {
  for (const Entry& e : entries_)
    if (e.info.key == key) return &e;
  return nullptr;
}

PreconditionerRegistry::Entry PreconditionerRegistry::at(
    std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(key);
  check(e != nullptr, "PreconditionerRegistry: unknown preconditioner key '" +
                          std::string(key) + "'");
  return *e;
}

bool PreconditionerRegistry::contains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_locked(key) != nullptr;
}

PreconditionerInfo PreconditionerRegistry::info(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(key);
  check(e != nullptr, "PreconditionerRegistry: unknown preconditioner key '" +
                          std::string(key) + "'");
  return e->info;
}

std::vector<std::string> PreconditionerRegistry::keys() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.info.key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t PreconditionerRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool PreconditionerRegistry::uses_gpu(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(key);
  check(e != nullptr, "PreconditionerRegistry: unknown preconditioner key '" +
                          std::string(key) + "'");
  return e->info.requires_device();
}

bool PreconditionerRegistry::available(
    std::string_view key, const gpu::ExecutionContext* context) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(key);
  return e != nullptr && (!e->info.requires_device() || context != nullptr);
}

std::unique_ptr<Preconditioner> PreconditionerRegistry::create(
    std::string_view key, const decomp::FetiProblem& problem,
    gpu::ExecutionContext* context) const {
  // Copy the entry out so the factory runs without holding the lock.
  const Entry e = at(key);
  check(!e.info.requires_device() || context != nullptr,
        "PreconditionerRegistry::create: '" + std::string(key) +
            "' requires a GPU execution context");
  return e.factory(problem, context);
}

}  // namespace feti::precond
