#include "decomp/lagrange.hpp"

#include <algorithm>
#include <tuple>

namespace feti::decomp {

const char* to_string(Redundancy r) {
  return r == Redundancy::Full ? "full-redundant" : "non-redundant";
}

Gluing build_gluing(const mesh::Decomposition& dec, int dofs_per_node,
                    Redundancy redundancy) {
  const idx nsub = static_cast<idx>(dec.subdomains.size());
  check(nsub > 0, "build_gluing: empty decomposition");

  // Owner lists per shared global node: (global node, subdomain, local node).
  std::vector<std::tuple<idx, idx, idx>> owners;
  for (idx s = 0; s < nsub; ++s) {
    const auto& l2g = dec.subdomains[s].node_l2g;
    for (idx l = 0; l < static_cast<idx>(l2g.size()); ++l)
      if (dec.node_multiplicity[l2g[l]] > 1)
        owners.emplace_back(l2g[l], s, l);
  }
  std::sort(owners.begin(), owners.end());

  Gluing g;
  g.b.resize(nsub);
  g.lm_l2c.resize(nsub);
  std::vector<std::vector<la::Triplet>> triplets(nsub);

  auto add_entry = [&](idx sub, idx local_dof, double value) {
    // Rows are appended in ascending cluster-λ order, so the local row index
    // is simply the current size of the map.
    auto& map = g.lm_l2c[sub];
    if (map.empty() || map.back() != g.num_lambdas)
      map.push_back(g.num_lambdas);
    triplets[sub].push_back(
        {static_cast<idx>(map.size()) - 1, local_dof, value});
  };

  // Interface constraints: iterate shared nodes grouped by global id.
  for (std::size_t i = 0; i < owners.size();) {
    std::size_t j = i;
    while (j < owners.size() &&
           std::get<0>(owners[j]) == std::get<0>(owners[i]))
      ++j;
    const idx count = static_cast<idx>(j - i);
    for (int comp = 0; comp < dofs_per_node; ++comp) {
      auto dof = [&](std::size_t k) {
        return std::get<2>(owners[k]) * dofs_per_node + comp;
      };
      if (redundancy == Redundancy::Full) {
        for (idx a = 0; a < count; ++a)
          for (idx b = a + 1; b < count; ++b) {
            add_entry(std::get<1>(owners[i + a]), dof(i + a), 1.0);
            add_entry(std::get<1>(owners[i + b]), dof(i + b), -1.0);
            g.c.push_back(0.0);
            g.num_lambdas += 1;
          }
      } else {
        for (idx a = 0; a + 1 < count; ++a) {
          add_entry(std::get<1>(owners[i + a]), dof(i + a), 1.0);
          add_entry(std::get<1>(owners[i + a + 1]), dof(i + a + 1), -1.0);
          g.c.push_back(0.0);
          g.num_lambdas += 1;
        }
      }
    }
    i = j;
  }

  // Dirichlet rows appended after all interface rows (Total FETI).
  for (idx s = 0; s < nsub; ++s) {
    const auto& mesh = dec.subdomains[s].local;
    for (idx node : mesh.dirichlet_nodes)
      for (int comp = 0; comp < dofs_per_node; ++comp) {
        add_entry(s, node * dofs_per_node + comp, 1.0);
        g.c.push_back(0.0);  // homogeneous boundary condition
        g.num_lambdas += 1;
        g.num_dirichlet_rows += 1;
      }
  }

  // Materialize the per-subdomain CSR matrices.
  for (idx s = 0; s < nsub; ++s) {
    const idx local_rows = static_cast<idx>(g.lm_l2c[s].size());
    const idx ndof =
        dec.subdomains[s].local.num_nodes * dofs_per_node;
    g.b[s] = la::Csr::from_triplets(local_rows, ndof, std::move(triplets[s]));
  }
  return g;
}

}  // namespace feti::decomp
