#pragma once

// vcuBLAS: dense BLAS kernels with stream semantics (the cuBLAS substitute).
// Every call submits one stream-ordered operation and returns immediately.

#include "gpu/data.hpp"
#include "gpu/runtime.hpp"

namespace feti::gpu::blas {

/// y = alpha * op(A) * x + beta * y (x, y device pointers).
void gemv(Stream& s, double alpha, DeviceDense a, la::Trans trans,
          const double* x, double beta, double* y);

/// Symmetric y = alpha * A * x + beta * y, one stored triangle.
void symv(Stream& s, la::Uplo uplo, double alpha, DeviceDense a,
          const double* x, double beta, double* y);

/// Symmetric C = alpha * A * B + beta * C, one stored triangle of A — the
/// multi-RHS companion of symv (cublasDsymm analogue, left side).
void symm(Stream& s, la::Uplo uplo, double alpha, DeviceDense a,
          DeviceDense b, double beta, DeviceDense c);

/// In-place triangular solve op(A) X = B with dense factor.
void trsm(Stream& s, la::Uplo uplo, la::Trans trans, DeviceDense a,
          DeviceDense b);

/// C = alpha * op(A) op(A)^T + beta * C (one triangle written).
void syrk(Stream& s, la::Uplo uplo, la::Trans trans, double alpha,
          DeviceDense a, double beta, DeviceDense c);

/// C = alpha * op(A) op(B) + beta * C.
void gemm(Stream& s, double alpha, DeviceDense a, la::Trans ta, DeviceDense b,
          la::Trans tb, double beta, DeviceDense c);

// ---- mixed precision (fp32 storage, fp64 accumulation) ----
// The cublasGemmEx/cublasSsymm analogues used by the mixed-precision
// explicit operators: operands live in fp32 device storage, inner products
// accumulate in fp64 (see la/blas_dense.hpp).

/// Symmetric y = alpha * A * x + beta * y on fp32 storage.
void symv(Stream& s, la::Uplo uplo, double alpha, DeviceDenseF32 a,
          const float* x, double beta, float* y);

/// y = alpha * op(A) * x + beta * y on fp32 storage.
void gemv(Stream& s, double alpha, DeviceDenseF32 a, la::Trans trans,
          const float* x, double beta, float* y);

/// Symmetric C = alpha * A * B + beta * C on fp32 storage.
void symm(Stream& s, la::Uplo uplo, double alpha, DeviceDenseF32 a,
          DeviceDenseF32 b, double beta, DeviceDenseF32 c);

/// C = alpha * op(A) op(B) + beta * C on fp32 storage.
void gemm(Stream& s, double alpha, DeviceDenseF32 a, la::Trans ta,
          DeviceDenseF32 b, la::Trans tb, double beta, DeviceDenseF32 c);

}  // namespace feti::gpu::blas
