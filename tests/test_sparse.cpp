// Tests for the sparse direct solver substrate: orderings, elimination
// trees, symbolic analysis, both Cholesky backends, and the augmented
// Schur-complement path.

#include <gtest/gtest.h>

#include <numeric>

#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"
#include "sparse/etree.hpp"
#include "sparse/ordering.hpp"
#include "sparse/simplicial_cholesky.hpp"
#include "sparse/solver.hpp"
#include "sparse/supernodal_cholesky.hpp"
#include "test_helpers.hpp"

namespace feti::sparse {
namespace {

using feti::testing::dense_cholesky_lower;
using feti::testing::grid_laplacian;
using feti::testing::random_sparse;
using feti::testing::random_spd;
using feti::testing::random_vector;

void expect_valid_permutation(const std::vector<idx>& perm, idx n) {
  ASSERT_EQ(perm.size(), static_cast<std::size_t>(n));
  std::vector<char> seen(n, 0);
  for (idx p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, n);
    ASSERT_FALSE(seen[p]);
    seen[p] = 1;
  }
}

class OrderingParam : public ::testing::TestWithParam<OrderingKind> {};

TEST_P(OrderingParam, ProducesValidPermutationOnRandom) {
  la::Csr a = random_spd(60, 0.1, 40);
  auto perm = compute_ordering(a, GetParam());
  expect_valid_permutation(perm, 60);
}

TEST_P(OrderingParam, ProducesValidPermutationOnGrid) {
  la::Csr a = grid_laplacian(13, 11);
  auto perm = compute_ordering(a, GetParam());
  expect_valid_permutation(perm, 13 * 11);
}

TEST_P(OrderingParam, HandlesDiagonalOnlyMatrix) {
  std::vector<la::Triplet> t;
  for (idx i = 0; i < 10; ++i) t.push_back({i, i, 1.0});
  la::Csr a = la::Csr::from_triplets(10, 10, std::move(t));
  auto perm = compute_ordering(a, GetParam());
  expect_valid_permutation(perm, 10);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OrderingParam,
                         ::testing::Values(OrderingKind::MinimumDegree,
                                           OrderingKind::RCM,
                                           OrderingKind::Natural));

TEST(Ordering, MinimumDegreeReducesGridFill) {
  la::Csr a = grid_laplacian(24, 24);
  const auto natural =
      compute_ordering(a, OrderingKind::Natural);
  const auto md = compute_ordering(a, OrderingKind::MinimumDegree);
  const widx fill_nat = cholesky_fill(a, natural);
  const widx fill_md = cholesky_fill(a, md);
  // Banded natural ordering on a k x k grid gives ~k^3 fill; MD should cut
  // it substantially.
  EXPECT_LT(fill_md, fill_nat * 3 / 4);
}

TEST(Ordering, RcmReducesGridFillVsWorstCase) {
  la::Csr a = grid_laplacian(16, 16);
  const auto rcm = compute_ordering(a, OrderingKind::RCM);
  expect_valid_permutation(rcm, 16 * 16);
  EXPECT_GT(cholesky_fill(a, rcm), 0);
}

TEST(Etree, MatchesBruteForceOnSmallMatrices) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    la::Csr a = random_spd(25, 0.15, seed);
    const auto parent = elimination_tree(a);
    // Brute force: dense symbolic factorization, parent[j] = min row > j
    // with L(i, j) != 0.
    la::DenseMatrix d = a.to_dense();
    ASSERT_TRUE(dense_cholesky_lower(d));
    for (idx j = 0; j < 25; ++j) {
      idx expect = -1;
      for (idx i = j + 1; i < 25; ++i)
        if (d.at(i, j) != 0.0) {
          expect = i;
          break;
        }
      EXPECT_EQ(parent[j], expect) << "column " << j << " seed " << seed;
    }
  }
}

TEST(Etree, PostorderIsValid) {
  la::Csr a = random_spd(40, 0.1, 5);
  const auto parent = elimination_tree(a);
  const auto post = postorder_forest(parent);
  expect_valid_permutation(post, 40);
  // Every node must appear after all of its descendants.
  std::vector<idx> pos(40);
  for (idx i = 0; i < 40; ++i) pos[post[i]] = i;
  for (idx v = 0; v < 40; ++v)
    if (parent[v] != -1) {
      EXPECT_LT(pos[v], pos[parent[v]]);
    }
}

TEST(Symbolic, NnzMatchesDenseFactorization) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    la::Csr a = random_spd(30, 0.12, seed);
    const SymbolicFactor sym = symbolic_cholesky(a);
    la::DenseMatrix d = a.to_dense();
    ASSERT_TRUE(dense_cholesky_lower(d));
    widx nnz = 0;
    for (idx j = 0; j < 30; ++j)
      for (idx i = j; i < 30; ++i)
        if (d.at(i, j) != 0.0) ++nnz;
    EXPECT_EQ(sym.nnz, nnz) << "seed " << seed;
  }
}

TEST(Symbolic, ColumnCountsConsistent) {
  la::Csr a = grid_laplacian(9, 9);
  const SymbolicFactor sym = symbolic_cholesky(a);
  widx total = 0;
  for (idx c : sym.colcount) total += c;
  EXPECT_EQ(total, sym.nnz);
  EXPECT_EQ(sym.colptr.back(), sym.nnz);
  // Row patterns strictly below diagonal, ascending.
  for (idx k = 0; k < sym.n; ++k)
    for (idx p = sym.rowpat_ptr[k]; p < sym.rowpat_ptr[k + 1]; ++p) {
      EXPECT_LT(sym.rowpat[p], k);
      if (p > sym.rowpat_ptr[k]) {
        EXPECT_LT(sym.rowpat[p - 1], sym.rowpat[p]);
      }
    }
}

// ---------------------------------------------------------------------------
// Backend-parameterized solver tests.
// ---------------------------------------------------------------------------

class SolverParam
    : public ::testing::TestWithParam<std::tuple<Backend, OrderingKind>> {};

TEST_P(SolverParam, SolvesRandomSpdSystems) {
  const auto [backend, ordering] = GetParam();
  for (idx n : {1, 2, 17, 50}) {
    la::Csr a = random_spd(n, 0.15, 100 + static_cast<std::uint64_t>(n));
    auto solver = make_solver(backend);
    solver->analyze(a, ordering);
    solver->factorize(a);
    auto x_true = random_vector(n, 7);
    std::vector<double> b(static_cast<std::size_t>(n), 0.0);
    la::spmv(1.0, a, x_true.data(), 0.0, b.data());
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    solver->solve(b.data(), x.data());
    for (idx i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], x_true[i], 1e-9) << "n=" << n;
  }
}

TEST_P(SolverParam, SolvesGridLaplacian) {
  const auto [backend, ordering] = GetParam();
  la::Csr a = grid_laplacian(15, 12);
  const idx n = a.nrows();
  auto solver = make_solver(backend);
  solver->analyze(a, ordering);
  solver->factorize(a);
  auto x_true = random_vector(n, 8);
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  la::spmv(1.0, a, x_true.data(), 0.0, b.data());
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  solver->solve(b.data(), x.data());
  double err = 0.0;
  for (idx i = 0; i < n; ++i) err = std::max(err, std::fabs(x[i] - x_true[i]));
  EXPECT_LT(err, 1e-8);
}

TEST_P(SolverParam, RefactorizeWithNewValues) {
  const auto [backend, ordering] = GetParam();
  la::Csr a = random_spd(30, 0.15, 200);
  auto solver = make_solver(backend);
  solver->analyze(a, ordering);
  solver->factorize(a);
  // Scale values (same pattern) and refactorize — the multi-step flow.
  la::Csr a2 = a;
  for (auto& v : a2.vals()) v *= 3.0;
  solver->factorize(a2);
  auto x_true = random_vector(30, 9);
  std::vector<double> b(30, 0.0);
  la::spmv(1.0, a2, x_true.data(), 0.0, b.data());
  std::vector<double> x(30, 0.0);
  solver->solve(b.data(), x.data());
  for (idx i = 0; i < 30; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST_P(SolverParam, SolveManyMatchesRepeatedSolve) {
  const auto [backend, ordering] = GetParam();
  la::Csr a = random_spd(20, 0.2, 300);
  auto solver = make_solver(backend);
  solver->analyze(a, ordering);
  solver->factorize(a);
  la::DenseMatrix b(20, 3, la::Layout::ColMajor);
  Rng rng(301);
  for (idx r = 0; r < 20; ++r)
    for (idx c = 0; c < 3; ++c) b.at(r, c) = rng.uniform(-1.0, 1.0);
  la::DenseMatrix x(20, 3, la::Layout::RowMajor);
  solver->solve_many(b.cview(), x.view());
  for (idx c = 0; c < 3; ++c) {
    std::vector<double> bi(20), xi(20);
    for (idx r = 0; r < 20; ++r) bi[r] = b.at(r, c);
    solver->solve(bi.data(), xi.data());
    for (idx r = 0; r < 20; ++r) EXPECT_NEAR(x.at(r, c), xi[r], 1e-12);
  }
}

TEST_P(SolverParam, ThrowsOnIndefiniteMatrix) {
  const auto [backend, ordering] = GetParam();
  la::Csr a = random_spd(10, 0.3, 400);
  // Make it indefinite.
  la::Csr bad = a;
  for (idx k = bad.row_begin(5); k < bad.row_end(5); ++k)
    if (bad.colidx()[k] == 5) bad.vals()[k] = -100.0;
  auto solver = make_solver(backend);
  solver->analyze(bad, ordering);
  EXPECT_THROW(solver->factorize(bad), std::runtime_error);
}

TEST_P(SolverParam, FactorizeBeforeAnalyzeThrows) {
  const auto [backend, ordering] = GetParam();
  (void)ordering;
  la::Csr a = random_spd(5, 0.4, 500);
  auto solver = make_solver(backend);
  EXPECT_THROW(solver->factorize(a), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SolverParam,
    ::testing::Combine(::testing::Values(Backend::Simplicial,
                                         Backend::Supernodal),
                       ::testing::Values(OrderingKind::MinimumDegree,
                                         OrderingKind::RCM,
                                         OrderingKind::Natural)));

// ---------------------------------------------------------------------------
// Simplicial specifics: factor extraction.
// ---------------------------------------------------------------------------

TEST(Simplicial, FactorReproducesPermutedMatrix) {
  la::Csr a = random_spd(35, 0.12, 600);
  SimplicialCholesky chol;
  chol.analyze(a, OrderingKind::MinimumDegree);
  chol.factorize(a);
  ASSERT_TRUE(chol.supports_factor_extraction());
  const la::Csr& u = chol.factor_upper();
  const auto& perm = chol.permutation();
  // L L^T must equal P A P^T.
  la::DenseMatrix ud = u.to_dense();
  la::DenseMatrix prod(35, 35);
  la::gemm(1.0, ud.cview(), la::Trans::Yes, ud.cview(), la::Trans::No, 0.0,
           prod.view());
  for (idx r = 0; r < 35; ++r)
    for (idx c = 0; c < 35; ++c)
      EXPECT_NEAR(prod.at(r, c), a.at(perm[r], perm[c]), 1e-10);
}

TEST(Simplicial, LowerAndUpperAreTransposes) {
  la::Csr a = random_spd(25, 0.15, 700);
  SimplicialCholesky chol;
  chol.analyze(a, OrderingKind::MinimumDegree);
  chol.factorize(a);
  const la::Csr& l = chol.factor_lower();
  const la::Csr& u = chol.factor_upper();
  EXPECT_EQ(l.nnz(), u.nnz());
  for (idx r = 0; r < 25; ++r)
    for (idx k = l.row_begin(r); k < l.row_end(r); ++k)
      EXPECT_DOUBLE_EQ(u.at(l.col(k), r), l.val(k));
}

TEST(Simplicial, UpperHasDiagFirstLowerHasDiagLast) {
  la::Csr a = grid_laplacian(8, 8);
  SimplicialCholesky chol;
  chol.analyze(a, OrderingKind::MinimumDegree);
  chol.factorize(a);
  const la::Csr& u = chol.factor_upper();
  const la::Csr& l = chol.factor_lower();
  for (idx r = 0; r < u.nrows(); ++r) {
    ASSERT_LT(u.row_begin(r), u.row_end(r));
    EXPECT_EQ(u.col(u.row_begin(r)), r);
    EXPECT_EQ(l.col(l.row_end(r) - 1), r);
  }
}

TEST(Simplicial, SchurUnsupported) {
  la::Csr a = random_spd(10, 0.3, 800);
  la::Csr b = random_sparse(3, 10, 0.3, 801);
  SimplicialCholesky chol;
  chol.analyze(a, OrderingKind::MinimumDegree);
  la::DenseMatrix s(3, 3);
  EXPECT_FALSE(chol.supports_schur());
  EXPECT_THROW(chol.factorize_schur(a, b, s.view(), la::Uplo::Upper),
               std::logic_error);
}

TEST(Simplicial, FactorNnzMatchesSymbolic) {
  la::Csr a = grid_laplacian(10, 10);
  SimplicialCholesky chol;
  chol.analyze(a, OrderingKind::MinimumDegree);
  chol.factorize(a);
  EXPECT_EQ(chol.factor_nnz(), chol.factor_upper().nnz());
}

// ---------------------------------------------------------------------------
// Supernodal specifics: structure and the Schur path.
// ---------------------------------------------------------------------------

TEST(Supernodal, FormsSupernodesOnGrid) {
  la::Csr a = grid_laplacian(12, 12);
  SupernodalCholesky sn;
  sn.analyze(a, OrderingKind::MinimumDegree);
  // Mesh problems must form non-trivial supernodes (fewer than columns).
  EXPECT_LT(sn.num_supernodes(), a.nrows());
  EXPECT_GT(sn.num_supernodes(), 0);
  EXPECT_GT(sn.largest_front(), 1);
}

TEST(Supernodal, FactorExtractionUnsupported) {
  la::Csr a = random_spd(10, 0.3, 900);
  SupernodalCholesky sn;
  sn.analyze(a, OrderingKind::MinimumDegree);
  sn.factorize(a);
  EXPECT_FALSE(sn.supports_factor_extraction());
  EXPECT_THROW((void)sn.factor_lower(), std::logic_error);
  EXPECT_THROW((void)sn.factor_upper(), std::logic_error);
}

class SchurParam
    : public ::testing::TestWithParam<std::tuple<idx, idx, la::Uplo>> {};

TEST_P(SchurParam, MatchesDenseReference) {
  const auto [n, m, uplo] = GetParam();
  la::Csr a = random_spd(n, 0.15, 1000 + static_cast<std::uint64_t>(n));
  la::Csr b = random_sparse(m, n, 0.1, 2000 + static_cast<std::uint64_t>(m));
  SupernodalCholesky sn;
  sn.analyze_schur(a, b);
  la::DenseMatrix s(m, m);
  sn.factorize_schur(a, b, s.view(), uplo);
  // Dense reference: S = B A^{-1} B^T.
  la::DenseMatrix ad = a.to_dense();
  ASSERT_TRUE(dense_cholesky_lower(ad));
  la::DenseMatrix bt = b.transposed().to_dense();
  la::trsm(la::Uplo::Lower, la::Trans::No, ad.cview(), bt.view());
  la::DenseMatrix ref(m, m);
  la::syrk(uplo, la::Trans::Yes, 1.0, bt.cview(), 0.0, ref.view());
  for (idx r = 0; r < m; ++r)
    for (idx c = 0; c < m; ++c) {
      const bool stored = uplo == la::Uplo::Upper ? c >= r : c <= r;
      if (stored) {
        EXPECT_NEAR(s.at(r, c), ref.at(r, c), 1e-8)
            << "n=" << n << " m=" << m;
      }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SchurParam,
    ::testing::Combine(::testing::Values<idx>(10, 40, 80),
                       ::testing::Values<idx>(1, 5, 15),
                       ::testing::Values(la::Uplo::Upper, la::Uplo::Lower)));

TEST(Supernodal, SolveWorksAfterSchurFactorization) {
  la::Csr a = random_spd(40, 0.15, 3000);
  la::Csr b = random_sparse(8, 40, 0.1, 3001);
  SupernodalCholesky sn;
  sn.analyze_schur(a, b);
  la::DenseMatrix s(8, 8);
  sn.factorize_schur(a, b, s.view(), la::Uplo::Upper);
  auto x_true = random_vector(40, 10);
  std::vector<double> rhs(40, 0.0), x(40, 0.0);
  la::spmv(1.0, a, x_true.data(), 0.0, rhs.data());
  sn.solve(rhs.data(), x.data());
  for (idx i = 0; i < 40; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Supernodal, SchurOnGridLaplacianWithBoundaryB) {
  // B selects boundary nodes (structured sparsity, like gluing matrices).
  la::Csr a = grid_laplacian(10, 10, 1.0);
  std::vector<la::Triplet> bt;
  for (idx i = 0; i < 10; ++i) bt.push_back({i, i, 1.0});  // first grid row
  la::Csr b = la::Csr::from_triplets(10, 100, std::move(bt));
  SupernodalCholesky sn;
  sn.analyze_schur(a, b);
  la::DenseMatrix s(10, 10);
  sn.factorize_schur(a, b, s.view(), la::Uplo::Upper);
  // Reference via solves: S(i, j) = e_i^T A^{-1} e_j over selected columns.
  SimplicialCholesky chol;
  chol.analyze(a, OrderingKind::MinimumDegree);
  chol.factorize(a);
  for (idx i = 0; i < 10; ++i) {
    std::vector<double> e(100, 0.0), x(100, 0.0);
    e[i] = 1.0;
    chol.solve(e.data(), x.data());
    for (idx j = static_cast<idx>(i); j < 10; ++j)
      EXPECT_NEAR(s.at(i, j), x[j], 1e-9);
  }
}

TEST(Supernodal, SchurRequiresAnalyzeSchur) {
  la::Csr a = random_spd(10, 0.3, 4000);
  la::Csr b = random_sparse(2, 10, 0.4, 4001);
  SupernodalCholesky sn;
  sn.analyze(a, OrderingKind::MinimumDegree);
  la::DenseMatrix s(2, 2);
  EXPECT_THROW(sn.factorize_schur(a, b, s.view(), la::Uplo::Upper),
               std::invalid_argument);
  // And the reverse: plain factorize after analyze_schur is rejected.
  SupernodalCholesky sn2;
  sn2.analyze_schur(a, b);
  EXPECT_THROW(sn2.factorize(a), std::invalid_argument);
}

TEST(Supernodal, SchurRefactorizeWithNewValues) {
  la::Csr a = random_spd(30, 0.15, 5000);
  la::Csr b = random_sparse(5, 30, 0.15, 5001);
  SupernodalCholesky sn;
  sn.analyze_schur(a, b);
  la::DenseMatrix s1(5, 5), s2(5, 5);
  sn.factorize_schur(a, b, s1.view(), la::Uplo::Upper);
  la::Csr a2 = a;
  for (auto& v : a2.vals()) v *= 2.0;
  sn.factorize_schur(a2, b, s2.view(), la::Uplo::Upper);
  // S scales as B (2A)^{-1} B^T = S/2.
  for (idx r = 0; r < 5; ++r)
    for (idx c = r; c < 5; ++c)
      EXPECT_NEAR(s2.at(r, c), 0.5 * s1.at(r, c), 1e-9);
}

TEST(BackendToString, Distinct) {
  EXPECT_STRNE(to_string(Backend::Simplicial), to_string(Backend::Supernodal));
  EXPECT_STRNE(to_string(OrderingKind::MinimumDegree),
               to_string(OrderingKind::RCM));
}

}  // namespace
}  // namespace feti::sparse
