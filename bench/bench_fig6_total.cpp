// Reproduces Fig. 6 of the paper: for each subdomain size, the total
// dual-operator time (preprocessing + k * application) as a function of the
// iteration count k, reporting the *best* approach at each point — the
// plot used to pick an approach and read off amortization points.

#include <cmath>

#include "common.hpp"

using namespace feti;
using namespace feti::bench;

int main() {
  gpu::ExecutionContext& device = shared_context();
  const auto approaches = core::all_approaches();
  const std::vector<int> iteration_grid = {1,   3,    10,   30,  100,
                                           300, 1000, 3000, 10000};

  for (int dim : {2, 3}) {
    const std::vector<idx> cells = dim == 2 ? std::vector<idx>{4, 12, 32}
                                            : std::vector<idx>{3, 6, 10};
    std::printf("\n=== Fig. 6: heat transfer %dD — best approach and its "
                "total time per subdomain [ms] ===\n",
                dim);
    std::vector<std::string> header{"DOFs/subdomain"};
    for (int k : iteration_grid)
      header.push_back("k=" + std::to_string(k));
    Table table(header);
    Table which(header);

    bool best_switches_to_explicit = false;
    for (idx c : cells) {
      BuiltProblem bp = build_problem(dim, fem::Physics::HeatTransfer, c,
                                      mesh::ElementOrder::Linear);
      std::vector<DualOpTiming> t;
      for (core::Approach a : approaches)
        t.push_back(measure_dualop(
            bp.problem, config_for(a, dim, bp.dofs_per_subdomain), device));

      std::vector<std::string> time_row{std::to_string(bp.dofs_per_subdomain)};
      std::vector<std::string> which_row{
          std::to_string(bp.dofs_per_subdomain)};
      for (int k : iteration_grid) {
        double best = 1e300;
        std::size_t best_i = 0;
        for (std::size_t i = 0; i < approaches.size(); ++i) {
          const double total = t[i].preprocess_ms + k * t[i].apply_ms;
          if (total < best) {
            best = total;
            best_i = i;
          }
        }
        time_row.push_back(Table::num(best, 3));
        which_row.push_back(core::to_string(approaches[best_i]));
        if (k >= 100 && core::is_explicit(approaches[best_i]))
          best_switches_to_explicit = true;
      }
      table.add_row(time_row);
      which.add_row(which_row);
    }
    table.print();
    std::printf("\nbest approach per point:\n");
    which.print();
    shape_check(
        "the best approach switches from implicit to explicit as the "
        "iteration count grows",
        best_switches_to_explicit);
  }
  return 0;
}
