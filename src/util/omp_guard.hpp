#pragma once

// Exception transport across OpenMP parallel regions. Exceptions must not
// propagate out of a parallel loop (the runtime calls std::terminate), so
// loop bodies run through this guard and the first captured exception is
// rethrown on the calling thread after the join. Device-memory exhaustion
// inside the preparation loops is the practical case.

#include <exception>
#include <mutex>

namespace feti {

class OmpExceptionGuard {
 public:
  /// Runs `f()`, capturing the first exception thrown by any thread.
  template <typename F>
  void run(F&& f) noexcept {
    try {
      f();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }

  /// Rethrows the captured exception, if any. Call after the parallel region.
  void rethrow() const {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mutex_;
  std::exception_ptr error_;
};

}  // namespace feti
