#pragma once

// Cross-step Krylov recycling for PCPG — the iteration-count twin of the
// time-step operator cache.
//
// A transient run with an unchanged stiffness already skips the numeric
// refresh (PR-4 dirty tracking) but still re-pays the full PCPG iteration
// count every step. The recycler closes that gap: it retains a budgeted
// panel U of F-orthonormalized *converged solution increments* λ − λ₀
// (one column per converged solve) and replays it as a deflation space on
// the next step — the initial multiplier starts from the Galerkin
// solution in span(U), and every new search direction is kept
// F-orthogonal to U, so a warm step iterates only over the part of the
// solution the recycled space misses.
//
// Two numerical lessons are baked into this design. First, the harvested
// columns must be step increments, not the raw per-iteration search
// directions: the increment reconstructed direction-by-direction from
// Uᵀr₀ bottoms out at the cold solve's residual-orthogonality loss
// (observed ~1e-5·‖r₀‖ on a well-conditioned panel), stranding warm
// steps far above tolerance, while the increment is a single well-scaled
// column with an O(1) Galerkin coefficient that reproduces the previous
// solution to rounding. Second, UᵀFU = I is NOT assumed downstream even
// though absorb() F-orthonormalizes: both the warm start and the
// per-iteration projection solve the small panel Gram system explicitly
// (rank-revealing pivoted Cholesky, factored once per panel change), so
// a mildly degraded panel degrades gracefully instead of silently
// projecting with the wrong metric.
//
// Owned per FetiSolver (one recycled space per operator instance) and
// scoped per tenant under the service layer (set_recycle_scope), the panel
// is only valid for the F it was harvested from: FetiSolver clears it
// whenever update_values() actually refreshes a subdomain.

#include <vector>

#include "la/dense.hpp"

namespace feti::gpu {
class Device;
class Stream;
}  // namespace feti::gpu

namespace feti::core {

class KrylovRecycler {
 public:
  /// `n` is the dual dimension (num_lambdas); `budget` caps the retained
  /// panel width (clamped to >= 1).
  KrylovRecycler(idx n, int budget);

  ~KrylovRecycler();

  /// Current panel width (0 = empty, deflation is a no-op).
  [[nodiscard]] idx dim() const { return k_; }
  [[nodiscard]] int budget() const { return budget_; }
  [[nodiscard]] idx n() const { return n_; }

  /// Drops the retained panel — called whenever F changes (a subdomain was
  /// refreshed) or the recycle scope (tenant) switches.
  void clear() {
    k_ = 0;
    gram_dirty_ = true;
    ++version_;
  }

  /// Galerkin start from the recycled space: solve (UᵀFU) μ = Uᵀr, then
  /// λ += U μ and r −= (FU) μ (applied twice — one refinement pass drives
  /// the span(U) residual component to rounding level). Returns the
  /// deflation dimension applied.
  idx deflate_initial(double* lambda, double* r) const;

  /// Y ← Y − U (UᵀFU)⁻¹ (FU)ᵀ Y over `cols` contiguous columns (leading
  /// dimension n): the F-orthogonal projection keeping new search
  /// directions out of the recycled space.
  void project_out(double* y, idx cols) const;

  /// Device-resident counterpart of project_out for the device-state PCPG
  /// mode: every ys[b] is a device column of length n on `dev`. The panel
  /// U / FU is mirrored lazily on the device and re-uploaded only when the
  /// panel version changed (clear()/absorb()); per call only the k × cols
  /// Galerkin coefficient block crosses PCIe (the small Gram solve stays
  /// host-side). Bit-identical to project_out over the same columns (same
  /// la:: calls in the same per-column order). No-op on an empty panel.
  void project_out_device(gpu::Device& dev, gpu::Stream& s,
                          const std::vector<double*>& ys) const;

  /// Offers one vector p (a converged solve's increment λ − λ₀) with its
  /// operator product q = F p for retention. The vector is
  /// F-orthogonalized against the stored panel (two passes); if the
  /// remainder keeps a healthy F-norm (relative to the original) and the
  /// budget has room, it is normalized and appended — otherwise it is
  /// discarded (a repeat of a recycled step contributes nothing new).
  /// No-op once the budget is full.
  void absorb(const double* p, const double* q);

  /// Read-only panel views (e.g. for the deflation-augmented projector
  /// apply and diagnostics).
  [[nodiscard]] la::ConstDenseView u() const;
  [[nodiscard]] la::ConstDenseView fu() const;

 private:
  /// (Re)factors the panel Gram matrix UᵀFU when the panel changed.
  void ensure_gram() const;
  /// b (length k) → (UᵀFU)⁻¹ b on the revealed-rank subspace, in place.
  void solve_gram(double* b) const;
  /// Uploads (or refreshes) the device panel mirror and sizes the
  /// coefficient staging block for `cols` columns. One device per recycler.
  void ensure_device(gpu::Device& dev, gpu::Stream& s,
                     std::size_t cols) const;

  idx n_ = 0;
  int budget_ = 0;
  idx k_ = 0;             ///< panel width in use
  la::DenseMatrix u_;     ///< n x budget, F-normalized columns [0, k)
  la::DenseMatrix fu_;    ///< F U, same shape
  // Pivoted-Cholesky factor of the k x k panel Gram matrix, rebuilt lazily
  // after absorb()/clear(). Mutable: factoring is a cache refresh, the
  // logical panel state is unchanged.
  mutable la::DenseMatrix gram_l_;
  mutable std::vector<idx> gram_perm_;
  mutable idx gram_rank_ = 0;
  mutable bool gram_dirty_ = true;

  /// Bumped on every panel mutation (clear/absorb); the device mirror
  /// compares against it to re-upload only after real changes.
  long version_ = 0;
  // Lazy device mirror of the in-use panel columns (a cache of logically
  // const state, like the Gram factor above).
  mutable gpu::Device* dev_ = nullptr;
  mutable double* u_dev_ = nullptr;       ///< n x budget device panel
  mutable double* fu_dev_ = nullptr;      ///< F U device panel
  mutable double* c_dev_ = nullptr;       ///< k x cols coefficient block
  mutable std::size_t c_cap_ = 0;         ///< columns c_dev_ can hold
  mutable std::vector<double> c_host_;    ///< host staging for Gram solves
  mutable long uploaded_version_ = -1;
};

}  // namespace feti::core
