#include "core/pcpg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/krylov_recycler.hpp"
#include "la/blas_dense.hpp"
#include "precond/precond_registry.hpp"

namespace feti::core {

namespace {

/// Finalization floor for the initial projected-residual norm: below it the
/// right-hand side is numerically zero for this system and λ₀ already
/// solves it. Scaled to the problem (n·ε·‖d‖) with an absolute denormal
/// guard — a bit-exact-zero test alone lets a 1e-300-scaled RHS divide by
/// a denormal w₀ and spin to max_iterations on NaN step lengths.
double w0_floor(idx n, double d_norm) {
  constexpr double eps = std::numeric_limits<double>::epsilon();
  constexpr double denormal_guard = std::numeric_limits<double>::min() / eps;
  return static_cast<double>(n) * eps * d_norm + denormal_guard;
}

/// Rank-revealing Gram-system solver of the block step: factors the small
/// PᵀFP matrix once per iteration with pivoted Cholesky and solves for the
/// per-system step/conjugation coefficients. Panel columns beyond the
/// revealed rank are numerically dependent on the kept ones and get zero
/// coefficients — column deflation instead of the per-system `pq <= 0`
/// breakdown of the lockstep path.
class GramSolver {
 public:
  void factor(const la::DenseMatrix& gram, double rel_tolerance) {
    l_ = gram;  // factored in place on the copy
    perm_.resize(static_cast<std::size_t>(gram.rows()));
    rank_ = la::potrf_pivoted_lower(l_.view(), perm_.data(), rel_tolerance);
  }
  [[nodiscard]] idx rank() const { return rank_; }

  /// b (length = panel width) → x with Gram x = b on the kept columns and
  /// x = 0 on the deflated ones, in place.
  void solve(double* b) const {
    std::vector<double> t(static_cast<std::size_t>(rank_));
    for (idx k = 0; k < rank_; ++k) t[static_cast<std::size_t>(k)] = b[perm_[k]];
    const la::ConstDenseView lead(l_.data(), rank_, rank_, l_.ld(),
                                  la::Layout::ColMajor);
    la::trsv(la::Uplo::Lower, la::Trans::No, lead, t.data());
    la::trsv(la::Uplo::Lower, la::Trans::Yes, lead, t.data());
    std::fill_n(b, l_.rows(), 0.0);
    for (idx k = 0; k < rank_; ++k) b[perm_[k]] = t[static_cast<std::size_t>(k)];
  }

  [[nodiscard]] const std::vector<idx>& perm() const { return perm_; }

 private:
  la::DenseMatrix l_;
  std::vector<idx> perm_;
  idx rank_ = 0;
};

}  // namespace

const char* to_string(PreconditionerKind p) {
  // Exhaustive by construction: a future enumerator fails to compile here
  // instead of silently aliasing to "lumped" (the old ternary's behavior).
  switch (p) {
    case PreconditionerKind::None:
      return "none";
    case PreconditionerKind::Lumped:
      return "lumped";
  }
  FETI_ASSERT(false, "to_string: unknown PreconditionerKind");
  return "none";
}

Pcpg::Pcpg(DualOperator& f, const Projector& projector, PcpgOptions options,
           precond::Preconditioner* m)
    : f_(f), projector_(projector), options_(std::move(options)), m_(m) {
  const std::string key = precond::normalize_key(options_.preconditioner);
  if (m_ == nullptr && key != "none") {
    // Self-managed fallback for callers that only set the key: a CPU
    // instance, prepared and value-updated here. Lifecycle-aware callers
    // (FetiSolver, the service layer) pass their pooled instance instead —
    // the only route for GPU keys, since Pcpg holds no execution context.
    auto& registry = precond::PreconditionerRegistry::instance();
    check(!registry.uses_gpu(key),
          "Pcpg: GPU preconditioner '" + key +
              "' requires a caller-supplied prepared instance");
    owned_m_ = registry.create(key, f_.problem());
    owned_m_->prepare();
    owned_m_->update_values();
    m_ = owned_m_.get();
  }
}

Pcpg::~Pcpg() = default;

PcpgResult Pcpg::solve(const std::vector<double>& d) {
  const std::vector<double>* dp = &d;
  std::vector<PcpgResult> results =
      options_.block.enabled
          ? solve_block_impl(&dp, 1, /*throw_on_breakdown=*/true)
          : solve_impl(&dp, 1, /*throw_on_breakdown=*/true);
  return std::move(results.front());
}

std::vector<PcpgResult> Pcpg::solve_many(
    const std::vector<std::vector<double>>& d) {
  std::vector<const std::vector<double>*> ptrs;
  ptrs.reserve(d.size());
  for (const auto& di : d) ptrs.push_back(&di);
  return solve_many_ptrs(ptrs);
}

std::vector<PcpgResult> Pcpg::solve_many_ptrs(
    const std::vector<const std::vector<double>*>& d) {
  return options_.block.enabled
             ? solve_block_impl(d.data(), d.size(),
                                /*throw_on_breakdown=*/false)
             : solve_impl(d.data(), d.size(), /*throw_on_breakdown=*/false);
}

std::vector<PcpgResult> Pcpg::solve_impl(const std::vector<double>* const* d,
                                         std::size_t nsys,
                                         bool throw_on_breakdown) {
  const idx n = f_.problem().num_lambdas;
  for (std::size_t j = 0; j < nsys; ++j)
    check(d[j]->size() == static_cast<std::size_t>(n),
          "Pcpg: rhs size mismatch");
  std::vector<PcpgResult> results(nsys);
  if (nsys == 0) return results;

  /// Per-system CG state (lines 1-5 of Algorithm 1 use per-system vectors;
  /// only the operator and preconditioner applications are shared).
  struct System {
    std::vector<double> lambda, r, w, y, p, q;
    double w0_norm = 0.0;
    double wy = 0.0;
    double rel = 1.0;
    int iterations = 0;
    bool active = true;
  };
  std::vector<System> sys(nsys);
  std::vector<double> t(static_cast<std::size_t>(n));
  std::vector<double> tin, tout;  ///< preconditioner batch blocks

  // λ₀ and F λ₀ depend on the problem only — computed once, shared.
  std::vector<double> lambda0(static_cast<std::size_t>(n));
  projector_.initial_lambda(lambda0.data());
  std::vector<double> q0(static_cast<std::size_t>(n));
  f_.apply(lambda0.data(), q0.data());

  const auto finalize = [&](std::size_t j, bool converged) {
    System& s = sys[j];
    results[j].iterations = s.iterations;
    results[j].rel_residual = s.rel;
    results[j].converged = converged;
    results[j].alpha = projector_.alpha(s.r.data());
    results[j].lambda = std::move(s.lambda);
    s.active = false;
  };

  // Line 12 (y = P M⁻¹ w) for a set of systems at once: a single batched
  // M⁻¹ application (the size-1 tail skips the pack/unpack copies). The
  // unpreconditioned path stays the plain y = w of projected CG.
  const auto precondition = [&](const std::vector<std::size_t>& js) {
    if (js.empty()) return;
    if (m_ == nullptr) {
      for (std::size_t j : js) sys[j].y = sys[j].w;
      return;
    }
    if (js.size() == 1) {
      System& s = sys[js.front()];
      m_->apply(s.w.data(), t.data());
      projector_.apply(t.data(), s.y.data());
      return;
    }
    tin.resize(static_cast<std::size_t>(n) * js.size());
    tout.resize(tin.size());
    for (std::size_t b = 0; b < js.size(); ++b)
      std::copy_n(sys[js[b]].w.data(), n,
                  tin.data() + b * static_cast<std::size_t>(n));
    m_->apply(tin.data(), tout.data(), static_cast<idx>(js.size()));
    for (std::size_t b = 0; b < js.size(); ++b)
      projector_.apply(tout.data() + b * static_cast<std::size_t>(n),
                       sys[js[b]].y.data());
  };

  std::vector<std::size_t> pending;
  for (std::size_t j = 0; j < nsys; ++j) {
    System& s = sys[j];
    s.lambda = lambda0;
    s.r.resize(static_cast<std::size_t>(n));
    const std::vector<double>& dj = *d[j];
    for (idx i = 0; i < n; ++i) s.r[i] = dj[i] - q0[i];
    s.w.resize(static_cast<std::size_t>(n));
    s.y.resize(static_cast<std::size_t>(n));
    s.q.resize(static_cast<std::size_t>(n));
    projector_.apply(s.r.data(), s.w.data());
    s.w0_norm = la::nrm2(n, s.w.data());
    if (s.w0_norm <= w0_floor(n, la::nrm2(n, dj.data()))) {
      s.rel = 0.0;
      finalize(j, /*converged=*/true);
      continue;
    }
    pending.push_back(j);
  }
  precondition(pending);
  for (std::size_t j : pending) {
    System& s = sys[j];
    s.p = s.y;
    s.wy = la::dot(n, s.w.data(), s.y.data());
  }

  std::vector<double> xblock, yblock;
  std::vector<std::size_t> batch;
  for (;;) {
    batch.clear();
    for (std::size_t j = 0; j < nsys; ++j) {
      System& s = sys[j];
      if (!s.active) continue;
      s.rel = la::nrm2(n, s.w.data()) / s.w0_norm;
      if (s.rel <= options_.rel_tolerance) {
        finalize(j, /*converged=*/true);
      } else if (s.iterations >= options_.max_iterations) {
        finalize(j, /*converged=*/false);
      } else {
        batch.push_back(j);
      }
    }
    if (batch.empty()) break;

    // Line 7 for all still-active systems at once: Q(:,b) = F P(:,b).
    if (batch.size() == 1) {
      // Single-system fast path (also the tail of a draining batch): apply
      // straight into the system's own buffers, no pack/unpack copies.
      System& s = sys[batch.front()];
      f_.apply(s.p.data(), s.q.data());
    } else {
      const idx nrhs = static_cast<idx>(batch.size());
      xblock.resize(static_cast<std::size_t>(n) * batch.size());
      yblock.resize(xblock.size());
      for (std::size_t b = 0; b < batch.size(); ++b)
        std::copy_n(sys[batch[b]].p.data(), n,
                    xblock.data() + b * static_cast<std::size_t>(n));
      f_.apply(xblock.data(), yblock.data(), nrhs);
      for (std::size_t b = 0; b < batch.size(); ++b)
        std::copy_n(yblock.data() + b * static_cast<std::size_t>(n), n,
                    sys[batch[b]].q.data());
    }

    // Per-system scalar updates up to the residual projection (lines
    // 8-11)...
    pending.clear();
    for (std::size_t j : batch) {
      System& s = sys[j];
      const double pq = la::dot(n, s.p.data(), s.q.data());
      if (pq <= 0.0) {
        // solve() keeps the historical contract (throw); in a batch, one
        // ill-conditioned system must not discard the others' results. The
        // reported state must be consistent: λ/r/w are untouched by the
        // failed step, so rel is recomputed for exactly that state (and
        // alpha in finalize() derives from the same r), and the F apply
        // this iteration spent is counted even though it was discarded.
        check(!throw_on_breakdown,
              "Pcpg: operator lost positive definiteness");
        ++s.iterations;
        s.rel = la::nrm2(n, s.w.data()) / s.w0_norm;
        finalize(j, /*converged=*/false);
        continue;
      }
      const double delta = s.wy / pq;                       // line 8
      la::axpy(n, delta, s.p.data(), s.lambda.data());      // line 9
      la::axpy(n, -delta, s.q.data(), s.r.data());          // line 10
      projector_.apply(s.r.data(), s.w.data());             // line 11
      pending.push_back(j);
    }
    // ... one batched preconditioner application for the survivors (line
    // 12) ...
    precondition(pending);
    // ... and the per-system search-direction recurrence (lines 13-14).
    for (std::size_t j : pending) {
      System& s = sys[j];
      const double wy_next = la::dot(n, s.w.data(), s.y.data());
      const double beta = wy_next / s.wy;                   // line 13
      s.wy = wy_next;
      for (idx i = 0; i < n; ++i)
        s.p[i] = s.y[i] + beta * s.p[i];                    // line 14
      ++s.iterations;
    }
  }
  return results;
}

std::vector<PcpgResult> Pcpg::solve_block_impl(
    const std::vector<double>* const* d, std::size_t nsys,
    bool throw_on_breakdown) {
  const idx n = f_.problem().num_lambdas;
  for (std::size_t j = 0; j < nsys; ++j)
    check(d[j]->size() == static_cast<std::size_t>(n),
          "Pcpg: rhs size mismatch");
  std::vector<PcpgResult> results(nsys);
  if (nsys == 0) return results;

  KrylovRecycler* recycler = options_.block.recycle ? recycler_ : nullptr;

  /// Per-system state. Unlike the lockstep path there are no per-system
  /// step scalars: the search panel is shared, and each system's step and
  /// conjugation coefficients come from the panel's Gram system.
  struct System {
    std::vector<double> lambda, r, w, y, p;
    double w0_norm = 0.0;
    double rel = 1.0;
    int iterations = 0;
    int deflation_dim = 0;
    bool active = true;
  };
  std::vector<System> sys(nsys);
  std::vector<double> t(static_cast<std::size_t>(n));
  std::vector<double> tin, tout;  ///< preconditioner batch blocks

  // λ₀ and F λ₀ depend on the problem only — computed once, shared.
  std::vector<double> lambda0(static_cast<std::size_t>(n));
  projector_.initial_lambda(lambda0.data());
  std::vector<double> q0(static_cast<std::size_t>(n));
  f_.apply(lambda0.data(), q0.data());

  const auto finalize = [&](std::size_t j, bool converged) {
    System& s = sys[j];
    if (converged && recycler != nullptr && s.iterations > 0) {
      // Harvest the converged step increment λ − λ₀ for the next step's
      // deflation space; its operator product F(λ − λ₀) = (d − r) − Fλ₀
      // falls out of the maintained residual — no extra apply. Recycling
      // the increment (rather than the raw search directions) matters
      // numerically: reconstructing it direction-by-direction from Uᵀr₀
      // bottoms out at the cold solve's residual-orthogonality loss
      // (~1e-5·‖r₀‖ here), while the increment is a single well-scaled
      // column whose Galerkin coefficient is O(1).
      std::vector<double> inc(static_cast<std::size_t>(n));
      std::vector<double> finc(static_cast<std::size_t>(n));
      const std::vector<double>& dj = *d[j];
      for (idx i = 0; i < n; ++i) {
        inc[i] = s.lambda[i] - lambda0[i];
        finc[i] = dj[i] - s.r[i] - q0[i];
      }
      recycler->absorb(inc.data(), finc.data());
    }
    results[j].iterations = s.iterations;
    results[j].rel_residual = s.rel;
    results[j].converged = converged;
    results[j].deflation_dim = s.deflation_dim;
    results[j].alpha = projector_.alpha(s.r.data());
    results[j].lambda = std::move(s.lambda);
    s.active = false;
  };

  // y = (I − U(FU)ᵀ) P M⁻¹ w for a set of systems at once: one batched
  // M⁻¹ application like the lockstep path, with the deflation-augmented
  // projector keeping every new direction F-orthogonal to the recycled
  // space (plain P when no recycled panel is attached).
  const auto precondition = [&](const std::vector<std::size_t>& js) {
    if (js.empty()) return;
    const bool deflate = recycler != nullptr && recycler->dim() > 0;
    if (m_ == nullptr) {
      for (std::size_t j : js) {
        sys[j].y = sys[j].w;  // w is already projected
        if (deflate) recycler->project_out(sys[j].y.data(), 1);
      }
      return;
    }
    const auto project_y = [&](const double* src, double* dst) {
      if (deflate)
        projector_.apply_deflated(src, dst, *recycler);
      else
        projector_.apply(src, dst);
    };
    if (js.size() == 1) {
      System& s = sys[js.front()];
      m_->apply(s.w.data(), t.data());
      project_y(t.data(), s.y.data());
      return;
    }
    tin.resize(static_cast<std::size_t>(n) * js.size());
    tout.resize(tin.size());
    for (std::size_t b = 0; b < js.size(); ++b)
      std::copy_n(sys[js[b]].w.data(), n,
                  tin.data() + b * static_cast<std::size_t>(n));
    m_->apply(tin.data(), tout.data(), static_cast<idx>(js.size()));
    for (std::size_t b = 0; b < js.size(); ++b)
      project_y(tout.data() + b * static_cast<std::size_t>(n),
                sys[js[b]].y.data());
  };

  std::vector<std::size_t> pending;
  for (std::size_t j = 0; j < nsys; ++j) {
    System& s = sys[j];
    s.lambda = lambda0;
    s.r.resize(static_cast<std::size_t>(n));
    const std::vector<double>& dj = *d[j];
    for (idx i = 0; i < n; ++i) s.r[i] = dj[i] - q0[i];
    s.w.resize(static_cast<std::size_t>(n));
    s.y.resize(static_cast<std::size_t>(n));
    projector_.apply(s.r.data(), s.w.data());
    // w₀ is measured before the deflation correction, so a warm start is
    // judged against the same baseline a cold solve would be — that is
    // what lets a recycled step finish in (near) zero iterations.
    s.w0_norm = la::nrm2(n, s.w.data());
    if (s.w0_norm <= w0_floor(n, la::nrm2(n, dj.data()))) {
      s.rel = 0.0;
      finalize(j, /*converged=*/true);
      continue;
    }
    if (recycler != nullptr && recycler->dim() > 0) {
      s.deflation_dim = recycler->deflate_initial(s.lambda.data(),
                                                  s.r.data());
      projector_.apply(s.r.data(), s.w.data());
    }
    pending.push_back(j);
  }
  precondition(pending);
  for (std::size_t j : pending) sys[j].p = sys[j].y;

  std::vector<double> xblock, yblock;  ///< P and Q = F·P panels, packed
  std::vector<double> coeff;           ///< Gram-system right-hand side
  std::vector<std::size_t> batch;
  GramSolver gram;
  for (;;) {
    batch.clear();
    for (std::size_t j = 0; j < nsys; ++j) {
      System& s = sys[j];
      if (!s.active) continue;
      s.rel = la::nrm2(n, s.w.data()) / s.w0_norm;
      if (s.rel <= options_.rel_tolerance) {
        finalize(j, /*converged=*/true);
      } else if (s.iterations >= options_.max_iterations) {
        finalize(j, /*converged=*/false);
      } else {
        batch.push_back(j);
      }
    }
    if (batch.empty()) break;

    // The still-active systems share one search panel: Q = F P through the
    // same batched apply the lockstep path uses (line 7 for the block).
    const idx width = static_cast<idx>(batch.size());
    xblock.resize(static_cast<std::size_t>(n) * batch.size());
    yblock.resize(xblock.size());
    for (std::size_t b = 0; b < batch.size(); ++b)
      std::copy_n(sys[batch[b]].p.data(), n,
                  xblock.data() + b * static_cast<std::size_t>(n));
    if (width == 1)
      f_.apply(xblock.data(), yblock.data());
    else
      f_.apply(xblock.data(), yblock.data(), width);
    const la::ConstDenseView pview(xblock.data(), n, width, n,
                                   la::Layout::ColMajor);
    const la::ConstDenseView qview(yblock.data(), n, width, n,
                                   la::Layout::ColMajor);

    // Gram system PᵀFP with rank-revealing pivoting: a nearly dependent
    // column is deflated (zero coefficient) instead of breaking the solve.
    la::DenseMatrix gram_mat(width, width, la::Layout::ColMajor);
    la::gemm(1.0, pview, la::Trans::Yes, qview, la::Trans::No, 0.0,
             gram_mat.view());
    gram.factor(gram_mat, options_.block.pivot_rel_tolerance);
    if (gram.rank() == 0) {
      // The whole panel lost positive definiteness — nothing can advance.
      // Same consistent-final-state contract as the lockstep breakdown:
      // count the spent panel apply, report rel for the untouched state.
      check(!throw_on_breakdown,
            "Pcpg: operator lost positive definiteness");
      for (std::size_t j : batch) {
        System& s = sys[j];
        ++s.iterations;
        s.rel = la::nrm2(n, s.w.data()) / s.w0_norm;
        finalize(j, /*converged=*/false);
      }
      continue;  // next top-of-loop sees no active systems and exits
    }

    // Per-system block step: α = Gram⁻¹ Pᵀw (pᵀr = pᵀw for projected
    // panels), λ += P α, r −= Q α — every system advances through the
    // union of the block's search directions.
    coeff.resize(batch.size());
    for (std::size_t j : batch) {
      System& s = sys[j];
      la::gemv(1.0, pview, la::Trans::Yes, s.w.data(), 0.0, coeff.data());
      gram.solve(coeff.data());
      la::gemv(1.0, pview, la::Trans::No, coeff.data(), 1.0,
               s.lambda.data());
      la::gemv(-1.0, qview, la::Trans::No, coeff.data(), 1.0, s.r.data());
      projector_.apply(s.r.data(), s.w.data());
      ++s.iterations;
    }


    // Next panel: Y = deflated-preconditioned residuals, conjugated
    // against the current panel via β = −Gram⁻¹ QᵀY.
    precondition(batch);
    for (std::size_t j : batch) {
      System& s = sys[j];
      la::gemv(1.0, qview, la::Trans::Yes, s.y.data(), 0.0, coeff.data());
      gram.solve(coeff.data());
      la::scal(width, -1.0, coeff.data());
      s.p = s.y;
      la::gemv(1.0, pview, la::Trans::No, coeff.data(), 1.0, s.p.data());
    }
  }
  return results;
}

}  // namespace feti::core
