#include "core/projector.hpp"

#include <cmath>

#include "core/krylov_recycler.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"

namespace feti::core {

Projector::Projector(const decomp::FetiProblem& p) : p_(p) {
  const idx nl = p.num_lambdas;
  const idx rt = p.total_kernel_dim();
  g_ = la::DenseMatrix(nl, rt, la::Layout::ColMajor);

  idx off = 0;
  for (const auto& fs : p.sub) {
    const idx r = fs.kernel_dim();
    std::vector<double> brj(static_cast<std::size_t>(fs.num_local_lambdas()));
    for (idx j = 0; j < r; ++j) {
      const double* rcol = fs.r.data() + static_cast<widx>(j) * fs.ndof();
      la::spmv(1.0, fs.b, rcol, 0.0, brj.data());
      double* gcol = g_.data() + static_cast<widx>(off + j) * nl;
      for (std::size_t i = 0; i < fs.lm_l2c.size(); ++i)
        gcol[fs.lm_l2c[i]] += brj[i];
    }
    off += r;
  }

  gtg_ = la::DenseMatrix(rt, rt, la::Layout::ColMajor);
  la::gemm(1.0, g_.cview(), la::Trans::Yes, g_.cview(), la::Trans::No, 0.0,
           gtg_.view());
  check(la::potrf_lower(gtg_.view()),
        "Projector: G^T G is singular — check subdomain kernels");
}

void Projector::coarse_solve(std::vector<double>& s) const {
  la::trsv(la::Uplo::Lower, la::Trans::No, gtg_.cview(), s.data());
  la::trsv(la::Uplo::Lower, la::Trans::Yes, gtg_.cview(), s.data());
}

void Projector::apply(const double* x, double* y) const {
  const idx nl = p_.num_lambdas;
  std::vector<double> s(static_cast<std::size_t>(g_.cols()));
  la::gemv(1.0, g_.cview(), la::Trans::Yes, x, 0.0, s.data());
  coarse_solve(s);
  std::copy_n(x, nl, y);
  la::gemv(-1.0, g_.cview(), la::Trans::No, s.data(), 1.0, y);
}

void Projector::apply_deflated(const double* x, double* y,
                               const KrylovRecycler& recycler) const {
  apply(x, y);
  if (recycler.dim() == 0) return;
  check(recycler.n() == p_.num_lambdas,
        "Projector: deflation panel dimension mismatch");
  recycler.project_out(y, 1);
}

std::vector<double> Projector::compute_e() const {
  std::vector<double> e(static_cast<std::size_t>(g_.cols()), 0.0);
  idx off = 0;
  for (const auto& fs : p_.sub) {
    for (idx j = 0; j < fs.kernel_dim(); ++j) {
      const double* rcol = fs.r.data() + static_cast<widx>(j) * fs.ndof();
      e[off + j] = la::dot(fs.ndof(), rcol, fs.sys.f.data());
    }
    off += fs.kernel_dim();
  }
  return e;
}

void Projector::initial_lambda(double* lambda0) const {
  std::vector<double> s = compute_e();
  coarse_solve(s);
  std::fill_n(lambda0, p_.num_lambdas, 0.0);
  la::gemv(1.0, g_.cview(), la::Trans::No, s.data(), 1.0, lambda0);
}

std::vector<double> Projector::alpha(const double* r) const {
  std::vector<double> s(static_cast<std::size_t>(g_.cols()));
  la::gemv(-1.0, g_.cview(), la::Trans::Yes, r, 0.0, s.data());
  coarse_solve(s);
  return s;
}

double Projector::gt_norm(const double* x) const {
  std::vector<double> s(static_cast<std::size_t>(g_.cols()));
  la::gemv(1.0, g_.cview(), la::Trans::Yes, x, 0.0, s.data());
  double m = 0.0;
  for (double v : s) m = std::max(m, std::fabs(v));
  return m;
}

void LumpedPreconditioner::apply(const double* x, double* y) const {
  std::fill_n(y, p_.num_lambdas, 0.0);
  for (const auto& fs : p_.sub) {
    std::vector<double> lam(static_cast<std::size_t>(fs.num_local_lambdas()));
    for (std::size_t i = 0; i < fs.lm_l2c.size(); ++i)
      lam[i] = x[fs.lm_l2c[i]];
    std::vector<double> t(static_cast<std::size_t>(fs.ndof()));
    std::vector<double> kt(static_cast<std::size_t>(fs.ndof()));
    la::spmv_trans(1.0, fs.b, lam.data(), 0.0, t.data());
    la::spmv(1.0, fs.sys.k, t.data(), 0.0, kt.data());
    la::spmv(1.0, fs.b, kt.data(), 0.0, lam.data());
    for (std::size_t i = 0; i < fs.lm_l2c.size(); ++i)
      y[fs.lm_l2c[i]] += lam[i];
  }
}

}  // namespace feti::core
