// Time-step operator caching: update_values() consults the problem's
// per-subdomain values versions (ValueTracking::Versioned) or K_reg
// content hashes (ValueTracking::Hashed, the default) and refreshes only
// dirty subdomains. These tests pin the cache semantics for every
// registered key: a clean step performs zero refactorizations and leaves
// the apply results bit-identical, a targeted dirty mark refreshes exactly
// the marked subdomains, the sharded wrapper aggregates per-shard skip
// decisions, and the hash fallback catches unmarked in-place mutation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/autotune.hpp"
#include "core/dualop_registry.hpp"
#include "core/feti_solver.hpp"
#include "decomp/boundary.hpp"
#include "test_helpers.hpp"

namespace feti::core {
namespace {

using decomp::FetiProblem;
using fem::Physics;
using mesh::ElementOrder;

gpu::ExecutionContext& test_context() {
  static gpu::ExecutionContext ctx([] {
    gpu::DeviceConfig cfg;
    cfg.worker_threads = 4;
    cfg.launch_latency_us = 0.0;
    cfg.memory_bytes = 512ull << 20;
    return cfg;
  }());
  return ctx;
}

FetiProblem heat2d_problem(idx cells = 6, idx splits = 2) {
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
  return decomp::build_feti_problem(dec, Physics::HeatTransfer);
}

std::vector<double> probe_vector(idx n, unsigned seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  return x;
}

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

// ---------------------------------------------------------------------------
// Registry-wide cache matrix
// ---------------------------------------------------------------------------

TEST(TimestepCache, UnchangedStepSkipsEveryRegisteredKey) {
  // For every registered key: step 2 with unchanged K performs zero
  // numeric refactorizations/reassemblies and matches a cold rebuild to
  // tight tolerance; a whole-problem change refreshes everything again;
  // a targeted per-subdomain mark refreshes exactly the marked subdomain.
  auto& registry = DualOperatorRegistry::instance();
  for (const std::string& key : registry.keys()) {
    FetiProblem p = heat2d_problem(6, 2);
    const idx n = p.num_lambdas;
    const long nsub = static_cast<long>(p.num_subdomains());
    DualOpConfig cfg = recommend_config(key, 2, p.max_subdomain_dofs());
    auto op = registry.create(key, p, cfg, &test_context());
    op->prepare();

    // Step 1: everything is dirty (the operator has never seen the values).
    op->update_values();
    CacheStats s1 = op->cache_stats();
    EXPECT_EQ(s1.steps, 1) << key;
    EXPECT_EQ(s1.skipped_steps, 0) << key;
    EXPECT_EQ(s1.refreshed_subdomains, nsub) << key;
    EXPECT_EQ(s1.skipped_subdomains, 0) << key;

    const std::vector<double> x = probe_vector(n, 41);
    std::vector<double> y1(x.size(), 0.0), y2(x.size(), 0.0);
    op->apply(x.data(), y1.data());

    // Step 2: unchanged values — zero refreshes, results unchanged.
    op->update_values();
    CacheStats s2 = op->cache_stats();
    EXPECT_EQ(s2.steps, 2) << key;
    EXPECT_GE(s2.skipped_steps, 1) << key;
    EXPECT_EQ(s2.refreshed_subdomains, nsub) << key;
    EXPECT_EQ(s2.skipped_subdomains, nsub) << key;
    op->apply(x.data(), y2.data());
    const double scale = std::max(1.0, max_abs(y1));
    for (std::size_t i = 0; i < y1.size(); ++i)
      EXPECT_NEAR(y2[i], y1[i], 1e-12 * scale) << "entry " << i << " " << key;

    // Cold rebuild on the same values agrees with the cached state.
    {
      auto cold = registry.create(key, p, cfg, &test_context());
      cold->prepare();
      cold->update_values();
      std::vector<double> y_cold(x.size(), 0.0);
      cold->apply(x.data(), y_cold.data());
      for (std::size_t i = 0; i < y1.size(); ++i)
        EXPECT_NEAR(y_cold[i], y1[i], 1e-10 * scale)
            << "entry " << i << " " << key;
    }

    // Step 3: whole-problem change refreshes everything.
    decomp::scale_step(p, 2.0);
    op->update_values();
    CacheStats s3 = op->cache_stats();
    EXPECT_EQ(s3.refreshed_subdomains, 2 * nsub) << key;

    // Step 4: a single marked subdomain refreshes exactly that subdomain,
    // and the refreshed state matches a cold rebuild.
    decomp::scale_subdomain(p, 1, 3.0);
    op->update_values();
    CacheStats s4 = op->cache_stats();
    EXPECT_EQ(s4.refreshed_subdomains - s3.refreshed_subdomains, 1) << key;
    EXPECT_EQ(s4.skipped_subdomains - s3.skipped_subdomains, nsub - 1) << key;
    std::vector<double> y4(x.size(), 0.0), y_cold(x.size(), 0.0);
    op->apply(x.data(), y4.data());
    auto cold = registry.create(key, p, cfg, &test_context());
    cold->prepare();
    cold->update_values();
    cold->apply(x.data(), y_cold.data());
    const double scale4 = std::max(1.0, max_abs(y_cold));
    for (std::size_t i = 0; i < y4.size(); ++i)
      EXPECT_NEAR(y4[i], y_cold[i], 1e-10 * scale4)
          << "entry " << i << " " << key;
  }
}

// ---------------------------------------------------------------------------
// Bit-identical applies and deterministic skip on the CPU families
// ---------------------------------------------------------------------------

TEST(TimestepCache, UnchangedStepIsBitIdenticalOnCpu) {
  // The CPU apply path is deterministic (per-subdomain kernels are
  // sequential, the gather runs in subdomain order), so a skipped
  // update_values() must leave the results bit-for-bit identical — the
  // factors were not touched at all. The sparsity-aware keys ride the same
  // contract: a clean step must skip the boundary re-assembly entirely.
  for (const char* key : {"expl mkl", "expl cholmod", "impl mkl",
                          "expl mkl sp", "expl cholmod sp"}) {
    FetiProblem p = heat2d_problem(6, 2);
    DualOpConfig cfg;
    cfg.key = key;
    auto op = make_dual_operator(p, cfg);
    op->prepare();
    op->update_values();
    const std::vector<double> x = probe_vector(p.num_lambdas, 7);
    std::vector<double> y1(x.size(), 0.0), y2(x.size(), 0.0);
    op->apply(x.data(), y1.data());
    op->update_values();  // clean step: must not touch any factor
    EXPECT_EQ(op->cache_stats().refreshed_subdomains,
              static_cast<long>(p.num_subdomains()))
        << key;
    op->apply(x.data(), y2.data());
    for (std::size_t i = 0; i < y1.size(); ++i)
      EXPECT_EQ(y1[i], y2[i]) << "entry " << i << " " << key;
  }
}

// ---------------------------------------------------------------------------
// Mixed precision: dirty refresh re-demotes only the refreshed blocks
// ---------------------------------------------------------------------------

TEST(TimestepCache, F32DirtyRefreshRedemotesOnlyTheRefreshedBlocks) {
  // fp32 keys keep their demoted F̃ storage across cached steps: a targeted
  // dirty mark re-assembles and re-demotes exactly the marked subdomain
  // (cache_stats proves the others were untouched), and the partially
  // re-demoted state matches a cold fp32 rebuild on the current values —
  // bit-for-bit, because demotion of identical fp64 values is
  // deterministic. One CPU, one GPU, and the hybrid f32 key, plus their
  // sparsity-aware siblings (the sp refresh re-demotes the full block
  // rebuilt from the boundary panel).
  for (const char* key :
       {"expl mkl f32", "expl legacy f32", "expl hybrid f32",
        "expl mkl sp f32", "expl legacy sp f32", "expl hybrid sp f32"}) {
    FetiProblem p = heat2d_problem(6, 2);
    const long nsub = static_cast<long>(p.num_subdomains());
    DualOpConfig cfg = recommend_config(key, 2, p.max_subdomain_dofs());
    auto& registry = DualOperatorRegistry::instance();
    auto op = registry.create(key, p, cfg, &test_context());
    op->prepare();
    op->update_values();

    const std::vector<double> x = probe_vector(p.num_lambdas, 29);
    std::vector<double> y1(x.size(), 0.0);
    op->apply(x.data(), y1.data());

    // Clean step: zero refreshes, zero re-demotions, identical results.
    op->update_values();
    EXPECT_EQ(op->cache_stats().refreshed_subdomains, nsub) << key;
    std::vector<double> y2(x.size(), 0.0);
    op->apply(x.data(), y2.data());
    for (std::size_t i = 0; i < y1.size(); ++i)
      EXPECT_EQ(y2[i], y1[i]) << "entry " << i << " " << key;

    // One dirty subdomain: exactly one refresh (assembly + demotion).
    decomp::scale_subdomain(p, 2, 2.5);
    op->update_values();
    CacheStats s = op->cache_stats();
    EXPECT_EQ(s.refreshed_subdomains, nsub + 1) << key;
    EXPECT_EQ(s.skipped_subdomains, 2 * nsub - 1) << key;

    // The mixed cached/re-demoted state equals a cold fp32 rebuild.
    std::vector<double> y3(x.size(), 0.0), y_cold(x.size(), 0.0);
    op->apply(x.data(), y3.data());
    auto cold = registry.create(key, p, cfg, &test_context());
    cold->prepare();
    cold->update_values();
    cold->apply(x.data(), y_cold.data());
    for (std::size_t i = 0; i < y3.size(); ++i)
      EXPECT_EQ(y3[i], y_cold[i]) << "entry " << i << " " << key;
  }
}

// ---------------------------------------------------------------------------
// Sharded wrapper aggregation
// ---------------------------------------------------------------------------

TEST(TimestepCache, ShardedWrapperAggregatesSkipDecisions) {
  // 3x3 subdomains over two shards (5 + 4): whole-step skips are
  // wrapper-level, per-subdomain counts sum over the disjoint shard
  // subsets, and a single dirty subdomain refreshes only inside the
  // owning shard. Run for the dense and the sparsity-aware sharded keys —
  // the sp wrapper must aggregate per-shard skips identically.
  for (const char* sharded_key : {"expl legacy x2", "expl legacy sp x2"}) {
    const std::string base =
        std::string(sharded_key).substr(0, std::strlen(sharded_key) - 3);
    FetiProblem p = heat2d_problem(9, 3);
    const long nsub = static_cast<long>(p.num_subdomains());
    DualOpConfig cfg = recommend_config(sharded_key, 2,
                                        p.max_subdomain_dofs());
    auto op = DualOperatorRegistry::instance().create(sharded_key, p, cfg,
                                                      &test_context());
    op->prepare();
    op->update_values();
    CacheStats s1 = op->cache_stats();
    EXPECT_EQ(s1.steps, 1) << sharded_key;
    EXPECT_EQ(s1.skipped_steps, 0) << sharded_key;
    EXPECT_EQ(s1.refreshed_subdomains, nsub) << sharded_key;
    const long cols1 = op->solve_columns();
    EXPECT_GT(cols1, 0) << sharded_key;

    // Clean step: both shards skip, the wrapper reports one skipped step,
    // and no shard solved a single extra K⁻¹ column.
    op->update_values();
    CacheStats s2 = op->cache_stats();
    EXPECT_EQ(s2.steps, 2) << sharded_key;
    EXPECT_EQ(s2.skipped_steps, 1) << sharded_key;
    EXPECT_EQ(s2.refreshed_subdomains, nsub) << sharded_key;
    EXPECT_EQ(s2.skipped_subdomains, nsub) << sharded_key;
    EXPECT_EQ(op->solve_columns(), cols1) << sharded_key;

    // One dirty subdomain: the owning shard refreshes it, the other shard
    // skips everything — so the step is NOT skipped but refreshes exactly
    // 1.
    decomp::scale_subdomain(p, 3, 2.0);
    op->update_values();
    CacheStats s3 = op->cache_stats();
    EXPECT_EQ(s3.steps, 3) << sharded_key;
    EXPECT_EQ(s3.skipped_steps, 1) << sharded_key;
    EXPECT_EQ(s3.refreshed_subdomains, nsub + 1) << sharded_key;
    EXPECT_EQ(s3.skipped_subdomains, 2 * nsub - 1) << sharded_key;

    // The partially refreshed sharded state matches a cold single-device
    // operator on the current values.
    const std::vector<double> x = probe_vector(p.num_lambdas, 13);
    std::vector<double> y(x.size(), 0.0), y_ref(x.size(), 0.0);
    op->apply(x.data(), y.data());
    DualOpConfig ref_cfg = recommend_config(base, 2, p.max_subdomain_dofs());
    auto ref = make_dual_operator(p, ref_cfg, &test_context());
    ref->prepare();
    ref->update_values();
    ref->apply(x.data(), y_ref.data());
    const double scale = std::max(1.0, max_abs(y_ref));
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_NEAR(y[i], y_ref[i], 1e-10 * scale)
          << "entry " << i << " " << sharded_key;
  }
}

TEST(TimestepCache, SpDirtyRefreshSolvesOnlyTheDirtyBoundaryPanel) {
  // The solve-column counter exposes exactly how much K⁻¹ panel work each
  // refresh performed: step 1 solves the summed boundary widths Σnb, a
  // clean step solves nothing, and a single dirty subdomain adds exactly
  // its own nb — the sp refresh reassembles only that subdomain's
  // boundary block. The refreshed state matches a cold rebuild
  // bit-for-bit on the deterministic CPU path.
  FetiProblem p = heat2d_problem(6, 2);
  long total_nb = 0;
  std::vector<long> nb(static_cast<std::size_t>(p.num_subdomains()));
  for (idx s = 0; s < p.num_subdomains(); ++s) {
    nb[static_cast<std::size_t>(s)] = decomp::boundary_dofs(p.sub[s]).count();
    total_nb += nb[static_cast<std::size_t>(s)];
  }

  for (const char* key : {"expl mkl sp", "expl cholmod sp"}) {
    DualOpConfig cfg;
    cfg.key = key;
    auto op = make_dual_operator(p, cfg);
    op->prepare();
    op->update_values();
    EXPECT_EQ(op->solve_columns(), total_nb) << key;

    op->update_values();  // clean: zero extra columns
    EXPECT_EQ(op->solve_columns(), total_nb) << key;

    decomp::scale_subdomain(p, 1, 1.75);
    op->update_values();
    EXPECT_EQ(op->solve_columns(), total_nb + nb[1]) << key;

    auto cold = make_dual_operator(p, cfg);
    cold->prepare();
    cold->update_values();
    const std::vector<double> x = probe_vector(p.num_lambdas, 67);
    std::vector<double> y(x.size(), 0.0), y_cold(x.size(), 0.0);
    op->apply(x.data(), y.data());
    cold->apply(x.data(), y_cold.data());
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_EQ(y[i], y_cold[i]) << "entry " << i << " " << key;
    decomp::scale_subdomain(p, 1, 1.0 / 1.75);  // restore for the next key
  }
}

// ---------------------------------------------------------------------------
// Tracking modes: hash fallback vs explicit versioning
// ---------------------------------------------------------------------------

TEST(TimestepCache, HashFallbackDetectsInPlaceMutation) {
  // Default (Hashed) tracking: mutating K_reg in place without any mark is
  // detected by the content hash and refreshes exactly the mutated
  // subdomain.
  FetiProblem p = heat2d_problem(6, 2);
  ASSERT_EQ(p.tracking, decomp::ValueTracking::Hashed);
  DualOpConfig cfg;
  cfg.key = "expl mkl";
  auto op = make_dual_operator(p, cfg);
  op->prepare();
  op->update_values();

  for (auto& v : p.sub[2].k_reg.vals()) v *= 2.0;  // no mark on purpose
  op->update_values();
  CacheStats s = op->cache_stats();
  EXPECT_EQ(s.refreshed_subdomains,
            static_cast<long>(p.num_subdomains()) + 1);
  EXPECT_EQ(s.skipped_steps, 0);

  // A value rewritten to the identical bits is a legitimate cache hit.
  p.sub[2].k_reg.vals()[0] = p.sub[2].k_reg.vals()[0] * 1.0;
  op->update_values();
  EXPECT_EQ(op->cache_stats().skipped_steps, 1);
}

TEST(TimestepCache, VersionedTrackingTrustsMarksAlone) {
  // Versioned tracking (the zero-overhead opt-in): marks are honored, and
  // an unmarked in-place mutation is — by contract — NOT picked up until
  // the subdomain is marked.
  FetiProblem p = heat2d_problem(6, 2);
  p.tracking = decomp::ValueTracking::Versioned;
  DualOpConfig cfg;
  cfg.key = "impl mkl";
  auto op = make_dual_operator(p, cfg);
  op->prepare();
  op->update_values();
  const long nsub = static_cast<long>(p.num_subdomains());

  // Unmarked in-place mutation: skipped (documented contract).
  for (auto& v : p.sub[0].k_reg.vals()) v *= 2.0;
  op->update_values();
  EXPECT_EQ(op->cache_stats().skipped_steps, 1);
  EXPECT_EQ(op->cache_stats().refreshed_subdomains, nsub);

  // The mark makes the next step refresh exactly that subdomain.
  p.mark_values_changed(0);
  op->update_values();
  EXPECT_EQ(op->cache_stats().refreshed_subdomains, nsub + 1);

  // Whole-problem mark refreshes everything.
  p.mark_values_changed();
  op->update_values();
  EXPECT_EQ(op->cache_stats().refreshed_subdomains, 2 * nsub + 1);
}

// ---------------------------------------------------------------------------
// Solver wiring
// ---------------------------------------------------------------------------

TEST(TimestepCache, SolveStepReportsCachedSteps) {
  // Three steps: full, cached, full again after a material change — the
  // per-step result carries the cache outcome, and the cached step still
  // converges to the same solution (K unchanged means the same system).
  FetiProblem p = heat2d_problem(6, 2);
  FetiSolverOptions opts;
  opts.dualop = recommend_config("expl legacy", 2, p.max_subdomain_dofs());
  opts.pcpg.rel_tolerance = 1e-10;
  FetiSolver solver(p, opts, &test_context());
  solver.prepare();

  FetiStepResult step1 = solver.solve_step();
  ASSERT_TRUE(step1.converged);
  EXPECT_FALSE(step1.values_cached);
  EXPECT_EQ(step1.refreshed_subdomains, p.num_subdomains());
  EXPECT_EQ(step1.skipped_subdomains, 0);

  FetiStepResult step2 = solver.solve_step();
  ASSERT_TRUE(step2.converged);
  EXPECT_TRUE(step2.values_cached);
  EXPECT_EQ(step2.refreshed_subdomains, 0);
  EXPECT_EQ(step2.skipped_subdomains, p.num_subdomains());
  for (std::size_t i = 0; i < step1.u.size(); ++i)
    EXPECT_NEAR(step2.u[i], step1.u[i], 1e-9);

  decomp::scale_step(p, 3.0);
  FetiStepResult step3 = solver.solve_step();
  ASSERT_TRUE(step3.converged);
  EXPECT_FALSE(step3.values_cached);
  EXPECT_EQ(step3.refreshed_subdomains, p.num_subdomains());
  // scale_step scales f along with K, so the solution is step-invariant.
  for (std::size_t i = 0; i < step1.u.size(); ++i)
    EXPECT_NEAR(step3.u[i], step1.u[i], 1e-7);
}

TEST(TimestepCache, SolveStepManySharesOnePreprocessing) {
  FetiProblem p = heat2d_problem(6, 2);
  FetiSolverOptions opts;
  opts.dualop = recommend_config("impl mkl", 2, p.max_subdomain_dofs());
  opts.pcpg.rel_tolerance = 1e-10;
  FetiSolver solver(p, opts, nullptr);
  solver.prepare();
  (void)solver.solve_step();

  std::vector<double> d(static_cast<std::size_t>(p.num_lambdas));
  solver.dual_operator().compute_d(d.data());
  std::vector<double> d2 = d;
  for (auto& v : d2) v *= 2.0;
  const std::vector<FetiStepResult> block = solver.solve_step_many({d, d2});
  ASSERT_EQ(block.size(), 2u);
  for (const auto& r : block) {
    EXPECT_TRUE(r.values_cached);
    EXPECT_EQ(r.refreshed_subdomains, 0);
    EXPECT_EQ(r.skipped_subdomains, p.num_subdomains());
  }
}

// ---------------------------------------------------------------------------
// Problem-model helpers
// ---------------------------------------------------------------------------

TEST(TimestepCache, MarkAndScaleHelpersBumpVersions) {
  FetiProblem p = heat2d_problem(4, 2);
  const std::uint64_t v0 = p.sub[0].values_version;
  const std::uint64_t v1 = p.sub[1].values_version;
  p.mark_values_changed(0);
  EXPECT_EQ(p.sub[0].values_version, v0 + 1);
  EXPECT_EQ(p.sub[1].values_version, v1);
  p.mark_values_changed();
  EXPECT_EQ(p.sub[0].values_version, v0 + 2);
  EXPECT_EQ(p.sub[1].values_version, v1 + 1);

  const double k0 = p.sub[0].k_reg.vals()[0];
  const double f1 = p.sub[1].sys.f.empty() ? 0.0 : p.sub[1].sys.f[0];
  decomp::scale_subdomain(p, 0, 2.0);
  EXPECT_DOUBLE_EQ(p.sub[0].k_reg.vals()[0], 2.0 * k0);
  if (!p.sub[1].sys.f.empty()) {
    EXPECT_DOUBLE_EQ(p.sub[1].sys.f[0], f1);  // untouched subdomain
  }
  EXPECT_EQ(p.sub[0].values_version, v0 + 3);
  EXPECT_THROW(p.mark_values_changed(-1), std::invalid_argument);
  EXPECT_THROW(p.mark_values_changed(p.num_subdomains()),
               std::invalid_argument);
  EXPECT_THROW(decomp::scale_subdomain(p, -1, 2.0), std::invalid_argument);
  EXPECT_THROW(decomp::scale_subdomain(p, p.num_subdomains(), 2.0),
               std::invalid_argument);
  EXPECT_THROW(decomp::scale_subdomain(p, 0, 0.0), std::invalid_argument);

  // The content hash tracks the value bytes.
  const std::uint64_t h = decomp::k_values_hash(p.sub[0]);
  EXPECT_EQ(decomp::k_values_hash(p.sub[0]), h);
  p.sub[0].k_reg.vals()[0] *= 1.5;
  EXPECT_NE(decomp::k_values_hash(p.sub[0]), h);
}

}  // namespace
}  // namespace feti::core
