#include "gpu/runtime.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#include "util/common.hpp"

namespace feti::gpu {

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

DeviceConfig DeviceConfig::from_env() {
  DeviceConfig cfg;
  if (const char* v = std::getenv("FETI_VGPU_WORKERS"))
    cfg.worker_threads = std::atoi(v);
  if (const char* v = std::getenv("FETI_VGPU_LATENCY_US"))
    cfg.launch_latency_us = std::atof(v);
  if (const char* v = std::getenv("FETI_VGPU_MEM_MB"))
    cfg.memory_bytes = static_cast<std::size_t>(std::atoll(v)) << 20;
  return cfg;
}

// ---------------------------------------------------------------------------
// TempAllocator
// ---------------------------------------------------------------------------

void TempAllocator::init(char* base, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  FETI_ASSERT(used_.empty(), "TempAllocator: re-init while blocks are live");
  base_ = base;
  capacity_ = bytes;
  free_list_.clear();
  if (bytes > 0) free_list_.push_back({0, bytes});
}

namespace {
constexpr std::size_t kAlign = 64;
std::size_t round_up(std::size_t v) {
  return (v + kAlign - 1) / kAlign * kAlign;
}
}  // namespace

bool TempAllocator::try_alloc_locked(std::size_t bytes, std::size_t& offset) {
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    if (free_list_[i].size >= bytes) {
      offset = free_list_[i].offset;
      free_list_[i].offset += bytes;
      free_list_[i].size -= bytes;
      if (free_list_[i].size == 0)
        free_list_.erase(free_list_.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

void* TempAllocator::alloc(std::size_t bytes) {
  bytes = round_up(std::max<std::size_t>(bytes, 1));
  std::unique_lock<std::mutex> lock(mutex_);
  check(base_ != nullptr, "TempAllocator: pool not initialized");
  check(bytes <= capacity_,
        "TempAllocator: request exceeds the whole temporary pool");
  std::size_t offset = 0;
  if (!try_alloc_locked(bytes, offset)) {
    contention_ += 1;
    cv_.wait(lock, [&] { return try_alloc_locked(bytes, offset); });
  }
  // Record as used, sorted by offset (for coalescing on free).
  auto it = used_.begin();
  while (it != used_.end() && it->offset < offset) ++it;
  used_.insert(it, {offset, bytes});
  return base_ + offset;
}

void TempAllocator::free(void* p) {
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  check(base_ != nullptr, "TempAllocator::free: pool not initialized");
  check(p >= base_ && p < base_ + capacity_,
        "TempAllocator::free: pointer does not belong to the temporary "
        "pool (wrong allocator?)");
  const auto offset = static_cast<std::size_t>(static_cast<char*>(p) - base_);
  Block blk{0, 0};
  bool found = false;
  for (auto it = used_.begin(); it != used_.end(); ++it) {
    if (it->offset == offset) {
      blk = *it;
      used_.erase(it);
      found = true;
      break;
    }
  }
  check(found,
        "TempAllocator::free: pointer at pool offset " +
            std::to_string(offset) +
            " is not a live allocation (double free, or not an allocation "
            "start)");
  // Insert into the free list sorted by offset and coalesce neighbours.
  auto it = free_list_.begin();
  while (it != free_list_.end() && it->offset < blk.offset) ++it;
  it = free_list_.insert(it, blk);
  if (it + 1 != free_list_.end() &&
      it->offset + it->size == (it + 1)->offset) {
    it->size += (it + 1)->size;
    free_list_.erase(it + 1);
  }
  if (it != free_list_.begin() &&
      (it - 1)->offset + (it - 1)->size == it->offset) {
    (it - 1)->size += it->size;
    free_list_.erase(it);
  }
  cv_.notify_all();
}

std::size_t TempAllocator::in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& b : used_) total += b.size;
  return total;
}

long TempAllocator::contention_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return contention_;
}

// ---------------------------------------------------------------------------
// Stream / Event
// ---------------------------------------------------------------------------

struct Event::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::vector<std::function<void()>> callbacks;

  void set() {
    std::vector<std::function<void()>> to_run;
    {
      std::lock_guard<std::mutex> lock(mutex);
      done = true;
      to_run.swap(callbacks);
      cv.notify_all();
    }
    for (auto& cb : to_run) cb();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done; });
  }
  bool query() {
    std::lock_guard<std::mutex> lock(mutex);
    return done;
  }
  /// Runs `cb` when the event fires (immediately if it already did).
  void add_callback(std::function<void()> cb) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (!done) {
        callbacks.push_back(std::move(cb));
        return;
      }
    }
    cb();
  }
};

struct Stream::Impl : std::enable_shared_from_this<Stream::Impl> {
  Device* device = nullptr;
  std::mutex mutex;
  /// A queue entry is either an operation or a gate: the stream stalls at a
  /// gate until its event fires. Gates must not occupy a worker thread
  /// (cross-stream waits would otherwise deadlock a small pool), so the
  /// stream parks itself and is re-armed by an event callback.
  struct Entry {
    std::function<void()> op;
    std::shared_ptr<Event::Impl> gate;
  };
  std::deque<Entry> queue;
  bool running = false;
  std::condition_variable idle_cv;

  void pump() {
    for (;;) {
      std::function<void()> op;
      std::shared_ptr<Event::Impl> park_on;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (queue.empty()) {
          running = false;
          idle_cv.notify_all();
          return;
        }
        Entry& front = queue.front();
        if (front.gate != nullptr) {
          if (front.gate->query()) {
            queue.pop_front();
            continue;
          }
          // Park: release the worker; the event callback re-arms us.
          park_on = front.gate;
          running = false;
        } else {
          op = std::move(front.op);
          queue.pop_front();
        }
      }
      if (park_on != nullptr) {
        park_on->add_callback([self = shared_from_this()] { self->kick(); });
        return;
      }
      device->launch_latency();
      op();
    }
  }

  void kick() {
    bool start = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (!running && !queue.empty()) {
        running = true;
        start = true;
      }
    }
    if (start) {
      device->pool_submit([self = shared_from_this()] { self->pump(); });
    }
  }

  void submit(std::function<void()> op) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push_back({std::move(op), nullptr});
    }
    kick();
  }

  void submit_gate(std::shared_ptr<Event::Impl> gate) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push_back({nullptr, std::move(gate)});
    }
    kick();
  }

  void synchronize() {
    std::unique_lock<std::mutex> lock(mutex);
    idle_cv.wait(lock, [&] { return !running && queue.empty(); });
  }
};

Event::Event() : impl_(std::make_shared<Impl>()) {}
void Event::wait() const { impl_->wait(); }
bool Event::query() const { return impl_->query(); }

void Stream::submit(std::function<void()> op) {
  check(impl_ != nullptr, "Stream: invalid handle");
  impl_->submit(std::move(op));
}

TransferCounters& TransferCounters::global() {
  static TransferCounters counters;
  return counters;
}

void Stream::memcpy_h2d(void* dst, const void* src, std::size_t bytes) {
  // Counted at submission time (not execution): deterministic totals for
  // the transfer-count gates even while the stream is still draining.
  TransferCounters::global().record_h2d(bytes);
  submit([dst, src, bytes] { std::memcpy(dst, src, bytes); });
}

void Stream::memcpy_d2h(void* dst, const void* src, std::size_t bytes) {
  TransferCounters::global().record_d2h(bytes);
  submit([dst, src, bytes] { std::memcpy(dst, src, bytes); });
}

void Stream::synchronize() {
  check(impl_ != nullptr, "Stream: invalid handle");
  impl_->synchronize();
}

Event Stream::record() {
  Event e;
  auto impl = e.impl_;
  submit([impl] { impl->set(); });
  return e;
}

void Stream::wait(const Event& e) {
  check(impl_ != nullptr, "Stream: invalid handle");
  impl_->submit_gate(e.impl_);
}

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

Device::Device(DeviceConfig cfg) : cfg_(cfg) {
  int workers = cfg_.worker_threads;
  if (workers <= 0)
    workers = static_cast<int>(std::thread::hardware_concurrency());
  workers = std::max(workers, 1);
  cfg_.worker_threads = workers;
  pool_ = std::make_unique<ThreadPool>(workers);
}

Device::~Device() { synchronize(); }

void Device::pool_submit(std::function<void()> task) {
  // Futures are intentionally dropped; stream completion is tracked by the
  // stream's own idle condition.
  (void)pool_->submit(std::move(task));
}

void Device::launch_latency() const {
  if (cfg_.launch_latency_us <= 0.0) return;
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(
          static_cast<long>(cfg_.launch_latency_us * 1e3));
  // Spin for microsecond-scale latencies (sleep granularity is too coarse).
  while (std::chrono::steady_clock::now() < until) {
  }
}

Stream Device::create_stream() {
  auto impl = std::make_shared<Stream::Impl>();
  impl->device = this;
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    streams_.push_back(impl);
  }
  return Stream(std::move(impl));
}

void Device::synchronize() {
  std::vector<std::shared_ptr<Stream::Impl>> live;
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    for (auto it = streams_.begin(); it != streams_.end();) {
      if (auto s = it->lock()) {
        live.push_back(std::move(s));
        ++it;
      } else {
        it = streams_.erase(it);
      }
    }
  }
  for (auto& s : live) s->synchronize();
}

void* Device::alloc(std::size_t bytes) {
  bytes = round_up(std::max<std::size_t>(bytes, 1));
  std::lock_guard<std::mutex> lock(mem_mutex_);
  if (mem_used_ + bytes > cfg_.memory_bytes)
    throw std::bad_alloc();  // the vGPU analogue of cudaErrorMemoryAllocation
  void* p = ::operator new(bytes, std::align_val_t(kAlign));
  mem_used_ += bytes;
  allocations_[p] = bytes;
  return p;
}

void Device::free(void* p) {
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(mem_mutex_);
  auto it = allocations_.find(p);
  check(it != allocations_.end(),
        "Device::free: pointer is not a live device allocation (double "
        "free, or memory from another allocator)");
  mem_used_ -= it->second;
  ::operator delete(p, std::align_val_t(kAlign));
  allocations_.erase(it);
}

void Device::init_temp_pool(std::size_t reserve) {
  std::lock_guard<std::mutex> lock(mem_mutex_);
  check(!temp_ready_, "init_temp_pool: already initialized");
  const std::size_t remaining =
      cfg_.memory_bytes > mem_used_ + reserve
          ? cfg_.memory_bytes - mem_used_ - reserve
          : 0;
  check(remaining > 0, "init_temp_pool: no device memory left for the pool");
  temp_storage_ = std::make_unique_for_overwrite<char[]>(remaining);
  temp_.init(temp_storage_.get(), remaining);
  mem_used_ += remaining;
  temp_ready_ = true;
}

void Device::ensure_temp_pool() {
  {
    std::lock_guard<std::mutex> lock(mem_mutex_);
    if (temp_ready_) return;
  }
  const auto pool_bytes = static_cast<std::size_t>(
      static_cast<double>(cfg_.memory_bytes) * cfg_.temp_pool_fraction);
  std::lock_guard<std::mutex> lock(mem_mutex_);
  if (temp_ready_) return;
  check(mem_used_ + pool_bytes <= cfg_.memory_bytes,
        "ensure_temp_pool: persistent allocations already exceed the "
        "non-pool share of device memory");
  temp_storage_ = std::make_unique_for_overwrite<char[]>(pool_bytes);
  temp_.init(temp_storage_.get(), pool_bytes);
  mem_used_ += pool_bytes;
  temp_ready_ = true;
}

TempAllocator& Device::temp() {
  check(temp_ready_, "temp(): init_temp_pool() must be called first");
  return temp_;
}

std::size_t Device::memory_used() const {
  std::lock_guard<std::mutex> lock(mem_mutex_);
  return mem_used_;
}

Device& Device::default_device() {
  static Device device{DeviceConfig::from_env()};
  return device;
}

}  // namespace feti::gpu
