// Tests for the device-resident PCPG mode (PcpgOptions::device_state):
// the device engines must agree with the host-staged engines — identical
// iteration counts (the convergence decisions consume bitwise-equal
// scalars) and matching solutions — for every GPU-capable registry key
// across {plain lockstep, block, block + recycling} × {no preconditioner,
// device Dirichlet}; per-iteration PCIe traffic must stay scalar-sized
// (O(batch + kernel_total), never O(num_lambdas) vectors); and the
// Auto/On eligibility and out-of-memory fallback contracts must hold.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <new>
#include <string>

#include "core/autotune.hpp"
#include "core/dualop_registry.hpp"
#include "core/krylov_recycler.hpp"
#include "core/pcpg.hpp"
#include "gpu/runtime.hpp"
#include "precond/precond_registry.hpp"
#include "test_helpers.hpp"

namespace feti {
namespace {

using core::Pcpg;
using core::PcpgOptions;
using core::PcpgResult;
using core::Projector;
using DeviceState = core::PcpgOptions::DeviceState;

decomp::FetiProblem heat2d_problem(idx cells = 8, idx splits = 2) {
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, mesh::ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
  return decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
}

gpu::DeviceConfig quiet_config(std::size_t mem = 512ull << 20) {
  gpu::DeviceConfig cfg;
  cfg.worker_threads = 4;
  cfg.launch_latency_us = 0.0;
  cfg.memory_bytes = mem;
  return cfg;
}

/// Clustered consistent right-hand sides: scaled copies of the physical d
/// plus an F·v nudge (range(F) keeps the singular dual system solvable).
std::vector<std::vector<double>> clustered_rhs(core::DualOperator& op,
                                               const decomp::FetiProblem& p,
                                               int count) {
  const idx n = p.num_lambdas;
  std::vector<double> d(static_cast<std::size_t>(n));
  op.compute_d(d.data());
  std::vector<double> v(static_cast<std::size_t>(n)), fv(v.size());
  for (idx i = 0; i < n; ++i) v[i] = std::sin(0.25 * static_cast<double>(i));
  op.apply(v.data(), fv.data());
  std::vector<std::vector<double>> ds;
  for (int j = 0; j < count; ++j) {
    ds.push_back(d);
    for (idx i = 0; i < n; ++i)
      ds.back()[i] = (1.0 + 0.1 * j) * d[i] + 0.01 * j * fv[i];
  }
  return ds;
}

enum class Mode { Plain, Block, BlockRecycle };

/// Runs `steps` consecutive solve_many calls under one engine selection
/// (fresh Pcpg + recycler per call sequence, the FetiSolver lifecycle).
std::vector<std::vector<PcpgResult>> run_engine(
    core::DualOperator& op, const Projector& projector,
    precond::Preconditioner* m, const std::string& precond_key, Mode mode,
    DeviceState state, double rel_tolerance,
    const std::vector<std::vector<double>>& ds, int steps) {
  PcpgOptions popts;
  popts.rel_tolerance = rel_tolerance;
  popts.preconditioner = precond_key;
  popts.block.enabled = mode != Mode::Plain;
  popts.block.recycle = mode == Mode::BlockRecycle;
  popts.device_state = state;
  Pcpg pcpg(op, projector, popts, m);
  core::KrylovRecycler recycler(op.problem().num_lambdas,
                                popts.block.deflation_budget);
  if (mode == Mode::BlockRecycle) pcpg.set_recycler(&recycler);
  std::vector<std::vector<PcpgResult>> out;
  for (int s = 0; s < steps; ++s) out.push_back(pcpg.solve_many(ds));
  return out;
}

// ---------------------------------------------------------------------------
// Device-vs-host agreement across every GPU-capable registry key
// ---------------------------------------------------------------------------

TEST(PcpgDevice, MatchesHostAcrossGpuRegistryKeys) {
  decomp::FetiProblem p = heat2d_problem(8, 2);
  gpu::ExecutionContext dev(quiet_config());
  const auto& registry = core::DualOperatorRegistry::instance();
  auto& preg = precond::PreconditionerRegistry::instance();

  int keys_tested = 0;
  for (const std::string& key : registry.keys()) {
    if (!registry.uses_gpu(key) || !registry.available(key, &dev)) continue;
    core::DualOpConfig cfg =
        core::recommend_config(key, 2, p.max_subdomain_dofs());
    auto op = core::make_dual_operator(p, cfg, &dev);
    op->prepare();
    op->update_values();
    ASSERT_NE(op->device_context(), nullptr) << key;
    Projector projector(p);
    const std::vector<std::vector<double>> ds = clustered_rhs(*op, p, 3);

    const bool f32 =
        registry.info(key).axes.precision == core::Precision::F32;
    // fp32-stored operators converge to a shallower floor, so they iterate
    // at a matching looser tolerance; the host-vs-device solution bound is
    // tight in both precisions because the two engines run the same
    // kernels in the same order.
    const double rel_tolerance = f32 ? 2e-5 : 1e-9;
    const double cmp = f32 ? 2e-6 : 1e-10;

    for (const char* pkey : {"none", "dirichlet stiffness gpu"}) {
      std::unique_ptr<precond::Preconditioner> m;
      if (std::string(pkey) != "none") {
        m = preg.create(pkey, p, &dev);
        m->prepare();
        m->update_values();
      }
      for (const Mode mode : {Mode::Plain, Mode::Block, Mode::BlockRecycle}) {
        const int steps = mode == Mode::BlockRecycle ? 2 : 1;
        // The implicit operators' recycle path stalls just above 1e-9 on
        // the 3-wide clustered batch (host engine behavior the device
        // engine must reproduce, not fix); run recycling at the tolerance
        // every key reaches so the matrix compares converging solves.
        const double rel =
            mode == Mode::BlockRecycle && !f32 ? 1e-8 : rel_tolerance;
        const auto host = run_engine(*op, projector, m.get(), pkey, mode,
                                     DeviceState::Off, rel, ds, steps);
        const auto device = run_engine(*op, projector, m.get(), pkey, mode,
                                       DeviceState::On, rel, ds, steps);
        for (int s = 0; s < steps; ++s) {
          for (std::size_t j = 0; j < ds.size(); ++j) {
            const PcpgResult& h = host[s][j];
            const PcpgResult& g = device[s][j];
            const std::string where = key + " precond=" + pkey + " mode=" +
                                      std::to_string(static_cast<int>(mode)) +
                                      " step=" + std::to_string(s) +
                                      " system=" + std::to_string(j);
            if (!f32) {
              EXPECT_TRUE(h.converged) << where;
            }
            EXPECT_EQ(g.converged, h.converged) << where;
            EXPECT_EQ(g.iterations, h.iterations) << where;
            EXPECT_EQ(g.deflation_dim, h.deflation_dim) << where;
            double scale = 1.0;
            for (double x : h.lambda) scale = std::max(scale, std::fabs(x));
            ASSERT_EQ(g.lambda.size(), h.lambda.size()) << where;
            for (std::size_t i = 0; i < h.lambda.size(); ++i)
              ASSERT_NEAR(g.lambda[i], h.lambda[i], cmp * scale)
                  << where << " entry " << i;
            ASSERT_EQ(g.alpha.size(), h.alpha.size()) << where;
            for (std::size_t i = 0; i < h.alpha.size(); ++i)
              EXPECT_NEAR(g.alpha[i], h.alpha[i], cmp * scale) << where;
          }
        }
      }
    }
    ++keys_tested;
  }
  // The registry ships the GPU explicit/implicit/hybrid/sharded families.
  EXPECT_GE(keys_tested, 4);
}

// ---------------------------------------------------------------------------
// Per-iteration PCIe traffic is scalar-sized
// ---------------------------------------------------------------------------

/// D2H/H2D bytes of a full device-state solve capped at `iterations`.
gpu::TransferCounters::Snapshot transfers_at(core::DualOperator& op,
                                             const Projector& projector,
                                             precond::Preconditioner* m,
                                             bool block, int iterations,
                                             const std::vector<
                                                 std::vector<double>>& ds) {
  PcpgOptions popts;
  popts.rel_tolerance = 0.0;  // never converges: runs exactly `iterations`
  popts.max_iterations = iterations;
  popts.preconditioner = m != nullptr ? "dirichlet stiffness gpu" : "none";
  popts.block.enabled = block;
  popts.device_state = DeviceState::On;
  Pcpg pcpg(op, projector, popts, m);
  const gpu::TransferCounters::Snapshot before =
      gpu::TransferCounters::global().snapshot();
  (void)pcpg.solve_many(ds);
  return gpu::TransferCounters::global().snapshot() - before;
}

TEST(PcpgDevice, PerIterationTransfersAreScalarSized) {
  decomp::FetiProblem p = heat2d_problem(36, 3);
  gpu::ExecutionContext dev(quiet_config());
  core::DualOpConfig cfg =
      core::recommend_config("expl legacy", 2, p.max_subdomain_dofs());
  auto op = core::make_dual_operator(p, cfg, &dev);
  op->prepare();
  op->update_values();
  Projector projector(p);
  auto m = precond::PreconditionerRegistry::instance().create(
      "dirichlet stiffness gpu", p, &dev);
  m->prepare();
  m->update_values();

  const std::size_t nsys = 3;
  const std::vector<std::vector<double>> ds =
      clustered_rhs(*op, p, static_cast<int>(nsys));
  const std::size_t n = static_cast<std::size_t>(p.num_lambdas);
  const std::size_t rt = static_cast<std::size_t>(projector.kernel_total());

  // The marginal cost of one extra iteration (identical setup + identical
  // finalization cancel in the difference) must be the scalar blocks only:
  // convergence norms and step-length dots (O(nsys)), the projector's
  // coarse right-hand sides (O(rt · nsys)), and in block mode the Gram and
  // coefficient panels (O(width²), width ≤ nsys). One multiplier vector
  // (8n bytes) must NOT cross per iteration in either direction.
  const std::uint64_t scalar_budget =
      8 * (8 * nsys + 4 * rt * nsys + 4 * nsys * nsys);
  ASSERT_GT(n * sizeof(double), scalar_budget)
      << "problem too small for the budget to separate scalars from vectors";

  for (const bool block : {false, true}) {
    // Warm-up solve: first use pays one-time lazy device staging (precond
    // batch buffers, operator panels) that would otherwise skew the
    // 3-vs-4-iteration difference.
    (void)transfers_at(*op, projector, m.get(), block, 1, ds);
    const gpu::TransferCounters::Snapshot lo =
        transfers_at(*op, projector, m.get(), block, 3, ds);
    const gpu::TransferCounters::Snapshot hi =
        transfers_at(*op, projector, m.get(), block, 4, ds);
    const std::uint64_t marginal_d2h = hi.d2h_bytes - lo.d2h_bytes;
    const std::uint64_t marginal_h2d = hi.h2d_bytes - lo.h2d_bytes;
    EXPECT_LE(marginal_d2h, scalar_budget) << "block=" << block;
    EXPECT_LE(marginal_h2d, scalar_budget) << "block=" << block;
    EXPECT_LT(marginal_d2h, n * sizeof(double)) << "block=" << block;
    EXPECT_LT(marginal_h2d, n * sizeof(double)) << "block=" << block;
  }
}

// ---------------------------------------------------------------------------
// Eligibility and fallback contracts
// ---------------------------------------------------------------------------

TEST(PcpgDevice, OnRequiresDeviceContexts) {
  decomp::FetiProblem p = heat2d_problem(6, 2);
  gpu::ExecutionContext dev(quiet_config());

  // Host-only operator: On throws, Auto silently runs the host engine.
  core::DualOpConfig cpu_cfg;
  cpu_cfg.approach = core::Approach::ImplMkl;
  auto cpu_op = core::make_dual_operator(p, cpu_cfg);
  cpu_op->prepare();
  cpu_op->update_values();
  Projector projector(p);
  std::vector<double> d(static_cast<std::size_t>(p.num_lambdas));
  cpu_op->compute_d(d.data());
  PcpgOptions popts;
  popts.device_state = DeviceState::On;
  EXPECT_THROW(Pcpg(*cpu_op, projector, popts).solve(d),
               std::invalid_argument);
  popts.device_state = DeviceState::Auto;
  const PcpgResult auto_res = Pcpg(*cpu_op, projector, popts).solve(d);
  EXPECT_TRUE(auto_res.converged);

  // Device operator + host-only preconditioner: On throws too — mixing a
  // host preconditioner into the device loop would re-stage every vector.
  core::DualOpConfig gpu_cfg =
      core::recommend_config("expl legacy", 2, p.max_subdomain_dofs());
  auto gpu_op = core::make_dual_operator(p, gpu_cfg, &dev);
  gpu_op->prepare();
  gpu_op->update_values();
  auto host_m = precond::PreconditionerRegistry::instance().create(
      "dirichlet stiffness", p, nullptr);
  host_m->prepare();
  host_m->update_values();
  popts.device_state = DeviceState::On;
  popts.preconditioner = "dirichlet stiffness";
  EXPECT_THROW(Pcpg(*gpu_op, projector, popts, host_m.get()).solve(d),
               std::invalid_argument);
}

TEST(PcpgDevice, AutoFallsBackToHostOnDeviceOom) {
  decomp::FetiProblem p = heat2d_problem(8, 2);
  gpu::ExecutionContext dev(quiet_config(48ull << 20));
  core::DualOpConfig cfg =
      core::recommend_config("expl legacy", 2, p.max_subdomain_dofs());
  auto op = core::make_dual_operator(p, cfg, &dev);
  op->prepare();
  op->update_values();
  Projector projector(p);
  const std::vector<std::vector<double>> ds = clustered_rhs(*op, p, 2);

  // Host reference first — it also warms the operator's staged batch
  // buffers, so the fallback run below allocates nothing new.
  PcpgOptions popts;
  popts.device_state = DeviceState::Off;
  const std::vector<PcpgResult> host =
      Pcpg(*op, projector, popts).solve_many(ds);
  ASSERT_TRUE(host[0].converged && host[1].converged);

  // Exhaust the device down to sub-kilobyte free space.
  gpu::Device& device = dev.device();
  std::vector<double*> grabbed;
  for (std::size_t chunk = 1ull << 20; chunk >= 64; chunk /= 2) {
    for (;;) {
      try {
        grabbed.push_back(device.alloc_n<double>(chunk));
      } catch (const std::bad_alloc&) {
        break;
      }
    }
  }
  ASSERT_FALSE(grabbed.empty());

  // Auto: the device engine's setup hits bad_alloc and the solve degrades
  // to the host engine — same iterations, same solutions.
  popts.device_state = DeviceState::Auto;
  const std::vector<PcpgResult> fb =
      Pcpg(*op, projector, popts).solve_many(ds);
  for (std::size_t j = 0; j < ds.size(); ++j) {
    EXPECT_TRUE(fb[j].converged);
    EXPECT_EQ(fb[j].iterations, host[j].iterations);
    for (std::size_t i = 0; i < host[j].lambda.size(); ++i)
      ASSERT_EQ(fb[j].lambda[i], host[j].lambda[i]) << "system " << j;
  }

  // On: out-of-memory propagates instead of silently degrading.
  popts.device_state = DeviceState::On;
  EXPECT_THROW(Pcpg(*op, projector, popts).solve_many(ds), std::bad_alloc);

  for (double* ptr : grabbed) device.free(ptr);
}

}  // namespace
}  // namespace feti
