#pragma once

// Auto-configuration of the explicit-assembly parameters — the Table-II
// recommendation logic of the paper ("In our implementation, we have an
// option to auto-configure these parameters based on the problem that is
// being solved").

#include "core/config.hpp"

namespace feti::core {

/// Returns the recommended Table-II parameter set for a given CUDA API
/// generation, problem dimensionality, and subdomain size (DOFs).
ExplicitGpuOptions recommend_options(gpu::sparse::Api api, int dim,
                                     idx dofs_per_subdomain);

}  // namespace feti::core
