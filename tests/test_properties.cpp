// Property-based sweeps: randomized invariants checked across many seeds
// and sizes for the numerical substrates, plus the paper's memory-capacity
// behaviour (the modern API's large persistent buffers limit the maximum
// problem size — Section V-A-b).

#include <gtest/gtest.h>

#include <cmath>

#include "core/autotune.hpp"
#include "core/feti_solver.hpp"
#include "decomp/boundary.hpp"
#include "gpu/sparse.hpp"
#include "la/blas_sparse.hpp"
#include "sparse/simplicial_cholesky.hpp"
#include "sparse/supernodal_cholesky.hpp"
#include "test_helpers.hpp"

namespace feti {
namespace {

// ---------------------------------------------------------------------------
// Sparse solver invariants over random matrices.
// ---------------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, BothBackendsAgreeOnRandomSpd) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const idx n = static_cast<idx>(rng.integer(5, 80));
  const double density = rng.uniform(0.05, 0.3);
  la::Csr a = testing::random_spd(n, density, seed * 7 + 1);

  sparse::SimplicialCholesky simplicial;
  sparse::SupernodalCholesky supernodal;
  simplicial.analyze(a, sparse::OrderingKind::MinimumDegree);
  simplicial.factorize(a);
  supernodal.analyze(a, sparse::OrderingKind::MinimumDegree);
  supernodal.factorize(a);

  auto b = testing::random_vector(n, seed * 7 + 2);
  std::vector<double> x1(static_cast<std::size_t>(n));
  std::vector<double> x2(static_cast<std::size_t>(n));
  simplicial.solve(b.data(), x1.data());
  supernodal.solve(b.data(), x2.data());
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);

  // Residual check against the original matrix.
  std::vector<double> r(b);
  la::spmv(-1.0, a, x1.data(), 1.0, r.data());
  EXPECT_LT(la::nrm2(n, r.data()), 1e-8 * (1.0 + la::nrm2(n, b.data())));
}

TEST_P(SeedSweep, SameOrderingGivesSameFill) {
  // Both backends run the same symbolic pipeline; with identical ordering
  // their factor fill must match (supernodal counts panel entries).
  const std::uint64_t seed = GetParam();
  la::Csr a = testing::random_spd(40, 0.12, seed);
  sparse::SimplicialCholesky simplicial;
  sparse::SupernodalCholesky supernodal;
  simplicial.analyze(a, sparse::OrderingKind::Natural);
  supernodal.analyze(a, sparse::OrderingKind::Natural);
  // Supernodal panels cover at least the simplicial nnz (trapezoidal
  // padding inside supernodes never removes entries).
  EXPECT_GE(supernodal.factor_nnz(), simplicial.factor_nnz());
  simplicial.factorize(a);
  supernodal.factorize(a);
}

TEST_P(SeedSweep, SchurMatchesSolveComposition) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed + 1000);
  const idx n = static_cast<idx>(rng.integer(10, 60));
  const idx m = static_cast<idx>(rng.integer(1, 10));
  la::Csr a = testing::random_spd(n, 0.15, seed * 3 + 1);
  la::Csr b = testing::random_sparse(m, n, 0.2, seed * 3 + 2);
  sparse::SupernodalCholesky sn;
  sn.analyze_schur(a, b);
  la::DenseMatrix s(m, m);
  sn.factorize_schur(a, b, s.view(), la::Uplo::Upper);
  // Compare S y against B A^{-1} B^T y for a random vector.
  auto y = testing::random_vector(m, seed * 3 + 3);
  std::vector<double> bty(static_cast<std::size_t>(n), 0.0);
  la::spmv_trans(1.0, b, y.data(), 0.0, bty.data());
  std::vector<double> ainv(static_cast<std::size_t>(n), 0.0);
  sn.solve(bty.data(), ainv.data());
  std::vector<double> ref(static_cast<std::size_t>(m), 0.0);
  la::spmv(1.0, b, ainv.data(), 0.0, ref.data());
  la::symmetrize_from(s.view(), la::Uplo::Upper);
  std::vector<double> sy(static_cast<std::size_t>(m), 0.0);
  la::gemv(1.0, s.cview(), la::Trans::No, y.data(), 0.0, sy.data());
  for (idx i = 0; i < m; ++i)
    EXPECT_NEAR(sy[i], ref[i], 1e-8 * (1.0 + std::fabs(ref[i])));
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Memory capacity behaviour (paper Section V-A-b)
// ---------------------------------------------------------------------------

TEST(MemoryLimits, ModernPersistentBuffersLimitProblemSize) {
  // "The kernel also requires very large persistently allocated memory
  // buffers, which very significantly limits the maximum problem size."
  // On a deliberately tiny device, the legacy plan fits where the modern
  // plan (persistent dense RHS workspace) exhausts device memory.
  la::Csr a = testing::random_spd(600, 0.05, 42);
  la::Csr u = a.triangle(la::Uplo::Upper);
  const idx wide_rhs = 512;

  gpu::DeviceConfig cfg;
  cfg.worker_threads = 2;
  cfg.launch_latency_us = 0.0;
  // Budget: legacy needs O(nnz) only; modern adds n * wide_rhs doubles.
  cfg.memory_bytes = sizeof(double) * 600 * 512 / 2;
  {
    gpu::Device dev(cfg);
    gpu::Stream s = dev.create_stream();
    EXPECT_NO_THROW(gpu::sparse::SpTrsmPlan(
        dev, s, gpu::sparse::Api::Legacy, u, la::Layout::ColMajor, true,
        la::Layout::RowMajor, wide_rhs));
  }
  {
    gpu::Device dev(cfg);
    gpu::Stream s = dev.create_stream();
    EXPECT_THROW(gpu::sparse::SpTrsmPlan(
                     dev, s, gpu::sparse::Api::Modern, u,
                     la::Layout::ColMajor, true, la::Layout::RowMajor,
                     wide_rhs),
                 std::bad_alloc);
  }
}

TEST(MemoryLimits, ExplicitGpuOperatorReportsExhaustionCleanly) {
  mesh::Mesh m = mesh::make_grid_2d(12, 12, mesh::ElementOrder::Quadratic);
  auto dec = mesh::decompose_2d(m, 12, 12, 2, 2);
  auto p = decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
  gpu::DeviceConfig cfg;
  cfg.worker_threads = 2;
  cfg.launch_latency_us = 0.0;
  cfg.memory_bytes = 64 << 10;  // absurdly small device
  gpu::ExecutionContext dev(cfg);
  core::DualOpConfig c;
  c.approach = core::Approach::ExplLegacy;
  c.gpu = core::recommend_options(gpu::sparse::Api::Legacy, 2, 500);
  auto op = core::make_dual_operator(p, c, &dev);
  EXPECT_THROW(op->prepare(), std::bad_alloc);
}

// ---------------------------------------------------------------------------
// FETI invariants under randomized configurations
// ---------------------------------------------------------------------------

class RandomConfigSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConfigSweep, RandomTableOneConfigMatchesReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 31);
  decomp::FetiProblem p = [&] {
    mesh::Mesh m = mesh::make_grid_2d(6, 6, mesh::ElementOrder::Linear);
    auto dec = mesh::decompose_2d(m, 6, 6, 2, 2);
    return decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
  }();

  static gpu::ExecutionContext dev([] {
    gpu::DeviceConfig cfg;
    cfg.worker_threads = 4;
    cfg.launch_latency_us = 0.0;
    cfg.memory_bytes = 256ull << 20;
    return cfg;
  }());

  core::DualOpConfig cfg;
  cfg.approach = rng.integer(0, 1) ? core::Approach::ExplLegacy
                                   : core::Approach::ExplModern;
  auto coin = [&] { return rng.integer(0, 1) == 1; };
  cfg.gpu.path = coin() ? core::Path::Syrk : core::Path::Trsm;
  cfg.gpu.fwd_storage = coin() ? core::FactorStorage::Sparse
                               : core::FactorStorage::Dense;
  cfg.gpu.bwd_storage = coin() ? core::FactorStorage::Sparse
                               : core::FactorStorage::Dense;
  cfg.gpu.fwd_order = coin() ? la::Layout::RowMajor : la::Layout::ColMajor;
  cfg.gpu.bwd_order = coin() ? la::Layout::RowMajor : la::Layout::ColMajor;
  cfg.gpu.rhs_order = coin() ? la::Layout::RowMajor : la::Layout::ColMajor;
  cfg.gpu.scatter_gather = coin() ? core::SgLocation::Cpu
                                  : core::SgLocation::Gpu;
  cfg.gpu.symmetric_pack = coin();
  cfg.gpu.streams = static_cast<int>(rng.integer(1, 6));
  // The sparsity axis rides on top of any Table-I knob combination: sp
  // keys must match the reference under every random configuration too
  // (the knobs that only concern the dense m-column panel are simply
  // ignored there).
  const bool sp = coin();
  if (sp)
    cfg.key = cfg.approach == core::Approach::ExplLegacy ? "expl legacy sp"
                                                         : "expl modern sp";

  auto op = core::make_dual_operator(p, cfg, &dev);
  op->prepare();
  op->update_values();
  if (sp) {
    long total_nb = 0;
    for (idx s = 0; s < p.num_subdomains(); ++s)
      total_nb += decomp::boundary_dofs(p.sub[s]).count();
    EXPECT_EQ(op->solve_columns(), total_nb) << "seed " << seed;
  }

  core::DualOpConfig ref_cfg;
  ref_cfg.approach = core::Approach::ImplMkl;
  auto ref = core::make_dual_operator(p, ref_cfg, nullptr);
  ref->prepare();
  ref->update_values();

  std::vector<double> x(static_cast<std::size_t>(p.num_lambdas));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y(x.size()), y_ref(x.size());
  op->apply(x.data(), y.data());
  ref->apply(x.data(), y_ref.data());
  double scale = 0.0;
  for (double v : y_ref) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], y_ref[i], 1e-8 * std::max(1.0, scale))
        << "seed " << seed << " config " << cfg.gpu.describe();
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, RandomConfigSweep,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------------
// Batched-apply invariants: F is linear and symmetric, so those properties
// must survive the device-side block paths — checked *within* one batch,
// which exercises cross-column independence of the multi-RHS kernels.
// ---------------------------------------------------------------------------

class BatchedApplySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchedApplySweep, BatchedApplyIsLinearAndSymmetricPerColumn) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 101 + 7);
  decomp::FetiProblem p = [&] {
    mesh::Mesh m = mesh::make_grid_2d(6, 6, mesh::ElementOrder::Linear);
    auto dec = mesh::decompose_2d(m, 6, 6, 2, 2);
    return decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
  }();
  static gpu::ExecutionContext dev([] {
    gpu::DeviceConfig cfg;
    cfg.worker_threads = 4;
    cfg.launch_latency_us = 0.0;
    cfg.memory_bytes = 256ull << 20;
    return cfg;
  }());

  // One representative of every GPU family, including a sharded one and
  // the sparsity-aware variants of each explicit GPU family.
  const char* keys[] = {"expl legacy",    "expl modern",    "impl legacy",
                        "impl modern",    "expl hybrid",    "impl legacy x2",
                        "expl legacy sp", "expl modern sp", "expl hybrid sp",
                        "expl legacy sp x2"};
  const std::string key = keys[seed % (sizeof(keys) / sizeof(keys[0]))];
  core::DualOpConfig cfg =
      core::recommend_config(key, 2, p.max_subdomain_dofs());
  auto op = core::make_dual_operator(p, cfg, &dev);
  op->prepare();
  op->update_values();

  const std::size_t n = static_cast<std::size_t>(p.num_lambdas);
  const idx nrhs = 3;
  const double alpha = rng.uniform(0.5, 2.0);
  // Batch columns: [x, y, alpha * x].
  std::vector<double> xblk(n * nrhs);
  for (std::size_t i = 0; i < n; ++i) {
    xblk[i] = rng.uniform(-1, 1);
    xblk[n + i] = rng.uniform(-1, 1);
    xblk[2 * n + i] = alpha * xblk[i];
  }
  std::vector<double> yblk(xblk.size(), 0.0);
  op->apply(xblk.data(), yblk.data(), nrhs);
  EXPECT_EQ(op->loop_fallback_count(), 0) << key;

  const double* fx = yblk.data();
  const double* fy = yblk.data() + n;
  const double* fax = yblk.data() + 2 * n;
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    scale = std::max(scale, std::fabs(fx[i]));
  // Linearity per column: F(alpha x) = alpha F(x) within one batch.
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(fax[i], alpha * fx[i],
                1e-9 * std::max(1.0, alpha * scale))
        << "key " << key << " seed " << seed;
  // Symmetry across two columns of one batch: x^T (F y) = y^T (F x).
  const double xfy = la::dot(p.num_lambdas, xblk.data(), fy);
  const double yfx = la::dot(p.num_lambdas, xblk.data() + n, fx);
  EXPECT_NEAR(xfy, yfx, 1e-8 * std::max(1.0, std::fabs(xfy)))
      << "key " << key << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, BatchedApplySweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Sparsity-aware assembly under irregular boundary widths: rectangular
// grids with asymmetric splits give every subdomain a different boundary
// DOF count (corner, edge, and interior subdomains), so the boundary-local
// renumbering, the nb-column solve panels, and the expansion SpMMs all run
// with mismatched shapes across one problem.
// ---------------------------------------------------------------------------

class IrregularBoundarySweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IrregularBoundarySweep, SpAssemblyMatchesImplicitOnIrregularGrids) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 211 + 5);
  const idx cx = static_cast<idx>(rng.integer(6, 10));
  const idx cy = static_cast<idx>(rng.integer(4, 8));
  const idx sx = static_cast<idx>(rng.integer(2, 3));
  const idx sy = static_cast<idx>(rng.integer(2, 3));
  decomp::FetiProblem p = [&] {
    mesh::Mesh m = mesh::make_grid_2d(cx, cy, mesh::ElementOrder::Linear);
    auto dec = mesh::decompose_2d(m, cx, cy, sx, sy);
    return decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
  }();

  // The decomposition really is irregular: at least two distinct boundary
  // widths. Tiny subdomains may be all-boundary (nb == ndof) — the sp
  // path must survive that degenerate width alongside interior-heavy
  // neighbours in the same problem.
  idx nb_min = p.max_subdomain_dofs(), nb_max = 0;
  long total_nb = 0;
  for (idx s = 0; s < p.num_subdomains(); ++s) {
    const idx nb = decomp::boundary_dofs(p.sub[s]).count();
    EXPECT_GT(nb, 0) << "subdomain " << s;
    EXPECT_LE(nb, p.sub[s].ndof()) << "subdomain " << s;
    nb_min = std::min(nb_min, nb);
    nb_max = std::max(nb_max, nb);
    total_nb += nb;
  }
  EXPECT_LT(nb_min, nb_max) << "grid " << cx << "x" << cy << " splits "
                            << sx << "x" << sy;

  static gpu::ExecutionContext dev([] {
    gpu::DeviceConfig cfg;
    cfg.worker_threads = 4;
    cfg.launch_latency_us = 0.0;
    cfg.memory_bytes = 256ull << 20;
    return cfg;
  }());
  const char* keys[] = {"expl legacy sp", "expl modern sp", "expl hybrid sp",
                        "expl mkl sp"};
  const std::string key = keys[seed % (sizeof(keys) / sizeof(keys[0]))];
  core::DualOpConfig cfg =
      core::recommend_config(key, 2, p.max_subdomain_dofs());
  auto op = core::make_dual_operator(p, cfg, &dev);
  op->prepare();
  op->update_values();
  EXPECT_EQ(op->solve_columns(), total_nb) << key;

  // F̃ y must equal the matrix-free B K⁺ Bᵀ y of the implicit reference.
  core::DualOpConfig ref_cfg;
  ref_cfg.approach = core::Approach::ImplMkl;
  auto ref = core::make_dual_operator(p, ref_cfg, nullptr);
  ref->prepare();
  ref->update_values();

  std::vector<double> x(static_cast<std::size_t>(p.num_lambdas));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y(x.size(), 0.0), y_ref(x.size(), 0.0);
  op->apply(x.data(), y.data());
  ref->apply(x.data(), y_ref.data());
  EXPECT_EQ(op->loop_fallback_count(), 0) << key;
  double scale = 0.0;
  for (double v : y_ref) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], y_ref[i], 1e-8 * std::max(1.0, scale))
        << "key " << key << " seed " << seed << " grid " << cx << "x" << cy;
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, IrregularBoundarySweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace feti
