#include "core/projector.hpp"

#include <cmath>

#include "core/krylov_recycler.hpp"
#include "gpu/blas.hpp"
#include "gpu/kernels.hpp"
#include "gpu/runtime.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"

namespace feti::core {

Projector::Projector(const decomp::FetiProblem& p) : p_(p) {
  const idx nl = p.num_lambdas;
  const idx rt = p.total_kernel_dim();
  g_ = la::DenseMatrix(nl, rt, la::Layout::ColMajor);

  idx off = 0;
  for (const auto& fs : p.sub) {
    const idx r = fs.kernel_dim();
    std::vector<double> brj(static_cast<std::size_t>(fs.num_local_lambdas()));
    for (idx j = 0; j < r; ++j) {
      const double* rcol = fs.r.data() + static_cast<widx>(j) * fs.ndof();
      la::spmv(1.0, fs.b, rcol, 0.0, brj.data());
      double* gcol = g_.data() + static_cast<widx>(off + j) * nl;
      for (std::size_t i = 0; i < fs.lm_l2c.size(); ++i)
        gcol[fs.lm_l2c[i]] += brj[i];
    }
    off += r;
  }

  gtg_ = la::DenseMatrix(rt, rt, la::Layout::ColMajor);
  la::gemm(1.0, g_.cview(), la::Trans::Yes, g_.cview(), la::Trans::No, 0.0,
           gtg_.view());
  check(la::potrf_lower(gtg_.view()),
        "Projector: G^T G is singular — check subdomain kernels");
}

Projector::~Projector() {
  if (dev_ == nullptr) return;
  dev_->synchronize();
  dev_->free(g_dev_);
  if (s_dev_ != nullptr) dev_->free(s_dev_);
}

void Projector::coarse_solve(std::vector<double>& s) const {
  coarse_solve(s.data());
}

void Projector::coarse_solve(double* s) const {
  la::trsv(la::Uplo::Lower, la::Trans::No, gtg_.cview(), s);
  la::trsv(la::Uplo::Lower, la::Trans::Yes, gtg_.cview(), s);
}

void Projector::ensure_device(gpu::Device& dev, gpu::Stream& s,
                              std::size_t cols) const {
  check(dev_ == nullptr || dev_ == &dev,
        "Projector: device mirror already bound to another device");
  const std::size_t rt = static_cast<std::size_t>(g_.cols());
  if (dev_ == nullptr) {
    dev_ = &dev;
    g_dev_ = dev.alloc_n<double>(g_.size());
    s.memcpy_h2d(g_dev_, g_.data(), g_.size() * sizeof(double));
  }
  if (s_cap_ < cols) {
    if (s_dev_ != nullptr) {
      dev.synchronize();
      dev.free(s_dev_);
      s_dev_ = nullptr;
      s_cap_ = 0;
    }
    s_dev_ = dev.alloc_n<double>(rt * cols);
    s_cap_ = cols;
  }
  if (s_host_.size() < rt * cols) s_host_.resize(rt * cols);
}

void Projector::apply_device(gpu::Device& dev, gpu::Stream& s,
                             const std::vector<const double*>& xs,
                             const std::vector<double*>& ys) const {
  check(xs.size() == ys.size(), "Projector: apply_device size mismatch");
  if (xs.empty()) return;
  const idx nl = p_.num_lambdas;
  const idx rt = g_.cols();
  ensure_device(dev, s, xs.size());
  const gpu::DeviceDense g{g_dev_, nl, rt, nl, la::Layout::ColMajor};

  // One fused submission: sᵦ = Gᵀ xᵦ for every column of the call (the
  // same la::gemv per column as the host apply, batched to amortize the
  // kernel launch latency).
  double* s_dev = s_dev_;
  s.submit([g, s_dev, rt, xs] {
    for (std::size_t b = 0; b < xs.size(); ++b)
      la::gemv(1.0, g.cview(), la::Trans::Yes, xs[b], 0.0,
               s_dev + b * static_cast<std::size_t>(rt));
  });
  const std::size_t bytes =
      static_cast<std::size_t>(rt) * xs.size() * sizeof(double);
  s.memcpy_d2h(s_host_.data(), s_dev, bytes);
  s.synchronize();
  // Host-side coarse solves on the small packed block (the only data of
  // this apply that crosses PCIe), then back to the device.
  for (std::size_t b = 0; b < xs.size(); ++b)
    coarse_solve(s_host_.data() + b * static_cast<std::size_t>(rt));
  s.memcpy_h2d(s_dev, s_host_.data(), bytes);
  // One fused submission for the rank-rt update yᵦ = xᵦ − G sᵦ.
  s.submit([g, s_dev, nl, rt, xs, ys] {
    for (std::size_t b = 0; b < ys.size(); ++b) {
      std::copy_n(xs[b], nl, ys[b]);
      la::gemv(-1.0, g.cview(), la::Trans::No,
               s_dev + b * static_cast<std::size_t>(rt), 1.0, ys[b]);
    }
  });
}

void Projector::apply(const double* x, double* y) const {
  const idx nl = p_.num_lambdas;
  std::vector<double> s(static_cast<std::size_t>(g_.cols()));
  la::gemv(1.0, g_.cview(), la::Trans::Yes, x, 0.0, s.data());
  coarse_solve(s);
  std::copy_n(x, nl, y);
  la::gemv(-1.0, g_.cview(), la::Trans::No, s.data(), 1.0, y);
}

void Projector::apply_deflated(const double* x, double* y,
                               const KrylovRecycler& recycler) const {
  apply(x, y);
  if (recycler.dim() == 0) return;
  check(recycler.n() == p_.num_lambdas,
        "Projector: deflation panel dimension mismatch");
  recycler.project_out(y, 1);
}

std::vector<double> Projector::compute_e() const {
  std::vector<double> e(static_cast<std::size_t>(g_.cols()), 0.0);
  idx off = 0;
  for (const auto& fs : p_.sub) {
    for (idx j = 0; j < fs.kernel_dim(); ++j) {
      const double* rcol = fs.r.data() + static_cast<widx>(j) * fs.ndof();
      e[off + j] = la::dot(fs.ndof(), rcol, fs.sys.f.data());
    }
    off += fs.kernel_dim();
  }
  return e;
}

void Projector::initial_lambda(double* lambda0) const {
  std::vector<double> s = compute_e();
  coarse_solve(s);
  std::fill_n(lambda0, p_.num_lambdas, 0.0);
  la::gemv(1.0, g_.cview(), la::Trans::No, s.data(), 1.0, lambda0);
}

std::vector<double> Projector::alpha(const double* r) const {
  std::vector<double> s(static_cast<std::size_t>(g_.cols()));
  la::gemv(-1.0, g_.cview(), la::Trans::Yes, r, 0.0, s.data());
  coarse_solve(s);
  return s;
}

double Projector::gt_norm(const double* x) const {
  std::vector<double> s(static_cast<std::size_t>(g_.cols()));
  la::gemv(1.0, g_.cview(), la::Trans::Yes, x, 0.0, s.data());
  double m = 0.0;
  for (double v : s) m = std::max(m, std::fabs(v));
  return m;
}

void LumpedPreconditioner::apply(const double* x, double* y) const {
  std::fill_n(y, p_.num_lambdas, 0.0);
  for (const auto& fs : p_.sub) {
    std::vector<double> lam(static_cast<std::size_t>(fs.num_local_lambdas()));
    for (std::size_t i = 0; i < fs.lm_l2c.size(); ++i)
      lam[i] = x[fs.lm_l2c[i]];
    std::vector<double> t(static_cast<std::size_t>(fs.ndof()));
    std::vector<double> kt(static_cast<std::size_t>(fs.ndof()));
    la::spmv_trans(1.0, fs.b, lam.data(), 0.0, t.data());
    la::spmv(1.0, fs.sys.k, t.data(), 0.0, kt.data());
    la::spmv(1.0, fs.b, kt.data(), 0.0, lam.data());
    for (std::size_t i = 0; i < fs.lm_l2c.size(); ++i)
      y[fs.lm_l2c[i]] += lam[i];
  }
}

}  // namespace feti::core
