#include "decomp/kernel.hpp"

#include <cmath>

#include "la/blas_dense.hpp"

namespace feti::decomp {

void orthonormalize_columns(la::DenseView a) {
  check(a.layout == la::Layout::ColMajor,
        "orthonormalize_columns: col-major storage required");
  for (idx j = 0; j < a.cols; ++j) {
    double* col = a.data + static_cast<widx>(j) * a.ld;
    for (idx k = 0; k < j; ++k) {
      const double* prev = a.data + static_cast<widx>(k) * a.ld;
      const double proj = la::dot(a.rows, prev, col);
      la::axpy(a.rows, -proj, prev, col);
    }
    const double norm = la::nrm2(a.rows, col);
    check(norm > 1e-12 * std::sqrt(static_cast<double>(a.rows)),
          "orthonormalize_columns: linearly dependent columns");
    la::scal(a.rows, 1.0 / norm, col);
  }
}

la::DenseMatrix build_kernel(const mesh::Mesh& mesh, fem::Physics physics) {
  const int dim = mesh.dim;
  const int r = kernel_dim(physics, dim);
  const int dpn = fem::dofs_per_node(physics, dim);
  const idx ndof = mesh.num_nodes * dpn;
  la::DenseMatrix kernel(ndof, r, la::Layout::ColMajor);

  if (physics == fem::Physics::HeatTransfer) {
    for (idx n = 0; n < mesh.num_nodes; ++n) kernel.at(n, 0) = 1.0;
  } else {
    // Translations.
    for (int d = 0; d < dim; ++d)
      for (idx n = 0; n < mesh.num_nodes; ++n)
        kernel.at(n * dim + d, d) = 1.0;
    // Rotations (about the subdomain centroid for better conditioning).
    double centroid[3] = {0, 0, 0};
    for (idx n = 0; n < mesh.num_nodes; ++n)
      for (int d = 0; d < dim; ++d) centroid[d] += mesh.coord(n, d);
    for (int d = 0; d < dim; ++d) centroid[d] /= mesh.num_nodes;
    auto rel = [&](idx n, int d) { return mesh.coord(n, d) - centroid[d]; };
    if (dim == 2) {
      for (idx n = 0; n < mesh.num_nodes; ++n) {
        kernel.at(n * 2 + 0, 2) = -rel(n, 1);
        kernel.at(n * 2 + 1, 2) = rel(n, 0);
      }
    } else {
      const int planes[3][2] = {{0, 1}, {1, 2}, {0, 2}};
      for (int p = 0; p < 3; ++p)
        for (idx n = 0; n < mesh.num_nodes; ++n) {
          kernel.at(n * 3 + planes[p][0], 3 + p) = -rel(n, planes[p][1]);
          kernel.at(n * 3 + planes[p][1], 3 + p) = rel(n, planes[p][0]);
        }
    }
  }
  orthonormalize_columns(kernel.view());
  return kernel;
}

}  // namespace feti::decomp
