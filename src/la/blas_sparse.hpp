#pragma once

// Sparse BLAS-like kernels on CSR operands: SpMV, SpMM, and sparse
// triangular solves with vector or dense right-hand sides. These are the
// sequential CPU reference implementations; the virtual GPU library provides
// the level-scheduled ("legacy") and generic-API ("modern") variants.

#include "la/csr.hpp"
#include "la/dense.hpp"

namespace feti::la {

/// y = alpha * A * x + beta * y.
void spmv(double alpha, CsrView a, const double* x, double beta,
          double* y);

/// y = alpha * A^T * x + beta * y.
void spmv_trans(double alpha, CsrView a, const double* x, double beta,
                double* y);

/// C = alpha * op(A) * B + beta * C with sparse A (CSR) and dense B, C.
void spmm(double alpha, CsrView a, Trans ta, ConstDenseView b, double beta,
          DenseView c);

/// In-place sparse triangular solve op(T) x = x. `uplo` names the triangle
/// the stored matrix occupies; rows must be sorted and the diagonal present.
void sp_trsv(Uplo uplo, Trans trans, CsrView t, double* x);

/// In-place sparse triangular solve with a dense multi-column RHS:
/// op(T) X = B, X overwriting B. Row-major B vectorizes across columns.
void sp_trsm(Uplo uplo, Trans trans, CsrView t, DenseView b);

}  // namespace feti::la
