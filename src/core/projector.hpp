#pragma once

// The FETI projector P = I − G (GᵀG)⁻¹ Gᵀ with G = B R (eq. (8)), the
// coarse-problem solves behind it, and the kernel coefficients α (eq. (9)).

#include <vector>

#include "decomp/feti_problem.hpp"
#include "la/dense.hpp"

namespace feti::gpu {
class Device;
class Stream;
}  // namespace feti::gpu

namespace feti::core {

class KrylovRecycler;

class Projector {
 public:
  /// Builds G column-block by column-block (G_i = B̃ᵢ Rᵢ scattered through
  /// the subdomain→cluster multiplier maps), assembles and factorizes GᵀG,
  /// and computes e = Rᵀ f.
  explicit Projector(const decomp::FetiProblem& p);

  ~Projector();

  /// y = P x.
  void apply(const double* x, double* y) const;

  /// Device-resident apply for the device-state PCPG mode: xs[b] and ys[b]
  /// are device column pointers on `dev`. The G-panel products run as
  /// gpu::blas submissions against a lazily uploaded device copy of G (G is
  /// immutable after construction); only the kernel_total()-length coarse
  /// right-hand sides cross PCIe — the (GᵀG)⁻¹ coarse solve itself stays
  /// host-side, exactly like the host apply. All columns of one call cost
  /// two fused kernel submissions + one D2H/H2D scalar-block pair. Bit-identical
  /// to per-column apply() (same la:: calls on the same operands in the
  /// same per-column order).
  void apply_device(gpu::Device& dev, gpu::Stream& s,
                    const std::vector<const double*>& xs,
                    const std::vector<double*>& ys) const;

  /// Deflation-augmented apply: y = (I − U (UᵀFU)⁻¹ (FU)ᵀ) P x for the
  /// recycled panel U (GᵀU = 0 holds since the columns are former PCPG
  /// search directions, so the two projections commute). The result stays
  /// in the projector's range AND F-orthogonal to span(U) — the
  /// per-iteration contract of deflated PCPG. The small Gram solve lives
  /// in the recycler (core/krylov_recycler.hpp); empty panels degrade to
  /// the plain apply.
  void apply_deflated(const double* x, double* y,
                      const KrylovRecycler& recycler) const;

  /// λ₀ = G (GᵀG)⁻¹ e — the initial multiplier satisfying Gᵀλ = e. The
  /// vector e = Rᵀ f is recomputed from the problem's current load vectors,
  /// so multi-step simulations with changing values stay consistent.
  void initial_lambda(double* lambda0) const;

  /// α = −(GᵀG)⁻¹ Gᵀ r with r = d − Fλ (eq. (9)).
  [[nodiscard]] std::vector<double> alpha(const double* r) const;

  /// e = Rᵀ f from the problem's current load vectors.
  [[nodiscard]] std::vector<double> compute_e() const;
  [[nodiscard]] idx kernel_total() const { return g_.cols(); }

  /// ‖Gᵀ x‖∞ — test/diagnostic helper (should vanish for projected x).
  [[nodiscard]] double gt_norm(const double* x) const;

 private:
  /// t = (GᵀG)⁻¹ s via the Cholesky factor.
  void coarse_solve(std::vector<double>& s) const;
  /// Raw-pointer variant for the packed coarse blocks of apply_device.
  void coarse_solve(double* s) const;
  /// Uploads G (once) and sizes the coarse staging block for `cols`
  /// columns on `dev`. One device per projector instance.
  void ensure_device(gpu::Device& dev, gpu::Stream& s,
                     std::size_t cols) const;

  const decomp::FetiProblem& p_;
  la::DenseMatrix g_;        ///< num_lambdas x total_kernel, col-major
  la::DenseMatrix gtg_;      ///< Cholesky factor (lower) of GᵀG

  // Lazily created device mirror for apply_device (logically const: G never
  // changes after construction, so the mirror is a cache).
  mutable gpu::Device* dev_ = nullptr;
  mutable double* g_dev_ = nullptr;       ///< device copy of g_
  mutable double* s_dev_ = nullptr;       ///< coarse RHS block, rt × cols
  mutable std::size_t s_cap_ = 0;         ///< columns s_dev_ can hold
  mutable std::vector<double> s_host_;    ///< host staging for coarse solves
};

/// The lumped preconditioner M = Σᵢ B̃ᵢ Kᵢ B̃ᵢᵀ (applied with the original,
/// singular subdomain stiffness).
class LumpedPreconditioner {
 public:
  explicit LumpedPreconditioner(const decomp::FetiProblem& p) : p_(p) {}
  void apply(const double* x, double* y) const;

 private:
  const decomp::FetiProblem& p_;
};

}  // namespace feti::core
