// Reproduces Fig. 7 of the paper: the speedup of the best dual-operator
// approach relative to the traditional CPU implicit approach ("impl mkl"),
// as a function of the PCPG iteration count, per subdomain size. The start
// of each curve (speedup > 1) is the amortization point.

#include "common.hpp"

using namespace feti;
using namespace feti::bench;

int main() {
  gpu::ExecutionContext& device = shared_context();
  const auto approaches = core::all_approaches();
  const std::vector<int> iteration_grid = {1,   3,    10,   30,  100,
                                           300, 1000, 3000, 10000};

  for (int dim : {2, 3}) {
    const std::vector<idx> cells = dim == 2 ? std::vector<idx>{4, 12, 32}
                                            : std::vector<idx>{3, 6, 10};
    std::printf("\n=== Fig. 7: heat transfer %dD — speedup of the best "
                "approach vs impl mkl ===\n",
                dim);
    std::vector<std::string> header{"DOFs/subdomain"};
    for (int k : iteration_grid) header.push_back("k=" + std::to_string(k));
    header.push_back("amortization k");
    Table table(header);

    bool speedup_grows = false;
    for (idx c : cells) {
      BuiltProblem bp = build_problem(dim, fem::Physics::HeatTransfer, c,
                                      mesh::ElementOrder::Linear);
      std::vector<DualOpTiming> t;
      DualOpTiming ref;
      for (core::Approach a : approaches) {
        t.push_back(measure_dualop(
            bp.problem, config_for(a, dim, bp.dofs_per_subdomain), device));
        if (a == core::Approach::ImplMkl) ref = t.back();
      }
      std::vector<std::string> row{std::to_string(bp.dofs_per_subdomain)};
      double first_amortized = -1.0;
      double last_speedup = 0.0;
      for (int k : iteration_grid) {
        const double ref_total = ref.preprocess_ms + k * ref.apply_ms;
        double best = 1e300;
        for (const auto& ti : t)
          best = std::min(best, ti.preprocess_ms + k * ti.apply_ms);
        const double speedup = ref_total / best;
        row.push_back(Table::num(speedup, 2));
        last_speedup = speedup;
      }
      // Amortization point: smallest k where some non-reference approach
      // with faster application beats impl mkl in total time.
      for (std::size_t i = 0; i < approaches.size(); ++i) {
        if (approaches[i] == core::Approach::ImplMkl) continue;
        if (t[i].apply_ms < ref.apply_ms) {
          const double k = (t[i].preprocess_ms - ref.preprocess_ms) /
                           (ref.apply_ms - t[i].apply_ms);
          const double ka = std::max(0.0, k);
          if (first_amortized < 0 || ka < first_amortized)
            first_amortized = ka;
        }
      }
      row.push_back(first_amortized < 0 ? "never"
                                        : Table::num(first_amortized, 1));
      table.add_row(row);
      if (last_speedup > 1.0) speedup_grows = true;
    }
    table.print();
    shape_check(
        "for high iteration counts the best approach is faster than the "
        "implicit CPU baseline (speedup > 1)",
        speedup_grows);
  }
  return 0;
}
