#pragma once

// Dense matrix containers and views.
//
// The paper's assembly parameter space (Table I) includes the memory order of
// the dense factor and of the right-hand side, so layout is a runtime
// property here, and every dense kernel in la/blas_dense.hpp handles both
// orders (with specialized fast paths where it matters).
//
// Views and containers are templated on the scalar type: fp64 is the
// assembly/solve precision everywhere, and fp32 aliases exist for the
// mixed-precision storage of the explicit dual operators (F̃ assembled in
// fp64, demoted to fp32 storage, applied with fp64 accumulation — see the
// mixed-precision kernels in la/blas_dense.hpp).

#include <algorithm>
#include <vector>

#include "util/common.hpp"

namespace feti::la {

enum class Layout : std::uint8_t { RowMajor, ColMajor };

inline const char* to_string(Layout l) {
  return l == Layout::RowMajor ? "row-major" : "col-major";
}

/// Which triangle of a symmetric/triangular matrix is referenced.
enum class Uplo : std::uint8_t { Lower, Upper };

enum class Trans : std::uint8_t { No, Yes };

/// Non-owning mutable view of a dense matrix.
template <typename T>
struct DenseViewT {
  T* data = nullptr;
  idx rows = 0;
  idx cols = 0;
  idx ld = 0;  ///< leading dimension: row stride (RowMajor) or column stride
  Layout layout = Layout::ColMajor;

  [[nodiscard]] T& at(idx r, idx c) const {
    return layout == Layout::RowMajor ? data[static_cast<widx>(r) * ld + c]
                                      : data[static_cast<widx>(c) * ld + r];
  }
  [[nodiscard]] bool empty() const { return rows == 0 || cols == 0; }
};

/// Non-owning read-only view of a dense matrix.
template <typename T>
struct ConstDenseViewT {
  const T* data = nullptr;
  idx rows = 0;
  idx cols = 0;
  idx ld = 0;
  Layout layout = Layout::ColMajor;

  ConstDenseViewT() = default;
  ConstDenseViewT(const T* d, idx r, idx c, idx l, Layout lay)
      : data(d), rows(r), cols(c), ld(l), layout(lay) {}
  /// Implicit widening from a mutable view.
  ConstDenseViewT(const DenseViewT<T>& v)  // NOLINT(google-explicit-constructor)
      : data(v.data), rows(v.rows), cols(v.cols), ld(v.ld), layout(v.layout) {}

  [[nodiscard]] T at(idx r, idx c) const {
    return layout == Layout::RowMajor ? data[static_cast<widx>(r) * ld + c]
                                      : data[static_cast<widx>(c) * ld + r];
  }
  [[nodiscard]] bool empty() const { return rows == 0 || cols == 0; }
};

using DenseView = DenseViewT<double>;
using ConstDenseView = ConstDenseViewT<double>;
using DenseViewF32 = DenseViewT<float>;
using ConstDenseViewF32 = ConstDenseViewT<float>;

/// Owning dense matrix. Storage is zero-initialized.
template <typename T>
class DenseMatrixT {
 public:
  DenseMatrixT() = default;
  DenseMatrixT(idx rows, idx cols, Layout layout = Layout::ColMajor)
      : rows_(rows), cols_(cols), layout_(layout),
        ld_(layout == Layout::RowMajor ? cols : rows),
        data_(static_cast<std::size_t>(
                  std::max<widx>(1, static_cast<widx>(ld_)) *
                  (layout == Layout::RowMajor ? rows : cols)),
              T(0)) {
    check(rows >= 0 && cols >= 0, "DenseMatrix: negative dimension");
  }

  [[nodiscard]] idx rows() const { return rows_; }
  [[nodiscard]] idx cols() const { return cols_; }
  [[nodiscard]] Layout layout() const { return layout_; }
  [[nodiscard]] idx ld() const { return ld_; }

  [[nodiscard]] T& at(idx r, idx c) { return view().at(r, c); }
  [[nodiscard]] T at(idx r, idx c) const { return cview().at(r, c); }

  [[nodiscard]] DenseViewT<T> view() {
    return {data_.data(), rows_, cols_, ld_, layout_};
  }
  [[nodiscard]] ConstDenseViewT<T> cview() const {
    return {data_.data(), rows_, cols_, ld_, layout_};
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  void set_zero() { std::fill(data_.begin(), data_.end(), T(0)); }

 private:
  idx rows_ = 0;
  idx cols_ = 0;
  Layout layout_ = Layout::ColMajor;
  idx ld_ = 0;
  std::vector<T> data_;
};

using DenseMatrix = DenseMatrixT<double>;
using DenseMatrixF32 = DenseMatrixT<float>;

/// Copies `src` into `dst` element-wise (layouts may differ).
void copy(ConstDenseView src, DenseView dst);

/// Max-abs difference between two equally sized views (test helper).
double max_abs_diff(ConstDenseView a, ConstDenseView b);

/// Mirrors the stored triangle of a symmetric matrix to the other triangle.
void symmetrize_from(DenseView a, Uplo stored);

/// Demotes fp64 storage to fp32: dst(i, j) = float(src(i, j)) over the full
/// rectangle (layouts/leading dimensions may differ).
void demote(ConstDenseView src, DenseViewF32 dst);

/// Triangle-only demotion for symmetric-packed storage: only the `uplo`
/// triangle (diagonal included) of `dst` is written, so two matrices
/// sharing one allocation with opposite triangles stay disjoint.
void demote_triangle(Uplo uplo, ConstDenseView src, DenseViewF32 dst);

}  // namespace feti::la
