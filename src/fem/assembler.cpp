#include "fem/assembler.hpp"

#include <algorithm>

#include "sparse/solver.hpp"

namespace feti::fem {

namespace {

/// Shared element loop: scatters element systems into triplets + load.
void assemble_into(const mesh::Mesh& m, Physics phys, const Material& mat,
                   std::vector<la::Triplet>& triplets,
                   std::vector<double>& f) {
  const int dim = m.dim;
  const int npe = mesh::nodes_per_element(m.type);
  const int dpn = dofs_per_node(phys, dim);
  const int ndof_e = npe * dpn;
  la::DenseMatrix ke(ndof_e, ndof_e, la::Layout::RowMajor);
  std::vector<double> fe(static_cast<std::size_t>(ndof_e));
  std::vector<double> coords(static_cast<std::size_t>(npe) * dim);
  for (idx e = 0; e < m.num_elements(); ++e) {
    const idx* en = m.element(e);
    for (int a = 0; a < npe; ++a)
      for (int d = 0; d < dim; ++d)
        coords[static_cast<std::size_t>(a) * dim + d] = m.coord(en[a], d);
    element_system(phys, m.type, coords.data(), mat, ke.view(), fe.data());
    for (int a = 0; a < ndof_e; ++a) {
      const idx ga = en[a / dpn] * dpn + a % dpn;
      f[ga] += fe[a];
      for (int b = 0; b < ndof_e; ++b) {
        const idx gb = en[b / dpn] * dpn + b % dpn;
        triplets.push_back({ga, gb, ke.at(a, b)});
      }
    }
  }
}

std::vector<idx> dirichlet_dof_list(const mesh::Mesh& m, int dpn) {
  std::vector<idx> dofs;
  dofs.reserve(m.dirichlet_nodes.size() * dpn);
  for (idx node : m.dirichlet_nodes)
    for (int c = 0; c < dpn; ++c) dofs.push_back(node * dpn + c);
  std::sort(dofs.begin(), dofs.end());
  return dofs;
}

}  // namespace

SubdomainSystem assemble(const mesh::Mesh& m, Physics phys,
                         const Material& mat) {
  SubdomainSystem sys;
  sys.dofs_per_node = dofs_per_node(phys, m.dim);
  sys.ndof = m.num_nodes * sys.dofs_per_node;
  sys.f.assign(static_cast<std::size_t>(sys.ndof), 0.0);
  std::vector<la::Triplet> triplets;
  assemble_into(m, phys, mat, triplets, sys.f);
  sys.k = la::Csr::from_triplets(sys.ndof, sys.ndof, std::move(triplets));
  sys.dirichlet_dofs = dirichlet_dof_list(m, sys.dofs_per_node);
  return sys;
}

GlobalSystem assemble_global(const mesh::Mesh& m, Physics phys,
                             const Material& mat) {
  GlobalSystem sys;
  sys.dofs_per_node = dofs_per_node(phys, m.dim);
  sys.ndof = m.num_nodes * sys.dofs_per_node;
  sys.f.assign(static_cast<std::size_t>(sys.ndof), 0.0);
  std::vector<la::Triplet> triplets;
  assemble_into(m, phys, mat, triplets, sys.f);
  sys.k = la::Csr::from_triplets(sys.ndof, sys.ndof, std::move(triplets));
  sys.dirichlet_dofs = dirichlet_dof_list(m, sys.dofs_per_node);
  return sys;
}

std::vector<double> reference_solve(const GlobalSystem& sys) {
  const idx n = sys.ndof;
  // Map free DOFs to a compact range.
  std::vector<idx> free_of(static_cast<std::size_t>(n), -1);
  idx nfree = 0;
  {
    std::size_t d = 0;
    for (idx i = 0; i < n; ++i) {
      if (d < sys.dirichlet_dofs.size() && sys.dirichlet_dofs[d] == i) {
        ++d;
        continue;
      }
      free_of[i] = nfree++;
    }
  }
  std::vector<la::Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(sys.k.nnz()));
  for (idx r = 0; r < n; ++r) {
    if (free_of[r] == -1) continue;
    for (idx k = sys.k.row_begin(r); k < sys.k.row_end(r); ++k) {
      const idx c = sys.k.col(k);
      if (free_of[c] == -1) continue;  // homogeneous boundary: drop column
      triplets.push_back({free_of[r], free_of[c], sys.k.val(k)});
    }
  }
  la::Csr kr = la::Csr::from_triplets(nfree, nfree, std::move(triplets));
  std::vector<double> fr(static_cast<std::size_t>(nfree));
  for (idx i = 0; i < n; ++i)
    if (free_of[i] != -1) fr[free_of[i]] = sys.f[i];

  auto solver = sparse::make_solver(sparse::Backend::Supernodal);
  solver->analyze(kr, sparse::OrderingKind::MinimumDegree);
  solver->factorize(kr);
  std::vector<double> xr(static_cast<std::size_t>(nfree));
  solver->solve(fr.data(), xr.data());

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (idx i = 0; i < n; ++i)
    if (free_of[i] != -1) x[i] = xr[free_of[i]];
  return x;
}

}  // namespace feti::fem
