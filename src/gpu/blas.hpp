#pragma once

// vcuBLAS: dense BLAS kernels with stream semantics (the cuBLAS substitute).
// Every call submits one stream-ordered operation and returns immediately.

#include "gpu/data.hpp"
#include "gpu/runtime.hpp"

namespace feti::gpu::blas {

/// y = alpha * op(A) * x + beta * y (x, y device pointers).
void gemv(Stream& s, double alpha, DeviceDense a, la::Trans trans,
          const double* x, double beta, double* y);

/// Symmetric y = alpha * A * x + beta * y, one stored triangle.
void symv(Stream& s, la::Uplo uplo, double alpha, DeviceDense a,
          const double* x, double beta, double* y);

/// Symmetric C = alpha * A * B + beta * C, one stored triangle of A — the
/// multi-RHS companion of symv (cublasDsymm analogue, left side).
void symm(Stream& s, la::Uplo uplo, double alpha, DeviceDense a,
          DeviceDense b, double beta, DeviceDense c);

/// In-place triangular solve op(A) X = B with dense factor.
void trsm(Stream& s, la::Uplo uplo, la::Trans trans, DeviceDense a,
          DeviceDense b);

/// C = alpha * op(A) op(A)^T + beta * C (one triangle written).
void syrk(Stream& s, la::Uplo uplo, la::Trans trans, double alpha,
          DeviceDense a, double beta, DeviceDense c);

/// C = alpha * op(A) op(B) + beta * C.
void gemm(Stream& s, double alpha, DeviceDense a, la::Trans ta, DeviceDense b,
          la::Trans tb, double beta, DeviceDense c);

}  // namespace feti::gpu::blas
