#include "decomp/regularization.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace feti::decomp {

std::vector<idx> select_fixing_dofs(const mesh::Mesh& mesh,
                                    fem::Physics physics) {
  const int dim = mesh.dim;
  const int dpn = fem::dofs_per_node(physics, dim);

  // Bounding box.
  double lo[3] = {1e300, 1e300, 1e300}, hi[3] = {-1e300, -1e300, -1e300};
  for (idx n = 0; n < mesh.num_nodes; ++n)
    for (int d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], mesh.coord(n, d));
      hi[d] = std::max(hi[d], mesh.coord(n, d));
    }

  // Target points: centroid for heat; spread non-collinear (2D) or
  // non-coplanar (3D) corners for elasticity.
  std::vector<std::array<double, 3>> targets;
  if (physics == fem::Physics::HeatTransfer) {
    targets.push_back({(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2,
                       dim == 3 ? (lo[2] + hi[2]) / 2 : 0.0});
  } else if (dim == 2) {
    targets.push_back({lo[0], lo[1], 0});
    targets.push_back({hi[0], lo[1], 0});
    targets.push_back({lo[0], hi[1], 0});
  } else {
    targets.push_back({lo[0], lo[1], lo[2]});
    targets.push_back({hi[0], lo[1], lo[2]});
    targets.push_back({lo[0], hi[1], lo[2]});
    targets.push_back({lo[0], lo[1], hi[2]});
  }

  std::vector<idx> nodes;
  for (const auto& t : targets) {
    idx best = -1;
    double best_d = std::numeric_limits<double>::max();
    for (idx n = 0; n < mesh.num_nodes; ++n) {
      if (std::find(nodes.begin(), nodes.end(), n) != nodes.end()) continue;
      double d2 = 0.0;
      for (int d = 0; d < dim; ++d) {
        const double dd = mesh.coord(n, d) - t[d];
        d2 += dd * dd;
      }
      if (d2 < best_d) {
        best_d = d2;
        best = n;
      }
    }
    FETI_ASSERT(best >= 0, "select_fixing_dofs: no nodes available");
    nodes.push_back(best);
  }

  std::vector<idx> dofs;
  for (idx n : nodes)
    for (int c = 0; c < dpn; ++c) dofs.push_back(n * dpn + c);
  std::sort(dofs.begin(), dofs.end());
  return dofs;
}

Regularization regularize(const la::Csr& k, la::ConstDenseView kernel,
                          const mesh::Mesh& mesh, fem::Physics physics) {
  Regularization reg;
  reg.fixing_dofs = select_fixing_dofs(mesh, physics);
  const idx nf = static_cast<idx>(reg.fixing_dofs.size());
  const idx r = kernel.cols;
  check(nf >= r, "regularize: too few fixing DOFs for the kernel dimension");

  // rho scaled to the matrix magnitude keeps the regularized spectrum
  // balanced.
  double diag_sum = 0.0;
  for (idx i = 0; i < k.nrows(); ++i) diag_sum += k.at(i, i);
  reg.rho = diag_sum / k.nrows();

  // Dense fixing block: M M^T with M = kernel rows at the fixing DOFs.
  la::DenseMatrix m(nf, r, la::Layout::ColMajor);
  for (idx i = 0; i < nf; ++i)
    for (idx j = 0; j < r; ++j) m.at(i, j) = kernel.at(reg.fixing_dofs[i], j);

  std::vector<la::Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(k.nnz()) +
                   static_cast<std::size_t>(nf) * nf);
  for (idx row = 0; row < k.nrows(); ++row)
    for (idx p = k.row_begin(row); p < k.row_end(row); ++p)
      triplets.push_back({row, k.col(p), k.val(p)});
  for (idx i = 0; i < nf; ++i)
    for (idx j = 0; j < nf; ++j) {
      double v = 0.0;
      for (idx q = 0; q < r; ++q) v += m.at(i, q) * m.at(j, q);
      triplets.push_back({reg.fixing_dofs[i], reg.fixing_dofs[j],
                          reg.rho * v});
    }
  reg.k_reg = la::Csr::from_triplets(k.nrows(), k.ncols(), std::move(triplets));
  return reg;
}

}  // namespace feti::decomp
