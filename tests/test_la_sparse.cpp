// Tests for CSR containers and sparse kernels (SpMV/SpMM/sparse triangular
// solves) against dense references.

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"
#include "la/csr.hpp"
#include "util/rng.hpp"

namespace feti::la {
namespace {

Csr random_sparse(idx rows, idx cols, double density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (idx r = 0; r < rows; ++r)
    for (idx c = 0; c < cols; ++c)
      if (rng.uniform() < density) t.push_back({r, c, rng.uniform(-1.0, 1.0)});
  return Csr::from_triplets(rows, cols, std::move(t));
}

/// Sparse triangular matrix with full diagonal, ~density off-diagonal.
Csr random_sparse_triangular(idx n, Uplo uplo, double density,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (idx r = 0; r < n; ++r) {
    t.push_back({r, r, 2.0 + rng.uniform(0.0, 1.0)});
    for (idx c = 0; c < n; ++c) {
      const bool off = uplo == Uplo::Lower ? c < r : c > r;
      if (off && rng.uniform() < density)
        t.push_back({r, c, rng.uniform(-0.4, 0.4)});
    }
  }
  return Csr::from_triplets(n, n, std::move(t));
}

std::vector<double> random_vector(idx n, std::uint64_t seed) {
  std::vector<double> v(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(Csr, FromTripletsSumsDuplicatesAndSorts) {
  Csr m = Csr::from_triplets(
      2, 3, {{1, 2, 1.0}, {0, 1, 2.0}, {1, 2, 3.0}, {1, 0, 5.0}});
  m.validate();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, OutOfRangeTripletThrows) {
  EXPECT_THROW(Csr::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
}

TEST(Csr, TransposeRoundTrip) {
  Csr a = random_sparse(15, 9, 0.3, 21);
  Csr att = a.transposed().transposed();
  att.validate();
  EXPECT_EQ(att.nnz(), a.nnz());
  for (idx r = 0; r < a.nrows(); ++r)
    for (idx k = a.row_begin(r); k < a.row_end(r); ++k)
      EXPECT_DOUBLE_EQ(att.at(r, a.col(k)), a.val(k));
}

TEST(Csr, TransposeSwapsEntries) {
  Csr a = random_sparse(8, 12, 0.25, 22);
  Csr at = a.transposed();
  at.validate();
  EXPECT_EQ(at.nrows(), 12);
  EXPECT_EQ(at.ncols(), 8);
  for (idx r = 0; r < a.nrows(); ++r)
    for (idx k = a.row_begin(r); k < a.row_end(r); ++k)
      EXPECT_DOUBLE_EQ(at.at(a.col(k), r), a.val(k));
}

TEST(Csr, DenseRoundTrip) {
  Csr a = random_sparse(6, 7, 0.4, 23);
  for (Layout layout : {Layout::RowMajor, Layout::ColMajor}) {
    DenseMatrix d = a.to_dense(layout);
    Csr back = Csr::from_dense(d.cview());
    back.validate();
    EXPECT_EQ(back.nnz(), a.nnz());
    for (idx r = 0; r < a.nrows(); ++r)
      for (idx c = 0; c < a.ncols(); ++c)
        EXPECT_DOUBLE_EQ(back.at(r, c), a.at(r, c));
  }
}

TEST(Csr, PermutedSymmetricPreservesValues) {
  // Symmetric pattern matrix.
  Csr a = random_sparse(10, 10, 0.3, 24);
  DenseMatrix d = a.to_dense();
  DenseMatrix sym(10, 10);
  for (idx r = 0; r < 10; ++r)
    for (idx c = 0; c < 10; ++c) sym.at(r, c) = d.at(r, c) + d.at(c, r);
  Csr s = Csr::from_dense(sym.cview());
  std::vector<idx> perm = {3, 1, 4, 0, 9, 8, 6, 7, 2, 5};  // perm[new]=old
  Csr p = s.permuted_symmetric(perm);
  p.validate();
  for (idx r = 0; r < 10; ++r)
    for (idx c = 0; c < 10; ++c)
      EXPECT_DOUBLE_EQ(p.at(r, c), s.at(perm[r], perm[c]));
}

TEST(Csr, TriangleExtraction) {
  Csr a = random_sparse(9, 9, 0.5, 25);
  Csr up = a.triangle(Uplo::Upper);
  Csr lo = a.triangle(Uplo::Lower);
  up.validate();
  lo.validate();
  for (idx r = 0; r < 9; ++r)
    for (idx c = 0; c < 9; ++c) {
      if (c > r) {
        EXPECT_DOUBLE_EQ(up.at(r, c), a.at(r, c));
        EXPECT_DOUBLE_EQ(lo.at(r, c), 0.0);
      } else if (c < r) {
        EXPECT_DOUBLE_EQ(lo.at(r, c), a.at(r, c));
        EXPECT_DOUBLE_EQ(up.at(r, c), 0.0);
      } else {
        EXPECT_DOUBLE_EQ(up.at(r, c), a.at(r, c));
        EXPECT_DOUBLE_EQ(lo.at(r, c), a.at(r, c));
      }
    }
}

TEST(InvertPermutation, RoundTrips) {
  std::vector<idx> perm = {2, 0, 3, 1};
  auto inv = invert_permutation(perm);
  for (idx i = 0; i < 4; ++i) EXPECT_EQ(inv[perm[i]], i);
  EXPECT_THROW(invert_permutation({0, 0, 1}), std::invalid_argument);
}

TEST(Spmv, MatchesDense) {
  Csr a = random_sparse(14, 10, 0.3, 26);
  DenseMatrix d = a.to_dense();
  auto x = random_vector(10, 27);
  auto y = random_vector(14, 28);
  auto ref = y;
  gemv(1.3, d.cview(), Trans::No, x.data(), 0.7, ref.data());
  spmv(1.3, a, x.data(), 0.7, y.data());
  for (idx i = 0; i < 14; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

TEST(SpmvTrans, MatchesDense) {
  Csr a = random_sparse(14, 10, 0.3, 29);
  DenseMatrix d = a.to_dense();
  auto x = random_vector(14, 30);
  auto y = random_vector(10, 31);
  auto ref = y;
  gemv(-0.5, d.cview(), Trans::Yes, x.data(), 2.0, ref.data());
  spmv_trans(-0.5, a, x.data(), 2.0, y.data());
  for (idx i = 0; i < 10; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

class SpmmParam : public ::testing::TestWithParam<
                      std::tuple<Layout, Layout, Trans>> {};

TEST_P(SpmmParam, MatchesDenseGemm) {
  const auto [lb, lc, trans] = GetParam();
  Csr a = random_sparse(11, 8, 0.35, 32);
  const idx m = trans == Trans::No ? 11 : 8;
  const idx k = trans == Trans::No ? 8 : 11;
  DenseMatrix b(k, 5, lb);
  Rng rng(33);
  for (idx r = 0; r < k; ++r)
    for (idx c = 0; c < 5; ++c) b.at(r, c) = rng.uniform(-1.0, 1.0);
  DenseMatrix c(m, 5, lc);
  for (idx r = 0; r < m; ++r)
    for (idx j = 0; j < 5; ++j) c.at(r, j) = rng.uniform(-1.0, 1.0);
  DenseMatrix ref(m, 5, Layout::ColMajor);
  copy(c.cview(), ref.view());
  DenseMatrix ad = a.to_dense();
  gemm(1.1, ad.cview(), trans, b.cview(), Trans::No, 0.3, ref.view());
  spmm(1.1, a, trans, b.cview(), 0.3, c.view());
  EXPECT_LT(max_abs_diff(c.cview(), ref.cview()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SpmmParam,
    ::testing::Combine(::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Trans::No, Trans::Yes)));

class LaSpTrsmParam : public ::testing::TestWithParam<
                        std::tuple<Layout, Uplo, Trans>> {};

TEST_P(LaSpTrsmParam, SolvesAgainstDense) {
  const auto [lb, uplo, trans] = GetParam();
  const idx n = 20, w = 3;
  Csr t = random_sparse_triangular(n, uplo, 0.2, 34);
  DenseMatrix td = t.to_dense();
  DenseMatrix x_true(n, w, lb);
  Rng rng(35);
  for (idx r = 0; r < n; ++r)
    for (idx c = 0; c < w; ++c) x_true.at(r, c) = rng.uniform(-1.0, 1.0);
  // B = op(T) * X.
  DenseMatrix b(n, w, lb);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < w; ++j) {
      double acc = 0.0;
      for (idx p = 0; p < n; ++p) {
        const double tv =
            trans == Trans::No ? td.at(i, p) : td.at(p, i);
        acc += tv * x_true.at(p, j);
      }
      b.at(i, j) = acc;
    }
  sp_trsm(uplo, trans, t, b.view());
  EXPECT_LT(max_abs_diff(b.cview(), x_true.cview()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, LaSpTrsmParam,
    ::testing::Combine(::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Uplo::Upper, Uplo::Lower),
                       ::testing::Values(Trans::No, Trans::Yes)));

TEST(SpTrsv, MatchesSpTrsm) {
  const idx n = 16;
  Csr t = random_sparse_triangular(n, Uplo::Lower, 0.25, 36);
  auto b = random_vector(n, 37);
  auto b2 = b;
  sp_trsv(Uplo::Lower, Trans::Yes, t, b.data());
  DenseView bv{b2.data(), n, 1, n, Layout::ColMajor};
  sp_trsm(Uplo::Lower, Trans::Yes, t, bv);
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(b[i], b2[i], 1e-13);
}

TEST(Csr, EmptyMatrixBehaves) {
  Csr m(0, 0);
  m.validate();
  EXPECT_EQ(m.nnz(), 0);
  Csr t = m.transposed();
  EXPECT_EQ(t.nrows(), 0);
}

}  // namespace
}  // namespace feti::la
