// Ablation studies of the design choices the paper discusses in Section IV:
//  * the temporary pool allocator vs per-operation device allocations
//    (Section IV-A: "GPU memory allocations should be avoided in the hot
//    loop");
//  * the number of CUDA streams (multi-stream concurrency / copy-compute
//    overlap, Section IV-B);
//  * sensitivity to the kernel launch latency (the overhead that makes
//    small subdomains GPU-unfriendly).

#include "common.hpp"

using namespace feti;
using namespace feti::bench;

namespace {

double preprocess_ms_with_streams(decomp::FetiProblem& p, int streams,
                                  gpu::ExecutionContext& ctx) {
  core::DualOpConfig cfg;
  cfg.approach = core::Approach::ExplLegacy;
  cfg.gpu = core::recommend_options(gpu::sparse::Api::Legacy, 3,
                                    p.max_subdomain_dofs());
  cfg.gpu.streams = streams;
  return measure_dualop(p, cfg, ctx, 3, 0.02).preprocess_ms;
}

}  // namespace

int main() {
  // -- Ablation 1: pool allocator vs raw device allocations --------------
  {
    gpu::ExecutionContext ctx([] {
      gpu::DeviceConfig cfg;
      cfg.launch_latency_us = 0.0;
      cfg.memory_bytes = 512ull << 20;
      return cfg;
    }());
    ctx.init_workspace(/*reserve=*/64ull << 20);  // leave room for raw allocs
    gpu::Device& dev = ctx.device();
    constexpr int kRounds = 20000;
    constexpr std::size_t kBytes = 1 << 16;
    const double pool_s = measure_median_seconds(3, 0.05, [&] {
      for (int i = 0; i < kRounds; ++i) {
        void* a = dev.temp().alloc(kBytes);
        void* b = dev.temp().alloc(kBytes);
        dev.temp().free(b);
        dev.temp().free(a);
      }
    });
    const double raw_s = measure_median_seconds(3, 0.05, [&] {
      for (int i = 0; i < kRounds; ++i) {
        void* a = dev.alloc(kBytes);
        void* b = dev.alloc(kBytes);
        dev.free(b);
        dev.free(a);
      }
    });
    std::printf("=== Ablation: temporary-pool allocator vs device malloc "
                "(%d alloc/free pairs) ===\n",
                2 * kRounds);
    std::printf("  pool allocator: %.3f ms,  device alloc: %.3f ms,  "
                "speedup %.2fx\n\n",
                pool_s * 1e3, raw_s * 1e3, raw_s / pool_s);
    shape_check("reusing pooled temporary memory beats per-call device "
                "allocation",
                pool_s < raw_s);
  }

  // -- Ablation 2: stream count -------------------------------------------
  {
    gpu::ExecutionContext& ctx = shared_context();
    BuiltProblem bp = build_problem(3, fem::Physics::HeatTransfer, 6,
                                    mesh::ElementOrder::Linear);
    std::printf("\n=== Ablation: CUDA streams in explicit GPU preprocessing "
                "(heat 3D, %d DOFs/subdomain) ===\n",
                bp.dofs_per_subdomain);
    Table table({"streams", "preprocess/subdomain [ms]"});
    double t1 = 0, tbest = 1e300;
    for (int streams : {1, 2, 4, 8}) {
      const double ms = preprocess_ms_with_streams(bp.problem, streams, ctx);
      table.add_row({std::to_string(streams), Table::num(ms, 4)});
      if (streams == 1) t1 = ms;
      tbest = std::min(tbest, ms);
    }
    table.print();
    shape_check("multiple streams do not hurt preprocessing (concurrency "
                "across subdomains)",
                tbest <= t1 * 1.05);
  }

  // -- Ablation 3: launch-latency sensitivity -----------------------------
  {
    std::printf("\n=== Ablation: kernel launch latency vs application time "
                "(heat 2D, small subdomains) ===\n");
    Table table({"latency [us]", "apply/subdomain [ms]"});
    double t0 = 0, t8 = 0;
    for (double latency : {0.0, 2.0, 8.0}) {
      gpu::DeviceConfig cfg;
      cfg.launch_latency_us = latency;
      cfg.memory_bytes = 512ull << 20;
      gpu::ExecutionContext ctx(cfg);
      BuiltProblem bp = build_problem(2, fem::Physics::HeatTransfer, 6,
                                      mesh::ElementOrder::Linear);
      core::DualOpConfig c = config_for(core::Approach::ExplLegacy, 2,
                                        bp.dofs_per_subdomain);
      const double ms = measure_dualop(bp.problem, c, ctx, 3, 0.02).apply_ms;
      table.add_row({Table::num(latency, 1), Table::num(ms, 4)});
      if (latency == 0.0) t0 = ms;
      if (latency == 8.0) t8 = ms;
    }
    table.print();
    shape_check("higher launch latency inflates small-subdomain application "
                "time (the paper's GPU-overhead effect)",
                t8 > t0);
  }
  return 0;
}
