// Solver-as-a-service demo: several tenants share one SolverService.
//
// Three tenants with their own problems (two heat-transfer meshes of
// different sizes, one elasticity mesh) submit independent solve jobs —
// different operator keys (fp64 GPU, fp32 GPU, CPU), physical and
// load-multiplier right-hand sides. The service packs compatible jobs into
// batched waves, pools prepared operators per (problem, key) fingerprint,
// and overlaps different tenants' phases on separate device shards.
//
// The run shows the pooling lifecycle end to end: cold submissions miss
// and prepare, resubmissions hit, an unchanged tenant's resubmission even
// skips the numeric refresh (values_cached), and one tenant stepping its
// matrix never disturbs another tenant's pooled operator.

#include <cstdio>
#include <vector>

#include "service/solver_service.hpp"
#include "util/table.hpp"

int main() {
  using namespace feti;

  auto build = [](idx cells, idx splits, fem::Physics physics) {
    mesh::Mesh m = mesh::make_grid_2d(cells, cells, mesh::ElementOrder::Linear);
    auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
    return decomp::build_feti_problem(dec, physics);
  };
  decomp::FetiProblem heat_small = build(12, 2, fem::Physics::HeatTransfer);
  decomp::FetiProblem heat_big = build(24, 2, fem::Physics::HeatTransfer);
  decomp::FetiProblem elastic = build(12, 2, fem::Physics::LinearElasticity);
  std::printf("tenants: heat %d dofs, heat %d dofs, elasticity %d dofs\n\n",
              heat_small.global_dofs, heat_big.global_dofs,
              elastic.global_dofs);

  service::ServiceOptions options;
  options.num_shards = 2;
  options.pool_budget_bytes = 512ull << 20;
  service::SolverService svc(options);

  auto job = [](const decomp::FetiProblem& p, std::uint64_t tenant,
                const char* key) {
    service::SolveJob j;
    j.problem = &p;
    j.key = key;  // "" = autotuned from shape + pool occupancy
    j.tenant = tenant;
    j.pcpg.rel_tolerance = 1e-8;
    return j;
  };

  // Round 1 — every tenant's first job: pool misses, operators prepared.
  // Tenant 0 submits a burst of three identical jobs (load study) that the
  // service packs into one batched wave.
  std::vector<service::SolveJob> burst;
  for (int k = 0; k < 3; ++k)
    burst.push_back(job(heat_small, 0, "expl legacy"));
  std::vector<std::future<service::JobResult>> round1 =
      svc.submit(std::move(burst));
  round1.push_back(svc.submit(job(heat_big, 1, "expl legacy f32")));
  round1.push_back(svc.submit(job(elastic, 2, "")));

  Table table({"tenant", "key", "shard", "wave", "pool", "refresh", "iters",
               "latency [ms]"});
  auto report = [&table](const service::JobResult& r) {
    table.add_row({std::to_string(r.tenant), r.key,
                   std::to_string(r.shard), std::to_string(r.wave_size),
                   r.pool_hit ? (r.values_cached ? "hit+cached" : "hit")
                              : "miss",
                   std::to_string(r.refreshed_subdomains) + "/" +
                       std::to_string(r.refreshed_subdomains +
                                      r.skipped_subdomains),
                   std::to_string(r.pcpg_iterations),
                   Table::num(r.latency_seconds * 1e3, 2)});
  };
  for (auto& f : round1) report(f.get());

  // Round 2 — tenant 1 steps its matrix (new time step), tenants 0 and 2
  // resubmit unchanged: their pooled operators skip the numeric refresh
  // entirely, and tenant 1's refresh never touches them.
  decomp::scale_step(heat_big, 1.1);
  std::vector<std::future<service::JobResult>> round2;
  round2.push_back(svc.submit(job(heat_small, 0, "expl legacy")));
  round2.push_back(svc.submit(job(heat_big, 1, "expl legacy f32")));
  round2.push_back(svc.submit(job(elastic, 2, "")));
  for (auto& f : round2) report(f.get());
  table.print();

  const service::PoolStats ps = svc.pool_stats();
  const service::ServiceStats ss = svc.stats();
  std::printf("\npool: %ld hits, %ld misses, %ld evictions, %zu entries, "
              "%.1f MB resident (budget %.0f MB)\n",
              ps.hits, ps.misses, ps.evictions, ps.entries,
              static_cast<double>(ps.resident_bytes) / 1e6,
              static_cast<double>(ps.budget_bytes) / 1e6);
  std::printf("service: %ld jobs in %ld waves (%ld jobs shared a wave)\n",
              ss.completed, ss.waves, ss.batched_jobs);
  return 0;
}
