#pragma once

// SolverService — the concurrent multi-tenant solve-job subsystem.
//
// The service owns a gpu::DevicePool and a thread-safe queue of
// independent SolveJobs (different problems, sizes, operator keys,
// precisions, right-hand sides). Worker threads drain the queue in waves:
//
//  * compatible jobs (equal fingerprint + equal PCPG options) queued at
//    the same time are packed into one batched FetiSolver::solve_step_many
//    wave, so every PCPG iteration of the whole wave reaches the dual
//    operator as a single apply(X, Y, nrhs);
//  * prepared operators are pooled per fingerprint (OperatorPool) with LRU
//    eviction under a memory budget — a resubmitted fingerprint skips
//    prepare(), and when the tenant's K is also unchanged, the PR-4 dirty
//    tracking skips update_values() too (JobResult::values_cached);
//  * distinct fingerprints run on distinct shards of the device pool
//    (DevicePool::acquire steers new entries to the least-loaded shard),
//    so one tenant's update_values() overlaps another tenant's apply() on
//    separate devices and worker streams.
//
// Thread-safety contract per layer is documented in docs/ARCHITECTURE.md
// ("Service layer"): the service serializes the lifecycle of each pooled
// solver via exclusive checkout; tenants must not mutate a problem while
// one of its jobs is in flight.

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/autotune.hpp"
#include "service/operator_pool.hpp"

namespace feti::service {

struct ServiceOptions {
  /// Device shards in the pool — the maximum number of tenants whose GPU
  /// phases can genuinely overlap.
  int num_shards = 2;
  /// Worker threads draining the queue; 0 = one per shard.
  int workers = 0;
  /// Operator-pool budget (accounted bytes of pooled entries; 0 =
  /// unlimited). Also feeds the per-job autotune: a tight pool steers
  /// auto-keyed explicit jobs to the fp32 storage tier.
  std::size_t pool_budget_bytes = 0;
  /// Total device budget, split evenly across the shards
  /// (DevicePool::split_config). Defaults to the FETI_VGPU_* environment.
  gpu::DeviceConfig device = gpu::DeviceConfig::from_env();
  /// Pack compatible queued jobs into one solve_step_many wave. Off =
  /// every job solves alone (the serial baseline bench_service gates
  /// against).
  bool batch_waves = true;
  /// Upper bound on jobs per wave (bounds the lockstep block's memory).
  int max_wave = 8;
  /// Problem dimensionality hint for the per-job autotune (Table II).
  int autotune_dim = 2;
};

/// Aggregate service counters, snapshot by stats().
struct ServiceStats {
  long submitted = 0;
  long completed = 0;
  long waves = 0;         ///< solve_step_many calls issued
  long batched_jobs = 0;  ///< jobs that shared a wave with at least one other
};

class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});
  /// Drains the queue, then joins the workers.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueues one job; the future resolves when a worker completes it (or
  /// carries the worker's exception). Safe from any thread.
  std::future<JobResult> submit(SolveJob job);

  /// Burst submission — one queue lock for the whole batch, maximizing the
  /// wave-packing opportunity for compatible jobs.
  std::vector<std::future<JobResult>> submit(std::vector<SolveJob> jobs);

  /// Blocks until every submitted job has completed.
  void drain();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] PoolStats pool_stats() const { return pool_.stats(); }
  [[nodiscard]] gpu::DevicePool& device_pool() { return devices_; }

  /// The registry key the service would pick for `job` right now: an
  /// explicit job key is resolved as-is; an empty key is autotuned from
  /// the problem shape, the per-shard topology, and the current pool
  /// occupancy (remaining budget becomes the WorkloadHint memory budget,
  /// so a crowded pool demotes auto-keyed explicit jobs to fp32 storage).
  /// This is the dry-run hook behind `feti_cli --pool-stats`.
  [[nodiscard]] std::string plan_key(const SolveJob& job) const;

  /// Stateless planning core: what plan_key computes for a given topology
  /// and remaining pool budget (0 = no memory pressure signal).
  [[nodiscard]] static core::DualOpConfig plan_config(
      const SolveJob& job, int autotune_dim,
      const gpu::DeviceTopology& topology, std::size_t pool_budget_remaining,
      std::size_t pool_budget_total);

 private:
  struct PendingJob {
    SolveJob job;
    std::uint64_t id = 0;
    std::uint64_t fingerprint = 0;
    core::DualOpConfig config;
    Timer queued;  ///< started at submission
    std::promise<JobResult> promise;
  };

  void worker_loop();
  /// Pops the next wave (head job + up to max_wave-1 compatible queued
  /// jobs) under the queue lock; empty when stopping and drained.
  std::vector<PendingJob> next_wave();
  void solve_wave(std::vector<PendingJob> wave);

  ServiceOptions options_;
  gpu::DevicePool devices_;
  OperatorPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<PendingJob> queue_;
  bool stopping_ = false;
  long in_flight_ = 0;
  std::uint64_t next_job_id_ = 1;
  ServiceStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace feti::service
