// Reproduces Fig. 3 of the paper: explicit assembly time per subdomain as
// a function of subdomain size, comparing sparse vs dense factor storage
// under both API generations (heat transfer 3D, quadratic tetrahedra, SYRK
// path). Paper shapes: the modern generic sparse TRSM is far slower than
// everything else (dense always wins there), while under the legacy API
// sparse storage wins for large subdomains.
//
// Extended with the storage/bandwidth side of the same story: fp32 vs
// fp64 F̃ storage for the explicit GPU keys — footprint (bytes), apply
// time, and achieved apply bandwidth (GB/s) side by side. The fp32
// variants store half the bytes, so the memory-bound apply phase should
// speed up and the achieved GB/s stay in the same ballpark.
//
// `--quick` runs only the precision and sparsity comparisons on one
// problem size (the CI smoke gate): the ~2x footprint reduction and the
// boundary-restricted solve-panel reduction are hard, deterministic gates
// (the latter counted via DualOperator::solve_columns(), not timed);
// "fp32 apply measurably faster than fp64" and "sp update faster than
// dense" are soft gates — warnings, not failures, on noisy runners.

#include <cstring>

#include "common.hpp"
#include "decomp/boundary.hpp"

using namespace feti;
using namespace feti::bench;
using core::FactorStorage;

namespace {

/// fp32-vs-fp64 comparison across the explicit GPU keys (+ hybrid) on one
/// problem. Returns false only on the hard gate (footprint not halved).
bool run_precision_comparison(gpu::ExecutionContext& device, idx cells,
                              bool quick, bool& f32_faster_somewhere) {
  BuiltProblem bp = build_problem(3, fem::Physics::HeatTransfer, cells,
                                  mesh::ElementOrder::Quadratic);
  std::printf("\n=== fp32 vs fp64 F̃ storage (heat 3D, %d DOFs/subdomain) "
              "===\n",
              bp.dofs_per_subdomain);
  Table table({"key", "F̃ bytes f64", "F̃ bytes f32", "ratio",
               "apply f64 [ms]", "apply f32 [ms]", "GB/s f64", "GB/s f32"});
  bool footprint_halved = true;
  for (const char* base : {"expl legacy", "expl modern", "expl hybrid"}) {
    core::DualOpConfig cfg64 =
        core::recommend_config(base, 3, bp.dofs_per_subdomain);
    core::DualOpConfig cfg32 = core::recommend_config(
        std::string(base) + " f32", 3, bp.dofs_per_subdomain);
    const int reps = quick ? 3 : 5;
    const double min_seconds = quick ? 0.005 : 0.03;
    DualOpTiming t64 =
        measure_dualop(bp.problem, cfg64, device, reps, min_seconds);
    DualOpTiming t32 =
        measure_dualop(bp.problem, cfg32, device, reps, min_seconds);
    const double ratio =
        t32.apply_bytes > 0
            ? static_cast<double>(t64.apply_bytes) / t32.apply_bytes
            : 0.0;
    table.add_row({base, std::to_string(t64.apply_bytes),
                   std::to_string(t32.apply_bytes), Table::num(ratio, 2),
                   Table::num(t64.apply_ms, 4), Table::num(t32.apply_ms, 4),
                   Table::num(t64.apply_gbps, 2),
                   Table::num(t32.apply_gbps, 2)});
    // Demotion halves every block exactly (same dims, half the scalar).
    if (ratio < 1.99 || ratio > 2.01) footprint_halved = false;
    if (t32.apply_ms < t64.apply_ms) f32_faster_somewhere = true;
  }
  table.print();
  std::printf("CSV:\n");
  table.print_csv(std::cout);
  return footprint_halved;
}

/// Sparsity-aware vs dense assembly for the explicit GPU keys: the hard
/// gate is *counted*, not timed — each sp key's accumulated K⁺ solve
/// columns (DualOperator::solve_columns()) must equal the summed boundary
/// widths Σnb and undercut its dense sibling's Σm. Update timing is
/// reported and feeds only the soft gate.
bool run_sparsity_comparison(gpu::ExecutionContext& device, idx cells,
                             bool quick, bool& sp_update_faster_somewhere) {
  BuiltProblem bp = build_problem(3, fem::Physics::HeatTransfer, cells,
                                  mesh::ElementOrder::Quadratic);
  long total_nb = 0, total_m = 0, total_ndof = 0;
  for (const auto& sub : bp.problem.sub) {
    total_nb += decomp::boundary_dofs(sub).count();
    total_m += sub.num_local_lambdas();
    total_ndof += sub.ndof();
  }
  std::printf("\n=== sparsity-aware vs dense assembly (heat 3D, %d "
              "DOFs/subdomain, boundary fraction %.2f) ===\n",
              bp.dofs_per_subdomain,
              static_cast<double>(total_nb) / total_ndof);
  Table table({"key", "solve cols dense", "solve cols sp", "ratio",
               "update dense [ms]", "update sp [ms]"});
  bool columns_restricted = true;
  for (const char* base : {"expl legacy", "expl modern"}) {
    core::DualOpConfig cfg_dense =
        core::recommend_config(base, 3, bp.dofs_per_subdomain);
    core::DualOpConfig cfg_sp = core::recommend_config(
        std::string(base) + " sp", 3, bp.dofs_per_subdomain);
    long cols_dense = 0, cols_sp = 0;
    {
      auto op = core::make_dual_operator(bp.problem, cfg_dense, &device);
      op->prepare();
      op->update_values();
      cols_dense = op->solve_columns();
    }
    {
      auto op = core::make_dual_operator(bp.problem, cfg_sp, &device);
      op->prepare();
      op->update_values();
      cols_sp = op->solve_columns();
    }
    const int reps = quick ? 3 : 5;
    const double min_seconds = quick ? 0.005 : 0.03;
    DualOpTiming t_dense =
        measure_dualop(bp.problem, cfg_dense, device, reps, min_seconds);
    DualOpTiming t_sp =
        measure_dualop(bp.problem, cfg_sp, device, reps, min_seconds);
    table.add_row({base, std::to_string(cols_dense), std::to_string(cols_sp),
                   Table::num(static_cast<double>(cols_sp) / cols_dense, 3),
                   Table::num(t_dense.preprocess_ms, 4),
                   Table::num(t_sp.preprocess_ms, 4)});
    // The counts are exact: dense solves every local dual column, sp only
    // the boundary support of B̃ᵢ.
    if (cols_dense != total_m || cols_sp != total_nb ||
        cols_sp >= cols_dense)
      columns_restricted = false;
    if (t_sp.preprocess_ms < t_dense.preprocess_ms)
      sp_update_faster_somewhere = true;
  }
  table.print();
  std::printf("CSV:\n");
  table.print_csv(std::cout);
  return columns_restricted;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  gpu::ExecutionContext& device = shared_context();

  bool modern_dense_wins = true;
  bool modern_sparse_slowest = true;
  if (!quick) {
    const std::vector<idx> cells = {1, 2, 3, 5};
    std::printf("=== Fig. 3: factor storage in explicit assembly (heat 3D, "
                "quadratic tets, SYRK path) — time per subdomain [ms] ===\n");
    Table table({"DOFs/subdomain", "sparse/modern", "dense/modern",
                 "sparse/legacy", "dense/legacy"});
    for (idx c : cells) {
      BuiltProblem bp = build_problem(3, fem::Physics::HeatTransfer, c,
                                      mesh::ElementOrder::Quadratic);
      std::vector<std::string> row{std::to_string(bp.dofs_per_subdomain)};
      double t_modern_sparse = 0, t_modern_dense = 0, max_legacy = 0;
      for (auto api : {gpu::sparse::Api::Modern, gpu::sparse::Api::Legacy}) {
        for (FactorStorage st :
             {FactorStorage::Sparse, FactorStorage::Dense}) {
          core::DualOpConfig cfg;
          cfg.approach = api == gpu::sparse::Api::Legacy
                             ? core::Approach::ExplLegacy
                             : core::Approach::ExplModern;
          cfg.gpu = core::recommend_options(api, 3, bp.dofs_per_subdomain);
          cfg.gpu.path = core::Path::Syrk;
          cfg.gpu.fwd_storage = st;
          cfg.gpu.bwd_storage = st;
          cfg.gpu.fwd_order = st == FactorStorage::Sparse
                                  ? la::Layout::RowMajor
                                  : la::Layout::ColMajor;
          cfg.gpu.rhs_order = la::Layout::RowMajor;
          const double ms =
              measure_dualop(bp.problem, cfg, device, 3, 0.03).preprocess_ms;
          row.push_back(Table::num(ms, 4));
          if (api == gpu::sparse::Api::Modern) {
            (st == FactorStorage::Sparse ? t_modern_sparse : t_modern_dense) =
                ms;
          } else if (st == FactorStorage::Sparse) {
            max_legacy = ms;  // legacy sparse, for the API comparison below
          }
        }
      }
      table.add_row(row);
      if (t_modern_dense > 1.1 * t_modern_sparse) modern_dense_wins = false;
      // Compare the two sparse TRSM implementations at the largest size.
      if (c == cells.back())
        modern_sparse_slowest = t_modern_sparse > max_legacy;
    }
    table.print();
  }

  bool f32_faster_somewhere = false;
  // Same problem size in both modes: the bandwidth win only shows once the
  // apply leaves the launch-latency regime, and the soft gate should not
  // flap in CI because quick mode picked a tiny problem.
  const bool footprint_halved =
      run_precision_comparison(device, 3, quick, f32_faster_somewhere);

  bool sp_update_faster = false;
  const bool sp_columns_restricted =
      run_sparsity_comparison(device, 3, quick, sp_update_faster);

  if (!quick) {
    shape_check("with the modern API, dense storage does not lose to the "
                "underperforming generic sparse TRSM",
                modern_dense_wins);
    shape_check("the modern generic sparse TRSM is slower than the legacy "
                "level-scheduled one for large subdomains",
                modern_sparse_slowest);
  }
  shape_check("fp32 storage halves the F̃ footprint on every explicit GPU "
              "key",
              footprint_halved);
  shape_check("sparsity-aware assembly solves exactly the Σnb boundary "
              "columns, strictly fewer than the dense Σm, on every "
              "explicit GPU key",
              sp_columns_restricted);
  // Soft gates: wall-clock speed depends on the runner's load; warn,
  // don't fail.
  if (f32_faster_somewhere) {
    shape_check("fp32 apply is faster than fp64 on at least one explicit "
                "GPU key",
                true);
  } else {
    std::printf("WARNING: fp32 apply was not faster than fp64 on any "
                "explicit GPU key in this run (noisy runner?) — soft gate, "
                "not failing\n");
  }
  if (sp_update_faster) {
    shape_check("sparsity-aware update is faster than dense on at least "
                "one explicit GPU key",
                true);
  } else {
    std::printf("WARNING: sparsity-aware update was not faster than dense "
                "on any explicit GPU key in this run (noisy runner?) — "
                "soft gate, not failing\n");
  }
  return footprint_halved && sp_columns_restricted ? 0 : 1;
}
