// Tests for the virtual GPU runtime: stream ordering, events, memory
// allocators (including the blocking temporary pool), vcuBLAS and vcuSPARSE
// kernels against their CPU references, and both sparse TRSM APIs.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "gpu/blas.hpp"
#include "gpu/context.hpp"
#include "gpu/kernels.hpp"
#include "gpu/sparse.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"
#include "test_helpers.hpp"

namespace feti::gpu {
namespace {

DeviceConfig test_config() {
  DeviceConfig cfg;
  cfg.worker_threads = 4;
  cfg.launch_latency_us = 0.0;  // tests care about semantics, not timing
  cfg.memory_bytes = 64ull << 20;
  return cfg;
}

TEST(Stream, OperationsRunInOrder) {
  Device dev(test_config());
  Stream s = dev.create_stream();
  std::vector<int> log;
  for (int i = 0; i < 50; ++i)
    s.submit([&log, i] { log.push_back(i); });
  s.synchronize();
  ASSERT_EQ(log.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(log[i], i);
}

TEST(Stream, DifferentStreamsRunConcurrently) {
  Device dev(test_config());
  Stream a = dev.create_stream(), b = dev.create_stream();
  std::atomic<bool> a_started{false}, release_a{false};
  a.submit([&] {
    a_started = true;
    while (!release_a) std::this_thread::yield();
  });
  // Stream b can complete while a is still blocked.
  std::atomic<bool> b_done{false};
  b.submit([&] { b_done = true; });
  b.synchronize();
  EXPECT_TRUE(b_done.load());
  release_a = true;
  a.synchronize();
  EXPECT_TRUE(a_started.load());
}

TEST(Stream, EventOrdersAcrossStreams) {
  Device dev(test_config());
  Stream a = dev.create_stream(), b = dev.create_stream();
  std::vector<int> log;
  std::mutex m;
  auto push = [&](int v) {
    std::lock_guard<std::mutex> lock(m);
    log.push_back(v);
  };
  a.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    push(1);
  });
  Event e = a.record();
  b.wait(e);
  b.submit([&] { push(2); });
  dev.synchronize();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 1);
  EXPECT_EQ(log[1], 2);
}

TEST(Stream, EventQueryTransitions) {
  Device dev(test_config());
  Stream s = dev.create_stream();
  std::atomic<bool> release{false};
  s.submit([&] {
    while (!release) std::this_thread::yield();
  });
  Event e = s.record();
  EXPECT_FALSE(e.query());
  release = true;
  e.wait();
  EXPECT_TRUE(e.query());
}

TEST(Stream, MemcpyRoundTrip) {
  Device dev(test_config());
  Stream s = dev.create_stream();
  auto host = testing::random_vector(256, 1);
  double* d = dev.alloc_n<double>(256);
  std::vector<double> back(256, 0.0);
  s.memcpy_h2d(d, host.data(), 256 * sizeof(double));
  s.memcpy_d2h(back.data(), d, 256 * sizeof(double));
  s.synchronize();
  EXPECT_EQ(back, host);
  dev.free(d);
}

TEST(DeviceMemory, CapacityEnforced) {
  DeviceConfig cfg = test_config();
  cfg.memory_bytes = 1 << 20;
  Device dev(cfg);
  void* p = dev.alloc(512 << 10);
  EXPECT_THROW(dev.alloc(600 << 10), std::bad_alloc);
  dev.free(p);
  EXPECT_NO_THROW(p = dev.alloc(600 << 10));
  dev.free(p);
  EXPECT_EQ(dev.memory_used(), 0u);
}

TEST(TempAllocator, ReusesMemoryWithoutDeviceAllocs) {
  Device dev(test_config());
  dev.init_temp_pool();
  auto& temp = dev.temp();
  void* a = temp.alloc(1 << 20);
  void* b = temp.alloc(1 << 20);
  EXPECT_NE(a, b);
  temp.free(a);
  temp.free(b);
  void* c = temp.alloc(2 << 20);  // coalesced region must satisfy this
  EXPECT_EQ(c, a);
  temp.free(c);
  EXPECT_EQ(temp.in_use(), 0u);
}

TEST(TempAllocator, BlocksUntilMemoryAvailable) {
  DeviceConfig cfg = test_config();
  cfg.memory_bytes = 4 << 20;
  Device dev(cfg);
  dev.init_temp_pool();
  auto& temp = dev.temp();
  const std::size_t big = 3 << 20;
  void* a = temp.alloc(big);
  std::atomic<bool> got{false};
  std::thread t([&] {
    void* b = temp.alloc(big);  // must block until `a` is freed
    got = true;
    temp.free(b);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got.load());
  temp.free(a);
  t.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(temp.contention_count(), 1);
}

TEST(TempAllocator, OversizeRequestThrows) {
  Device dev(test_config());
  dev.init_temp_pool();
  EXPECT_THROW(dev.temp().alloc(dev.temp().capacity() + 1),
               std::invalid_argument);
}

TEST(TempAllocator, ContentionCounterTracksOnlyBlockedRequests) {
  DeviceConfig cfg = test_config();
  cfg.memory_bytes = 4 << 20;
  Device dev(cfg);
  dev.init_temp_pool();
  auto& temp = dev.temp();
  // Requests that fit immediately never count as contention.
  for (int i = 0; i < 10; ++i) {
    void* p = temp.alloc(1 << 16);
    temp.free(p);
  }
  EXPECT_EQ(temp.contention_count(), 0);
  // One request that must wait counts exactly once, however long it waits.
  const std::size_t big = 3 << 20;
  void* a = temp.alloc(big);
  std::thread t([&] { temp.free(temp.alloc(big)); });
  // The counter increments before the blocked wait, so it doubles as the
  // signal that the thread is parked inside alloc.
  while (temp.contention_count() < 1) std::this_thread::yield();
  temp.free(a);
  t.join();
  EXPECT_EQ(temp.contention_count(), 1);
  EXPECT_EQ(temp.in_use(), 0u);
}

TEST(TempAllocator, FreeOfForeignPointerThrows) {
  Device dev(test_config());
  dev.init_temp_pool();
  auto& temp = dev.temp();
  double on_stack = 0.0;
  EXPECT_THROW(temp.free(&on_stack), std::invalid_argument);
  // nullptr stays a no-op (mirrors cudaFree).
  EXPECT_NO_THROW(temp.free(nullptr));
}

TEST(TempAllocator, DoubleFreeAndInteriorPointerThrow) {
  Device dev(test_config());
  dev.init_temp_pool();
  auto& temp = dev.temp();
  void* a = temp.alloc(1 << 20);
  temp.free(a);
  EXPECT_THROW(temp.free(a), std::invalid_argument);
  void* b = temp.alloc(1 << 20);
  // An interior pointer is not an allocation start.
  EXPECT_THROW(temp.free(static_cast<char*>(b) + 64), std::invalid_argument);
  temp.free(b);
  EXPECT_EQ(temp.in_use(), 0u);
}

TEST(DeviceMemory, DoubleFreeAndForeignPointerThrow) {
  Device dev(test_config());
  void* p = dev.alloc(1 << 12);
  dev.free(p);
  EXPECT_THROW(dev.free(p), std::invalid_argument);
  double on_stack = 0.0;
  EXPECT_THROW(dev.free(&on_stack), std::invalid_argument);
  EXPECT_NO_THROW(dev.free(nullptr));
  EXPECT_EQ(dev.memory_used(), 0u);
}

TEST(Stream, EventChainsOrderThreeStreams) {
  // a -> b -> c through two events: c's work observes both predecessors.
  Device dev(test_config());
  Stream a = dev.create_stream(), b = dev.create_stream(),
         c = dev.create_stream();
  std::vector<int> log;
  std::mutex log_mutex;
  auto push = [&](int v) {
    std::lock_guard<std::mutex> lock(log_mutex);
    log.push_back(v);
  };
  a.submit([&] { push(1); });
  Event ea = a.record();
  b.wait(ea);
  b.submit([&] { push(2); });
  Event eb = b.record();
  c.wait(eb);
  c.submit([&] { push(3); });
  c.synchronize();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Stream, EventWaitAfterCompletionDoesNotBlock) {
  Device dev(test_config());
  Stream a = dev.create_stream(), b = dev.create_stream();
  Event e = a.record();  // empty stream: fires immediately
  e.wait();
  EXPECT_TRUE(e.query());
  b.wait(e);
  std::atomic<bool> ran{false};
  b.submit([&] { ran = true; });
  b.synchronize();
  EXPECT_TRUE(ran.load());
}

// ---------------------------------------------------------------------------
// Kernels against CPU references.
// ---------------------------------------------------------------------------

class GpuBlasTest : public ::testing::Test {
 protected:
  GpuBlasTest() : dev_(test_config()), s_(dev_.create_stream()) {}
  Device dev_;
  Stream s_;
};

TEST_F(GpuBlasTest, GemvMatchesCpu) {
  la::DenseMatrix a(9, 7, la::Layout::ColMajor);
  Rng rng(2);
  for (idx r = 0; r < 9; ++r)
    for (idx c = 0; c < 7; ++c) a.at(r, c) = rng.uniform(-1, 1);
  auto x = testing::random_vector(7, 3);
  std::vector<double> y_ref(9, 0.5), y(9, 0.5);
  la::gemv(2.0, a.cview(), la::Trans::No, x.data(), 0.5, y_ref.data());

  DeviceDense da = alloc_dense(dev_, 9, 7, la::Layout::ColMajor);
  double* dx = upload_array(dev_, s_, x);
  double* dy = upload_array(dev_, s_, y);
  s_.memcpy_h2d(da.data, a.data(), a.size() * sizeof(double));
  blas::gemv(s_, 2.0, da, la::Trans::No, dx, 0.5, dy);
  s_.memcpy_d2h(y.data(), dy, 9 * sizeof(double));
  s_.synchronize();
  for (idx i = 0; i < 9; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-13);
  free_dense(dev_, da);
  dev_.free(dx);
  dev_.free(dy);
}

TEST_F(GpuBlasTest, SymvUsesStoredTriangleOnly) {
  const idx n = 8;
  la::DenseMatrix full(n, n, la::Layout::ColMajor);
  Rng rng(4);
  for (idx r = 0; r < n; ++r)
    for (idx c = r; c < n; ++c) {
      const double v = rng.uniform(-1, 1);
      full.at(r, c) = v;
      full.at(c, r) = v;
    }
  auto x = testing::random_vector(n, 5);
  std::vector<double> ref(n, 0.0), y(n, 0.0);
  la::symv(la::Uplo::Upper, 1.0, full.cview(), x.data(), 0.0, ref.data());

  DeviceDense da = alloc_dense(dev_, n, n, la::Layout::ColMajor);
  // Poison the lower triangle on the device copy.
  la::DenseMatrix poisoned = full;
  for (idx r = 0; r < n; ++r)
    for (idx c = 0; c < r; ++c) poisoned.at(r, c) = 1e9;
  s_.memcpy_h2d(da.data, poisoned.data(), poisoned.size() * sizeof(double));
  double* dx = upload_array(dev_, s_, x);
  double* dy = upload_array(dev_, s_, y);
  blas::symv(s_, la::Uplo::Upper, 1.0, da, dx, 0.0, dy);
  s_.memcpy_d2h(y.data(), dy, n * sizeof(double));
  s_.synchronize();
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
  free_dense(dev_, da);
  dev_.free(dx);
  dev_.free(dy);
}

class SpTrsmParam
    : public ::testing::TestWithParam<
          std::tuple<sparse::Api, la::Layout, la::Layout, bool>> {};

TEST_P(SpTrsmParam, SolvesAgainstCpuReference) {
  const auto [api, factor_order, rhs_layout, forward] = GetParam();
  Device dev(test_config());
  Stream s = dev.create_stream();

  // SPD-factor stand-in: a well-conditioned sparse upper factor U.
  const idx n = 40, w = 6;
  la::Csr a = testing::random_spd(n, 0.1, 11);
  // Build U as the upper triangle with diag-first rows by reusing the
  // simplicial pattern convention: take the upper triangle directly (its
  // rows are sorted, diagonal first).
  la::Csr u = a.triangle(la::Uplo::Upper);

  la::DenseMatrix b(n, w, rhs_layout);
  Rng rng(12);
  for (idx r = 0; r < n; ++r)
    for (idx c = 0; c < w; ++c) b.at(r, c) = rng.uniform(-1, 1);

  // CPU reference: solve op(L) X = B with L = U^T.
  la::DenseMatrix ref(n, w, rhs_layout);
  la::copy(b.cview(), ref.view());
  la::sp_trsm(la::Uplo::Upper, forward ? la::Trans::Yes : la::Trans::No, u,
              ref.view());

  sparse::SpTrsmPlan plan(dev, s, api, u, factor_order, forward, rhs_layout,
                          w);
  DeviceDense db = alloc_dense(dev, n, w, rhs_layout);
  // Persistent allocations done — hand the rest to the temporary pool
  // (mirrors the preparation-phase order of the solver).
  dev.init_temp_pool();
  s.memcpy_h2d(db.data, b.data(), b.size() * sizeof(double));
  void* workspace = nullptr;
  const std::size_t wb = plan.workspace_bytes(w);
  if (wb > 0) workspace = dev.temp().alloc(wb);
  plan.solve(s, db, workspace);
  la::DenseMatrix out(n, w, rhs_layout);
  s.memcpy_d2h(out.data(), db.data, out.size() * sizeof(double));
  s.synchronize();
  if (workspace != nullptr) dev.temp().free(workspace);
  EXPECT_LT(la::max_abs_diff(out.cview(), ref.cview()), 1e-10);
  EXPECT_GT(plan.level_count(), 0);
  EXPECT_GT(plan.persistent_bytes(), 0u);
  free_dense(dev, db);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SpTrsmParam,
    ::testing::Combine(
        ::testing::Values(sparse::Api::Legacy, sparse::Api::Modern),
        ::testing::Values(la::Layout::RowMajor, la::Layout::ColMajor),
        ::testing::Values(la::Layout::RowMajor, la::Layout::ColMajor),
        ::testing::Values(true, false)));

TEST(SpTrsmPlanProps, ModernHoldsLargerPersistentBuffers) {
  Device dev(test_config());
  Stream s = dev.create_stream();
  la::Csr a = testing::random_spd(60, 0.08, 21);
  la::Csr u = a.triangle(la::Uplo::Upper);
  sparse::SpTrsmPlan legacy(dev, s, sparse::Api::Legacy, u,
                            la::Layout::ColMajor, true, la::Layout::RowMajor,
                            64);
  sparse::SpTrsmPlan modern(dev, s, sparse::Api::Modern, u,
                            la::Layout::ColMajor, true, la::Layout::RowMajor,
                            64);
  s.synchronize();
  EXPECT_GT(modern.persistent_bytes(), legacy.persistent_bytes());
  // Legacy needs per-call workspace only for col-major RHS.
  EXPECT_EQ(legacy.workspace_bytes(64), 0u);
  EXPECT_EQ(modern.workspace_bytes(64), 0u);
  sparse::SpTrsmPlan legacy_cm(dev, s, sparse::Api::Legacy, u,
                               la::Layout::ColMajor, true,
                               la::Layout::ColMajor, 64);
  EXPECT_GT(legacy_cm.workspace_bytes(64), 0u);
  s.synchronize();
}

TEST(SpTrsmPlanProps, ValueRefreshTracksNewFactorization) {
  Device dev(test_config());
  Stream s = dev.create_stream();
  la::Csr a = testing::random_spd(30, 0.15, 31);
  la::Csr u = a.triangle(la::Uplo::Upper);
  sparse::SpTrsmPlan plan(dev, s, sparse::Api::Legacy, u,
                          la::Layout::RowMajor, true, la::Layout::RowMajor,
                          4);
  // Scale values and refresh; solution must scale inversely.
  la::Csr u2 = u;
  for (auto& v : u2.vals()) v *= 2.0;
  plan.update_values(s, u2);
  la::DenseMatrix b(30, 1, la::Layout::RowMajor);
  for (idx i = 0; i < 30; ++i) b.at(i, 0) = 1.0;
  la::DenseMatrix ref(30, 1, la::Layout::RowMajor);
  la::copy(b.cview(), ref.view());
  la::sp_trsm(la::Uplo::Upper, la::Trans::Yes, u2, ref.view());
  DeviceDense db = alloc_dense(dev, 30, 1, la::Layout::RowMajor);
  s.memcpy_h2d(db.data, b.data(), b.size() * sizeof(double));
  plan.solve(s, db, nullptr);
  la::DenseMatrix out(30, 1, la::Layout::RowMajor);
  s.memcpy_d2h(out.data(), db.data, out.size() * sizeof(double));
  s.synchronize();
  EXPECT_LT(la::max_abs_diff(out.cview(), ref.cview()), 1e-12);
  free_dense(dev, db);
}

TEST(GpuSparse, SpmvAndSpmmMatchCpu) {
  Device dev(test_config());
  Stream s = dev.create_stream();
  la::Csr a = testing::random_sparse(12, 9, 0.3, 41);
  DeviceCsr da = upload_csr(dev, s, a);
  auto x = testing::random_vector(9, 42);
  std::vector<double> y(12, 0.0), y_ref(12, 0.0);
  la::spmv(1.0, a, x.data(), 0.0, y_ref.data());
  double* dx = upload_array(dev, s, x);
  double* dy = upload_array(dev, s, y);
  sparse::spmv(s, 1.0, da, la::Trans::No, dx, 0.0, dy);
  s.memcpy_d2h(y.data(), dy, 12 * sizeof(double));
  s.synchronize();
  for (idx i = 0; i < 12; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-13);

  la::DenseMatrix bm(9, 5, la::Layout::RowMajor);
  Rng rng(43);
  for (idx r = 0; r < 9; ++r)
    for (idx c = 0; c < 5; ++c) bm.at(r, c) = rng.uniform(-1, 1);
  la::DenseMatrix c_ref(12, 5, la::Layout::RowMajor);
  la::spmm(1.0, a, la::Trans::No, bm.cview(), 0.0, c_ref.view());
  DeviceDense db = alloc_dense(dev, 9, 5, la::Layout::RowMajor);
  DeviceDense dc = alloc_dense(dev, 12, 5, la::Layout::RowMajor);
  s.memcpy_h2d(db.data, bm.data(), bm.size() * sizeof(double));
  sparse::spmm(s, 1.0, da, la::Trans::No, db, 0.0, dc);
  la::DenseMatrix c_out(12, 5, la::Layout::RowMajor);
  s.memcpy_d2h(c_out.data(), dc.data, c_out.size() * sizeof(double));
  s.synchronize();
  EXPECT_LT(la::max_abs_diff(c_out.cview(), c_ref.cview()), 1e-12);
  free_csr(dev, da);
  free_dense(dev, db);
  free_dense(dev, dc);
  dev.free(dx);
  dev.free(dy);
}

TEST(GpuSparse, DenseConversions) {
  Device dev(test_config());
  Stream s = dev.create_stream();
  la::Csr a = testing::random_sparse(7, 10, 0.3, 51);
  DeviceCsr da = upload_csr(dev, s, a);
  DeviceDense direct = alloc_dense(dev, 7, 10, la::Layout::ColMajor);
  DeviceDense transposed = alloc_dense(dev, 10, 7, la::Layout::ColMajor);
  sparse::csr_to_dense(s, da, direct);
  sparse::csr_to_dense_transposed(s, da, transposed);
  s.synchronize();
  for (idx r = 0; r < 7; ++r)
    for (idx c = 0; c < 10; ++c) {
      EXPECT_DOUBLE_EQ(direct.view().at(r, c), a.at(r, c));
      EXPECT_DOUBLE_EQ(transposed.view().at(c, r), a.at(r, c));
    }
  free_csr(dev, da);
  free_dense(dev, direct);
  free_dense(dev, transposed);
}

TEST(GpuKernels, ScatterGatherBatchRoundTrip) {
  Device dev(test_config());
  Stream s = dev.create_stream();
  // Cluster vector with two overlapping subdomain maps.
  std::vector<double> cluster = {1, 2, 3, 4, 5};
  std::vector<idx> map1 = {0, 2, 4}, map2 = {1, 2, 3};
  double* dcluster = upload_array(dev, s, cluster);
  idx* dmap1 = upload_array(dev, s, map1);
  idx* dmap2 = upload_array(dev, s, map2);
  double* dl1 = dev.alloc_n<double>(3);
  double* dl2 = dev.alloc_n<double>(3);
  kernels::scatter_batch(
      s, dcluster, {{dmap1, 3, dl1}, {dmap2, 3, dl2}});
  std::vector<double> l1(3), l2(3);
  s.memcpy_d2h(l1.data(), dl1, 3 * sizeof(double));
  s.memcpy_d2h(l2.data(), dl2, 3 * sizeof(double));
  s.synchronize();
  EXPECT_EQ(l1, (std::vector<double>{1, 3, 5}));
  EXPECT_EQ(l2, (std::vector<double>{2, 3, 4}));

  kernels::gather_batch(s, dcluster, 5, {{dmap1, 3, dl1}, {dmap2, 3, dl2}});
  std::vector<double> out(5);
  s.memcpy_d2h(out.data(), dcluster, 5 * sizeof(double));
  s.synchronize();
  // Row 2 is shared: 3 (from map1) + 3 (from map2).
  EXPECT_EQ(out, (std::vector<double>{1, 2, 6, 4, 5}));
  dev.free(dcluster);
  dev.free(dmap1);
  dev.free(dmap2);
  dev.free(dl1);
  dev.free(dl2);
}

TEST_F(GpuBlasTest, SymmMatchesCpuAndUsesStoredTriangleOnly) {
  const idx n = 7, w = 4;
  la::DenseMatrix full(n, n, la::Layout::ColMajor);
  Rng rng(6);
  for (idx r = 0; r < n; ++r)
    for (idx c = r; c < n; ++c) {
      const double v = rng.uniform(-1, 1);
      full.at(r, c) = v;
      full.at(c, r) = v;
    }
  la::DenseMatrix b(n, w, la::Layout::RowMajor);
  for (idx r = 0; r < n; ++r)
    for (idx c = 0; c < w; ++c) b.at(r, c) = rng.uniform(-1, 1);
  la::DenseMatrix ref(n, w, la::Layout::RowMajor);
  la::symm(la::Uplo::Upper, 1.0, full.cview(), b.cview(), 0.0, ref.view());

  // Poison the unreferenced triangle on the device copy.
  la::DenseMatrix poisoned = full;
  for (idx r = 0; r < n; ++r)
    for (idx c = 0; c < r; ++c) poisoned.at(r, c) = 1e9;
  DeviceDense da = alloc_dense(dev_, n, n, la::Layout::ColMajor);
  DeviceDense db = alloc_dense(dev_, n, w, la::Layout::RowMajor);
  DeviceDense dc = alloc_dense(dev_, n, w, la::Layout::RowMajor);
  s_.memcpy_h2d(da.data, poisoned.data(), poisoned.size() * sizeof(double));
  s_.memcpy_h2d(db.data, b.data(), b.size() * sizeof(double));
  blas::symm(s_, la::Uplo::Upper, 1.0, da, db, 0.0, dc);
  la::DenseMatrix out(n, w, la::Layout::RowMajor);
  s_.memcpy_d2h(out.data(), dc.data, out.size() * sizeof(double));
  s_.synchronize();
  EXPECT_LT(la::max_abs_diff(out.cview(), ref.cview()), 1e-12);
  free_dense(dev_, da);
  free_dense(dev_, db);
  free_dense(dev_, dc);
}

// ---------------------------------------------------------------------------
// Multi-RHS scatter/gather kernels.
// ---------------------------------------------------------------------------

class MultiRhsKernels : public ::testing::Test {
 protected:
  MultiRhsKernels() : dev_(test_config()), s_(dev_.create_stream()) {
    // Two overlapping subdomain maps over a 5-entry cluster vector; the
    // cluster block stores its columns at a non-contiguous stride.
    dcluster_ = dev_.alloc_n<double>(static_cast<std::size_t>(kLd) * kMaxRhs);
    std::vector<double> init(static_cast<std::size_t>(kLd) * kMaxRhs);
    for (std::size_t i = 0; i < init.size(); ++i)
      init[i] = static_cast<double>(i + 1);
    s_.memcpy_h2d(dcluster_, init.data(), init.size() * sizeof(double));
    dmap1_ = upload_array(dev_, s_, map1_);
    dmap2_ = upload_array(dev_, s_, map2_);
    s_.synchronize();
  }
  ~MultiRhsKernels() override {
    dev_.free(dcluster_);
    dev_.free(dmap1_);
    dev_.free(dmap2_);
  }

  [[nodiscard]] std::vector<double> read_cluster() {
    std::vector<double> out(static_cast<std::size_t>(kLd) * kMaxRhs);
    s_.memcpy_d2h(out.data(), dcluster_, out.size() * sizeof(double));
    s_.synchronize();
    return out;
  }

  static constexpr idx kSize = 5;   ///< live cluster entries per column
  static constexpr idx kLd = 7;     ///< cluster column stride (> kSize)
  static constexpr idx kMaxRhs = 3;
  std::vector<idx> map1_ = {0, 2, 4}, map2_ = {1, 2, 3};
  Device dev_;
  Stream s_;
  double* dcluster_ = nullptr;
  idx* dmap1_ = nullptr;
  idx* dmap2_ = nullptr;
};

TEST_F(MultiRhsKernels, ScatterGatherBlocksRoundTripWithOverlap) {
  // Row-major panels with leading dimension 4 > nrhs = 3: the batch only
  // touches the first 3 entries of each panel row.
  const idx nrhs = 3, ld = 4;
  double* dl1 = dev_.alloc_n<double>(3 * ld);
  double* dl2 = dev_.alloc_n<double>(3 * ld);
  kernels::fill_zero(s_, dl1, 3 * ld);
  kernels::fill_zero(s_, dl2, 3 * ld);
  kernels::scatter_batch(s_, dcluster_, kLd, nrhs, la::Layout::RowMajor,
                         {{dmap1_, 3, dl1, ld}, {dmap2_, 3, dl2, ld}});
  std::vector<double> l1(3 * ld), l2(3 * ld);
  s_.memcpy_d2h(l1.data(), dl1, l1.size() * sizeof(double));
  s_.memcpy_d2h(l2.data(), dl2, l2.size() * sizeof(double));
  s_.synchronize();
  for (idx i = 0; i < 3; ++i)
    for (idx j = 0; j < nrhs; ++j) {
      // Cluster column j holds values (1 + j*kLd) + index.
      EXPECT_EQ(l1[i * ld + j], 1.0 + j * kLd + map1_[i]) << i << "," << j;
      EXPECT_EQ(l2[i * ld + j], 1.0 + j * kLd + map2_[i]) << i << "," << j;
      // The ld > nrhs tail stays untouched (zero from fill_zero).
      EXPECT_EQ(l1[i * ld + nrhs], 0.0);
    }

  // Gather: zero-fills the live cluster entries of each column, leaves the
  // stride gap alone, and sums overlapping dual indices (map index 2 is
  // shared by both subdomains).
  kernels::gather_batch(s_, dcluster_, kSize, kLd, nrhs, la::Layout::RowMajor,
                        {{dmap1_, 3, dl1, ld}, {dmap2_, 3, dl2, ld}});
  std::vector<double> out = read_cluster();
  for (idx j = 0; j < nrhs; ++j) {
    const double base = 1.0 + j * kLd;
    EXPECT_EQ(out[j * kLd + 0], base + 0);             // map1 only
    EXPECT_EQ(out[j * kLd + 1], base + 1);             // map2 only
    EXPECT_EQ(out[j * kLd + 2], 2 * (base + 2));       // shared: summed
    EXPECT_EQ(out[j * kLd + 3], base + 3);             // map2 only
    EXPECT_EQ(out[j * kLd + 4], base + 4);             // map1 only
    // The stride gap beyond cluster_size is untouched.
    EXPECT_EQ(out[j * kLd + 5], static_cast<double>(j * kLd + 6));
    EXPECT_EQ(out[j * kLd + 6], static_cast<double>(j * kLd + 7));
  }
  dev_.free(dl1);
  dev_.free(dl2);
}

TEST_F(MultiRhsKernels, SingleColumnMatchesSingleRhsKernels) {
  // nrhs == 1 must reproduce the single-RHS kernels exactly, for both
  // panel layouts (a one-column panel is a plain vector in either).
  double* dref1 = dev_.alloc_n<double>(3);
  double* dref2 = dev_.alloc_n<double>(3);
  kernels::scatter_batch(s_, dcluster_, {{dmap1_, 3, dref1},
                                         {dmap2_, 3, dref2}});
  std::vector<double> ref1(3), ref2(3);
  s_.memcpy_d2h(ref1.data(), dref1, 3 * sizeof(double));
  s_.memcpy_d2h(ref2.data(), dref2, 3 * sizeof(double));

  for (la::Layout layout : {la::Layout::RowMajor, la::Layout::ColMajor}) {
    const idx ld = layout == la::Layout::RowMajor ? 1 : 3;
    double* dl1 = dev_.alloc_n<double>(3);
    double* dl2 = dev_.alloc_n<double>(3);
    kernels::scatter_batch(s_, dcluster_, kLd, 1, layout,
                           {{dmap1_, 3, dl1, ld}, {dmap2_, 3, dl2, ld}});
    std::vector<double> l1(3), l2(3);
    s_.memcpy_d2h(l1.data(), dl1, 3 * sizeof(double));
    s_.memcpy_d2h(l2.data(), dl2, 3 * sizeof(double));
    s_.synchronize();
    EXPECT_EQ(l1, ref1) << la::to_string(layout);
    EXPECT_EQ(l2, ref2) << la::to_string(layout);

    // Gather comparison: run both gathers into separate cluster vectors.
    double* dga = dev_.alloc_n<double>(kSize);
    double* dgb = dev_.alloc_n<double>(kSize);
    kernels::gather_batch(s_, dga, kSize, {{dmap1_, 3, dl1},
                                           {dmap2_, 3, dl2}});
    kernels::gather_batch(s_, dgb, kSize, kSize, 1, layout,
                          {{dmap1_, 3, dl1, ld}, {dmap2_, 3, dl2, ld}});
    std::vector<double> ga(kSize), gb(kSize);
    s_.memcpy_d2h(ga.data(), dga, kSize * sizeof(double));
    s_.memcpy_d2h(gb.data(), dgb, kSize * sizeof(double));
    s_.synchronize();
    EXPECT_EQ(ga, gb) << la::to_string(layout);
    dev_.free(dl1);
    dev_.free(dl2);
    dev_.free(dga);
    dev_.free(dgb);
  }
  dev_.free(dref1);
  dev_.free(dref2);
}

TEST_F(MultiRhsKernels, ZeroRhsIsANoOp) {
  // nrhs == 0 submits nothing: locals and the cluster block stay exactly
  // as they were (gather does not even zero-fill — zero columns requested).
  const std::vector<double> before = read_cluster();
  double* dl = dev_.alloc_n<double>(3);
  std::vector<double> marker = {-7.0, -8.0, -9.0};
  s_.memcpy_h2d(dl, marker.data(), marker.size() * sizeof(double));
  kernels::scatter_batch(s_, dcluster_, kLd, 0, la::Layout::RowMajor,
                         {{dmap1_, 3, dl, 1}});
  kernels::gather_batch(s_, dcluster_, kSize, kLd, 0, la::Layout::RowMajor,
                        {{dmap1_, 3, dl, 1}});
  std::vector<double> local(3);
  s_.memcpy_d2h(local.data(), dl, local.size() * sizeof(double));
  s_.synchronize();
  EXPECT_EQ(local, marker);
  EXPECT_EQ(read_cluster(), before);
  dev_.free(dl);
}

TEST(DeviceConfigTest, EnvParsing) {
  // Just exercise the default path; env-specific values are covered by use.
  DeviceConfig cfg = DeviceConfig::from_env();
  EXPECT_GE(cfg.launch_latency_us, 0.0);
  EXPECT_GT(cfg.memory_bytes, 0u);
}

TEST(DevicePoolLease, AcquireSteersToLeastLoadedShard) {
  DevicePool pool(3, DevicePool::split_config(test_config(), 3));
  // Ties break toward the lowest index, then each new lease lands on the
  // emptiest shard.
  DevicePool::Lease a = pool.acquire();
  EXPECT_EQ(a.shard(), 0u);
  DevicePool::Lease b = pool.acquire();
  EXPECT_EQ(b.shard(), 1u);
  DevicePool::Lease c = pool.acquire();
  EXPECT_EQ(c.shard(), 2u);
  DevicePool::Lease d = pool.acquire();  // all tied at 1 → back to shard 0
  EXPECT_EQ(d.shard(), 0u);
  EXPECT_EQ(pool.active_leases(0), 2);
  EXPECT_EQ(pool.active_leases(1), 1);
  EXPECT_EQ(pool.active_leases(2), 1);
  b.release();
  DevicePool::Lease e = pool.acquire();  // shard 1 is now the emptiest
  EXPECT_EQ(e.shard(), 1u);
}

TEST(DevicePoolLease, PinnedAcquireAndReleaseAccounting) {
  DevicePool pool(2, DevicePool::split_config(test_config(), 2));
  {
    DevicePool::Lease pinned = pool.acquire(1);
    EXPECT_TRUE(pinned.valid());
    EXPECT_EQ(pinned.shard(), 1u);
    EXPECT_EQ(&pinned.context(), &pool.context(1));
    EXPECT_EQ(pool.active_leases(1), 1);
    // release() is idempotent; the destructor afterwards is a no-op.
    pinned.release();
    EXPECT_FALSE(pinned.valid());
    EXPECT_EQ(pool.active_leases(1), 0);
    pinned.release();
    EXPECT_EQ(pool.active_leases(1), 0);
  }
  EXPECT_EQ(pool.active_leases(0), 0);
  EXPECT_EQ(pool.active_leases(1), 0);
}

TEST(DevicePoolLease, MoveTransfersOwnershipWithoutDoubleReturn) {
  DevicePool pool(2, DevicePool::split_config(test_config(), 2));
  DevicePool::Lease a = pool.acquire(0);
  DevicePool::Lease b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.active_leases(0), 1);
  // Move-assignment over a live lease returns its shard first.
  DevicePool::Lease c = pool.acquire(1);
  c = std::move(b);
  EXPECT_EQ(pool.active_leases(1), 0);
  EXPECT_EQ(pool.active_leases(0), 1);
  EXPECT_EQ(c.shard(), 0u);
}

}  // namespace
}  // namespace feti::gpu
