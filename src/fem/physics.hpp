#pragma once

// Element-level physics: heat transfer (scalar diffusion) and linear
// elasticity (isotropic, plane strain in 2D). These are the two physics
// the paper benchmarks with.

#include "la/dense.hpp"
#include "mesh/grid.hpp"

namespace feti::fem {

enum class Physics : std::uint8_t { HeatTransfer, LinearElasticity };

const char* to_string(Physics p);

[[nodiscard]] constexpr int dofs_per_node(Physics p, int dim) {
  return p == Physics::HeatTransfer ? 1 : dim;
}

/// Material parameters. Heat uses `conductivity`; elasticity uses
/// `youngs_modulus` and `poisson_ratio`.
struct Material {
  double conductivity = 1.0;
  double youngs_modulus = 1.0;
  double poisson_ratio = 0.3;
};

/// Computes the element stiffness matrix `ke` (ndof x ndof where
/// ndof = nodes_per_element * dofs_per_node) and load vector `fe` for the
/// element with corner-first node coordinates `coords` (npe x dim,
/// row-major). The load is a unit heat source / unit downward body force.
void element_system(Physics phys, mesh::ElementType type,
                    const double* coords, const Material& mat,
                    la::DenseView ke, double* fe);

}  // namespace feti::fem
