// Kernel-level microbenchmarks (google-benchmark): the dense and sparse
// primitives the dual-operator pipelines are built from, including the
// legacy vs modern sparse triangular solves whose gap drives Table II.

#include <benchmark/benchmark.h>

#include "gpu/sparse.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"
#include "sparse/simplicial_cholesky.hpp"
#include "util/rng.hpp"

namespace {

using namespace feti;

la::DenseMatrix random_dense(idx rows, idx cols, la::Layout layout,
                             std::uint64_t seed) {
  la::DenseMatrix m(rows, cols, layout);
  Rng rng(seed);
  for (idx r = 0; r < rows; ++r)
    for (idx c = 0; c < cols; ++c) m.at(r, c) = rng.uniform(-1, 1);
  return m;
}

/// A realistic factor: simplicial Cholesky of a 2D grid Laplacian.
la::Csr grid_factor(idx grid) {
  std::vector<la::Triplet> t;
  auto id = [grid](idx i, idx j) { return j * grid + i; };
  for (idx j = 0; j < grid; ++j)
    for (idx i = 0; i < grid; ++i) {
      double d = 4.1;
      if (i > 0) t.push_back({id(i, j), id(i - 1, j), -1.0});
      if (i + 1 < grid) t.push_back({id(i, j), id(i + 1, j), -1.0});
      if (j > 0) t.push_back({id(i, j), id(i, j - 1), -1.0});
      if (j + 1 < grid) t.push_back({id(i, j), id(i, j + 1), -1.0});
      t.push_back({id(i, j), id(i, j), d});
    }
  la::Csr a = la::Csr::from_triplets(grid * grid, grid * grid, std::move(t));
  sparse::SimplicialCholesky chol;
  chol.analyze(a, sparse::OrderingKind::MinimumDegree);
  chol.factorize(a);
  return chol.factor_upper();
}

void BM_Gemv(benchmark::State& state) {
  const idx n = static_cast<idx>(state.range(0));
  la::DenseMatrix a = random_dense(n, n, la::Layout::ColMajor, 1);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), y(x);
  for (auto _ : state) {
    la::gemv(1.0, a.cview(), la::Trans::No, x.data(), 0.0, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Gemv)->Arg(256)->Arg(1024);

void BM_Symv(benchmark::State& state) {
  const idx n = static_cast<idx>(state.range(0));
  la::DenseMatrix a = random_dense(n, n, la::Layout::ColMajor, 2);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), y(x);
  for (auto _ : state) {
    la::symv(la::Uplo::Upper, 1.0, a.cview(), x.data(), 0.0, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Symv)->Arg(256)->Arg(1024);

void BM_Syrk(benchmark::State& state) {
  const idx n = static_cast<idx>(state.range(0));
  const idx k = 4 * n;
  la::DenseMatrix a = random_dense(k, n, la::Layout::RowMajor, 3);
  la::DenseMatrix c(n, n, la::Layout::ColMajor);
  for (auto _ : state) {
    la::syrk(la::Uplo::Upper, la::Trans::Yes, 1.0, a.cview(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * k / 2);
}
BENCHMARK(BM_Syrk)->Arg(64)->Arg(256);

void BM_DenseTrsm(benchmark::State& state) {
  const idx n = static_cast<idx>(state.range(0));
  const idx w = n / 4;
  la::DenseMatrix t(n, n, la::Layout::ColMajor);
  Rng rng(4);
  for (idx r = 0; r < n; ++r) {
    t.at(r, r) = 3.0;
    for (idx c = r + 1; c < n; ++c) t.at(r, c) = rng.uniform(-0.1, 0.1);
  }
  la::DenseMatrix b = random_dense(n, w, la::Layout::RowMajor, 5);
  for (auto _ : state) {
    la::DenseMatrix x = b;
    la::trsm(la::Uplo::Upper, la::Trans::Yes, t.cview(), x.view());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * w / 2);
}
BENCHMARK(BM_DenseTrsm)->Arg(256)->Arg(512);

void BM_SparseTrsmCpu(benchmark::State& state) {
  const idx grid = static_cast<idx>(state.range(0));
  la::Csr u = grid_factor(grid);
  const idx n = u.nrows(), w = 32;
  la::DenseMatrix b = random_dense(n, w, la::Layout::RowMajor, 6);
  for (auto _ : state) {
    la::DenseMatrix x = b;
    la::sp_trsm(la::Uplo::Upper, la::Trans::Yes, u, x.view());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * u.nnz() * w);
}
BENCHMARK(BM_SparseTrsmCpu)->Arg(24)->Arg(48);

void BM_GpuSparseTrsm(benchmark::State& state) {
  // state.range(0): grid size; state.range(1): 0 = legacy, 1 = modern.
  static gpu::Device dev([] {
    gpu::DeviceConfig cfg;
    cfg.launch_latency_us = 0.0;
    return cfg;
  }());
  const idx grid = static_cast<idx>(state.range(0));
  const auto api = state.range(1) == 0 ? gpu::sparse::Api::Legacy
                                       : gpu::sparse::Api::Modern;
  la::Csr u = grid_factor(grid);
  const idx n = u.nrows(), w = 32;
  gpu::Stream s = dev.create_stream();
  gpu::sparse::SpTrsmPlan plan(dev, s, api, u, la::Layout::ColMajor, true,
                               la::Layout::RowMajor, w);
  gpu::DeviceDense b = gpu::alloc_dense(dev, n, w, la::Layout::RowMajor);
  la::DenseMatrix rhs = random_dense(n, w, la::Layout::RowMajor, 8);
  for (auto _ : state) {
    // Refresh the RHS each round (in-place solves would otherwise drive the
    // values towards zero) — matches the per-step value refresh anyway.
    s.memcpy_h2d(b.data, rhs.data(), rhs.size() * sizeof(double));
    plan.solve(s, b, nullptr);
    s.synchronize();
  }
  state.SetItemsProcessed(state.iterations() * u.nnz() * w);
  state.SetLabel(gpu::sparse::to_string(api));
  gpu::free_dense(dev, b);
}
BENCHMARK(BM_GpuSparseTrsm)
    ->Args({24, 0})
    ->Args({24, 1})
    ->Args({48, 0})
    ->Args({48, 1});

void BM_Spmm(benchmark::State& state) {
  const idx grid = static_cast<idx>(state.range(0));
  la::Csr u = grid_factor(grid);
  const idx n = u.nrows(), w = 32;
  la::DenseMatrix b = random_dense(n, w, la::Layout::RowMajor, 7);
  la::DenseMatrix c(n, w, la::Layout::RowMajor);
  for (auto _ : state) {
    la::spmm(1.0, u, la::Trans::No, b.cview(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * u.nnz() * w);
}
BENCHMARK(BM_Spmm)->Arg(24)->Arg(48);

}  // namespace

BENCHMARK_MAIN();
