#include "mesh/grid.hpp"

#include <algorithm>
#include <map>

namespace feti::mesh {

const char* to_string(ElementType t) {
  switch (t) {
    case ElementType::Tri3: return "tri3";
    case ElementType::Tri6: return "tri6";
    case ElementType::Tet4: return "tet4";
    case ElementType::Tet10: return "tet10";
  }
  return "?";
}

namespace {

/// Lattice helper: nodes live on an (s*nx+1) x (s*ny+1) [x (s*nz+1)] grid
/// where s = 1 (linear) or 2 (quadratic, midpoints on the half grid).
struct Lattice2 {
  idx nx, ny;
  int s;
  [[nodiscard]] idx id(idx i, idx j) const { return j * (s * nx + 1) + i; }
  [[nodiscard]] idx count() const { return (s * nx + 1) * (s * ny + 1); }
};

struct Lattice3 {
  idx nx, ny, nz;
  int s;
  [[nodiscard]] idx id(idx i, idx j, idx k) const {
    return (k * (s * ny + 1) + j) * (s * nx + 1) + i;
  }
  [[nodiscard]] widx count() const {
    return static_cast<widx>(s * nx + 1) * (s * ny + 1) * (s * nz + 1);
  }
};

struct Pt2 {
  idx i, j;
};
struct Pt3 {
  idx i, j, k;
};

Pt2 mid(Pt2 a, Pt2 b) { return {(a.i + b.i) / 2, (a.j + b.j) / 2}; }
Pt3 mid(Pt3 a, Pt3 b) {
  return {(a.i + b.i) / 2, (a.j + b.j) / 2, (a.k + b.k) / 2};
}

void emit_triangle(const Lattice2& lat, ElementOrder order, Pt2 a, Pt2 b,
                   Pt2 c, std::vector<idx>& elems) {
  elems.push_back(lat.id(a.i, a.j));
  elems.push_back(lat.id(b.i, b.j));
  elems.push_back(lat.id(c.i, c.j));
  if (order == ElementOrder::Quadratic) {
    const Pt2 ab = mid(a, b), bc = mid(b, c), ca = mid(c, a);
    elems.push_back(lat.id(ab.i, ab.j));
    elems.push_back(lat.id(bc.i, bc.j));
    elems.push_back(lat.id(ca.i, ca.j));
  }
}

void emit_tet(const Lattice3& lat, ElementOrder order, Pt3 a, Pt3 b, Pt3 c,
              Pt3 d, std::vector<idx>& elems) {
  auto id = [&](Pt3 p) { return lat.id(p.i, p.j, p.k); };
  elems.push_back(id(a));
  elems.push_back(id(b));
  elems.push_back(id(c));
  elems.push_back(id(d));
  if (order == ElementOrder::Quadratic) {
    elems.push_back(id(mid(a, b)));
    elems.push_back(id(mid(b, c)));
    elems.push_back(id(mid(a, c)));
    elems.push_back(id(mid(a, d)));
    elems.push_back(id(mid(b, d)));
    elems.push_back(id(mid(c, d)));
  }
}

/// Appends both triangles of cell (ci, cj) to `elems`.
void cell_triangles(const Lattice2& lat, ElementOrder order, idx ci, idx cj,
                    std::vector<idx>& elems) {
  const idx s = lat.s;
  const Pt2 p00{s * ci, s * cj}, p10{s * ci + s, s * cj},
      p11{s * ci + s, s * cj + s}, p01{s * ci, s * cj + s};
  emit_triangle(lat, order, p00, p10, p11, elems);
  emit_triangle(lat, order, p00, p11, p01, elems);
}

/// Appends the six Kuhn tetrahedra of cell (ci, cj, ck) to `elems`. All six
/// share the main diagonal v0-v7, yielding a conforming mesh.
void cell_tets(const Lattice3& lat, ElementOrder order, idx ci, idx cj,
               idx ck, std::vector<idx>& elems) {
  const idx s = lat.s;
  const Pt3 v0{s * ci, s * cj, s * ck};
  const Pt3 v7{s * ci + s, s * cj + s, s * ck + s};
  static constexpr int perms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                      {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& p : perms) {
    Pt3 a = v0, b = v0, c = v0;
    auto step = [s](Pt3 q, int axis) {
      if (axis == 0) q.i += s;
      if (axis == 1) q.j += s;
      if (axis == 2) q.k += s;
      return q;
    };
    b = step(a, p[0]);
    c = step(b, p[1]);
    emit_tet(lat, order, a, b, c, v7, elems);
  }
}

}  // namespace

Mesh make_grid_2d(idx nx, idx ny, ElementOrder order) {
  check(nx >= 1 && ny >= 1, "make_grid_2d: need at least one cell per axis");
  const int s = order == ElementOrder::Linear ? 1 : 2;
  const Lattice2 lat{nx, ny, s};
  Mesh m;
  m.dim = 2;
  m.type = order == ElementOrder::Linear ? ElementType::Tri3
                                         : ElementType::Tri6;
  m.num_nodes = lat.count();
  m.coords.resize(static_cast<widx>(m.num_nodes) * 2);
  const double hx = 1.0 / (s * nx), hy = 1.0 / (s * ny);
  for (idx j = 0; j <= s * ny; ++j)
    for (idx i = 0; i <= s * nx; ++i) {
      const idx n = lat.id(i, j);
      m.coords[2 * static_cast<widx>(n)] = i * hx;
      m.coords[2 * static_cast<widx>(n) + 1] = j * hy;
    }
  for (idx cj = 0; cj < ny; ++cj)
    for (idx ci = 0; ci < nx; ++ci) cell_triangles(lat, order, ci, cj, m.elems);
  for (idx j = 0; j <= s * ny; ++j) m.dirichlet_nodes.push_back(lat.id(0, j));
  std::sort(m.dirichlet_nodes.begin(), m.dirichlet_nodes.end());
  return m;
}

Mesh make_grid_3d(idx nx, idx ny, idx nz, ElementOrder order) {
  check(nx >= 1 && ny >= 1 && nz >= 1,
        "make_grid_3d: need at least one cell per axis");
  const int s = order == ElementOrder::Linear ? 1 : 2;
  const Lattice3 lat{nx, ny, nz, s};
  Mesh m;
  m.dim = 3;
  m.type = order == ElementOrder::Linear ? ElementType::Tet4
                                         : ElementType::Tet10;
  m.num_nodes = static_cast<idx>(lat.count());
  m.coords.resize(static_cast<widx>(m.num_nodes) * 3);
  const double hx = 1.0 / (s * nx), hy = 1.0 / (s * ny), hz = 1.0 / (s * nz);
  for (idx k = 0; k <= s * nz; ++k)
    for (idx j = 0; j <= s * ny; ++j)
      for (idx i = 0; i <= s * nx; ++i) {
        const idx n = lat.id(i, j, k);
        m.coords[3 * static_cast<widx>(n)] = i * hx;
        m.coords[3 * static_cast<widx>(n) + 1] = j * hy;
        m.coords[3 * static_cast<widx>(n) + 2] = k * hz;
      }
  for (idx ck = 0; ck < nz; ++ck)
    for (idx cj = 0; cj < ny; ++cj)
      for (idx ci = 0; ci < nx; ++ci)
        cell_tets(lat, order, ci, cj, ck, m.elems);
  for (idx k = 0; k <= s * nz; ++k)
    for (idx j = 0; j <= s * ny; ++j)
      m.dirichlet_nodes.push_back(lat.id(0, j, k));
  std::sort(m.dirichlet_nodes.begin(), m.dirichlet_nodes.end());
  return m;
}

namespace {

/// Extracts the subdomain submesh given the element index list.
Subdomain extract(const Mesh& mesh, const std::vector<idx>& element_ids) {
  const int npe = nodes_per_element(mesh.type);
  Subdomain sd;
  sd.local.dim = mesh.dim;
  sd.local.type = mesh.type;
  // Collect the global node set.
  std::vector<idx> nodes;
  nodes.reserve(element_ids.size() * npe);
  for (idx e : element_ids) {
    const idx* en = mesh.element(e);
    nodes.insert(nodes.end(), en, en + npe);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  sd.node_l2g = nodes;
  sd.local.num_nodes = static_cast<idx>(nodes.size());
  sd.local.coords.resize(static_cast<widx>(nodes.size()) * mesh.dim);
  for (std::size_t l = 0; l < nodes.size(); ++l)
    for (int c = 0; c < mesh.dim; ++c)
      sd.local.coords[l * mesh.dim + c] = mesh.coord(nodes[l], c);
  // Renumber elements.
  sd.local.elems.reserve(element_ids.size() * npe);
  for (idx e : element_ids) {
    const idx* en = mesh.element(e);
    for (int a = 0; a < npe; ++a) {
      const auto it = std::lower_bound(nodes.begin(), nodes.end(), en[a]);
      sd.local.elems.push_back(static_cast<idx>(it - nodes.begin()));
    }
  }
  // Local Dirichlet nodes.
  for (std::size_t l = 0; l < nodes.size(); ++l)
    if (std::binary_search(mesh.dirichlet_nodes.begin(),
                           mesh.dirichlet_nodes.end(), nodes[l]))
      sd.local.dirichlet_nodes.push_back(static_cast<idx>(l));
  return sd;
}

void finalize(Decomposition& dec, const Mesh& mesh, idx clusters) {
  const idx nsub = static_cast<idx>(dec.subdomains.size());
  check(clusters >= 1 && clusters <= nsub,
        "decompose: cluster count must be in [1, #subdomains]");
  dec.num_clusters = clusters;
  dec.cluster_of.resize(nsub);
  for (idx s = 0; s < nsub; ++s)
    dec.cluster_of[s] = s * clusters / nsub;
  dec.global_nodes = mesh.num_nodes;
  dec.node_multiplicity.assign(mesh.num_nodes, 0);
  for (const auto& sd : dec.subdomains)
    for (idx g : sd.node_l2g) dec.node_multiplicity[g] += 1;
}

/// Block boundary of axis length n split into p parts.
idx block_lo(idx n, idx p, idx b) { return b * n / p; }

}  // namespace

Decomposition decompose_2d(const Mesh& mesh, idx nx, idx ny, idx sx, idx sy,
                           idx clusters) {
  check(element_dim(mesh.type) == 2, "decompose_2d: mesh is not 2D");
  check(sx >= 1 && sx <= nx && sy >= 1 && sy <= ny,
        "decompose_2d: invalid subdomain grid");
  Decomposition dec;
  for (idx q = 0; q < sy; ++q)
    for (idx p = 0; p < sx; ++p) {
      std::vector<idx> elems;
      for (idx cj = block_lo(ny, sy, q); cj < block_lo(ny, sy, q + 1); ++cj)
        for (idx ci = block_lo(nx, sx, p); ci < block_lo(nx, sx, p + 1); ++ci) {
          const idx cell = cj * nx + ci;
          elems.push_back(2 * cell);
          elems.push_back(2 * cell + 1);
        }
      dec.subdomains.push_back(extract(mesh, elems));
    }
  finalize(dec, mesh, clusters);
  return dec;
}

Decomposition decompose_3d(const Mesh& mesh, idx nx, idx ny, idx nz, idx sx,
                           idx sy, idx sz, idx clusters) {
  check(element_dim(mesh.type) == 3, "decompose_3d: mesh is not 3D");
  check(sx >= 1 && sx <= nx && sy >= 1 && sy <= ny && sz >= 1 && sz <= nz,
        "decompose_3d: invalid subdomain grid");
  Decomposition dec;
  for (idx r = 0; r < sz; ++r)
    for (idx q = 0; q < sy; ++q)
      for (idx p = 0; p < sx; ++p) {
        std::vector<idx> elems;
        for (idx ck = block_lo(nz, sz, r); ck < block_lo(nz, sz, r + 1); ++ck)
          for (idx cj = block_lo(ny, sy, q); cj < block_lo(ny, sy, q + 1);
               ++cj)
            for (idx ci = block_lo(nx, sx, p); ci < block_lo(nx, sx, p + 1);
                 ++ci) {
              const idx cell = (ck * ny + cj) * nx + ci;
              for (idx t = 0; t < 6; ++t) elems.push_back(6 * cell + t);
            }
        dec.subdomains.push_back(extract(mesh, elems));
      }
  finalize(dec, mesh, clusters);
  return dec;
}

}  // namespace feti::mesh
