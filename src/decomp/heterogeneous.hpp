#pragma once

// Heterogeneous-coefficient material layouts for the structured benchmark
// meshes. The checkerboard pattern — alternating "hard" and "soft"
// subdomains with a material-coefficient contrast of several orders of
// magnitude — is the classical stress test for FETI preconditioning: the
// unpreconditioned dual operator's condition number grows with the jump,
// while the scaled Dirichlet preconditioner keeps iteration counts nearly
// contrast-independent. bench_precond and the preconditioner tests build
// their heterogeneous problems from these layouts via the per-subdomain
// build_feti_problem overload.

#include <vector>

#include "fem/assembler.hpp"
#include "util/common.hpp"

namespace feti::decomp {

/// One material per subdomain of a decompose_2d(sx, sy) grid: subdomain
/// (p, q) (s = q*sx + p, matching the decomposition's subdomain order) gets
/// `base` scaled by `jump` when (p + q) is odd. Both the conductivity and
/// the Young's modulus are scaled, so the layout serves either physics.
/// `jump` must be positive; 1.0 degenerates to the uniform problem.
[[nodiscard]] std::vector<fem::Material> checkerboard_materials_2d(
    idx sx, idx sy, double jump, const fem::Material& base = {});

/// 3D variant for a decompose_3d(sx, sy, sz) grid: subdomain (p, q, r)
/// (s = (r*sy + q)*sx + p) gets the scaled material when (p + q + r) is odd.
[[nodiscard]] std::vector<fem::Material> checkerboard_materials_3d(
    idx sx, idx sy, idx sz, double jump, const fem::Material& base = {});

/// The coefficient contrast max/min over a material set (for the autotuner's
/// WorkloadHint::coefficient_jump): the larger of the conductivity ratio and
/// the Young's-modulus ratio. Returns 1.0 for an empty set.
[[nodiscard]] double coefficient_jump(const std::vector<fem::Material>& mats);

}  // namespace feti::decomp
