#pragma once

// Device-resident matrix descriptors and upload helpers.
//
// Device memory is host memory here (see gpu/runtime.hpp), but every buffer
// below is allocated through Device::alloc and filled through stream-ordered
// copies, preserving the persistent-allocation discipline and transfer
// points of the paper's implementation.

#include "gpu/runtime.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"

namespace feti::gpu {

/// Dense matrix in device memory (descriptor; owner frees via free_dense).
struct DeviceDense {
  double* data = nullptr;
  idx rows = 0;
  idx cols = 0;
  idx ld = 0;
  la::Layout layout = la::Layout::ColMajor;

  [[nodiscard]] la::DenseView view() const {
    return {data, rows, cols, ld, layout};
  }
  [[nodiscard]] la::ConstDenseView cview() const {
    return {data, rows, cols, ld, layout};
  }
  [[nodiscard]] std::size_t bytes() const {
    const widx span = layout == la::Layout::RowMajor
                          ? static_cast<widx>(rows) * ld
                          : static_cast<widx>(cols) * ld;
    return static_cast<std::size_t>(span) * sizeof(double);
  }
};

DeviceDense alloc_dense(Device& dev, idx rows, idx cols, la::Layout layout);
void free_dense(Device& dev, DeviceDense& d);

/// CSR matrix in device memory.
struct DeviceCsr {
  idx nrows = 0;
  idx ncols = 0;
  idx nnz = 0;
  idx* rowptr = nullptr;
  idx* colidx = nullptr;
  double* vals = nullptr;

  /// Host-side view over the device arrays (valid because the virtual
  /// device shares the address space; kernels use this internally).
  [[nodiscard]] la::Csr as_host_csr() const {
    return la::Csr(nrows, ncols,
                   std::vector<idx>(rowptr, rowptr + nrows + 1),
                   std::vector<idx>(colidx, colidx + nnz),
                   std::vector<double>(vals, vals + nnz));
  }
};

/// Allocates and uploads a full CSR matrix (structure + values).
DeviceCsr upload_csr(Device& dev, Stream& s, const la::Csr& m);
/// Stream-ordered value refresh (structure must match).
void update_csr_values(Stream& s, const DeviceCsr& d, const la::Csr& m);
void free_csr(Device& dev, DeviceCsr& d);

/// Uploads a plain array.
template <typename T>
T* upload_array(Device& dev, Stream& s, const std::vector<T>& host) {
  T* p = dev.alloc_n<T>(host.size());
  s.memcpy_h2d(p, host.data(), host.size() * sizeof(T));
  return p;
}

}  // namespace feti::gpu
