#pragma once

// Shape functions and reference gradients for linear and quadratic
// simplices (Tri3/Tri6/Tet4/Tet10). Node ordering matches mesh/grid.cpp:
// corners first, then mid-edge nodes in the order (01), (12), (20) for
// triangles and (01), (12), (02), (03), (13), (23) for tetrahedra.

#include "mesh/grid.hpp"

namespace feti::fem {

/// Evaluates all shape functions at reference point xi. N must hold
/// nodes_per_element(t) entries.
void shape_values(mesh::ElementType t, const double* xi, double* n);

/// Evaluates reference-space gradients at xi. dn is row-major
/// [node][direction], with element_dim(t) directions per node.
void shape_gradients(mesh::ElementType t, const double* xi, double* dn);

}  // namespace feti::fem
