#pragma once

// Auxiliary device kernels: batched scatter/gather between the cluster-wide
// dual vector and the per-subdomain dual vectors (Section IV-B/IV-C of the
// paper: a single kernel handles all subdomains when scatter/gather runs on
// the GPU), plus small vector utilities.

#include <vector>

#include "gpu/data.hpp"
#include "gpu/runtime.hpp"

namespace feti::gpu::kernels {

/// One subdomain's slice of a scatter/gather: `map[i]` is the cluster index
/// of local lambda i.
struct DualMap {
  const idx* map = nullptr;  ///< device array, length n
  idx n = 0;
  double* local = nullptr;   ///< device subdomain vector, length n
};

/// Single submission: local[i] = cluster[map[i]] for every subdomain.
void scatter_batch(Stream& s, const double* cluster,
                   std::vector<DualMap> jobs);

/// Single submission: cluster = sum of scattered locals; zero-fills the
/// cluster vector first.
void gather_batch(Stream& s, double* cluster, idx cluster_size,
                  std::vector<DualMap> jobs);

/// Sets a device vector to zero.
void fill_zero(Stream& s, double* data, idx n);

}  // namespace feti::gpu::kernels
