// Service-layer tests: the operator pool's checkout discipline
// (hit/miss/eviction, exclusive same-fingerprint checkout, precision-keyed
// entries), the SolverService job lifecycle (correctness of concurrent
// multi-tenant mixes against solo solves, wave packing, two-tenant cache
// isolation), the job fingerprint, the pool-pressure autotune hook, and
// the concurrent-reader safety of the DualOperator counters.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "decomp/feti_problem.hpp"
#include "service/solver_service.hpp"
#include "test_helpers.hpp"

namespace feti {
namespace {

using core::FetiSolver;
using core::FetiSolverOptions;
using core::FetiStepResult;
using decomp::FetiProblem;
using service::JobResult;
using service::OperatorPool;
using service::PoolStats;
using service::ServiceOptions;
using service::SolveJob;
using service::SolverService;

FetiProblem heat2d_problem(idx cells = 6, idx splits = 2) {
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, mesh::ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
  return decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
}

SolveJob job_for(const FetiProblem& p, std::string key,
                 std::vector<double> rhs = {}) {
  SolveJob job;
  job.problem = &p;
  job.key = std::move(key);
  job.pcpg.rel_tolerance = 1e-10;
  job.dual_rhs = std::move(rhs);
  return job;
}

/// Solo reference: one FetiSolver on its own context, physical d. The
/// fp32 storage tier iterates with a matching looser tolerance (1e-10 can
/// break down inside fp32 round-off).
FetiStepResult solo_solve(const FetiProblem& p, const std::string& key,
                          double rel_tolerance = 1e-10) {
  gpu::ExecutionContext ctx{gpu::DeviceConfig::from_env()};
  FetiSolverOptions o;
  o.dualop = core::recommend_config(key, 2, p.max_subdomain_dofs(), 1,
                                    gpu::DeviceTopology{1, 0});
  o.pcpg.rel_tolerance = rel_tolerance;
  FetiSolver solver(p, o, &ctx);
  solver.prepare();
  return solver.solve_step();
}

void expect_u_near(const std::vector<double>& u, const std::vector<double>& ref,
                   double tol, const std::string& what) {
  ASSERT_EQ(u.size(), ref.size()) << what;
  double scale = 0.0;
  for (double v : ref) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < u.size(); ++i)
    ASSERT_NEAR(u[i], ref[i], tol * std::max(1.0, scale)) << what << " [" << i
                                                          << "]";
}

// ---------------------------------------------------------------- fingerprint

TEST(JobFingerprint, KeyAndProblemIdentityBothEnterTheHash) {
  FetiProblem a = heat2d_problem();
  FetiProblem b = heat2d_problem();
  // Deterministic for one (problem, key) pairing.
  EXPECT_EQ(service::job_fingerprint(a, "expl legacy"),
            service::job_fingerprint(a, "expl legacy"));
  // The resolved key is an axis of the pooled entry: the fp32 storage tier
  // of the same problem is a distinct entry, never a hit on the fp64 one.
  EXPECT_NE(service::job_fingerprint(a, "expl legacy"),
            service::job_fingerprint(a, "expl legacy f32"));
  // Distinct problem instances (even structurally identical ones) are
  // distinct tenants: the pooled operator holds references into its
  // problem, so instance identity is the correct notion.
  EXPECT_NE(service::job_fingerprint(a, "expl legacy"),
            service::job_fingerprint(b, "expl legacy"));
}

// --------------------------------------------------------------- operator pool

OperatorPool::SolverFactory factory_for(const FetiProblem& p,
                                        const std::string& key) {
  return [&p, key](gpu::ExecutionContext& ctx) {
    FetiSolverOptions o;
    o.dualop = core::recommend_config(key, 2, p.max_subdomain_dofs(), 1,
                                      gpu::DeviceTopology{1, 0});
    return std::make_unique<FetiSolver>(p, o, &ctx);
  };
}

TEST(OperatorPool, MissBuildsHitReusesAndCountersTrack) {
  FetiProblem p = heat2d_problem();
  gpu::DevicePool devices(2, gpu::DevicePool::split_config(
                                 gpu::DeviceConfig::from_env(), 2));
  OperatorPool pool(devices, /*budget_bytes=*/0);
  const std::uint64_t fp = service::job_fingerprint(p, "expl legacy");

  OperatorPool::Checkout c1 = pool.checkout(fp, factory_for(p, "expl legacy"));
  EXPECT_FALSE(c1.hit);
  EXPECT_TRUE(c1.solver->prepared());
  FetiSolver* first = c1.solver;
  pool.give_back(fp);

  OperatorPool::Checkout c2 = pool.checkout(fp, factory_for(p, "expl legacy"));
  EXPECT_TRUE(c2.hit);
  EXPECT_EQ(c2.solver, first);  // the same prepared instance
  EXPECT_EQ(c2.shard, c1.shard);
  pool.give_back(fp);

  const PoolStats s = pool.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.resident_bytes, 0u);
}

TEST(OperatorPool, LruEvictionUnderBudgetDropsIdleEntries) {
  FetiProblem p = heat2d_problem();
  gpu::DevicePool devices(1, gpu::DeviceConfig::from_env());
  // Budget sized for roughly one entry: measure the first entry, then cap
  // the pool at 1.5x its bytes so a second fingerprint must evict it.
  OperatorPool probe(devices, 0);
  // Two equal-footprint entries: same problem, same precision, different
  // factorization backend (same F̃ blocks, distinct fingerprints).
  const std::uint64_t fp_a = service::job_fingerprint(p, "expl legacy");
  const std::uint64_t fp_b = service::job_fingerprint(p, "expl mkl");
  (void)probe.checkout(fp_a, factory_for(p, "expl legacy"));
  probe.give_back(fp_a);
  const std::size_t one_entry = probe.stats().resident_bytes;
  ASSERT_GT(one_entry, 0u);

  OperatorPool pool(devices, one_entry + one_entry / 2);
  (void)pool.checkout(fp_a, factory_for(p, "expl legacy"));
  pool.give_back(fp_a);
  EXPECT_EQ(pool.stats().entries, 1u);
  // The second entry pushes the pool over budget and evicts the idle
  // first one (LRU).
  (void)pool.checkout(fp_b, factory_for(p, "expl mkl"));
  pool.give_back(fp_b);
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_LE(s.resident_bytes, s.budget_bytes);
  // The evicted fingerprint is a miss again.
  (void)pool.checkout(fp_a, factory_for(p, "expl legacy"));
  pool.give_back(fp_a);
  EXPECT_EQ(pool.stats().misses, 3);
}

TEST(OperatorPool, SameFingerprintCheckoutIsExclusive) {
  FetiProblem p = heat2d_problem();
  gpu::DevicePool devices(1, gpu::DeviceConfig::from_env());
  OperatorPool pool(devices, 0);
  const std::uint64_t fp = service::job_fingerprint(p, "impl mkl");

  OperatorPool::Checkout c1 = pool.checkout(fp, factory_for(p, "impl mkl"));
  std::atomic<bool> second_got_it{false};
  std::thread waiter([&] {
    OperatorPool::Checkout c2 = pool.checkout(fp, factory_for(p, "impl mkl"));
    second_got_it.store(true);
    EXPECT_TRUE(c2.hit);
    pool.give_back(fp);
  });
  // The second checkout must block while we hold the entry.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_got_it.load());
  pool.give_back(fp);
  waiter.join();
  EXPECT_TRUE(second_got_it.load());
}

// --------------------------------------------------------------- solver service

TEST(SolverService, SingleJobMatchesSoloSolveAndReportsMetadata) {
  FetiProblem p = heat2d_problem();
  const FetiStepResult ref = solo_solve(p, "expl legacy");
  ASSERT_TRUE(ref.converged);

  SolverService svc;
  JobResult r = svc.submit(job_for(p, "expl legacy")).get();
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.pool_hit);
  EXPECT_EQ(r.key, "expl legacy");
  EXPECT_EQ(r.wave_size, 1);
  EXPECT_GT(r.job_id, 0u);
  EXPECT_GE(r.latency_seconds, r.solve_seconds);
  EXPECT_GE(r.queue_seconds, 0.0);
  // pcpg_seconds (satellite: per-phase wall clock) is a real sub-interval
  // of the step.
  EXPECT_GT(r.pcpg_seconds, 0.0);
  EXPECT_LE(r.pcpg_seconds, r.step_seconds);
  EXPECT_GE(r.apply_seconds, 0.0);
  expect_u_near(r.u, ref.u, 1e-9, "service vs solo");

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 1);
  EXPECT_EQ(st.completed, 1);
  EXPECT_EQ(st.waves, 1);
}

TEST(SolverService, MixedPrecisionTenantMixMatchesSoloSolves) {
  // N tenants × {fp64 GPU, fp32 GPU, CPU} concurrently through one
  // service; every result must match its solo solve in the right tolerance
  // tier (fp64 round-off vs the fp32 storage tier of the registry tests).
  FetiProblem pa = heat2d_problem(6);
  FetiProblem pb = heat2d_problem(8);
  struct Case {
    const FetiProblem* p;
    const char* key;
    double tol;
    double rel_tolerance;
  };
  // The fp32 cases iterate at 1e-5 — the tier above the fp32 operator's
  // noise floor the registry tests established (pushing CG below the
  // operator precision breaks down).
  const Case cases[] = {
      {&pa, "expl legacy", 1e-9, 1e-10},
      {&pb, "expl legacy f32", 2e-5, 1e-5},
      {&pa, "impl mkl", 1e-9, 1e-10},
      {&pb, "expl legacy", 1e-9, 1e-10},
      {&pa, "expl legacy f32", 2e-5, 1e-5},
      {&pb, "impl mkl", 1e-9, 1e-10},
  };
  std::vector<FetiStepResult> refs;
  for (const Case& c : cases)
    refs.push_back(solo_solve(*c.p, c.key, c.rel_tolerance));

  ServiceOptions opts;
  opts.num_shards = 2;
  SolverService svc(opts);
  std::vector<SolveJob> jobs;
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    SolveJob j = job_for(*cases[i].p, cases[i].key);
    j.pcpg.rel_tolerance = cases[i].rel_tolerance;
    j.tenant = i;
    jobs.push_back(std::move(j));
  }
  std::vector<std::future<JobResult>> futures = svc.submit(std::move(jobs));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    JobResult r = futures[i].get();
    ASSERT_TRUE(r.converged) << cases[i].key;
    EXPECT_EQ(r.tenant, i);
    EXPECT_EQ(r.key, cases[i].key);
    expect_u_near(r.u, refs[i].u, cases[i].tol, cases[i].key);
  }
  // All six (problem, key) pairings are distinct fingerprints — each one
  // prepared exactly once.
  const PoolStats ps = svc.pool_stats();
  EXPECT_EQ(ps.misses, 6);
  EXPECT_EQ(svc.stats().completed, 6);
}

TEST(SolverService, CompatibleJobsPackIntoOneWave) {
  FetiProblem p = heat2d_problem();
  ServiceOptions opts;
  opts.num_shards = 1;  // one worker: the burst is queued when it drains
  opts.max_wave = 4;
  SolverService svc(opts);
  // Warm the pool so the wave isn't serialized behind preparation.
  svc.submit(job_for(p, "expl legacy")).get();

  std::vector<SolveJob> jobs;
  for (int j = 0; j < 6; ++j) jobs.push_back(job_for(p, "expl legacy"));
  std::vector<std::future<JobResult>> futures = svc.submit(std::move(jobs));
  int max_wave = 0;
  for (auto& f : futures) {
    JobResult r = f.get();
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.pool_hit);
    EXPECT_LE(r.wave_size, opts.max_wave);
    max_wave = std::max(max_wave, r.wave_size);
  }
  EXPECT_GT(max_wave, 1);
  EXPECT_GT(svc.stats().batched_jobs, 0);
  EXPECT_LT(svc.stats().waves, 7);  // fewer solve calls than jobs
}

TEST(SolverService, IncompatiblePcpgOptionsNeverShareAWave) {
  FetiProblem p = heat2d_problem();
  ServiceOptions opts;
  opts.num_shards = 1;
  SolverService svc(opts);
  svc.submit(job_for(p, "expl legacy")).get();

  std::vector<SolveJob> jobs;
  for (int j = 0; j < 4; ++j) {
    SolveJob job = job_for(p, "expl legacy");
    job.pcpg.rel_tolerance = j % 2 == 0 ? 1e-10 : 1e-6;
    jobs.push_back(std::move(job));
  }
  std::vector<std::future<JobResult>> futures = svc.submit(std::move(jobs));
  for (std::size_t j = 0; j < futures.size(); ++j) {
    JobResult r = futures[j].get();
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.wave_size, 2);  // only same-tolerance jobs may pack
    // The wave's PCPG honored each job's own options: the loose-tolerance
    // jobs stop earlier.
    if (j % 2 == 1) {
      EXPECT_LE(r.rel_residual, 1e-6);
    }
  }
}

TEST(SolverService, TwoTenantDirtyStepNeverRefreshesTheOtherPooledOperator) {
  // Tenant isolation across the pool: A's matrix change must refresh A's
  // pooled operator only — B's next job still reports the cached skip.
  FetiProblem pa = heat2d_problem();
  FetiProblem pb = heat2d_problem(8);
  SolverService svc;
  JobResult a0 = svc.submit(job_for(pa, "expl legacy")).get();
  JobResult b0 = svc.submit(job_for(pb, "expl legacy")).get();
  ASSERT_FALSE(a0.pool_hit);
  ASSERT_FALSE(b0.pool_hit);

  decomp::scale_step(pa, 1.25);  // only tenant A's values change
  JobResult a1 = svc.submit(job_for(pa, "expl legacy")).get();
  JobResult b1 = svc.submit(job_for(pb, "expl legacy")).get();
  EXPECT_TRUE(a1.pool_hit);
  EXPECT_FALSE(a1.values_cached);
  EXPECT_EQ(a1.refreshed_subdomains, pa.num_subdomains());
  EXPECT_TRUE(b1.pool_hit);
  EXPECT_TRUE(b1.values_cached);
  EXPECT_EQ(b1.refreshed_subdomains, 0);
  EXPECT_TRUE(a1.converged);
  EXPECT_TRUE(b1.converged);
}

TEST(SolverService, AutotunedKeyDemotesToF32UnderPoolPressure) {
  FetiProblem p = heat2d_problem();
  SolveJob job;
  job.problem = &p;  // empty key = autotune
  idx max_lambdas = 0;
  for (const auto& s : p.sub)
    max_lambdas = std::max(max_lambdas, s.num_local_lambdas());
  const std::size_t blocks = static_cast<std::size_t>(p.num_subdomains()) *
                             static_cast<std::size_t>(max_lambdas) *
                             static_cast<std::size_t>(max_lambdas);

  // Roomy pool: fp64 explicit GPU assembly.
  core::DualOpConfig roomy = SolverService::plan_config(
      job, 2, gpu::DeviceTopology{1, 0}, /*remaining=*/blocks * 64,
      /*total=*/blocks * 64);
  EXPECT_EQ(roomy.axes().precision, core::Precision::F64);
  // Crowded pool (remaining budget between the fp32 and fp64 footprints):
  // the planner demotes the new entry to the fp32 storage tier.
  core::DualOpConfig tight = SolverService::plan_config(
      job, 2, gpu::DeviceTopology{1, 0},
      /*remaining=*/blocks * sizeof(double) - 1, /*total=*/blocks * 64);
  EXPECT_EQ(tight.axes().precision, core::Precision::F32);
  EXPECT_NE(tight.resolved_key().find(" f32"), std::string::npos);
  // No budget configured (total == 0): never demote.
  core::DualOpConfig unlimited = SolverService::plan_config(
      job, 2, gpu::DeviceTopology{1, 0}, /*remaining=*/0, /*total=*/0);
  EXPECT_EQ(unlimited.axes().precision, core::Precision::F64);
}

TEST(SolverService, CustomDualRhsWaveMatchesSequentialSolves) {
  // Load-multiplier mix: scaled copies of the physical d through one wave
  // vs sequential solo solve_step_many calls.
  FetiProblem p = heat2d_problem();
  gpu::ExecutionContext ctx{gpu::DeviceConfig::from_env()};
  FetiSolverOptions o;
  o.dualop = core::recommend_config("expl legacy", 2, p.max_subdomain_dofs(),
                                    1, gpu::DeviceTopology{1, 0});
  o.pcpg.rel_tolerance = 1e-10;
  FetiSolver solo(p, o, &ctx);
  solo.prepare();
  solo.dual_operator().update_values();  // compute_d needs the factors
  std::vector<double> d(static_cast<std::size_t>(p.num_lambdas));
  solo.dual_operator().compute_d(d.data());

  std::vector<std::vector<double>> rhs;
  for (int j = 0; j < 3; ++j) {
    rhs.push_back(d);
    for (auto& v : rhs.back()) v *= 1.0 + 0.25 * j;
  }
  std::vector<FetiStepResult> refs;
  for (const auto& r : rhs)
    refs.push_back(std::move(solo.solve_step_many({r}).front()));

  ServiceOptions opts;
  opts.num_shards = 1;
  SolverService svc(opts);
  svc.submit(job_for(p, "expl legacy")).get();  // warm
  std::vector<SolveJob> jobs;
  for (const auto& r : rhs) jobs.push_back(job_for(p, "expl legacy", r));
  std::vector<std::future<JobResult>> futures = svc.submit(std::move(jobs));
  for (std::size_t j = 0; j < futures.size(); ++j) {
    JobResult r = futures[j].get();
    ASSERT_TRUE(r.converged);
    expect_u_near(r.u, refs[j].u, 1e-8, "wave rhs " + std::to_string(j));
  }
}

TEST(SolverService, DestructorDrainsQueuedJobsBeforeJoining) {
  FetiProblem p = heat2d_problem();
  std::vector<std::future<JobResult>> futures;
  {
    SolverService svc;
    for (int j = 0; j < 4; ++j)
      futures.push_back(svc.submit(job_for(p, "impl mkl")));
    // Destructor runs here with jobs possibly still queued.
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().converged);
}

TEST(SolverService, BadDualRhsLengthIsRejectedAtSubmission) {
  FetiProblem p = heat2d_problem();
  SolverService svc;
  SolveJob job = job_for(p, "impl mkl");
  job.dual_rhs.assign(static_cast<std::size_t>(p.num_lambdas) + 1, 0.0);
  EXPECT_THROW(svc.submit(std::move(job)), std::invalid_argument);
}

// ------------------------------------------------- concurrent counter readers

TEST(DualOperatorCounters, SafeForConcurrentReadersDuringUpdates) {
  // Satellite: cache/fallback counters are atomics — reader threads
  // snapshot them while the owner thread drives the lifecycle. Monotone
  // non-decreasing snapshots prove the readers never see torn state.
  FetiProblem p = heat2d_problem();
  auto cfg = core::recommend_config("impl mkl", 2, p.max_subdomain_dofs(), 1,
                                    gpu::DeviceTopology{1, 0});
  auto op = core::make_dual_operator(p, cfg, nullptr);
  op->prepare();
  op->update_values();

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t)
    readers.emplace_back([&] {
      core::CacheStats prev;
      long prev_fallbacks = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const core::CacheStats s = op->cache_stats();
        const long fb = op->loop_fallback_count();
        if (s.steps < prev.steps || s.skipped_steps < prev.skipped_steps ||
            s.refreshed_subdomains < prev.refreshed_subdomains ||
            s.skipped_subdomains < prev.skipped_subdomains ||
            fb < prev_fallbacks)
          torn.store(true);
        prev = s;
        prev_fallbacks = fb;
      }
    });

  for (int step = 0; step < 40; ++step) {
    if (step % 2 == 0) decomp::scale_step(p, 1.0 + 1e-3);
    op->update_values();  // alternates refresh and skip paths
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_FALSE(torn.load());
  const core::CacheStats s = op->cache_stats();
  EXPECT_EQ(s.steps, 41);
  EXPECT_EQ(s.skipped_steps, 20);
  EXPECT_EQ(s.refreshed_subdomains, 21L * p.num_subdomains());
}

}  // namespace
}  // namespace feti
