// GPU dual-operator implementations (Section IV of the paper):
//
//  * ExplicitGpuDualOp — the paper's contribution: assembly of the local
//    dual operators F̃ᵢ on the (virtual) GPU with the full Table-I
//    parameter space (path, factor storage/order per solve, RHS order,
//    scatter/gather location), worker streams drawn from the execution
//    context, persistent vs temporary memory discipline, and CPU-GPU
//    overlap (numeric factorization of subdomain i+1 runs while the GPU
//    assembles i).
//  * ImplicitGpuDualOp — factors from the simplicial (CHOLMOD-like)
//    solver copied to the device; application via SpMV + two sparse
//    triangular solves + SpMV per subdomain.
//  * HybridDualOp — the prior-work baseline: assembly via the CPU Schur
//    path ("expl mkl"), application on the GPU.
//  * ShardedDualOp — multi-GPU sharding: subdomains partitioned across the
//    per-shard contexts of a gpu::DevicePool, one partial operator per
//    shard; dual results merge by summation because the dual gather is
//    additive. Registered for all three families ("expl legacy x2",
//    "impl modern x4", "expl hybrid x2", ...); whole batches are forwarded
//    to every shard, so the sharded path reaches the same device-side
//    batched apply as the single-device operators.
//
// All operators receive their execution resources (device, stream pool,
// workspace policy) through gpu::ExecutionContext instead of creating and
// clamping their own stream vectors.

#include <omp.h>

#include <exception>
#include <map>
#include <numeric>
#include <thread>
#include <type_traits>

#include "core/dualop_impls.hpp"
#include "core/dualop_registry.hpp"
#include "decomp/boundary.hpp"
#include "util/omp_guard.hpp"
#include "gpu/blas.hpp"
#include "gpu/kernels.hpp"
#include "gpu/sparse.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"
#include "sparse/simplicial_cholesky.hpp"
#include "sparse/supernodal_cholesky.hpp"

namespace feti::core {

namespace {

la::Csr permute_columns(const la::Csr& b, const std::vector<idx>& perm) {
  const std::vector<idx> iperm = la::invert_permutation(perm);
  std::vector<la::Triplet> t;
  t.reserve(static_cast<std::size_t>(b.nnz()));
  for (idx r = 0; r < b.nrows(); ++r)
    for (idx k = b.row_begin(r); k < b.row_end(r); ++k)
      t.push_back({r, iperm[b.col(k)], b.val(k)});
  return la::Csr::from_triplets(b.nrows(), b.ncols(), std::move(t));
}

/// Host-side boundary expansion of the sparsity-aware hybrid operator
/// (same algebra as the CPU sp families): mirrors the one-triangle
/// boundary Gram block G_bb = E_b K_reg⁻¹ E_bᵀ and multiplies
/// F̃ = B_b G_bb B_bᵀ through two SpMMs — the transposed view of the
/// row-major intermediate serves as the second operand, so no explicit
/// transpose is formed. Writes the full m×m target.
void expand_boundary(const la::Csr& b_b, la::DenseView g, la::Uplo stored,
                     la::DenseView target) {
  la::symmetrize_from(g, stored);
  const idx m = target.rows;
  const idx nb = g.rows;
  la::DenseMatrix t(m, nb, la::Layout::RowMajor);
  la::spmm(1.0, b_b, la::Trans::No, la::ConstDenseView(g), 0.0, t.view());
  const la::ConstDenseView t_trans{t.data(), nb, m, t.ld(),
                                   la::Layout::ColMajor};
  la::spmm(1.0, b_b, la::Trans::No, t_trans, 0.0, target);
}

/// The subdomains an operator is responsible for: the explicit subset when
/// given, otherwise all of them.
std::vector<idx> resolve_owned(const decomp::FetiProblem& p,
                               std::vector<idx> owned) {
  if (owned.empty()) {
    owned.resize(static_cast<std::size_t>(p.num_subdomains()));
    std::iota(owned.begin(), owned.end(), 0);
  }
  return owned;
}

/// Per-subdomain device dual vectors + cluster vectors + maps, and the two
/// scatter/gather application strategies of Section IV-C. Operates on the
/// owned subdomain subset only: the gathered cluster vector holds the
/// contributions of the owned subdomains and zero elsewhere, so partial
/// results of disjoint subsets sum to the full application.
///
/// `T` is the local-panel scalar: fp64 for the default operators, fp32 for
/// the mixed-precision explicit families. The cluster-wide dual vectors
/// always stay fp64 — the fp32 instantiation downcasts on scatter and the
/// gather accumulates the fp32 locals into the fp64 cluster vector.
template <typename T>
class GpuDualVectorsT {
 public:
  void prepare(gpu::Device& dev, gpu::Stream& s, const decomp::FetiProblem& p,
               const std::vector<idx>& owned) {
    dev_ = &dev;
    p_ = &p;
    owned_ = owned;
    subs_.resize(owned_.size());
    host_lam_.resize(subs_.size());
    host_q_.resize(subs_.size());
    for (std::size_t k = 0; k < owned_.size(); ++k) {
      const auto& fs = p.sub[owned_[k]];
      const idx m = fs.num_local_lambdas();
      subs_[k].n = m;
      subs_[k].lam = dev.alloc_n<T>(static_cast<std::size_t>(m));
      subs_[k].q = dev.alloc_n<T>(static_cast<std::size_t>(m));
      subs_[k].map = gpu::upload_array(dev, s, fs.lm_l2c);
      host_lam_[k].resize(static_cast<std::size_t>(m));
      host_q_[k].resize(static_cast<std::size_t>(m));
    }
    d_x_ = dev.alloc_n<double>(static_cast<std::size_t>(p.num_lambdas));
    d_y_ = dev.alloc_n<double>(static_cast<std::size_t>(p.num_lambdas));
    nlambda_ = p.num_lambdas;
    s.synchronize();
  }

  ~GpuDualVectorsT() {
    if (dev_ == nullptr) return;
    for (auto& sv : subs_) {
      dev_->free(sv.lam);
      dev_->free(sv.q);
      dev_->free(sv.lam_blk);
      dev_->free(sv.q_blk);
      dev_->free(const_cast<idx*>(sv.map));
    }
    dev_->free(d_x_);
    dev_->free(d_y_);
    dev_->free(d_x_blk_);
    dev_->free(d_y_blk_);
  }

  struct SubVec {
    T* lam = nullptr;
    T* q = nullptr;
    T* lam_blk = nullptr;  ///< m × batch_cap_ panel (multi-RHS apply)
    T* q_blk = nullptr;    ///< m × batch_cap_ panel (multi-RHS apply)
    idx blk_ld = 0;
    const idx* map = nullptr;
    idx n = 0;
  };

  /// Grow-only multi-RHS state: cluster-wide device blocks (num_lambdas ×
  /// cap) and per-subdomain panels (m × cap) in `layout`. Persistent across
  /// applies — batched apply sits in the PCPG per-iteration hot path, and a
  /// draining lockstep batch shrinks without triggering reallocation.
  void ensure_batch(idx nrhs, la::Layout layout) {
    if (batch_cap_ >= nrhs && layout == batch_layout_) return;
    const idx cap = std::max(nrhs, batch_cap_);
    // Invalidate the capacity up front and null every pointer between free
    // and realloc: a bad_alloc mid-growth must leave no dangling panel
    // behind (the destructor frees, and a caller may retry narrower, which
    // now forces a full rebuild instead of reusing freed buffers).
    batch_cap_ = 0;
    for (auto& sv : subs_) {
      dev_->free(sv.lam_blk);
      sv.lam_blk = nullptr;
      dev_->free(sv.q_blk);
      sv.q_blk = nullptr;
      const std::size_t panel =
          static_cast<std::size_t>(sv.n) * static_cast<std::size_t>(cap);
      sv.lam_blk = dev_->alloc_n<T>(std::max<std::size_t>(1, panel));
      sv.q_blk = dev_->alloc_n<T>(std::max<std::size_t>(1, panel));
      sv.blk_ld = layout == la::Layout::RowMajor ? cap : sv.n;
    }
    dev_->free(d_x_blk_);
    d_x_blk_ = nullptr;
    dev_->free(d_y_blk_);
    d_y_blk_ = nullptr;
    const std::size_t cluster =
        static_cast<std::size_t>(nlambda_) * static_cast<std::size_t>(cap);
    d_x_blk_ = dev_->alloc_n<double>(std::max<std::size_t>(1, cluster));
    d_y_blk_ = dev_->alloc_n<double>(std::max<std::size_t>(1, cluster));
    batch_cap_ = cap;
    batch_layout_ = layout;
  }

  [[nodiscard]] idx batch_capacity() const { return batch_cap_; }

  /// First-nrhs-columns device view of subdomain k's lambda/q panel.
  [[nodiscard]] gpu::DeviceDenseT<T> lam_panel(std::size_t k,
                                               idx nrhs) const {
    const SubVec& sv = subs_[k];
    return {sv.lam_blk, sv.n, nrhs, sv.blk_ld, batch_layout_};
  }
  [[nodiscard]] gpu::DeviceDenseT<T> q_panel(std::size_t k, idx nrhs) const {
    const SubVec& sv = subs_[k];
    return {sv.q_blk, sv.n, nrhs, sv.blk_ld, batch_layout_};
  }

  /// GPU scatter/gather: one H2D copy + a single scatter kernel, the
  /// per-subdomain kernels, a single gather kernel + one D2H copy.
  /// `submit_local` receives the *global* subdomain index.
  template <typename SubmitLocal>
  void apply_sg_gpu(gpu::Stream& main, std::vector<gpu::Stream>& streams,
                    const double* x, double* y, SubmitLocal&& submit_local) {
    main.memcpy_h2d(d_x_, x, static_cast<std::size_t>(nlambda_) *
                                 sizeof(double));
    std::vector<gpu::kernels::DualMapT<T>> scatter_jobs;
    scatter_jobs.reserve(subs_.size());
    for (auto& sv : subs_) scatter_jobs.push_back({sv.map, sv.n, sv.lam});
    gpu::kernels::scatter_batch(main, d_x_, std::move(scatter_jobs));
    gpu::Event scattered = main.record();

    const std::size_t nstreams = streams.size();
    std::vector<bool> used(nstreams, false);
    for (std::size_t k = 0; k < subs_.size(); ++k) {
      gpu::Stream& st = streams[k % nstreams];
      if (!used[k % nstreams]) {
        st.wait(scattered);
        used[k % nstreams] = true;
      }
      submit_local(owned_[k], st, subs_[k].lam, subs_[k].q);
    }
    for (std::size_t k = 0; k < nstreams; ++k)
      if (used[k]) main.wait(streams[k].record());

    std::vector<gpu::kernels::DualMapT<T>> gather_jobs;
    gather_jobs.reserve(subs_.size());
    for (auto& sv : subs_) gather_jobs.push_back({sv.map, sv.n, sv.q});
    gpu::kernels::gather_batch(main, d_y_, nlambda_, std::move(gather_jobs));
    main.memcpy_d2h(y, d_y_, static_cast<std::size_t>(nlambda_) *
                                 sizeof(double));
    main.synchronize();
  }

  /// Multi-RHS GPU scatter/gather: one H2D copy of the whole RHS block +
  /// a single multi-RHS scatter kernel, one block kernel per subdomain, a
  /// single multi-RHS gather kernel + one D2H copy — a batch costs the same
  /// number of submissions as a single apply. Requires ensure_batch(nrhs).
  /// `submit_local` receives the *global* subdomain index and the
  /// first-nrhs-columns device panels.
  template <typename SubmitLocal>
  void apply_sg_gpu_many(gpu::Stream& main, std::vector<gpu::Stream>& streams,
                         const double* x, double* y, idx nrhs,
                         SubmitLocal&& submit_local) {
    main.memcpy_h2d(d_x_blk_, x,
                    static_cast<std::size_t>(nlambda_) *
                        static_cast<std::size_t>(nrhs) * sizeof(double));
    std::vector<gpu::kernels::DualMapBlockT<T>> scatter_jobs;
    scatter_jobs.reserve(subs_.size());
    for (auto& sv : subs_)
      scatter_jobs.push_back({sv.map, sv.n, sv.lam_blk, sv.blk_ld});
    gpu::kernels::scatter_batch(main, d_x_blk_, nlambda_, nrhs, batch_layout_,
                                std::move(scatter_jobs));
    gpu::Event scattered = main.record();

    const std::size_t nstreams = streams.size();
    std::vector<bool> used(nstreams, false);
    for (std::size_t k = 0; k < subs_.size(); ++k) {
      gpu::Stream& st = streams[k % nstreams];
      if (!used[k % nstreams]) {
        st.wait(scattered);
        used[k % nstreams] = true;
      }
      submit_local(owned_[k], st, lam_panel(k, nrhs), q_panel(k, nrhs));
    }
    for (std::size_t k = 0; k < nstreams; ++k)
      if (used[k]) main.wait(streams[k].record());

    std::vector<gpu::kernels::DualMapBlockT<T>> gather_jobs;
    gather_jobs.reserve(subs_.size());
    for (auto& sv : subs_)
      gather_jobs.push_back({sv.map, sv.n, sv.q_blk, sv.blk_ld});
    gpu::kernels::gather_batch(main, d_y_blk_, nlambda_, nlambda_, nrhs,
                               batch_layout_, std::move(gather_jobs));
    main.memcpy_d2h(y, d_y_blk_,
                    static_cast<std::size_t>(nlambda_) *
                        static_cast<std::size_t>(nrhs) * sizeof(double));
    main.synchronize();
  }

  /// Device-resident single-RHS application: identical to apply_sg_gpu but
  /// the cluster vectors are caller-owned *device* pointers, so the H2D/D2H
  /// staging pair disappears — the scatter reads d_x and the gather writes
  /// d_y directly. Same kernels in the same order as the host-pointer path
  /// (the copies it drops are pure memcpys), so the result is bit-identical
  /// whatever scatter/gather placement the host path was configured for.
  template <typename SubmitLocal>
  void apply_sg_gpu_dev(gpu::Stream& main, std::vector<gpu::Stream>& streams,
                        const double* d_x, double* d_y,
                        SubmitLocal&& submit_local) {
    std::vector<gpu::kernels::DualMapT<T>> scatter_jobs;
    scatter_jobs.reserve(subs_.size());
    for (auto& sv : subs_) scatter_jobs.push_back({sv.map, sv.n, sv.lam});
    gpu::kernels::scatter_batch(main, d_x, std::move(scatter_jobs));
    gpu::Event scattered = main.record();

    const std::size_t nstreams = streams.size();
    std::vector<bool> used(nstreams, false);
    for (std::size_t k = 0; k < subs_.size(); ++k) {
      gpu::Stream& st = streams[k % nstreams];
      if (!used[k % nstreams]) {
        st.wait(scattered);
        used[k % nstreams] = true;
      }
      submit_local(owned_[k], st, subs_[k].lam, subs_[k].q);
    }
    for (std::size_t k = 0; k < nstreams; ++k)
      if (used[k]) main.wait(streams[k].record());

    std::vector<gpu::kernels::DualMapT<T>> gather_jobs;
    gather_jobs.reserve(subs_.size());
    for (auto& sv : subs_) gather_jobs.push_back({sv.map, sv.n, sv.q});
    gpu::kernels::gather_batch(main, d_y, nlambda_, std::move(gather_jobs));
    main.synchronize();
  }

  /// Device-resident multi-RHS application (see apply_sg_gpu_dev): caller
  /// device panels of contiguous cluster columns (leading dimension
  /// num_lambdas) replace the staged d_x_blk_/d_y_blk_ round trip.
  /// Requires ensure_batch(nrhs).
  template <typename SubmitLocal>
  void apply_sg_gpu_many_dev(gpu::Stream& main,
                             std::vector<gpu::Stream>& streams,
                             const double* d_x, double* d_y, idx nrhs,
                             SubmitLocal&& submit_local) {
    std::vector<gpu::kernels::DualMapBlockT<T>> scatter_jobs;
    scatter_jobs.reserve(subs_.size());
    for (auto& sv : subs_)
      scatter_jobs.push_back({sv.map, sv.n, sv.lam_blk, sv.blk_ld});
    gpu::kernels::scatter_batch(main, d_x, nlambda_, nrhs, batch_layout_,
                                std::move(scatter_jobs));
    gpu::Event scattered = main.record();

    const std::size_t nstreams = streams.size();
    std::vector<bool> used(nstreams, false);
    for (std::size_t k = 0; k < subs_.size(); ++k) {
      gpu::Stream& st = streams[k % nstreams];
      if (!used[k % nstreams]) {
        st.wait(scattered);
        used[k % nstreams] = true;
      }
      submit_local(owned_[k], st, lam_panel(k, nrhs), q_panel(k, nrhs));
    }
    for (std::size_t k = 0; k < nstreams; ++k)
      if (used[k]) main.wait(streams[k].record());

    std::vector<gpu::kernels::DualMapBlockT<T>> gather_jobs;
    gather_jobs.reserve(subs_.size());
    for (auto& sv : subs_)
      gather_jobs.push_back({sv.map, sv.n, sv.q_blk, sv.blk_ld});
    gpu::kernels::gather_batch(main, d_y, nlambda_, nlambda_, nrhs,
                               batch_layout_, std::move(gather_jobs));
    main.synchronize();
  }

  /// Multi-RHS CPU scatter/gather: per-subdomain H2D/D2H panel copies
  /// around each block kernel. Requires ensure_batch(nrhs).
  template <typename SubmitLocal>
  void apply_sg_cpu_many(std::vector<gpu::Stream>& streams, const double* x,
                         double* y, idx nrhs, SubmitLocal&& submit_local) {
    // Host staging panels are sized here (not in ensure_batch): only this
    // scatter/gather placement uses them, and resize is a no-op once grown.
    host_lam_blk_.resize(subs_.size());
    host_q_blk_.resize(subs_.size());
    for (std::size_t k = 0; k < subs_.size(); ++k) {
      const std::size_t panel = static_cast<std::size_t>(subs_[k].n) *
                                static_cast<std::size_t>(batch_cap_);
      if (host_lam_blk_[k].size() < panel) {
        host_lam_blk_[k].resize(panel);
        host_q_blk_[k].resize(panel);
      }
    }
    const std::size_t nstreams = streams.size();
    const std::size_t stride = static_cast<std::size_t>(nlambda_);
    for (std::size_t k = 0; k < subs_.size(); ++k) {
      const SubVec& sv = subs_[k];
      const auto& map = p_->sub[owned_[k]].lm_l2c;
      la::DenseViewT<T> lam{host_lam_blk_[k].data(), sv.n, nrhs, sv.blk_ld,
                            batch_layout_};
      for (std::size_t i = 0; i < map.size(); ++i)
        for (idx j = 0; j < nrhs; ++j)
          lam.at(static_cast<idx>(i), j) = static_cast<T>(
              x[map[i] + static_cast<std::size_t>(j) * stride]);
      gpu::Stream& st = streams[k % nstreams];
      const std::size_t bytes = panel_bytes(sv, nrhs);
      st.memcpy_h2d(sv.lam_blk, host_lam_blk_[k].data(), bytes);
      submit_local(owned_[k], st, lam_panel(k, nrhs), q_panel(k, nrhs));
      st.memcpy_d2h(host_q_blk_[k].data(), sv.q_blk, bytes);
    }
    for (auto& st : streams) st.synchronize();
    std::fill_n(y, stride * static_cast<std::size_t>(nrhs), 0.0);
    for (std::size_t k = 0; k < subs_.size(); ++k) {
      const SubVec& sv = subs_[k];
      const auto& map = p_->sub[owned_[k]].lm_l2c;
      la::ConstDenseViewT<T> q(host_q_blk_[k].data(), sv.n, nrhs, sv.blk_ld,
                               batch_layout_);
      for (std::size_t i = 0; i < map.size(); ++i)
        for (idx j = 0; j < nrhs; ++j)
          y[map[i] + static_cast<std::size_t>(j) * stride] +=
              static_cast<double>(q.at(static_cast<idx>(i), j));
    }
  }

  /// CPU scatter/gather: per-subdomain H2D/D2H copies around each kernel —
  /// more submissions (overhead) but more copy/compute concurrency.
  template <typename SubmitLocal>
  void apply_sg_cpu(std::vector<gpu::Stream>& streams, const double* x,
                    double* y, SubmitLocal&& submit_local) {
    const std::size_t nstreams = streams.size();
    for (std::size_t k = 0; k < subs_.size(); ++k) {
      const auto& map = p_->sub[owned_[k]].lm_l2c;
      for (std::size_t i = 0; i < map.size(); ++i)
        host_lam_[k][i] = static_cast<T>(x[map[i]]);
      gpu::Stream& st = streams[k % nstreams];
      st.memcpy_h2d(subs_[k].lam, host_lam_[k].data(),
                    host_lam_[k].size() * sizeof(T));
      submit_local(owned_[k], st, subs_[k].lam, subs_[k].q);
      st.memcpy_d2h(host_q_[k].data(), subs_[k].q,
                    host_q_[k].size() * sizeof(T));
    }
    for (auto& st : streams) st.synchronize();
    std::fill_n(y, nlambda_, 0.0);
    for (std::size_t k = 0; k < subs_.size(); ++k) {
      const auto& map = p_->sub[owned_[k]].lm_l2c;
      for (std::size_t i = 0; i < map.size(); ++i)
        y[map[i]] += static_cast<double>(host_q_[k][i]);
    }
  }

 private:
  /// Contiguous byte span covering the first nrhs columns of a panel
  /// (row-major panels interleave stale columns, so the span runs to the
  /// last row's live entry).
  [[nodiscard]] std::size_t panel_bytes(const SubVec& sv, idx nrhs) const {
    if (sv.n == 0 || nrhs == 0) return 0;
    const widx span =
        batch_layout_ == la::Layout::RowMajor
            ? static_cast<widx>(sv.n - 1) * sv.blk_ld + nrhs
            : static_cast<widx>(nrhs - 1) * sv.blk_ld + sv.n;
    return static_cast<std::size_t>(span) * sizeof(T);
  }

  gpu::Device* dev_ = nullptr;
  const decomp::FetiProblem* p_ = nullptr;
  std::vector<idx> owned_;
  std::vector<SubVec> subs_;
  std::vector<std::vector<T>> host_lam_, host_q_;
  std::vector<std::vector<T>> host_lam_blk_, host_q_blk_;
  double* d_x_ = nullptr;
  double* d_y_ = nullptr;
  double* d_x_blk_ = nullptr;
  double* d_y_blk_ = nullptr;
  idx nlambda_ = 0;
  idx batch_cap_ = 0;
  la::Layout batch_layout_ = la::Layout::RowMajor;
};

using GpuDualVectors = GpuDualVectorsT<double>;

// ---------------------------------------------------------------------------
// Explicit GPU (the contribution)
// ---------------------------------------------------------------------------

/// `T` is the persistent F̃ storage scalar: double for the paper's fp64
/// operators, float for the mixed-precision variants ("expl legacy f32",
/// ...). Assembly always runs in fp64 — the float instantiation assembles
/// each F̃ᵢ into a temporary fp64 buffer and demotes it into the persistent
/// fp32 block, so only the apply phase (and the storage footprint) changes.
template <typename T>
class ExplicitGpuDualOpT final : public DualOperator {
 public:
  ExplicitGpuDualOpT(const decomp::FetiProblem& p, gpu::sparse::Api api,
                     const ExplicitGpuOptions& opt,
                     sparse::OrderingKind ordering, gpu::ExecutionContext& ctx,
                     std::vector<idx> owned, bool sparsity)
      : DualOperator(p), api_(api), opt_(opt), ordering_(ordering),
        ctx_(ctx), dev_(ctx.device()),
        owned_(resolve_owned(p, std::move(owned))), sparsity_(sparsity) {}

  ~ExplicitGpuDualOpT() override {
    dev_.synchronize();
    for (auto& b : bperm_dev_) gpu::free_csr(dev_, b);
    for (auto& e : eperm_dev_) gpu::free_csr(dev_, e);
    for (auto& b : bb_dev_) gpu::free_csr(dev_, b);
    for (auto& f : factor_dev_) gpu::free_csr(dev_, f);
    // packed_ stays empty if prepare() failed before allocate_f().
    for (std::size_t s = 0; s < f_.size(); ++s)
      if (s >= packed_.size() || !packed_[s]) gpu::free_dense(dev_, f_[s]);
    for (T* buf : pack_buffers_) dev_.free(buf);
  }

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const std::size_t nsub = static_cast<std::size_t>(p_.num_subdomains());
    main_stream_ = ctx_.main_stream();
    streams_ = ctx_.stream_span(opt_.streams);

    // Per-subdomain state is indexed globally; only owned entries are
    // populated (the sharded wrapper routes each subdomain to its owner).
    solvers_.resize(nsub);
    bperm_host_.resize(nsub);
    bperm_dev_.resize(nsub);
    boundary_.resize(nsub);
    eperm_host_.resize(nsub);
    eperm_dev_.resize(nsub);
    bb_dev_.resize(nsub);
    factor_dev_.resize(nsub);
    fwd_plan_.resize(nsub);
    bwd_plan_.resize(nsub);
    f_.resize(nsub);

    // The sparsity-aware assembly never runs a backward solve (F̃ comes out
    // of the boundary Gram block via SYRK), so its only dense-factor
    // consumer is a Dense forward storage.
    const bool need_dense_factor =
        opt_.fwd_storage == FactorStorage::Dense ||
        (!sparsity_ && opt_.path == Path::Trsm &&
         opt_.bwd_storage == FactorStorage::Dense);

    const idx nown = static_cast<idx>(owned_.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nown; ++k) {
      guard.run([&, k] {
        const idx s = owned_[static_cast<std::size_t>(k)];
        const auto& fs = p_.sub[s];
        gpu::Stream st = streams_[static_cast<std::size_t>(k) % streams_.size()];
        // Symbolic factorization on the CPU.
        solvers_[s] = std::make_unique<sparse::SimplicialCholesky>();
        solvers_[s]->analyze(fs.k_reg, ordering_);
        const la::Csr& u = solvers_[s]->factor_upper_structure();
        if (need_dense_factor) factor_dev_[s] = gpu::upload_csr(dev_, st, u);
        const idx m = fs.num_local_lambdas();
        if (sparsity_) {
          // Constant data of the boundary-restricted assembly: the
          // (column-permuted) boundary selection E_b as the solve RHS and
          // the column-compressed gluing matrix B_b for the expansion.
          boundary_[s] = decomp::boundary_dofs(fs);
          const idx nb = boundary_[s].count();
          if (nb > 0) {
            eperm_host_[s] = permute_columns(
                decomp::boundary_selection(boundary_[s], fs.ndof()),
                solvers_[s]->permutation());
            eperm_dev_[s] = gpu::upload_csr(dev_, st, eperm_host_[s]);
            bb_dev_[s] = gpu::upload_csr(dev_, st, boundary_[s].b_b);
            if (opt_.fwd_storage == FactorStorage::Sparse)
              fwd_plan_[s] = gpu::sparse::SpTrsmPlan(
                  dev_, st, api_, u, opt_.fwd_order, /*forward=*/true,
                  opt_.rhs_order, nb);
          }
        } else {
          // Constant data to the device: the (column-permuted) gluing
          // matrix and the factor structure.
          bperm_host_[s] = permute_columns(fs.b, solvers_[s]->permutation());
          bperm_dev_[s] = gpu::upload_csr(dev_, st, bperm_host_[s]);
          if (opt_.fwd_storage == FactorStorage::Sparse)
            fwd_plan_[s] = gpu::sparse::SpTrsmPlan(
                dev_, st, api_, u, opt_.fwd_order, /*forward=*/true,
                opt_.rhs_order, m);
          if (opt_.path == Path::Trsm &&
              opt_.bwd_storage == FactorStorage::Sparse)
            bwd_plan_[s] = gpu::sparse::SpTrsmPlan(
                dev_, st, api_, u, opt_.bwd_order, /*forward=*/false,
                opt_.rhs_order, m);
        }
      });
    }
    guard.rethrow();
    allocate_f();
    vectors_.prepare(dev_, main_stream_, p_, owned_);
    dev_.synchronize();
    // Remaining device memory feeds the temporary-buffer pool (Sec. IV-A).
    ctx_.ensure_workspace();
  }

  void update_values() override {
    ScopedTimer t(timings_, "update_values");
    const UpdatePlan plan = begin_update(owned_);
    if (plan.skip()) return;
    auto& temp = ctx_.workspace();
    const idx nd = static_cast<idx>(plan.dirty.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nd; ++k) {
      guard.run([&, k] {
        const idx s = plan.dirty[static_cast<std::size_t>(k)];
        const auto& fs = p_.sub[s];
        gpu::Stream st = streams_[static_cast<std::size_t>(k) % streams_.size()];
        const idx n = fs.ndof();
        const idx m = fs.num_local_lambdas();

        // Numeric factorization on the CPU; overlaps with the GPU work of
        // previously submitted subdomains.
        solvers_[s]->factorize(fs.k_reg);
        const la::Csr& u = solvers_[s]->factor_upper();
        if (fwd_plan_[s].valid()) fwd_plan_[s].update_values(st, u);
        if (bwd_plan_[s].valid()) bwd_plan_[s].update_values(st, u);
        if (factor_dev_[s].vals != nullptr)
          gpu::update_csr_values(st, factor_dev_[s], u);

        if (sparsity_) {
          assemble_boundary(s, st, temp);
          return;
        }

        // Temporary buffers for this subdomain (blocking pool allocator).
        auto* x_buf = static_cast<double*>(
            temp.alloc(sizeof(double) * static_cast<std::size_t>(n) * m));
        gpu::DeviceDense x{x_buf, n, m,
                           opt_.rhs_order == la::Layout::RowMajor ? m : n,
                           opt_.rhs_order};
        double* dense_fwd = nullptr;
        double* dense_bwd = nullptr;
        void* ws_fwd = nullptr;
        void* ws_bwd = nullptr;

        // The fp64 assembly target: the persistent block itself for the
        // fp64 operator, a temporary fp64 buffer for the fp32 one (demoted
        // into the persistent block below).
        double* f_scratch = nullptr;
        gpu::DeviceDense f_target;
        if constexpr (std::is_same_v<T, float>) {
          f_scratch = static_cast<double*>(temp.alloc(
              sizeof(double) * static_cast<std::size_t>(m) * m));
          f_target = gpu::DeviceDense{f_scratch, m, m, m,
                                      la::Layout::ColMajor};
        } else {
          f_target = f_[s];
        }

        // Dense RHS X = (B̃ᵢ P^T)^T, converted on the device.
        gpu::sparse::csr_to_dense_transposed(st, bperm_dev_[s], x);

        // Forward solve L X = X.
        if (opt_.fwd_storage == FactorStorage::Sparse) {
          const std::size_t wb = fwd_plan_[s].workspace_bytes(m);
          if (wb > 0) ws_fwd = temp.alloc(wb);
          fwd_plan_[s].solve(st, x, ws_fwd);
        } else {
          dense_fwd = static_cast<double*>(
              temp.alloc(sizeof(double) * static_cast<std::size_t>(n) * n));
          gpu::DeviceDense df{dense_fwd, n, n, n, opt_.fwd_order};
          gpu::sparse::csr_to_dense(st, factor_dev_[s], df);
          gpu::blas::trsm(st, la::Uplo::Upper, la::Trans::Yes, df, x);
        }

        if (opt_.path == Path::Syrk) {
          // F̃ᵢ = X^T X; the stored triangle is per-subdomain when triangle
          // packing is active (footnote 1).
          gpu::blas::syrk(st, uplo_[s], la::Trans::Yes, 1.0, x, 0.0,
                          f_target);
        } else {
          // Backward solve U Y = X, then F̃ᵢ = B̃ᵢ Y (SpMM).
          if (opt_.bwd_storage == FactorStorage::Sparse) {
            const std::size_t wb = bwd_plan_[s].workspace_bytes(m);
            if (wb > 0) ws_bwd = temp.alloc(wb);
            bwd_plan_[s].solve(st, x, ws_bwd);
          } else {
            if (opt_.fwd_storage == FactorStorage::Dense &&
                opt_.bwd_order == opt_.fwd_order) {
              // Reuse the forward dense factor.
              gpu::DeviceDense df{dense_fwd, n, n, n, opt_.bwd_order};
              gpu::blas::trsm(st, la::Uplo::Upper, la::Trans::No, df, x);
            } else {
              dense_bwd = static_cast<double*>(temp.alloc(
                  sizeof(double) * static_cast<std::size_t>(n) * n));
              gpu::DeviceDense df{dense_bwd, n, n, n, opt_.bwd_order};
              gpu::sparse::csr_to_dense(st, factor_dev_[s], df);
              gpu::blas::trsm(st, la::Uplo::Upper, la::Trans::No, df, x);
            }
          }
          gpu::sparse::spmm(st, 1.0, bperm_dev_[s], la::Trans::No, x, 0.0,
                            f_target);
        }
        solve_columns_.fetch_add(m, std::memory_order_relaxed);

        // fp32 storage: demote the assembled fp64 block into the
        // persistent fp32 one. The SYRK path wrote only one triangle (and
        // the packed pairs share an allocation), so the demotion is
        // triangle-only there; the TRSM path stores F̃ᵢ full.
        if constexpr (std::is_same_v<T, float>) {
          if (opt_.path == Path::Syrk)
            gpu::kernels::demote_triangle(st, uplo_[s], f_target, f_[s]);
          else
            gpu::kernels::demote(st, f_target, f_[s]);
        }

        // Stream-ordered release of the temporaries: they are freed once the
        // kernels of this subdomain have executed.
        st.submit([&temp, x_buf, dense_fwd, dense_bwd, ws_fwd, ws_bwd,
                   f_scratch] {
          temp.free(x_buf);
          if (dense_fwd != nullptr) temp.free(dense_fwd);
          if (dense_bwd != nullptr) temp.free(dense_bwd);
          if (ws_fwd != nullptr) temp.free(ws_fwd);
          if (ws_bwd != nullptr) temp.free(ws_bwd);
          if (f_scratch != nullptr) temp.free(f_scratch);
        });
      });
    }
    guard.rethrow();
    dev_.synchronize();
    end_update(plan);
  }

  void apply_one(const double* x, double* y) override {
    const bool symmetric = opt_.path == Path::Syrk;
    auto submit_local = [this, symmetric](idx s, gpu::Stream& st,
                                          const T* lam, T* q) {
      if (symmetric)
        gpu::blas::symv(st, uplo_[s], 1.0, f_[s], lam, 0.0, q);
      else
        gpu::blas::gemv(st, 1.0, f_[s], la::Trans::No, lam, 0.0, q);
    };
    if (opt_.scatter_gather == SgLocation::Gpu)
      vectors_.apply_sg_gpu(main_stream_, streams_, x, y, submit_local);
    else
      vectors_.apply_sg_cpu(streams_, x, y, submit_local);
  }

  void apply_many(const double* x, double* y, idx nrhs) override {
    // Device-side batching: one SYMM (or GEMM on the TRSM path, where F̃ᵢ is
    // stored full) per subdomain serves the whole block of right-hand
    // sides — the BLAS-3 payoff that the CPU explicit operators already
    // had. Panels are row-major so the kernels stream contiguously over
    // the RHS columns.
    const bool symmetric = opt_.path == Path::Syrk;
    auto submit_local = [this, symmetric](idx s, gpu::Stream& st,
                                          gpu::DeviceDenseT<T> lam,
                                          gpu::DeviceDenseT<T> q) {
      if (symmetric)
        gpu::blas::symm(st, uplo_[s], 1.0, f_[s], lam, 0.0, q);
      else
        gpu::blas::gemm(st, 1.0, f_[s], la::Trans::No, lam, la::Trans::No,
                        0.0, q);
    };
    vectors_.ensure_batch(nrhs, la::Layout::RowMajor);
    if (opt_.scatter_gather == SgLocation::Gpu)
      vectors_.apply_sg_gpu_many(main_stream_, streams_, x, y, nrhs,
                                 submit_local);
    else
      vectors_.apply_sg_cpu_many(streams_, x, y, nrhs, submit_local);
  }

  [[nodiscard]] gpu::ExecutionContext* device_context() override {
    return &ctx_;
  }

  void apply_many_device(const double* d_x, double* d_y,
                         idx nrhs) override {
    // Device-resident application: always GPU scatter/gather (the CPU
    // placement is a staging strategy — pointless when the cluster vectors
    // never leave the device), dispatching through the same SYMV/SYMM
    // kernels as the host-pointer path of the same width.
    const bool symmetric = opt_.path == Path::Syrk;
    if (nrhs == 1) {
      auto submit_local = [this, symmetric](idx s, gpu::Stream& st,
                                            const T* lam, T* q) {
        if (symmetric)
          gpu::blas::symv(st, uplo_[s], 1.0, f_[s], lam, 0.0, q);
        else
          gpu::blas::gemv(st, 1.0, f_[s], la::Trans::No, lam, 0.0, q);
      };
      vectors_.apply_sg_gpu_dev(main_stream_, streams_, d_x, d_y,
                                submit_local);
      return;
    }
    auto submit_local = [this, symmetric](idx s, gpu::Stream& st,
                                          gpu::DeviceDenseT<T> lam,
                                          gpu::DeviceDenseT<T> q) {
      if (symmetric)
        gpu::blas::symm(st, uplo_[s], 1.0, f_[s], lam, 0.0, q);
      else
        gpu::blas::gemm(st, 1.0, f_[s], la::Trans::No, lam, la::Trans::No,
                        0.0, q);
    };
    vectors_.ensure_batch(nrhs, la::Layout::RowMajor);
    vectors_.apply_sg_gpu_many_dev(main_stream_, streams_, d_x, d_y, nrhs,
                                   submit_local);
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    check(solvers_[sub] != nullptr,
          "ExplicitGpuDualOp: subdomain not owned by this operator");
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override {
    const bool legacy = api_ == gpu::sparse::Api::Legacy;
    if constexpr (std::is_same_v<T, float>) {
      if (sparsity_) return legacy ? "expl legacy sp f32" : "expl modern sp f32";
      return legacy ? "expl legacy f32" : "expl modern f32";
    } else {
      if (sparsity_) return legacy ? "expl legacy sp" : "expl modern sp";
      return legacy ? "expl legacy" : "expl modern";
    }
  }

  /// Bytes of device memory held by the F̃ᵢ matrices (packing ablation and
  /// the fp32-vs-fp64 storage comparison).
  [[nodiscard]] std::size_t f_storage_bytes() const {
    std::size_t total = 0;
    for (std::size_t s = 0; s < f_.size(); ++s)
      if (s >= packed_.size() || !packed_[s]) total += f_[s].bytes();
    for (std::size_t i = 0; i < pack_buffers_.size(); ++i)
      total += pack_sizes_[i];
    return total;
  }

  [[nodiscard]] std::size_t apply_bytes() const override {
    return f_storage_bytes();
  }

 private:
  /// Allocates the persistent F̃ᵢ buffers for the owned subdomains. With
  /// the SYRK path and symmetric_pack enabled, equally sized subdomains are
  /// paired and the upper triangle of one shares a (m+1)-leading-dimension
  /// allocation with the lower triangle of the other (paper footnote 1):
  /// A's (i,j), i<=j, lives at i + j(m+1), B's (i,j), i>=j, at
  /// 1 + i + j(m+1) — disjoint.
  void allocate_f() {
    const std::size_t nsub = static_cast<std::size_t>(p_.num_subdomains());
    f_.resize(nsub);
    uplo_.assign(nsub, la::Uplo::Upper);
    packed_.assign(nsub, false);
    // The sparsity-aware assembly writes the full m×m block (the two-SpMM
    // expansion has no triangle-only form), so the footnote-1 triangle
    // pairing is incompatible with it.
    const bool pack =
        opt_.symmetric_pack && opt_.path == Path::Syrk && !sparsity_;

    std::map<idx, std::vector<idx>> by_size;
    for (idx s : owned_)
      by_size[p_.sub[s].num_local_lambdas()].push_back(s);

    for (auto& [m, subs] : by_size) {
      std::size_t i = 0;
      if (pack) {
        for (; i + 1 < subs.size(); i += 2) {
          const idx a = subs[i], b = subs[i + 1];
          const std::size_t bytes =
              sizeof(T) * static_cast<std::size_t>(m) * (m + 1);
          auto* buf = static_cast<T*>(dev_.alloc(bytes));
          pack_buffers_.push_back(buf);
          pack_sizes_.push_back(bytes);
          f_[a] = gpu::DeviceDenseT<T>{buf, m, m, m + 1,
                                       la::Layout::ColMajor};
          f_[b] = gpu::DeviceDenseT<T>{buf + 1, m, m, m + 1,
                                       la::Layout::ColMajor};
          uplo_[a] = la::Uplo::Upper;
          uplo_[b] = la::Uplo::Lower;
          packed_[a] = packed_[b] = true;
        }
      }
      for (; i < subs.size(); ++i)
        f_[subs[i]] = gpu::alloc_dense_t<T>(dev_, m, m, la::Layout::ColMajor);
    }
  }

  /// Sparsity-aware refresh of one subdomain (the " sp" keys): the forward
  /// solve runs against the nb boundary columns E_bᵀ instead of the m dual
  /// columns B̃ᵢᵀ, the boundary Gram block G_bb = E_b K_reg⁻¹ E_bᵀ comes out
  /// of one SYRK, and F̃ᵢ = B_b G_bb B_bᵀ expands through two SpMMs. The
  /// full m×m block is written (never triangle-packed), so the symmetric
  /// apply against the stored Upper triangle stays valid.
  void assemble_boundary(idx s, gpu::Stream& st, gpu::TempAllocator& temp) {
    const auto& fs = p_.sub[s];
    const idx n = fs.ndof();
    const idx m = fs.num_local_lambdas();
    const idx nb = boundary_[s].count();

    // The fp64 assembly target: the persistent block itself for the fp64
    // operator, a temporary fp64 buffer for the fp32 one.
    double* f_scratch = nullptr;
    gpu::DeviceDense f_target;
    if constexpr (std::is_same_v<T, float>) {
      f_scratch = static_cast<double*>(
          temp.alloc(sizeof(double) * static_cast<std::size_t>(m) * m));
      f_target = gpu::DeviceDense{f_scratch, m, m, m, la::Layout::ColMajor};
    } else {
      f_target = f_[s];
    }

    if (nb == 0) {
      // No boundary coupling: the local dual operator is identically zero.
      gpu::kernels::fill_zero(st, f_target.data, m * m);
      if constexpr (std::is_same_v<T, float>)
        gpu::kernels::demote(st, f_target, f_[s]);
      if (f_scratch != nullptr)
        st.submit([&temp, f_scratch] { temp.free(f_scratch); });
      return;
    }

    // Boundary-restricted dense RHS W = (E_b P^T)^T, converted on the
    // device: n × nb instead of the dense path's n × m.
    auto* w_buf = static_cast<double*>(
        temp.alloc(sizeof(double) * static_cast<std::size_t>(n) * nb));
    gpu::DeviceDense w{w_buf, n, nb,
                       opt_.rhs_order == la::Layout::RowMajor ? nb : n,
                       opt_.rhs_order};
    gpu::sparse::csr_to_dense_transposed(st, eperm_dev_[s], w);

    // Forward solve L W = W.
    double* dense_fwd = nullptr;
    void* ws_fwd = nullptr;
    if (opt_.fwd_storage == FactorStorage::Sparse) {
      const std::size_t wb = fwd_plan_[s].workspace_bytes(nb);
      if (wb > 0) ws_fwd = temp.alloc(wb);
      fwd_plan_[s].solve(st, w, ws_fwd);
    } else {
      dense_fwd = static_cast<double*>(
          temp.alloc(sizeof(double) * static_cast<std::size_t>(n) * n));
      gpu::DeviceDense df{dense_fwd, n, n, n, opt_.fwd_order};
      gpu::sparse::csr_to_dense(st, factor_dev_[s], df);
      gpu::blas::trsm(st, la::Uplo::Upper, la::Trans::Yes, df, w);
    }

    // G_bb = WᵀW (one SYRK over the boundary panel), mirrored to the full
    // symmetric operand of the expansion SpMMs.
    auto* g_buf = static_cast<double*>(
        temp.alloc(sizeof(double) * static_cast<std::size_t>(nb) * nb));
    gpu::DeviceDense g{g_buf, nb, nb, nb, la::Layout::ColMajor};
    gpu::blas::syrk(st, la::Uplo::Upper, la::Trans::Yes, 1.0, w, 0.0, g);
    gpu::kernels::symmetrize(st, la::Uplo::Upper, g);

    // F̃ᵢ = B_b G_bb B_bᵀ: T = B_b G (m × nb, row-major), then the
    // column-major reinterpretation of T's buffer is Tᵀ, so the second
    // SpMM needs no explicit transpose.
    auto* t_buf = static_cast<double*>(
        temp.alloc(sizeof(double) * static_cast<std::size_t>(m) * nb));
    gpu::DeviceDense t{t_buf, m, nb, nb, la::Layout::RowMajor};
    gpu::sparse::spmm(st, 1.0, bb_dev_[s], la::Trans::No, g, 0.0, t);
    const gpu::DeviceDense t_trans{t_buf, nb, m, nb, la::Layout::ColMajor};
    gpu::sparse::spmm(st, 1.0, bb_dev_[s], la::Trans::No, t_trans, 0.0,
                      f_target);

    // fp32 storage: the sp expansion wrote the full block, so the demotion
    // is full-rectangle (sp blocks are never triangle-packed).
    if constexpr (std::is_same_v<T, float>)
      gpu::kernels::demote(st, f_target, f_[s]);

    solve_columns_.fetch_add(nb, std::memory_order_relaxed);

    st.submit([&temp, w_buf, dense_fwd, ws_fwd, g_buf, t_buf, f_scratch] {
      temp.free(w_buf);
      if (dense_fwd != nullptr) temp.free(dense_fwd);
      if (ws_fwd != nullptr) temp.free(ws_fwd);
      temp.free(g_buf);
      temp.free(t_buf);
      if (f_scratch != nullptr) temp.free(f_scratch);
    });
  }

  gpu::sparse::Api api_;
  ExplicitGpuOptions opt_;
  sparse::OrderingKind ordering_;
  gpu::ExecutionContext& ctx_;
  gpu::Device& dev_;
  std::vector<idx> owned_;
  bool sparsity_ = false;  ///< boundary-restricted assembly (" sp" keys)
  gpu::Stream main_stream_;
  std::vector<gpu::Stream> streams_;
  std::vector<std::unique_ptr<sparse::SimplicialCholesky>> solvers_;
  std::vector<la::Csr> bperm_host_;
  std::vector<gpu::DeviceCsr> bperm_dev_;
  /// sp-only state: per-subdomain boundary DOF sets (boundary_[s].b_b is
  /// the host column-compressed gluing matrix behind bb_dev_[s]), the
  /// permuted boundary selection E_b on host and device.
  std::vector<decomp::BoundaryDofs> boundary_;
  std::vector<la::Csr> eperm_host_;
  std::vector<gpu::DeviceCsr> eperm_dev_;
  std::vector<gpu::DeviceCsr> bb_dev_;
  std::vector<gpu::DeviceCsr> factor_dev_;
  std::vector<gpu::sparse::SpTrsmPlan> fwd_plan_, bwd_plan_;
  std::vector<gpu::DeviceDenseT<T>> f_;
  std::vector<la::Uplo> uplo_;
  std::vector<bool> packed_;
  std::vector<T*> pack_buffers_;
  std::vector<std::size_t> pack_sizes_;
  GpuDualVectorsT<T> vectors_;
};

using ExplicitGpuDualOp = ExplicitGpuDualOpT<double>;

// ---------------------------------------------------------------------------
// Implicit GPU
// ---------------------------------------------------------------------------

class ImplicitGpuDualOp final : public DualOperator {
 public:
  ImplicitGpuDualOp(const decomp::FetiProblem& p, gpu::sparse::Api api,
                    sparse::OrderingKind ordering, gpu::ExecutionContext& ctx,
                    int streams, std::vector<idx> owned)
      : DualOperator(p), api_(api), ordering_(ordering), ctx_(ctx),
        dev_(ctx.device()), requested_streams_(streams),
        owned_(resolve_owned(p, std::move(owned))) {}

  ~ImplicitGpuDualOp() override {
    dev_.synchronize();
    for (auto& b : bperm_dev_) gpu::free_csr(dev_, b);
    for (auto* t : tmp_dev_) dev_.free(t);
    for (auto* t : tmpblk_dev_) dev_.free(t);
  }

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const std::size_t nsub = static_cast<std::size_t>(p_.num_subdomains());
    main_stream_ = ctx_.main_stream();
    streams_ = ctx_.stream_span(requested_streams_);
    solvers_.resize(nsub);
    bperm_host_.resize(nsub);
    bperm_dev_.resize(nsub);
    fwd_plan_.resize(nsub);
    bwd_plan_.resize(nsub);
    batch_fwd_plan_.resize(nsub);
    batch_bwd_plan_.resize(nsub);
    tmp_dev_.resize(nsub);
    tmpblk_dev_.resize(nsub);
    const idx nown = static_cast<idx>(owned_.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nown; ++k) {
      guard.run([&, k] {
        const idx s = owned_[static_cast<std::size_t>(k)];
        const auto& fs = p_.sub[s];
        gpu::Stream st = streams_[static_cast<std::size_t>(k) % streams_.size()];
        solvers_[s] = std::make_unique<sparse::SimplicialCholesky>();
        solvers_[s]->analyze(fs.k_reg, ordering_);
        bperm_host_[s] = permute_columns(fs.b, solvers_[s]->permutation());
        bperm_dev_[s] = gpu::upload_csr(dev_, st, bperm_host_[s]);
        const la::Csr& u = solvers_[s]->factor_upper_structure();
        fwd_plan_[s] = gpu::sparse::SpTrsmPlan(dev_, st, api_,
                                               u, la::Layout::ColMajor,
                                               /*forward=*/true,
                                               la::Layout::ColMajor, 1);
        bwd_plan_[s] = gpu::sparse::SpTrsmPlan(dev_, st, api_,
                                               u, la::Layout::ColMajor,
                                               /*forward=*/false,
                                               la::Layout::ColMajor, 1);
        tmp_dev_[s] = dev_.alloc_n<double>(static_cast<std::size_t>(fs.ndof()));
      });
    }
    guard.rethrow();
    vectors_.prepare(dev_, main_stream_, p_, owned_);
    dev_.synchronize();
    ctx_.ensure_workspace();
  }

  void update_values() override {
    // Implicit preprocessing = numeric factorization + factor copies.
    ScopedTimer t(timings_, "update_values");
    const UpdatePlan plan = begin_update(owned_);
    if (plan.skip()) return;
    const idx nd = static_cast<idx>(plan.dirty.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nd; ++k) {
      guard.run([&, k] {
        const idx s = plan.dirty[static_cast<std::size_t>(k)];
        gpu::Stream st = streams_[static_cast<std::size_t>(k) % streams_.size()];
        solvers_[s]->factorize(p_.sub[s].k_reg);
        const la::Csr& u = solvers_[s]->factor_upper();
        fwd_plan_[s].update_values(st, u);
        bwd_plan_[s].update_values(st, u);
        if (batch_fwd_plan_[s].valid()) batch_fwd_plan_[s].update_values(st, u);
        if (batch_bwd_plan_[s].valid()) batch_bwd_plan_[s].update_values(st, u);
      });
    }
    guard.rethrow();
    dev_.synchronize();
    end_update(plan);
  }

  void apply_one(const double* x, double* y) override {
    auto& temp = ctx_.workspace();
    auto submit_local = [this, &temp](idx s, gpu::Stream& st,
                                      const double* lam, double* q) {
      const idx n = p_.sub[s].ndof();
      gpu::DeviceCsr b = bperm_dev_[s];
      double* tvec = tmp_dev_[s];
      gpu::sparse::spmv(st, 1.0, b, la::Trans::Yes, lam, 0.0, tvec);
      gpu::DeviceDense tview{tvec, n, 1, n, la::Layout::ColMajor};
      void* ws_f = nullptr;
      void* ws_b = nullptr;
      const std::size_t wf = fwd_plan_[s].workspace_bytes(1);
      const std::size_t wb = bwd_plan_[s].workspace_bytes(1);
      if (wf > 0) ws_f = temp.alloc(wf);
      fwd_plan_[s].solve(st, tview, ws_f);
      if (wb > 0) ws_b = temp.alloc(wb);
      bwd_plan_[s].solve(st, tview, ws_b);
      gpu::sparse::spmv(st, 1.0, b, la::Trans::No, tvec, 0.0, q);
      if (ws_f != nullptr || ws_b != nullptr)
        st.submit([&temp, ws_f, ws_b] {
          if (ws_f != nullptr) temp.free(ws_f);
          if (ws_b != nullptr) temp.free(ws_b);
        });
    };
    vectors_.apply_sg_gpu(main_stream_, streams_, x, y, submit_local);
  }

  void apply_many(const double* x, double* y, idx nrhs) override {
    // Device-side batching for the implicit family: per subdomain one SpMM
    // (B̃ᵀ against the whole lambda panel), two block triangular solves
    // through wide-RHS plans, and one SpMM back — nrhs right-hand sides for
    // the submission count of one.
    ensure_batch(nrhs);
    auto& temp = ctx_.workspace();
    const idx cap = batch_cols_;
    auto submit_local = [this, &temp, nrhs, cap](idx s, gpu::Stream& st,
                                                 gpu::DeviceDense lam,
                                                 gpu::DeviceDense q) {
      const idx n = p_.sub[s].ndof();
      gpu::DeviceCsr b = bperm_dev_[s];
      gpu::DeviceDense t{tmpblk_dev_[s], n, nrhs, cap, la::Layout::RowMajor};
      gpu::sparse::spmm(st, 1.0, b, la::Trans::Yes, lam, 0.0, t);
      void* ws_f = nullptr;
      void* ws_b = nullptr;
      const std::size_t wf = batch_fwd_plan_[s].workspace_bytes(nrhs);
      const std::size_t wb = batch_bwd_plan_[s].workspace_bytes(nrhs);
      if (wf > 0) ws_f = temp.alloc(wf);
      batch_fwd_plan_[s].solve(st, t, ws_f);
      if (wb > 0) ws_b = temp.alloc(wb);
      batch_bwd_plan_[s].solve(st, t, ws_b);
      gpu::sparse::spmm(st, 1.0, b, la::Trans::No, t, 0.0, q);
      if (ws_f != nullptr || ws_b != nullptr)
        st.submit([&temp, ws_f, ws_b] {
          if (ws_f != nullptr) temp.free(ws_f);
          if (ws_b != nullptr) temp.free(ws_b);
        });
    };
    vectors_.ensure_batch(nrhs, la::Layout::RowMajor);
    vectors_.apply_sg_gpu_many(main_stream_, streams_, x, y, nrhs,
                               submit_local);
  }

  [[nodiscard]] gpu::ExecutionContext* device_context() override {
    return &ctx_;
  }

  void apply_many_device(const double* d_x, double* d_y,
                         idx nrhs) override {
    // Same SpMV/solve/SpMV (nrhs == 1) or SpMM/block-solve/SpMM kernels as
    // the host-pointer paths; only the cluster staging copies disappear.
    auto& temp = ctx_.workspace();
    if (nrhs == 1) {
      auto submit_local = [this, &temp](idx s, gpu::Stream& st,
                                        const double* lam, double* q) {
        const idx n = p_.sub[s].ndof();
        gpu::DeviceCsr b = bperm_dev_[s];
        double* tvec = tmp_dev_[s];
        gpu::sparse::spmv(st, 1.0, b, la::Trans::Yes, lam, 0.0, tvec);
        gpu::DeviceDense tview{tvec, n, 1, n, la::Layout::ColMajor};
        void* ws_f = nullptr;
        void* ws_b = nullptr;
        const std::size_t wf = fwd_plan_[s].workspace_bytes(1);
        const std::size_t wb = bwd_plan_[s].workspace_bytes(1);
        if (wf > 0) ws_f = temp.alloc(wf);
        fwd_plan_[s].solve(st, tview, ws_f);
        if (wb > 0) ws_b = temp.alloc(wb);
        bwd_plan_[s].solve(st, tview, ws_b);
        gpu::sparse::spmv(st, 1.0, b, la::Trans::No, tvec, 0.0, q);
        if (ws_f != nullptr || ws_b != nullptr)
          st.submit([&temp, ws_f, ws_b] {
            if (ws_f != nullptr) temp.free(ws_f);
            if (ws_b != nullptr) temp.free(ws_b);
          });
      };
      vectors_.apply_sg_gpu_dev(main_stream_, streams_, d_x, d_y,
                                submit_local);
      return;
    }
    ensure_batch(nrhs);
    const idx cap = batch_cols_;
    auto submit_local = [this, &temp, nrhs, cap](idx s, gpu::Stream& st,
                                                 gpu::DeviceDense lam,
                                                 gpu::DeviceDense q) {
      const idx n = p_.sub[s].ndof();
      gpu::DeviceCsr b = bperm_dev_[s];
      gpu::DeviceDense t{tmpblk_dev_[s], n, nrhs, cap, la::Layout::RowMajor};
      gpu::sparse::spmm(st, 1.0, b, la::Trans::Yes, lam, 0.0, t);
      void* ws_f = nullptr;
      void* ws_b = nullptr;
      const std::size_t wf = batch_fwd_plan_[s].workspace_bytes(nrhs);
      const std::size_t wb = batch_bwd_plan_[s].workspace_bytes(nrhs);
      if (wf > 0) ws_f = temp.alloc(wf);
      batch_fwd_plan_[s].solve(st, t, ws_f);
      if (wb > 0) ws_b = temp.alloc(wb);
      batch_bwd_plan_[s].solve(st, t, ws_b);
      gpu::sparse::spmm(st, 1.0, b, la::Trans::No, t, 0.0, q);
      if (ws_f != nullptr || ws_b != nullptr)
        st.submit([&temp, ws_f, ws_b] {
          if (ws_f != nullptr) temp.free(ws_f);
          if (ws_b != nullptr) temp.free(ws_b);
        });
    };
    vectors_.ensure_batch(nrhs, la::Layout::RowMajor);
    vectors_.apply_sg_gpu_many_dev(main_stream_, streams_, d_x, d_y, nrhs,
                                   submit_local);
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    check(solvers_[sub] != nullptr,
          "ImplicitGpuDualOp: subdomain not owned by this operator");
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override {
    return api_ == gpu::sparse::Api::Legacy ? "impl legacy" : "impl modern";
  }

 private:
  /// Grow-only wide-RHS solve plans and temporary panels. Valid only after
  /// update_values() (the plans are seeded from the current numeric
  /// factor); refactorizations refresh live batch plans in place.
  void ensure_batch(idx nrhs) {
    if (batch_cols_ >= nrhs) return;
    const idx cap = nrhs;
    for (std::size_t k = 0; k < owned_.size(); ++k) {
      const idx s = owned_[k];
      const idx n = p_.sub[s].ndof();
      // Same local-index stream assignment as every other per-subdomain
      // loop; plan construction is synchronous (the SpTrsmPlan constructor
      // drains its stream), so the plans are complete when this returns.
      gpu::Stream st = streams_[k % streams_.size()];
      const la::Csr& u = solvers_[s]->factor_upper();
      batch_fwd_plan_[s] = gpu::sparse::SpTrsmPlan(
          dev_, st, api_, u, la::Layout::ColMajor, /*forward=*/true,
          la::Layout::RowMajor, cap);
      batch_bwd_plan_[s] = gpu::sparse::SpTrsmPlan(
          dev_, st, api_, u, la::Layout::ColMajor, /*forward=*/false,
          la::Layout::RowMajor, cap);
      dev_.free(tmpblk_dev_[s]);
      tmpblk_dev_[s] = nullptr;
      tmpblk_dev_[s] = dev_.alloc_n<double>(static_cast<std::size_t>(n) *
                                            static_cast<std::size_t>(cap));
    }
    batch_cols_ = cap;
  }

  gpu::sparse::Api api_;
  sparse::OrderingKind ordering_;
  gpu::ExecutionContext& ctx_;
  gpu::Device& dev_;
  int requested_streams_;
  std::vector<idx> owned_;
  gpu::Stream main_stream_;
  std::vector<gpu::Stream> streams_;
  std::vector<std::unique_ptr<sparse::SimplicialCholesky>> solvers_;
  std::vector<la::Csr> bperm_host_;
  std::vector<gpu::DeviceCsr> bperm_dev_;
  std::vector<gpu::sparse::SpTrsmPlan> fwd_plan_, bwd_plan_;
  std::vector<gpu::sparse::SpTrsmPlan> batch_fwd_plan_, batch_bwd_plan_;
  std::vector<double*> tmp_dev_;
  std::vector<double*> tmpblk_dev_;
  idx batch_cols_ = 0;
  GpuDualVectors vectors_;
};

// ---------------------------------------------------------------------------
// Hybrid (assembly on CPU via Schur, application on GPU)
// ---------------------------------------------------------------------------

/// `T` is the device-side F̃ storage scalar (see ExplicitGpuDualOpT): the
/// CPU Schur assembly always produces fp64 blocks; the float instantiation
/// demotes them host-side before the upload, so the device holds — and the
/// apply phase streams — half the bytes.
template <typename T>
class HybridDualOpT final : public DualOperator {
 public:
  HybridDualOpT(const decomp::FetiProblem& p, const ExplicitGpuOptions& opt,
                sparse::OrderingKind ordering, gpu::ExecutionContext& ctx,
                std::vector<idx> owned, bool sparsity)
      : DualOperator(p), opt_(opt), ordering_(ordering), ctx_(ctx),
        dev_(ctx.device()), owned_(resolve_owned(p, std::move(owned))),
        sparsity_(sparsity) {}

  ~HybridDualOpT() override {
    dev_.synchronize();
    for (auto& f : f_dev_) gpu::free_dense(dev_, f);
  }

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const std::size_t nsub = static_cast<std::size_t>(p_.num_subdomains());
    main_stream_ = ctx_.main_stream();
    streams_ = ctx_.stream_span(opt_.streams);
    solvers_.resize(nsub);
    boundary_.resize(nsub);
    e_b_.resize(nsub);
    f_host_.resize(nsub);
    f_dev_.resize(nsub);
    if constexpr (std::is_same_v<T, float>) f_host32_.resize(nsub);
    const idx nown = static_cast<idx>(owned_.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nown; ++k) {
      guard.run([&, k] {
        const idx s = owned_[static_cast<std::size_t>(k)];
        const auto& fs = p_.sub[s];
        solvers_[s] = std::make_unique<sparse::SupernodalCholesky>();
        if (sparsity_) {
          // Boundary-restricted Schur analysis: the dense Schur target
          // shrinks from the m dual rows of B̃ᵢ to the nb boundary rows of
          // the selection E_b. A subdomain with no boundary coupling falls
          // back to a plain factorization (its F̃ᵢ is identically zero but
          // kplus_solve must still work).
          boundary_[s] = decomp::boundary_dofs(fs);
          e_b_[s] = decomp::boundary_selection(boundary_[s], fs.ndof());
          if (boundary_[s].count() > 0)
            solvers_[s]->analyze_schur(fs.k_reg, e_b_[s], ordering_);
          else
            solvers_[s]->analyze(fs.k_reg, ordering_);
        } else {
          solvers_[s]->analyze_schur(fs.k_reg, fs.b, ordering_);
        }
        const idx m = fs.num_local_lambdas();
        f_host_[s] = la::DenseMatrix(m, m, la::Layout::ColMajor);
        if constexpr (std::is_same_v<T, float>)
          f_host32_[s] = la::DenseMatrixF32(m, m, la::Layout::ColMajor);
        f_dev_[s] = gpu::alloc_dense_t<T>(dev_, m, m, la::Layout::ColMajor);
      });
    }
    guard.rethrow();
    vectors_.prepare(dev_, main_stream_, p_, owned_);
    dev_.synchronize();
    ctx_.ensure_workspace();
  }

  void update_values() override {
    ScopedTimer t(timings_, "update_values");
    const UpdatePlan plan = begin_update(owned_);
    if (plan.skip()) return;
    const idx nd = static_cast<idx>(plan.dirty.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nd; ++k) {
      guard.run([&, k] {
        const idx s = plan.dirty[static_cast<std::size_t>(k)];
        const auto& fs = p_.sub[s];
        gpu::Stream st = streams_[static_cast<std::size_t>(k) % streams_.size()];
        if (sparsity_) {
          const idx nb = boundary_[s].count();
          if (nb == 0) {
            solvers_[s]->factorize(fs.k_reg);
            la::DenseView fv = f_host_[s].view();
            for (idx c = 0; c < fv.cols; ++c)
              for (idx r = 0; r < fv.rows; ++r) fv.at(r, c) = 0.0;
          } else {
            la::DenseMatrix g(nb, nb, la::Layout::ColMajor);
            solvers_[s]->factorize_schur(fs.k_reg, e_b_[s], g.view(),
                                         la::Uplo::Upper);
            expand_boundary(boundary_[s].b_b, g.view(), la::Uplo::Upper,
                            f_host_[s].view());
            solve_columns_.fetch_add(nb, std::memory_order_relaxed);
          }
        } else {
          solvers_[s]->factorize_schur(fs.k_reg, fs.b, f_host_[s].view(),
                                       la::Uplo::Upper);
          solve_columns_.fetch_add(fs.num_local_lambdas(),
                                   std::memory_order_relaxed);
        }
        if constexpr (std::is_same_v<T, float>) {
          // Host-side demotion of the refreshed block, then an upload of
          // half the bytes.
          la::demote_triangle(la::Uplo::Upper, f_host_[s].cview(),
                              f_host32_[s].view());
          st.memcpy_h2d(f_dev_[s].data, f_host32_[s].data(),
                        f_host32_[s].size() * sizeof(float));
        } else {
          st.memcpy_h2d(f_dev_[s].data, f_host_[s].data(),
                        f_host_[s].size() * sizeof(double));
        }
      });
    }
    guard.rethrow();
    dev_.synchronize();
    end_update(plan);
  }

  void apply_one(const double* x, double* y) override {
    auto submit_local = [this](idx s, gpu::Stream& st, const T* lam, T* q) {
      gpu::blas::symv(st, la::Uplo::Upper, 1.0, f_dev_[s], lam, 0.0, q);
    };
    if (opt_.scatter_gather == SgLocation::Gpu)
      vectors_.apply_sg_gpu(main_stream_, streams_, x, y, submit_local);
    else
      vectors_.apply_sg_cpu(streams_, x, y, submit_local);
  }

  void apply_many(const double* x, double* y, idx nrhs) override {
    // Application runs on the GPU here, so the batch does too: one SYMM per
    // subdomain against the CPU-assembled F̃ᵢ.
    auto submit_local = [this](idx s, gpu::Stream& st,
                               gpu::DeviceDenseT<T> lam,
                               gpu::DeviceDenseT<T> q) {
      gpu::blas::symm(st, la::Uplo::Upper, 1.0, f_dev_[s], lam, 0.0, q);
    };
    vectors_.ensure_batch(nrhs, la::Layout::RowMajor);
    if (opt_.scatter_gather == SgLocation::Gpu)
      vectors_.apply_sg_gpu_many(main_stream_, streams_, x, y, nrhs,
                                 submit_local);
    else
      vectors_.apply_sg_cpu_many(streams_, x, y, nrhs, submit_local);
  }

  [[nodiscard]] gpu::ExecutionContext* device_context() override {
    return &ctx_;
  }

  void apply_many_device(const double* d_x, double* d_y,
                         idx nrhs) override {
    // The hybrid operator applies on the GPU already — device-resident
    // input just drops the cluster staging copies around the same SYMV/SYMM.
    if (nrhs == 1) {
      auto submit_local = [this](idx s, gpu::Stream& st, const T* lam,
                                 T* q) {
        gpu::blas::symv(st, la::Uplo::Upper, 1.0, f_dev_[s], lam, 0.0, q);
      };
      vectors_.apply_sg_gpu_dev(main_stream_, streams_, d_x, d_y,
                                submit_local);
      return;
    }
    auto submit_local = [this](idx s, gpu::Stream& st,
                               gpu::DeviceDenseT<T> lam,
                               gpu::DeviceDenseT<T> q) {
      gpu::blas::symm(st, la::Uplo::Upper, 1.0, f_dev_[s], lam, 0.0, q);
    };
    vectors_.ensure_batch(nrhs, la::Layout::RowMajor);
    vectors_.apply_sg_gpu_many_dev(main_stream_, streams_, d_x, d_y, nrhs,
                                   submit_local);
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    check(solvers_[sub] != nullptr,
          "HybridDualOp: subdomain not owned by this operator");
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override {
    if constexpr (std::is_same_v<T, float>)
      return sparsity_ ? "expl hybrid sp f32" : "expl hybrid f32";
    else
      return sparsity_ ? "expl hybrid sp" : "expl hybrid";
  }

  [[nodiscard]] std::size_t apply_bytes() const override {
    std::size_t total = 0;
    for (const auto& f : f_dev_) total += f.bytes();
    return total;
  }

 private:
  ExplicitGpuOptions opt_;
  sparse::OrderingKind ordering_;
  gpu::ExecutionContext& ctx_;
  gpu::Device& dev_;
  std::vector<idx> owned_;
  bool sparsity_ = false;  ///< boundary-restricted assembly (" sp" keys)
  gpu::Stream main_stream_;
  std::vector<gpu::Stream> streams_;
  std::vector<std::unique_ptr<sparse::SupernodalCholesky>> solvers_;
  std::vector<decomp::BoundaryDofs> boundary_;  ///< sp-only
  std::vector<la::Csr> e_b_;                    ///< sp-only: selection E_b
  std::vector<la::DenseMatrix> f_host_;
  std::vector<la::DenseMatrixF32> f_host32_;  ///< float staging (T == float)
  std::vector<gpu::DeviceDenseT<T>> f_dev_;
  GpuDualVectorsT<T> vectors_;
};

using HybridDualOp = HybridDualOpT<double>;

// ---------------------------------------------------------------------------
// Sharded multi-device wrapper
// ---------------------------------------------------------------------------

/// Partitions the subdomains across the shards of a gpu::DevicePool and
/// delegates to one partial operator per shard. Each partial operator
/// produces the contributions of its own subdomains (zero elsewhere), so
/// the cluster-wide dual result is the sum of the per-shard results.
class ShardedDualOp final : public DualOperator {
 public:
  using InnerFactory = std::function<std::unique_ptr<DualOperator>(
      gpu::ExecutionContext&, std::vector<idx>)>;

  ShardedDualOp(const decomp::FetiProblem& p, std::string key,
                std::unique_ptr<gpu::DevicePool> pool,
                const InnerFactory& make_inner)
      : DualOperator(p), key_(std::move(key)), pool_(std::move(pool)) {
    const idx nsub = p.num_subdomains();
    inner_.reserve(pool_->size());
    for (std::size_t shard = 0; shard < pool_->size(); ++shard) {
      std::vector<idx> owned = pool_->owned_subdomains(shard, nsub);
      // A shard beyond the subdomain count owns nothing; an empty list
      // must not reach the inner factory, whose empty-subset convention
      // means "all subdomains".
      if (owned.empty()) break;
      inner_.push_back(make_inner(pool_->context(shard), std::move(owned)));
    }
  }

  ~ShardedDualOp() override {
    for (std::size_t k = 0; k < partial_dev_.size(); ++k)
      if (partial_dev_[k] != nullptr) {
        pool_->context(k).device().synchronize();
        pool_->context(k).device().free(partial_dev_[k]);
      }
  }

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    // Sequential: preparation is dominated by one-time CPU symbolic work
    // that already parallelizes across subdomains within each shard.
    for (auto& op : inner_) op->prepare();
  }

  void update_values() override {
    // Every shard filters its own owned subset against the problem's value
    // versions, so a clean step costs one near-free pass per shard. The
    // wrapper aggregates the per-shard skip decisions: the step counts as
    // skipped only when no shard refreshed anything.
    ScopedTimer t(timings_, "update_values");
    const long before = inner_refreshed_total();
    parallel_over_shards([&](std::size_t k) { inner_[k]->update_values(); });
    ++cache_stats_.steps;
    if (inner_refreshed_total() == before) ++cache_stats_.skipped_steps;
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    inner_[pool_->shard_of(sub)]->kplus_solve(sub, b, x);
  }

  [[nodiscard]] const char* name() const override { return key_.c_str(); }

  /// A shard that served a batch through the base-class loop counts here:
  /// the wrapper forwards whole batches, so its own counter stays 0 and
  /// the aggregate exposes the inner operators' behaviour.
  [[nodiscard]] long loop_fallback_count() const override {
    long total = DualOperator::loop_fallback_count();
    for (const auto& op : inner_) total += op->loop_fallback_count();
    return total;
  }

  /// Steps and whole-step skips are wrapper-level (each update_values()
  /// call above is one step regardless of shard count); the per-subdomain
  /// counts sum over the disjoint shard subsets, so refreshed + skipped
  /// per step still adds up to the subdomain count.
  [[nodiscard]] CacheStats cache_stats() const override {
    CacheStats total;
    total.steps = cache_stats_.steps;
    total.skipped_steps = cache_stats_.skipped_steps;
    for (const auto& op : inner_) {
      const CacheStats inner = op->cache_stats();
      total.refreshed_subdomains += inner.refreshed_subdomains;
      total.skipped_subdomains += inner.skipped_subdomains;
    }
    return total;
  }

  /// Sum of the shards' persistent apply-state bytes (disjoint subdomain
  /// subsets, so the sum is the whole operator's F̃ footprint).
  [[nodiscard]] std::size_t apply_bytes() const override {
    std::size_t total = 0;
    for (const auto& op : inner_) total += op->apply_bytes();
    return total;
  }

  /// Sum of the shards' assembly solve-column counters (disjoint subdomain
  /// subsets, so the sum is the whole operator's solve-panel work).
  [[nodiscard]] long solve_columns() const override {
    long total = 0;
    for (const auto& op : inner_) total += op->solve_columns();
    return total;
  }

  /// Shard 0's context anchors the device-resident solver state; the other
  /// shards' partial applications write into buffers that the merge kernel
  /// (submitted on shard 0's stream) sums — legal in the virtual runtime,
  /// where every device's memory is process memory.
  [[nodiscard]] gpu::ExecutionContext* device_context() override {
    return &pool_->context(0);
  }

 protected:
  void apply_one(const double* x, double* y) override { merge_apply(x, y, 1); }

  void apply_many(const double* x, double* y, idx nrhs) override {
    merge_apply(x, y, nrhs);
  }

  void apply_many_device(const double* d_x, double* d_y,
                         idx nrhs) override {
    const std::size_t len = static_cast<std::size_t>(p_.num_lambdas) *
                            static_cast<std::size_t>(nrhs);
    ensure_partial_dev(len);
    // d_x is produced on the anchor context's stream (the device_context()
    // the caller iterates on); shards 1+ read it from their own devices, so
    // the anchor queue must drain before the fan-out.
    pool_->context(0).main_stream().synchronize();
    // Each shard's partial application is synchronous (the inner device
    // paths drain their main stream before returning), so the merge below
    // sees complete partials once the shard threads have joined.
    parallel_over_shards([&](std::size_t k) {
      inner_[k]->apply_device(d_x, partial_dev_[k], nrhs);
    });
    gpu::Stream main = pool_->context(0).main_stream();
    std::vector<const double*> parts(partial_dev_.begin(),
                                     partial_dev_.end());
    main.submit([d_y, parts = std::move(parts), len] {
      std::fill_n(d_y, len, 0.0);
      for (const double* part : parts)
        for (std::size_t i = 0; i < len; ++i) d_y[i] += part[i];
    });
    main.synchronize();
  }

 private:
  /// Grow-only per-shard device partial buffers for apply_many_device,
  /// allocated on each shard's own device (matching that shard's memory
  /// accounting, like the inner operators' state).
  void ensure_partial_dev(std::size_t len) {
    partial_dev_.resize(inner_.size(), nullptr);
    if (partial_cap_ >= len) return;
    for (std::size_t k = 0; k < inner_.size(); ++k) {
      gpu::Device& dev = pool_->context(k).device();
      if (partial_dev_[k] != nullptr) dev.free(partial_dev_[k]);
      partial_dev_[k] = nullptr;
      partial_dev_[k] = dev.alloc_n<double>(len);
    }
    partial_cap_ = len;
  }
  /// Runs every shard's partial application concurrently (one host thread
  /// per shard — each shard owns a separate virtual device), then sums the
  /// partial cluster vectors. The partial buffers persist across calls:
  /// apply sits in the PCPG per-iteration hot path.
  void merge_apply(const double* x, double* y, idx nrhs) {
    const std::size_t len =
        static_cast<std::size_t>(p_.num_lambdas) * static_cast<std::size_t>(nrhs);
    partial_.resize(inner_.size());
    parallel_over_shards([&](std::size_t k) {
      partial_[k].resize(len);
      inner_[k]->apply(x, partial_[k].data(), nrhs);
    });
    std::fill_n(y, len, 0.0);
    for (const auto& part : partial_)
      for (std::size_t i = 0; i < len; ++i) y[i] += part[i];
  }

  [[nodiscard]] long inner_refreshed_total() const {
    long total = 0;
    for (const auto& op : inner_) total += op->cache_stats().refreshed_subdomains;
    return total;
  }

  template <typename F>
  void parallel_over_shards(F&& f) {
    std::vector<std::exception_ptr> errors(inner_.size());
    std::vector<std::thread> threads;
    threads.reserve(inner_.size());
    for (std::size_t k = 0; k < inner_.size(); ++k)
      threads.emplace_back([&, k] {
        try {
          f(k);
        } catch (...) {
          errors[k] = std::current_exception();
        }
      });
    for (auto& t : threads) t.join();
    for (auto& e : errors)
      if (e) std::rethrow_exception(e);
  }

  std::string key_;
  // pool_ outlives inner_ (members destroy in reverse declaration order):
  // the partial operators hold references into the pool's contexts.
  std::unique_ptr<gpu::DevicePool> pool_;
  std::vector<std::unique_ptr<DualOperator>> inner_;
  std::vector<std::vector<double>> partial_;
  std::vector<double*> partial_dev_;  ///< per-shard device partials
  std::size_t partial_cap_ = 0;       ///< allocated length of each partial
};

}  // namespace

std::unique_ptr<DualOperator> make_implicit_gpu(
    const decomp::FetiProblem& p, gpu::sparse::Api api,
    sparse::OrderingKind ordering, gpu::ExecutionContext& context, int streams,
    std::vector<idx> owned) {
  return std::make_unique<ImplicitGpuDualOp>(p, api, ordering, context,
                                             streams, std::move(owned));
}

std::unique_ptr<DualOperator> make_explicit_gpu(
    const decomp::FetiProblem& p, gpu::sparse::Api api,
    const ExplicitGpuOptions& options, sparse::OrderingKind ordering,
    gpu::ExecutionContext& context, std::vector<idx> owned,
    Precision precision, bool sparsity) {
  if (precision == Precision::F32)
    return std::make_unique<ExplicitGpuDualOpT<float>>(
        p, api, options, ordering, context, std::move(owned), sparsity);
  return std::make_unique<ExplicitGpuDualOp>(p, api, options, ordering,
                                             context, std::move(owned),
                                             sparsity);
}

std::unique_ptr<DualOperator> make_hybrid(const decomp::FetiProblem& p,
                                          const ExplicitGpuOptions& options,
                                          sparse::OrderingKind ordering,
                                          gpu::ExecutionContext& context,
                                          std::vector<idx> owned,
                                          Precision precision, bool sparsity) {
  if (precision == Precision::F32)
    return std::make_unique<HybridDualOpT<float>>(
        p, options, ordering, context, std::move(owned), sparsity);
  return std::make_unique<HybridDualOp>(p, options, ordering, context,
                                        std::move(owned), sparsity);
}

void register_gpu_dual_operators(DualOperatorRegistry& registry) {
  using R = Representation;
  using D = ExecDevice;
  using B = sparse::Backend;
  using A = gpu::sparse::Api;
  const auto gpu_axes = [](R r, A api, Precision prec = Precision::F64,
                           bool sp = false) {
    ApproachAxes a;
    a.repr = r;
    a.device = D::Gpu;
    a.backend = B::Simplicial;
    a.api = api;
    a.precision = prec;
    a.sparsity = sp;
    return a;
  };

  // Per-shard factory: builds the partial operator of one shard over its
  // owned subdomain subset. Invoked synchronously inside the ShardedDualOp
  // constructor, so `p` and `c` (borrowed from the registry factory call)
  // outlive every use.
  using ShardInner = std::function<std::unique_ptr<DualOperator>(
      const decomp::FetiProblem&, const DualOpConfig&, gpu::ExecutionContext&,
      std::vector<idx>)>;

  // Registers "<base> x2" and "<base> x4": subdomains partitioned across N
  // virtual devices derived from the supplied context's budget, one partial
  // operator per shard.
  const auto add_sharded = [&registry](const std::string& base,
                                       const ApproachAxes& axes,
                                       const std::string& what,
                                       ShardInner inner) {
    for (int shards : {2, 4}) {
      const std::string key = base + " x" + std::to_string(shards);
      registry.add(
          {key, axes,
           what + " sharded across " + std::to_string(shards) +
               " virtual GPUs"},
          [shards, key, inner](const decomp::FetiProblem& p,
                               const DualOpConfig& c,
                               gpu::ExecutionContext* ctx) {
            auto pool = std::make_unique<gpu::DevicePool>(
                shards,
                gpu::DevicePool::split_config(ctx->device().config(), shards));
            return std::make_unique<ShardedDualOp>(
                p, key, std::move(pool),
                [&p, &c, &inner](gpu::ExecutionContext& shard_ctx,
                                 std::vector<idx> owned) {
                  return inner(p, c, shard_ctx, std::move(owned));
                });
          });
    }
  };

  for (A api : {A::Legacy, A::Modern}) {
    const char* apiname = gpu::sparse::to_string(api);
    registry.add(
        {std::string("impl ") + apiname, gpu_axes(R::Implicit, api),
         std::string("implicit application on the GPU, ") + apiname +
             " sparse API, simplicial factors"},
        [api](const decomp::FetiProblem& p, const DualOpConfig& c,
              gpu::ExecutionContext* ctx) {
          return make_implicit_gpu(p, api, c.ordering, *ctx, c.gpu.streams);
        });
    add_sharded(std::string("impl ") + apiname, gpu_axes(R::Implicit, api),
                std::string("implicit application, ") + apiname +
                    " sparse API,",
                [api](const decomp::FetiProblem& p, const DualOpConfig& c,
                      gpu::ExecutionContext& shard_ctx,
                      std::vector<idx> owned) {
                  return make_implicit_gpu(p, api, c.ordering, shard_ctx,
                                           c.gpu.streams, std::move(owned));
                });
    for (bool sp : {false, true}) {
      const char* spsuffix = sp ? " sp" : "";
      const char* spnote = sp ? ", boundary-restricted RHS panel" : "";
      for (Precision prec : {Precision::F64, Precision::F32}) {
        const char* suffix = prec == Precision::F32 ? " f32" : "";
        const char* storage = prec == Precision::F32
                                  ? " (fp32 storage + fp64 accumulation)"
                                  : "";
        registry.add(
            {std::string("expl ") + apiname + spsuffix + suffix,
             gpu_axes(R::Explicit, api, prec, sp),
             std::string("explicit F̃ assembled on the GPU, ") + apiname +
                 " sparse API" + spnote + storage},
            [api, prec, sp](const decomp::FetiProblem& p,
                            const DualOpConfig& c,
                            gpu::ExecutionContext* ctx) {
              return make_explicit_gpu(p, api, c.gpu, c.ordering, *ctx, {},
                                       prec, sp);
            });
        add_sharded(std::string("expl ") + apiname + spsuffix + suffix,
                    gpu_axes(R::Explicit, api, prec, sp),
                    std::string("explicit F̃ assembly, ") + apiname +
                        " sparse API," + spnote + storage,
                    [api, prec, sp](const decomp::FetiProblem& p,
                                    const DualOpConfig& c,
                                    gpu::ExecutionContext& shard_ctx,
                                    std::vector<idx> owned) {
                      return make_explicit_gpu(p, api, c.gpu, c.ordering,
                                               shard_ctx, std::move(owned),
                                               prec, sp);
                    });
      }
    }
  }

  for (bool sp : {false, true}) {
    const char* spsuffix = sp ? " sp" : "";
    const char* spnote = sp ? ", boundary-restricted Schur panel" : "";
    for (Precision prec : {Precision::F64, Precision::F32}) {
      const char* suffix = prec == Precision::F32 ? " f32" : "";
      const char* storage = prec == Precision::F32
                                ? " (fp32 storage + fp64 accumulation)"
                                : "";
      ApproachAxes hybrid;
      hybrid.repr = R::Explicit;
      hybrid.device = D::Hybrid;
      hybrid.backend = B::Supernodal;
      hybrid.precision = prec;
      hybrid.sparsity = sp;
      registry.add(
          {std::string("expl hybrid") + spsuffix + suffix, hybrid,
           std::string("explicit F̃ assembled on the CPU (Schur path), "
                       "applied on the GPU") +
               spnote + storage},
          [prec, sp](const decomp::FetiProblem& p, const DualOpConfig& c,
                     gpu::ExecutionContext* ctx) {
            return make_hybrid(p, c.gpu, c.ordering, *ctx, {}, prec, sp);
          });
      add_sharded(std::string("expl hybrid") + spsuffix + suffix, hybrid,
                  std::string("explicit F̃ assembled on the CPU, applied on "
                              "the GPU,") +
                      spnote + storage,
                  [prec, sp](const decomp::FetiProblem& p,
                             const DualOpConfig& c,
                             gpu::ExecutionContext& shard_ctx,
                             std::vector<idx> owned) {
                    return make_hybrid(p, c.gpu, c.ordering, shard_ctx,
                                       std::move(owned), prec, sp);
                  });
    }
  }
}

}  // namespace feti::core
