#pragma once

// Deterministic random number helpers. Tests and benches must be
// reproducible run-to-run, so everything takes an explicit seed.

#include <cstdint>
#include <random>

namespace feti {

/// Thin wrapper over a fixed-algorithm engine so results are stable across
/// standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return lo + (hi - lo) * (static_cast<double>(engine_() >> 11) * 0x1.0p-53);
  }

  /// Uniform integer in [lo, hi] inclusive.
  long integer(long lo, long hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    return lo + static_cast<long>(engine_() % span);
  }

  std::uint64_t raw() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace feti
