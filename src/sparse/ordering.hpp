#pragma once

// Fill-reducing orderings for symmetric sparse matrices.
//
// The paper's CPU solvers use METIS to reduce fill-in; METIS is not available
// here, so the default ordering is a quotient-graph minimum-degree algorithm
// with supervariable merging (the AMD family), which reproduces the property
// the paper's analysis leans on: 2D meshes factor with very sparse L, 3D
// meshes with much denser L. RCM and natural orderings are provided for
// comparison and testing.

#include <vector>

#include "la/csr.hpp"

namespace feti::sparse {

enum class OrderingKind {
  MinimumDegree,  ///< quotient-graph minimum degree (default)
  RCM,            ///< reverse Cuthill-McKee
  Natural,        ///< identity
};

const char* to_string(OrderingKind k);

/// Computes a fill-reducing permutation (perm[new] = old) for a symmetric
/// matrix given by its full pattern (both triangles present). Values are
/// ignored; the diagonal may or may not be present.
std::vector<idx> compute_ordering(const la::Csr& pattern, OrderingKind kind);

/// Fill-in statistics helper used by tests and the experiment harnesses:
/// returns nnz(L) for a Cholesky factorization of the pattern permuted with
/// `perm` (computed via the elimination tree; no numeric work).
widx cholesky_fill(const la::Csr& pattern, const std::vector<idx>& perm);

}  // namespace feti::sparse
