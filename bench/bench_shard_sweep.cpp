// Shard-count sweep (open ROADMAP item carried since PR 2): x1 / x2 / x4
// shard counts across problem sizes for one explicit and one implicit
// family, showing where multi-device sharding starts paying. Each shard
// owns a disjoint subdomain subset on its own virtual device, so
// update_values() parallelizes across shards and the per-shard apply
// streams less F̃ — but every shard adds submission and merge overhead,
// which dominates on small problems.
//
// `--quick` runs the CI smoke configuration: one small problem, still
// end-to-end through x1/x2/x4 of both families. The consistency gate is
// hard in both modes: every sharded apply must match the single-device
// result to fp64 round-off, and no key may degrade to the base-class loop
// fallback. The speedup shapes are advisory (loaded runners).

#include <cmath>
#include <cstring>

#include "common.hpp"
#include "core/dualop_registry.hpp"

using namespace feti;
using namespace feti::bench;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  gpu::ExecutionContext& device = shared_context();
  const std::vector<idx> sizes = quick ? std::vector<idx>{6}
                                       : std::vector<idx>{8, 16, 24};
  const std::vector<std::string> families = {"expl legacy", "impl legacy"};
  const std::vector<int> shard_counts = {1, 2, 4};

  std::printf("=== shard-count sweep: per-subdomain times [ms] vs shards "
              "(%s mode) ===\n",
              quick ? "quick" : "full");
  Table table({"family", "DOFs/sub", "lambdas", "x1 prep", "x2 prep",
               "x4 prep", "x1 apply", "x2 apply", "x4 apply"});

  bool consistent = true;
  bool no_fallback = true;
  int sharding_helped = 0;

  for (idx cells : sizes) {
    // 3x3 subdomains so the x2 partition is uneven (5 + 4) and x4 is
    // exercised with more subdomains than shards.
    mesh::Mesh m = mesh::make_grid_2d(cells * 3, cells * 3,
                                      mesh::ElementOrder::Linear);
    auto dec = mesh::decompose_2d(m, cells * 3, cells * 3, 3, 3);
    decomp::FetiProblem problem =
        decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
    const idx dofs = problem.max_subdomain_dofs();
    const std::size_t n = static_cast<std::size_t>(problem.num_lambdas);

    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
      x[i] = 1.0 + 0.001 * static_cast<double>(i % 89);

    for (const std::string& family : families) {
      std::vector<std::string> row = {family, std::to_string(dofs),
                                      std::to_string(problem.num_lambdas)};
      std::vector<std::string> apply_cells;
      std::vector<double> y_base;
      double apply_x1 = 0.0, apply_last = 0.0;
      for (int shards : shard_counts) {
        const std::string key =
            shards == 1 ? family : family + " x" + std::to_string(shards);
        core::DualOpConfig cfg =
            core::recommend_config(key, 2, dofs);
        auto op = core::make_dual_operator(problem, cfg, &device);
        op->prepare();
        op->update_values();  // warm-up (first full refresh)

        const int reps = quick ? 3 : 5;
        const double min_seconds = quick ? 0.005 : 0.02;
        const double prep_ms =
            measure_median_seconds(reps, min_seconds,
                                   [&] {
                                     problem.mark_values_changed();
                                     op->update_values();
                                   }) *
            1e3 / problem.num_subdomains();

        std::vector<double> y(n, 0.0);
        op->apply(x.data(), y.data());  // warm-up
        const double apply_ms =
            measure_median_seconds(std::max(reps, 5), min_seconds,
                                   [&] { op->apply(x.data(), y.data()); }) *
            1e3 / problem.num_subdomains();

        if (op->loop_fallback_count() != 0) {
          std::printf("FAIL: key '%s' hit the base-class loop fallback\n",
                      key.c_str());
          no_fallback = false;
        }
        if (shards == 1) {
          y_base = y;
          apply_x1 = apply_ms;
        } else {
          double scale = 1.0;
          for (double v : y_base) scale = std::max(scale, std::fabs(v));
          for (std::size_t i = 0; i < n; ++i)
            if (std::fabs(y[i] - y_base[i]) > 1e-10 * scale) {
              std::printf("FAIL: '%s' deviates from '%s' at entry %zu "
                          "(%g vs %g)\n",
                          key.c_str(), family.c_str(), i, y[i], y_base[i]);
              consistent = false;
              break;
            }
        }
        apply_last = apply_ms;
        row.push_back(Table::num(prep_ms, 4));
        apply_cells.push_back(Table::num(apply_ms, 4));
      }
      for (auto& c : apply_cells) row.push_back(std::move(c));
      table.add_row(std::move(row));
      if (cells == sizes.back() && apply_last < apply_x1) ++sharding_helped;
    }
  }

  table.print();
  std::printf("\nCSV:\n");
  table.print_csv(std::cout);
  shape_check("sharded applies match the single-device operator to fp64 "
              "round-off",
              consistent);
  shape_check("no shard count degrades to the base-class loop fallback",
              no_fallback);
  // Advisory on loaded machines: at the largest size, x4 should beat x1 for
  // at least one family (the virtual devices multiply worker threads).
  shape_check("sharding pays for at least one family at the largest size "
              "(advisory)",
              sharding_helped > 0);
  return (consistent && no_fallback) ? 0 : 1;
}
