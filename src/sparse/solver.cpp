#include "sparse/solver.hpp"

#include "sparse/simplicial_cholesky.hpp"
#include "sparse/supernodal_cholesky.hpp"

namespace feti::sparse {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Simplicial: return "simplicial (cholmod stand-in)";
    case Backend::Supernodal: return "supernodal (pardiso stand-in)";
  }
  return "?";
}

const char* axis_name(Backend b) {
  return b == Backend::Simplicial ? "simplicial" : "supernodal";
}

Backend parse_backend(std::string_view s) {
  for (Backend b : {Backend::Simplicial, Backend::Supernodal})
    if (s == axis_name(b) || s == to_string(b)) return b;
  if (s == "cholmod") return Backend::Simplicial;
  if (s == "mkl" || s == "pardiso") return Backend::Supernodal;
  throw std::invalid_argument("parse_backend: unknown backend '" +
                              std::string(s) + "'");
}

void DirectSolver::solve_many(la::ConstDenseView b, la::DenseView x) const {
  check(b.rows == dim() && x.rows == dim() && b.cols == x.cols,
        "solve_many: dimension mismatch");
  // Contiguous col-major columns solve in place — the batched-apply hot
  // path (ImplicitCpuDualOp::apply_many) lands here every iteration.
  const bool b_cols_contiguous =
      b.layout == la::Layout::ColMajor && b.ld == b.rows;
  const bool x_cols_contiguous =
      x.layout == la::Layout::ColMajor && x.ld == x.rows;
  if (b_cols_contiguous && x_cols_contiguous) {
    for (idx j = 0; j < b.cols; ++j)
      solve(b.data + static_cast<widx>(j) * b.ld,
            x.data + static_cast<widx>(j) * x.ld);
    return;
  }
  std::vector<double> bi(static_cast<std::size_t>(dim()));
  std::vector<double> xi(static_cast<std::size_t>(dim()));
  for (idx j = 0; j < b.cols; ++j) {
    for (idx i = 0; i < dim(); ++i) bi[i] = b.at(i, j);
    solve(bi.data(), xi.data());
    for (idx i = 0; i < dim(); ++i) x.at(i, j) = xi[i];
  }
}

const la::Csr& DirectSolver::factor_lower() const {
  throw std::logic_error(
      "factor extraction is not supported by this backend (the supernodal "
      "backend mirrors MKL PARDISO, which does not export factors)");
}

const la::Csr& DirectSolver::factor_upper() const {
  throw std::logic_error(
      "factor extraction is not supported by this backend (the supernodal "
      "backend mirrors MKL PARDISO, which does not export factors)");
}

void DirectSolver::factorize_schur(const la::Csr&, const la::Csr&,
                                   la::DenseView, la::Uplo) {
  throw std::logic_error(
      "Schur complement is not supported by this backend (the simplicial "
      "backend mirrors CHOLMOD, which has no augmented-factorization path)");
}

std::unique_ptr<DirectSolver> make_solver(Backend backend) {
  switch (backend) {
    case Backend::Simplicial:
      return std::make_unique<SimplicialCholesky>();
    case Backend::Supernodal:
      return std::make_unique<SupernodalCholesky>();
  }
  throw std::invalid_argument("make_solver: unknown backend");
}

}  // namespace feti::sparse
