// Tests for structured mesh generation and domain decomposition.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "mesh/grid.hpp"

namespace feti::mesh {
namespace {

double tri_area(const Mesh& m, idx e) {
  const idx* n = m.element(e);
  const double x0 = m.coord(n[0], 0), y0 = m.coord(n[0], 1);
  const double x1 = m.coord(n[1], 0), y1 = m.coord(n[1], 1);
  const double x2 = m.coord(n[2], 0), y2 = m.coord(n[2], 1);
  return 0.5 * std::fabs((x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0));
}

double tet_volume(const Mesh& m, idx e) {
  const idx* n = m.element(e);
  double v[3][3];
  for (int r = 0; r < 3; ++r)
    for (int d = 0; d < 3; ++d)
      v[r][d] = m.coord(n[r + 1], d) - m.coord(n[0], d);
  const double det = v[0][0] * (v[1][1] * v[2][2] - v[1][2] * v[2][1]) -
                     v[0][1] * (v[1][0] * v[2][2] - v[1][2] * v[2][0]) +
                     v[0][2] * (v[1][0] * v[2][1] - v[1][1] * v[2][0]);
  return std::fabs(det) / 6.0;
}

TEST(Grid2D, LinearCounts) {
  Mesh m = make_grid_2d(4, 3, ElementOrder::Linear);
  EXPECT_EQ(m.type, ElementType::Tri3);
  EXPECT_EQ(m.num_nodes, 5 * 4);
  EXPECT_EQ(m.num_elements(), 2 * 4 * 3);
}

TEST(Grid2D, QuadraticCounts) {
  Mesh m = make_grid_2d(4, 3, ElementOrder::Quadratic);
  EXPECT_EQ(m.type, ElementType::Tri6);
  EXPECT_EQ(m.num_nodes, 9 * 7);
  EXPECT_EQ(m.num_elements(), 2 * 4 * 3);
}

TEST(Grid3D, LinearCounts) {
  Mesh m = make_grid_3d(3, 2, 2, ElementOrder::Linear);
  EXPECT_EQ(m.type, ElementType::Tet4);
  EXPECT_EQ(m.num_nodes, 4 * 3 * 3);
  EXPECT_EQ(m.num_elements(), 6 * 3 * 2 * 2);
}

TEST(Grid3D, QuadraticCounts) {
  Mesh m = make_grid_3d(2, 2, 2, ElementOrder::Quadratic);
  EXPECT_EQ(m.type, ElementType::Tet10);
  EXPECT_EQ(m.num_nodes, 5 * 5 * 5);
  EXPECT_EQ(m.num_elements(), 6 * 8);
}

TEST(Grid2D, AreasSumToOne) {
  for (auto order : {ElementOrder::Linear, ElementOrder::Quadratic}) {
    Mesh m = make_grid_2d(5, 4, order);
    double total = 0.0;
    for (idx e = 0; e < m.num_elements(); ++e) total += tri_area(m, e);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Grid3D, VolumesSumToOne) {
  for (auto order : {ElementOrder::Linear, ElementOrder::Quadratic}) {
    Mesh m = make_grid_3d(3, 3, 2, order);
    double total = 0.0;
    for (idx e = 0; e < m.num_elements(); ++e) total += tet_volume(m, e);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Grid2D, ElementNodesDistinctAndInRange) {
  Mesh m = make_grid_2d(3, 3, ElementOrder::Quadratic);
  for (idx e = 0; e < m.num_elements(); ++e) {
    const idx* n = m.element(e);
    std::set<idx> uniq(n, n + 6);
    EXPECT_EQ(uniq.size(), 6u);
    for (int a = 0; a < 6; ++a) {
      EXPECT_GE(n[a], 0);
      EXPECT_LT(n[a], m.num_nodes);
    }
  }
}

TEST(Grid2D, QuadraticMidNodesAtEdgeMidpoints) {
  Mesh m = make_grid_2d(3, 2, ElementOrder::Quadratic);
  for (idx e = 0; e < m.num_elements(); ++e) {
    const idx* n = m.element(e);
    const int pairs[3][2] = {{0, 1}, {1, 2}, {2, 0}};
    for (int k = 0; k < 3; ++k)
      for (int d = 0; d < 2; ++d)
        EXPECT_NEAR(m.coord(n[3 + k], d),
                    0.5 * (m.coord(n[pairs[k][0]], d) +
                           m.coord(n[pairs[k][1]], d)),
                    1e-14);
  }
}

TEST(Grid3D, QuadraticMidNodesAtEdgeMidpoints) {
  Mesh m = make_grid_3d(2, 2, 2, ElementOrder::Quadratic);
  const int pairs[6][2] = {{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 3}, {2, 3}};
  for (idx e = 0; e < m.num_elements(); ++e) {
    const idx* n = m.element(e);
    for (int k = 0; k < 6; ++k)
      for (int d = 0; d < 3; ++d)
        EXPECT_NEAR(m.coord(n[4 + k], d),
                    0.5 * (m.coord(n[pairs[k][0]], d) +
                           m.coord(n[pairs[k][1]], d)),
                    1e-14);
  }
}

TEST(Grid2D, DirichletNodesOnXZeroFace) {
  Mesh m = make_grid_2d(4, 4, ElementOrder::Quadratic);
  EXPECT_EQ(m.dirichlet_nodes.size(), 9u);
  for (idx n : m.dirichlet_nodes) EXPECT_EQ(m.coord(n, 0), 0.0);
  // No other node has x == 0.
  idx zero_count = 0;
  for (idx n = 0; n < m.num_nodes; ++n)
    if (m.coord(n, 0) == 0.0) ++zero_count;
  EXPECT_EQ(zero_count, static_cast<idx>(m.dirichlet_nodes.size()));
}

TEST(Grid3D, DirichletNodesOnXZeroFace) {
  Mesh m = make_grid_3d(2, 3, 2, ElementOrder::Linear);
  EXPECT_EQ(m.dirichlet_nodes.size(), 4u * 3u);
  for (idx n : m.dirichlet_nodes) EXPECT_EQ(m.coord(n, 0), 0.0);
}

class Decompose2DParam
    : public ::testing::TestWithParam<std::tuple<ElementOrder, idx, idx>> {};

TEST_P(Decompose2DParam, PartitionIsConsistent) {
  const auto [order, sx, sy] = GetParam();
  const idx nx = 6, ny = 6;
  Mesh m = make_grid_2d(nx, ny, order);
  Decomposition dec = decompose_2d(m, nx, ny, sx, sy);
  ASSERT_EQ(dec.subdomains.size(), static_cast<std::size_t>(sx * sy));

  // Element coverage: total local elements == global elements.
  idx total_elems = 0;
  for (const auto& sd : dec.subdomains) total_elems += sd.local.num_elements();
  EXPECT_EQ(total_elems, m.num_elements());

  // Local coordinates must match global through l2g.
  for (const auto& sd : dec.subdomains) {
    ASSERT_EQ(sd.node_l2g.size(),
              static_cast<std::size_t>(sd.local.num_nodes));
    for (idx l = 0; l < sd.local.num_nodes; ++l)
      for (int d = 0; d < 2; ++d)
        EXPECT_EQ(sd.local.coord(l, d), m.coord(sd.node_l2g[l], d));
  }

  // Multiplicity: every node covered; interface nodes shared.
  idx shared = 0;
  for (idx g = 0; g < m.num_nodes; ++g) {
    EXPECT_GE(dec.node_multiplicity[g], 1);
    if (dec.node_multiplicity[g] > 1) ++shared;
  }
  if (sx * sy > 1) {
    EXPECT_GT(shared, 0);
  }

  // Dirichlet nodes propagate to local meshes.
  for (const auto& sd : dec.subdomains)
    for (idx l : sd.local.dirichlet_nodes)
      EXPECT_EQ(sd.local.coord(l, 0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Decompose2DParam,
    ::testing::Combine(::testing::Values(ElementOrder::Linear,
                                         ElementOrder::Quadratic),
                       ::testing::Values<idx>(1, 2, 3),
                       ::testing::Values<idx>(1, 2)));

TEST(Decompose3D, PartitionIsConsistent) {
  const idx nx = 4, ny = 4, nz = 2;
  Mesh m = make_grid_3d(nx, ny, nz, ElementOrder::Linear);
  Decomposition dec = decompose_3d(m, nx, ny, nz, 2, 2, 1);
  ASSERT_EQ(dec.subdomains.size(), 4u);
  idx total = 0;
  for (const auto& sd : dec.subdomains) total += sd.local.num_elements();
  EXPECT_EQ(total, m.num_elements());
  for (const auto& sd : dec.subdomains)
    for (idx l = 0; l < sd.local.num_nodes; ++l)
      for (int d = 0; d < 3; ++d)
        EXPECT_EQ(sd.local.coord(l, d), m.coord(sd.node_l2g[l], d));
}

TEST(Decompose, ClusterAssignmentBalanced) {
  Mesh m = make_grid_2d(8, 8, ElementOrder::Linear);
  Decomposition dec = decompose_2d(m, 8, 8, 4, 2, 2);
  EXPECT_EQ(dec.num_clusters, 2);
  idx c0 = 0, c1 = 0;
  for (idx c : dec.cluster_of) (c == 0 ? c0 : c1) += 1;
  EXPECT_EQ(c0, 4);
  EXPECT_EQ(c1, 4);
}

TEST(Decompose, InvalidArgumentsThrow) {
  Mesh m = make_grid_2d(4, 4, ElementOrder::Linear);
  EXPECT_THROW(decompose_2d(m, 4, 4, 5, 1), std::invalid_argument);
  EXPECT_THROW(decompose_2d(m, 4, 4, 1, 1, 2), std::invalid_argument);
  Mesh m3 = make_grid_3d(2, 2, 2, ElementOrder::Linear);
  EXPECT_THROW(decompose_2d(m3, 2, 2, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace feti::mesh
