#include "la/blas_dense.hpp"

#include <cmath>

#include "la/scale.hpp"

namespace feti::la {

namespace {

/// Strides for reading op(A) element (i, j) as data[i*s_i + j*s_j]. A
/// transposed read of one layout equals an untransposed read of the other,
/// so four (layout, trans) combinations collapse into two stride patterns.
template <typename T>
struct StridedT {
  const T* data;
  widx si;
  widx sj;
  [[nodiscard]] T at(idx i, idx j) const {
    return data[static_cast<widx>(i) * si + static_cast<widx>(j) * sj];
  }
};

using Strided = StridedT<double>;

template <typename T>
StridedT<T> make_op(ConstDenseViewT<T> a, Trans trans) {
  const bool row_like =
      (a.layout == Layout::RowMajor) != (trans == Trans::Yes);
  if (row_like) return {a.data, static_cast<widx>(a.ld), 1};
  return {a.data, 1, static_cast<widx>(a.ld)};
}

using detail::scale_vec;
using detail::store_scaled;

template <typename T>
T dot_t(idx n, const T* x, const T* y) {
  T s = T(0);
  for (idx i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

template <typename T>
void axpy_t(idx n, T alpha, const T* x, T* y) {
  for (idx i = 0; i < n; ++i) y[i] += alpha * x[i];
}

// The level-2/3 kernel bodies are scalar-templated: the public fp64 API
// instantiates T = double, and the mixed-precision fp32 entry points at the
// bottom instantiate T = float — identical traversals (and therefore
// identical rounding order between the single- and multi-RHS variants of a
// precision), half the bytes streamed.

template <typename T>
void gemv_impl(T alpha, ConstDenseViewT<T> a, Trans trans, const T* x,
               T beta, T* y) {
  const idx m = trans == Trans::No ? a.rows : a.cols;
  const idx n = trans == Trans::No ? a.cols : a.rows;
  const StridedT<T> op = make_op(a, trans);
  if (op.sj == 1) {
    // op(A) rows are contiguous: dot-product form.
    for (idx i = 0; i < m; ++i) {
      const T* row = op.data + static_cast<widx>(i) * op.si;
      store_scaled(beta, y[i]);
      y[i] += alpha * dot_t(n, row, x);
    }
  } else {
    // op(A) columns are contiguous: axpy form.
    scale_vec(m, beta, y);
    for (idx j = 0; j < n; ++j) {
      const T* col = op.data + static_cast<widx>(j) * op.sj;
      axpy_t(m, alpha * x[j], col, y);
    }
  }
}

template <typename T>
void symv_impl(Uplo uplo, T alpha, ConstDenseViewT<T> a, const T* x, T beta,
               T* y) {
  check(a.rows == a.cols, "symv: matrix must be square");
  const idx n = a.rows;
  scale_vec(n, beta, y);
  if (uplo == Uplo::Upper) {
    for (idx r = 0; r < n; ++r) {
      T acc = a.at(r, r) * x[r];
      for (idx c = r + 1; c < n; ++c) {
        const T v = a.at(r, c);
        acc += v * x[c];
        y[c] += alpha * v * x[r];
      }
      y[r] += alpha * acc;
    }
  } else {
    for (idx r = 0; r < n; ++r) {
      T acc = a.at(r, r) * x[r];
      for (idx c = 0; c < r; ++c) {
        const T v = a.at(r, c);
        acc += v * x[c];
        y[c] += alpha * v * x[r];
      }
      y[r] += alpha * acc;
    }
  }
}

template <typename T>
void symm_impl(Uplo uplo, T alpha, ConstDenseViewT<T> a, ConstDenseViewT<T> b,
               T beta, DenseViewT<T> c) {
  check(a.rows == a.cols, "symm: matrix must be square");
  check(b.rows == a.cols && c.rows == a.rows && c.cols == b.cols,
        "symm: dimension mismatch");
  const idx n = a.rows, w = b.cols;
  // Fast path: row-major B and C give contiguous per-row RHS panels, so the
  // inner loops over the w right-hand sides vectorize.
  if (b.layout == Layout::RowMajor && c.layout == Layout::RowMajor) {
    for (idx i = 0; i < n; ++i)
      scale_vec(w, beta, c.data + static_cast<widx>(i) * c.ld);
    for (idx r = 0; r < n; ++r) {
      const idx c_begin = uplo == Uplo::Upper ? r + 1 : 0;
      const idx c_end = uplo == Uplo::Upper ? n : r;
      T* cr = c.data + static_cast<widx>(r) * c.ld;
      const T* br = b.data + static_cast<widx>(r) * b.ld;
      const T d = alpha * a.at(r, r);
      for (idx j = 0; j < w; ++j) cr[j] += d * br[j];
      for (idx col = c_begin; col < c_end; ++col) {
        const T v = alpha * a.at(r, col);
        if (v == T(0)) continue;
        T* cc = c.data + static_cast<widx>(col) * c.ld;
        const T* bc = b.data + static_cast<widx>(col) * b.ld;
        for (idx j = 0; j < w; ++j) {
          cr[j] += v * bc[j];
          cc[j] += v * br[j];
        }
      }
    }
    return;
  }
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < w; ++j) store_scaled(beta, c.at(i, j));
  // Mirror the stored triangle on the fly (same traversal as symv, with a
  // row of right-hand sides in the inner dimension).
  for (idx r = 0; r < n; ++r) {
    const idx c_begin = uplo == Uplo::Upper ? r + 1 : 0;
    const idx c_end = uplo == Uplo::Upper ? n : r;
    for (idx j = 0; j < w; ++j) c.at(r, j) += alpha * a.at(r, r) * b.at(r, j);
    for (idx col = c_begin; col < c_end; ++col) {
      const T v = alpha * a.at(r, col);
      if (v == T(0)) continue;
      for (idx j = 0; j < w; ++j) {
        c.at(r, j) += v * b.at(col, j);
        c.at(col, j) += v * b.at(r, j);
      }
    }
  }
}

template <typename T>
void gemm_impl(T alpha, ConstDenseViewT<T> a, Trans ta, ConstDenseViewT<T> b,
               Trans tb, T beta, DenseViewT<T> c) {
  const idx m = ta == Trans::No ? a.rows : a.cols;
  const idx k = ta == Trans::No ? a.cols : a.rows;
  const idx kb = tb == Trans::No ? b.rows : b.cols;
  const idx n = tb == Trans::No ? b.cols : b.rows;
  check(k == kb, "gemm: inner dimension mismatch");
  check(c.rows == m && c.cols == n, "gemm: output dimension mismatch");
  const StridedT<T> oa = make_op(a, ta);
  const StridedT<T> ob = make_op(b, tb);
  // Simple ikj loop with C row accumulation; adequate for the modest GEMM
  // sizes in this library (projector setup, tests).
  for (idx i = 0; i < m; ++i) {
    for (idx j = 0; j < n; ++j) store_scaled(beta, c.at(i, j));
    for (idx p = 0; p < k; ++p) {
      const T av = alpha * oa.at(i, p);
      if (av == T(0)) continue;
      for (idx j = 0; j < n; ++j) c.at(i, j) += av * ob.at(p, j);
    }
  }
}

}  // namespace

double dot(idx n, const double* x, const double* y) {
  return dot_t(n, x, y);
}

void axpy(idx n, double alpha, const double* x, double* y) {
  axpy_t(n, alpha, x, y);
}

void scal(idx n, double alpha, double* x) {
  for (idx i = 0; i < n; ++i) x[i] *= alpha;
}

double nrm2(idx n, const double* x) { return std::sqrt(dot(n, x, x)); }

void gemv(double alpha, ConstDenseView a, Trans trans, const double* x,
          double beta, double* y) {
  gemv_impl<double>(alpha, a, trans, x, beta, y);
}

void symv(Uplo uplo, double alpha, ConstDenseView a, const double* x,
          double beta, double* y) {
  symv_impl<double>(uplo, alpha, a, x, beta, y);
}

void symm(Uplo uplo, double alpha, ConstDenseView a, ConstDenseView b,
          double beta, DenseView c) {
  symm_impl<double>(uplo, alpha, a, b, beta, c);
}

void gemm(double alpha, ConstDenseView a, Trans ta, ConstDenseView b,
          Trans tb, double beta, DenseView c) {
  gemm_impl<double>(alpha, a, ta, b, tb, beta, c);
}

void syrk(Uplo uplo, Trans trans, double alpha, ConstDenseView a, double beta,
          DenseView c) {
  const idx n = trans == Trans::No ? a.rows : a.cols;
  const idx k = trans == Trans::No ? a.cols : a.rows;
  check(c.rows == n && c.cols == n, "syrk: output dimension mismatch");
  // op(A)(i, p): row i of the logical n x k operand.
  const Strided op = make_op<double>(a, trans);
  const bool rows_contiguous = op.sj == 1;

  auto scale_triangle = [&] {
    if (uplo == Uplo::Upper) {
      for (idx r = 0; r < n; ++r)
        for (idx col = r; col < n; ++col) store_scaled(beta, c.at(r, col));
    } else {
      for (idx r = 0; r < n; ++r)
        for (idx col = 0; col <= r; ++col)
          store_scaled(beta, c.at(r, col));
    }
  };
  scale_triangle();

  if (rows_contiguous) {
    // Dot products of contiguous rows of op(A).
    for (idx r = 0; r < n; ++r) {
      const double* xr = op.data + static_cast<widx>(r) * op.si;
      if (uplo == Uplo::Upper) {
        for (idx col = r; col < n; ++col) {
          const double* xc = op.data + static_cast<widx>(col) * op.si;
          c.at(r, col) += alpha * dot(k, xr, xc);
        }
      } else {
        for (idx col = 0; col <= r; ++col) {
          const double* xc = op.data + static_cast<widx>(col) * op.si;
          c.at(r, col) += alpha * dot(k, xr, xc);
        }
      }
    }
  } else {
    // Columns of op(A)^T are contiguous: accumulate rank-1 updates with
    // blocking over p for locality.
    for (idx p = 0; p < k; ++p) {
      const double* col = op.data + static_cast<widx>(p) * op.sj;
      for (idx r = 0; r < n; ++r) {
        const double av = alpha * col[r];
        if (av == 0.0) continue;
        if (uplo == Uplo::Upper) {
          for (idx j = r; j < n; ++j) c.at(r, j) += av * col[j];
        } else {
          for (idx j = 0; j <= r; ++j) c.at(r, j) += av * col[j];
        }
      }
    }
  }
}

namespace {

/// Core triangular solve: solves T x = b column-by-column where T is the
/// logical triangular operand accessed through strides. `lower` refers to
/// the effective (post-transpose) triangle.
template <bool Lower>
void trsm_cols(const Strided& t, idx n, DenseView b) {
  for (idx j = 0; j < b.cols; ++j) {
    if (b.layout == Layout::ColMajor) {
      double* x = b.data + static_cast<widx>(j) * b.ld;
      if constexpr (Lower) {
        for (idx kk = 0; kk < n; ++kk) {
          const double xk = (x[kk] /= t.at(kk, kk));
          if (xk != 0.0)
            for (idx i = kk + 1; i < n; ++i) x[i] -= t.at(i, kk) * xk;
        }
      } else {
        for (idx kk = n - 1; kk >= 0; --kk) {
          const double xk = (x[kk] /= t.at(kk, kk));
          if (xk != 0.0)
            for (idx i = 0; i < kk; ++i) x[i] -= t.at(i, kk) * xk;
        }
      }
    } else {
      // Row-major single column: strided; handled by the vectorized
      // all-columns path below instead.
      FETI_ASSERT(false, "trsm_cols: row-major handled elsewhere");
    }
  }
}

/// Row-major RHS path: rows of B are contiguous, so the update
/// row_i -= T(i,k) * row_k vectorizes across all right-hand sides at once.
template <bool Lower>
void trsm_rows(const Strided& t, idx n, DenseView b) {
  const idx w = b.cols;
  auto row = [&](idx i) { return b.data + static_cast<widx>(i) * b.ld; };
  if constexpr (Lower) {
    for (idx kk = 0; kk < n; ++kk) {
      scal(w, 1.0 / t.at(kk, kk), row(kk));
      const double* rk = row(kk);
      for (idx i = kk + 1; i < n; ++i) {
        const double f = t.at(i, kk);
        if (f != 0.0) axpy(w, -f, rk, row(i));
      }
    }
  } else {
    for (idx kk = n - 1; kk >= 0; --kk) {
      scal(w, 1.0 / t.at(kk, kk), row(kk));
      const double* rk = row(kk);
      for (idx i = 0; i < kk; ++i) {
        const double f = t.at(i, kk);
        if (f != 0.0) axpy(w, -f, rk, row(i));
      }
    }
  }
}

}  // namespace

void trsm(Uplo uplo, Trans trans, ConstDenseView a, DenseView b) {
  check(a.rows == a.cols, "trsm: factor must be square");
  check(a.rows == b.rows, "trsm: dimension mismatch");
  const idx n = a.rows;
  if (n == 0 || b.cols == 0) return;
  const Strided t = make_op<double>(a, trans);
  const bool lower_eff =
      (uplo == Uplo::Lower) != (trans == Trans::Yes);
  if (b.layout == Layout::RowMajor) {
    if (lower_eff)
      trsm_rows<true>(t, n, b);
    else
      trsm_rows<false>(t, n, b);
  } else {
    if (lower_eff)
      trsm_cols<true>(t, n, b);
    else
      trsm_cols<false>(t, n, b);
  }
}

void trsv(Uplo uplo, Trans trans, ConstDenseView a, double* x) {
  DenseView b{x, a.rows, 1, a.rows, Layout::ColMajor};
  trsm(uplo, trans, a, b);
}

bool potrf_lower(DenseView a) {
  check(a.rows == a.cols, "potrf_lower: matrix must be square");
  const idx n = a.rows;
  for (idx j = 0; j < n; ++j) {
    double d = a.at(j, j);
    for (idx k = 0; k < j; ++k) d -= a.at(j, k) * a.at(j, k);
    if (d <= 0.0) return false;
    d = std::sqrt(d);
    a.at(j, j) = d;
    for (idx i = j + 1; i < n; ++i) {
      double v = a.at(i, j);
      for (idx k = 0; k < j; ++k) v -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = v / d;
    }
    for (idx i = 0; i < j; ++i) a.at(i, j) = 0.0;
  }
  return true;
}

idx potrf_pivoted_lower(DenseView a, idx* perm, double rel_tolerance) {
  check(a.rows == a.cols, "potrf_pivoted_lower: matrix must be square");
  check(rel_tolerance >= 0.0, "potrf_pivoted_lower: negative tolerance");
  const idx n = a.rows;
  for (idx i = 0; i < n; ++i) perm[i] = i;
  if (n == 0) return 0;

  double max_diag = 0.0;
  for (idx i = 0; i < n; ++i) max_diag = std::max(max_diag, a.at(i, i));
  // A numerically zero Gram matrix has rank 0 regardless of tolerance.
  if (max_diag <= 0.0) return 0;
  const double floor = rel_tolerance * max_diag;

  for (idx j = 0; j < n; ++j) {
    // Pick the largest remaining updated diagonal as the next pivot.
    idx piv = j;
    double best = a.at(j, j);
    for (idx i = j + 1; i < n; ++i)
      if (a.at(i, i) > best) {
        best = a.at(i, i);
        piv = i;
      }
    if (best <= floor || best <= 0.0) return j;
    if (piv != j) {
      std::swap(perm[j], perm[piv]);
      // Symmetric row/column swap, restricted to the lower triangle the
      // factorization reads: columns < j hold finished L rows, the j..n
      // block holds the updated trailing matrix.
      for (idx k = 0; k < j; ++k) std::swap(a.at(j, k), a.at(piv, k));
      std::swap(a.at(j, j), a.at(piv, piv));
      for (idx i = j + 1; i < n; ++i) {
        if (i == piv) continue;
        double& lo = i < piv ? a.at(piv, i) : a.at(i, piv);
        double& hi = a.at(i, j);
        std::swap(lo, hi);
      }
    }
    const double d = std::sqrt(a.at(j, j));
    a.at(j, j) = d;
    for (idx i = j + 1; i < n; ++i) a.at(i, j) /= d;
    // Rank-1 update of the trailing diagonal+lower block.
    for (idx c = j + 1; c < n; ++c)
      for (idx i = c; i < n; ++i) a.at(i, c) -= a.at(i, j) * a.at(c, j);
    for (idx i = 0; i < j; ++i) a.at(i, j) = 0.0;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Mixed precision: fp32 storage entry points
// ---------------------------------------------------------------------------
//
// The fp32 instantiations of the templated kernel bodies above — the
// cublasS* analogues behind the mixed-precision explicit dual operators.
// Arithmetic runs in fp32 (half the bytes streamed, twice the SIMD width);
// the fp64 accumulation the mixed-precision design relies on happens at
// the dual-vector reduction (the gather back into the fp64 cluster
// vector), not inside these kernels. alpha/beta stay fp64 in the signature
// for API symmetry and are demoted on entry.

void symv(Uplo uplo, double alpha, ConstDenseViewF32 a, const float* x,
          double beta, float* y) {
  symv_impl<float>(uplo, static_cast<float>(alpha), a, x,
                   static_cast<float>(beta), y);
}

void gemv(double alpha, ConstDenseViewF32 a, Trans trans, const float* x,
          double beta, float* y) {
  gemv_impl<float>(static_cast<float>(alpha), a, trans, x,
                   static_cast<float>(beta), y);
}

void symm(Uplo uplo, double alpha, ConstDenseViewF32 a, ConstDenseViewF32 b,
          double beta, DenseViewF32 c) {
  symm_impl<float>(uplo, static_cast<float>(alpha), a, b,
                   static_cast<float>(beta), c);
}

void gemm(double alpha, ConstDenseViewF32 a, Trans ta, ConstDenseViewF32 b,
          Trans tb, double beta, DenseViewF32 c) {
  gemm_impl<float>(static_cast<float>(alpha), a, ta, b, tb,
                   static_cast<float>(beta), c);
}

}  // namespace feti::la
