// feti_cli — a small command-line driver exposing the whole pipeline:
// choose physics, dimension, mesh size, decomposition, element order,
// dual-operator approach, preconditioner, and the explicit-assembly
// parameters; run one or more time steps and print timings.
//
//   feti_cli --dim 3 --cells 8 --splits 2 --physics heat \
//            --approach "expl legacy" --steps 3 --precond lumped

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/autotune.hpp"
#include "core/dualop_registry.hpp"
#include "core/feti_solver.hpp"
#include "precond/precond_registry.hpp"
#include "service/solver_service.hpp"
#include "util/table.hpp"

namespace {

using namespace feti;

struct Cli {
  int dim = 2;
  idx cells = 8;
  idx splits = 2;
  std::string physics = "heat";
  std::string order = "linear";
  std::string approach = "expl legacy";
  std::string precond = "none";
  int steps = 1;
  double tol = 1e-8;
  bool pcpg_block = false;
  bool pcpg_recycle = false;
  bool pcpg_device = false;
  bool verify = false;
  bool list = false;
  bool list_precond = false;
  bool pool_stats = false;
  double pool_budget_mb = 0.0;  // 0 = auto (sized to show the demotion)
};

void usage() {
  std::printf(
      "usage: feti_cli [options]\n"
      "  --dim {2|3}            problem dimensionality      (default 2)\n"
      "  --cells N              cells per axis              (default 8)\n"
      "  --splits N             subdomains per axis         (default 2)\n"
      "  --physics {heat|elasticity}                        (default heat)\n"
      "  --order {linear|quadratic}                         (default linear)\n"
      "  --approach NAME        a registered dual-operator key (see below)\n"
      "  --precond KEY          a preconditioner registry key (\"none\",\n"
      "                         \"lumped\", \"dirichlet stiffness gpu\", ...)\n"
      "                         or \"auto\"                   (default none)\n"
      "  --steps N              time steps (Algorithm 2)    (default 1)\n"
      "  --tol X                PCPG relative tolerance     (default 1e-8)\n"
      "  --pcpg-block           block-PCPG iteration (shared Krylov panel,\n"
      "                         pivoted-Cholesky Gram step)\n"
      "  --pcpg-recycle         cross-step Krylov recycling (implies\n"
      "                         --pcpg-block); pays off from --steps 2 on\n"
      "  --pcpg-device          require the device-resident PCPG loop\n"
      "                         (PcpgOptions::device_state = On; errors on\n"
      "                         approaches without a device context) and\n"
      "                         report the per-step PCIe transfer bytes\n"
      "  --verify               compare against a monolithic direct solve\n"
      "  --list                 print all registered dual-operator keys "
      "with\n"
      "                         their capability metadata and exit\n"
      "  --list-precond         print all registered preconditioner keys "
      "and\n"
      "                         exit\n"
      "  --pool-stats           dry-run the service layer's per-job planner "
      "on a\n"
      "                         job mix for this problem: the key each job "
      "would\n"
      "                         resolve to as the operator pool fills, and "
      "the\n"
      "                         estimated pooled-entry bytes (no solves "
      "run)\n"
      "  --pool-budget MB       pool budget for --pool-stats (default: "
      "sized so\n"
      "                         the mix crosses into fp32 demotion)\n"
      "\nregistered dual-operator approaches:\n");
  const auto& registry = core::DualOperatorRegistry::instance();
  for (const std::string& key : registry.keys())
    std::printf("  %-13s %s\n", key.c_str(),
                registry.info(key).summary.c_str());
}

bool parse(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--help" || a == "-h") return false;
    const char* v = nullptr;
    if (a == "--dim" && (v = next())) cli.dim = std::atoi(v);
    else if (a == "--cells" && (v = next())) cli.cells = std::atoi(v);
    else if (a == "--splits" && (v = next())) cli.splits = std::atoi(v);
    else if (a == "--physics" && (v = next())) cli.physics = v;
    else if (a == "--order" && (v = next())) cli.order = v;
    else if (a == "--approach" && (v = next())) cli.approach = v;
    else if (a == "--precond" && (v = next())) cli.precond = v;
    else if (a == "--steps" && (v = next())) cli.steps = std::atoi(v);
    else if (a == "--tol" && (v = next())) cli.tol = std::atof(v);
    else if (a == "--pcpg-block") cli.pcpg_block = true;
    else if (a == "--pcpg-recycle") cli.pcpg_recycle = true;
    else if (a == "--pcpg-device") cli.pcpg_device = true;
    else if (a == "--verify") cli.verify = true;
    else if (a == "--list") cli.list = true;
    else if (a == "--list-precond") cli.list_precond = true;
    else if (a == "--pool-stats") cli.pool_stats = true;
    else if (a == "--pool-budget" && (v = next()))
      cli.pool_budget_mb = std::atof(v);
    else {
      std::printf("unknown or incomplete option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

/// --list: every registered key with its capability metadata, so users can
/// discover operators without reading source.
void list_operators(const feti::gpu::ExecutionContext* context) {
  const auto& registry = core::DualOperatorRegistry::instance();
  Table table({"key", "gpu", "explicit", "sparsity", "precision",
               "available", "description"});
  for (const std::string& key : registry.keys()) {
    const core::DualOperatorInfo info = registry.info(key);
    table.add_row({key, registry.uses_gpu(key) ? "yes" : "no",
                   registry.is_explicit(key) ? "yes" : "no",
                   info.axes.sparsity ? "boundary" : "-",
                   core::to_string(info.axes.precision),
                   registry.available(key, context) ? "yes" : "no",
                   info.summary});
  }
  table.print();
}

/// --list-precond: every registered preconditioner key with its metadata.
void list_preconditioners(const feti::gpu::ExecutionContext* context) {
  const auto& registry = precond::PreconditionerRegistry::instance();
  Table table({"key", "gpu", "available", "description"});
  for (const std::string& key : registry.keys())
    table.add_row({key, registry.uses_gpu(key) ? "yes" : "no",
                   registry.available(key, context) ? "yes" : "no",
                   registry.info(key).summary});
  table.print();
}

/// --pool-stats: dry-run of the service layer's per-job planner. Simulates
/// a job mix against a filling operator pool — each planned entry's
/// estimated bytes are deducted from the remaining budget before the next
/// job plans, so the output shows exactly where the pool pressure starts
/// demoting auto-keyed explicit jobs to the fp32 storage tier. No
/// operators are built and nothing solves.
void pool_stats_dry_run(const decomp::FetiProblem& problem, int dim,
                        const std::string& user_key, double budget_mb) {
  idx max_lambdas = 0;
  for (const auto& s : problem.sub)
    max_lambdas = std::max(max_lambdas, s.num_local_lambdas());
  const std::size_t blocks =
      static_cast<std::size_t>(problem.num_subdomains()) *
      static_cast<std::size_t>(max_lambdas) *
      static_cast<std::size_t>(max_lambdas);
  // Estimated pooled-entry footprint per precision: the persistent F̃
  // blocks for explicit keys, the factor estimate for implicit ones.
  auto entry_bytes = [&](const core::DualOpConfig& cfg) {
    if (!core::DualOperatorRegistry::instance().is_explicit(
            cfg.resolved_key()))
      return service::estimate_solver_bytes(problem);
    return blocks * (cfg.axes().precision == core::Precision::F32
                         ? sizeof(float)
                         : sizeof(double));
  };
  const std::size_t f64_entry = blocks * sizeof(double);
  const std::size_t budget =
      budget_mb > 0.0 ? static_cast<std::size_t>(budget_mb * 1e6)
                      : f64_entry * 3 + f64_entry / 2;

  // The mix: alternating auto-keyed tenants and the user's explicit key —
  // distinct tenants, so every job is a new pooled entry.
  const char* requested[] = {"", "", user_key.c_str(), "", "", ""};
  Table table({"job", "requested", "planned key", "entry [KB]",
               "remaining before [KB]"});
  std::size_t remaining = budget;
  for (std::size_t j = 0; j < std::size(requested); ++j) {
    service::SolveJob job;
    job.problem = &problem;
    job.key = requested[j];
    const core::DualOpConfig cfg = service::SolverService::plan_config(
        job, dim, gpu::DeviceTopology{1, 0}, remaining, budget);
    const std::size_t bytes = entry_bytes(cfg);
    table.add_row({std::to_string(j),
                   job.key.empty() ? "(auto)" : job.key.c_str(),
                   cfg.resolved_key(),
                   Table::num(static_cast<double>(bytes) / 1e3, 1),
                   Table::num(static_cast<double>(remaining) / 1e3, 1)});
    remaining -= std::min(bytes, remaining);
  }
  std::printf("service planner dry run (pool budget %.1f KB; problem: %d "
              "subdomains, max %d local multipliers)\n",
              static_cast<double>(budget) / 1e3, problem.num_subdomains(),
              max_lambdas);
  table.print();
  std::printf("\nauto-keyed jobs resolve to the explicit GPU family; once "
              "the remaining\nbudget drops between the fp32 and fp64 F̃ "
              "footprints, new entries demote\nto the fp32 storage tier "
              "(SolverService::plan_config).\n");
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse(argc, argv, cli)) {
    usage();
    return 1;
  }
  gpu::ExecutionContext context(gpu::DeviceConfig::from_env());
  if (cli.list) {
    list_operators(&context);
    return 0;
  }
  if (cli.list_precond) {
    list_preconditioners(&context);
    return 0;
  }
  const fem::Physics physics = cli.physics == "heat"
                                   ? fem::Physics::HeatTransfer
                                   : fem::Physics::LinearElasticity;
  const mesh::ElementOrder order = cli.order == "linear"
                                       ? mesh::ElementOrder::Linear
                                       : mesh::ElementOrder::Quadratic;

  mesh::Mesh m;
  mesh::Decomposition dec;
  if (cli.dim == 2) {
    m = mesh::make_grid_2d(cli.cells, cli.cells, order);
    dec = mesh::decompose_2d(m, cli.cells, cli.cells, cli.splits, cli.splits);
  } else {
    m = mesh::make_grid_3d(cli.cells, cli.cells, cli.cells, order);
    dec = mesh::decompose_3d(m, cli.cells, cli.cells, cli.cells, cli.splits,
                             cli.splits, cli.splits);
  }
  decomp::FetiProblem problem = decomp::build_feti_problem(dec, physics);
  std::printf("%s %dD, %s elements: %d global DOFs, %zu subdomains "
              "(max %d DOFs), %d lagrange multipliers\n",
              fem::to_string(physics), cli.dim, cli.order.c_str(),
              problem.global_dofs, problem.sub.size(),
              problem.max_subdomain_dofs(), problem.num_lambdas);
  if (cli.pool_stats) {
    pool_stats_dry_run(problem, cli.dim, cli.approach, cli.pool_budget_mb);
    return 0;
  }

  const auto& registry = core::DualOperatorRegistry::instance();
  if (!registry.contains(cli.approach)) {
    std::printf("unknown approach '%s'; registered keys:\n",
                cli.approach.c_str());
    for (const std::string& key : registry.keys())
      std::printf("  %s\n", key.c_str());
    return 1;
  }
  core::FetiSolverOptions opts;
  opts.dualop = core::recommend_config(cli.approach, cli.dim,
                                       problem.max_subdomain_dofs());
  opts.pcpg.rel_tolerance = cli.tol;
  opts.pcpg.max_iterations = 5000;
  opts.pcpg.block.enabled = cli.pcpg_block || cli.pcpg_recycle;
  opts.pcpg.block.recycle = cli.pcpg_recycle;
  if (cli.pcpg_device)
    opts.pcpg.device_state = core::PcpgOptions::DeviceState::On;
  if (cli.precond == "auto") {
    // The CLI's structured problems are uniform, so the hint carries no
    // coefficient jump; "auto" demonstrates the recommendation plumbing.
    core::WorkloadHint hint;
    opts.pcpg.preconditioner = core::recommend_preconditioner(
        hint, registry.uses_gpu(cli.approach));
  } else {
    opts.pcpg.preconditioner = precond::normalize_key(cli.precond);
    if (!precond::PreconditionerRegistry::instance().contains(
            opts.pcpg.preconditioner)) {
      std::printf("unknown preconditioner '%s'; registered keys:\n",
                  cli.precond.c_str());
      for (const std::string& key :
           precond::PreconditionerRegistry::instance().keys())
        std::printf("  %s\n", key.c_str());
      return 1;
    }
  }
  std::printf("approach: %s [%s]  (%s), preconditioner: %s\n",
              cli.approach.c_str(), opts.dualop.axes().describe().c_str(),
              registry.is_explicit(cli.approach)
                  ? opts.dualop.gpu.describe().c_str()
                  : "implicit application",
              opts.pcpg.preconditioner.c_str());

  core::FetiSolver solver(problem, opts, &context);
  Timer prep;
  solver.prepare();
  std::printf("preparation: %.3f ms\n", prep.millis());

  // Under --pcpg-device the per-step PCIe traffic of the PCPG phase is the
  // interesting number (the device loop keeps it at O(scalars)/iteration),
  // so the table grows the two TransferCounters delta columns.
  std::vector<std::string> headers = {"step", "preproc [ms]", "PCPG iters",
                                      "apply total [ms]", "residual",
                                      "step [ms]"};
  if (cli.pcpg_device) {
    headers.push_back("H2D [KB]");
    headers.push_back("D2H [KB]");
  }
  Table table(headers);
  double load_factor = 1.0;  ///< cumulative f scaling vs the original mesh
  for (int step = 0; step < cli.steps; ++step) {
    core::FetiStepResult res = solver.solve_step();
    std::vector<std::string> row = {
        std::to_string(step), Table::num(res.preprocess_seconds * 1e3, 3),
        std::to_string(res.pcpg_iterations),
        Table::num(res.apply_seconds * 1e3, 3),
        Table::sci(res.rel_residual, 2),
        Table::num(res.step_seconds * 1e3, 3)};
    if (cli.pcpg_device) {
      row.push_back(Table::num(static_cast<double>(res.pcpg_h2d_bytes) / 1e3,
                               1));
      row.push_back(Table::num(static_cast<double>(res.pcpg_d2h_bytes) / 1e3,
                               1));
    }
    table.add_row(row);
    if (!res.converged) {
      table.print();
      std::printf("step %d did NOT converge\n", step);
      return 1;
    }
    if (cli.verify) {
      // The reference is assembled from the original mesh; the problem is
      // linear, so the load-only schedule below just scales its solution.
      fem::GlobalSystem global = fem::assemble_global(m, physics);
      std::vector<double> u_ref = fem::reference_solve(global);
      double err = 0.0, scale = 1e-30;
      for (std::size_t i = 0; i < u_ref.size(); ++i) {
        const double ref = u_ref[i] * load_factor;
        err = std::max(err, std::fabs(res.u[i] - ref));
        scale = std::max(scale, std::fabs(ref));
      }
      std::printf("  step %d: max relative error vs direct solve: %.3e\n",
                  step, err / scale);
    }
    if (step + 1 < cli.steps) {
      if (cli.pcpg_recycle) {
        // Transient-load schedule: only f changes, so K stays cached and
        // the recycled panel stays valid — the workload recycling exists
        // for. The default schedule scales K and f together, which keeps
        // the solution fixed but would (correctly) drop the panel every
        // step.
        for (auto& fs : problem.sub)
          for (double& v : fs.sys.f) v *= 1.1;
        load_factor *= 1.1;
      } else {
        decomp::scale_step(problem, 1.1);
      }
    }
  }
  table.print();
  return 0;
}
