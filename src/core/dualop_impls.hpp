#pragma once

// Internal factory functions for the concrete dual-operator
// implementations (one per Table-III approach family), plus the per-family
// registration entry points the DualOperatorRegistry pulls in on first
// use. Exposed for white-box tests.

#include "core/dual_operator.hpp"
#include "sparse/solver.hpp"

namespace feti::core {

class DualOperatorRegistry;

/// Registers the CPU implementations (impl mkl, impl cholmod, expl mkl,
/// expl cholmod) plus the sparsity-aware ("expl mkl sp", ...) and
/// fp32-storage ("expl mkl f32", "expl cholmod sp f32", ...) variants of
/// the explicit pair. Defined in dualop_cpu.cpp.
void register_cpu_dual_operators(DualOperatorRegistry& registry);

/// Registers the GPU-backed implementations (impl legacy, impl modern,
/// expl legacy, expl modern, expl hybrid), the sparsity-aware and
/// fp32-storage variants of the explicit/hybrid families ("expl legacy
/// sp", "expl legacy f32", "expl hybrid sp f32", ...), and the sharded
/// multi-device variants of all of them ("expl legacy x2", "impl modern
/// x4", "expl legacy sp f32 x2", ...). Defined in dualop_gpu.cpp.
void register_gpu_dual_operators(DualOperatorRegistry& registry);

std::unique_ptr<DualOperator> make_implicit_cpu(
    const decomp::FetiProblem& p, sparse::Backend backend,
    sparse::OrderingKind ordering);

// The explicit factories take the F̃ storage/apply precision: F64 keeps
// the assembled fp64 blocks, F32 assembles in fp64 scratch, demotes the
// persistent storage to fp32, and applies with fp64 accumulation. The
// trailing `sparsity` flag selects the boundary-restricted assembly (the
// " sp" keys): the K⁻¹ solve panel shrinks from the m dual columns to the
// nb boundary DOF columns of the subdomain; the assembled F̃ and the apply
// phase are identical.

/// expl mkl: augmented Schur complement on the CPU.
std::unique_ptr<DualOperator> make_explicit_cpu_schur(
    const decomp::FetiProblem& p, sparse::OrderingKind ordering,
    Precision precision = Precision::F64, bool sparsity = false);

/// expl cholmod: factor extraction + dense-RHS TRSM on the CPU.
std::unique_ptr<DualOperator> make_explicit_cpu_trsm(
    const decomp::FetiProblem& p, sparse::OrderingKind ordering,
    Precision precision = Precision::F64, bool sparsity = false);

// The GPU factories take an ExecutionContext (device + stream pool +
// workspace policy) and an optional subdomain subset `owned`: an empty
// subset means "all subdomains", a non-empty one restricts the operator to
// those subdomains (the building block of the sharded variants — partial
// operators sum to the full F because the dual gather is additive).

std::unique_ptr<DualOperator> make_implicit_gpu(
    const decomp::FetiProblem& p, gpu::sparse::Api api,
    sparse::OrderingKind ordering, gpu::ExecutionContext& context,
    int streams, std::vector<idx> owned = {});

std::unique_ptr<DualOperator> make_explicit_gpu(
    const decomp::FetiProblem& p, gpu::sparse::Api api,
    const ExplicitGpuOptions& options, sparse::OrderingKind ordering,
    gpu::ExecutionContext& context, std::vector<idx> owned = {},
    Precision precision = Precision::F64, bool sparsity = false);

/// expl hybrid: Schur assembly on CPU, application on the GPU.
std::unique_ptr<DualOperator> make_hybrid(const decomp::FetiProblem& p,
                                          const ExplicitGpuOptions& options,
                                          sparse::OrderingKind ordering,
                                          gpu::ExecutionContext& context,
                                          std::vector<idx> owned = {},
                                          Precision precision = Precision::F64,
                                          bool sparsity = false);

}  // namespace feti::core
