#include "sparse/ordering.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>

#include "sparse/etree.hpp"
#include "util/common.hpp"

namespace feti::sparse {

const char* to_string(OrderingKind k) {
  switch (k) {
    case OrderingKind::MinimumDegree: return "minimum-degree";
    case OrderingKind::RCM: return "rcm";
    case OrderingKind::Natural: return "natural";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Quotient-graph minimum degree with supervariable merging.
//
// Bookkeeping follows the classic scheme: the graph holds *variables* (not
// yet eliminated, possibly merged into supervariables) and *elements*
// (cliques created by eliminations). A variable's adjacency is the union of
// its variable neighbours and the variables of its adjacent elements. The
// degree is approximated as |var neighbours| + sum of element sizes, an
// upper bound in the AMD spirit (cheap to maintain, good quality on meshes).
// ---------------------------------------------------------------------------

class MinimumDegree {
 public:
  explicit MinimumDegree(const la::Csr& pattern) : n_(pattern.nrows()) {
    var_adj_.resize(n_);
    var_elems_.resize(n_);
    weight_.assign(n_, 1);
    alive_.assign(n_, true);
    merged_into_.assign(n_, -1);
    for (idx r = 0; r < n_; ++r) {
      auto& adj = var_adj_[r];
      for (idx k = pattern.row_begin(r); k < pattern.row_end(r); ++k) {
        const idx c = pattern.col(k);
        if (c != r) adj.push_back(c);
      }
      std::sort(adj.begin(), adj.end());
      adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    }
    degree_.resize(n_);
    for (idx i = 0; i < n_; ++i)
      degree_[i] = static_cast<idx>(var_adj_[i].size());
  }

  std::vector<idx> run() {
    std::vector<idx> order;
    order.reserve(n_);
    // Bucketed min-degree selection with lazy degree entries.
    buckets_.assign(static_cast<std::size_t>(n_) + 1, {});
    for (idx i = 0; i < n_; ++i)
      buckets_[degree_[i]].push_back(i);
    idx scan = 0;
    idx eliminated = 0;
    while (eliminated < n_) {
      const idx p = pop_min(scan);
      eliminate(p);
      emit(p, order);
      eliminated += weight_[p];
    }
    FETI_ASSERT(static_cast<idx>(order.size()) == n_,
                "minimum degree: incomplete ordering");
    return order;
  }

 private:
  idx pop_min(idx& scan) {
    for (;;) {
      while (scan <= n_ && buckets_[scan].empty()) ++scan;
      FETI_ASSERT(scan <= n_, "minimum degree: buckets exhausted");
      const idx v = buckets_[scan].back();
      buckets_[scan].pop_back();
      if (alive_[v] && degree_[v] == scan) return v;
      if (alive_[v] && degree_[v] < scan) {
        // Stale entry with a better bucket pending; requeue there.
        buckets_[degree_[v]].push_back(v);
        scan = std::min(scan, degree_[v]);
      }
      // Dead or duplicate entries are dropped.
    }
  }

  void requeue(idx v, idx& scan) {
    buckets_[degree_[v]].push_back(v);
    scan = std::min(scan, degree_[v]);
  }

  /// Gathers the element variables reachable from p (its future clique).
  void gather_clique(idx p, std::vector<idx>& clique) {
    clique.clear();
    stamp_ += 1;
    auto push = [&](idx v) {
      if (v != p && alive_[v] && mark_[v] != stamp_) {
        mark_[v] = stamp_;
        clique.push_back(v);
      }
    };
    for (idx v : var_adj_[p]) push(v);
    for (idx e : var_elems_[p])
      for (idx v : elem_vars_[e]) push(v);
  }

  void eliminate(idx p) {
    if (mark_.empty()) mark_.assign(n_, 0);
    std::vector<idx> clique;
    gather_clique(p, clique);
    std::sort(clique.begin(), clique.end());

    // Absorb p's elements into the new element.
    const idx ep = static_cast<idx>(elem_vars_.size());
    for (idx e : var_elems_[p]) elem_alive_[e] = false;
    elem_vars_.push_back(clique);
    elem_alive_.push_back(true);

    alive_[p] = false;

    // Update each clique member: prune variable adjacency (edges inside the
    // clique are now represented by ep), drop absorbed elements, add ep.
    for (idx v : clique) {
      auto& adj = var_adj_[v];
      adj.erase(std::remove_if(adj.begin(), adj.end(),
                               [&](idx u) {
                                 return u == p || !alive_[u] ||
                                        mark_[u] == stamp_;
                               }),
                adj.end());
      auto& elems = var_elems_[v];
      elems.erase(std::remove_if(elems.begin(), elems.end(),
                                 [&](idx e) { return !elem_alive_[e]; }),
                  elems.end());
      elems.push_back(ep);
    }

    // Supervariable detection: hash clique members by their adjacency and
    // merge indistinguishable ones. This is what keeps mesh orderings fast.
    merge_supervariables(clique);

    // Degree update (upper-bound approximation).
    idx scan_unused = 0;
    for (idx v : clique) {
      if (!alive_[v]) continue;
      widx d = 0;
      for (idx u : var_adj_[v])
        if (alive_[u]) d += weight_[u];
      stamp_ += 1;
      for (idx e : var_elems_[v]) {
        for (idx u : elem_vars_[e]) {
          if (u != v && alive_[u] && mark_[u] != stamp_) {
            mark_[u] = stamp_;
            d += weight_[u];
          }
        }
      }
      degree_[v] = static_cast<idx>(std::min<widx>(d, n_ - 1));
      requeue(v, scan_unused);
    }
  }

  void merge_supervariables(const std::vector<idx>& clique) {
    // Group members by a cheap adjacency hash, then confirm exact equality.
    std::vector<std::pair<std::uint64_t, idx>> hashes;
    hashes.reserve(clique.size());
    for (idx v : clique) {
      if (!alive_[v]) continue;
      std::uint64_t h = 1469598103934665603ull;
      auto mix = [&h](std::uint64_t x) {
        h ^= x + 0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
      };
      for (idx u : var_adj_[v])
        if (alive_[u]) mix(static_cast<std::uint64_t>(u) * 2 + 1);
      for (idx e : var_elems_[v])
        if (elem_alive_[e]) mix(static_cast<std::uint64_t>(e) * 2);
      hashes.emplace_back(h, v);
    }
    std::sort(hashes.begin(), hashes.end());
    for (std::size_t i = 0; i + 1 < hashes.size();) {
      std::size_t j = i + 1;
      while (j < hashes.size() && hashes[j].first == hashes[i].first) ++j;
      for (std::size_t a = i; a < j; ++a) {
        const idx va = hashes[a].second;
        if (!alive_[va]) continue;
        for (std::size_t b = a + 1; b < j; ++b) {
          const idx vb = hashes[b].second;
          if (!alive_[vb]) continue;
          if (indistinguishable(va, vb)) {
            // Merge vb into va.
            weight_[va] += weight_[vb];
            alive_[vb] = false;
            merged_into_[vb] = va;
            merged_children_[va].push_back(vb);
          }
        }
      }
      i = j;
    }
  }

  bool indistinguishable(idx a, idx b) {
    auto live_equal = [&](const std::vector<idx>& xs,
                          const std::vector<idx>& ys, auto live,
                          idx skip_a, idx skip_b) {
      std::size_t i = 0, j = 0;
      for (;;) {
        while (i < xs.size() && (!live(xs[i]) || xs[i] == skip_b)) ++i;
        while (j < ys.size() && (!live(ys[j]) || ys[j] == skip_a)) ++j;
        const bool ei = i == xs.size(), ej = j == ys.size();
        if (ei || ej) return ei && ej;
        if (xs[i] != ys[j]) return false;
        ++i;
        ++j;
      }
    };
    // Variable adjacency must match up to each other; element lists must be
    // identical (sorted? they are append-ordered; sort copies).
    auto ea = var_elems_[a];
    auto eb = var_elems_[b];
    std::sort(ea.begin(), ea.end());
    std::sort(eb.begin(), eb.end());
    auto live_elem = [&](idx e) { return static_cast<bool>(elem_alive_[e]); };
    if (!live_equal(ea, eb, live_elem, -1, -1)) return false;
    auto va = var_adj_[a];
    auto vb = var_adj_[b];
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    auto live_var = [&](idx v) { return static_cast<bool>(alive_[v]); };
    return live_equal(va, vb, live_var, a, b);
  }

  void emit(idx p, std::vector<idx>& order) {
    // Emit p and (recursively) everything merged into it.
    std::vector<idx> stack{p};
    while (!stack.empty()) {
      const idx v = stack.back();
      stack.pop_back();
      order.push_back(v);
      auto it = merged_children_.find(v);
      if (it != merged_children_.end())
        for (idx c : it->second) stack.push_back(c);
    }
  }

  idx n_;
  std::vector<std::vector<idx>> var_adj_;
  std::vector<std::vector<idx>> var_elems_;
  std::vector<std::vector<idx>> elem_vars_;
  std::vector<char> elem_alive_;
  std::vector<idx> weight_;
  std::vector<char> alive_;
  std::vector<idx> merged_into_;
  std::map<idx, std::vector<idx>> merged_children_;
  std::vector<idx> degree_;
  std::vector<std::vector<idx>> buckets_;
  std::vector<idx> mark_;
  idx stamp_ = 0;
};

// ---------------------------------------------------------------------------
// Reverse Cuthill-McKee.
// ---------------------------------------------------------------------------

idx pseudo_peripheral(const la::Csr& a, idx start, std::vector<idx>& level) {
  const idx n = a.nrows();
  idx node = start;
  idx depth = -1;
  for (int pass = 0; pass < 4; ++pass) {
    std::fill(level.begin(), level.end(), -1);
    std::deque<idx> q{node};
    level[node] = 0;
    idx last = node, maxlev = 0;
    while (!q.empty()) {
      const idx v = q.front();
      q.pop_front();
      for (idx k = a.row_begin(v); k < a.row_end(v); ++k) {
        const idx u = a.col(k);
        if (u < n && level[u] == -1) {
          level[u] = level[v] + 1;
          maxlev = std::max(maxlev, level[u]);
          last = u;
          q.push_back(u);
        }
      }
    }
    if (maxlev <= depth) break;
    depth = maxlev;
    node = last;
  }
  return node;
}

std::vector<idx> rcm_ordering(const la::Csr& a) {
  const idx n = a.nrows();
  std::vector<idx> perm;
  perm.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<idx> level(n, -1);
  std::vector<idx> degree(n);
  for (idx i = 0; i < n; ++i)
    degree[i] = a.row_end(i) - a.row_begin(i);

  for (idx seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    const idx start = pseudo_peripheral(a, seed, level);
    std::deque<idx> q{start};
    visited[start] = 1;
    while (!q.empty()) {
      const idx v = q.front();
      q.pop_front();
      perm.push_back(v);
      std::vector<idx> nbrs;
      for (idx k = a.row_begin(v); k < a.row_end(v); ++k) {
        const idx u = a.col(k);
        if (u != v && !visited[u]) {
          visited[u] = 1;
          nbrs.push_back(u);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(),
                [&](idx x, idx y) { return degree[x] < degree[y]; });
      for (idx u : nbrs) q.push_back(u);
    }
  }
  std::reverse(perm.begin(), perm.end());
  return perm;
}

}  // namespace

std::vector<idx> compute_ordering(const la::Csr& pattern, OrderingKind kind) {
  check(pattern.nrows() == pattern.ncols(),
        "compute_ordering: matrix must be square");
  const idx n = pattern.nrows();
  switch (kind) {
    case OrderingKind::Natural: {
      std::vector<idx> perm(static_cast<std::size_t>(n));
      std::iota(perm.begin(), perm.end(), 0);
      return perm;
    }
    case OrderingKind::RCM:
      return rcm_ordering(pattern);
    case OrderingKind::MinimumDegree:
      return MinimumDegree(pattern).run();
  }
  throw std::invalid_argument("compute_ordering: unknown kind");
}

widx cholesky_fill(const la::Csr& pattern, const std::vector<idx>& perm) {
  const la::Csr p = pattern.permuted_symmetric(perm);
  const SymbolicFactor sym = symbolic_cholesky(p);
  return sym.nnz;
}

}  // namespace feti::sparse
