#pragma once

// The FETI dual operator F = B K^+ B^T and its implementations (Table
// III), constructed through the string-keyed DualOperatorRegistry.
//
// Staged lifecycle (Algorithm 2 of the paper, refined for multi-step,
// multi-RHS, and time-step-cached workloads). The full contract — including
// the dirty-tracking rules summarized below — is documented in
// docs/ARCHITECTURE.md.
//
//   prepare()        — once per problem *pattern*: symbolic factorization,
//                      persistent GPU allocations, kernel analysis
//                      ("preparation"). Must be called first.
//   update_values()  — once per time step. Consults the problem's
//                      per-subdomain values versions (and, under
//                      ValueTracking::Hashed, K_reg content hashes) and
//                      refreshes only the dirty subdomains: numeric
//                      refactorization and, for explicit approaches,
//                      (re)assembly of the local dual operators F̃ᵢ ("FETI
//                      preprocessing"). A step where nothing changed is a
//                      near-free no-op; cache_stats() counts both outcomes.
//   apply(x, y)      — per PCPG iteration: y = F x on cluster-wide dual
//                      vectors (scatter → local apply → gather).
//   apply(X, Y, nrhs)— batched application to nrhs dual vectors stored as
//                      contiguous columns (column j starts at offset
//                      j * num_lambdas). The base class falls back to a
//                      loop of single applies (counted — see
//                      loop_fallback_count()); every built-in operator
//                      overrides the batch hook. CPU explicit: one SYMM per
//                      subdomain; CPU implicit: SpMM + multi-RHS solves;
//                      GPU operators: device-side batching — one
//                      multi-RHS scatter kernel, one SYMM/GEMM (explicit)
//                      or SpMM + block triangular solves (implicit) per
//                      subdomain, one multi-RHS gather kernel, so a block
//                      of RHS costs one submission sweep instead of nrhs
//                      full round trips.
//
// Both apply entry points are non-virtual wrappers (timed under "apply" in
// timings()); implementations override the protected apply_one/apply_many
// hooks. preprocess() survives as a deprecated alias of update_values().

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/lifecycle.hpp"
#include "decomp/feti_problem.hpp"
#include "gpu/context.hpp"
#include "util/timer.hpp"

namespace feti::core {

// CacheStats / AtomicCacheStats / UpdatePlan / ValueTracker live in
// core/lifecycle.hpp — the dirty-tracking machinery is shared with the
// preconditioner subsystem (src/precond/), which follows the same
// prepare()/update_values() contract.

class DualOperator {
 public:
  explicit DualOperator(const decomp::FetiProblem& p) : p_(p) {}
  virtual ~DualOperator() = default;

  DualOperator(const DualOperator&) = delete;
  DualOperator& operator=(const DualOperator&) = delete;

  /// Once per pattern: symbolic factorization + persistent allocations.
  /// Precondition: the problem outlives the operator and its pattern (Csr
  /// structures, subdomain count, lambda maps) never changes afterwards.
  /// Postcondition: update_values() may be called; apply()/kplus_solve()
  /// may NOT be called yet (no numeric factor exists).
  virtual void prepare() = 0;

  /// Per time step: numeric refactorization (+ explicit assembly) of the
  /// subdomains whose K values changed since this operator last saw them.
  /// Precondition: prepare() has run; value changes were announced via
  /// FetiProblem::mark_values_changed (or the problem uses
  /// ValueTracking::Hashed, in which case in-place mutation is detected by
  /// content hash). Postcondition: apply()/kplus_solve()/compute_d()
  /// reflect the current K values; cache_stats() has counted the step. On
  /// exception, no version is committed — the next call retries the same
  /// dirty set.
  virtual void update_values() = 0;

  /// Deprecated alias of update_values(), kept for pre-registry callers.
  [[deprecated("use update_values()")]] void preprocess() { update_values(); }

  /// y = F x; x and y are cluster-wide dual vectors (host memory).
  /// Valid only after update_values().
  void apply(const double* x, double* y);
  /// Y(:,j) = F X(:,j) for j in [0, nrhs); columns are contiguous
  /// cluster-wide dual vectors (leading dimension num_lambdas).
  void apply(const double* x, double* y, idx nrhs);

  /// The execution context whose device holds this operator's state, or
  /// null for operators without a device-resident application path. Non-null
  /// enables apply_device() and the device-state PCPG mode (core/pcpg.cpp):
  /// the solver loop keeps its vectors on this context's device and the
  /// per-iteration operator application scatters/gathers device-to-device,
  /// skipping the H2D/D2H staging of the host-pointer apply().
  [[nodiscard]] virtual gpu::ExecutionContext* device_context() {
    return nullptr;
  }

  /// Device-resident application: d_x / d_y are *device* allocations of
  /// device_context()'s device holding nrhs contiguous cluster-wide columns
  /// (leading dimension num_lambdas). Synchronous like apply(): the result
  /// is complete on return. Bit-identical to the host-pointer apply() of
  /// the same nrhs (the implementations submit the same kernels in the same
  /// order; only the boundary staging copies disappear). Valid only when
  /// device_context() != nullptr.
  void apply_device(const double* d_x, double* d_y, idx nrhs = 1);

  [[nodiscard]] virtual const char* name() const = 0;

  /// x = K^+ b for one subdomain (valid after update_values()).
  virtual void kplus_solve(idx sub, const double* b, double* x) const = 0;

  // -- shared derived operations --

  /// d = sum_i B̃ᵢ K⁺ᵢ fᵢ − c (right-hand side of the dual system, eq. (7)).
  void compute_d(double* d) const;

  /// Subdomain solutions uᵢ = K⁺ᵢ(fᵢ − B̃ᵢᵀ λᵢ) + Rᵢ αᵢ (eq. (5)); `alpha`
  /// holds the concatenated per-subdomain kernel coefficients.
  void primal_solution(const double* lambda, const std::vector<double>& alpha,
                       std::vector<std::vector<double>>& u) const;

  [[nodiscard]] const decomp::FetiProblem& problem() const { return p_; }
  [[nodiscard]] TimingRegistry& timings() { return timings_; }

  /// Number of batched applies served by the base-class loop over
  /// apply_one instead of a real block implementation. Every built-in
  /// operator overrides apply_many (the GPU families device-side), so this
  /// stays 0 for them — asserted by the batched-consistency test matrix;
  /// out-of-tree operators that inherit the loop count here. Wrappers
  /// (e.g. the sharded multi-device operator) aggregate their inner
  /// operators' counts. Accumulates from construction; never resets.
  /// Safe to read from any thread while another thread is applying.
  [[nodiscard]] virtual long loop_fallback_count() const {
    return loop_fallbacks_.load(std::memory_order_relaxed);
  }

  /// Time-step cache counters: how many update_values() steps and
  /// per-subdomain refreshes were served from cache vs recomputed.
  /// Accumulates from construction; never resets. The sharded wrapper
  /// aggregates over its shards (steps/skipped_steps are wrapper-level,
  /// subdomain counts are summed over the disjoint shard subsets).
  /// Safe to read from any thread while the lifecycle thread is inside
  /// update_values() (see AtomicCacheStats for the snapshot semantics).
  [[nodiscard]] virtual CacheStats cache_stats() const {
    return cache_stats_.snapshot();
  }

  /// Bytes of persistent operator state streamed by one apply(x, y) — the
  /// assembled F̃ᵢ blocks for the explicit families (fp32 storage halves
  /// this), 0 when unknown (implicit families, out-of-tree operators).
  /// Valid after prepare(); benches divide by the measured apply time for
  /// achieved GB/s. The sharded wrapper sums over its shards.
  [[nodiscard]] virtual std::size_t apply_bytes() const { return 0; }

  /// Total K⁻¹ solve columns performed by the explicit assembly across all
  /// update_values() calls so far: a dense-RHS refresh of one subdomain
  /// counts its full dual width m, a sparsity-aware ("sp") refresh counts
  /// only the boundary width nb. Deterministic (counted, not timed), so
  /// benches can gate the boundary-fraction reduction of the sp variants.
  /// Implicit families perform no assembly solves and stay 0. The sharded
  /// wrapper sums over its shards. Accumulates from construction; never
  /// resets. Safe to read concurrently with update_values().
  [[nodiscard]] virtual long solve_columns() const {
    return solve_columns_.load(std::memory_order_relaxed);
  }

 protected:
  /// Single-vector application hook: y = F x.
  virtual void apply_one(const double* x, double* y) = 0;
  /// Batched application hook; the default loops over apply_one.
  /// Overriders may assume nrhs >= 1 and distinct, non-overlapping x/y.
  virtual void apply_many(const double* x, double* y, idx nrhs);
  /// Device-pointer application hook behind apply_device(). Overriders may
  /// assume nrhs >= 1 and must dispatch nrhs == 1 through the same local
  /// kernels as apply_one (SYMV vs SYMM differ bitwise). The default
  /// rejects — only operators with device_context() != nullptr implement
  /// it, and callers gate on that.
  virtual void apply_many_device(const double* d_x, double* d_y, idx nrhs);

  /// The dirty-set decision of one update_values() call (see
  /// core/lifecycle.hpp); kept as a nested alias so implementations spell
  /// it DualOperator::UpdatePlan.
  using UpdatePlan = core::UpdatePlan;

  /// Computes the dirty subset at the top of an update_values()
  /// implementation and counts the step in cache_stats() (a step with an
  /// empty dirty set counts as skipped). The owned-subset overload serves
  /// partial operators (sharding); the plain one tracks all subdomains.
  UpdatePlan begin_update();
  UpdatePlan begin_update(const std::vector<idx>& owned);
  /// Commits the refreshed versions/hashes at the bottom of a successful
  /// update_values(); not reached on exception, so a failed refresh is
  /// retried in full on the next step.
  void end_update(const UpdatePlan& plan);

  /// local[i] = cluster[map_i[i]] for subdomain `sub`.
  void scatter_cpu(const double* cluster, idx sub, double* local) const;
  /// cluster[map_i[i]] += local[i]; caller serializes across subdomains.
  void gather_add_cpu(const double* local, idx sub, double* cluster) const;

  const decomp::FetiProblem& p_;
  mutable TimingRegistry timings_;
  /// Incremented by the base apply_many; atomic so diagnostic readers on
  /// other threads (the service layer) never race the applying thread.
  std::atomic<long> loop_fallbacks_{0};
  /// Incremented by the explicit implementations per refreshed subdomain
  /// (m dense / nb sp); atomic for the same concurrent-reader contract.
  std::atomic<long> solve_columns_{0};
  /// Maintained by begin_update/end_update; atomic per counter for the
  /// same concurrent-reader contract.
  AtomicCacheStats cache_stats_;

 private:
  /// Per-operator change-detection state behind begin_update/end_update.
  ValueTracker tracker_;
};

/// Creates the dual operator for the configured approach by resolving
/// config.resolved_key() in the DualOperatorRegistry. `context` carries
/// the execution resources (device, stream pool, workspace policy); it is
/// required for the GPU-backed approaches and ignored otherwise.
std::unique_ptr<DualOperator> make_dual_operator(
    const decomp::FetiProblem& problem, const DualOpConfig& config,
    gpu::ExecutionContext* context = nullptr);

}  // namespace feti::core
