#include "core/lifecycle.hpp"

#include <omp.h>

#include <numeric>

namespace feti::core {

UpdatePlan ValueTracker::begin(const decomp::FetiProblem& p,
                               AtomicCacheStats& stats) {
  std::vector<idx> all(p.sub.size());
  std::iota(all.begin(), all.end(), 0);
  return begin(p, all, stats);
}

UpdatePlan ValueTracker::begin(const decomp::FetiProblem& p,
                               const std::vector<idx>& owned,
                               AtomicCacheStats& stats) {
  const std::size_t nsub = p.sub.size();
  if (seen_version_.size() != nsub) seen_version_.assign(nsub, 0);
  const bool hashed = p.tracking == decomp::ValueTracking::Hashed;
  if (hashed && seen_hash_.size() != nsub) seen_hash_.assign(nsub, 0);

  // Hashing is the only per-step cost a fully cached step pays under
  // Hashed tracking, so it runs parallel across the owned subdomains (the
  // same shape as the refresh loops it guards).
  std::vector<std::uint64_t> hashes;
  if (hashed) {
    hashes.resize(owned.size());
    const idx nown = static_cast<idx>(owned.size());
#pragma omp parallel for schedule(dynamic)
    for (idx k = 0; k < nown; ++k)
      hashes[static_cast<std::size_t>(k)] = decomp::k_values_hash(
          p.sub[static_cast<std::size_t>(owned[static_cast<std::size_t>(k)])]);
  }

  UpdatePlan plan;
  for (std::size_t k = 0; k < owned.size(); ++k) {
    const idx s = owned[k];
    const auto& fs = p.sub[static_cast<std::size_t>(s)];
    bool dirty = seen_version_[static_cast<std::size_t>(s)] !=
                 fs.values_version;
    std::uint64_t h = 0;
    if (hashed) {
      h = hashes[k];
      dirty = dirty || h != seen_hash_[static_cast<std::size_t>(s)];
    }
    if (dirty) {
      plan.dirty.push_back(s);
      plan.hash.push_back(h);
    }
  }
  ++stats.steps;
  stats.skipped_subdomains +=
      static_cast<long>(owned.size() - plan.dirty.size());
  if (plan.dirty.empty()) ++stats.skipped_steps;
  return plan;
}

void ValueTracker::end(const decomp::FetiProblem& p, const UpdatePlan& plan,
                       AtomicCacheStats& stats) {
  const bool hashed = p.tracking == decomp::ValueTracking::Hashed;
  for (std::size_t i = 0; i < plan.dirty.size(); ++i) {
    const std::size_t s = static_cast<std::size_t>(plan.dirty[i]);
    seen_version_[s] = p.sub[s].values_version;
    if (hashed) seen_hash_[s] = plan.hash[i];
  }
  stats.refreshed_subdomains += static_cast<long>(plan.dirty.size());
}

}  // namespace feti::core
