// Tests for the Total FETI structure: gluing matrix B, kernels R,
// fixing-nodes regularization (exact generalized-inverse property), and the
// assembled FETI problem.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "decomp/feti_problem.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"
#include "sparse/solver.hpp"
#include "test_helpers.hpp"

namespace feti::decomp {
namespace {

using fem::Physics;
using mesh::ElementOrder;

mesh::Decomposition grid_decomposition(int dim, ElementOrder order, idx cells,
                                       idx splits) {
  if (dim == 2) {
    mesh::Mesh m = mesh::make_grid_2d(cells, cells, order);
    return mesh::decompose_2d(m, cells, cells, splits, splits);
  }
  mesh::Mesh m = mesh::make_grid_3d(cells, cells, cells, order);
  return mesh::decompose_3d(m, cells, cells, cells, splits, splits, splits);
}

TEST(Gluing, InterfaceRowsHaveMatchedPairs) {
  auto dec = grid_decomposition(2, ElementOrder::Linear, 4, 2);
  Gluing g = build_gluing(dec, 1, Redundancy::Full);
  ASSERT_GT(g.num_lambdas, 0);
  // Collect per-cluster-row entries across subdomains.
  std::map<idx, std::vector<double>> row_entries;
  for (std::size_t s = 0; s < g.b.size(); ++s) {
    const la::Csr& b = g.b[s];
    for (idx r = 0; r < b.nrows(); ++r)
      for (idx k = b.row_begin(r); k < b.row_end(r); ++k)
        row_entries[g.lm_l2c[s][r]].push_back(b.val(k));
  }
  const idx ninterface = g.num_lambdas - g.num_dirichlet_rows;
  for (const auto& [row, entries] : row_entries) {
    if (row < ninterface) {
      ASSERT_EQ(entries.size(), 2u) << "interface row " << row;
      EXPECT_DOUBLE_EQ(entries[0] + entries[1], 0.0);
      EXPECT_DOUBLE_EQ(std::fabs(entries[0]), 1.0);
    } else {
      ASSERT_EQ(entries.size(), 1u) << "dirichlet row " << row;
      EXPECT_DOUBLE_EQ(entries[0], 1.0);
    }
  }
  EXPECT_EQ(static_cast<idx>(row_entries.size()), g.num_lambdas);
}

TEST(Gluing, RedundancyChangesConstraintCount) {
  // A 2x2 subdomain split has one corner node shared by 4 subdomains:
  // full gluing emits C(4,2)=6 rows there, non-redundant 3.
  auto dec = grid_decomposition(2, ElementOrder::Linear, 4, 2);
  Gluing full = build_gluing(dec, 1, Redundancy::Full);
  Gluing chain = build_gluing(dec, 1, Redundancy::NonRedundant);
  EXPECT_GT(full.num_lambdas, chain.num_lambdas);
  EXPECT_EQ(full.num_dirichlet_rows, chain.num_dirichlet_rows);
  EXPECT_EQ(full.num_lambdas - chain.num_lambdas, 3);
}

TEST(Gluing, ContinuousFieldSatisfiesInterfaceConstraints) {
  auto dec = grid_decomposition(2, ElementOrder::Quadratic, 4, 2);
  Gluing g = build_gluing(dec, 1, Redundancy::Full);
  // Sample a smooth global field into local vectors; B u must vanish on
  // interface rows (and equal the field value on Dirichlet rows).
  std::vector<double> bu(static_cast<std::size_t>(g.num_lambdas), 0.0);
  for (std::size_t s = 0; s < g.b.size(); ++s) {
    const auto& sd = dec.subdomains[s];
    std::vector<double> ul(static_cast<std::size_t>(sd.local.num_nodes));
    for (idx l = 0; l < sd.local.num_nodes; ++l)
      ul[l] = std::sin(3.0 * sd.local.coord(l, 0)) +
              2.0 * sd.local.coord(l, 1);
    std::vector<double> local(static_cast<std::size_t>(g.b[s].nrows()), 0.0);
    la::spmv(1.0, g.b[s], ul.data(), 0.0, local.data());
    for (idx r = 0; r < g.b[s].nrows(); ++r) bu[g.lm_l2c[s][r]] += local[r];
  }
  const idx ninterface = g.num_lambdas - g.num_dirichlet_rows;
  for (idx r = 0; r < ninterface; ++r) EXPECT_NEAR(bu[r], 0.0, 1e-12);
}

TEST(Gluing, LocalToClusterMapsAreSortedUnique) {
  auto dec = grid_decomposition(3, ElementOrder::Linear, 3, 2);
  Gluing g = build_gluing(dec, 3, Redundancy::Full);
  for (const auto& map : g.lm_l2c)
    for (std::size_t i = 1; i < map.size(); ++i)
      EXPECT_LT(map[i - 1], map[i]);
}

class KernelParam
    : public ::testing::TestWithParam<std::tuple<Physics, int, ElementOrder>> {
};

TEST_P(KernelParam, KernelAnnihilatesStiffness) {
  const auto [phys, dim, order] = GetParam();
  mesh::Mesh m = dim == 2 ? mesh::make_grid_2d(3, 3, order)
                          : mesh::make_grid_3d(2, 2, 2, order);
  fem::SubdomainSystem sys = fem::assemble(m, phys);
  la::DenseMatrix r = build_kernel(m, phys);
  EXPECT_EQ(r.cols(), kernel_dim(phys, dim));
  // K * R ≈ 0 column by column.
  std::vector<double> y(static_cast<std::size_t>(sys.ndof));
  for (idx j = 0; j < r.cols(); ++j) {
    la::spmv(1.0, sys.k, r.data() + static_cast<widx>(j) * sys.ndof, 0.0,
             y.data());
    for (idx i = 0; i < sys.ndof; ++i) EXPECT_NEAR(y[i], 0.0, 1e-10);
  }
}

TEST_P(KernelParam, KernelIsOrthonormal) {
  const auto [phys, dim, order] = GetParam();
  mesh::Mesh m = dim == 2 ? mesh::make_grid_2d(3, 2, order)
                          : mesh::make_grid_3d(2, 2, 2, order);
  la::DenseMatrix r = build_kernel(m, phys);
  for (idx i = 0; i < r.cols(); ++i)
    for (idx j = 0; j < r.cols(); ++j) {
      const double d = la::dot(r.rows(), r.data() + static_cast<widx>(i) * r.rows(),
                               r.data() + static_cast<widx>(j) * r.rows());
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, KernelParam,
    ::testing::Combine(::testing::Values(Physics::HeatTransfer,
                                         Physics::LinearElasticity),
                       ::testing::Values(2, 3),
                       ::testing::Values(ElementOrder::Linear,
                                         ElementOrder::Quadratic)));

class RegularizationParam
    : public ::testing::TestWithParam<std::tuple<Physics, int>> {};

TEST_P(RegularizationParam, RegularizedMatrixIsSpd) {
  const auto [phys, dim] = GetParam();
  mesh::Mesh m = dim == 2 ? mesh::make_grid_2d(3, 3, ElementOrder::Linear)
                          : mesh::make_grid_3d(2, 2, 2, ElementOrder::Linear);
  fem::SubdomainSystem sys = fem::assemble(m, phys);
  la::DenseMatrix r = build_kernel(m, phys);
  Regularization reg = regularize(sys.k, r.cview(), m, phys);
  auto solver = sparse::make_solver(sparse::Backend::Supernodal);
  solver->analyze(reg.k_reg, sparse::OrderingKind::MinimumDegree);
  EXPECT_NO_THROW(solver->factorize(reg.k_reg));
}

TEST_P(RegularizationParam, InverseIsExactGeneralizedInverse) {
  // The core correctness property: K * K_reg^{-1} * K == K.
  const auto [phys, dim] = GetParam();
  mesh::Mesh m = dim == 2 ? mesh::make_grid_2d(3, 3, ElementOrder::Quadratic)
                          : mesh::make_grid_3d(2, 2, 2, ElementOrder::Linear);
  fem::SubdomainSystem sys = fem::assemble(m, phys);
  la::DenseMatrix r = build_kernel(m, phys);
  Regularization reg = regularize(sys.k, r.cview(), m, phys);
  auto solver = sparse::make_solver(sparse::Backend::Simplicial);
  solver->analyze(reg.k_reg, sparse::OrderingKind::MinimumDegree);
  solver->factorize(reg.k_reg);
  const idx n = sys.ndof;
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> y(static_cast<std::size_t>(n));
    for (auto& v : y) v = rng.uniform(-1.0, 1.0);
    std::vector<double> z(static_cast<std::size_t>(n), 0.0);
    la::spmv(1.0, sys.k, y.data(), 0.0, z.data());  // z = K y (in range K)
    std::vector<double> w(static_cast<std::size_t>(n), 0.0);
    solver->solve(z.data(), w.data());              // w = K_reg^{-1} z
    std::vector<double> kw(static_cast<std::size_t>(n), 0.0);
    la::spmv(1.0, sys.k, w.data(), 0.0, kw.data()); // K w must equal z
    double scale = 0.0;
    for (idx i = 0; i < n; ++i) scale = std::max(scale, std::fabs(z[i]));
    for (idx i = 0; i < n; ++i)
      EXPECT_NEAR(kw[i], z[i], 1e-8 * std::max(1.0, scale));
  }
}

TEST_P(RegularizationParam, FixingDofsCoverKernel) {
  const auto [phys, dim] = GetParam();
  mesh::Mesh m = dim == 2 ? mesh::make_grid_2d(4, 4, ElementOrder::Linear)
                          : mesh::make_grid_3d(3, 3, 3, ElementOrder::Linear);
  la::DenseMatrix r = build_kernel(m, phys);
  auto dofs = select_fixing_dofs(m, phys);
  ASSERT_GE(static_cast<idx>(dofs.size()), r.cols());
  // E^T R must have full column rank: Gram matrix invertible.
  const idx nf = static_cast<idx>(dofs.size()), rc = r.cols();
  la::DenseMatrix gram(rc, rc);
  for (idx i = 0; i < rc; ++i)
    for (idx j = 0; j < rc; ++j) {
      double v = 0.0;
      for (idx k = 0; k < nf; ++k)
        v += r.at(dofs[k], i) * r.at(dofs[k], j);
      gram.at(i, j) = v;
    }
  EXPECT_TRUE(feti::testing::dense_cholesky_lower(gram));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, RegularizationParam,
    ::testing::Combine(::testing::Values(Physics::HeatTransfer,
                                         Physics::LinearElasticity),
                       ::testing::Values(2, 3)));

class ProblemParam
    : public ::testing::TestWithParam<std::tuple<Physics, int, ElementOrder>> {
};

TEST_P(ProblemParam, BuildsConsistentProblem) {
  const auto [phys, dim, order] = GetParam();
  auto dec = grid_decomposition(dim, order, 4, 2);
  FetiProblem p = build_feti_problem(dec, phys);
  EXPECT_EQ(p.dim, dim);
  EXPECT_GT(p.num_lambdas, 0);
  EXPECT_EQ(p.c.size(), static_cast<std::size_t>(p.num_lambdas));
  EXPECT_EQ(p.num_subdomains(), dim == 2 ? 4 : 8);
  for (const auto& s : p.sub) {
    EXPECT_EQ(s.b.ncols(), s.ndof());
    EXPECT_EQ(s.lm_l2c.size(), static_cast<std::size_t>(s.b.nrows()));
    EXPECT_EQ(s.r.rows(), s.ndof());
    EXPECT_EQ(s.dof_l2g.size(), static_cast<std::size_t>(s.ndof()));
    for (idx g : s.dof_l2g) {
      EXPECT_GE(g, 0);
      EXPECT_LT(g, p.global_dofs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ProblemParam,
    ::testing::Combine(::testing::Values(Physics::HeatTransfer,
                                         Physics::LinearElasticity),
                       ::testing::Values(2, 3),
                       ::testing::Values(ElementOrder::Linear,
                                         ElementOrder::Quadratic)));

TEST(Problem, ScaleStepScalesConsistently) {
  auto dec = grid_decomposition(2, ElementOrder::Linear, 4, 2);
  FetiProblem p = build_feti_problem(dec, Physics::HeatTransfer);
  const double k0 = p.sub[0].sys.k.vals()[0];
  const double kr0 = p.sub[0].k_reg.vals()[0];
  const double f0 = p.sub[0].sys.f[5];
  scale_step(p, 2.5);
  EXPECT_DOUBLE_EQ(p.sub[0].sys.k.vals()[0], 2.5 * k0);
  EXPECT_DOUBLE_EQ(p.sub[0].k_reg.vals()[0], 2.5 * kr0);
  EXPECT_DOUBLE_EQ(p.sub[0].sys.f[5], 2.5 * f0);
  EXPECT_THROW(scale_step(p, -1.0), std::invalid_argument);
}

TEST(Problem, GatherSolutionAveragesInterface) {
  auto dec = grid_decomposition(2, ElementOrder::Linear, 2, 2);
  FetiProblem p = build_feti_problem(dec, Physics::HeatTransfer);
  // Fill each subdomain with its global x coordinate; gather must return it.
  std::vector<std::vector<double>> ul(p.sub.size());
  for (std::size_t s = 0; s < p.sub.size(); ++s) {
    const auto& local = dec.subdomains[s].local;
    ul[s].resize(static_cast<std::size_t>(p.sub[s].ndof()));
    for (idx l = 0; l < local.num_nodes; ++l) ul[s][l] = local.coord(l, 0);
  }
  auto u = gather_solution(p, ul);
  mesh::Mesh m = mesh::make_grid_2d(2, 2, ElementOrder::Linear);
  for (idx n = 0; n < m.num_nodes; ++n)
    EXPECT_NEAR(u[n], m.coord(n, 0), 1e-14);
}

}  // namespace
}  // namespace feti::decomp
