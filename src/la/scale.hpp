#pragma once

// Shared beta-scaling helpers for the BLAS-like kernels.
//
// BLAS beta semantics: beta == 0 must OVERWRITE the destination without
// reading it — the output may be uninitialized memory (e.g. freshly
// allocated device buffers), and 0 * NaN would otherwise poison the result
// permanently.

#include "la/dense.hpp"

namespace feti::la::detail {

/// y = beta * y, without reading y when beta == 0.
template <typename T>
inline void store_scaled(T beta, T& y) {
  if (beta == T(0))
    y = T(0);
  else if (beta != T(1))
    y *= beta;
}

template <typename T>
inline void scale_vec(idx n, T beta, T* y) {
  if (beta == T(0)) {
    for (idx i = 0; i < n; ++i) y[i] = T(0);
  } else if (beta != T(1)) {
    for (idx i = 0; i < n; ++i) y[i] *= beta;
  }
}

}  // namespace feti::la::detail
