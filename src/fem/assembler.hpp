#pragma once

// Assembly of subdomain and global FEM systems.
//
// In Total FETI (the variant the paper uses) the Dirichlet conditions are
// NOT eliminated from the subdomain matrices — they are enforced through
// extra rows of the gluing matrix B, which keeps every subdomain stiffness
// matrix singular. The assembler therefore returns the raw singular K plus
// the list of constrained DOFs; src/decomp turns those into B rows.

#include <vector>

#include "fem/physics.hpp"
#include "la/csr.hpp"
#include "mesh/grid.hpp"

namespace feti::fem {

/// One subdomain's FEM system.
struct SubdomainSystem {
  la::Csr k;                        ///< stiffness (full symmetric, singular)
  std::vector<double> f;            ///< load vector
  idx ndof = 0;
  int dofs_per_node = 1;
  std::vector<idx> dirichlet_dofs;  ///< local DOFs on the Dirichlet boundary
};

/// Assembles the subdomain system for `m` (typically a Subdomain::local
/// mesh). DOF numbering: node * dofs_per_node + component.
SubdomainSystem assemble(const mesh::Mesh& m, Physics phys,
                         const Material& mat = {});

/// Global (undecomposed) system used as the reference in tests/examples.
struct GlobalSystem {
  la::Csr k;
  std::vector<double> f;
  idx ndof = 0;
  int dofs_per_node = 1;
  std::vector<idx> dirichlet_dofs;
};

GlobalSystem assemble_global(const mesh::Mesh& m, Physics phys,
                             const Material& mat = {});

/// Reference solution: eliminates the (homogeneous) Dirichlet DOFs, solves
/// the reduced SPD system with a direct solver, returns the full-length
/// solution vector with zeros on the boundary.
std::vector<double> reference_solve(const GlobalSystem& sys);

}  // namespace feti::fem
