#pragma once

// Configuration of the dual-operator approaches (Table III) and of the
// explicit GPU assembly parameter space (Table I).

#include <string>
#include <vector>

#include "gpu/sparse.hpp"
#include "la/dense.hpp"
#include "sparse/ordering.hpp"

namespace feti::core {

/// The nine dual-operator approaches of Table III. The "mkl" and "cholmod"
/// names refer to the stand-in backends: supernodal (Schur-capable, no
/// factor export — like MKL PARDISO) and simplicial (factor export — like
/// CHOLMOD).
enum class Approach {
  ImplMkl,      ///< implicit, supernodal solver on CPU
  ImplCholmod,  ///< implicit, simplicial solver on CPU
  ImplLegacy,   ///< implicit on GPU, legacy sparse API, simplicial factors
  ImplModern,   ///< implicit on GPU, modern sparse API, simplicial factors
  ExplMkl,      ///< explicit via augmented Schur complement on CPU
  ExplCholmod,  ///< explicit via factor extraction + TRSM on CPU
  ExplLegacy,   ///< explicit assembly on GPU, legacy sparse API
  ExplModern,   ///< explicit assembly on GPU, modern sparse API
  ExplHybrid,   ///< assembly like ExplMkl on CPU, application on GPU
};

const char* to_string(Approach a);
std::vector<Approach> all_approaches();
[[nodiscard]] bool uses_gpu(Approach a);
[[nodiscard]] bool is_explicit(Approach a);

/// Assembly path for the explicit GPU operator (Table I / Section IV-C).
enum class Path : std::uint8_t {
  Trsm,  ///< F = B (U^{-1} (U^{-T} B^T)): two TRSMs + SpMM
  Syrk,  ///< F = (U^{-T} B^T)^T (U^{-T} B^T): one TRSM + SYRK
};

/// Sparse vs dense triangular solve (cuSPARSE vs cuBLAS kernels).
enum class FactorStorage : std::uint8_t { Sparse, Dense };

/// Where the dual-vector scatter/gather runs (Section IV-C).
enum class SgLocation : std::uint8_t { Cpu, Gpu };

const char* to_string(Path p);
const char* to_string(FactorStorage s);
const char* to_string(SgLocation s);

/// The full Table-I parameter set for the explicit GPU assembly.
struct ExplicitGpuOptions {
  Path path = Path::Syrk;
  FactorStorage fwd_storage = FactorStorage::Dense;
  FactorStorage bwd_storage = FactorStorage::Dense;  ///< TRSM path only
  la::Layout fwd_order = la::Layout::ColMajor;
  la::Layout bwd_order = la::Layout::ColMajor;
  la::Layout rhs_order = la::Layout::RowMajor;
  SgLocation scatter_gather = SgLocation::Gpu;
  /// Number of CUDA streams (the paper uses one per OpenMP thread).
  int streams = 4;
  /// Footnote 1 of the paper: when F̃ᵢ is symmetric (SYRK path), store only
  /// one triangle and pack two opposite triangles of equally sized
  /// subdomains into a single allocation.
  bool symmetric_pack = false;

  [[nodiscard]] std::string describe() const;
};

struct DualOpConfig {
  Approach approach = Approach::ImplMkl;
  ExplicitGpuOptions gpu;  ///< consumed by the Expl{Legacy,Modern} operators
  sparse::OrderingKind ordering = sparse::OrderingKind::MinimumDegree;
};

}  // namespace feti::core
