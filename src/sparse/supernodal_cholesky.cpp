#include "sparse/supernodal_cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas_dense.hpp"

namespace feti::sparse {

namespace {

/// Value-routing codes: an ap_ entry either reads A (code = k), reads B
/// (code = a_nnz + k, used for both B and B^T mirror entries), or is a
/// structural zero of the trailing block (code = -1).
constexpr idx kZeroCode = -1;

}  // namespace

void SupernodalCholesky::analyze(const la::Csr& a, OrderingKind ordering) {
  check(a.nrows() == a.ncols(), "analyze: matrix must be square");
  schur_mode_ = false;
  n_aug_ = a.nrows();
  nelim_ = a.nrows();
  a_nnz_ = a.nnz();

  // Ordering on A, refined by postorder inside analyze_internal.
  std::vector<idx> perm1 = compute_ordering(a, ordering);
  std::vector<la::Triplet> t;
  t.reserve(static_cast<std::size_t>(a.nnz()));
  const std::vector<idx> iperm1 = la::invert_permutation(perm1);
  for (idx r = 0; r < a.nrows(); ++r)
    for (idx k = a.row_begin(r); k < a.row_end(r); ++k)
      t.push_back({iperm1[r], iperm1[a.col(k)], static_cast<double>(k)});
  ap_ = la::Csr::from_triplets(n_aug_, n_aug_, std::move(t));
  perm_ = std::move(perm1);
  analyze_internal(nelim_, ordering);
}

void SupernodalCholesky::analyze_schur(const la::Csr& a, const la::Csr& b,
                                       OrderingKind ordering) {
  check(a.nrows() == a.ncols(), "analyze_schur: A must be square");
  check(b.ncols() == a.nrows(), "analyze_schur: B column count must match A");
  schur_mode_ = true;
  const idx n = a.nrows(), m = b.nrows();
  n_aug_ = n + m;
  nelim_ = n;
  a_nnz_ = a.nnz();

  // Fill-reducing ordering is computed on A only; the m B-rows are pinned to
  // the end so that the partial factorization eliminates exactly A.
  std::vector<idx> perm1 = compute_ordering(a, ordering);
  const std::vector<idx> iperm1 = la::invert_permutation(perm1);

  std::vector<la::Triplet> t;
  t.reserve(static_cast<std::size_t>(a.nnz() + 2 * b.nnz() + m));
  for (idx r = 0; r < n; ++r)
    for (idx k = a.row_begin(r); k < a.row_end(r); ++k)
      t.push_back({iperm1[r], iperm1[a.col(k)], static_cast<double>(k)});
  for (idx r = 0; r < m; ++r) {
    for (idx k = b.row_begin(r); k < b.row_end(r); ++k) {
      const double code = static_cast<double>(a_nnz_ + k);
      t.push_back({n + r, iperm1[b.col(k)], code});
      t.push_back({iperm1[b.col(k)], n + r, code});
    }
    t.push_back({n + r, n + r, static_cast<double>(kZeroCode)});
  }
  ap_ = la::Csr::from_triplets(n_aug_, n_aug_, std::move(t));
  perm_.resize(static_cast<std::size_t>(n_aug_));
  for (idx i = 0; i < n; ++i) perm_[i] = perm1[i];
  for (idx i = 0; i < m; ++i) perm_[n + i] = n + i;
  analyze_internal(nelim_, ordering);
}

void SupernodalCholesky::analyze_internal(idx nelim, OrderingKind) {
  factorized_ = false;
  // Postorder the etree of the eliminated block. Postordering must keep the
  // trailing (non-eliminated) columns in place, so restrict it to [0,nelim).
  {
    std::vector<idx> parent = elimination_tree(ap_);
    // Cut links into the trailing block so postorder_forest only permutes
    // the eliminated columns among themselves.
    std::vector<idx> parent_elim(parent.begin(), parent.begin() + nelim);
    for (idx i = 0; i < nelim; ++i)
      if (parent_elim[i] >= nelim) parent_elim[i] = -1;
    const std::vector<idx> post = postorder_forest(parent_elim);
    // Compose: new perm[i] = old_perm[post[i]] for i < nelim.
    std::vector<idx> perm2(perm_);
    for (idx i = 0; i < nelim; ++i) perm2[i] = perm_[post[i]];
    perm_ = std::move(perm2);
    // Re-permute ap_ accordingly (identity on the trailing block).
    std::vector<idx> relabel(static_cast<std::size_t>(n_aug_));
    for (idx i = 0; i < nelim; ++i) relabel[i] = post[i];
    for (idx i = nelim; i < n_aug_; ++i) relabel[i] = i;
    ap_ = ap_.permuted_symmetric(relabel);
  }
  value_map_.resize(static_cast<std::size_t>(ap_.nnz()));
  for (idx k = 0; k < ap_.nnz(); ++k)
    value_map_[k] = static_cast<idx>(ap_.vals()[k]);

  perm_elim_.assign(perm_.begin(), perm_.begin() + nelim);

  sym_ = symbolic_cholesky(ap_);

  // Fundamental supernodes over the eliminated columns: extend while the
  // parent chain is consecutive and column counts shrink by exactly one.
  sn_start_.clear();
  sn_start_.push_back(0);
  for (idx j = 1; j < nelim; ++j) {
    const idx prev = j - 1;
    const bool chain = sym_.parent[prev] == j &&
                       sym_.colcount[prev] == sym_.colcount[j] + 1;
    if (!chain) sn_start_.push_back(j);
  }
  if (nelim > 0) sn_start_.push_back(nelim);
  const idx nsn = static_cast<idx>(sn_start_.size()) - 1;

  sn_of_col_.assign(static_cast<std::size_t>(nelim), -1);
  for (idx s = 0; s < nsn; ++s)
    for (idx j = sn_start_[s]; j < sn_start_[s + 1]; ++j) sn_of_col_[j] = s;

  // Per-supernode row lists = pattern of the first column: {c0} ∪ rows k
  // with c0 in rowpat(k). Built by one sweep over row patterns.
  rows_ptr_.assign(static_cast<std::size_t>(nsn) + 1, 0);
  for (idx s = 0; s < nsn; ++s)
    rows_ptr_[s + 1] = sym_.colcount[sn_start_[s]];
  for (idx s = 0; s < nsn; ++s) rows_ptr_[s + 1] += rows_ptr_[s];
  rows_.assign(static_cast<std::size_t>(rows_ptr_[nsn]), -1);
  {
    std::vector<idx> fill(static_cast<std::size_t>(nsn));
    for (idx s = 0; s < nsn; ++s) {
      fill[s] = rows_ptr_[s] + 1;
      rows_[rows_ptr_[s]] = sn_start_[s];  // the first column itself
    }
    for (idx k = 0; k < n_aug_; ++k) {
      for (idx p = sym_.rowpat_ptr[k]; p < sym_.rowpat_ptr[k + 1]; ++p) {
        const idx j = sym_.rowpat[p];
        if (j < nelim && j == sn_start_[sn_of_col_[j]])
          rows_[fill[sn_of_col_[j]]++] = k;
      }
    }
    for (idx s = 0; s < nsn; ++s)
      FETI_ASSERT(fill[s] == rows_ptr_[s + 1],
                  "supernodal: row list size mismatch");
  }

  // Supernode tree: parent supernode of s owns the etree parent of s's last
  // column; a parent at/after nelim means the update flows to the Schur
  // block (or is empty for true roots).
  sn_parent_.assign(static_cast<std::size_t>(nsn), -1);
  sn_children_.assign(static_cast<std::size_t>(nsn), 0);
  for (idx s = 0; s < nsn; ++s) {
    const idx last = sn_start_[s + 1] - 1;
    const idx p = sym_.parent[last];
    if (p != -1 && p < nelim) {
      sn_parent_[s] = sn_of_col_[p];
      sn_children_[sn_of_col_[p]] += 1;
    }
  }

  // Panel storage layout and stats.
  panel_ptr_.assign(static_cast<std::size_t>(nsn) + 1, 0);
  factor_nnz_ = 0;
  max_front_ = 0;
  for (idx s = 0; s < nsn; ++s) {
    const idx ns = sn_start_[s + 1] - sn_start_[s];
    const idx fr = rows_ptr_[s + 1] - rows_ptr_[s];
    panel_ptr_[s + 1] = panel_ptr_[s] + static_cast<widx>(fr) * ns;
    factor_nnz_ +=
        static_cast<widx>(ns) * fr - static_cast<widx>(ns) * (ns - 1) / 2;
    max_front_ = std::max(max_front_, fr);
  }
  panels_.assign(static_cast<std::size_t>(panel_ptr_[nsn]), 0.0);
  analyzed_ = true;
}

void SupernodalCholesky::route_values(const la::Csr& a, const la::Csr* b) {
  check(analyzed_, "factorize: analyze() must be called first");
  check(a.nnz() == a_nnz_, "factorize: A pattern differs from analysis");
  auto& vals = ap_.vals();
  for (idx k = 0; k < ap_.nnz(); ++k) {
    const idx code = value_map_[k];
    if (code == kZeroCode)
      vals[k] = 0.0;
    else if (code < a_nnz_)
      vals[k] = a.vals()[code];
    else {
      FETI_ASSERT(b != nullptr, "factorize: B values required but absent");
      vals[k] = b->vals()[code - a_nnz_];
    }
  }
}

void SupernodalCholesky::numeric(la::DenseView* schur, la::Uplo uplo) {
  const idx nsn = num_supernodes();
  const idx m = n_aug_ - nelim_;
  if (schur != nullptr) {
    check(schur->rows == m && schur->cols == m,
          "factorize_schur: Schur output dimension mismatch");
    for (idx r = 0; r < m; ++r)
      for (idx c = 0; c < m; ++c)
        if ((uplo == la::Uplo::Upper && c >= r) ||
            (uplo == la::Uplo::Lower && c <= r))
          schur->at(r, c) = 0.0;
  }

  // Update stack: LIFO arena of children update matrices (dense, packed
  // col-major, paired with their global row lists).
  struct Update {
    widx offset;
    idx nr;
    idx rows_begin;  // index into rows_ of the owning supernode
  };
  std::vector<double> arena;
  std::vector<Update> stack;

  std::vector<double> front;
  std::vector<idx> gmap(static_cast<std::size_t>(n_aug_), -1);

  for (idx s = 0; s < nsn; ++s) {
    const idx c0 = sn_start_[s], c1 = sn_start_[s + 1];
    const idx ns = c1 - c0;
    const idx rb = rows_ptr_[s], re = rows_ptr_[s + 1];
    const idx fr = re - rb;
    front.assign(static_cast<std::size_t>(fr) * fr, 0.0);
    auto f = [&](idx i, idx j) -> double& {
      return front[static_cast<widx>(j) * fr + i];
    };
    for (idx i = rb; i < re; ++i) gmap[rows_[i]] = i - rb;

    // Assemble the A columns of this supernode (lower triangle: column j of
    // the lower part equals row j of ap_ restricted to cols >= j).
    for (idx j = c0; j < c1; ++j) {
      const idx jl = gmap[j];
      for (idx p = ap_.row_begin(j); p < ap_.row_end(j); ++p) {
        const idx i = ap_.col(p);
        if (i < j) continue;
        FETI_ASSERT(gmap[i] >= 0, "supernodal: A entry outside pattern");
        f(gmap[i], jl) += ap_.val(p);
      }
    }

    // Extend-add the children updates (they sit on top of the stack).
    for (idx c = 0; c < sn_children_[s]; ++c) {
      FETI_ASSERT(!stack.empty(), "supernodal: update stack underflow");
      const Update u = stack.back();
      stack.pop_back();
      const double* ud = arena.data() + u.offset;
      for (idx cj = 0; cj < u.nr; ++cj) {
        const idx gj = rows_[u.rows_begin + cj];
        const idx lj = gmap[gj];
        FETI_ASSERT(lj >= 0, "supernodal: update column outside front");
        for (idx ci = cj; ci < u.nr; ++ci) {
          const idx gi = rows_[u.rows_begin + ci];
          const idx li = gmap[gi];
          FETI_ASSERT(li >= 0, "supernodal: update row outside front");
          f(li, lj) += ud[static_cast<widx>(cj) * u.nr + ci];
        }
      }
      arena.resize(static_cast<std::size_t>(u.offset));
    }

    // Dense right-looking partial Cholesky of the leading ns columns,
    // updating the full trailing block. Columns are contiguous.
    for (idx j = 0; j < ns; ++j) {
      double d = f(j, j);
      if (d <= 0.0)
        throw std::runtime_error(
            "SupernodalCholesky: matrix is not positive definite at column " +
            std::to_string(c0 + j));
      d = std::sqrt(d);
      f(j, j) = d;
      const double dinv = 1.0 / d;
      double* colj = &f(j, j);
      la::scal(fr - j - 1, dinv, colj + 1);
      for (idx k = j + 1; k < fr; ++k) {
        const double fkj = colj[k - j];
        if (fkj == 0.0) continue;
        la::axpy(fr - k, -fkj, colj + (k - j),
                 &front[static_cast<widx>(k) * fr + k]);
      }
    }

    // Persist the factored panel (first ns columns, rows j..fr).
    std::copy_n(front.data(), static_cast<widx>(fr) * ns,
                panels_.data() + panel_ptr_[s]);

    // Route the update matrix: parent front, Schur block, or empty.
    const idx nr = fr - ns;
    if (sn_parent_[s] != -1) {
      const widx off = static_cast<widx>(arena.size());
      arena.resize(arena.size() + static_cast<std::size_t>(nr) * nr);
      double* ud = arena.data() + off;
      for (idx cj = 0; cj < nr; ++cj)
        std::copy_n(&f(ns + cj, ns + cj), nr - cj,
                    ud + static_cast<widx>(cj) * nr + cj);
      stack.push_back({off, nr, rb + ns});
    } else if (nr > 0) {
      // All remaining rows are in the Schur block (asserted below): the
      // trailing front block accumulates into -S.
      FETI_ASSERT(schur != nullptr && rows_[rb + ns] >= nelim_,
                  "supernodal: root update without Schur target");
      for (idx cj = 0; cj < nr; ++cj) {
        const idx gj = rows_[rb + ns + cj] - nelim_;
        for (idx ci = cj; ci < nr; ++ci) {
          const idx gi = rows_[rb + ns + ci] - nelim_;
          const double v = f(ns + ci, ns + cj);
          // Schur = -(trailing block): S = B A^{-1} B^T.
          if (uplo == la::Uplo::Upper)
            schur->at(std::min(gi, gj), std::max(gi, gj)) -= v;
          else
            schur->at(std::max(gi, gj), std::min(gi, gj)) -= v;
        }
      }
    }

    for (idx i = rb; i < re; ++i) gmap[rows_[i]] = -1;
  }
  FETI_ASSERT(stack.empty(), "supernodal: updates left on the stack");
  factorized_ = true;
}

void SupernodalCholesky::factorize(const la::Csr& a) {
  check(!schur_mode_, "factorize: solver was analyzed for the Schur path");
  route_values(a, nullptr);
  numeric(nullptr, la::Uplo::Upper);
}

void SupernodalCholesky::factorize_schur(const la::Csr& a, const la::Csr& b,
                                         la::DenseView s, la::Uplo uplo) {
  check(schur_mode_, "factorize_schur: call analyze_schur() first");
  route_values(a, &b);
  numeric(&s, uplo);
}

void SupernodalCholesky::solve(const double* b, double* x) const {
  check(factorized_, "solve: factorize() must be called first");
  const idx n = nelim_;
  std::vector<double> y(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) y[i] = b[perm_elim_[i]];

  const idx nsn = num_supernodes();
  // Forward substitution over panels: L y = Pb.
  for (idx s = 0; s < nsn; ++s) {
    const idx c0 = sn_start_[s];
    const idx ns = sn_start_[s + 1] - c0;
    const idx rb = rows_ptr_[s];
    const idx fr = rows_ptr_[s + 1] - rb;
    const double* panel = panels_.data() + panel_ptr_[s];
    // Diagonal block: dense lower triangular solve.
    for (idx j = 0; j < ns; ++j) {
      const double* col = panel + static_cast<widx>(j) * fr;
      y[c0 + j] /= col[j];
      const double yj = y[c0 + j];
      for (idx i = j + 1; i < ns; ++i) y[c0 + i] -= col[i] * yj;
    }
    // Off-diagonal rows (skip Schur-block rows in schur mode).
    for (idx j = 0; j < ns; ++j) {
      const double yj = y[c0 + j];
      if (yj == 0.0) continue;
      const double* col = panel + static_cast<widx>(j) * fr;
      for (idx i = ns; i < fr; ++i) {
        const idx g = rows_[rb + i];
        if (g >= n) break;  // rows are sorted; the tail is the Schur block
        y[g] -= col[i] * yj;
      }
    }
  }
  // Backward substitution: L^T x = y.
  for (idx s = nsn - 1; s >= 0; --s) {
    const idx c0 = sn_start_[s];
    const idx ns = sn_start_[s + 1] - c0;
    const idx rb = rows_ptr_[s];
    const idx fr = rows_ptr_[s + 1] - rb;
    const double* panel = panels_.data() + panel_ptr_[s];
    for (idx j = ns - 1; j >= 0; --j) {
      const double* col = panel + static_cast<widx>(j) * fr;
      double acc = y[c0 + j];
      for (idx i = j + 1; i < ns; ++i) acc -= col[i] * y[c0 + i];
      for (idx i = ns; i < fr; ++i) {
        const idx g = rows_[rb + i];
        if (g >= n) break;
        acc -= col[i] * y[g];
      }
      y[c0 + j] = acc / col[j];
    }
  }
  for (idx i = 0; i < n; ++i) x[perm_elim_[i]] = y[i];
}

}  // namespace feti::sparse
