#include "gpu/blas.hpp"

#include "la/blas_dense.hpp"

namespace feti::gpu::blas {

void gemv(Stream& s, double alpha, DeviceDense a, la::Trans trans,
          const double* x, double beta, double* y) {
  s.submit([=] { la::gemv(alpha, a.cview(), trans, x, beta, y); });
}

void symv(Stream& s, la::Uplo uplo, double alpha, DeviceDense a,
          const double* x, double beta, double* y) {
  s.submit([=] { la::symv(uplo, alpha, a.cview(), x, beta, y); });
}

void symm(Stream& s, la::Uplo uplo, double alpha, DeviceDense a,
          DeviceDense b, double beta, DeviceDense c) {
  s.submit([=] {
    la::symm(uplo, alpha, a.cview(), b.cview(), beta, c.view());
  });
}

void trsm(Stream& s, la::Uplo uplo, la::Trans trans, DeviceDense a,
          DeviceDense b) {
  s.submit([=] { la::trsm(uplo, trans, a.cview(), b.view()); });
}

void syrk(Stream& s, la::Uplo uplo, la::Trans trans, double alpha,
          DeviceDense a, double beta, DeviceDense c) {
  s.submit([=] { la::syrk(uplo, trans, alpha, a.cview(), beta, c.view()); });
}

void gemm(Stream& s, double alpha, DeviceDense a, la::Trans ta, DeviceDense b,
          la::Trans tb, double beta, DeviceDense c) {
  s.submit(
      [=] { la::gemm(alpha, a.cview(), ta, b.cview(), tb, beta, c.view()); });
}

void symv(Stream& s, la::Uplo uplo, double alpha, DeviceDenseF32 a,
          const float* x, double beta, float* y) {
  s.submit([=] { la::symv(uplo, alpha, a.cview(), x, beta, y); });
}

void gemv(Stream& s, double alpha, DeviceDenseF32 a, la::Trans trans,
          const float* x, double beta, float* y) {
  s.submit([=] { la::gemv(alpha, a.cview(), trans, x, beta, y); });
}

void symm(Stream& s, la::Uplo uplo, double alpha, DeviceDenseF32 a,
          DeviceDenseF32 b, double beta, DeviceDenseF32 c) {
  s.submit([=] {
    la::symm(uplo, alpha, a.cview(), b.cview(), beta, c.view());
  });
}

void gemm(Stream& s, double alpha, DeviceDenseF32 a, la::Trans ta,
          DeviceDenseF32 b, la::Trans tb, double beta, DeviceDenseF32 c) {
  s.submit(
      [=] { la::gemm(alpha, a.cview(), ta, b.cview(), tb, beta, c.view()); });
}

}  // namespace feti::gpu::blas
