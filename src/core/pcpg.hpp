#pragma once

// The preconditioned conjugate projected gradient method — Algorithm 1 of
// the paper, verbatim: the dual operator F is applied once per iteration
// (line 7), the projector twice, the preconditioner once.

#include <vector>

#include "core/dual_operator.hpp"
#include "core/projector.hpp"

namespace feti::core {

enum class PreconditionerKind : std::uint8_t { None, Lumped };

const char* to_string(PreconditionerKind p);

struct PcpgOptions {
  double rel_tolerance = 1e-9;
  int max_iterations = 1000;
  PreconditionerKind preconditioner = PreconditionerKind::None;
};

struct PcpgResult {
  std::vector<double> lambda;
  std::vector<double> alpha;   ///< kernel coefficients (eq. (9))
  int iterations = 0;
  double rel_residual = 0.0;
  bool converged = false;
};

class Pcpg {
 public:
  Pcpg(DualOperator& f, const Projector& projector, PcpgOptions options);

  /// Solves F λ = d subject to Gᵀλ = e.
  PcpgResult solve(const std::vector<double>& d);

 private:
  DualOperator& f_;
  const Projector& projector_;
  PcpgOptions options_;
};

}  // namespace feti::core
