// End-to-end tests of the FETI core: projector identities, PCPG
// convergence, agreement of all nine dual-operator approaches, the full
// Table-I parameter sweep of the explicit GPU assembly, multi-step
// simulations, and validation of the FETI solution against a monolithic
// direct solve.

#include <gtest/gtest.h>

#include <cmath>

#include "core/autotune.hpp"
#include "core/feti_solver.hpp"
#include "test_helpers.hpp"

namespace feti::core {
namespace {

using decomp::FetiProblem;
using fem::Physics;
using mesh::ElementOrder;

gpu::ExecutionContext& test_context() {
  static gpu::ExecutionContext ctx([] {
    gpu::DeviceConfig cfg;
    cfg.worker_threads = 4;
    cfg.launch_latency_us = 0.0;
    cfg.memory_bytes = 512ull << 20;
    return cfg;
  }());
  return ctx;
}

struct ProblemSpec {
  Physics physics;
  int dim;
  ElementOrder order;
};

FetiProblem make_problem(const ProblemSpec& spec, idx cells = 6,
                         idx splits = 2) {
  if (spec.dim == 2) {
    mesh::Mesh m = mesh::make_grid_2d(cells, cells, spec.order);
    auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
    return decomp::build_feti_problem(dec, spec.physics);
  }
  mesh::Mesh m = mesh::make_grid_3d(cells, cells, cells, spec.order);
  auto dec = mesh::decompose_3d(m, cells, cells, cells, splits, splits, splits);
  return decomp::build_feti_problem(dec, spec.physics);
}

std::vector<double> reference_solution(const ProblemSpec& spec, idx cells) {
  mesh::Mesh m = spec.dim == 2
                     ? mesh::make_grid_2d(cells, cells, spec.order)
                     : mesh::make_grid_3d(cells, cells, cells, spec.order);
  fem::GlobalSystem sys = fem::assemble_global(m, spec.physics);
  return fem::reference_solve(sys);
}

// ---------------------------------------------------------------------------
// Projector
// ---------------------------------------------------------------------------

TEST(Projector, IsIdempotentAndAnnihilatesG) {
  FetiProblem p = make_problem({Physics::HeatTransfer, 2,
                                ElementOrder::Linear});
  Projector proj(p);
  Rng rng(3);
  std::vector<double> x(static_cast<std::size_t>(p.num_lambdas));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> px(x.size()), ppx(x.size());
  proj.apply(x.data(), px.data());
  proj.apply(px.data(), ppx.data());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(ppx[i], px[i], 1e-10);          // P^2 = P
  EXPECT_LT(proj.gt_norm(px.data()), 1e-10);    // G^T P x = 0
}

TEST(Projector, InitialLambdaSatisfiesCoarseConstraint) {
  FetiProblem p = make_problem({Physics::LinearElasticity, 2,
                                ElementOrder::Linear});
  Projector proj(p);
  std::vector<double> lambda0(static_cast<std::size_t>(p.num_lambdas));
  proj.initial_lambda(lambda0.data());
  // G^T lambda0 must equal e: verify via gt_norm of (lambda0 - correction).
  // Direct check: recompute G^T lambda0 against e.
  // gt_norm returns ||G^T x||_inf, so check ||G^T lambda0 - e|| by shifting.
  // lambda0 lies entirely in range(G), so P lambda0 = 0 ...
  std::vector<double> plambda(lambda0.size());
  proj.apply(lambda0.data(), plambda.data());
  for (double v : plambda) EXPECT_NEAR(v, 0.0, 1e-10);
  // ... and e must be reproducible from the problem's load vectors.
  std::vector<double> e = proj.compute_e();
  EXPECT_EQ(e.size(), static_cast<std::size_t>(proj.kernel_total()));
}

// ---------------------------------------------------------------------------
// Cross-approach agreement of F and end-to-end solves
// ---------------------------------------------------------------------------

class ApproachParam
    : public ::testing::TestWithParam<std::tuple<Approach, int, Physics>> {};

TEST_P(ApproachParam, DualOperatorMatchesImplicitReference) {
  const auto [approach, dim, physics] = GetParam();
  FetiProblem p = make_problem({physics, dim, ElementOrder::Linear},
                               dim == 2 ? 6 : 4, 2);

  DualOpConfig ref_cfg;
  ref_cfg.approach = Approach::ImplMkl;
  auto ref_op = make_dual_operator(p, ref_cfg, &test_context());
  ref_op->prepare();
  ref_op->update_values();

  DualOpConfig cfg;
  cfg.approach = approach;
  cfg.gpu = recommend_options(gpu::sparse::Api::Legacy, dim,
                              p.max_subdomain_dofs());
  auto op = make_dual_operator(p, cfg, &test_context());
  op->prepare();
  op->update_values();

  Rng rng(17);
  std::vector<double> x(static_cast<std::size_t>(p.num_lambdas));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y_ref(x.size(), 0.0), y(x.size(), 0.0);
  ref_op->apply(x.data(), y_ref.data());
  op->apply(x.data(), y.data());
  double scale = 0.0;
  for (double v : y_ref) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], y_ref[i], 1e-8 * std::max(1.0, scale))
        << "entry " << i << " approach " << to_string(approach);

  // d must agree as well (exercises kplus_solve).
  std::vector<double> d_ref(x.size()), d(x.size());
  ref_op->compute_d(d_ref.data());
  op->compute_d(d.data());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(d[i], d_ref[i], 1e-8 * std::max(1.0, scale));
}

INSTANTIATE_TEST_SUITE_P(
    AllApproaches, ApproachParam,
    ::testing::Combine(
        ::testing::Values(Approach::ImplMkl, Approach::ImplCholmod,
                          Approach::ImplLegacy, Approach::ImplModern,
                          Approach::ExplMkl, Approach::ExplCholmod,
                          Approach::ExplLegacy, Approach::ExplModern,
                          Approach::ExplHybrid),
        ::testing::Values(2, 3),
        ::testing::Values(Physics::HeatTransfer)));

INSTANTIATE_TEST_SUITE_P(
    ElasticityApproaches, ApproachParam,
    ::testing::Combine(::testing::Values(Approach::ImplMkl, Approach::ExplMkl,
                                         Approach::ExplLegacy,
                                         Approach::ExplHybrid),
                       ::testing::Values(2, 3),
                       ::testing::Values(Physics::LinearElasticity)));

// Full Table-I parameter sweep: every combination must produce the same F.
class GpuParamSweep
    : public ::testing::TestWithParam<
          std::tuple<gpu::sparse::Api, Path, FactorStorage, FactorStorage,
                     la::Layout, la::Layout, SgLocation>> {};

TEST_P(GpuParamSweep, ExplicitAssemblyMatchesReference) {
  const auto [api, path, fwd_st, bwd_st, order, rhs, sg] = GetParam();
  FetiProblem p =
      make_problem({Physics::HeatTransfer, 2, ElementOrder::Linear}, 6, 2);

  DualOpConfig ref_cfg;
  ref_cfg.approach = Approach::ImplCholmod;
  auto ref_op = make_dual_operator(p, ref_cfg, nullptr);
  ref_op->prepare();
  ref_op->update_values();

  DualOpConfig cfg;
  cfg.approach =
      api == gpu::sparse::Api::Legacy ? Approach::ExplLegacy
                                      : Approach::ExplModern;
  cfg.gpu.path = path;
  cfg.gpu.fwd_storage = fwd_st;
  cfg.gpu.bwd_storage = bwd_st;
  cfg.gpu.fwd_order = order;
  cfg.gpu.bwd_order = order;
  cfg.gpu.rhs_order = rhs;
  cfg.gpu.scatter_gather = sg;
  cfg.gpu.streams = 3;
  auto op = make_dual_operator(p, cfg, &test_context());
  op->prepare();
  op->update_values();

  Rng rng(19);
  std::vector<double> x(static_cast<std::size_t>(p.num_lambdas));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y_ref(x.size(), 0.0), y(x.size(), 0.0);
  ref_op->apply(x.data(), y_ref.data());
  op->apply(x.data(), y.data());
  double scale = 0.0;
  for (double v : y_ref) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], y_ref[i], 1e-8 * std::max(1.0, scale));
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, GpuParamSweep,
    ::testing::Combine(
        ::testing::Values(gpu::sparse::Api::Legacy, gpu::sparse::Api::Modern),
        ::testing::Values(Path::Trsm, Path::Syrk),
        ::testing::Values(FactorStorage::Sparse, FactorStorage::Dense),
        ::testing::Values(FactorStorage::Sparse, FactorStorage::Dense),
        ::testing::Values(la::Layout::RowMajor, la::Layout::ColMajor),
        ::testing::Values(la::Layout::RowMajor, la::Layout::ColMajor),
        ::testing::Values(SgLocation::Cpu, SgLocation::Gpu)));

// ---------------------------------------------------------------------------
// End-to-end FETI solves against the monolithic reference
// ---------------------------------------------------------------------------

class SolveParam : public ::testing::TestWithParam<
                       std::tuple<Approach, ProblemSpec>> {};

TEST_P(SolveParam, MatchesMonolithicSolve) {
  const auto [approach, spec] = GetParam();
  const idx cells = spec.dim == 2 ? 6 : 4;
  FetiProblem p = make_problem(spec, cells, 2);
  std::vector<double> u_ref = reference_solution(spec, cells);

  FetiSolverOptions opts;
  opts.dualop.approach = approach;
  opts.dualop.gpu =
      recommend_options(gpu::sparse::Api::Legacy, spec.dim, 1000);
  opts.pcpg.rel_tolerance = 1e-10;
  opts.pcpg.max_iterations = 2000;
  FetiSolver solver(p, opts, &test_context());
  solver.prepare();
  FetiStepResult res = solver.solve_step();
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.pcpg_iterations, 0);

  double umax = 0.0;
  for (double v : u_ref) umax = std::max(umax, std::fabs(v));
  ASSERT_EQ(res.u.size(), u_ref.size());
  for (std::size_t i = 0; i < u_ref.size(); ++i)
    EXPECT_NEAR(res.u[i], u_ref[i], 1e-6 * std::max(1.0, umax))
        << "dof " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Solves, SolveParam,
    ::testing::Values(
        std::tuple{Approach::ImplMkl,
                   ProblemSpec{Physics::HeatTransfer, 2,
                               ElementOrder::Linear}},
        std::tuple{Approach::ImplCholmod,
                   ProblemSpec{Physics::HeatTransfer, 2,
                               ElementOrder::Quadratic}},
        std::tuple{Approach::ExplMkl,
                   ProblemSpec{Physics::HeatTransfer, 3,
                               ElementOrder::Linear}},
        std::tuple{Approach::ExplLegacy,
                   ProblemSpec{Physics::HeatTransfer, 2,
                               ElementOrder::Linear}},
        std::tuple{Approach::ExplModern,
                   ProblemSpec{Physics::HeatTransfer, 3,
                               ElementOrder::Linear}},
        std::tuple{Approach::ExplHybrid,
                   ProblemSpec{Physics::LinearElasticity, 2,
                               ElementOrder::Linear}},
        std::tuple{Approach::ImplLegacy,
                   ProblemSpec{Physics::LinearElasticity, 2,
                               ElementOrder::Quadratic}},
        std::tuple{Approach::ExplLegacy,
                   ProblemSpec{Physics::LinearElasticity, 3,
                               ElementOrder::Linear}},
        std::tuple{Approach::ExplCholmod,
                   ProblemSpec{Physics::HeatTransfer, 2,
                               ElementOrder::Quadratic}}));

TEST(Pcpg, LumpedPreconditionerReducesIterations) {
  // Elasticity is ill-conditioned enough for the lumped preconditioner to
  // pay off (on tiny heat problems it can cost an iteration or two).
  ProblemSpec spec{Physics::LinearElasticity, 2, ElementOrder::Linear};
  FetiProblem p = make_problem(spec, 12, 3);
  FetiSolverOptions opts;
  opts.dualop.approach = Approach::ImplMkl;
  opts.pcpg.rel_tolerance = 1e-9;

  FetiSolver plain(p, opts, nullptr);
  plain.prepare();
  const int it_plain = plain.solve_step().pcpg_iterations;

  opts.pcpg.preconditioner = "lumped";
  FetiSolver precond(p, opts, nullptr);
  precond.prepare();
  const int it_precond = precond.solve_step().pcpg_iterations;

  EXPECT_TRUE(it_precond <= it_plain)
      << "lumped=" << it_precond << " none=" << it_plain;
}

TEST(MultiStep, RepeatedStepsWithChangingValues) {
  // Algorithm 2: symbolic work once, numeric factorization + assembly per
  // step. Scaling K and f by the same factor leaves u unchanged.
  ProblemSpec spec{Physics::HeatTransfer, 2, ElementOrder::Linear};
  decomp::FetiProblem p = make_problem(spec, 6, 2);
  FetiSolverOptions opts;
  opts.dualop.approach = Approach::ExplLegacy;
  opts.dualop.gpu = recommend_options(gpu::sparse::Api::Legacy, 2, 1000);
  opts.pcpg.rel_tolerance = 1e-10;
  FetiSolver solver(p, opts, &test_context());
  solver.prepare();

  FetiStepResult step1 = solver.solve_step();
  decomp::scale_step(p, 3.0);
  FetiStepResult step2 = solver.solve_step();
  decomp::scale_step(p, 0.5);
  FetiStepResult step3 = solver.solve_step();

  ASSERT_TRUE(step1.converged && step2.converged && step3.converged);
  for (std::size_t i = 0; i < step1.u.size(); ++i) {
    EXPECT_NEAR(step2.u[i], step1.u[i], 1e-7);
    EXPECT_NEAR(step3.u[i], step1.u[i], 1e-7);
  }
}

TEST(MultiStep, NonUniformValueChangeIsPickedUp) {
  // Scaling K only (not f) must scale the solution by 1/factor.
  ProblemSpec spec{Physics::HeatTransfer, 2, ElementOrder::Linear};
  decomp::FetiProblem p = make_problem(spec, 6, 2);
  FetiSolverOptions opts;
  opts.dualop.approach = Approach::ExplMkl;
  opts.pcpg.rel_tolerance = 1e-11;
  FetiSolver solver(p, opts, nullptr);
  solver.prepare();
  FetiStepResult step1 = solver.solve_step();
  for (auto& s : p.sub) {
    for (auto& v : s.sys.k.vals()) v *= 2.0;
    for (auto& v : s.k_reg.vals()) v *= 2.0;
  }
  FetiStepResult step2 = solver.solve_step();
  for (std::size_t i = 0; i < step1.u.size(); ++i)
    EXPECT_NEAR(step2.u[i], 0.5 * step1.u[i], 1e-7);
}

// ---------------------------------------------------------------------------
// Autotuning (Table II)
// ---------------------------------------------------------------------------

TEST(Autotune, MatchesTableTwo) {
  // Legacy, 2D: sparse factors, row-major, RHS row-major, SYRK.
  auto l2 = recommend_options(gpu::sparse::Api::Legacy, 2, 5000);
  EXPECT_EQ(l2.path, Path::Syrk);
  EXPECT_EQ(l2.fwd_storage, FactorStorage::Sparse);
  EXPECT_EQ(l2.fwd_order, la::Layout::RowMajor);
  EXPECT_EQ(l2.rhs_order, la::Layout::RowMajor);

  // Legacy, 3D small: dense factors col-major.
  auto l3s = recommend_options(gpu::sparse::Api::Legacy, 3, 5000);
  EXPECT_EQ(l3s.fwd_storage, FactorStorage::Dense);
  EXPECT_EQ(l3s.fwd_order, la::Layout::ColMajor);

  // Legacy, 3D large: back to sparse.
  auto l3l = recommend_options(gpu::sparse::Api::Legacy, 3, 20000);
  EXPECT_EQ(l3l.fwd_storage, FactorStorage::Sparse);

  // Modern: always dense; RHS col-major in 2D, row-major in 3D.
  auto m2 = recommend_options(gpu::sparse::Api::Modern, 2, 5000);
  EXPECT_EQ(m2.fwd_storage, FactorStorage::Dense);
  EXPECT_EQ(m2.rhs_order, la::Layout::ColMajor);
  auto m3 = recommend_options(gpu::sparse::Api::Modern, 3, 20000);
  EXPECT_EQ(m3.fwd_storage, FactorStorage::Dense);
  EXPECT_EQ(m3.rhs_order, la::Layout::RowMajor);
}

TEST(Config, NamesAreDistinctAndStable) {
  EXPECT_STREQ(to_string(Approach::ImplMkl), "impl mkl");
  EXPECT_STREQ(to_string(Approach::ExplHybrid), "expl hybrid");
  EXPECT_EQ(all_approaches().size(), 9u);
  EXPECT_TRUE(uses_gpu(Approach::ExplLegacy));
  EXPECT_FALSE(uses_gpu(Approach::ExplMkl));
  EXPECT_TRUE(is_explicit(Approach::ExplHybrid));
  EXPECT_FALSE(is_explicit(Approach::ImplModern));
  ExplicitGpuOptions opt;
  EXPECT_FALSE(opt.describe().empty());
}

TEST(Factory, GpuApproachWithoutDeviceThrows) {
  FetiProblem p = make_problem({Physics::HeatTransfer, 2,
                                ElementOrder::Linear});
  DualOpConfig cfg;
  cfg.approach = Approach::ExplLegacy;
  EXPECT_THROW(make_dual_operator(p, cfg, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace feti::core
