#include "core/pcpg.hpp"

#include <cmath>

#include "la/blas_dense.hpp"

namespace feti::core {

const char* to_string(PreconditionerKind p) {
  return p == PreconditionerKind::None ? "none" : "lumped";
}

Pcpg::Pcpg(DualOperator& f, const Projector& projector, PcpgOptions options)
    : f_(f), projector_(projector), options_(options) {}

PcpgResult Pcpg::solve(const std::vector<double>& d) {
  const idx n = f_.problem().num_lambdas;
  check(d.size() == static_cast<std::size_t>(n), "Pcpg: rhs size mismatch");

  LumpedPreconditioner lumped(f_.problem());
  const bool use_precond =
      options_.preconditioner == PreconditionerKind::Lumped;

  std::vector<double> lambda(static_cast<std::size_t>(n));
  std::vector<double> r(static_cast<std::size_t>(n));
  std::vector<double> w(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  std::vector<double> p(static_cast<std::size_t>(n));
  std::vector<double> q(static_cast<std::size_t>(n));
  std::vector<double> t(static_cast<std::size_t>(n));

  // Lines 1-5 of Algorithm 1.
  projector_.initial_lambda(lambda.data());
  f_.apply(lambda.data(), q.data());
  for (idx i = 0; i < n; ++i) r[i] = d[i] - q[i];
  projector_.apply(r.data(), w.data());
  if (use_precond) {
    lumped.apply(w.data(), t.data());
    projector_.apply(t.data(), y.data());
  } else {
    y = w;
  }
  p = y;

  const double w0_norm = la::nrm2(n, w.data());
  PcpgResult result;
  if (w0_norm == 0.0) {
    result.lambda = std::move(lambda);
    result.alpha = projector_.alpha(r.data());
    result.converged = true;
    return result;
  }

  double wy = la::dot(n, w.data(), y.data());
  int k = 0;
  double rel = 1.0;
  for (; k < options_.max_iterations; ++k) {
    rel = la::nrm2(n, w.data()) / w0_norm;
    if (rel <= options_.rel_tolerance) break;

    f_.apply(p.data(), q.data());                       // line 7
    const double pq = la::dot(n, p.data(), q.data());
    check(pq > 0.0, "Pcpg: operator lost positive definiteness");
    const double delta = wy / pq;                       // line 8
    la::axpy(n, delta, p.data(), lambda.data());        // line 9
    la::axpy(n, -delta, q.data(), r.data());            // line 10
    projector_.apply(r.data(), w.data());               // line 11
    if (use_precond) {                                  // line 12
      lumped.apply(w.data(), t.data());
      projector_.apply(t.data(), y.data());
    } else {
      y = w;
    }
    const double wy_next = la::dot(n, w.data(), y.data());
    const double beta = wy_next / wy;                   // line 13
    wy = wy_next;
    for (idx i = 0; i < n; ++i) p[i] = y[i] + beta * p[i];  // line 14
  }

  result.iterations = k;
  result.rel_residual = rel;
  result.converged = rel <= options_.rel_tolerance;
  result.alpha = projector_.alpha(r.data());
  result.lambda = std::move(lambda);
  return result;
}

}  // namespace feti::core
