// Tests for quadrature, shape functions, element physics, and assembly.
// The strongest check: quadratic elements reproduce the analytic solution
// u(x) = x - x^2/2 of -u'' = 1 with u(0) = 0 and natural boundaries exactly.

#include <gtest/gtest.h>

#include <cmath>

#include "fem/assembler.hpp"
#include "fem/physics.hpp"
#include "fem/quadrature.hpp"
#include "fem/shape.hpp"
#include "la/blas_sparse.hpp"
#include "test_helpers.hpp"

namespace feti::fem {
namespace {

using mesh::ElementOrder;
using mesh::ElementType;

TEST(Quadrature, WeightsSumToSimplexMeasure) {
  for (int deg = 1; deg <= 4; ++deg) {
    double s2 = 0.0, s3 = 0.0;
    for (const auto& q : simplex_rule(2, deg)) s2 += q.weight;
    for (const auto& q : simplex_rule(3, deg)) s3 += q.weight;
    EXPECT_NEAR(s2, 0.5, 1e-14) << "deg " << deg;
    EXPECT_NEAR(s3, 1.0 / 6, 1e-14) << "deg " << deg;
  }
}

TEST(Quadrature, IntegratesMonomialsExactly) {
  // Reference triangle: int x^a y^b = a! b! / (a+b+2)!.
  auto fact = [](int k) { double f = 1; for (int i = 2; i <= k; ++i) f *= i; return f; };
  for (int deg = 1; deg <= 4; ++deg) {
    const auto rule = simplex_rule(2, deg);
    for (int a = 0; a + 0 <= deg; ++a)
      for (int b = 0; a + b <= deg; ++b) {
        double v = 0.0;
        for (const auto& q : rule)
          v += q.weight * std::pow(q.xi[0], a) * std::pow(q.xi[1], b);
        const double exact = fact(a) * fact(b) / fact(a + b + 2);
        EXPECT_NEAR(v, exact, 1e-12) << "deg " << deg << " x^" << a << "y^" << b;
      }
  }
  // Reference tet: int x^a y^b z^c = a! b! c! / (a+b+c+3)!.
  for (int deg = 1; deg <= 4; ++deg) {
    const auto rule = simplex_rule(3, deg);
    for (int a = 0; a <= deg; ++a)
      for (int b = 0; a + b <= deg; ++b)
        for (int c = 0; a + b + c <= deg; ++c) {
          double v = 0.0;
          for (const auto& q : rule)
            v += q.weight * std::pow(q.xi[0], a) * std::pow(q.xi[1], b) *
                 std::pow(q.xi[2], c);
          const double exact = fact(a) * fact(b) * fact(c) / fact(a + b + c + 3);
          EXPECT_NEAR(v, exact, 1e-12)
              << "deg " << deg << " " << a << b << c;
        }
  }
}

class ShapeParam : public ::testing::TestWithParam<ElementType> {};

TEST_P(ShapeParam, PartitionOfUnity) {
  const ElementType t = GetParam();
  const int npe = mesh::nodes_per_element(t);
  const int dim = mesh::element_dim(t);
  Rng rng(50);
  for (int trial = 0; trial < 20; ++trial) {
    // Random point in the reference simplex.
    double xi[3] = {0, 0, 0};
    double rem = 1.0;
    for (int d = 0; d < dim; ++d) {
      xi[d] = rng.uniform(0.0, rem);
      rem -= xi[d];
    }
    double n[10], dn[30];
    shape_values(t, xi, n);
    shape_gradients(t, xi, dn);
    double sum = 0.0, gsum[3] = {0, 0, 0};
    for (int a = 0; a < npe; ++a) {
      sum += n[a];
      for (int d = 0; d < dim; ++d) gsum[d] += dn[a * dim + d];
    }
    EXPECT_NEAR(sum, 1.0, 1e-13);
    for (int d = 0; d < dim; ++d) EXPECT_NEAR(gsum[d], 0.0, 1e-12);
  }
}

TEST_P(ShapeParam, KroneckerDeltaAtNodes) {
  const ElementType t = GetParam();
  const int npe = mesh::nodes_per_element(t);
  const int dim = mesh::element_dim(t);
  // Reference node coordinates (corners then midpoints per ordering).
  std::vector<std::array<double, 3>> ref;
  if (dim == 2) {
    ref = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
    if (npe == 6) {
      ref.push_back({0.5, 0, 0});
      ref.push_back({0.5, 0.5, 0});
      ref.push_back({0, 0.5, 0});
    }
  } else {
    ref = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    if (npe == 10) {
      ref.push_back({0.5, 0, 0});
      ref.push_back({0.5, 0.5, 0});
      ref.push_back({0, 0.5, 0});
      ref.push_back({0, 0, 0.5});
      ref.push_back({0.5, 0, 0.5});
      ref.push_back({0, 0.5, 0.5});
    }
  }
  for (int b = 0; b < npe; ++b) {
    double n[10];
    shape_values(t, ref[b].data(), n);
    for (int a = 0; a < npe; ++a)
      EXPECT_NEAR(n[a], a == b ? 1.0 : 0.0, 1e-13)
          << "N_" << a << " at node " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ShapeParam,
                         ::testing::Values(ElementType::Tri3,
                                           ElementType::Tri6,
                                           ElementType::Tet4,
                                           ElementType::Tet10));

class ElementParam
    : public ::testing::TestWithParam<std::tuple<Physics, ElementType>> {};

TEST_P(ElementParam, StiffnessSymmetricPositiveSemidefinite) {
  const auto [phys, type] = GetParam();
  const int dim = mesh::element_dim(type);
  const int npe = mesh::nodes_per_element(type);
  const int ndof = npe * dofs_per_node(phys, dim);
  // A mildly distorted element.
  std::vector<double> coords;
  if (dim == 2) {
    coords = {0.0, 0.0, 1.1, 0.1, 0.2, 0.9};
    if (npe == 6)
      for (const auto& [a, b] : {std::pair{0, 1}, {1, 2}, {2, 0}})
        for (int d = 0; d < 2; ++d)
          coords.push_back(0.5 * (coords[2 * a + d] + coords[2 * b + d]));
  } else {
    coords = {0, 0, 0, 1.05, 0, 0.1, 0.1, 0.95, 0, 0.05, 0.1, 1.0};
    if (npe == 10)
      for (const auto& [a, b] : {std::pair{0, 1}, {1, 2}, {0, 2},
                                {0, 3}, {1, 3}, {2, 3}})
        for (int d = 0; d < 3; ++d)
          coords.push_back(0.5 * (coords[3 * a + d] + coords[3 * b + d]));
  }
  la::DenseMatrix ke(ndof, ndof, la::Layout::RowMajor);
  std::vector<double> fe(static_cast<std::size_t>(ndof));
  element_system(phys, type, coords.data(), Material{}, ke.view(), fe.data());
  // Symmetry.
  for (int a = 0; a < ndof; ++a)
    for (int b = 0; b < ndof; ++b)
      EXPECT_NEAR(ke.at(a, b), ke.at(b, a), 1e-11);
  // PSD via random quadratic forms.
  Rng rng(60);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(ndof));
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    double q = 0.0;
    for (int a = 0; a < ndof; ++a)
      for (int b = 0; b < ndof; ++b) q += x[a] * ke.at(a, b) * x[b];
    EXPECT_GE(q, -1e-10);
  }
}

TEST_P(ElementParam, RigidModesInKernel) {
  const auto [phys, type] = GetParam();
  const int dim = mesh::element_dim(type);
  const int npe = mesh::nodes_per_element(type);
  const int dpn = dofs_per_node(phys, dim);
  const int ndof = npe * dpn;
  std::vector<double> coords;
  if (dim == 2)
    coords = {0.3, 0.2, 1.0, 0.3, 0.4, 1.1};
  else
    coords = {0.1, 0.2, 0.0, 1.0, 0.1, 0.2, 0.2, 1.1, 0.1, 0.15, 0.25, 1.05};
  if (npe == 6 || npe == 10) {
    const std::vector<std::pair<int, int>> edges =
        dim == 2 ? std::vector<std::pair<int, int>>{{0, 1}, {1, 2}, {2, 0}}
                 : std::vector<std::pair<int, int>>{
                       {0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 3}, {2, 3}};
    for (auto [a, b] : edges)
      for (int d = 0; d < dim; ++d)
        coords.push_back(0.5 * (coords[a * dim + d] + coords[b * dim + d]));
  }
  la::DenseMatrix ke(ndof, ndof, la::Layout::RowMajor);
  std::vector<double> fe(static_cast<std::size_t>(ndof));
  element_system(phys, type, coords.data(), Material{}, ke.view(), fe.data());

  // Kernel candidates: constants (heat), rigid body modes (elasticity).
  std::vector<std::vector<double>> modes;
  if (phys == Physics::HeatTransfer) {
    modes.push_back(std::vector<double>(static_cast<std::size_t>(ndof), 1.0));
  } else {
    for (int d = 0; d < dim; ++d) {
      std::vector<double> m(static_cast<std::size_t>(ndof), 0.0);
      for (int a = 0; a < npe; ++a) m[a * dim + d] = 1.0;
      modes.push_back(std::move(m));
    }
    // Rotations.
    auto coord = [&](int a, int d) { return coords[a * dim + d]; };
    if (dim == 2) {
      std::vector<double> m(static_cast<std::size_t>(ndof));
      for (int a = 0; a < npe; ++a) {
        m[2 * a] = -coord(a, 1);
        m[2 * a + 1] = coord(a, 0);
      }
      modes.push_back(std::move(m));
    } else {
      const int rot[3][2] = {{0, 1}, {1, 2}, {0, 2}};
      for (const auto& r : rot) {
        std::vector<double> m(static_cast<std::size_t>(ndof), 0.0);
        for (int a = 0; a < npe; ++a) {
          m[a * 3 + r[0]] = -coord(a, r[1]);
          m[a * 3 + r[1]] = coord(a, r[0]);
        }
        modes.push_back(std::move(m));
      }
    }
  }
  for (const auto& m : modes) {
    for (int a = 0; a < ndof; ++a) {
      double acc = 0.0;
      for (int b = 0; b < ndof; ++b) acc += ke.at(a, b) * m[b];
      EXPECT_NEAR(acc, 0.0, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ElementParam,
    ::testing::Combine(::testing::Values(Physics::HeatTransfer,
                                         Physics::LinearElasticity),
                       ::testing::Values(ElementType::Tri3, ElementType::Tri6,
                                         ElementType::Tet4,
                                         ElementType::Tet10)));

TEST(Assembly, SubdomainHeatMatrixIsSingularWithConstantKernel) {
  mesh::Mesh m = mesh::make_grid_2d(3, 3, ElementOrder::Linear);
  SubdomainSystem sys = assemble(m, Physics::HeatTransfer);
  ASSERT_EQ(sys.ndof, m.num_nodes);
  std::vector<double> ones(static_cast<std::size_t>(sys.ndof), 1.0);
  std::vector<double> y(static_cast<std::size_t>(sys.ndof), 0.0);
  la::spmv(1.0, sys.k, ones.data(), 0.0, y.data());
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-11);
}

TEST(Assembly, LoadVectorIntegratesToDomainMeasure) {
  // Unit source over the unit square: sum of load entries = 1.
  mesh::Mesh m = mesh::make_grid_2d(4, 4, ElementOrder::Quadratic);
  SubdomainSystem sys = assemble(m, Physics::HeatTransfer);
  double total = 0.0;
  for (double v : sys.f) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Assembly, DirichletDofsMatchMeshForElasticity) {
  mesh::Mesh m = mesh::make_grid_2d(3, 3, ElementOrder::Linear);
  SubdomainSystem sys = assemble(m, Physics::LinearElasticity);
  EXPECT_EQ(sys.dirichlet_dofs.size(), m.dirichlet_nodes.size() * 2);
}

class AnalyticParam
    : public ::testing::TestWithParam<std::tuple<int, ElementOrder>> {};

TEST_P(AnalyticParam, HeatSolutionMatchesAnalytic1DProfile) {
  const auto [dim, order] = GetParam();
  // -Δu = 1 on the unit domain, u = 0 on x = 0, natural elsewhere:
  // u(x) = x - x^2/2, independent of the other coordinates. Quadratic
  // elements reproduce it exactly; linear elements are O(h^2) at nodes.
  mesh::Mesh m = dim == 2 ? mesh::make_grid_2d(6, 6, order)
                          : mesh::make_grid_3d(4, 4, 4, order);
  GlobalSystem sys = assemble_global(m, Physics::HeatTransfer);
  std::vector<double> u = reference_solve(sys);
  // Linear tets on a coarse Kuhn mesh carry a visible O(h^2) error; the 2D
  // triangle stencil is much closer to the superconvergent 1D one.
  const double tol =
      order == ElementOrder::Quadratic ? 1e-10 : (dim == 2 ? 5e-3 : 3e-2);
  for (idx n = 0; n < m.num_nodes; ++n) {
    const double x = m.coord(n, 0);
    EXPECT_NEAR(u[n], x - 0.5 * x * x, tol) << "node " << n << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsOrders, AnalyticParam,
    ::testing::Combine(::testing::Values(2, 3),
                       ::testing::Values(ElementOrder::Linear,
                                         ElementOrder::Quadratic)));

TEST(Assembly, ElasticityReferenceSolveBendsDownward) {
  mesh::Mesh m = mesh::make_grid_2d(6, 3, ElementOrder::Linear);
  GlobalSystem sys = assemble_global(m, Physics::LinearElasticity);
  std::vector<double> u = reference_solve(sys);
  // The cantilever loaded downward must deflect downward at the free end.
  double tip_uy = 0.0;
  for (idx n = 0; n < m.num_nodes; ++n)
    if (m.coord(n, 0) == 1.0) tip_uy += u[2 * n + 1];
  EXPECT_LT(tip_uy, 0.0);
  // And boundary DOFs stay zero.
  for (idx d : sys.dirichlet_dofs) EXPECT_EQ(u[d], 0.0);
}

}  // namespace
}  // namespace feti::fem
