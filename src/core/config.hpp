#pragma once

// Configuration of the dual-operator variants (Table III) and of the
// explicit GPU assembly parameter space (Table I).
//
// The nine Table-III variants are not nine independent algorithms: they are
// the valid points of a cross product of orthogonal choices. This header
// models those choices as separate axes, bundled into an ApproachAxes
// tuple that maps 1:1 onto the string keys of the DualOperatorRegistry:
//
//   Representation  — implicit (F applied matrix-free) vs explicit (the
//                     local dual operators F̃ᵢ are assembled up front);
//   ExecDevice      — where assembly/application run: CPU, GPU, or the
//                     hybrid split (assemble on CPU, apply on GPU);
//   sparse::Backend — the direct-solver backend: supernodal ("mkl",
//                     Schur-capable, no factor export) vs simplicial
//                     ("cholmod", exports factors — required by the GPU
//                     paths);
//   gpu::sparse::Api — legacy vs modern sparse API generation (GPU only).
//
// The legacy `Approach` enum survives as a thin compatibility alias: each
// enumerator names one valid axis tuple, and everything downstream resolves
// it through axes_of() / DualOpConfig::axes().

#include <string>
#include <string_view>
#include <vector>

#include "gpu/sparse.hpp"
#include "la/dense.hpp"
#include "sparse/ordering.hpp"
#include "sparse/solver.hpp"

namespace feti::core {

// ---------------------------------------------------------------------------
// Orthogonal axes
// ---------------------------------------------------------------------------

/// How the dual operator F = B K⁺ Bᵀ is represented.
enum class Representation : std::uint8_t {
  Implicit,  ///< matrix-free: apply = SpMV → forward/backward solve → SpMV
  Explicit,  ///< F̃ᵢ assembled once per time step, applied as dense GEMV/GEMM
};

/// Where the heavy lifting runs.
enum class ExecDevice : std::uint8_t {
  Cpu,
  Gpu,
  Hybrid,  ///< assembly on the CPU (Schur path), application on the GPU
};

/// Storage/apply precision of the assembled local dual operators F̃ᵢ.
/// F64 is the default everywhere; F32 assembles in fp64 as usual, demotes
/// the persistent F̃ storage to fp32, and applies in fp32 with fp64
/// accumulation (the dual-vector reduction and the whole PCPG iteration
/// stay fp64). Valid only for the explicit representation — the implicit
/// families hold no F̃ storage to demote.
enum class Precision : std::uint8_t {
  F64,
  F32,
};

const char* to_string(Representation r);
const char* to_string(ExecDevice d);
const char* to_string(Precision p);

/// Inverse of to_string; also accepts the "impl"/"expl" key abbreviations.
Representation parse_representation(std::string_view s);
ExecDevice parse_exec_device(std::string_view s);
/// Accepts "f64"/"fp64"/"double" and "f32"/"fp32"/"single".
Precision parse_precision(std::string_view s);

/// One point of the Table-III design space. Only some tuples are valid:
/// the GPU paths need exported factors (simplicial backend) and the hybrid
/// path is the explicit supernodal Schur assembly married to GPU
/// application.
struct ApproachAxes {
  Representation repr = Representation::Implicit;
  ExecDevice device = ExecDevice::Cpu;
  sparse::Backend backend = sparse::Backend::Supernodal;
  /// Sparse API generation; meaningful only when device != Cpu.
  gpu::sparse::Api api = gpu::sparse::Api::Legacy;
  /// F̃ storage/apply precision; F32 is valid only with Explicit.
  Precision precision = Precision::F64;
  /// Sparsity-aware assembly: restrict the K⁻¹ solve to the boundary DOF
  /// columns (the column support of B̃ᵢ) instead of the full dense RHS
  /// panel. The assembled F̃ᵢ, scatter/gather, and the apply phase are
  /// unchanged — only the per-step assembly cost shrinks with the boundary
  /// fraction. Valid only with Explicit (the implicit families never form
  /// an RHS panel).
  bool sparsity = false;

  bool operator==(const ApproachAxes&) const = default;

  [[nodiscard]] bool valid() const;
  /// The Table-III registry key, e.g. "impl mkl" or "expl legacy"; the
  /// sparsity-aware variant appends " sp" ("expl legacy sp") and the F32
  /// precision appends an " f32" suffix after it ("expl legacy sp f32").
  /// Requires valid().
  [[nodiscard]] std::string key() const;
  /// Human-readable axis dump, e.g. "explicit/gpu/simplicial/legacy".
  [[nodiscard]] std::string describe() const;
};

/// Parses a Table-III key ("expl legacy", "impl cholmod", "expl mkl f32",
/// "expl legacy sp", "expl hybrid sp f32", ...) back into its axis tuple.
/// Throws std::invalid_argument for unknown keys.
ApproachAxes parse_axes(std::string_view key);

// ---------------------------------------------------------------------------
// Legacy Approach alias
// ---------------------------------------------------------------------------

/// The nine dual-operator approaches of Table III — kept as a compatibility
/// alias over ApproachAxes. The "mkl" and "cholmod" names refer to the
/// stand-in backends: supernodal (Schur-capable, no factor export — like
/// MKL PARDISO) and simplicial (factor export — like CHOLMOD).
enum class Approach {
  ImplMkl,      ///< implicit, supernodal solver on CPU
  ImplCholmod,  ///< implicit, simplicial solver on CPU
  ImplLegacy,   ///< implicit on GPU, legacy sparse API, simplicial factors
  ImplModern,   ///< implicit on GPU, modern sparse API, simplicial factors
  ExplMkl,      ///< explicit via augmented Schur complement on CPU
  ExplCholmod,  ///< explicit via factor extraction + TRSM on CPU
  ExplLegacy,   ///< explicit assembly on GPU, legacy sparse API
  ExplModern,   ///< explicit assembly on GPU, modern sparse API
  ExplHybrid,   ///< assembly like ExplMkl on CPU, application on GPU
};

const char* to_string(Approach a);
std::vector<Approach> all_approaches();

/// The axis tuple an Approach enumerator is an alias for.
[[nodiscard]] ApproachAxes axes_of(Approach a);
/// Inverse of axes_of. Throws if the tuple has no legacy enumerator.
[[nodiscard]] Approach approach_of(const ApproachAxes& axes);
/// Parses a Table-III name ("expl legacy", ...). Throws on unknown names.
[[nodiscard]] Approach parse_approach(std::string_view name);

/// Capability queries — resolved from the DualOperatorRegistry metadata of
/// the implementation the approach aliases (see dualop_registry.hpp).
[[nodiscard]] bool uses_gpu(Approach a);
[[nodiscard]] bool is_explicit(Approach a);

// ---------------------------------------------------------------------------
// Explicit GPU assembly parameters (Table I)
// ---------------------------------------------------------------------------

/// Assembly path for the explicit GPU operator (Table I / Section IV-C).
enum class Path : std::uint8_t {
  Trsm,  ///< F = B (U^{-1} (U^{-T} B^T)): two TRSMs + SpMM
  Syrk,  ///< F = (U^{-T} B^T)^T (U^{-T} B^T): one TRSM + SYRK
};

/// Sparse vs dense triangular solve (cuSPARSE vs cuBLAS kernels).
enum class FactorStorage : std::uint8_t { Sparse, Dense };

/// Where the dual-vector scatter/gather runs (Section IV-C).
enum class SgLocation : std::uint8_t { Cpu, Gpu };

const char* to_string(Path p);
const char* to_string(FactorStorage s);
const char* to_string(SgLocation s);

/// The full Table-I parameter set for the explicit GPU assembly.
struct ExplicitGpuOptions {
  Path path = Path::Syrk;
  FactorStorage fwd_storage = FactorStorage::Dense;
  FactorStorage bwd_storage = FactorStorage::Dense;  ///< TRSM path only
  la::Layout fwd_order = la::Layout::ColMajor;
  la::Layout bwd_order = la::Layout::ColMajor;
  la::Layout rhs_order = la::Layout::RowMajor;
  SgLocation scatter_gather = SgLocation::Gpu;
  /// Number of CUDA streams (the paper uses one per OpenMP thread).
  int streams = 4;
  /// Footnote 1 of the paper: when F̃ᵢ is symmetric (SYRK path), store only
  /// one triangle and pack two opposite triangles of equally sized
  /// subdomains into a single allocation.
  bool symmetric_pack = false;

  [[nodiscard]] std::string describe() const;
};

// ---------------------------------------------------------------------------
// Dual-operator configuration
// ---------------------------------------------------------------------------

struct DualOpConfig {
  /// Legacy selector — consulted only while `key` is empty.
  Approach approach = Approach::ImplMkl;
  /// Registry key ("expl legacy", ...); when non-empty it overrides
  /// `approach`, so new code can select implementations — including ones
  /// with no legacy enumerator — by string or by axes via select().
  std::string key;
  ExplicitGpuOptions gpu;  ///< consumed by the Expl{Legacy,Modern} operators
  sparse::OrderingKind ordering = sparse::OrderingKind::MinimumDegree;

  /// Selects the implementation for an axis tuple (sets `key`).
  void select(const ApproachAxes& axes) { key = axes.key(); }

  /// The registry key this config resolves to.
  [[nodiscard]] std::string resolved_key() const;
  /// The axis tuple this config resolves to.
  [[nodiscard]] ApproachAxes axes() const;
};

}  // namespace feti::core
