// Quickstart: solve a 2D heat-transfer problem with Total FETI.
//
// Builds a structured triangle mesh of the unit square, decomposes it into
// 2x2 subdomains, assembles the Total FETI problem, and solves it with the
// explicit GPU dual operator using the auto-tuned (Table II) parameters.
// The FETI solution is compared against a monolithic direct solve.

#include <cmath>
#include <cstdio>

#include "core/autotune.hpp"
#include "core/feti_solver.hpp"

int main() {
  using namespace feti;

  // 1. Mesh and decomposition: 16x16 cells, quadratic triangles, split into
  //    a 2x2 grid of subdomains forming one cluster (= one virtual GPU).
  const idx cells = 16, splits = 2;
  mesh::Mesh m = mesh::make_grid_2d(cells, cells,
                                    mesh::ElementOrder::Quadratic);
  mesh::Decomposition dec = mesh::decompose_2d(m, cells, cells, splits,
                                               splits);
  std::printf("mesh: %d nodes, %d elements, %zu subdomains\n",
              m.num_nodes, m.num_elements(), dec.subdomains.size());

  // 2. Assemble the Total FETI problem (heat transfer, unit source,
  //    Dirichlet boundary on the x = 0 face enforced through B).
  decomp::FetiProblem problem =
      decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
  std::printf("dual dimension (lagrange multipliers): %d\n",
              problem.num_lambdas);

  // 3. Configure the solver along the orthogonal axes: explicit assembly of
  //    F̃ᵢ on the (virtual) GPU through the legacy sparse API, with the
  //    Table-II recommended assembly parameters filled in by the autotuner.
  core::ApproachAxes axes;
  axes.repr = core::Representation::Explicit;
  axes.device = core::ExecDevice::Gpu;
  axes.backend = sparse::Backend::Simplicial;
  axes.api = gpu::sparse::Api::Legacy;
  core::FetiSolverOptions opts;
  opts.dualop = core::recommend_config(axes, 2, problem.max_subdomain_dofs());
  opts.pcpg.rel_tolerance = 1e-9;
  std::printf("dual operator: %s\n", opts.dualop.resolved_key().c_str());
  std::printf("explicit assembly parameters: %s\n",
              opts.dualop.gpu.describe().c_str());

  // Execution resources are explicit: one context owning the virtual
  // device (configured from FETI_VGPU_*), its stream pool and workspace.
  gpu::ExecutionContext ctx(gpu::DeviceConfig::from_env());
  core::FetiSolver solver(problem, opts, &ctx);
  solver.prepare();
  core::FetiStepResult res = solver.solve_step();
  std::printf("PCPG: %d iterations, relative residual %.2e (%s)\n",
              res.pcpg_iterations, res.rel_residual,
              res.converged ? "converged" : "NOT converged");
  std::printf("timings: preprocess %.3f ms, dual-operator applications "
              "%.3f ms\n",
              res.preprocess_seconds * 1e3, res.apply_seconds * 1e3);

  // 4. Validate against the monolithic direct solve.
  fem::GlobalSystem global =
      fem::assemble_global(m, fem::Physics::HeatTransfer);
  std::vector<double> u_ref = fem::reference_solve(global);
  double err = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < u_ref.size(); ++i) {
    err = std::max(err, std::fabs(res.u[i] - u_ref[i]));
    scale = std::max(scale, std::fabs(u_ref[i]));
  }
  std::printf("max |u_feti - u_direct| = %.3e (relative %.3e)\n", err,
              err / scale);
  return err / scale < 1e-6 ? 0 : 1;
}
