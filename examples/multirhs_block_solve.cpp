// Batched multi-RHS lifecycle demo: several dual systems F λ = d (shared
// coarse constraint Gᵀλ = e, different right-hand sides — residual probes,
// deflation vectors, load-case studies) solved in lockstep through
// Pcpg::solve_many. Each PCPG iteration funnels all still-active systems
// through one DualOperator::apply(X, Y, nrhs) call, which an explicit CPU
// operator serves with a single SYMM per subdomain instead of nrhs SYMVs.
//
// The demo verifies that the batched solves match independent sequential
// solves, then compares wall-clock times.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/autotune.hpp"
#include "core/dualop_registry.hpp"
#include "core/pcpg.hpp"
#include "util/timer.hpp"

int main() {
  using namespace feti;

  const idx cells = 48, splits = 4;
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, mesh::ElementOrder::Linear);
  mesh::Decomposition dec =
      mesh::decompose_2d(m, cells, cells, splits, splits);
  decomp::FetiProblem problem =
      decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
  std::printf("heat 2D: %d DOFs, %d multipliers\n", problem.global_dofs,
              problem.num_lambdas);

  core::DualOpConfig cfg = core::recommend_config(
      core::parse_axes("expl mkl"), 2, problem.max_subdomain_dofs());
  auto op = core::make_dual_operator(problem, cfg);
  op->prepare();
  op->update_values();

  // One physical right-hand side plus scaled probes of it.
  const int nrhs = 6;
  std::vector<double> d0(static_cast<std::size_t>(problem.num_lambdas));
  op->compute_d(d0.data());
  std::vector<std::vector<double>> ds(nrhs, d0);
  for (int j = 0; j < nrhs; ++j)
    for (auto& v : ds[j]) v *= 1.0 + 0.25 * j;

  core::Projector projector(problem);
  core::PcpgOptions popts;
  popts.rel_tolerance = 1e-9;
  core::Pcpg pcpg(*op, projector, popts);

  Timer t_seq;
  std::vector<core::PcpgResult> sequential;
  sequential.reserve(nrhs);
  for (const auto& d : ds) sequential.push_back(pcpg.solve(d));
  const double seq_ms = t_seq.millis();

  Timer t_batch;
  std::vector<core::PcpgResult> batched = pcpg.solve_many(ds);
  const double batch_ms = t_batch.millis();

  double max_diff = 0.0;
  for (int j = 0; j < nrhs; ++j) {
    if (!batched[j].converged || !sequential[j].converged) {
      std::printf("system %d did not converge\n", j);
      return 1;
    }
    for (std::size_t i = 0; i < d0.size(); ++i)
      max_diff = std::max(max_diff, std::fabs(batched[j].lambda[i] -
                                              sequential[j].lambda[i]));
  }
  std::printf("%d systems: sequential %.2f ms, batched %.2f ms "
              "(max |Δλ| = %.2e)\n",
              nrhs, seq_ms, batch_ms, max_diff);
  return max_diff < 1e-7 ? 0 : 1;
}
