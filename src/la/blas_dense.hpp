#pragma once

// Dense BLAS-like kernels operating on layout-aware views.
//
// These are the CPU reference kernels; the virtual GPU library (src/gpu)
// wraps them with stream semantics and cuBLAS-style calling conventions.
// All kernels accept any combination of row-/col-major operands because the
// paper's Table-I parameter space explicitly sweeps memory orders.

#include "la/dense.hpp"

namespace feti::la {

// ---- level 1 ----

double dot(idx n, const double* x, const double* y);
void axpy(idx n, double alpha, const double* x, double* y);
void scal(idx n, double alpha, double* x);
double nrm2(idx n, const double* x);

// ---- level 2 ----

/// y = alpha * op(A) * x + beta * y.
void gemv(double alpha, ConstDenseView a, Trans trans, const double* x,
          double beta, double* y);

/// y = alpha * A * x + beta * y for symmetric A with only the `uplo`
/// triangle stored/referenced.
void symv(Uplo uplo, double alpha, ConstDenseView a, const double* x,
          double beta, double* y);

/// Solves op(A) x = b in place; A triangular (`uplo` names A's stored
/// triangle before transposition).
void trsv(Uplo uplo, Trans trans, ConstDenseView a, double* x);

// ---- level 3 ----

/// C = alpha * op(A) * op(B) + beta * C.
void gemm(double alpha, ConstDenseView a, Trans ta, ConstDenseView b,
          Trans tb, double beta, DenseView c);

/// C = alpha * A * B + beta * C for symmetric A (left side) with only the
/// `uplo` triangle stored/referenced — the multi-column companion of symv.
void symm(Uplo uplo, double alpha, ConstDenseView a, ConstDenseView b,
          double beta, DenseView c);

/// Symmetric rank-k update writing one triangle of C:
///   trans == No : C = alpha * A * A^T + beta * C   (A is n x k)
///   trans == Yes: C = alpha * A^T * A + beta * C   (A is k x n)
void syrk(Uplo uplo, Trans trans, double alpha, ConstDenseView a, double beta,
          DenseView c);

/// Solves op(A) * X = B in place of B (left side, unit diagonal not
/// supported — factors here always carry explicit diagonals).
void trsm(Uplo uplo, Trans trans, ConstDenseView a, DenseView b);

/// Dense Cholesky factorization A = L L^T in place (lower triangle holds L,
/// strict upper triangle is zeroed). Returns false if A is not positive
/// definite. Used for the FETI coarse problem G^T G.
bool potrf_lower(DenseView a);

/// Rank-revealing Cholesky with diagonal pivoting (LAPACK dpstrf shape):
/// P A Pᵀ = L Lᵀ for symmetric positive *semi*definite A. At each step the
/// largest remaining diagonal pivots; the factorization stops once that
/// pivot drops to `rel_tolerance` times the largest initial diagonal (or
/// below zero), and the achieved rank is returned. On exit the leading
/// rank×rank block of the lower triangle holds L in pivoted order and
/// `perm[k]` names the original index factored at step k (perm has size n).
/// Columns beyond the returned rank are numerically dependent on the kept
/// ones — block-PCPG deflates them instead of declaring breakdown.
idx potrf_pivoted_lower(DenseView a, idx* perm, double rel_tolerance);

// ---- mixed precision (fp32 storage) ----
//
// The apply-phase kernels of the mixed-precision explicit dual operators:
// fp32 instantiations of the same kernel bodies as the fp64 API above —
// identical traversals (so the single- and multi-RHS variants round
// identically), half the bytes streamed, twice the SIMD width. The fp64
// accumulation of the mixed-precision design happens at the dual-vector
// reduction (the gather into the fp64 cluster vector), not here.
// alpha/beta stay fp64 in the signature and are demoted on entry.

/// y = alpha * A * x + beta * y for symmetric fp32 A, one stored triangle.
void symv(Uplo uplo, double alpha, ConstDenseViewF32 a, const float* x,
          double beta, float* y);

/// y = alpha * op(A) * x + beta * y on fp32 storage.
void gemv(double alpha, ConstDenseViewF32 a, Trans trans, const float* x,
          double beta, float* y);

/// C = alpha * A * B + beta * C for symmetric fp32 A (left side).
void symm(Uplo uplo, double alpha, ConstDenseViewF32 a, ConstDenseViewF32 b,
          double beta, DenseViewF32 c);

/// C = alpha * op(A) * op(B) + beta * C on fp32 storage.
void gemm(double alpha, ConstDenseViewF32 a, Trans ta, ConstDenseViewF32 b,
          Trans tb, double beta, DenseViewF32 c);

}  // namespace feti::la
