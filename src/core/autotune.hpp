#pragma once

// Auto-configuration of the explicit-assembly parameters — the Table-II
// recommendation logic of the paper ("In our implementation, we have an
// option to auto-configure these parameters based on the problem that is
// being solved").

#include <string>

#include "core/config.hpp"
#include "gpu/context.hpp"

namespace feti::core {

/// Returns the recommended Table-II parameter set for a given CUDA API
/// generation, problem dimensionality, and subdomain size (DOFs).
ExplicitGpuOptions recommend_options(gpu::sparse::Api api, int dim,
                                     idx dofs_per_subdomain);

/// Batched-workload variant: `nrhs_hint` is the number of simultaneous
/// right-hand sides the application phase is expected to serve (block PCPG
/// / multi-load-case runs). More in-flight RHS favour more streams, up to
/// the per-device sweet spot.
ExplicitGpuOptions recommend_options(gpu::sparse::Api api, int dim,
                                     idx dofs_per_subdomain, int nrhs_hint);

/// Workload characteristics the precision recommendation consumes. All
/// fields are optional hints: zero/false means "unknown", which never
/// triggers a demotion to fp32.
struct WorkloadHint {
  /// Subdomain count and a dual-size estimate (λ per subdomain) — together
  /// they bound the explicit F̃ footprint: nsub × mλ² × sizeof(scalar).
  idx num_subdomains = 0;
  idx lambdas_per_subdomain = 0;
  /// Device memory available for the persistent F̃ blocks (0 = unknown).
  std::size_t memory_budget_bytes = 0;
  /// The caller knows the run is apply-dominated (many PCPG iterations /
  /// time steps streaming F̃ through SYMM): bandwidth is the bottleneck,
  /// so halving the streamed bytes wins even when memory would fit.
  bool bandwidth_bound = false;
  /// Largest material-coefficient contrast in the problem (max/min of the
  /// conductivity or Young's modulus across subdomains; 0 or 1 = uniform).
  /// Jumps degrade unpreconditioned PCPG, so they drive the preconditioner
  /// recommendation towards the scaled Dirichlet variant.
  double coefficient_jump = 0.0;
  /// Largest edge-length ratio of the subdomain bounding boxes (0 or 1 =
  /// isotropic). Strong anisotropy conditions the dual operator like a
  /// coefficient jump does.
  double aspect_ratio = 0.0;
  /// Fraction of subdomain DOFs touched by the gluing constraints
  /// (boundary DOFs / total DOFs, i.e. the column support of B̃ᵢ over
  /// ndof). 0 = unknown, which never triggers the sparsity-aware
  /// assembly; small fractions (interior-heavy subdomains) favour the
  /// " sp" keys, whose solve panel shrinks from the m dual columns to the
  /// nb boundary columns.
  double boundary_fraction = 0.0;
};

/// Recommends a preconditioner registry key for a workload: well-conditioned
/// uniform problems keep "none" (every M⁻¹ application costs a second pass
/// over the subdomain boundaries per iteration), mild heterogeneity pays for
/// the cheap lumped preconditioner, and strong coefficient jumps or
/// anisotropy (the regimes where unpreconditioned PCPG iteration counts
/// blow up) select the stiffness-scaled Dirichlet preconditioner. With
/// `gpu` set, the returned key carries the " gpu" suffix so M⁻¹ is applied
/// device-side next to a GPU dual operator.
std::string recommend_preconditioner(const WorkloadHint& workload,
                                     bool gpu = false);

/// One-stop recommendation for an axis tuple: selects the implementation
/// (DualOpConfig::key) and, for the GPU-backed axes, fills the Table-II
/// assembly parameters for that tuple's sparse API generation. CPU axes
/// keep the defaults (the explicit CPU paths have no Table-I knobs).
///
/// `topology` is the device-topology hint: with num_devices >= 2 the
/// explicit GPU axes resolve to the largest registered sharded variant
/// ("expl legacy x2" / "x4") that the topology can feed, and a non-zero
/// streams_per_device overrides the worker-stream count (the paper uses
/// one stream per OpenMP thread).
///
/// `workload` feeds the precision choice for the explicit families: when
/// the fp64 F̃ footprint would overflow the stated memory budget (per
/// shard, after the topology split) or the workload is declared
/// bandwidth-bound, the fp32 storage variant (" f32" key) is selected —
/// fp32 halves both the footprint and the bytes streamed per apply. A
/// caller that pinned the precision on `axes` keeps it.
DualOpConfig recommend_config(const ApproachAxes& axes, int dim,
                              idx dofs_per_subdomain, int nrhs_hint = 1,
                              const gpu::DeviceTopology& topology = {},
                              const WorkloadHint& workload = {});

/// Key-based overload: resolves the axes through the registry metadata
/// (falling back to the Table-III key grammar for unregistered spellings)
/// and keeps `key` itself selected. Use this when iterating registry keys:
/// sharded variants share their axis tuple with the single-device base
/// implementation, so the axes alone cannot round-trip the key.
DualOpConfig recommend_config(std::string_view key, int dim,
                              idx dofs_per_subdomain, int nrhs_hint = 1,
                              const gpu::DeviceTopology& topology = {});

}  // namespace feti::core
