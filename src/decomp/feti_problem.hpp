#pragma once

// The assembled Total FETI problem: everything the dual-operator
// implementations and the PCPG solver need, per subdomain and cluster-wide.

#include <cstdint>
#include <vector>

#include "decomp/kernel.hpp"
#include "decomp/lagrange.hpp"
#include "decomp/regularization.hpp"
#include "fem/assembler.hpp"
#include "mesh/grid.hpp"

namespace feti::decomp {

/// How dual operators detect per-step stiffness changes in update_values()
/// (the time-step caching contract; see docs/ARCHITECTURE.md):
///
///  - Hashed (default): each update additionally hashes the K_reg values of
///    every owned subdomain and refreshes on any mismatch. Safe for callers
///    that mutate values in place without marking; costs one O(nnz) pass
///    per subdomain per step.
///  - Versioned: operators trust the per-subdomain values-version counters
///    alone (bumped by mark_values_changed). Zero per-step detection cost,
///    but an unmarked in-place mutation of K_reg is NOT picked up.
enum class ValueTracking {
  Versioned,
  Hashed,
};

struct FetiSubdomain {
  fem::SubdomainSystem sys;    ///< K (singular), f, local Dirichlet DOFs
  la::Csr k_reg;               ///< regularized SPD stiffness
  la::DenseMatrix r;           ///< orthonormal kernel basis (ndof x rdim)
  la::Csr b;                   ///< local gluing matrix B̃ᵢ
  std::vector<idx> lm_l2c;     ///< local λ -> cluster λ
  std::vector<idx> fixing_dofs;
  std::vector<idx> dof_l2g;    ///< local DOF -> global DOF
  /// Numeric-values generation of K/K_reg; operators compare their stored
  /// copy against this in update_values() and skip clean subdomains. Starts
  /// at 1 so a freshly prepared operator (stored version 0) always
  /// refreshes its first step.
  std::uint64_t values_version = 1;

  [[nodiscard]] idx ndof() const { return sys.ndof; }
  [[nodiscard]] idx num_local_lambdas() const { return b.nrows(); }
  [[nodiscard]] idx kernel_dim() const { return r.cols(); }
};

struct FetiProblem {
  fem::Physics physics = fem::Physics::HeatTransfer;
  int dim = 2;
  idx num_lambdas = 0;          ///< cluster-wide dual dimension
  idx global_dofs = 0;
  std::vector<double> c;        ///< constraint right-hand side
  std::vector<FetiSubdomain> sub;
  /// Change-detection policy consumed by DualOperator::update_values().
  ValueTracking tracking = ValueTracking::Hashed;

  /// Declares that subdomain `s`'s stiffness values (K/K_reg) were mutated
  /// in place; the next update_values() of every operator on this problem
  /// refreshes exactly the marked subdomains. Only K matters here: the
  /// right-hand side f and the constraint c are read fresh every step and
  /// need no marking. Pattern changes are not supported — rebuild the
  /// problem (and the operators) instead.
  void mark_values_changed(idx s) {
    check(s >= 0 && s < num_subdomains(),
          "mark_values_changed: subdomain index out of range");
    ++sub[static_cast<std::size_t>(s)].values_version;
  }
  /// Whole-problem variant: marks every subdomain dirty.
  void mark_values_changed() {
    for (auto& s : sub) ++s.values_version;
  }

  [[nodiscard]] idx num_subdomains() const {
    return static_cast<idx>(sub.size());
  }
  [[nodiscard]] idx total_kernel_dim() const {
    idx t = 0;
    for (const auto& s : sub) t += s.kernel_dim();
    return t;
  }
  /// Largest subdomain primal dimension (the paper's per-subdomain DOFs).
  [[nodiscard]] idx max_subdomain_dofs() const {
    idx t = 0;
    for (const auto& s : sub) t = std::max(t, s.ndof());
    return t;
  }
};

/// Assembles the complete FETI problem from a mesh decomposition.
FetiProblem build_feti_problem(const mesh::Decomposition& dec,
                               fem::Physics physics,
                               const fem::Material& material = {},
                               Redundancy redundancy = Redundancy::Full);

/// Per-subdomain-material variant: materials[s] assembles subdomain s
/// (size must equal the subdomain count). This is the route to
/// heterogeneous-coefficient benchmarks — see decomp/heterogeneous.hpp for
/// the checkerboard generator that exercises the preconditioners.
FetiProblem build_feti_problem(const mesh::Decomposition& dec,
                               fem::Physics physics,
                               const std::vector<fem::Material>& materials,
                               Redundancy redundancy = Redundancy::Full);

/// Multi-step support: scales all stiffness values by `factor` (pattern
/// unchanged), emulating material coefficients that change between time
/// steps; K_reg is updated consistently. The right-hand side is scaled too,
/// so the exact solution is step-invariant (handy for validation). Marks
/// every subdomain's values changed.
void scale_step(FetiProblem& p, double factor);

/// Single-subdomain analogue of scale_step: scales one subdomain's K,
/// K_reg, and f by `factor` and marks only that subdomain changed — the
/// building block of localized material updates (operators refresh exactly
/// this subdomain on the next update_values()).
void scale_subdomain(FetiProblem& p, idx sub, double factor);

// FNV-1a building blocks behind the change-detection hashes, exposed so
// other layers fingerprint their own state with the same machinery (the
// service layer keys its operator pool with these). One 64-bit word per
// round; chain with h = fnv1a_word(h, w) starting from kFnv1aOffset.
inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;
[[nodiscard]] inline constexpr std::uint64_t fnv1a_word(std::uint64_t h,
                                                        std::uint64_t word) {
  return (h ^ word) * kFnv1aPrime;
}

/// FNV-1a content hash of a subdomain's K_reg numeric values — the
/// ValueTracking::Hashed change detector. Pattern and B are fixed by the
/// lifecycle contract, and f never feeds cached operator state, so the
/// K_reg value array is the complete cache key.
[[nodiscard]] std::uint64_t k_values_hash(const FetiSubdomain& s);

/// Gathers the subdomain solution vectors into a global solution, averaging
/// the (identical, up to solver tolerance) interface copies.
std::vector<double> gather_solution(
    const FetiProblem& p, const std::vector<std::vector<double>>& u_local);

}  // namespace feti::decomp
