#pragma once

// Construction of the Total FETI gluing matrix B.
//
// Two kinds of rows (paper Section II): equality constraints between
// subdomain copies of shared interface DOFs (u_i - u_j = 0), and Dirichlet
// rows appended to B so the boundary conditions are enforced through
// Lagrange multipliers, keeping every subdomain matrix singular.
//
// Each subdomain stores only the multipliers connected to it (the local
// gluing matrix B̃ᵢ) together with a local-to-cluster multiplier map, which
// is what the scatter/gather operations in the solver use.

#include <vector>

#include "la/csr.hpp"
#include "mesh/grid.hpp"

namespace feti::decomp {

/// How interface DOFs shared by k > 2 subdomains are glued.
enum class Redundancy {
  Full,           ///< all k(k-1)/2 pairwise constraints (ESPRESO default)
  NonRedundant,   ///< k-1 chain constraints
};

const char* to_string(Redundancy r);

struct Gluing {
  idx num_lambdas = 0;
  /// Per subdomain: local gluing matrix B̃ᵢ (local λ count x ndof_i).
  std::vector<la::Csr> b;
  /// Per subdomain: local λ row -> cluster λ index (ascending).
  std::vector<std::vector<idx>> lm_l2c;
  /// Constraint right-hand side c (zeros for interface rows, Dirichlet
  /// values for Dirichlet rows; homogeneous here).
  std::vector<double> c;
  /// Number of Dirichlet rows (they follow all interface rows).
  idx num_dirichlet_rows = 0;
};

/// Builds the gluing for a decomposition. `dofs_per_node` comes from the
/// physics (1 for heat, dim for elasticity). Dirichlet DOFs are read from
/// each subdomain's local mesh.
Gluing build_gluing(const mesh::Decomposition& dec, int dofs_per_node,
                    Redundancy redundancy = Redundancy::Full);

}  // namespace feti::decomp
