#include "fem/shape.hpp"

#include <algorithm>

namespace feti::fem {

using mesh::ElementType;

void shape_values(ElementType t, const double* xi, double* n) {
  const double x = xi[0], y = xi[1];
  switch (t) {
    case ElementType::Tri3: {
      n[0] = 1.0 - x - y;
      n[1] = x;
      n[2] = y;
      return;
    }
    case ElementType::Tri6: {
      const double l0 = 1.0 - x - y, l1 = x, l2 = y;
      n[0] = l0 * (2 * l0 - 1);
      n[1] = l1 * (2 * l1 - 1);
      n[2] = l2 * (2 * l2 - 1);
      n[3] = 4 * l0 * l1;
      n[4] = 4 * l1 * l2;
      n[5] = 4 * l2 * l0;
      return;
    }
    case ElementType::Tet4: {
      const double z = xi[2];
      n[0] = 1.0 - x - y - z;
      n[1] = x;
      n[2] = y;
      n[3] = z;
      return;
    }
    case ElementType::Tet10: {
      const double z = xi[2];
      const double l0 = 1.0 - x - y - z, l1 = x, l2 = y, l3 = z;
      n[0] = l0 * (2 * l0 - 1);
      n[1] = l1 * (2 * l1 - 1);
      n[2] = l2 * (2 * l2 - 1);
      n[3] = l3 * (2 * l3 - 1);
      n[4] = 4 * l0 * l1;
      n[5] = 4 * l1 * l2;
      n[6] = 4 * l0 * l2;
      n[7] = 4 * l0 * l3;
      n[8] = 4 * l1 * l3;
      n[9] = 4 * l2 * l3;
      return;
    }
  }
  FETI_ASSERT(false, "shape_values: unknown element type");
}

void shape_gradients(ElementType t, const double* xi, double* dn) {
  const double x = xi[0], y = xi[1];
  switch (t) {
    case ElementType::Tri3: {
      const double g[6] = {-1, -1, 1, 0, 0, 1};
      std::copy(g, g + 6, dn);
      return;
    }
    case ElementType::Tri6: {
      const double l0 = 1.0 - x - y, l1 = x, l2 = y;
      // dLi/d(x,y): L0 -> (-1,-1), L1 -> (1,0), L2 -> (0,1).
      auto set = [&](int a, double gx, double gy) {
        dn[2 * a] = gx;
        dn[2 * a + 1] = gy;
      };
      set(0, -(4 * l0 - 1), -(4 * l0 - 1));
      set(1, 4 * l1 - 1, 0.0);
      set(2, 0.0, 4 * l2 - 1);
      set(3, 4 * (l0 - l1), -4 * l1);
      set(4, 4 * l2, 4 * l1);
      set(5, -4 * l2, 4 * (l0 - l2));
      return;
    }
    case ElementType::Tet4: {
      const double g[12] = {-1, -1, -1, 1, 0, 0, 0, 1, 0, 0, 0, 1};
      std::copy(g, g + 12, dn);
      return;
    }
    case ElementType::Tet10: {
      const double z = xi[2];
      const double l0 = 1.0 - x - y - z, l1 = x, l2 = y, l3 = z;
      auto set = [&](int a, double gx, double gy, double gz) {
        dn[3 * a] = gx;
        dn[3 * a + 1] = gy;
        dn[3 * a + 2] = gz;
      };
      const double d0 = 4 * l0 - 1;
      set(0, -d0, -d0, -d0);
      set(1, 4 * l1 - 1, 0, 0);
      set(2, 0, 4 * l2 - 1, 0);
      set(3, 0, 0, 4 * l3 - 1);
      set(4, 4 * (l0 - l1), -4 * l1, -4 * l1);       // mid(0,1)
      set(5, 4 * l2, 4 * l1, 0);                     // mid(1,2)
      set(6, -4 * l2, 4 * (l0 - l2), -4 * l2);       // mid(0,2)
      set(7, -4 * l3, -4 * l3, 4 * (l0 - l3));       // mid(0,3)
      set(8, 4 * l3, 0, 4 * l1);                     // mid(1,3)
      set(9, 0, 4 * l3, 4 * l2);                     // mid(2,3)
      return;
    }
  }
  FETI_ASSERT(false, "shape_gradients: unknown element type");
}

}  // namespace feti::fem
