// Tests for the extension features and hardening paths: symmetric triangle
// packing (paper footnote 1), virtual-device stress/regression cases,
// dense POTRF, alternative orderings end-to-end, and failure reporting.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "core/autotune.hpp"
#include "core/feti_solver.hpp"
#include "la/blas_dense.hpp"
#include "test_helpers.hpp"

namespace feti {
namespace {

using fem::Physics;
using mesh::ElementOrder;

gpu::DeviceConfig quiet_config(std::size_t mem = 512ull << 20) {
  gpu::DeviceConfig cfg;
  cfg.worker_threads = 4;
  cfg.launch_latency_us = 0.0;
  cfg.memory_bytes = mem;
  return cfg;
}

decomp::FetiProblem heat2d_problem(idx cells = 8, idx splits = 2) {
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
  return decomp::build_feti_problem(dec, Physics::HeatTransfer);
}

// ---------------------------------------------------------------------------
// Symmetric triangle packing (footnote 1)
// ---------------------------------------------------------------------------

TEST(SymmetricPack, ApplyMatchesUnpacked) {
  decomp::FetiProblem p = heat2d_problem(8, 2);
  gpu::ExecutionContext dev(quiet_config());

  auto run = [&](bool pack) {
    core::DualOpConfig cfg;
    cfg.approach = core::Approach::ExplLegacy;
    cfg.gpu = core::recommend_options(gpu::sparse::Api::Legacy, 2, 1000);
    cfg.gpu.symmetric_pack = pack;
    auto op = core::make_dual_operator(p, cfg, &dev);
    op->prepare();
    op->update_values();
    Rng rng(5);
    std::vector<double> x(static_cast<std::size_t>(p.num_lambdas));
    for (auto& v : x) v = rng.uniform(-1, 1);
    std::vector<double> y(x.size(), 0.0);
    op->apply(x.data(), y.data());
    return y;
  };

  const auto y_plain = run(false);
  const auto y_packed = run(true);
  ASSERT_EQ(y_plain.size(), y_packed.size());
  for (std::size_t i = 0; i < y_plain.size(); ++i)
    EXPECT_NEAR(y_packed[i], y_plain[i], 1e-11);
}

TEST(SymmetricPack, ReducesDeviceMemory) {
  decomp::FetiProblem p = heat2d_problem(8, 2);  // 4 equal subdomains
  auto measure = [&](bool pack) {
    gpu::ExecutionContext dev(quiet_config());
    core::DualOpConfig cfg;
    cfg.approach = core::Approach::ExplLegacy;
    cfg.gpu = core::recommend_options(gpu::sparse::Api::Legacy, 2, 1000);
    cfg.gpu.symmetric_pack = pack;
    auto op = core::make_dual_operator(p, cfg, &dev);
    op->prepare();
    return dev.device().memory_used();
  };
  const std::size_t plain = measure(false);
  const std::size_t packed = measure(true);
  // Four equal m x m matrices (4m^2 doubles) collapse into two packed
  // m(m+1) buffers — the F̃ storage nearly halves.
  EXPECT_LT(packed, plain);
}

TEST(SymmetricPack, EndToEndSolveStaysCorrect) {
  decomp::FetiProblem p = heat2d_problem(6, 2);
  gpu::ExecutionContext dev(quiet_config());
  core::FetiSolverOptions opts;
  opts.dualop.approach = core::Approach::ExplLegacy;
  opts.dualop.gpu = core::recommend_options(gpu::sparse::Api::Legacy, 2, 500);
  opts.dualop.gpu.symmetric_pack = true;
  opts.pcpg.rel_tolerance = 1e-10;
  core::FetiSolver solver(p, opts, &dev);
  solver.prepare();
  auto res = solver.solve_step();
  ASSERT_TRUE(res.converged);

  mesh::Mesh m = mesh::make_grid_2d(6, 6, ElementOrder::Linear);
  auto u_ref = fem::reference_solve(
      fem::assemble_global(m, Physics::HeatTransfer));
  for (std::size_t i = 0; i < u_ref.size(); ++i)
    EXPECT_NEAR(res.u[i], u_ref[i], 1e-7);
}

TEST(SymmetricPack, IgnoredForTrsmPath) {
  // The TRSM path produces a full (non-triangular) F̃; packing must be a
  // no-op there and results must stay correct.
  decomp::FetiProblem p = heat2d_problem(6, 2);
  gpu::ExecutionContext dev(quiet_config());
  core::DualOpConfig cfg;
  cfg.approach = core::Approach::ExplLegacy;
  cfg.gpu = core::recommend_options(gpu::sparse::Api::Legacy, 2, 500);
  cfg.gpu.path = core::Path::Trsm;
  cfg.gpu.symmetric_pack = true;
  auto op = core::make_dual_operator(p, cfg, &dev);
  op->prepare();
  op->update_values();

  core::DualOpConfig ref_cfg;
  ref_cfg.approach = core::Approach::ImplCholmod;
  auto ref = core::make_dual_operator(p, ref_cfg, nullptr);
  ref->prepare();
  ref->update_values();

  std::vector<double> x(static_cast<std::size_t>(p.num_lambdas), 1.0);
  std::vector<double> y(x.size()), y_ref(x.size());
  op->apply(x.data(), y.data());
  ref->apply(x.data(), y_ref.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], y_ref[i], 1e-9);
}

// ---------------------------------------------------------------------------
// Virtual device stress / regression
// ---------------------------------------------------------------------------

TEST(DeviceStress, CrossStreamEventWithSingleWorkerDoesNotDeadlock) {
  // Regression: a stream waiting on an event must not occupy the (only)
  // worker thread, otherwise the producing stream can never run.
  gpu::DeviceConfig cfg = quiet_config();
  cfg.worker_threads = 1;
  gpu::Device dev(cfg);
  gpu::Stream a = dev.create_stream(), b = dev.create_stream();
  std::atomic<int> order{0};
  int saw_a = -1, saw_b = -1;
  a.submit([&] { saw_a = order.fetch_add(1); });
  gpu::Event e = a.record();
  b.wait(e);
  b.submit([&] { saw_b = order.fetch_add(1); });
  dev.synchronize();
  EXPECT_EQ(saw_a, 0);
  EXPECT_EQ(saw_b, 1);
}

TEST(DeviceStress, ManyStreamsWaitOnOneEvent) {
  gpu::DeviceConfig cfg = quiet_config();
  cfg.worker_threads = 2;
  gpu::Device dev(cfg);
  gpu::Stream producer = dev.create_stream();
  std::atomic<bool> released{false};
  producer.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    released = true;
  });
  gpu::Event e = producer.record();
  std::vector<gpu::Stream> consumers;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    consumers.push_back(dev.create_stream());
    consumers.back().wait(e);
    consumers.back().submit([&] {
      EXPECT_TRUE(released.load());
      ran.fetch_add(1);
    });
  }
  dev.synchronize();
  EXPECT_EQ(ran.load(), 8);
}

TEST(DeviceStress, TempAllocatorConcurrentChurn) {
  gpu::Device dev(quiet_config(64ull << 20));
  dev.init_temp_pool();
  auto& temp = dev.temp();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 500; ++i) {
        const std::size_t bytes =
            static_cast<std::size_t>(rng.integer(64, 1 << 16));
        void* p = temp.alloc(bytes);
        if (p == nullptr) failures.fetch_add(1);
        std::this_thread::yield();
        temp.free(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(temp.in_use(), 0u);
}

// ---------------------------------------------------------------------------
// Dense POTRF
// ---------------------------------------------------------------------------

TEST(Potrf, FactorReproducesMatrix) {
  const idx n = 12;
  la::Csr spd = testing::random_spd(n, 0.5, 99);
  la::DenseMatrix a = spd.to_dense();
  la::DenseMatrix l = spd.to_dense();
  ASSERT_TRUE(la::potrf_lower(l.view()));
  la::DenseMatrix prod(n, n);
  la::gemm(1.0, l.cview(), la::Trans::No, l.cview(), la::Trans::Yes, 0.0,
           prod.view());
  EXPECT_LT(la::max_abs_diff(prod.cview(), a.cview()), 1e-10);
  // Strict upper triangle must be zeroed.
  for (idx r = 0; r < n; ++r)
    for (idx c = r + 1; c < n; ++c) EXPECT_EQ(l.at(r, c), 0.0);
}

TEST(Potrf, RejectsIndefiniteMatrix) {
  la::DenseMatrix a(3, 3);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = -2.0;
  a.at(2, 2) = 1.0;
  EXPECT_FALSE(la::potrf_lower(a.view()));
}

// ---------------------------------------------------------------------------
// Alternative orderings & failure reporting
// ---------------------------------------------------------------------------

TEST(Orderings, RcmEndToEndSolveMatchesReference) {
  decomp::FetiProblem p = heat2d_problem(6, 2);
  core::FetiSolverOptions opts;
  opts.dualop.approach = core::Approach::ExplMkl;
  opts.dualop.ordering = sparse::OrderingKind::RCM;
  opts.pcpg.rel_tolerance = 1e-10;
  core::FetiSolver solver(p, opts, nullptr);
  solver.prepare();
  auto res = solver.solve_step();
  ASSERT_TRUE(res.converged);
  mesh::Mesh m = mesh::make_grid_2d(6, 6, ElementOrder::Linear);
  auto u_ref = fem::reference_solve(
      fem::assemble_global(m, Physics::HeatTransfer));
  for (std::size_t i = 0; i < u_ref.size(); ++i)
    EXPECT_NEAR(res.u[i], u_ref[i], 1e-7);
}

TEST(Pcpg, ReportsNonConvergenceHonestly) {
  decomp::FetiProblem p = heat2d_problem(10, 2);
  core::FetiSolverOptions opts;
  opts.dualop.approach = core::Approach::ImplMkl;
  opts.pcpg.rel_tolerance = 1e-14;
  opts.pcpg.max_iterations = 2;  // far too few
  core::FetiSolver solver(p, opts, nullptr);
  solver.prepare();
  auto res = solver.solve_step();
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.pcpg_iterations, 2);
  EXPECT_GT(res.rel_residual, 1e-14);
}

TEST(FetiSolver, SolveBeforePrepareThrows) {
  decomp::FetiProblem p = heat2d_problem(4, 2);
  core::FetiSolverOptions opts;
  opts.dualop.approach = core::Approach::ImplMkl;
  core::FetiSolver solver(p, opts, nullptr);
  EXPECT_THROW(solver.solve_step(), std::invalid_argument);
}

TEST(Timings, DualOperatorPhasesAreRecorded) {
  decomp::FetiProblem p = heat2d_problem(6, 2);
  core::FetiSolverOptions opts;
  opts.dualop.approach = core::Approach::ImplMkl;
  core::FetiSolver solver(p, opts, nullptr);
  solver.prepare();
  auto res = solver.solve_step();
  auto& reg = solver.dual_operator().timings();
  EXPECT_EQ(reg.get("prepare").count, 1);
  EXPECT_GE(reg.get("update_values").count, 1);
  EXPECT_GE(reg.get("apply").count, res.pcpg_iterations);
  EXPECT_GE(res.step_seconds, res.preprocess_seconds);
}

TEST(StreamsOption, SingleStreamExplicitGpuStillCorrect) {
  decomp::FetiProblem p = heat2d_problem(6, 2);
  gpu::ExecutionContext dev(quiet_config());
  core::DualOpConfig cfg;
  cfg.approach = core::Approach::ExplLegacy;
  cfg.gpu = core::recommend_options(gpu::sparse::Api::Legacy, 2, 500);
  cfg.gpu.streams = 1;
  auto op = core::make_dual_operator(p, cfg, &dev);
  op->prepare();
  op->update_values();

  core::DualOpConfig ref_cfg;
  ref_cfg.approach = core::Approach::ImplMkl;
  auto ref = core::make_dual_operator(p, ref_cfg, nullptr);
  ref->prepare();
  ref->update_values();

  std::vector<double> x(static_cast<std::size_t>(p.num_lambdas), 0.5);
  std::vector<double> y(x.size()), y_ref(x.size());
  op->apply(x.data(), y.data());
  ref->apply(x.data(), y_ref.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], y_ref[i], 1e-9);
}

}  // namespace
}  // namespace feti
