// Reproduces Fig. 3 of the paper: explicit assembly time per subdomain as
// a function of subdomain size, comparing sparse vs dense factor storage
// under both API generations (heat transfer 3D, quadratic tetrahedra, SYRK
// path). Paper shapes: the modern generic sparse TRSM is far slower than
// everything else (dense always wins there), while under the legacy API
// sparse storage wins for large subdomains.

#include "common.hpp"

using namespace feti;
using namespace feti::bench;
using core::FactorStorage;

int main() {
  gpu::ExecutionContext& device = shared_context();
  const std::vector<idx> cells = {1, 2, 3, 5};

  std::printf("=== Fig. 3: factor storage in explicit assembly (heat 3D, "
              "quadratic tets, SYRK path) — time per subdomain [ms] ===\n");
  Table table({"DOFs/subdomain", "sparse/modern", "dense/modern",
               "sparse/legacy", "dense/legacy"});
  bool modern_dense_wins = true;
  bool modern_sparse_slowest = true;
  for (idx c : cells) {
    BuiltProblem bp = build_problem(3, fem::Physics::HeatTransfer, c,
                                    mesh::ElementOrder::Quadratic);
    std::vector<std::string> row{std::to_string(bp.dofs_per_subdomain)};
    double t_modern_sparse = 0, t_modern_dense = 0, max_legacy = 0;
    for (auto api : {gpu::sparse::Api::Modern, gpu::sparse::Api::Legacy}) {
      for (FactorStorage st : {FactorStorage::Sparse, FactorStorage::Dense}) {
        core::DualOpConfig cfg;
        cfg.approach = api == gpu::sparse::Api::Legacy
                           ? core::Approach::ExplLegacy
                           : core::Approach::ExplModern;
        cfg.gpu = core::recommend_options(api, 3, bp.dofs_per_subdomain);
        cfg.gpu.path = core::Path::Syrk;
        cfg.gpu.fwd_storage = st;
        cfg.gpu.bwd_storage = st;
        cfg.gpu.fwd_order = st == FactorStorage::Sparse
                                ? la::Layout::RowMajor
                                : la::Layout::ColMajor;
        cfg.gpu.rhs_order = la::Layout::RowMajor;
        const double ms =
            measure_dualop(bp.problem, cfg, device, 3, 0.03).preprocess_ms;
        row.push_back(Table::num(ms, 4));
        if (api == gpu::sparse::Api::Modern) {
          (st == FactorStorage::Sparse ? t_modern_sparse : t_modern_dense) =
              ms;
        } else if (st == FactorStorage::Sparse) {
          max_legacy = ms;  // legacy sparse, for the API comparison below
        }
      }
    }
    table.add_row(row);
    if (t_modern_dense > 1.1 * t_modern_sparse) modern_dense_wins = false;
    // Compare the two sparse TRSM implementations at the largest size.
    if (c == cells.back()) modern_sparse_slowest = t_modern_sparse > max_legacy;
  }
  table.print();
  shape_check("with the modern API, dense storage does not lose to the "
              "underperforming generic sparse TRSM",
              modern_dense_wins);
  shape_check("the modern generic sparse TRSM is slower than the legacy "
              "level-scheduled one for large subdomains",
              modern_sparse_slowest);
  return 0;
}
