// Tests for the block-PCPG path (shared Krylov panel, rank-revealing Gram
// deflation), cross-step Krylov recycling, and the solver-loop reporting
// fixes: consistent breakdown state in batches, the scaled zero-RHS floor,
// and the exhaustive PreconditionerKind shim.

#include <gtest/gtest.h>

#include <cmath>

#include "core/autotune.hpp"
#include "core/feti_solver.hpp"
#include "la/blas_dense.hpp"
#include "test_helpers.hpp"

namespace feti {
namespace {

using core::BlockPcpgOptions;
using core::Pcpg;
using core::PcpgOptions;
using core::PcpgResult;
using core::Projector;
using fem::Physics;
using mesh::ElementOrder;

decomp::FetiProblem heat2d_problem(idx cells = 8, idx splits = 2) {
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
  return decomp::build_feti_problem(dec, Physics::HeatTransfer);
}

gpu::DeviceConfig quiet_config(std::size_t mem = 512ull << 20) {
  gpu::DeviceConfig cfg;
  cfg.worker_threads = 4;
  cfg.launch_latency_us = 0.0;
  cfg.memory_bytes = mem;
  return cfg;
}

// ---------------------------------------------------------------------------
// Breakdown reporting (lockstep batches and the block Gram panel)
// ---------------------------------------------------------------------------

/// Reflection operator F = I − 2 v vᵀ with v a unit vector in range(P):
/// indefinite, with {v}ᵀ and span{v} as exact invariant subspaces even
/// under the (orthogonal) projector — a right-hand side orthogonal to v
/// iterates on the identity and converges in one step, while a right-hand
/// side along v hits pᵀFp = −1 on the first iteration. Lets one batch
/// carry a healthy and a broken system side by side.
class ReflectionOp final : public core::DualOperator {
 public:
  ReflectionOp(const decomp::FetiProblem& p, std::vector<double> v)
      : core::DualOperator(p), v_(std::move(v)) {}
  void prepare() override {}
  void update_values() override {}
  void kplus_solve(idx, const double*, double*) const override {}
  [[nodiscard]] const char* name() const override { return "reflection"; }

 protected:
  void apply_one(const double* x, double* y) override {
    const idx n = p_.num_lambdas;
    const double c = 2.0 * la::dot(n, v_.data(), x);
    for (idx i = 0; i < n; ++i) y[i] = x[i] - c * v_[i];
  }

 private:
  std::vector<double> v_;
};

struct ReflectionSetup {
  decomp::FetiProblem problem;
  std::vector<double> v;        ///< unit vector in range(P)
  std::vector<double> healthy;  ///< rhs with projected residual ⊥ v
  std::vector<double> broken;   ///< rhs with projected residual along v
};

ReflectionSetup reflection_setup() {
  ReflectionSetup s{heat2d_problem(6, 2), {}, {}, {}};
  const idx n = s.problem.num_lambdas;
  Projector projector(s.problem);
  std::vector<double> z = testing::random_vector(n, 17);
  s.v.resize(static_cast<std::size_t>(n));
  projector.apply(z.data(), s.v.data());
  const double vn = la::nrm2(n, s.v.data());
  for (auto& x : s.v) x /= vn;

  std::vector<double> u(static_cast<std::size_t>(n));
  std::vector<double> x = testing::random_vector(n, 31);
  projector.apply(x.data(), u.data());
  const double uv = la::dot(n, s.v.data(), u.data());
  s.healthy.resize(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) s.healthy[i] = u[i] - uv * s.v[i];
  s.broken = s.v;
  return s;
}

TEST(PcpgBreakdown, BatchReportsConsistentStateAndCountsSpentApply) {
  ReflectionSetup s = reflection_setup();
  ReflectionOp op(s.problem, s.v);
  Projector projector(s.problem);
  PcpgOptions popts;
  popts.rel_tolerance = 1e-10;
  Pcpg pcpg(op, projector, popts);

  std::vector<PcpgResult> res = pcpg.solve_many({s.healthy, s.broken});
  ASSERT_EQ(res.size(), 2u);

  // The broken system spent one F application discovering pᵀFp < 0; that
  // iteration must be counted, and the reported residual must describe the
  // state the λ/α it returns are in (untouched by the failed step → the
  // relative residual is exactly the initial 1).
  EXPECT_FALSE(res[1].converged);
  EXPECT_EQ(res[1].iterations, 1);
  EXPECT_DOUBLE_EQ(res[1].rel_residual, 1.0);

  // The healthy neighbor is untouched: F acts as the identity on its
  // invariant subspace, so it converges in one iteration and matches a
  // solo solve exactly.
  EXPECT_TRUE(res[0].converged);
  EXPECT_EQ(res[0].iterations, 1);
  PcpgResult solo = pcpg.solve(s.healthy);
  ASSERT_EQ(res[0].lambda.size(), solo.lambda.size());
  for (std::size_t i = 0; i < solo.lambda.size(); ++i)
    EXPECT_EQ(res[0].lambda[i], solo.lambda[i]) << "entry " << i;
}

TEST(PcpgBreakdown, SingleSolveKeepsThrowingContract) {
  ReflectionSetup s = reflection_setup();
  ReflectionOp op(s.problem, s.v);
  Projector projector(s.problem);
  PcpgOptions popts;
  Pcpg pcpg(op, projector, popts);
  EXPECT_THROW(pcpg.solve(s.broken), std::invalid_argument);

  // Block mode: the whole 1-wide panel loses definiteness → Gram rank 0 →
  // the same throwing contract for solve().
  popts.block.enabled = true;
  Pcpg block(op, projector, popts);
  EXPECT_THROW(block.solve(s.broken), std::invalid_argument);
}

TEST(PcpgBreakdown, BlockBatchSurvivesRankDeficientPanel) {
  ReflectionSetup s = reflection_setup();
  ReflectionOp op(s.problem, s.v);
  Projector projector(s.problem);
  PcpgOptions popts;
  popts.rel_tolerance = 1e-10;
  popts.max_iterations = 8;
  popts.block.enabled = true;
  Pcpg pcpg(op, projector, popts);

  // The shared panel mixes a healthy and a negative-curvature column: the
  // pivoted Cholesky keeps the healthy one, so the healthy system still
  // converges while the broken one runs out of iterations without a throw.
  std::vector<PcpgResult> res = pcpg.solve_many({s.healthy, s.broken});
  EXPECT_TRUE(res[0].converged);
  EXPECT_FALSE(res[1].converged);
}

// ---------------------------------------------------------------------------
// Scaled zero-RHS floor
// ---------------------------------------------------------------------------

TEST(PcpgZeroRhs, TinyScaledRhsFinalizesAtLambda0) {
  // A 1e-300-scaled load: w₀ is denormal but not bit-zero. The scaled
  // floor must finalize at λ₀ instead of iterating on underflowed (pᵀFp =
  // 0) step lengths — the exact-zero test alone threw here.
  decomp::FetiProblem p = heat2d_problem(6, 2);
  for (auto& fs : p.sub)
    for (auto& v : fs.sys.f) v *= 1e-300;

  core::DualOpConfig cfg;
  cfg.approach = core::Approach::ImplMkl;
  auto op = core::make_dual_operator(p, cfg);
  op->prepare();
  op->update_values();
  Projector projector(p);
  std::vector<double> d(static_cast<std::size_t>(p.num_lambdas));
  op->compute_d(d.data());

  for (const bool block : {false, true}) {
    PcpgOptions popts;
    popts.block.enabled = block;
    Pcpg pcpg(*op, projector, popts);
    PcpgResult res = pcpg.solve(d);
    EXPECT_TRUE(res.converged) << "block=" << block;
    EXPECT_EQ(res.iterations, 0) << "block=" << block;
    EXPECT_EQ(res.rel_residual, 0.0) << "block=" << block;
  }
}

TEST(PcpgZeroRhs, ExactZeroStillFinalizes) {
  decomp::FetiProblem p = heat2d_problem(6, 2);
  for (auto& fs : p.sub)
    for (auto& v : fs.sys.f) v = 0.0;
  core::DualOpConfig cfg;
  cfg.approach = core::Approach::ImplMkl;
  auto op = core::make_dual_operator(p, cfg);
  op->prepare();
  op->update_values();
  Projector projector(p);
  std::vector<double> d(static_cast<std::size_t>(p.num_lambdas), 0.0);
  Pcpg pcpg(*op, projector, PcpgOptions{});
  PcpgResult res = pcpg.solve(d);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

// ---------------------------------------------------------------------------
// PreconditionerKind shim
// ---------------------------------------------------------------------------

TEST(PreconditionerKind, ToStringCoversEveryEnumerator) {
  EXPECT_STREQ(core::to_string(core::PreconditionerKind::None), "none");
  EXPECT_STREQ(core::to_string(core::PreconditionerKind::Lumped), "lumped");
}

// ---------------------------------------------------------------------------
// Drain tail of batched solves
// ---------------------------------------------------------------------------

TEST(PcpgDrainTail, SurvivorMatchesSoloSolveBitwise) {
  decomp::FetiProblem p = heat2d_problem(8, 2);
  core::DualOpConfig cfg;
  cfg.approach = core::Approach::ImplMkl;
  auto op = core::make_dual_operator(p, cfg);
  op->prepare();
  op->update_values();
  Projector projector(p);

  const idx n = p.num_lambdas;
  std::vector<double> d(static_cast<std::size_t>(n));
  op->compute_d(d.data());
  // The fast system's rhs is exactly F λ₀ — its projected residual is
  // bit-zero, so it finalizes before the first iteration and the batch
  // drains to the physical system alone.
  std::vector<double> lambda0(static_cast<std::size_t>(n));
  projector.initial_lambda(lambda0.data());
  std::vector<double> q0(static_cast<std::size_t>(n));
  op->apply(lambda0.data(), q0.data());

  PcpgOptions popts;
  popts.rel_tolerance = 1e-10;
  Pcpg pcpg(*op, projector, popts);
  std::vector<PcpgResult> res = pcpg.solve_many({d, q0});

  EXPECT_TRUE(res[1].converged);
  EXPECT_EQ(res[1].iterations, 0);
  for (std::size_t i = 0; i < res[1].lambda.size(); ++i)
    EXPECT_EQ(res[1].lambda[i], lambda0[i]);

  // The surviving system iterated at batch width 1 throughout — the same
  // apply path as a solo solve, so the result is bit-identical to it.
  PcpgResult solo = pcpg.solve(d);
  EXPECT_TRUE(res[0].converged);
  EXPECT_EQ(res[0].iterations, solo.iterations);
  ASSERT_EQ(res[0].lambda.size(), solo.lambda.size());
  for (std::size_t i = 0; i < solo.lambda.size(); ++i)
    EXPECT_EQ(res[0].lambda[i], solo.lambda[i]) << "entry " << i;
}

// ---------------------------------------------------------------------------
// Block vs lockstep vs solo agreement across operator families
// ---------------------------------------------------------------------------

TEST(PcpgBlock, AgreesWithLockstepAndSoloAcrossOperators) {
  decomp::FetiProblem p = heat2d_problem(8, 2);
  gpu::ExecutionContext dev(quiet_config());

  struct Case {
    const char* key;
    double rel_tolerance;
    double cmp;  ///< solution agreement bound (looser for fp32 storage)
  };
  const Case cases[] = {
      {"impl mkl", 1e-10, 1e-8},
      {"expl mkl", 1e-10, 1e-8},
      {"expl legacy f32", 2e-5, 1e-4},
  };

  for (const Case& c : cases) {
    core::DualOpConfig cfg =
        core::recommend_config(c.key, 2, p.max_subdomain_dofs());
    auto op = core::make_dual_operator(p, cfg, &dev);
    op->prepare();
    op->update_values();
    Projector projector(p);

    const idx n = p.num_lambdas;
    std::vector<double> d(static_cast<std::size_t>(n));
    op->compute_d(d.data());
    // Consistent clustered right-hand sides: scaled d plus an F·v nudge
    // (anything in range(F) keeps the singular dual system solvable).
    std::vector<double> v(static_cast<std::size_t>(n)), fv(v.size());
    for (idx i = 0; i < n; ++i)
      v[i] = std::sin(0.25 * static_cast<double>(i));
    op->apply(v.data(), fv.data());
    std::vector<std::vector<double>> ds;
    for (int j = 0; j < 4; ++j) {
      ds.push_back(d);
      for (idx i = 0; i < n; ++i)
        ds.back()[i] = (1.0 + 0.1 * j) * d[i] + 0.01 * j * fv[i];
    }

    PcpgOptions popts;
    popts.rel_tolerance = c.rel_tolerance;
    Pcpg lockstep(*op, projector, popts);
    popts.block.enabled = true;
    Pcpg block(*op, projector, popts);

    std::vector<PcpgResult> lres = lockstep.solve_many(ds);
    std::vector<PcpgResult> bres = block.solve_many(ds);
    for (std::size_t j = 0; j < ds.size(); ++j) {
      ASSERT_TRUE(lres[j].converged) << c.key << " lockstep system " << j;
      ASSERT_TRUE(bres[j].converged) << c.key << " block system " << j;
      PcpgResult solo = lockstep.solve(ds[j]);
      double scale = 1.0;
      for (double x : solo.lambda) scale = std::max(scale, std::fabs(x));
      for (std::size_t i = 0; i < solo.lambda.size(); ++i) {
        EXPECT_NEAR(lres[j].lambda[i], solo.lambda[i], c.cmp * scale)
            << c.key << " lockstep system " << j;
        EXPECT_NEAR(bres[j].lambda[i], solo.lambda[i], c.cmp * scale)
            << c.key << " block system " << j;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-step Krylov recycling lifecycle
// ---------------------------------------------------------------------------

core::FetiSolverOptions recycling_options() {
  core::FetiSolverOptions opts;
  opts.dualop.approach = core::Approach::ExplMkl;
  opts.pcpg.rel_tolerance = 1e-10;
  opts.pcpg.block.enabled = true;
  opts.pcpg.block.recycle = true;
  opts.pcpg.block.deflation_budget = 64;
  return opts;
}

TEST(KrylovRecycling, WarmStepStartsFromRecycledSpace) {
  decomp::FetiProblem p = heat2d_problem(8, 2);
  core::FetiSolver solver(p, recycling_options(), nullptr);
  solver.prepare();

  core::FetiStepResult cold = solver.solve_step();
  ASSERT_TRUE(cold.converged);
  EXPECT_EQ(cold.deflation_dim, 0);
  EXPECT_GT(cold.pcpg_iterations, 0);
  ASSERT_NE(solver.recycler(), nullptr);
  EXPECT_GT(solver.recycler()->dim(), 0);

  // Unchanged K and f: the warm step deflates against the harvested panel
  // and its Galerkin start already solves the system.
  core::FetiStepResult warm = solver.solve_step();
  ASSERT_TRUE(warm.converged);
  EXPECT_GT(warm.deflation_dim, 0);
  EXPECT_LT(warm.pcpg_iterations, cold.pcpg_iterations);

  // The warm solution matches the cold one.
  double scale = 1.0;
  for (double v : cold.u) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < cold.u.size(); ++i)
    EXPECT_NEAR(warm.u[i], cold.u[i], 1e-8 * scale);
}

TEST(KrylovRecycling, RefreshedOperatorDropsThePanel) {
  decomp::FetiProblem p = heat2d_problem(8, 2);
  core::FetiSolver solver(p, recycling_options(), nullptr);
  solver.prepare();

  const core::FetiStepResult cold = solver.solve_step();
  // K changes → update_values() refreshes subdomains → the panel (built
  // against the old F) must not deflate this step.
  decomp::scale_step(p, 1.25);
  const core::FetiStepResult changed = solver.solve_step();
  ASSERT_TRUE(changed.converged);
  EXPECT_GT(changed.refreshed_subdomains, 0);
  EXPECT_EQ(changed.deflation_dim, 0);
  EXPECT_GT(changed.pcpg_iterations, 0);

  // The step after the change recycles again.
  const core::FetiStepResult warm = solver.solve_step();
  ASSERT_TRUE(warm.converged);
  EXPECT_GT(warm.deflation_dim, 0);
  EXPECT_LT(warm.pcpg_iterations, cold.pcpg_iterations);
}

TEST(KrylovRecycling, ScopeChangeDropsThePanel) {
  decomp::FetiProblem p = heat2d_problem(8, 2);
  core::FetiSolver solver(p, recycling_options(), nullptr);
  solver.prepare();

  (void)solver.solve_step();
  ASSERT_NE(solver.recycler(), nullptr);
  ASSERT_GT(solver.recycler()->dim(), 0);

  // A different tenant checks the pooled solver out: its Krylov state must
  // not leak across the scope switch.
  solver.set_recycle_scope(7);
  EXPECT_EQ(solver.recycler()->dim(), 0);
  const core::FetiStepResult res = solver.solve_step();
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.deflation_dim, 0);

  // Same scope again: state retained.
  solver.set_recycle_scope(7);
  EXPECT_GT(solver.recycler()->dim(), 0);
}

TEST(KrylovRecycling, DisabledOptionsKeepLockstepBehavior) {
  decomp::FetiProblem p = heat2d_problem(8, 2);
  core::FetiSolverOptions opts = recycling_options();
  opts.pcpg.block = BlockPcpgOptions{};
  core::FetiSolver solver(p, opts, nullptr);
  solver.prepare();
  const core::FetiStepResult res = solver.solve_step();
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.deflation_dim, 0);
  EXPECT_EQ(solver.recycler(), nullptr);
}

}  // namespace
}  // namespace feti
