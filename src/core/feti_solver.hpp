#pragma once

// The Total FETI solver driver — Algorithm 2 of the paper: one preparation
// phase, then per time step a FETI preprocessing (numeric factorization +
// explicit assembly where configured) followed by the PCPG iteration and
// primal recovery.

#include <memory>

#include "core/pcpg.hpp"

namespace feti::core {

struct FetiSolverOptions {
  DualOpConfig dualop;
  PcpgOptions pcpg;
};

struct FetiStepResult {
  std::vector<double> u;       ///< gathered global solution
  int iterations = 0;
  double rel_residual = 0.0;
  bool converged = false;
  double preprocess_seconds = 0.0;  ///< DualOperator::update_values() time
  double apply_seconds = 0.0;  ///< total dual-operator application time
  double step_seconds = 0.0;
  // Time-step cache outcome of this step's update_values() (deltas of
  // DualOperator::cache_stats()): how many subdomains were refactorized vs
  // served from cache, and whether the whole preprocessing was skipped.
  long refreshed_subdomains = 0;
  long skipped_subdomains = 0;
  /// True when update_values() took the skip path (cache_stats() counted a
  /// skipped step — nothing was dirty, nothing was refactorized).
  bool values_cached = false;
  /// F̃ storage/apply precision of the operator that served this step
  /// (resolved from the configured key's axes). PCPG itself always
  /// iterates in fp64; F32 means the explicit blocks were stored and
  /// applied in fp32 with fp64 accumulation.
  Precision operator_precision = Precision::F64;
};

class FetiSolver {
 public:
  /// `context` supplies the execution resources for GPU-backed dual
  /// operators (ignored by CPU configurations).
  FetiSolver(const decomp::FetiProblem& problem, FetiSolverOptions options,
             gpu::ExecutionContext* context = nullptr);

  /// Preparation (Algorithm 2, line 1).
  void prepare();

  /// One time step (lines 2-7): preprocessing + PCPG + primal solution.
  FetiStepResult solve_step();

  /// One time step solved for a block of dual right-hand sides sharing the
  /// pattern and the coarse constraint (load multipliers, residual probes,
  /// deflation vectors): preprocessing runs once, then all systems iterate
  /// in lockstep through Pcpg::solve_many, so every PCPG iteration reaches
  /// the dual operator as one batched apply(X, Y, nrhs) — served
  /// device-side by the GPU operator families. Each dual_rhs[j] plays the
  /// role of the d vector of eq. (7) (see DualOperator::compute_d for the
  /// physical one); results are returned in input order, with the shared
  /// preprocessing/apply/step times repeated in every entry.
  std::vector<FetiStepResult> solve_step_many(
      const std::vector<std::vector<double>>& dual_rhs);

  [[nodiscard]] DualOperator& dual_operator() { return *dualop_; }
  [[nodiscard]] const Projector& projector() const { return projector_; }

 private:
  const decomp::FetiProblem& problem_;
  FetiSolverOptions options_;
  std::unique_ptr<DualOperator> dualop_;
  Projector projector_;
  bool prepared_ = false;
};

}  // namespace feti::core
