#include "core/dual_operator.hpp"

#include <omp.h>

#include "core/dualop_impls.hpp"
#include "util/omp_guard.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"

namespace feti::core {

void DualOperator::scatter_cpu(const double* cluster, idx sub,
                               double* local) const {
  const auto& map = p_.sub[sub].lm_l2c;
  for (std::size_t i = 0; i < map.size(); ++i) local[i] = cluster[map[i]];
}

void DualOperator::gather_add_cpu(const double* local, idx sub,
                                  double* cluster) const {
  const auto& map = p_.sub[sub].lm_l2c;
  for (std::size_t i = 0; i < map.size(); ++i) cluster[map[i]] += local[i];
}

void DualOperator::compute_d(double* d) const {
  const idx nsub = p_.num_subdomains();
  std::vector<std::vector<double>> q(static_cast<std::size_t>(nsub));
  OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
  for (idx s = 0; s < nsub; ++s) {
    guard.run([&, s] {
      const auto& fs = p_.sub[s];
      std::vector<double> x(static_cast<std::size_t>(fs.ndof()));
      kplus_solve(s, fs.sys.f.data(), x.data());
      q[s].assign(static_cast<std::size_t>(fs.num_local_lambdas()), 0.0);
      la::spmv(1.0, fs.b, x.data(), 0.0, q[s].data());
    });
  }
  guard.rethrow();
  for (idx j = 0; j < p_.num_lambdas; ++j) d[j] = -p_.c[j];
  for (idx s = 0; s < nsub; ++s) gather_add_cpu(q[s].data(), s, d);
}

void DualOperator::primal_solution(
    const double* lambda, const std::vector<double>& alpha,
    std::vector<std::vector<double>>& u) const {
  const idx nsub = p_.num_subdomains();
  check(alpha.size() == static_cast<std::size_t>(p_.total_kernel_dim()),
        "primal_solution: alpha size mismatch");
  u.resize(static_cast<std::size_t>(nsub));
  std::vector<idx> alpha_offset(static_cast<std::size_t>(nsub) + 1, 0);
  for (idx s = 0; s < nsub; ++s)
    alpha_offset[s + 1] = alpha_offset[s] + p_.sub[s].kernel_dim();
  OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
  for (idx s = 0; s < nsub; ++s) {
    guard.run([&, s] {
      const auto& fs = p_.sub[s];
      std::vector<double> lam(static_cast<std::size_t>(fs.num_local_lambdas()));
      scatter_cpu(lambda, s, lam.data());
      std::vector<double> rhs(fs.sys.f);
      la::spmv_trans(-1.0, fs.b, lam.data(), 1.0, rhs.data());
      u[s].assign(static_cast<std::size_t>(fs.ndof()), 0.0);
      kplus_solve(s, rhs.data(), u[s].data());
      // + Rᵢ αᵢ.
      la::gemv(1.0, fs.r.cview(), la::Trans::No,
               alpha.data() + alpha_offset[s], 1.0, u[s].data());
    });
  }
  guard.rethrow();
}

std::unique_ptr<DualOperator> make_dual_operator(
    const decomp::FetiProblem& problem, const DualOpConfig& config,
    gpu::Device* device) {
  if (uses_gpu(config.approach))
    check(device != nullptr,
          "make_dual_operator: this approach requires a GPU device");
  switch (config.approach) {
    case Approach::ImplMkl:
      return make_implicit_cpu(problem, sparse::Backend::Supernodal,
                               config.ordering);
    case Approach::ImplCholmod:
      return make_implicit_cpu(problem, sparse::Backend::Simplicial,
                               config.ordering);
    case Approach::ImplLegacy:
      return make_implicit_gpu(problem, gpu::sparse::Api::Legacy,
                               config.ordering, *device, config.gpu.streams);
    case Approach::ImplModern:
      return make_implicit_gpu(problem, gpu::sparse::Api::Modern,
                               config.ordering, *device, config.gpu.streams);
    case Approach::ExplMkl:
      return make_explicit_cpu_schur(problem, config.ordering);
    case Approach::ExplCholmod:
      return make_explicit_cpu_trsm(problem, config.ordering);
    case Approach::ExplLegacy:
      return make_explicit_gpu(problem, gpu::sparse::Api::Legacy, config.gpu,
                               config.ordering, *device);
    case Approach::ExplModern:
      return make_explicit_gpu(problem, gpu::sparse::Api::Modern, config.gpu,
                               config.ordering, *device);
    case Approach::ExplHybrid:
      return make_hybrid(problem, config.gpu, config.ordering, *device);
  }
  throw std::invalid_argument("make_dual_operator: unknown approach");
}

}  // namespace feti::core
