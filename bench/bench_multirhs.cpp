// Multi-RHS amortization sweep: batched DualOperator::apply(X, Y, nrhs)
// across the GPU operator families (explicit/implicit × legacy/modern) for
// nrhs ∈ {1, 2, 4, 8, 16}. The device-side batch costs one scatter kernel,
// one SYMM/solve sweep per subdomain, and one gather kernel regardless of
// the batch width, so the per-RHS time must fall as nrhs grows — the same
// few-large-submissions principle the paper applies to assembly, extended
// to the application phase.
//
// `--quick` runs the CI smoke configuration: nrhs ≤ 4 on a smaller
// problem, still end-to-end through every family (and one sharded key),
// and fails if any batch degrades to the base-class loop of single
// applies (loop_fallback_count() != 0).

#include <cstring>

#include "common.hpp"
#include "core/dualop_registry.hpp"

using namespace feti;
using namespace feti::bench;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  gpu::ExecutionContext& device = shared_context();
  const std::vector<idx> nrhs_sweep =
      quick ? std::vector<idx>{1, 2, 4} : std::vector<idx>{1, 2, 4, 8, 16};
  const std::vector<std::string> keys = {
      "expl legacy", "expl modern", "impl legacy", "impl modern",
      "expl legacy x2"};

  BuiltProblem bp = build_problem(2, fem::Physics::HeatTransfer,
                                  quick ? 8 : 16, mesh::ElementOrder::Linear);
  const std::size_t n = static_cast<std::size_t>(bp.problem.num_lambdas);
  std::printf("=== multi-RHS batched apply: per-RHS time [ms] vs nrhs "
              "(%s mode, %d lambdas) ===\n",
              quick ? "quick" : "full", bp.problem.num_lambdas);

  std::vector<std::string> header = {"key"};
  for (idx r : nrhs_sweep) header.push_back("nrhs=" + std::to_string(r));
  header.push_back("amortization");
  Table table(header);

  bool all_device_side = true;
  bool explicit_amortizes = true;
  const int reps = quick ? 3 : 5;
  const double min_seconds = quick ? 0.005 : 0.02;

  for (const std::string& key : keys) {
    core::DualOpConfig cfg = core::recommend_config(
        key, 2, bp.dofs_per_subdomain,
        /*nrhs_hint=*/static_cast<int>(nrhs_sweep.back()));
    auto op = core::make_dual_operator(bp.problem, cfg, &device);
    op->prepare();
    op->update_values();

    std::vector<double> x(n * static_cast<std::size_t>(nrhs_sweep.back()),
                          1.0);
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
    std::vector<double> y(x.size(), 0.0);

    std::vector<std::string> row = {key};
    double per_rhs_first = 0.0, per_rhs_last = 0.0;
    for (idx nrhs : nrhs_sweep) {
      op->apply(x.data(), y.data(), nrhs);  // warm-up (+ batch allocation)
      const double seconds = measure_median_seconds(
          reps, min_seconds, [&] { op->apply(x.data(), y.data(), nrhs); });
      const double per_rhs_ms = seconds * 1e3 / nrhs;
      row.push_back(Table::num(per_rhs_ms, 4));
      if (nrhs == nrhs_sweep.front()) per_rhs_first = per_rhs_ms;
      if (nrhs == nrhs_sweep.back()) per_rhs_last = per_rhs_ms;
    }
    row.push_back(Table::num(per_rhs_first / per_rhs_last, 2));
    table.add_row(std::move(row));

    if (op->loop_fallback_count() != 0) {
      std::printf("FAIL: key '%s' served a batch through the base-class "
                  "loop fallback\n",
                  key.c_str());
      all_device_side = false;
    }
    if (core::DualOperatorRegistry::instance().is_explicit(key) &&
        per_rhs_last >= per_rhs_first)
      explicit_amortizes = false;
  }

  table.print();
  std::printf("\nCSV:\n");
  table.print_csv(std::cout);
  shape_check("every GPU key serves batches device-side (no loop fallback)",
              all_device_side);
  shape_check("explicit GPU per-RHS apply time falls with batch width "
              "(BLAS-3 amortization)",
              explicit_amortizes);
  // The fallback check is a hard correctness gate (CI smoke mode runs it on
  // every push); the amortization shape is advisory on loaded machines.
  return all_device_side ? 0 : 1;
}
