#pragma once

// Wall-clock timing utilities used by the benchmark harnesses and by the
// solver's internal phase accounting (preparation / preprocessing /
// application, mirroring Algorithm 2 of the paper).

#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace feti {

/// Monotonic stopwatch with microsecond-or-better resolution.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named durations across repeated phases. Thread-safe; every
/// dual-operator implementation reports its preprocessing/application split
/// through one of these so the figure harnesses can read consistent numbers.
class TimingRegistry {
 public:
  void add(const std::string& name, double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& e = entries_[name];
    e.total += seconds;
    e.count += 1;
    e.last = seconds;
  }

  struct Entry {
    double total = 0.0;
    long count = 0;
    double last = 0.0;
  };

  [[nodiscard]] Entry get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    return it == entries_.end() ? Entry{} : it->second;
  }

  [[nodiscard]] double total(const std::string& name) const {
    return get(name).total;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

  [[nodiscard]] std::vector<std::pair<std::string, Entry>> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {entries_.begin(), entries_.end()};
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// RAII helper: measures its own lifetime into a registry entry.
class ScopedTimer {
 public:
  ScopedTimer(TimingRegistry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ~ScopedTimer() { registry_.add(name_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimingRegistry& registry_;
  std::string name_;
  Timer timer_;
};

/// Median-of-repetitions measurement loop for the figure harnesses: runs
/// `body` until both `min_reps` repetitions and `min_seconds` of total time
/// are reached, returns the median single-run time in seconds.
double measure_median_seconds(int min_reps, double min_seconds,
                              const std::function<void()>& body);

}  // namespace feti
