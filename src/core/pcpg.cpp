#include "core/pcpg.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas_dense.hpp"
#include "precond/precond_registry.hpp"

namespace feti::core {

const char* to_string(PreconditionerKind p) {
  return p == PreconditionerKind::None ? "none" : "lumped";
}

Pcpg::Pcpg(DualOperator& f, const Projector& projector, PcpgOptions options,
           precond::Preconditioner* m)
    : f_(f), projector_(projector), options_(std::move(options)), m_(m) {
  const std::string key = precond::normalize_key(options_.preconditioner);
  if (m_ == nullptr && key != "none") {
    // Self-managed fallback for callers that only set the key: a CPU
    // instance, prepared and value-updated here. Lifecycle-aware callers
    // (FetiSolver, the service layer) pass their pooled instance instead —
    // the only route for GPU keys, since Pcpg holds no execution context.
    auto& registry = precond::PreconditionerRegistry::instance();
    check(!registry.uses_gpu(key),
          "Pcpg: GPU preconditioner '" + key +
              "' requires a caller-supplied prepared instance");
    owned_m_ = registry.create(key, f_.problem());
    owned_m_->prepare();
    owned_m_->update_values();
    m_ = owned_m_.get();
  }
}

Pcpg::~Pcpg() = default;

PcpgResult Pcpg::solve(const std::vector<double>& d) {
  const std::vector<double>* dp = &d;
  std::vector<PcpgResult> results =
      solve_impl(&dp, 1, /*throw_on_breakdown=*/true);
  return std::move(results.front());
}

std::vector<PcpgResult> Pcpg::solve_many(
    const std::vector<std::vector<double>>& d) {
  std::vector<const std::vector<double>*> ptrs;
  ptrs.reserve(d.size());
  for (const auto& di : d) ptrs.push_back(&di);
  return solve_many_ptrs(ptrs);
}

std::vector<PcpgResult> Pcpg::solve_many_ptrs(
    const std::vector<const std::vector<double>*>& d) {
  return solve_impl(d.data(), d.size(), /*throw_on_breakdown=*/false);
}

std::vector<PcpgResult> Pcpg::solve_impl(const std::vector<double>* const* d,
                                         std::size_t nsys,
                                         bool throw_on_breakdown) {
  const idx n = f_.problem().num_lambdas;
  for (std::size_t j = 0; j < nsys; ++j)
    check(d[j]->size() == static_cast<std::size_t>(n),
          "Pcpg: rhs size mismatch");
  std::vector<PcpgResult> results(nsys);
  if (nsys == 0) return results;

  /// Per-system CG state (lines 1-5 of Algorithm 1 use per-system vectors;
  /// only the operator and preconditioner applications are shared).
  struct System {
    std::vector<double> lambda, r, w, y, p, q;
    double w0_norm = 0.0;
    double wy = 0.0;
    double rel = 1.0;
    int iterations = 0;
    bool active = true;
  };
  std::vector<System> sys(nsys);
  std::vector<double> t(static_cast<std::size_t>(n));
  std::vector<double> tin, tout;  ///< preconditioner batch blocks

  // λ₀ and F λ₀ depend on the problem only — computed once, shared.
  std::vector<double> lambda0(static_cast<std::size_t>(n));
  projector_.initial_lambda(lambda0.data());
  std::vector<double> q0(static_cast<std::size_t>(n));
  f_.apply(lambda0.data(), q0.data());

  const auto finalize = [&](std::size_t j, bool converged) {
    System& s = sys[j];
    results[j].iterations = s.iterations;
    results[j].rel_residual = s.rel;
    results[j].converged = converged;
    results[j].alpha = projector_.alpha(s.r.data());
    results[j].lambda = std::move(s.lambda);
    s.active = false;
  };

  // Line 12 (y = P M⁻¹ w) for a set of systems at once: a single batched
  // M⁻¹ application (the size-1 tail skips the pack/unpack copies). The
  // unpreconditioned path stays the plain y = w of projected CG.
  const auto precondition = [&](const std::vector<std::size_t>& js) {
    if (js.empty()) return;
    if (m_ == nullptr) {
      for (std::size_t j : js) sys[j].y = sys[j].w;
      return;
    }
    if (js.size() == 1) {
      System& s = sys[js.front()];
      m_->apply(s.w.data(), t.data());
      projector_.apply(t.data(), s.y.data());
      return;
    }
    tin.resize(static_cast<std::size_t>(n) * js.size());
    tout.resize(tin.size());
    for (std::size_t b = 0; b < js.size(); ++b)
      std::copy_n(sys[js[b]].w.data(), n,
                  tin.data() + b * static_cast<std::size_t>(n));
    m_->apply(tin.data(), tout.data(), static_cast<idx>(js.size()));
    for (std::size_t b = 0; b < js.size(); ++b)
      projector_.apply(tout.data() + b * static_cast<std::size_t>(n),
                       sys[js[b]].y.data());
  };

  std::vector<std::size_t> pending;
  for (std::size_t j = 0; j < nsys; ++j) {
    System& s = sys[j];
    s.lambda = lambda0;
    s.r.resize(static_cast<std::size_t>(n));
    const std::vector<double>& dj = *d[j];
    for (idx i = 0; i < n; ++i) s.r[i] = dj[i] - q0[i];
    s.w.resize(static_cast<std::size_t>(n));
    s.y.resize(static_cast<std::size_t>(n));
    s.q.resize(static_cast<std::size_t>(n));
    projector_.apply(s.r.data(), s.w.data());
    s.w0_norm = la::nrm2(n, s.w.data());
    if (s.w0_norm == 0.0) {
      s.rel = 0.0;
      finalize(j, /*converged=*/true);
      continue;
    }
    pending.push_back(j);
  }
  precondition(pending);
  for (std::size_t j : pending) {
    System& s = sys[j];
    s.p = s.y;
    s.wy = la::dot(n, s.w.data(), s.y.data());
  }

  std::vector<double> xblock, yblock;
  std::vector<std::size_t> batch;
  for (;;) {
    batch.clear();
    for (std::size_t j = 0; j < nsys; ++j) {
      System& s = sys[j];
      if (!s.active) continue;
      s.rel = la::nrm2(n, s.w.data()) / s.w0_norm;
      if (s.rel <= options_.rel_tolerance) {
        finalize(j, /*converged=*/true);
      } else if (s.iterations >= options_.max_iterations) {
        finalize(j, /*converged=*/false);
      } else {
        batch.push_back(j);
      }
    }
    if (batch.empty()) break;

    // Line 7 for all still-active systems at once: Q(:,b) = F P(:,b).
    if (batch.size() == 1) {
      // Single-system fast path (also the tail of a draining batch): apply
      // straight into the system's own buffers, no pack/unpack copies.
      System& s = sys[batch.front()];
      f_.apply(s.p.data(), s.q.data());
    } else {
      const idx nrhs = static_cast<idx>(batch.size());
      xblock.resize(static_cast<std::size_t>(n) * batch.size());
      yblock.resize(xblock.size());
      for (std::size_t b = 0; b < batch.size(); ++b)
        std::copy_n(sys[batch[b]].p.data(), n,
                    xblock.data() + b * static_cast<std::size_t>(n));
      f_.apply(xblock.data(), yblock.data(), nrhs);
      for (std::size_t b = 0; b < batch.size(); ++b)
        std::copy_n(yblock.data() + b * static_cast<std::size_t>(n), n,
                    sys[batch[b]].q.data());
    }

    // Per-system scalar updates up to the residual projection (lines
    // 8-11)...
    pending.clear();
    for (std::size_t j : batch) {
      System& s = sys[j];
      const double pq = la::dot(n, s.p.data(), s.q.data());
      if (pq <= 0.0) {
        // solve() keeps the historical contract (throw); in a batch, one
        // ill-conditioned system must not discard the others' results.
        check(!throw_on_breakdown,
              "Pcpg: operator lost positive definiteness");
        finalize(j, /*converged=*/false);
        continue;
      }
      const double delta = s.wy / pq;                       // line 8
      la::axpy(n, delta, s.p.data(), s.lambda.data());      // line 9
      la::axpy(n, -delta, s.q.data(), s.r.data());          // line 10
      projector_.apply(s.r.data(), s.w.data());             // line 11
      pending.push_back(j);
    }
    // ... one batched preconditioner application for the survivors (line
    // 12) ...
    precondition(pending);
    // ... and the per-system search-direction recurrence (lines 13-14).
    for (std::size_t j : pending) {
      System& s = sys[j];
      const double wy_next = la::dot(n, s.w.data(), s.y.data());
      const double beta = wy_next / s.wy;                   // line 13
      s.wy = wy_next;
      for (idx i = 0; i < n; ++i)
        s.p[i] = s.y[i] + beta * s.p[i];                    // line 14
      ++s.iterations;
    }
  }
  return results;
}

}  // namespace feti::core
