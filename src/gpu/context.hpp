#pragma once

// Explicit execution resources for the assembly pipeline.
//
// The paper's implementation is defined by its execution resources —
// multiple in-order streams, a blocking temporary-memory pool, and
// per-subdomain concurrency (Sections IV / IV-A). ExecutionContext makes
// those resources a first-class, passed-in object: a device handle, a
// sized pool of worker streams plus one dedicated main stream, and the
// temporary-pool (workspace) policy. Operators receive a context instead
// of reaching for a process-global device and hand-rolling their own
// stream vectors.
//
// DevicePool extends the same idea to multi-GPU sharding: N virtual
// devices, one ExecutionContext per shard, and a round-robin partition of
// subdomains across the shards. DeviceTopology is the compact summary the
// autotuner consumes to pick sharded operator variants and stream counts.

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "gpu/runtime.hpp"
#include "util/common.hpp"

namespace feti::gpu {

/// Compact device-topology description for configuration decisions
/// (core::recommend_config): how many devices a workload may shard across
/// and how many concurrent streams each can keep busy.
struct DeviceTopology {
  int num_devices = 1;
  /// Worker streams per device the scheduler can keep busy (the paper uses
  /// one stream per OpenMP thread); 0 = unknown, keep defaults.
  int streams_per_device = 0;
};

/// One device's execution resources: the device handle, a lazily grown
/// pool of worker streams plus a dedicated main stream (cluster-wide
/// scatter/gather and H2D/D2H traffic), and the temporary-pool workspace
/// policy. Contexts may be shared by several operators; streams are cheap
/// shared handles and the workspace initialization is idempotent.
class ExecutionContext {
 public:
  /// Upper bound on worker streams per context (previously each operator
  /// carried its own clamp_streams copy).
  static constexpr int kMaxStreams = 32;
  /// Clamps a requested worker-stream count to [1, kMaxStreams].
  static int clamp_streams(int requested);

  /// Non-owning context over an externally managed device.
  explicit ExecutionContext(Device& device);
  /// Owning context: creates a private device from `cfg`.
  explicit ExecutionContext(DeviceConfig cfg);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  [[nodiscard]] Device& device() const { return *device_; }

  /// The dedicated main stream (created on first use).
  Stream main_stream();
  /// The first clamp_streams(requested) worker streams of the pool,
  /// growing the pool as needed. Returns handles; two operators asking for
  /// overlapping counts share the underlying streams.
  std::vector<Stream> stream_span(int requested);
  /// Worker streams created so far (excluding the main stream).
  [[nodiscard]] int pooled_streams() const;

  /// Workspace (temporary-pool) policy. ensure_workspace() lazily reserves
  /// the device's configured pool fraction and is safe to call repeatedly;
  /// init_workspace() dedicates all remaining device memory (minus
  /// `reserve`) and may be called once, before any ensure_workspace().
  void ensure_workspace();
  void init_workspace(std::size_t reserve = 0);
  [[nodiscard]] TempAllocator& workspace();

  /// Blocks until every stream of the underlying device drains.
  void synchronize();

 private:
  std::unique_ptr<Device> owned_;  ///< set only for owning contexts
  Device* device_;
  mutable std::mutex mutex_;
  Stream main_;
  std::vector<Stream> pool_;
};

/// N virtual devices with per-shard ExecutionContexts and a round-robin
/// partition of subdomains across the shards — the resource object behind
/// the sharded ("expl legacy x2", ...) dual-operator variants.
class DevicePool {
 public:
  /// Owning pool: creates `num_shards` devices, each configured with
  /// `per_shard_cfg` (see split_config to derive it from a single-device
  /// budget).
  DevicePool(int num_shards, const DeviceConfig& per_shard_cfg);
  /// Non-owning pool over externally managed devices.
  explicit DevicePool(const std::vector<Device*>& devices);

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  [[nodiscard]] std::size_t size() const { return contexts_.size(); }
  [[nodiscard]] ExecutionContext& context(std::size_t shard);
  [[nodiscard]] Device& device(std::size_t shard);

  /// RAII shard checkout for schedulers that multiplex independent work
  /// units over the pool (the service layer's workers). A lease is an
  /// accounting handle, not a lock: several leases may target one shard
  /// (streams serialize within the context), but acquire() steers new work
  /// to the least-loaded shard so concurrent tenants land on different
  /// devices and their update_values()/apply() phases overlap. The lease
  /// returns its shard on destruction (checkout/return discipline).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { swap(other); }
    Lease& operator=(Lease&& other) noexcept {
      release();
      swap(other);
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] bool valid() const { return pool_ != nullptr; }
    [[nodiscard]] std::size_t shard() const { return shard_; }
    [[nodiscard]] ExecutionContext& context() { return pool_->context(shard_); }

    /// Early return of the shard (idempotent; the destructor is a no-op
    /// afterwards).
    void release();

   private:
    friend class DevicePool;
    Lease(DevicePool* pool, std::size_t shard) : pool_(pool), shard_(shard) {}
    void swap(Lease& other) {
      std::swap(pool_, other.pool_);
      std::swap(shard_, other.shard_);
    }
    DevicePool* pool_ = nullptr;
    std::size_t shard_ = 0;
  };

  /// Checks out the shard with the fewest active leases (ties broken by
  /// the lowest shard index, so single-tenant runs stay on shard 0).
  [[nodiscard]] Lease acquire();
  /// Checks out a specific shard — used when work is pinned to the shard
  /// that holds its persistent state (a pooled operator's device buffers).
  [[nodiscard]] Lease acquire(std::size_t shard);
  /// Leases currently outstanding against `shard`.
  [[nodiscard]] int active_leases(std::size_t shard) const;

  /// The shard owning subdomain `sub` (round robin).
  [[nodiscard]] std::size_t shard_of(idx sub) const {
    return static_cast<std::size_t>(sub) % size();
  }
  /// The subdomains of [0, num_subdomains) owned by `shard`.
  [[nodiscard]] std::vector<idx> owned_subdomains(std::size_t shard,
                                                  idx num_subdomains) const;

  [[nodiscard]] DeviceTopology topology() const;

  /// Synchronizes every shard.
  void synchronize();

  /// Divides a single-device budget across `num_shards` virtual devices:
  /// worker threads and memory are split evenly (each shard keeps at least
  /// one worker), launch latency and pool fraction are inherited.
  static DeviceConfig split_config(DeviceConfig total, int num_shards);

 private:
  std::vector<std::unique_ptr<Device>> owned_;
  std::vector<std::unique_ptr<ExecutionContext>> contexts_;
  mutable std::mutex lease_mutex_;
  std::vector<int> active_leases_;  ///< per-shard outstanding lease counts
};

}  // namespace feti::gpu
