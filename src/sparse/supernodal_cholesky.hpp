#pragma once

// Supernodal multifrontal sparse Cholesky — the MKL PARDISO stand-in.
//
// Columns with identical factor structure are grouped into fundamental
// supernodes; each supernode is factored inside a dense frontal matrix with
// contiguous (BLAS-3-style) inner loops, which is what makes this backend
// faster than the simplicial one on matrices with denser factors (3D FEM),
// mirroring the MKL-vs-CHOLMOD relationship in the paper.
//
// The backend additionally implements the *augmented incomplete
// factorization* Schur path (paper reference [6]): a partial factorization
// of [[A, B^T], [B, 0]] that eliminates only the A columns; the trailing
// update block is -S = -B A^{-1} B^T. The B sparsity is exploited through
// the symbolic structure of the augmented matrix. Factors are intentionally
// NOT exportable, matching the MKL constraint the paper reports.

#include "sparse/etree.hpp"
#include "sparse/solver.hpp"

namespace feti::sparse {

class SupernodalCholesky final : public DirectSolver {
 public:
  void analyze(const la::Csr& a, OrderingKind ordering) override;
  void factorize(const la::Csr& a) override;
  void solve(const double* b, double* x) const override;

  [[nodiscard]] idx dim() const override { return nelim_; }
  [[nodiscard]] widx factor_nnz() const override { return factor_nnz_; }
  [[nodiscard]] const std::vector<idx>& permutation() const override {
    return perm_elim_;
  }

  [[nodiscard]] bool supports_schur() const override { return true; }

  /// Symbolic analysis of the augmented matrix [[A, B^T], [B, 0]] for the
  /// Schur path. A is n x n SPD, B is m x n.
  void analyze_schur(const la::Csr& a, const la::Csr& b,
                     OrderingKind ordering = OrderingKind::MinimumDegree);

  void factorize_schur(const la::Csr& a, const la::Csr& b, la::DenseView s,
                       la::Uplo uplo) override;

  // Introspection for tests and benches.
  [[nodiscard]] idx num_supernodes() const {
    return static_cast<idx>(sn_start_.size()) - 1;
  }
  [[nodiscard]] idx largest_front() const { return max_front_; }

 private:
  /// Shared symbolic pipeline; `aug` is the (possibly augmented) full
  /// symmetric pattern already carrying value-routing codes, `nelim` the
  /// number of leading columns to eliminate.
  void analyze_internal(idx nelim, OrderingKind ordering);
  void route_values(const la::Csr& a, const la::Csr* b);
  void numeric(la::DenseView* schur, la::Uplo uplo);

  // -- problem structure --
  idx n_aug_ = 0;    ///< dimension of the (augmented) matrix
  idx nelim_ = 0;    ///< number of eliminated columns (= dim of A)
  idx a_nnz_ = 0;    ///< nnz of A at analysis (value routing)
  bool schur_mode_ = false;
  bool analyzed_ = false;
  bool factorized_ = false;

  std::vector<idx> perm_;       ///< augmented permutation, perm[new] = old
  std::vector<idx> perm_elim_;  ///< restriction to the eliminated block
  la::Csr ap_;                  ///< permuted augmented pattern with values
  std::vector<idx> value_map_;  ///< code per ap_ entry (see route_values)
  SymbolicFactor sym_;

  // -- supernode structure (columns [0, nelim_) only) --
  std::vector<idx> sn_start_;   ///< size #sn+1, column ranges
  std::vector<idx> sn_of_col_;  ///< column -> supernode
  std::vector<idx> sn_parent_;  ///< parent supernode, -1 = root/Schur
  std::vector<idx> sn_children_;///< number of tree children per supernode
  std::vector<idx> rows_ptr_;   ///< per-supernode row list offsets
  std::vector<idx> rows_;       ///< ascending global row indices per sn
  std::vector<widx> panel_ptr_; ///< offsets into panel storage
  std::vector<double> panels_;  ///< dense col-major panels, ld = front rows
  widx factor_nnz_ = 0;
  idx max_front_ = 0;
};

}  // namespace feti::sparse
