#pragma once

// Auxiliary device kernels: batched scatter/gather between the cluster-wide
// dual vector and the per-subdomain dual vectors (Section IV-B/IV-C of the
// paper: a single kernel handles all subdomains when scatter/gather runs on
// the GPU), plus small vector utilities.
//
// Both single-RHS and multi-RHS variants exist. The multi-RHS kernels move
// all subdomains × all right-hand sides in one submission: the cluster-wide
// block stores its columns at stride `cluster_ld` (column j of the dual
// system j starts at cluster + j * cluster_ld), and each subdomain's local
// block is an n × nrhs dense panel whose layout/leading dimension the
// caller chooses (a batch narrower than the allocated panel reuses the
// leading columns).

#include <vector>

#include "gpu/data.hpp"
#include "gpu/runtime.hpp"

namespace feti::gpu::kernels {

/// One subdomain's slice of a scatter/gather: `map[i]` is the cluster index
/// of local lambda i.
struct DualMap {
  const idx* map = nullptr;  ///< device array, length n
  idx n = 0;
  double* local = nullptr;   ///< device subdomain vector, length n
};

/// Single submission: local[i] = cluster[map[i]] for every subdomain.
void scatter_batch(Stream& s, const double* cluster,
                   std::vector<DualMap> jobs);

/// Single submission: cluster = sum of scattered locals; zero-fills the
/// cluster vector first.
void gather_batch(Stream& s, double* cluster, idx cluster_size,
                  std::vector<DualMap> jobs);

/// One subdomain's slice of a multi-RHS scatter/gather: the local panel is
/// n × nrhs dense with leading dimension `ld` (row-major: ld >= nrhs,
/// col-major: ld >= n — the layout is a shared kernel argument).
struct DualMapBlock {
  const idx* map = nullptr;  ///< device array, length n
  idx n = 0;
  double* local = nullptr;   ///< device panel, n × nrhs, leading dim ld
  idx ld = 0;
};

/// Single submission moving all subdomains × all RHS:
/// local(i, j) = cluster[map[i] + j * cluster_ld] for j in [0, nrhs).
/// nrhs == 0 submits nothing (no-op).
void scatter_batch(Stream& s, const double* cluster, idx cluster_ld,
                   idx nrhs, la::Layout local_layout,
                   std::vector<DualMapBlock> jobs);

/// Single submission: zero-fills the first nrhs cluster columns (each of
/// length cluster_size at stride cluster_ld), then accumulates
/// cluster[map[i] + j * cluster_ld] += local(i, j) over every subdomain —
/// overlapping dual indices sum, as in the single-RHS gather.
/// nrhs == 0 submits nothing (the cluster block is left untouched).
void gather_batch(Stream& s, double* cluster, idx cluster_size,
                  idx cluster_ld, idx nrhs, la::Layout local_layout,
                  std::vector<DualMapBlock> jobs);

/// Sets a device vector to zero.
void fill_zero(Stream& s, double* data, idx n);

}  // namespace feti::gpu::kernels
