#include "la/dense.hpp"

#include <cmath>

namespace feti::la {

void copy(ConstDenseView src, DenseView dst) {
  check(src.rows == dst.rows && src.cols == dst.cols,
        "copy: dimension mismatch");
  if (src.layout == dst.layout && src.ld == dst.ld &&
      ((src.layout == Layout::RowMajor && src.ld == src.cols) ||
       (src.layout == Layout::ColMajor && src.ld == src.rows))) {
    std::copy_n(src.data,
                static_cast<widx>(src.rows) * src.cols, dst.data);
    return;
  }
  // Iterate in destination-contiguous order for write locality.
  if (dst.layout == Layout::RowMajor) {
    for (idx r = 0; r < dst.rows; ++r)
      for (idx c = 0; c < dst.cols; ++c) dst.at(r, c) = src.at(r, c);
  } else {
    for (idx c = 0; c < dst.cols; ++c)
      for (idx r = 0; r < dst.rows; ++r) dst.at(r, c) = src.at(r, c);
  }
}

double max_abs_diff(ConstDenseView a, ConstDenseView b) {
  check(a.rows == b.rows && a.cols == b.cols,
        "max_abs_diff: dimension mismatch");
  double m = 0.0;
  for (idx r = 0; r < a.rows; ++r)
    for (idx c = 0; c < a.cols; ++c)
      m = std::max(m, std::fabs(a.at(r, c) - b.at(r, c)));
  return m;
}

void demote(ConstDenseView src, DenseViewF32 dst) {
  check(src.rows == dst.rows && src.cols == dst.cols,
        "demote: dimension mismatch");
  if (dst.layout == Layout::RowMajor) {
    for (idx r = 0; r < dst.rows; ++r)
      for (idx c = 0; c < dst.cols; ++c)
        dst.at(r, c) = static_cast<float>(src.at(r, c));
  } else {
    for (idx c = 0; c < dst.cols; ++c)
      for (idx r = 0; r < dst.rows; ++r)
        dst.at(r, c) = static_cast<float>(src.at(r, c));
  }
}

void demote_triangle(Uplo uplo, ConstDenseView src, DenseViewF32 dst) {
  check(src.rows == dst.rows && src.cols == dst.cols,
        "demote_triangle: dimension mismatch");
  check(dst.rows == dst.cols, "demote_triangle: matrix must be square");
  if (uplo == Uplo::Upper) {
    for (idx c = 0; c < dst.cols; ++c)
      for (idx r = 0; r <= c; ++r)
        dst.at(r, c) = static_cast<float>(src.at(r, c));
  } else {
    for (idx c = 0; c < dst.cols; ++c)
      for (idx r = c; r < dst.rows; ++r)
        dst.at(r, c) = static_cast<float>(src.at(r, c));
  }
}

void symmetrize_from(DenseView a, Uplo stored) {
  check(a.rows == a.cols, "symmetrize_from: matrix must be square");
  if (stored == Uplo::Upper) {
    for (idx c = 0; c < a.cols; ++c)
      for (idx r = 0; r < c; ++r) a.at(c, r) = a.at(r, c);
  } else {
    for (idx c = 0; c < a.cols; ++c)
      for (idx r = 0; r < c; ++r) a.at(r, c) = a.at(c, r);
  }
}

}  // namespace feti::la
