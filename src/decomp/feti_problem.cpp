#include "decomp/feti_problem.hpp"

#include <algorithm>
#include <bit>

namespace feti::decomp {

FetiProblem build_feti_problem(const mesh::Decomposition& dec,
                               fem::Physics physics,
                               const fem::Material& material,
                               Redundancy redundancy) {
  return build_feti_problem(
      dec, physics,
      std::vector<fem::Material>(dec.subdomains.size(), material), redundancy);
}

FetiProblem build_feti_problem(const mesh::Decomposition& dec,
                               fem::Physics physics,
                               const std::vector<fem::Material>& materials,
                               Redundancy redundancy) {
  FetiProblem p;
  check(!dec.subdomains.empty(), "build_feti_problem: empty decomposition");
  check(materials.size() == dec.subdomains.size(),
        "build_feti_problem: one material per subdomain required");
  p.physics = physics;
  p.dim = dec.subdomains.front().local.dim;
  const int dpn = fem::dofs_per_node(physics, p.dim);
  p.global_dofs = dec.global_nodes * dpn;

  Gluing gluing = build_gluing(dec, dpn, redundancy);
  p.num_lambdas = gluing.num_lambdas;
  p.c = std::move(gluing.c);

  const idx nsub = static_cast<idx>(dec.subdomains.size());
  p.sub.resize(nsub);
  for (idx s = 0; s < nsub; ++s) {
    FetiSubdomain& fs = p.sub[s];
    const mesh::Mesh& local = dec.subdomains[s].local;
    fs.sys = fem::assemble(local, physics, materials[s]);
    fs.r = build_kernel(local, physics);
    Regularization reg = regularize(fs.sys.k, fs.r.cview(), local, physics);
    fs.k_reg = std::move(reg.k_reg);
    fs.fixing_dofs = std::move(reg.fixing_dofs);
    fs.b = std::move(gluing.b[s]);
    fs.lm_l2c = std::move(gluing.lm_l2c[s]);
    fs.dof_l2g.resize(static_cast<std::size_t>(fs.sys.ndof));
    const auto& l2g = dec.subdomains[s].node_l2g;
    for (idx node = 0; node < local.num_nodes; ++node)
      for (int c = 0; c < dpn; ++c)
        fs.dof_l2g[node * dpn + c] = l2g[node] * dpn + c;
  }
  return p;
}

void scale_step(FetiProblem& p, double factor) {
  check(factor > 0.0, "scale_step: factor must be positive");
  for (auto& s : p.sub) {
    for (auto& v : s.sys.k.vals()) v *= factor;
    for (auto& v : s.k_reg.vals()) v *= factor;
    for (auto& v : s.sys.f) v *= factor;
  }
  p.mark_values_changed();
}

void scale_subdomain(FetiProblem& p, idx sub, double factor) {
  check(factor > 0.0, "scale_subdomain: factor must be positive");
  check(sub >= 0 && sub < p.num_subdomains(),
        "scale_subdomain: subdomain index out of range");
  FetiSubdomain& s = p.sub[static_cast<std::size_t>(sub)];
  for (auto& v : s.sys.k.vals()) v *= factor;
  for (auto& v : s.k_reg.vals()) v *= factor;
  for (auto& v : s.sys.f) v *= factor;
  p.mark_values_changed(sub);
}

std::uint64_t k_values_hash(const FetiSubdomain& s) {
  // FNV-1a over the K_reg value array, one 64-bit word (one double) per
  // round — this sits on the per-step hot path under ValueTracking::Hashed,
  // so it processes word-wise instead of byte-wise. Bitwise equality is
  // the right notion here: a value rewritten to the exact same double is a
  // legitimate cache hit, anything else must refresh.
  std::uint64_t h = kFnv1aOffset;
  for (double v : s.k_reg.vals())
    h = fnv1a_word(h, std::bit_cast<std::uint64_t>(v));
  return h;
}

std::vector<double> gather_solution(
    const FetiProblem& p, const std::vector<std::vector<double>>& u_local) {
  check(u_local.size() == p.sub.size(),
        "gather_solution: subdomain count mismatch");
  std::vector<double> u(static_cast<std::size_t>(p.global_dofs), 0.0);
  std::vector<idx> mult(static_cast<std::size_t>(p.global_dofs), 0);
  for (std::size_t s = 0; s < p.sub.size(); ++s) {
    const auto& fs = p.sub[s];
    check(u_local[s].size() == static_cast<std::size_t>(fs.ndof()),
          "gather_solution: local solution size mismatch");
    for (idx l = 0; l < fs.ndof(); ++l) {
      u[fs.dof_l2g[l]] += u_local[s][l];
      mult[fs.dof_l2g[l]] += 1;
    }
  }
  for (idx g = 0; g < p.global_dofs; ++g)
    if (mult[g] > 0) u[g] /= mult[g];
  return u;
}

}  // namespace feti::decomp
