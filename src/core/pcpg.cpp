#include "core/pcpg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <new>

#include "core/krylov_recycler.hpp"
#include "gpu/data.hpp"
#include "gpu/kernels.hpp"
#include "gpu/runtime.hpp"
#include "la/blas_dense.hpp"
#include "precond/precond_registry.hpp"

namespace feti::core {

namespace {

/// Finalization floor for the initial projected-residual norm: below it the
/// right-hand side is numerically zero for this system and λ₀ already
/// solves it. Scaled to the problem (n·ε·‖d‖) with an absolute denormal
/// guard — a bit-exact-zero test alone lets a 1e-300-scaled RHS divide by
/// a denormal w₀ and spin to max_iterations on NaN step lengths.
double w0_floor(idx n, double d_norm) {
  constexpr double eps = std::numeric_limits<double>::epsilon();
  constexpr double denormal_guard = std::numeric_limits<double>::min() / eps;
  return static_cast<double>(n) * eps * d_norm + denormal_guard;
}

/// Rank-revealing Gram-system solver of the block step: factors the small
/// PᵀFP matrix once per iteration with pivoted Cholesky and solves for the
/// per-system step/conjugation coefficients. Panel columns beyond the
/// revealed rank are numerically dependent on the kept ones and get zero
/// coefficients — column deflation instead of the per-system `pq <= 0`
/// breakdown of the lockstep path.
class GramSolver {
 public:
  void factor(const la::DenseMatrix& gram, double rel_tolerance) {
    l_ = gram;  // factored in place on the copy
    perm_.resize(static_cast<std::size_t>(gram.rows()));
    rank_ = la::potrf_pivoted_lower(l_.view(), perm_.data(), rel_tolerance);
  }
  [[nodiscard]] idx rank() const { return rank_; }

  /// b (length = panel width) → x with Gram x = b on the kept columns and
  /// x = 0 on the deflated ones, in place.
  void solve(double* b) const {
    std::vector<double> t(static_cast<std::size_t>(rank_));
    for (idx k = 0; k < rank_; ++k) t[static_cast<std::size_t>(k)] = b[perm_[k]];
    const la::ConstDenseView lead(l_.data(), rank_, rank_, l_.ld(),
                                  la::Layout::ColMajor);
    la::trsv(la::Uplo::Lower, la::Trans::No, lead, t.data());
    la::trsv(la::Uplo::Lower, la::Trans::Yes, lead, t.data());
    std::fill_n(b, l_.rows(), 0.0);
    for (idx k = 0; k < rank_; ++k) b[perm_[k]] = t[static_cast<std::size_t>(k)];
  }

  [[nodiscard]] const std::vector<idx>& perm() const { return perm_; }

 private:
  la::DenseMatrix l_;
  std::vector<idx> perm_;
  idx rank_ = 0;
};

/// One contiguous device allocation for a whole device-resident solve,
/// freed (after draining the device) on every exit path — including the
/// std::bad_alloc unwinding that triggers the Auto-mode host fallback.
struct DeviceSlab {
  gpu::Device& dev;
  double* data;
  DeviceSlab(gpu::Device& d, std::size_t count)
      : dev(d), data(d.alloc_n<double>(count)) {}
  ~DeviceSlab() {
    dev.synchronize();
    dev.free(data);
  }
  DeviceSlab(const DeviceSlab&) = delete;
  DeviceSlab& operator=(const DeviceSlab&) = delete;
};

}  // namespace

const char* to_string(PreconditionerKind p) {
  // Exhaustive by construction: a future enumerator fails to compile here
  // instead of silently aliasing to "lumped" (the old ternary's behavior).
  switch (p) {
    case PreconditionerKind::None:
      return "none";
    case PreconditionerKind::Lumped:
      return "lumped";
  }
  FETI_ASSERT(false, "to_string: unknown PreconditionerKind");
  return "none";
}

Pcpg::Pcpg(DualOperator& f, const Projector& projector, PcpgOptions options,
           precond::Preconditioner* m)
    : f_(f), projector_(projector), options_(std::move(options)), m_(m) {
  const std::string key = precond::normalize_key(options_.preconditioner);
  if (m_ == nullptr && key != "none") {
    // Self-managed fallback for callers that only set the key: a CPU
    // instance, prepared and value-updated here. Lifecycle-aware callers
    // (FetiSolver, the service layer) pass their pooled instance instead —
    // the only route for GPU keys, since Pcpg holds no execution context.
    auto& registry = precond::PreconditionerRegistry::instance();
    check(!registry.uses_gpu(key),
          "Pcpg: GPU preconditioner '" + key +
              "' requires a caller-supplied prepared instance");
    owned_m_ = registry.create(key, f_.problem());
    owned_m_->prepare();
    owned_m_->update_values();
    m_ = owned_m_.get();
  }
}

Pcpg::~Pcpg() = default;

PcpgResult Pcpg::solve(const std::vector<double>& d) {
  const std::vector<double>* dp = &d;
  std::vector<PcpgResult> results = run(&dp, 1, /*throw_on_breakdown=*/true);
  return std::move(results.front());
}

std::vector<PcpgResult> Pcpg::solve_many(
    const std::vector<std::vector<double>>& d) {
  std::vector<const std::vector<double>*> ptrs;
  ptrs.reserve(d.size());
  for (const auto& di : d) ptrs.push_back(&di);
  return solve_many_ptrs(ptrs);
}

std::vector<PcpgResult> Pcpg::solve_many_ptrs(
    const std::vector<const std::vector<double>*>& d) {
  return run(d.data(), d.size(), /*throw_on_breakdown=*/false);
}

bool Pcpg::device_eligible() {
  using DS = PcpgOptions::DeviceState;
  if (options_.device_state == DS::Off) return false;
  const bool f_ok = f_.device_context() != nullptr;
  const bool m_ok = m_ == nullptr || m_->device_context() != nullptr;
  if (options_.device_state == DS::On) {
    check(f_ok, "Pcpg: device_state=on but the dual operator has no device "
                "context (host-only operator key)");
    check(m_ok, "Pcpg: device_state=on but the preconditioner has no device "
                "context (use a 'gpu' preconditioner key)");
  }
  return f_ok && m_ok;
}

std::vector<PcpgResult> Pcpg::run(const std::vector<double>* const* d,
                                  std::size_t nsys, bool throw_on_breakdown) {
  if (device_eligible()) {
    try {
      return options_.block.enabled
                 ? solve_block_impl_device(d, nsys, throw_on_breakdown)
                 : solve_impl_device(d, nsys, throw_on_breakdown);
    } catch (const std::bad_alloc&) {
      // Device memory exhausted. Auto degrades to the host-staged engines
      // (a re-run from scratch is safe: the device engine only mutates
      // device state plus the recycler, and a duplicate absorb of the same
      // increment is dropped by its F-orthogonalization floor).
      if (options_.device_state == PcpgOptions::DeviceState::On) throw;
    }
  }
  return options_.block.enabled
             ? solve_block_impl(d, nsys, throw_on_breakdown)
             : solve_impl(d, nsys, throw_on_breakdown);
}

std::vector<PcpgResult> Pcpg::solve_impl(const std::vector<double>* const* d,
                                         std::size_t nsys,
                                         bool throw_on_breakdown) {
  const idx n = f_.problem().num_lambdas;
  for (std::size_t j = 0; j < nsys; ++j)
    check(d[j]->size() == static_cast<std::size_t>(n),
          "Pcpg: rhs size mismatch");
  std::vector<PcpgResult> results(nsys);
  if (nsys == 0) return results;

  /// Per-system CG state (lines 1-5 of Algorithm 1 use per-system vectors;
  /// only the operator and preconditioner applications are shared).
  struct System {
    std::vector<double> lambda, r, w, y, p, q;
    double w0_norm = 0.0;
    double wy = 0.0;
    double rel = 1.0;
    int iterations = 0;
    bool active = true;
  };
  std::vector<System> sys(nsys);
  std::vector<double> t(static_cast<std::size_t>(n));
  std::vector<double> tin, tout;  ///< preconditioner batch blocks

  // λ₀ and F λ₀ depend on the problem only — computed once, shared.
  std::vector<double> lambda0(static_cast<std::size_t>(n));
  projector_.initial_lambda(lambda0.data());
  std::vector<double> q0(static_cast<std::size_t>(n));
  f_.apply(lambda0.data(), q0.data());

  const auto finalize = [&](std::size_t j, bool converged) {
    System& s = sys[j];
    results[j].iterations = s.iterations;
    results[j].rel_residual = s.rel;
    results[j].converged = converged;
    results[j].alpha = projector_.alpha(s.r.data());
    results[j].lambda = std::move(s.lambda);
    s.active = false;
  };

  // Line 12 (y = P M⁻¹ w) for a set of systems at once: a single batched
  // M⁻¹ application (the size-1 tail skips the pack/unpack copies). The
  // unpreconditioned path stays the plain y = w of projected CG.
  const auto precondition = [&](const std::vector<std::size_t>& js) {
    if (js.empty()) return;
    if (m_ == nullptr) {
      for (std::size_t j : js) sys[j].y = sys[j].w;
      return;
    }
    if (js.size() == 1) {
      System& s = sys[js.front()];
      m_->apply(s.w.data(), t.data());
      projector_.apply(t.data(), s.y.data());
      return;
    }
    tin.resize(static_cast<std::size_t>(n) * js.size());
    tout.resize(tin.size());
    for (std::size_t b = 0; b < js.size(); ++b)
      std::copy_n(sys[js[b]].w.data(), n,
                  tin.data() + b * static_cast<std::size_t>(n));
    m_->apply(tin.data(), tout.data(), static_cast<idx>(js.size()));
    for (std::size_t b = 0; b < js.size(); ++b)
      projector_.apply(tout.data() + b * static_cast<std::size_t>(n),
                       sys[js[b]].y.data());
  };

  std::vector<std::size_t> pending;
  for (std::size_t j = 0; j < nsys; ++j) {
    System& s = sys[j];
    s.lambda = lambda0;
    s.r.resize(static_cast<std::size_t>(n));
    const std::vector<double>& dj = *d[j];
    for (idx i = 0; i < n; ++i) s.r[i] = dj[i] - q0[i];
    s.w.resize(static_cast<std::size_t>(n));
    s.y.resize(static_cast<std::size_t>(n));
    s.q.resize(static_cast<std::size_t>(n));
    projector_.apply(s.r.data(), s.w.data());
    s.w0_norm = la::nrm2(n, s.w.data());
    if (s.w0_norm <= w0_floor(n, la::nrm2(n, dj.data()))) {
      s.rel = 0.0;
      finalize(j, /*converged=*/true);
      continue;
    }
    pending.push_back(j);
  }
  precondition(pending);
  for (std::size_t j : pending) {
    System& s = sys[j];
    s.p = s.y;
    s.wy = la::dot(n, s.w.data(), s.y.data());
  }

  std::vector<double> xblock, yblock;
  std::vector<std::size_t> batch;
  for (;;) {
    batch.clear();
    for (std::size_t j = 0; j < nsys; ++j) {
      System& s = sys[j];
      if (!s.active) continue;
      s.rel = la::nrm2(n, s.w.data()) / s.w0_norm;
      if (s.rel <= options_.rel_tolerance) {
        finalize(j, /*converged=*/true);
      } else if (s.iterations >= options_.max_iterations) {
        finalize(j, /*converged=*/false);
      } else {
        batch.push_back(j);
      }
    }
    if (batch.empty()) break;

    // Line 7 for all still-active systems at once: Q(:,b) = F P(:,b).
    if (batch.size() == 1) {
      // Single-system fast path (also the tail of a draining batch): apply
      // straight into the system's own buffers, no pack/unpack copies.
      System& s = sys[batch.front()];
      f_.apply(s.p.data(), s.q.data());
    } else {
      const idx nrhs = static_cast<idx>(batch.size());
      xblock.resize(static_cast<std::size_t>(n) * batch.size());
      yblock.resize(xblock.size());
      for (std::size_t b = 0; b < batch.size(); ++b)
        std::copy_n(sys[batch[b]].p.data(), n,
                    xblock.data() + b * static_cast<std::size_t>(n));
      f_.apply(xblock.data(), yblock.data(), nrhs);
      for (std::size_t b = 0; b < batch.size(); ++b)
        std::copy_n(yblock.data() + b * static_cast<std::size_t>(n), n,
                    sys[batch[b]].q.data());
    }

    // Per-system scalar updates up to the residual projection (lines
    // 8-11)...
    pending.clear();
    for (std::size_t j : batch) {
      System& s = sys[j];
      const double pq = la::dot(n, s.p.data(), s.q.data());
      if (pq <= 0.0) {
        // solve() keeps the historical contract (throw); in a batch, one
        // ill-conditioned system must not discard the others' results. The
        // reported state must be consistent: λ/r/w are untouched by the
        // failed step, so rel is recomputed for exactly that state (and
        // alpha in finalize() derives from the same r), and the F apply
        // this iteration spent is counted even though it was discarded.
        check(!throw_on_breakdown,
              "Pcpg: operator lost positive definiteness");
        ++s.iterations;
        s.rel = la::nrm2(n, s.w.data()) / s.w0_norm;
        finalize(j, /*converged=*/false);
        continue;
      }
      const double delta = s.wy / pq;                       // line 8
      la::axpy(n, delta, s.p.data(), s.lambda.data());      // line 9
      la::axpy(n, -delta, s.q.data(), s.r.data());          // line 10
      projector_.apply(s.r.data(), s.w.data());             // line 11
      pending.push_back(j);
    }
    // ... one batched preconditioner application for the survivors (line
    // 12) ...
    precondition(pending);
    // ... and the per-system search-direction recurrence (lines 13-14).
    for (std::size_t j : pending) {
      System& s = sys[j];
      const double wy_next = la::dot(n, s.w.data(), s.y.data());
      const double beta = wy_next / s.wy;                   // line 13
      s.wy = wy_next;
      for (idx i = 0; i < n; ++i)
        s.p[i] = s.y[i] + beta * s.p[i];                    // line 14
      ++s.iterations;
    }
  }
  return results;
}

std::vector<PcpgResult> Pcpg::solve_block_impl(
    const std::vector<double>* const* d, std::size_t nsys,
    bool throw_on_breakdown) {
  const idx n = f_.problem().num_lambdas;
  for (std::size_t j = 0; j < nsys; ++j)
    check(d[j]->size() == static_cast<std::size_t>(n),
          "Pcpg: rhs size mismatch");
  std::vector<PcpgResult> results(nsys);
  if (nsys == 0) return results;

  KrylovRecycler* recycler = options_.block.recycle ? recycler_ : nullptr;

  /// Per-system state. Unlike the lockstep path there are no per-system
  /// step scalars: the search panel is shared, and each system's step and
  /// conjugation coefficients come from the panel's Gram system.
  struct System {
    std::vector<double> lambda, r, w, y, p;
    double w0_norm = 0.0;
    double rel = 1.0;
    int iterations = 0;
    int deflation_dim = 0;
    bool active = true;
  };
  std::vector<System> sys(nsys);
  std::vector<double> t(static_cast<std::size_t>(n));
  std::vector<double> tin, tout;  ///< preconditioner batch blocks

  // λ₀ and F λ₀ depend on the problem only — computed once, shared.
  std::vector<double> lambda0(static_cast<std::size_t>(n));
  projector_.initial_lambda(lambda0.data());
  std::vector<double> q0(static_cast<std::size_t>(n));
  f_.apply(lambda0.data(), q0.data());

  const auto finalize = [&](std::size_t j, bool converged) {
    System& s = sys[j];
    if (converged && recycler != nullptr && s.iterations > 0) {
      // Harvest the converged step increment λ − λ₀ for the next step's
      // deflation space; its operator product F(λ − λ₀) = (d − r) − Fλ₀
      // falls out of the maintained residual — no extra apply. Recycling
      // the increment (rather than the raw search directions) matters
      // numerically: reconstructing it direction-by-direction from Uᵀr₀
      // bottoms out at the cold solve's residual-orthogonality loss
      // (~1e-5·‖r₀‖ here), while the increment is a single well-scaled
      // column whose Galerkin coefficient is O(1).
      std::vector<double> inc(static_cast<std::size_t>(n));
      std::vector<double> finc(static_cast<std::size_t>(n));
      const std::vector<double>& dj = *d[j];
      for (idx i = 0; i < n; ++i) {
        inc[i] = s.lambda[i] - lambda0[i];
        finc[i] = dj[i] - s.r[i] - q0[i];
      }
      recycler->absorb(inc.data(), finc.data());
    }
    results[j].iterations = s.iterations;
    results[j].rel_residual = s.rel;
    results[j].converged = converged;
    results[j].deflation_dim = s.deflation_dim;
    results[j].alpha = projector_.alpha(s.r.data());
    results[j].lambda = std::move(s.lambda);
    s.active = false;
  };

  // y = (I − U(FU)ᵀ) P M⁻¹ w for a set of systems at once: one batched
  // M⁻¹ application like the lockstep path, with the deflation-augmented
  // projector keeping every new direction F-orthogonal to the recycled
  // space (plain P when no recycled panel is attached).
  const auto precondition = [&](const std::vector<std::size_t>& js) {
    if (js.empty()) return;
    const bool deflate = recycler != nullptr && recycler->dim() > 0;
    if (m_ == nullptr) {
      for (std::size_t j : js) {
        sys[j].y = sys[j].w;  // w is already projected
        if (deflate) recycler->project_out(sys[j].y.data(), 1);
      }
      return;
    }
    const auto project_y = [&](const double* src, double* dst) {
      if (deflate)
        projector_.apply_deflated(src, dst, *recycler);
      else
        projector_.apply(src, dst);
    };
    if (js.size() == 1) {
      System& s = sys[js.front()];
      m_->apply(s.w.data(), t.data());
      project_y(t.data(), s.y.data());
      return;
    }
    tin.resize(static_cast<std::size_t>(n) * js.size());
    tout.resize(tin.size());
    for (std::size_t b = 0; b < js.size(); ++b)
      std::copy_n(sys[js[b]].w.data(), n,
                  tin.data() + b * static_cast<std::size_t>(n));
    m_->apply(tin.data(), tout.data(), static_cast<idx>(js.size()));
    for (std::size_t b = 0; b < js.size(); ++b)
      project_y(tout.data() + b * static_cast<std::size_t>(n),
                sys[js[b]].y.data());
  };

  std::vector<std::size_t> pending;
  for (std::size_t j = 0; j < nsys; ++j) {
    System& s = sys[j];
    s.lambda = lambda0;
    s.r.resize(static_cast<std::size_t>(n));
    const std::vector<double>& dj = *d[j];
    for (idx i = 0; i < n; ++i) s.r[i] = dj[i] - q0[i];
    s.w.resize(static_cast<std::size_t>(n));
    s.y.resize(static_cast<std::size_t>(n));
    projector_.apply(s.r.data(), s.w.data());
    // w₀ is measured before the deflation correction, so a warm start is
    // judged against the same baseline a cold solve would be — that is
    // what lets a recycled step finish in (near) zero iterations.
    s.w0_norm = la::nrm2(n, s.w.data());
    if (s.w0_norm <= w0_floor(n, la::nrm2(n, dj.data()))) {
      s.rel = 0.0;
      finalize(j, /*converged=*/true);
      continue;
    }
    if (recycler != nullptr && recycler->dim() > 0) {
      s.deflation_dim = recycler->deflate_initial(s.lambda.data(),
                                                  s.r.data());
      projector_.apply(s.r.data(), s.w.data());
    }
    pending.push_back(j);
  }
  precondition(pending);
  for (std::size_t j : pending) sys[j].p = sys[j].y;

  std::vector<double> xblock, yblock;  ///< P and Q = F·P panels, packed
  std::vector<double> coeff;           ///< Gram-system right-hand side
  std::vector<std::size_t> batch;
  GramSolver gram;
  for (;;) {
    batch.clear();
    for (std::size_t j = 0; j < nsys; ++j) {
      System& s = sys[j];
      if (!s.active) continue;
      s.rel = la::nrm2(n, s.w.data()) / s.w0_norm;
      if (s.rel <= options_.rel_tolerance) {
        finalize(j, /*converged=*/true);
      } else if (s.iterations >= options_.max_iterations) {
        finalize(j, /*converged=*/false);
      } else {
        batch.push_back(j);
      }
    }
    if (batch.empty()) break;

    // The still-active systems share one search panel: Q = F P through the
    // same batched apply the lockstep path uses (line 7 for the block). A
    // width-1 panel (single-system solve, or the tail of a draining batch)
    // aliases the system's own search direction instead of packing it into
    // xblock — the panel-update recurrence below compensates (it conjugates
    // in place on y and swaps, so the aliased direction is never clobbered
    // while the panel view still reads it).
    const idx width = static_cast<idx>(batch.size());
    yblock.resize(static_cast<std::size_t>(n) * batch.size());
    const double* panel = nullptr;
    if (width == 1) {
      System& s = sys[batch.front()];
      f_.apply(s.p.data(), yblock.data());
      panel = s.p.data();
    } else {
      xblock.resize(static_cast<std::size_t>(n) * batch.size());
      for (std::size_t b = 0; b < batch.size(); ++b)
        std::copy_n(sys[batch[b]].p.data(), n,
                    xblock.data() + b * static_cast<std::size_t>(n));
      f_.apply(xblock.data(), yblock.data(), width);
      panel = xblock.data();
    }
    const la::ConstDenseView pview(panel, n, width, n, la::Layout::ColMajor);
    const la::ConstDenseView qview(yblock.data(), n, width, n,
                                   la::Layout::ColMajor);

    // Gram system PᵀFP with rank-revealing pivoting: a nearly dependent
    // column is deflated (zero coefficient) instead of breaking the solve.
    la::DenseMatrix gram_mat(width, width, la::Layout::ColMajor);
    la::gemm(1.0, pview, la::Trans::Yes, qview, la::Trans::No, 0.0,
             gram_mat.view());
    gram.factor(gram_mat, options_.block.pivot_rel_tolerance);
    if (gram.rank() == 0) {
      // The whole panel lost positive definiteness — nothing can advance.
      // Same consistent-final-state contract as the lockstep breakdown:
      // count the spent panel apply, report rel for the untouched state.
      check(!throw_on_breakdown,
            "Pcpg: operator lost positive definiteness");
      for (std::size_t j : batch) {
        System& s = sys[j];
        ++s.iterations;
        s.rel = la::nrm2(n, s.w.data()) / s.w0_norm;
        finalize(j, /*converged=*/false);
      }
      continue;  // next top-of-loop sees no active systems and exits
    }

    // Per-system block step: α = Gram⁻¹ Pᵀw (pᵀr = pᵀw for projected
    // panels), λ += P α, r −= Q α — every system advances through the
    // union of the block's search directions.
    coeff.resize(batch.size());
    for (std::size_t j : batch) {
      System& s = sys[j];
      la::gemv(1.0, pview, la::Trans::Yes, s.w.data(), 0.0, coeff.data());
      gram.solve(coeff.data());
      la::gemv(1.0, pview, la::Trans::No, coeff.data(), 1.0,
               s.lambda.data());
      la::gemv(-1.0, qview, la::Trans::No, coeff.data(), 1.0, s.r.data());
      projector_.apply(s.r.data(), s.w.data());
      ++s.iterations;
    }


    // Next panel: Y = deflated-preconditioned residuals, conjugated
    // against the current panel via β = −Gram⁻¹ QᵀY.
    precondition(batch);
    for (std::size_t j : batch) {
      System& s = sys[j];
      la::gemv(1.0, qview, la::Trans::Yes, s.y.data(), 0.0, coeff.data());
      gram.solve(coeff.data());
      la::scal(width, -1.0, coeff.data());
      if (width == 1) {
        // pview aliases s.p here: conjugate in place on y (bitwise the
        // same accumulation), then swap the buffers so p becomes the new
        // direction without ever overwriting the aliased panel.
        la::gemv(1.0, pview, la::Trans::No, coeff.data(), 1.0, s.y.data());
        std::swap(s.p, s.y);
      } else {
        s.p = s.y;
        la::gemv(1.0, pview, la::Trans::No, coeff.data(), 1.0, s.p.data());
      }
    }
  }
  return results;
}

// ---------------------------------------------------------------------------
// Device-resident engines
// ---------------------------------------------------------------------------
//
// Twins of solve_impl / solve_block_impl that keep every per-system vector
// (λ, r, w, y, p, q and the search panels) on the dual operator's device
// for the whole solve. The setup and finalization run host-side exactly
// like the host engines (λ₀, F λ₀, the w₀ floor, the Galerkin warm start,
// α and the recycler harvest all see the same host values); the state is
// uploaded once, iterated on with device kernels, and downloaded per
// system on finalization. Per iteration only convergence scalars, Gram
// blocks, and coarse right-hand sides cross PCIe — never an O(n) vector.
//
// Bit-identity with the host engines (and therefore identical iteration
// counts) holds because every device kernel runs the same la:: calls on
// the same values in the same per-system order; the only reordering is
// across independent systems, which cannot change any value.

std::vector<PcpgResult> Pcpg::solve_impl_device(
    const std::vector<double>* const* d, std::size_t nsys,
    bool throw_on_breakdown) {
  const idx n = f_.problem().num_lambdas;
  for (std::size_t j = 0; j < nsys; ++j)
    check(d[j]->size() == static_cast<std::size_t>(n),
          "Pcpg: rhs size mismatch");
  std::vector<PcpgResult> results(nsys);
  if (nsys == 0) return results;

  gpu::ExecutionContext* ctx = f_.device_context();
  gpu::Device& dev = ctx->device();
  gpu::Stream main = ctx->main_stream();
  const std::size_t N = static_cast<std::size_t>(n);
  const std::size_t vec_bytes = N * sizeof(double);

  struct System {
    std::vector<double> lambda, r;  ///< host copies: setup + finalization
    double* d_lambda = nullptr;
    double* d_r = nullptr;
    double* d_w = nullptr;
    double* d_y = nullptr;
    double* d_p = nullptr;
    double* d_q = nullptr;
    double w0_norm = 0.0;
    double wy = 0.0;
    double rel = 1.0;
    int iterations = 0;
    bool active = true;
  };
  std::vector<System> sys(nsys);

  // 6 per-system vectors + 2 shared panels + the scalar return block.
  DeviceSlab slab(dev, N * (6 * nsys + 2 * nsys) + nsys);
  for (std::size_t j = 0; j < nsys; ++j) {
    sys[j].d_lambda = slab.data + (6 * j + 0) * N;
    sys[j].d_r = slab.data + (6 * j + 1) * N;
    sys[j].d_w = slab.data + (6 * j + 2) * N;
    sys[j].d_y = slab.data + (6 * j + 3) * N;
    sys[j].d_p = slab.data + (6 * j + 4) * N;
    sys[j].d_q = slab.data + (6 * j + 5) * N;
  }
  double* xpanel = slab.data + 6 * nsys * N;
  double* ypanel = xpanel + nsys * N;
  double* out_dev = ypanel + nsys * N;
  std::vector<double> out_host(nsys);

  // λ₀ and F λ₀ depend on the problem only — computed once, shared, on the
  // host (identical to the host engine; these are setup, not loop, costs).
  std::vector<double> lambda0(N);
  projector_.initial_lambda(lambda0.data());
  std::vector<double> q0(N);
  f_.apply(lambda0.data(), q0.data());

  const auto finalize = [&](std::size_t j, bool converged, bool download) {
    System& s = sys[j];
    if (download) {
      main.memcpy_d2h(s.lambda.data(), s.d_lambda, vec_bytes);
      main.memcpy_d2h(s.r.data(), s.d_r, vec_bytes);
      main.synchronize();
    }
    results[j].iterations = s.iterations;
    results[j].rel_residual = s.rel;
    results[j].converged = converged;
    results[j].alpha = projector_.alpha(s.r.data());
    results[j].lambda = std::move(s.lambda);
    s.active = false;
  };

  // Device twin of the lockstep preconditioner step (line 12): one batched
  // M⁻¹ application on device views, then the device projector.
  //
  // A preconditioner pooled on a different execution context (the sharded
  // operator anchors on its internal shard-0 context) submits on streams
  // with no ordering against `main` — drain `main` first so it reads
  // complete inputs. Same-context preconditioners share the in-order main
  // queue and need no fence.
  const bool foreign_m =
      m_ != nullptr && m_->device_context() != ctx;
  std::vector<const double*> cptrs;
  std::vector<double*> ptrs;
  const auto precondition = [&](const std::vector<std::size_t>& js) {
    if (js.empty()) return;
    if (m_ == nullptr) {
      for (std::size_t j : js)
        gpu::kernels::copy(main, sys[j].d_w, sys[j].d_y, n);
      return;
    }
    if (js.size() == 1) {
      System& s = sys[js.front()];
      if (foreign_m) main.synchronize();
      m_->apply_device(s.d_w, xpanel, 1);
      projector_.apply_device(dev, main, {xpanel}, {s.d_y});
      return;
    }
    cptrs.clear();
    for (std::size_t j : js) cptrs.push_back(sys[j].d_w);
    gpu::kernels::pack_columns(main, cptrs, xpanel, n);
    if (foreign_m) main.synchronize();
    m_->apply_device(xpanel, ypanel, static_cast<idx>(js.size()));
    cptrs.clear();
    ptrs.clear();
    for (std::size_t b = 0; b < js.size(); ++b) {
      cptrs.push_back(ypanel + b * N);
      ptrs.push_back(sys[js[b]].d_y);
    }
    projector_.apply_device(dev, main, cptrs, ptrs);
  };

  // Host-side setup, identical to the host engine up to the first search
  // direction (including the *batched* host preconditioner application,
  // whose SYMM path differs bitwise from per-system SYMV); then one upload
  // of the live per-system state.
  std::vector<std::vector<double>> w0v(nsys), y0(nsys);
  std::vector<double> t_host(N), tin, tout;
  std::vector<std::size_t> pending;
  for (std::size_t j = 0; j < nsys; ++j) {
    System& s = sys[j];
    s.lambda = lambda0;
    s.r.resize(N);
    const std::vector<double>& dj = *d[j];
    for (idx i = 0; i < n; ++i) s.r[i] = dj[i] - q0[i];
    w0v[j].resize(N);
    projector_.apply(s.r.data(), w0v[j].data());
    s.w0_norm = la::nrm2(n, w0v[j].data());
    if (s.w0_norm <= w0_floor(n, la::nrm2(n, dj.data()))) {
      s.rel = 0.0;
      finalize(j, /*converged=*/true, /*download=*/false);
      continue;
    }
    pending.push_back(j);
  }
  if (!pending.empty()) {
    for (std::size_t j : pending) y0[j].resize(N);
    if (m_ == nullptr) {
      for (std::size_t j : pending) y0[j] = w0v[j];
    } else if (pending.size() == 1) {
      const std::size_t j = pending.front();
      m_->apply(w0v[j].data(), t_host.data());
      projector_.apply(t_host.data(), y0[j].data());
    } else {
      tin.resize(N * pending.size());
      tout.resize(tin.size());
      for (std::size_t b = 0; b < pending.size(); ++b)
        std::copy_n(w0v[pending[b]].data(), n, tin.data() + b * N);
      m_->apply(tin.data(), tout.data(), static_cast<idx>(pending.size()));
      for (std::size_t b = 0; b < pending.size(); ++b)
        projector_.apply(tout.data() + b * N, y0[pending[b]].data());
    }
  }
  for (std::size_t j : pending) {
    System& s = sys[j];
    s.wy = la::dot(n, w0v[j].data(), y0[j].data());
    main.memcpy_h2d(s.d_lambda, s.lambda.data(), vec_bytes);
    main.memcpy_h2d(s.d_r, s.r.data(), vec_bytes);
    main.memcpy_h2d(s.d_w, w0v[j].data(), vec_bytes);
    main.memcpy_h2d(s.d_y, y0[j].data(), vec_bytes);
    main.memcpy_h2d(s.d_p, y0[j].data(), vec_bytes);  // p = y
  }
  main.synchronize();

  std::vector<double> alphas, betas;
  std::vector<std::size_t> batch;
  for (;;) {
    batch.clear();
    std::vector<std::size_t> active;
    cptrs.clear();
    for (std::size_t j = 0; j < nsys; ++j) {
      if (!sys[j].active) continue;
      active.push_back(j);
      cptrs.push_back(sys[j].d_w);
    }
    if (active.empty()) break;
    gpu::kernels::nrm2_many(main, cptrs, n, out_dev);
    main.memcpy_d2h(out_host.data(), out_dev,
                    active.size() * sizeof(double));
    main.synchronize();
    for (std::size_t b = 0; b < active.size(); ++b) {
      const std::size_t j = active[b];
      System& s = sys[j];
      s.rel = out_host[b] / s.w0_norm;
      if (s.rel <= options_.rel_tolerance) {
        finalize(j, /*converged=*/true, /*download=*/true);
      } else if (s.iterations >= options_.max_iterations) {
        finalize(j, /*converged=*/false, /*download=*/true);
      } else {
        batch.push_back(j);
      }
    }
    if (batch.empty()) break;

    // Q(:,b) = F P(:,b) on device views — the staging copies of the host
    // engine become device-side packs (width 1 needs none at all).
    if (batch.size() == 1) {
      System& s = sys[batch.front()];
      f_.apply_device(s.d_p, s.d_q, 1);
    } else {
      cptrs.clear();
      ptrs.clear();
      for (std::size_t j : batch) {
        cptrs.push_back(sys[j].d_p);
        ptrs.push_back(sys[j].d_q);
      }
      gpu::kernels::pack_columns(main, cptrs, xpanel, n);
      f_.apply_device(xpanel, ypanel, static_cast<idx>(batch.size()));
      gpu::kernels::unpack_columns(main, ypanel, ptrs, n);
    }

    // pq = pᵀq per system, one fused dot kernel + one scalar block D2H.
    cptrs.clear();
    std::vector<const double*> qptrs;
    for (std::size_t j : batch) {
      cptrs.push_back(sys[j].d_p);
      qptrs.push_back(sys[j].d_q);
    }
    gpu::kernels::dot_many(main, cptrs, qptrs, n, out_dev);
    main.memcpy_d2h(out_host.data(), out_dev, batch.size() * sizeof(double));
    main.synchronize();

    pending.clear();
    alphas.clear();
    std::vector<double*> lam_ptrs, r_ptrs;
    std::vector<const double*> p_ptrs, q_ptrs;
    for (std::size_t b = 0; b < batch.size(); ++b) {
      const std::size_t j = batch[b];
      System& s = sys[j];
      const double pq = out_host[b];
      if (pq <= 0.0) {
        // Same breakdown contract as the host engine; s.rel already holds
        // the value the host recomputes (w is untouched this iteration).
        check(!throw_on_breakdown,
              "Pcpg: operator lost positive definiteness");
        ++s.iterations;
        finalize(j, /*converged=*/false, /*download=*/true);
        continue;
      }
      const double delta = s.wy / pq;                       // line 8
      alphas.push_back(delta);
      p_ptrs.push_back(s.d_p);
      q_ptrs.push_back(s.d_q);
      lam_ptrs.push_back(s.d_lambda);
      r_ptrs.push_back(s.d_r);
      pending.push_back(j);
    }
    if (pending.empty()) continue;
    // Lines 9-11 for all survivors: two fused axpy sweeps + the batched
    // device projector.
    gpu::kernels::axpy_many(main, alphas, p_ptrs, lam_ptrs, n);
    for (double& a : alphas) a = -a;
    gpu::kernels::axpy_many(main, alphas, q_ptrs, r_ptrs, n);
    cptrs.clear();
    ptrs.clear();
    for (std::size_t j : pending) {
      cptrs.push_back(sys[j].d_r);
      ptrs.push_back(sys[j].d_w);
    }
    projector_.apply_device(dev, main, cptrs, ptrs);
    precondition(pending);
    // Lines 13-14: one fused dot for wy', one fused p-recurrence sweep.
    cptrs.clear();
    std::vector<const double*> yptrs;
    for (std::size_t j : pending) {
      cptrs.push_back(sys[j].d_w);
      yptrs.push_back(sys[j].d_y);
    }
    gpu::kernels::dot_many(main, cptrs, yptrs, n, out_dev);
    main.memcpy_d2h(out_host.data(), out_dev,
                    pending.size() * sizeof(double));
    main.synchronize();
    betas.clear();
    ptrs.clear();
    for (std::size_t b = 0; b < pending.size(); ++b) {
      System& s = sys[pending[b]];
      const double wy_next = out_host[b];
      betas.push_back(wy_next / s.wy);                      // line 13
      s.wy = wy_next;
      ptrs.push_back(s.d_p);
      ++s.iterations;
    }
    gpu::kernels::xpby_many(main, yptrs, betas, ptrs, n);   // line 14
  }
  return results;
}

std::vector<PcpgResult> Pcpg::solve_block_impl_device(
    const std::vector<double>* const* d, std::size_t nsys,
    bool throw_on_breakdown) {
  const idx n = f_.problem().num_lambdas;
  for (std::size_t j = 0; j < nsys; ++j)
    check(d[j]->size() == static_cast<std::size_t>(n),
          "Pcpg: rhs size mismatch");
  std::vector<PcpgResult> results(nsys);
  if (nsys == 0) return results;

  KrylovRecycler* recycler = options_.block.recycle ? recycler_ : nullptr;

  gpu::ExecutionContext* ctx = f_.device_context();
  gpu::Device& dev = ctx->device();
  gpu::Stream main = ctx->main_stream();
  const std::size_t N = static_cast<std::size_t>(n);
  const std::size_t vec_bytes = N * sizeof(double);

  struct System {
    std::vector<double> lambda, r;  ///< host copies: setup + finalization
    double* d_lambda = nullptr;
    double* d_r = nullptr;
    double* d_w = nullptr;
    double* d_y = nullptr;
    double* d_p = nullptr;
    double w0_norm = 0.0;
    double rel = 1.0;
    int iterations = 0;
    int deflation_dim = 0;
    bool active = true;
  };
  std::vector<System> sys(nsys);

  // 5 per-system vectors + P/Q panels + preconditioner staging panels +
  // the Gram block, the coefficient block, and the scalar return block.
  DeviceSlab slab(dev, N * (5 * nsys + 4 * nsys) + 2 * nsys * nsys + nsys);
  for (std::size_t j = 0; j < nsys; ++j) {
    sys[j].d_lambda = slab.data + (5 * j + 0) * N;
    sys[j].d_r = slab.data + (5 * j + 1) * N;
    sys[j].d_w = slab.data + (5 * j + 2) * N;
    sys[j].d_y = slab.data + (5 * j + 3) * N;
    sys[j].d_p = slab.data + (5 * j + 4) * N;
  }
  double* xpanel = slab.data + 5 * nsys * N;   ///< search panel P
  double* ypanel = xpanel + nsys * N;          ///< Q = F P
  double* tin = ypanel + nsys * N;             ///< precond staging in
  double* tout = tin + nsys * N;               ///< precond staging out
  double* gram_dev = tout + nsys * N;
  double* coeff_dev = gram_dev + nsys * nsys;
  double* out_dev = coeff_dev + nsys * nsys;
  std::vector<double> out_host(nsys);

  std::vector<double> lambda0(N);
  projector_.initial_lambda(lambda0.data());
  std::vector<double> q0(N);
  f_.apply(lambda0.data(), q0.data());

  const auto finalize = [&](std::size_t j, bool converged, bool download) {
    System& s = sys[j];
    if (download) {
      main.memcpy_d2h(s.lambda.data(), s.d_lambda, vec_bytes);
      main.memcpy_d2h(s.r.data(), s.d_r, vec_bytes);
      main.synchronize();
    }
    if (converged && recycler != nullptr && s.iterations > 0) {
      // Identical harvest to the host engine, on the downloaded state.
      std::vector<double> inc(N);
      std::vector<double> finc(N);
      const std::vector<double>& dj = *d[j];
      for (idx i = 0; i < n; ++i) {
        inc[i] = s.lambda[i] - lambda0[i];
        finc[i] = dj[i] - s.r[i] - q0[i];
      }
      recycler->absorb(inc.data(), finc.data());
    }
    results[j].iterations = s.iterations;
    results[j].rel_residual = s.rel;
    results[j].converged = converged;
    results[j].deflation_dim = s.deflation_dim;
    results[j].alpha = projector_.alpha(s.r.data());
    results[j].lambda = std::move(s.lambda);
    s.active = false;
  };

  std::vector<const double*> cptrs;
  std::vector<double*> ptrs;
  // Device twin of the deflated preconditioner step: M⁻¹ on device views,
  // device projector, then the recycler's device panel projection. A
  // preconditioner pooled on a different execution context (the sharded
  // operator anchors on its internal shard-0 context) needs `main` drained
  // first — its streams carry no ordering against the main queue.
  const bool foreign_m =
      m_ != nullptr && m_->device_context() != ctx;
  const auto precondition = [&](const std::vector<std::size_t>& js) {
    if (js.empty()) return;
    const bool deflate = recycler != nullptr && recycler->dim() > 0;
    ptrs.clear();
    for (std::size_t j : js) ptrs.push_back(sys[j].d_y);
    if (m_ == nullptr) {
      for (std::size_t j : js)
        gpu::kernels::copy(main, sys[j].d_w, sys[j].d_y, n);
    } else if (js.size() == 1) {
      System& s = sys[js.front()];
      if (foreign_m) main.synchronize();
      m_->apply_device(s.d_w, tin, 1);
      projector_.apply_device(dev, main, {tin}, {s.d_y});
    } else {
      cptrs.clear();
      for (std::size_t j : js) cptrs.push_back(sys[j].d_w);
      gpu::kernels::pack_columns(main, cptrs, tin, n);
      if (foreign_m) main.synchronize();
      m_->apply_device(tin, tout, static_cast<idx>(js.size()));
      cptrs.clear();
      for (std::size_t b = 0; b < js.size(); ++b)
        cptrs.push_back(tout + b * N);
      projector_.apply_device(dev, main, cptrs, ptrs);
    }
    if (deflate) recycler->project_out_device(dev, main, ptrs);
  };

  // Host-side setup identical to the host engine (floor check, Galerkin
  // warm start, the *batched* first preconditioned direction), then one
  // upload of the live per-system state.
  std::vector<std::vector<double>> w0v(nsys), y0(nsys);
  std::vector<double> t_host(N), tin_host, tout_host;
  std::vector<std::size_t> pending;
  for (std::size_t j = 0; j < nsys; ++j) {
    System& s = sys[j];
    s.lambda = lambda0;
    s.r.resize(N);
    const std::vector<double>& dj = *d[j];
    for (idx i = 0; i < n; ++i) s.r[i] = dj[i] - q0[i];
    w0v[j].resize(N);
    projector_.apply(s.r.data(), w0v[j].data());
    s.w0_norm = la::nrm2(n, w0v[j].data());
    if (s.w0_norm <= w0_floor(n, la::nrm2(n, dj.data()))) {
      s.rel = 0.0;
      finalize(j, /*converged=*/true, /*download=*/false);
      continue;
    }
    if (recycler != nullptr && recycler->dim() > 0) {
      s.deflation_dim = recycler->deflate_initial(s.lambda.data(),
                                                  s.r.data());
      projector_.apply(s.r.data(), w0v[j].data());
    }
    pending.push_back(j);
  }
  if (!pending.empty()) {
    const bool deflate = recycler != nullptr && recycler->dim() > 0;
    const auto project_y = [&](const double* src, double* dst) {
      if (deflate)
        projector_.apply_deflated(src, dst, *recycler);
      else
        projector_.apply(src, dst);
    };
    for (std::size_t j : pending) y0[j].resize(N);
    if (m_ == nullptr) {
      for (std::size_t j : pending) {
        y0[j] = w0v[j];
        if (deflate) recycler->project_out(y0[j].data(), 1);
      }
    } else if (pending.size() == 1) {
      const std::size_t j = pending.front();
      m_->apply(w0v[j].data(), t_host.data());
      project_y(t_host.data(), y0[j].data());
    } else {
      tin_host.resize(N * pending.size());
      tout_host.resize(tin_host.size());
      for (std::size_t b = 0; b < pending.size(); ++b)
        std::copy_n(w0v[pending[b]].data(), n, tin_host.data() + b * N);
      m_->apply(tin_host.data(), tout_host.data(),
                static_cast<idx>(pending.size()));
      for (std::size_t b = 0; b < pending.size(); ++b)
        project_y(tout_host.data() + b * N, y0[pending[b]].data());
    }
  }
  for (std::size_t j : pending) {
    System& s = sys[j];
    main.memcpy_h2d(s.d_lambda, s.lambda.data(), vec_bytes);
    main.memcpy_h2d(s.d_r, s.r.data(), vec_bytes);
    main.memcpy_h2d(s.d_w, w0v[j].data(), vec_bytes);
    main.memcpy_h2d(s.d_y, y0[j].data(), vec_bytes);
    main.memcpy_h2d(s.d_p, y0[j].data(), vec_bytes);  // p = y
  }
  main.synchronize();

  std::vector<double> coeff_host;
  la::DenseMatrix gram_mat;
  std::vector<std::size_t> batch;
  GramSolver gram;
  for (;;) {
    batch.clear();
    std::vector<std::size_t> active;
    cptrs.clear();
    for (std::size_t j = 0; j < nsys; ++j) {
      if (!sys[j].active) continue;
      active.push_back(j);
      cptrs.push_back(sys[j].d_w);
    }
    if (active.empty()) break;
    gpu::kernels::nrm2_many(main, cptrs, n, out_dev);
    main.memcpy_d2h(out_host.data(), out_dev,
                    active.size() * sizeof(double));
    main.synchronize();
    for (std::size_t b = 0; b < active.size(); ++b) {
      const std::size_t j = active[b];
      System& s = sys[j];
      s.rel = out_host[b] / s.w0_norm;
      if (s.rel <= options_.rel_tolerance) {
        finalize(j, /*converged=*/true, /*download=*/true);
      } else if (s.iterations >= options_.max_iterations) {
        finalize(j, /*converged=*/false, /*download=*/true);
      } else {
        batch.push_back(j);
      }
    }
    if (batch.empty()) break;

    // Shared panel apply Q = F P; width 1 aliases the system's own device
    // direction exactly like the host engine's width-1 path.
    const idx width = static_cast<idx>(batch.size());
    const double* panel = nullptr;
    if (width == 1) {
      System& s = sys[batch.front()];
      f_.apply_device(s.d_p, ypanel, 1);
      panel = s.d_p;
    } else {
      cptrs.clear();
      for (std::size_t j : batch) cptrs.push_back(sys[j].d_p);
      gpu::kernels::pack_columns(main, cptrs, xpanel, n);
      f_.apply_device(xpanel, ypanel, width);
      panel = xpanel;
    }
    const gpu::DeviceDense pdev{const_cast<double*>(panel), n, width, n,
                                la::Layout::ColMajor};
    const gpu::DeviceDense qdev{ypanel, n, width, n, la::Layout::ColMajor};

    // Gram block PᵀFP as one device gemm; only the width² block comes back
    // for the host-side rank-revealing factorization.
    main.submit([pdev, qdev, gram_dev, width] {
      la::DenseView g(gram_dev, width, width, width, la::Layout::ColMajor);
      la::gemm(1.0, pdev.cview(), la::Trans::Yes, qdev.cview(), la::Trans::No,
               0.0, g);
    });
    gram_mat = la::DenseMatrix(width, width, la::Layout::ColMajor);
    main.memcpy_d2h(gram_mat.data(), gram_dev,
                    static_cast<std::size_t>(width) * width * sizeof(double));
    main.synchronize();
    gram.factor(gram_mat, options_.block.pivot_rel_tolerance);
    if (gram.rank() == 0) {
      // Whole-panel breakdown, same contract as the host engine; s.rel
      // already holds the value the host recomputes.
      check(!throw_on_breakdown,
            "Pcpg: operator lost positive definiteness");
      for (std::size_t j : batch) {
        ++sys[j].iterations;
        finalize(j, /*converged=*/false, /*download=*/true);
      }
      continue;
    }

    // Step coefficients for every system: one fused Pᵀw sweep, one
    // coefficient-block round trip for the host Gram solves, one fused
    // λ/r update sweep, then the batched device projector.
    const std::size_t W = static_cast<std::size_t>(width);
    {
      std::vector<const double*> wptrs;
      for (std::size_t j : batch) wptrs.push_back(sys[j].d_w);
      main.submit([pdev, coeff_dev, W, wptrs] {
        for (std::size_t b = 0; b < wptrs.size(); ++b)
          la::gemv(1.0, pdev.cview(), la::Trans::Yes, wptrs[b], 0.0,
                   coeff_dev + b * W);
      });
    }
    coeff_host.resize(W * batch.size());
    main.memcpy_d2h(coeff_host.data(), coeff_dev,
                    coeff_host.size() * sizeof(double));
    main.synchronize();
    for (std::size_t b = 0; b < batch.size(); ++b)
      gram.solve(coeff_host.data() + b * W);
    main.memcpy_h2d(coeff_dev, coeff_host.data(),
                    coeff_host.size() * sizeof(double));
    {
      std::vector<double*> lam_ptrs, r_ptrs;
      for (std::size_t j : batch) {
        lam_ptrs.push_back(sys[j].d_lambda);
        r_ptrs.push_back(sys[j].d_r);
      }
      main.submit([pdev, qdev, coeff_dev, W, lam_ptrs, r_ptrs] {
        for (std::size_t b = 0; b < lam_ptrs.size(); ++b) {
          la::gemv(1.0, pdev.cview(), la::Trans::No, coeff_dev + b * W, 1.0,
                   lam_ptrs[b]);
          la::gemv(-1.0, qdev.cview(), la::Trans::No, coeff_dev + b * W, 1.0,
                   r_ptrs[b]);
        }
      });
    }
    cptrs.clear();
    ptrs.clear();
    for (std::size_t j : batch) {
      cptrs.push_back(sys[j].d_r);
      ptrs.push_back(sys[j].d_w);
    }
    projector_.apply_device(dev, main, cptrs, ptrs);
    for (std::size_t j : batch) ++sys[j].iterations;

    // Next panel: preconditioned (and deflation-projected) residuals,
    // conjugated against the current panel — one fused QᵀY sweep, one
    // coefficient round trip, one fused p-update sweep.
    precondition(batch);
    {
      std::vector<const double*> yptrs;
      for (std::size_t j : batch) yptrs.push_back(sys[j].d_y);
      main.submit([qdev, coeff_dev, W, yptrs] {
        for (std::size_t b = 0; b < yptrs.size(); ++b)
          la::gemv(1.0, qdev.cview(), la::Trans::Yes, yptrs[b], 0.0,
                   coeff_dev + b * W);
      });
    }
    main.memcpy_d2h(coeff_host.data(), coeff_dev,
                    coeff_host.size() * sizeof(double));
    main.synchronize();
    for (std::size_t b = 0; b < batch.size(); ++b) {
      gram.solve(coeff_host.data() + b * W);
      la::scal(width, -1.0, coeff_host.data() + b * W);
    }
    main.memcpy_h2d(coeff_dev, coeff_host.data(),
                    coeff_host.size() * sizeof(double));
    if (width == 1) {
      // The panel aliases d_p: conjugate in place on y and swap pointers,
      // mirroring the host engine's width-1 recurrence.
      System& s = sys[batch.front()];
      double* d_y = s.d_y;
      main.submit([pdev, coeff_dev, d_y] {
        la::gemv(1.0, pdev.cview(), la::Trans::No, coeff_dev, 1.0, d_y);
      });
      std::swap(s.d_p, s.d_y);
    } else {
      std::vector<const double*> yptrs;
      ptrs.clear();
      for (std::size_t j : batch) {
        yptrs.push_back(sys[j].d_y);
        ptrs.push_back(sys[j].d_p);
      }
      main.submit([pdev, coeff_dev, W, n, yptrs, ptrs] {
        for (std::size_t b = 0; b < yptrs.size(); ++b) {
          std::copy_n(yptrs[b], static_cast<std::size_t>(n), ptrs[b]);
          la::gemv(1.0, pdev.cview(), la::Trans::No, coeff_dev + b * W, 1.0,
                   ptrs[b]);
        }
      });
    }
  }
  return results;
}

}  // namespace feti::core
