#include "core/config.hpp"

#include <array>
#include <stdexcept>

#include "util/common.hpp"

namespace feti::core {

namespace {

std::string bad_token(std::string_view what, std::string_view s) {
  return std::string(what) + ": unknown value '" + std::string(s) + "'";
}

/// Short backend name as used inside Table-III keys.
const char* backend_key_name(sparse::Backend b) {
  return b == sparse::Backend::Supernodal ? "mkl" : "cholmod";
}

}  // namespace

// ---------------------------------------------------------------------------
// Axis enums
// ---------------------------------------------------------------------------

const char* to_string(Representation r) {
  return r == Representation::Implicit ? "implicit" : "explicit";
}

const char* to_string(ExecDevice d) {
  switch (d) {
    case ExecDevice::Cpu: return "cpu";
    case ExecDevice::Gpu: return "gpu";
    case ExecDevice::Hybrid: return "hybrid";
  }
  return "?";
}

const char* to_string(Precision p) {
  return p == Precision::F64 ? "f64" : "f32";
}

Representation parse_representation(std::string_view s) {
  if (s == "implicit" || s == "impl") return Representation::Implicit;
  if (s == "explicit" || s == "expl") return Representation::Explicit;
  throw std::invalid_argument(bad_token("parse_representation", s));
}

ExecDevice parse_exec_device(std::string_view s) {
  if (s == "cpu" || s == "CPU") return ExecDevice::Cpu;
  if (s == "gpu" || s == "GPU") return ExecDevice::Gpu;
  if (s == "hybrid") return ExecDevice::Hybrid;
  throw std::invalid_argument(bad_token("parse_exec_device", s));
}

Precision parse_precision(std::string_view s) {
  if (s == "f64" || s == "fp64" || s == "double") return Precision::F64;
  if (s == "f32" || s == "fp32" || s == "single") return Precision::F32;
  throw std::invalid_argument(bad_token("parse_precision", s));
}

// ---------------------------------------------------------------------------
// ApproachAxes
// ---------------------------------------------------------------------------

bool ApproachAxes::valid() const {
  // fp32 storage demotes assembled F̃ blocks; the implicit families have no
  // such persistent storage, so the precision axis is explicit-only.
  if (precision == Precision::F32 && repr != Representation::Explicit)
    return false;
  // Sparsity-aware assembly restricts the RHS panel of the explicit
  // assembly solve; the implicit families never form that panel.
  if (sparsity && repr != Representation::Explicit) return false;
  switch (device) {
    case ExecDevice::Cpu:
      return true;  // any representation x backend pairing exists on the CPU
    case ExecDevice::Gpu:
      // Both GPU paths consume exported factors — simplicial only.
      return backend == sparse::Backend::Simplicial;
    case ExecDevice::Hybrid:
      // Hybrid = explicit Schur assembly (supernodal) + GPU application.
      return repr == Representation::Explicit &&
             backend == sparse::Backend::Supernodal;
  }
  return false;
}

std::string ApproachAxes::key() const {
  check(valid(), "ApproachAxes::key: invalid axis combination " + describe());
  std::string out = repr == Representation::Implicit ? "impl " : "expl ";
  switch (device) {
    case ExecDevice::Cpu: out += backend_key_name(backend); break;
    case ExecDevice::Gpu: out += gpu::sparse::to_string(api); break;
    case ExecDevice::Hybrid: out += "hybrid"; break;
  }
  if (sparsity) out += " sp";
  if (precision == Precision::F32) out += " f32";
  return out;
}

std::string ApproachAxes::describe() const {
  std::string out = to_string(repr);
  out += '/';
  out += to_string(device);
  out += '/';
  out += sparse::axis_name(backend);
  if (device != ExecDevice::Cpu) {
    out += '/';
    out += gpu::sparse::to_string(api);
  }
  out += '/';
  out += to_string(precision);
  if (sparsity) out += "/sp";
  return out;
}

ApproachAxes parse_axes(std::string_view key) {
  const std::string_view full_key = key;
  // Optional trailing axis tokens: "<repr> <variant>[ sp][ f32]".
  Precision precision = Precision::F64;
  constexpr std::string_view f32_suffix = " f32";
  if (key.size() > f32_suffix.size() &&
      key.substr(key.size() - f32_suffix.size()) == f32_suffix) {
    precision = Precision::F32;
    key.remove_suffix(f32_suffix.size());
  }
  bool sparsity = false;
  constexpr std::string_view sp_suffix = " sp";
  if (key.size() > sp_suffix.size() &&
      key.substr(key.size() - sp_suffix.size()) == sp_suffix) {
    sparsity = true;
    key.remove_suffix(sp_suffix.size());
  }
  const std::size_t space = key.find(' ');
  if (space != std::string_view::npos) {
    const std::string_view repr_tok = key.substr(0, space);
    const std::string_view variant = key.substr(space + 1);
    if (repr_tok == "impl" || repr_tok == "expl") {
      ApproachAxes axes;
      axes.precision = precision;
      axes.sparsity = sparsity;
      axes.repr = parse_representation(repr_tok);
      if (variant == "mkl" || variant == "cholmod") {
        axes.device = ExecDevice::Cpu;
        axes.backend = variant == "mkl" ? sparse::Backend::Supernodal
                                        : sparse::Backend::Simplicial;
      } else if (variant == "legacy" || variant == "modern") {
        axes.device = ExecDevice::Gpu;
        axes.backend = sparse::Backend::Simplicial;
        axes.api = gpu::sparse::parse_api(variant);
      } else if (variant == "hybrid") {
        axes.device = ExecDevice::Hybrid;
        axes.backend = sparse::Backend::Supernodal;
      } else {
        throw std::invalid_argument(bad_token("parse_axes", full_key));
      }
      if (!axes.valid())
        throw std::invalid_argument(bad_token("parse_axes", full_key));
      return axes;
    }
  }
  throw std::invalid_argument(bad_token("parse_axes", full_key));
}

// ---------------------------------------------------------------------------
// Legacy Approach alias
// ---------------------------------------------------------------------------

namespace {

struct ApproachRow {
  Approach approach;
  ApproachAxes axes;
};

const std::array<ApproachRow, 9>& approach_table() {
  using R = Representation;
  using D = ExecDevice;
  using B = sparse::Backend;
  using A = gpu::sparse::Api;
  static const std::array<ApproachRow, 9> table = {{
      {Approach::ImplMkl, {R::Implicit, D::Cpu, B::Supernodal, A::Legacy}},
      {Approach::ImplCholmod,
       {R::Implicit, D::Cpu, B::Simplicial, A::Legacy}},
      {Approach::ImplLegacy,
       {R::Implicit, D::Gpu, B::Simplicial, A::Legacy}},
      {Approach::ImplModern,
       {R::Implicit, D::Gpu, B::Simplicial, A::Modern}},
      {Approach::ExplMkl, {R::Explicit, D::Cpu, B::Supernodal, A::Legacy}},
      {Approach::ExplCholmod,
       {R::Explicit, D::Cpu, B::Simplicial, A::Legacy}},
      {Approach::ExplLegacy,
       {R::Explicit, D::Gpu, B::Simplicial, A::Legacy}},
      {Approach::ExplModern,
       {R::Explicit, D::Gpu, B::Simplicial, A::Modern}},
      {Approach::ExplHybrid,
       {R::Explicit, D::Hybrid, B::Supernodal, A::Legacy}},
  }};
  return table;
}

}  // namespace

const char* to_string(Approach a) {
  switch (a) {
    case Approach::ImplMkl: return "impl mkl";
    case Approach::ImplCholmod: return "impl cholmod";
    case Approach::ImplLegacy: return "impl legacy";
    case Approach::ImplModern: return "impl modern";
    case Approach::ExplMkl: return "expl mkl";
    case Approach::ExplCholmod: return "expl cholmod";
    case Approach::ExplLegacy: return "expl legacy";
    case Approach::ExplModern: return "expl modern";
    case Approach::ExplHybrid: return "expl hybrid";
  }
  return "?";
}

std::vector<Approach> all_approaches() {
  std::vector<Approach> out;
  out.reserve(approach_table().size());
  for (const auto& row : approach_table()) out.push_back(row.approach);
  return out;
}

ApproachAxes axes_of(Approach a) {
  for (const auto& row : approach_table())
    if (row.approach == a) return row.axes;
  throw std::invalid_argument("axes_of: unknown approach");
}

Approach approach_of(const ApproachAxes& axes) {
  // The api axis only distinguishes implementations on the GPU; CPU and
  // hybrid tuples ignore it (matching valid()/key()). The nine Table-III
  // enumerators are all fp64 dense-RHS — fp32 and sparsity-aware tuples
  // have no legacy alias.
  const bool api_relevant = axes.device == ExecDevice::Gpu;
  for (const auto& row : approach_table()) {
    if (row.axes.repr == axes.repr && row.axes.device == axes.device &&
        row.axes.backend == axes.backend &&
        row.axes.precision == axes.precision &&
        row.axes.sparsity == axes.sparsity &&
        (!api_relevant || row.axes.api == axes.api))
      return row.approach;
  }
  throw std::invalid_argument("approach_of: no legacy enumerator for axes " +
                              axes.describe());
}

Approach parse_approach(std::string_view name) {
  for (const auto& row : approach_table())
    if (name == to_string(row.approach)) return row.approach;
  throw std::invalid_argument(bad_token("parse_approach", name));
}

// uses_gpu / is_explicit live in dualop_registry.cpp: they are answered
// from the registered implementation metadata.

// ---------------------------------------------------------------------------
// Explicit GPU assembly parameters
// ---------------------------------------------------------------------------

const char* to_string(Path p) { return p == Path::Trsm ? "TRSM" : "SYRK"; }

const char* to_string(FactorStorage s) {
  return s == FactorStorage::Sparse ? "sparse" : "dense";
}

const char* to_string(SgLocation s) { return s == SgLocation::Cpu ? "CPU" : "GPU"; }

std::string ExplicitGpuOptions::describe() const {
  std::string out;
  out += "path=";
  out += to_string(path);
  out += " fwd=";
  out += to_string(fwd_storage);
  out += "/";
  out += la::to_string(fwd_order);
  if (path == Path::Trsm) {
    out += " bwd=";
    out += to_string(bwd_storage);
    out += "/";
    out += la::to_string(bwd_order);
  }
  out += " rhs=";
  out += la::to_string(rhs_order);
  out += " sg=";
  out += to_string(scatter_gather);
  return out;
}

// ---------------------------------------------------------------------------
// DualOpConfig
// ---------------------------------------------------------------------------

std::string DualOpConfig::resolved_key() const {
  return key.empty() ? axes_of(approach).key() : key;
}

// DualOpConfig::axes() lives in dualop_registry.cpp: registered keys
// resolve through the registry metadata (so out-of-tree registrations
// work), with parse_axes as the fallback for unregistered spellings.

}  // namespace feti::core
