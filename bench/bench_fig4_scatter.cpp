// Reproduces Fig. 4 of the paper: the per-subdomain application time of the
// explicit GPU dual operator when the dual-vector scatter/gather runs on
// the CPU vs on the GPU (heat transfer 3D, quadratic tetrahedra). Paper
// shape: the GPU placement wins for small subdomains (fewer kernel
// submissions), while the CPU placement catches up for large ones (more
// copy/compute concurrency).

#include "common.hpp"

using namespace feti;
using namespace feti::bench;

int main() {
  gpu::ExecutionContext& device = shared_context();
  const std::vector<idx> cells = {1, 2, 3, 5};

  std::printf("=== Fig. 4: scatter/gather placement — explicit GPU "
              "application time per subdomain [ms] ===\n");
  Table table({"DOFs/subdomain", "lambdas/subdomain", "CPU", "GPU",
               "GPU speedup"});
  bool gpu_wins_small = false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    BuiltProblem bp = build_problem(3, fem::Physics::HeatTransfer, cells[i],
                                    mesh::ElementOrder::Quadratic);
    double t[2] = {0, 0};
    for (auto sg : {core::SgLocation::Cpu, core::SgLocation::Gpu}) {
      core::DualOpConfig cfg;
      cfg.approach = core::Approach::ExplLegacy;
      cfg.gpu = core::recommend_options(gpu::sparse::Api::Legacy, 3,
                                        bp.dofs_per_subdomain);
      cfg.gpu.scatter_gather = sg;
      t[sg == core::SgLocation::Gpu] =
          measure_dualop(bp.problem, cfg, device, 3, 0.02).apply_ms;
    }
    idx max_lam = 0;
    for (const auto& s : bp.problem.sub)
      max_lam = std::max(max_lam, s.num_local_lambdas());
    table.add_row({std::to_string(bp.dofs_per_subdomain),
                   std::to_string(max_lam), Table::num(t[0], 4),
                   Table::num(t[1], 4), Table::num(t[0] / t[1], 2)});
    if (i == 0 && t[1] <= t[0]) gpu_wins_small = true;
  }
  table.print();
  shape_check("GPU scatter/gather wins for small subdomains (submission "
              "overhead dominates the CPU variant)",
              gpu_wins_small);
  return 0;
}
