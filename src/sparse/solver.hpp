#pragma once

// Common interface of the two sparse direct solver backends.
//
// The two backends deliberately mirror the capability split that shapes the
// paper's design space (Section V):
//
//  * SimplicialCholesky ("CHOLMOD stand-in") — somewhat slower numeric
//    factorization, but *exports its factors*, which is what feeds the GPU
//    assembly and the explicit CPU TRSM path.
//  * SupernodalCholesky ("MKL PARDISO stand-in") — faster numeric
//    factorization (dense BLAS-3 panels) and provides the augmented
//    Schur-complement path, but does *not* export factors, so it cannot feed
//    the GPU assembly — exactly the constraint the paper reports for MKL.

#include <memory>
#include <string_view>
#include <vector>

#include "la/csr.hpp"
#include "la/dense.hpp"
#include "sparse/ordering.hpp"

namespace feti::sparse {

enum class Backend {
  Simplicial,  ///< CHOLMOD stand-in (factor extraction supported)
  Supernodal,  ///< MKL PARDISO stand-in (Schur complement supported)
};

const char* to_string(Backend b);

/// Canonical single-word axis name ("supernodal" / "simplicial") — the
/// round-trippable counterpart of the descriptive to_string.
const char* axis_name(Backend b);

/// Inverse of axis_name; also accepts the descriptive to_string output and
/// the stand-in library nicknames ("mkl", "pardiso", "cholmod"). Throws
/// std::invalid_argument on unknown names.
Backend parse_backend(std::string_view s);

class DirectSolver {
 public:
  virtual ~DirectSolver() = default;

  /// Symbolic analysis: ordering + elimination structure. `a` is the full
  /// symmetric SPD matrix (both triangles stored). Call once per pattern.
  virtual void analyze(const la::Csr& a,
                       OrderingKind ordering = OrderingKind::MinimumDegree) = 0;

  /// Numeric factorization. The pattern must match the analyzed one; values
  /// may change between calls (multi-step simulations re-enter here).
  virtual void factorize(const la::Csr& a) = 0;

  /// x = A^{-1} b (dense vectors of size dim()).
  virtual void solve(const double* b, double* x) const = 0;

  /// X = A^{-1} B column-wise.
  virtual void solve_many(la::ConstDenseView b, la::DenseView x) const;

  [[nodiscard]] virtual idx dim() const = 0;
  [[nodiscard]] virtual widx factor_nnz() const = 0;

  /// Fill-reducing permutation used internally, perm[new] = old.
  [[nodiscard]] virtual const std::vector<idx>& permutation() const = 0;

  // -- factor extraction (simplicial backend only) --

  [[nodiscard]] virtual bool supports_factor_extraction() const {
    return false;
  }
  /// Lower-triangular factor L of P A P^T = L L^T, CSR with sorted rows and
  /// the diagonal as the last entry of each row. Throws if unsupported.
  [[nodiscard]] virtual const la::Csr& factor_lower() const;
  /// Upper-triangular factor L^T, CSR with the diagonal first in each row
  /// (equivalently: L in CSC). Throws if unsupported.
  [[nodiscard]] virtual const la::Csr& factor_upper() const;

  // -- Schur complement (supernodal backend only) --

  [[nodiscard]] virtual bool supports_schur() const { return false; }
  /// Factorizes A and simultaneously computes S = B A^{-1} B^T through a
  /// partial factorization of the augmented matrix [[A, B^T], [B, 0]]
  /// (the augmented incomplete factorization of the paper's reference [6]).
  /// Only the `uplo` triangle of `s` is written. Throws if unsupported.
  virtual void factorize_schur(const la::Csr& a, const la::Csr& b,
                               la::DenseView s, la::Uplo uplo);
};

std::unique_ptr<DirectSolver> make_solver(Backend backend);

}  // namespace feti::sparse
