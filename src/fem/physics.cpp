#include "fem/physics.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "fem/quadrature.hpp"
#include "fem/shape.hpp"

namespace feti::fem {

const char* to_string(Physics p) {
  return p == Physics::HeatTransfer ? "heat-transfer" : "linear-elasticity";
}

namespace {

/// Affine simplex geometry: J(:, r) = x_{r+1} - x_0 over corner nodes.
/// Returns |det J| and fills the inverse.
double affine_jacobian(int dim, const double* coords, double* jinv) {
  double j[9];
  for (int r = 0; r < dim; ++r)
    for (int d = 0; d < dim; ++d)
      j[d * dim + r] = coords[(r + 1) * dim + d] - coords[d];
  double det;
  if (dim == 2) {
    det = j[0] * j[3] - j[1] * j[2];
    check(det != 0.0, "element_system: degenerate element");
    const double inv = 1.0 / det;
    jinv[0] = j[3] * inv;
    jinv[1] = -j[1] * inv;
    jinv[2] = -j[2] * inv;
    jinv[3] = j[0] * inv;
  } else {
    det = j[0] * (j[4] * j[8] - j[5] * j[7]) -
          j[1] * (j[3] * j[8] - j[5] * j[6]) +
          j[2] * (j[3] * j[7] - j[4] * j[6]);
    check(det != 0.0, "element_system: degenerate element");
    const double inv = 1.0 / det;
    jinv[0] = (j[4] * j[8] - j[5] * j[7]) * inv;
    jinv[1] = (j[2] * j[7] - j[1] * j[8]) * inv;
    jinv[2] = (j[1] * j[5] - j[2] * j[4]) * inv;
    jinv[3] = (j[5] * j[6] - j[3] * j[8]) * inv;
    jinv[4] = (j[0] * j[8] - j[2] * j[6]) * inv;
    jinv[5] = (j[2] * j[3] - j[0] * j[5]) * inv;
    jinv[6] = (j[3] * j[7] - j[4] * j[6]) * inv;
    jinv[7] = (j[1] * j[6] - j[0] * j[7]) * inv;
    jinv[8] = (j[0] * j[4] - j[1] * j[3]) * inv;
  }
  return std::fabs(det);
}

/// Physical gradients: g_phys = Jinv^T * g_ref per node.
void physical_gradients(int dim, int npe, const double* jinv,
                        const double* dn_ref, double* dn_phys) {
  for (int a = 0; a < npe; ++a)
    for (int d = 0; d < dim; ++d) {
      double acc = 0.0;
      for (int r = 0; r < dim; ++r)
        acc += jinv[r * dim + d] * dn_ref[a * dim + r];
      dn_phys[a * dim + d] = acc;
    }
}

void heat_element(mesh::ElementType type, const double* coords,
                  const Material& mat, la::DenseView ke, double* fe) {
  const int dim = mesh::element_dim(type);
  const int npe = mesh::nodes_per_element(type);
  const int degree =
      (type == mesh::ElementType::Tri3 || type == mesh::ElementType::Tet4)
          ? 1 : 2;
  const auto rule = simplex_rule(dim, std::max(2, degree));
  double jinv[9];
  const double detj = affine_jacobian(dim, coords, jinv);
  std::array<double, 10> n;
  std::array<double, 30> dn_ref, dn;
  for (const auto& qp : rule) {
    shape_values(type, qp.xi.data(), n.data());
    shape_gradients(type, qp.xi.data(), dn_ref.data());
    physical_gradients(dim, npe, jinv, dn_ref.data(), dn.data());
    const double wq = qp.weight * detj;
    for (int a = 0; a < npe; ++a) {
      for (int b = 0; b < npe; ++b) {
        double g = 0.0;
        for (int d = 0; d < dim; ++d) g += dn[a * dim + d] * dn[b * dim + d];
        ke.at(a, b) += mat.conductivity * wq * g;
      }
      fe[a] += wq * n[a];  // unit volumetric source
    }
  }
}

void elasticity_element(mesh::ElementType type, const double* coords,
                        const Material& mat, la::DenseView ke, double* fe) {
  const int dim = mesh::element_dim(type);
  const int npe = mesh::nodes_per_element(type);
  const auto rule = simplex_rule(dim, 2);
  double jinv[9];
  const double detj = affine_jacobian(dim, coords, jinv);
  const double e = mat.youngs_modulus, nu = mat.poisson_ratio;
  const double lambda = e * nu / ((1 + nu) * (1 - 2 * nu));
  const double mu = e / (2 * (1 + nu));

  std::array<double, 10> n;
  std::array<double, 30> dn_ref, dn;
  const int nstrain = dim == 2 ? 3 : 6;
  // D matrix (Voigt), isotropic.
  double d[36] = {0};
  for (int i = 0; i < dim; ++i)
    for (int j = 0; j < dim; ++j)
      d[i * nstrain + j] = i == j ? lambda + 2 * mu : lambda;
  for (int i = dim; i < nstrain; ++i) d[i * nstrain + i] = mu;

  std::array<double, 6 * 30> b{};  // B (nstrain x npe*dim), row-major
  for (const auto& qp : rule) {
    shape_values(type, qp.xi.data(), n.data());
    shape_gradients(type, qp.xi.data(), dn_ref.data());
    physical_gradients(dim, npe, jinv, dn_ref.data(), dn.data());
    const double wq = qp.weight * detj;
    const int ncol = npe * dim;
    std::fill(b.begin(), b.begin() + nstrain * ncol, 0.0);
    auto bset = [&](int row, int col, double v) { b[row * ncol + col] = v; };
    for (int a = 0; a < npe; ++a) {
      const double gx = dn[a * dim], gy = dn[a * dim + 1];
      if (dim == 2) {
        bset(0, 2 * a, gx);
        bset(1, 2 * a + 1, gy);
        bset(2, 2 * a, gy);
        bset(2, 2 * a + 1, gx);
      } else {
        const double gz = dn[a * dim + 2];
        bset(0, 3 * a, gx);
        bset(1, 3 * a + 1, gy);
        bset(2, 3 * a + 2, gz);
        bset(3, 3 * a, gy);      // gamma_xy
        bset(3, 3 * a + 1, gx);
        bset(4, 3 * a + 1, gz);  // gamma_yz
        bset(4, 3 * a + 2, gy);
        bset(5, 3 * a, gz);      // gamma_zx
        bset(5, 3 * a + 2, gx);
      }
    }
    // ke += wq * B^T D B.
    for (int i = 0; i < ncol; ++i)
      for (int s = 0; s < nstrain; ++s) {
        double dbsi = 0.0;
        for (int r = 0; r < nstrain; ++r)
          dbsi += d[s * nstrain + r] * b[r * ncol + i];
        if (dbsi == 0.0) continue;
        for (int j = 0; j < ncol; ++j)
          ke.at(i, j) += wq * b[s * ncol + j] * dbsi;
      }
    // Unit downward body force on the last component.
    for (int a = 0; a < npe; ++a)
      fe[a * dim + (dim - 1)] += -wq * n[a];
  }
}

}  // namespace

void element_system(Physics phys, mesh::ElementType type,
                    const double* coords, const Material& mat,
                    la::DenseView ke, double* fe) {
  const int ndof =
      mesh::nodes_per_element(type) * dofs_per_node(phys, mesh::element_dim(type));
  check(ke.rows == ndof && ke.cols == ndof,
        "element_system: ke dimension mismatch");
  for (idx r = 0; r < ke.rows; ++r)
    for (idx c = 0; c < ke.cols; ++c) ke.at(r, c) = 0.0;
  std::fill(fe, fe + ndof, 0.0);
  if (phys == Physics::HeatTransfer)
    heat_element(type, coords, mat, ke, fe);
  else
    elasticity_element(type, coords, mat, ke, fe);
}

}  // namespace feti::fem
