#pragma once

// The FETI dual operator F = B K^+ B^T and its nine implementations
// (Table III). Lifecycle mirrors Algorithm 2 of the paper:
//
//   prepare()     — once: symbolic factorization, persistent GPU memory,
//                   kernel analysis ("preparation").
//   preprocess()  — per time step: numeric factorization and, for explicit
//                   approaches, assembly of the local dual operators F̃ᵢ
//                   ("FETI preprocessing").
//   apply(x, y)   — per PCPG iteration: y = F x on cluster-wide dual
//                   vectors (scatter → local apply → gather).

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "decomp/feti_problem.hpp"
#include "gpu/runtime.hpp"
#include "util/timer.hpp"

namespace feti::core {

class DualOperator {
 public:
  explicit DualOperator(const decomp::FetiProblem& p) : p_(p) {}
  virtual ~DualOperator() = default;

  DualOperator(const DualOperator&) = delete;
  DualOperator& operator=(const DualOperator&) = delete;

  virtual void prepare() = 0;
  virtual void preprocess() = 0;
  /// y = F x; x and y are cluster-wide dual vectors (host memory).
  virtual void apply(const double* x, double* y) = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// x = K^+ b for one subdomain (valid after preprocess()).
  virtual void kplus_solve(idx sub, const double* b, double* x) const = 0;

  // -- shared derived operations --

  /// d = sum_i B̃ᵢ K⁺ᵢ fᵢ − c (right-hand side of the dual system, eq. (7)).
  void compute_d(double* d) const;

  /// Subdomain solutions uᵢ = K⁺ᵢ(fᵢ − B̃ᵢᵀ λᵢ) + Rᵢ αᵢ (eq. (5)); `alpha`
  /// holds the concatenated per-subdomain kernel coefficients.
  void primal_solution(const double* lambda, const std::vector<double>& alpha,
                       std::vector<std::vector<double>>& u) const;

  [[nodiscard]] const decomp::FetiProblem& problem() const { return p_; }
  [[nodiscard]] TimingRegistry& timings() { return timings_; }

 protected:
  /// local[i] = cluster[map_i[i]] for subdomain `sub`.
  void scatter_cpu(const double* cluster, idx sub, double* local) const;
  /// cluster[map_i[i]] += local[i]; caller serializes across subdomains.
  void gather_add_cpu(const double* local, idx sub, double* cluster) const;

  const decomp::FetiProblem& p_;
  mutable TimingRegistry timings_;
};

/// Creates the dual operator for the configured approach. `device` is
/// required for the GPU-backed approaches and ignored otherwise.
std::unique_ptr<DualOperator> make_dual_operator(
    const decomp::FetiProblem& problem, const DualOpConfig& config,
    gpu::Device* device = nullptr);

}  // namespace feti::core
