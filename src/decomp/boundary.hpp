#pragma once

// Boundary DOF detection shared by the Dirichlet preconditioner and the
// sparsity-aware explicit dual operators: the boundary set of a subdomain
// is the column support of its gluing matrix B̃ᵢ — exactly the DOFs that
// couple into the dual space. Everything interface-local (the Dirichlet
// Schur complement, the boundary-restricted RHS panel of the "sp" assembly
// variants) is indexed in the ascending boundary-local order this helper
// fixes.

#include <vector>

#include "decomp/feti_problem.hpp"
#include "la/csr.hpp"

namespace feti::decomp {

/// The boundary support of one subdomain's B̃ᵢ in ascending local-DOF
/// order, plus the derived structures both consumers need.
struct BoundaryDofs {
  /// Ascending local DOF indices in supp(B̃ᵢᵀ).
  std::vector<idx> dofs;
  /// local DOF -> boundary-local index (-1 for interior DOFs); size ndof.
  std::vector<idx> map;
  /// B̃ᵢ with its columns renumbered to boundary-local indices (the
  /// ascending remap keeps the sorted-column invariant). Shape m × nb.
  la::Csr b_b;

  [[nodiscard]] idx count() const { return static_cast<idx>(dofs.size()); }
};

/// Computes the boundary set of subdomain `s` from its gluing matrix. An
/// empty B̃ᵢ (no rows or no stored entries) yields an empty boundary; a
/// fully coupled subdomain yields dofs == [0, ndof).
[[nodiscard]] BoundaryDofs boundary_dofs(const FetiSubdomain& s);

/// The nb × ndof boundary selection matrix E_b: row r holds a single 1.0
/// in column boundary.dofs[r], so E_b x restricts a primal vector to its
/// boundary entries and E_bᵀ scatters them back. This is the sparse RHS
/// panel of the boundary-restricted assembly: G_bb = E_b K⁻¹ E_bᵀ.
[[nodiscard]] la::Csr boundary_selection(const BoundaryDofs& boundary,
                                         idx ndof);

}  // namespace feti::decomp
