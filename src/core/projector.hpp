#pragma once

// The FETI projector P = I − G (GᵀG)⁻¹ Gᵀ with G = B R (eq. (8)), the
// coarse-problem solves behind it, and the kernel coefficients α (eq. (9)).

#include <vector>

#include "decomp/feti_problem.hpp"
#include "la/dense.hpp"

namespace feti::core {

class KrylovRecycler;

class Projector {
 public:
  /// Builds G column-block by column-block (G_i = B̃ᵢ Rᵢ scattered through
  /// the subdomain→cluster multiplier maps), assembles and factorizes GᵀG,
  /// and computes e = Rᵀ f.
  explicit Projector(const decomp::FetiProblem& p);

  /// y = P x.
  void apply(const double* x, double* y) const;

  /// Deflation-augmented apply: y = (I − U (UᵀFU)⁻¹ (FU)ᵀ) P x for the
  /// recycled panel U (GᵀU = 0 holds since the columns are former PCPG
  /// search directions, so the two projections commute). The result stays
  /// in the projector's range AND F-orthogonal to span(U) — the
  /// per-iteration contract of deflated PCPG. The small Gram solve lives
  /// in the recycler (core/krylov_recycler.hpp); empty panels degrade to
  /// the plain apply.
  void apply_deflated(const double* x, double* y,
                      const KrylovRecycler& recycler) const;

  /// λ₀ = G (GᵀG)⁻¹ e — the initial multiplier satisfying Gᵀλ = e. The
  /// vector e = Rᵀ f is recomputed from the problem's current load vectors,
  /// so multi-step simulations with changing values stay consistent.
  void initial_lambda(double* lambda0) const;

  /// α = −(GᵀG)⁻¹ Gᵀ r with r = d − Fλ (eq. (9)).
  [[nodiscard]] std::vector<double> alpha(const double* r) const;

  /// e = Rᵀ f from the problem's current load vectors.
  [[nodiscard]] std::vector<double> compute_e() const;
  [[nodiscard]] idx kernel_total() const { return g_.cols(); }

  /// ‖Gᵀ x‖∞ — test/diagnostic helper (should vanish for projected x).
  [[nodiscard]] double gt_norm(const double* x) const;

 private:
  /// t = (GᵀG)⁻¹ s via the Cholesky factor.
  void coarse_solve(std::vector<double>& s) const;

  const decomp::FetiProblem& p_;
  la::DenseMatrix g_;        ///< num_lambdas x total_kernel, col-major
  la::DenseMatrix gtg_;      ///< Cholesky factor (lower) of GᵀG
};

/// The lumped preconditioner M = Σᵢ B̃ᵢ Kᵢ B̃ᵢᵀ (applied with the original,
/// singular subdomain stiffness).
class LumpedPreconditioner {
 public:
  explicit LumpedPreconditioner(const decomp::FetiProblem& p) : p_(p) {}
  void apply(const double* x, double* y) const;

 private:
  const decomp::FetiProblem& p_;
};

}  // namespace feti::core
