// Tests of the shared boundary-DOF detection (decomp::boundary_dofs) that
// both the Dirichlet preconditioner and the sparsity-aware ("sp") explicit
// dual operators consume: agreement with the brute-force column support of
// B̃ᵢ on reference grids, the boundary-local renumbering invariants, the
// selection matrix E_b, edge cases (all DOFs on the boundary, corner-only
// coupling, empty gluing rows / empty B̃ᵢ), and the determinism of the
// deduplicated Dirichlet path (bit-identical iteration counts across
// independently built solvers).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/feti_solver.hpp"
#include "decomp/boundary.hpp"
#include "decomp/heterogeneous.hpp"
#include "test_helpers.hpp"

namespace feti::decomp {
namespace {

using fem::Physics;
using mesh::ElementOrder;

FetiProblem heat2d_problem(idx cells = 6, idx splits = 2) {
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
  return build_feti_problem(dec, Physics::HeatTransfer);
}

FetiProblem heat3d_problem(idx cells = 4, idx splits = 2) {
  mesh::Mesh m = mesh::make_grid_3d(cells, cells, cells, ElementOrder::Linear);
  auto dec = mesh::decompose_3d(m, cells, cells, cells, splits, splits,
                                splits);
  return build_feti_problem(dec, Physics::HeatTransfer);
}

/// Brute-force reference: the set of columns of B̃ᵢ holding at least one
/// stored entry.
std::set<idx> column_support(const la::Csr& b) {
  std::set<idx> support;
  for (idx e = 0; e < b.nnz(); ++e) support.insert(b.colidx()[e]);
  return support;
}

/// A minimal synthetic subdomain: `ndof` DOFs and the given gluing matrix.
FetiSubdomain synthetic_subdomain(idx ndof, la::Csr b) {
  FetiSubdomain s;
  s.sys.ndof = ndof;
  s.b = std::move(b);
  return s;
}

TEST(BoundaryDofs, MatchesBruteForceColumnSupportOnReferenceGrids) {
  for (const FetiProblem& p : {heat2d_problem(6, 2), heat2d_problem(9, 3),
                               heat3d_problem(4, 2)}) {
    for (idx si = 0; si < p.num_subdomains(); ++si) {
      const FetiSubdomain& s = p.sub[si];
      const BoundaryDofs bd = boundary_dofs(s);
      const std::set<idx> ref = column_support(s.b);

      // The boundary list is exactly the support, ascending, without
      // duplicates.
      ASSERT_EQ(bd.dofs.size(), ref.size()) << "subdomain " << si;
      EXPECT_TRUE(std::is_sorted(bd.dofs.begin(), bd.dofs.end()));
      for (idx d : bd.dofs) EXPECT_TRUE(ref.count(d)) << d;
      EXPECT_EQ(bd.count(), static_cast<idx>(ref.size()));
      // A FETI interface never swallows the whole subdomain on these
      // grids, and never vanishes either: 0 < nb < ndof.
      EXPECT_GT(bd.count(), 0) << "subdomain " << si;
      EXPECT_LT(bd.count(), s.ndof()) << "subdomain " << si;

      // map is the inverse of dofs (-1 off the boundary).
      ASSERT_EQ(bd.map.size(), static_cast<std::size_t>(s.ndof()));
      for (idx d = 0; d < s.ndof(); ++d) {
        const idx bl = bd.map[static_cast<std::size_t>(d)];
        if (ref.count(d)) {
          ASSERT_GE(bl, 0);
          EXPECT_EQ(bd.dofs[static_cast<std::size_t>(bl)], d);
        } else {
          EXPECT_EQ(bl, -1);
        }
      }

      // b_b is B̃ᵢ with columns renumbered boundary-local: same shape but
      // nb columns, same values, columns mapping back through dofs.
      ASSERT_EQ(bd.b_b.nrows(), s.b.nrows());
      ASSERT_EQ(bd.b_b.ncols(), bd.count());
      ASSERT_EQ(bd.b_b.nnz(), s.b.nnz());
      for (idx r = 0; r < s.b.nrows(); ++r) {
        ASSERT_EQ(bd.b_b.row_begin(r), s.b.row_begin(r));
        for (idx k = s.b.row_begin(r); k < s.b.row_end(r); ++k) {
          EXPECT_EQ(bd.dofs[static_cast<std::size_t>(bd.b_b.col(k))],
                    s.b.col(k));
          EXPECT_EQ(bd.b_b.val(k), s.b.val(k));
        }
      }

      // E_b is the nb × ndof selection: one unit entry per row, in the
      // boundary DOF's column.
      const la::Csr e_b = boundary_selection(bd, s.ndof());
      ASSERT_EQ(e_b.nrows(), bd.count());
      ASSERT_EQ(e_b.ncols(), s.ndof());
      ASSERT_EQ(e_b.nnz(), bd.count());
      for (idx r = 0; r < e_b.nrows(); ++r) {
        ASSERT_EQ(e_b.row_end(r) - e_b.row_begin(r), 1);
        EXPECT_EQ(e_b.col(e_b.row_begin(r)),
                  bd.dofs[static_cast<std::size_t>(r)]);
        EXPECT_EQ(e_b.val(e_b.row_begin(r)), 1.0);
      }
    }
  }
}

TEST(BoundaryDofs, AllDofsOnTheBoundary) {
  // Every DOF coupled: dofs == [0, ndof), b_b == B̃ᵢ verbatim.
  const idx n = 4;
  std::vector<la::Triplet> t;
  for (idx d = 0; d < n; ++d) t.push_back({d, d, 1.0});
  FetiSubdomain s =
      synthetic_subdomain(n, la::Csr::from_triplets(n, n, std::move(t)));
  const BoundaryDofs bd = boundary_dofs(s);
  EXPECT_EQ(bd.count(), n);
  for (idx d = 0; d < n; ++d) {
    EXPECT_EQ(bd.dofs[static_cast<std::size_t>(d)], d);
    EXPECT_EQ(bd.map[static_cast<std::size_t>(d)], d);
  }
  EXPECT_EQ(bd.b_b.ncols(), n);
}

TEST(BoundaryDofs, CornerOnlyCoupling) {
  // A single shared corner DOF: two redundant multipliers against one DOF
  // in the middle of the index range.
  const idx n = 9;
  std::vector<la::Triplet> t = {{0, 4, 1.0}, {1, 4, -1.0}};
  FetiSubdomain s =
      synthetic_subdomain(n, la::Csr::from_triplets(2, n, std::move(t)));
  const BoundaryDofs bd = boundary_dofs(s);
  ASSERT_EQ(bd.count(), 1);
  EXPECT_EQ(bd.dofs[0], 4);
  for (idx d = 0; d < n; ++d)
    EXPECT_EQ(bd.map[static_cast<std::size_t>(d)], d == 4 ? 0 : -1);
  // Both multiplier rows renumber onto boundary-local column 0.
  ASSERT_EQ(bd.b_b.nnz(), 2);
  EXPECT_EQ(bd.b_b.col(0), 0);
  EXPECT_EQ(bd.b_b.col(1), 0);
  const la::Csr e_b = boundary_selection(bd, n);
  ASSERT_EQ(e_b.nnz(), 1);
  EXPECT_EQ(e_b.col(0), 4);
}

TEST(BoundaryDofs, EmptyRowBlocksAndEmptyGluingMatrix) {
  // Rows without entries (a multiplier block assigned elsewhere) must not
  // widen the boundary; an entirely empty B̃ᵢ yields the empty boundary.
  const idx n = 6;
  std::vector<la::Triplet> t = {{2, 1, 1.0}, {2, 5, 2.0}};
  FetiSubdomain sparse_rows =
      synthetic_subdomain(n, la::Csr::from_triplets(4, n, std::move(t)));
  const BoundaryDofs bd = boundary_dofs(sparse_rows);
  ASSERT_EQ(bd.count(), 2);
  EXPECT_EQ(bd.dofs[0], 1);
  EXPECT_EQ(bd.dofs[1], 5);
  ASSERT_EQ(bd.b_b.nrows(), 4);
  EXPECT_EQ(bd.b_b.row_begin(0), bd.b_b.row_end(0));  // empty row stays empty
  EXPECT_EQ(bd.b_b.col(bd.b_b.row_begin(2)), 0);
  EXPECT_EQ(bd.b_b.col(bd.b_b.row_begin(2) + 1), 1);

  FetiSubdomain empty =
      synthetic_subdomain(n, la::Csr::from_triplets(3, n, {}));
  const BoundaryDofs be = boundary_dofs(empty);
  EXPECT_EQ(be.count(), 0);
  EXPECT_TRUE(be.dofs.empty());
  for (idx d = 0; d < n; ++d)
    EXPECT_EQ(be.map[static_cast<std::size_t>(d)], -1);
  EXPECT_EQ(be.b_b.nrows(), 3);
  EXPECT_EQ(be.b_b.ncols(), 0);
  const la::Csr e_b = boundary_selection(be, n);
  EXPECT_EQ(e_b.nrows(), 0);
  EXPECT_EQ(e_b.ncols(), n);
}

TEST(BoundaryDofs, DirichletPreconditionerIsDeterministicAfterTheDedup) {
  // The Dirichlet preconditioner now derives its boundary set from the
  // shared helper. Two independently built solvers on the same
  // heterogeneous problem must produce bit-identical iteration counts and
  // solutions — the dedup must not introduce any ordering dependence.
  auto run = [] {
    mesh::Mesh m = mesh::make_grid_2d(8, 8, ElementOrder::Linear);
    auto dec = mesh::decompose_2d(m, 8, 8, 2, 2);
    FetiProblem p = build_feti_problem(
        dec, Physics::HeatTransfer,
        checkerboard_materials_2d(2, 2, 1000.0));
    core::FetiSolverOptions opts;
    opts.dualop.key = "expl mkl";
    opts.pcpg.preconditioner = "dirichlet stiffness";
    opts.pcpg.rel_tolerance = 1e-10;
    opts.pcpg.max_iterations = 2000;
    core::FetiSolver solver(p, opts, nullptr);
    solver.prepare();
    return solver.solve_step();
  };
  const core::FetiStepResult a = run();
  const core::FetiStepResult b = run();
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_EQ(a.pcpg_iterations, b.pcpg_iterations);
  ASSERT_EQ(a.u.size(), b.u.size());
  for (std::size_t i = 0; i < a.u.size(); ++i) EXPECT_EQ(a.u[i], b.u[i]);
}

}  // namespace
}  // namespace feti::decomp
