#include "sparse/etree.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace feti::sparse {

std::vector<idx> elimination_tree(const la::Csr& a) {
  check(a.nrows() == a.ncols(), "elimination_tree: matrix must be square");
  const idx n = a.nrows();
  std::vector<idx> parent(n, -1), ancestor(n, -1);
  for (idx i = 0; i < n; ++i) {
    for (idx k = a.row_begin(i); k < a.row_end(i); ++k) {
      idx j = a.col(k);
      if (j >= i) continue;
      // Walk up with path compression until reaching i or a root.
      while (j != -1 && j != i) {
        const idx next = ancestor[j];
        ancestor[j] = i;
        if (next == -1) parent[j] = i;
        j = next;
      }
    }
  }
  return parent;
}

std::vector<idx> postorder_forest(const std::vector<idx>& parent) {
  const idx n = static_cast<idx>(parent.size());
  // Build child lists (children end up in increasing order).
  std::vector<idx> head(n, -1), next(n, -1);
  for (idx v = n - 1; v >= 0; --v) {
    if (parent[v] == -1) continue;
    next[v] = head[parent[v]];
    head[parent[v]] = v;
  }
  std::vector<idx> post;
  post.reserve(n);
  std::vector<idx> stack;
  for (idx root = 0; root < n; ++root) {
    if (parent[root] != -1) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const idx v = stack.back();
      if (head[v] != -1) {
        // Descend into the next unvisited child.
        const idx c = head[v];
        head[v] = next[c];
        stack.push_back(c);
      } else {
        post.push_back(v);
        stack.pop_back();
      }
    }
  }
  FETI_ASSERT(static_cast<idx>(post.size()) == n,
              "postorder_forest: cycle in parent array");
  return post;
}

SymbolicFactor symbolic_cholesky(const la::Csr& a) {
  check(a.nrows() == a.ncols(), "symbolic_cholesky: matrix must be square");
  const idx n = a.nrows();
  SymbolicFactor s;
  s.n = n;
  s.parent = elimination_tree(a);
  s.colcount.assign(n, 1);  // diagonal
  s.rowpat_ptr.assign(static_cast<std::size_t>(n) + 1, 0);

  // First pass: sizes of the row patterns (ereach of each row).
  std::vector<idx> flag(n, -1);
  for (idx k = 0; k < n; ++k) {
    flag[k] = k;
    idx count = 0;
    for (idx p = a.row_begin(k); p < a.row_end(k); ++p) {
      idx j = a.col(p);
      if (j >= k) continue;
      while (flag[j] != k) {
        FETI_ASSERT(j >= 0 && j < k, "symbolic_cholesky: broken etree walk");
        flag[j] = k;
        ++count;
        s.colcount[j] += 1;
        j = s.parent[j];
      }
    }
    s.rowpat_ptr[k + 1] = s.rowpat_ptr[k] + count;
  }

  // Second pass: fill row patterns, then sort each row ascending.
  s.rowpat.resize(static_cast<std::size_t>(s.rowpat_ptr[n]));
  std::fill(flag.begin(), flag.end(), -1);
  for (idx k = 0; k < n; ++k) {
    flag[k] = k;
    idx pos = s.rowpat_ptr[k];
    for (idx p = a.row_begin(k); p < a.row_end(k); ++p) {
      idx j = a.col(p);
      if (j >= k) continue;
      while (flag[j] != k) {
        flag[j] = k;
        s.rowpat[pos++] = j;
        j = s.parent[j];
      }
    }
    std::sort(s.rowpat.begin() + s.rowpat_ptr[k],
              s.rowpat.begin() + s.rowpat_ptr[k + 1]);
  }

  s.colptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (idx j = 0; j < n; ++j) s.colptr[j + 1] = s.colptr[j] + s.colcount[j];
  s.nnz = s.colptr[n];
  return s;
}

}  // namespace feti::sparse
