// CPU dual-operator implementations:
//   * implicit (supernodal = "impl mkl", simplicial = "impl cholmod"):
//     apply = SpMV(B^T) -> forward/backward solve -> SpMV(B), per
//     subdomain, right-to-left as in eq. (13);
//   * explicit via augmented Schur complement ("expl mkl"): F̃ᵢ assembled by
//     the supernodal backend's partial factorization, exploiting the
//     sparsity of B̃ᵢ;
//   * explicit via factor extraction + dense-RHS TRSM ("expl cholmod"):
//     F̃ᵢ = (L^{-1} B̃ᵢᵀ)^T (L^{-1} B̃ᵢᵀ) with a densified right-hand side
//     (no B̃ᵢ sparsity exploited — the paper's reason it is slowest).

#include <omp.h>

#include "core/dualop_impls.hpp"
#include "util/omp_guard.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"
#include "sparse/simplicial_cholesky.hpp"
#include "sparse/supernodal_cholesky.hpp"

namespace feti::core {

namespace {

/// Column-permutes B̃ᵢ by the solver's fill-reducing permutation:
/// (B P^T)(:, new) = B(:, perm[new]), so entry (r, j) moves to (r, iperm[j]).
la::Csr permute_columns(const la::Csr& b, const std::vector<idx>& perm) {
  const std::vector<idx> iperm = la::invert_permutation(perm);
  std::vector<la::Triplet> t;
  t.reserve(static_cast<std::size_t>(b.nnz()));
  for (idx r = 0; r < b.nrows(); ++r)
    for (idx k = b.row_begin(r); k < b.row_end(r); ++k)
      t.push_back({r, iperm[b.col(k)], b.val(k)});
  return la::Csr::from_triplets(b.nrows(), b.ncols(), std::move(t));
}

// ---------------------------------------------------------------------------
// Implicit CPU (impl mkl / impl cholmod)
// ---------------------------------------------------------------------------

class ImplicitCpuDualOp final : public DualOperator {
 public:
  ImplicitCpuDualOp(const decomp::FetiProblem& p, sparse::Backend backend,
                    sparse::OrderingKind ordering)
      : DualOperator(p), backend_(backend), ordering_(ordering) {}

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const idx nsub = p_.num_subdomains();
    solvers_.resize(static_cast<std::size_t>(nsub));
    lam_.resize(solvers_.size());
    tmp_.resize(solvers_.size());
    tmp2_.resize(solvers_.size());
    q_.resize(solvers_.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        solvers_[s] = sparse::make_solver(backend_);
        solvers_[s]->analyze(p_.sub[s].k_reg, ordering_);
        lam_[s].resize(static_cast<std::size_t>(p_.sub[s].num_local_lambdas()));
        tmp_[s].resize(static_cast<std::size_t>(p_.sub[s].ndof()));
        tmp2_[s].resize(static_cast<std::size_t>(p_.sub[s].ndof()));
        q_[s].resize(lam_[s].size());
      });
    }
    guard.rethrow();
  }

  void preprocess() override {
    ScopedTimer t(timings_, "preprocess");
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] { solvers_[s]->factorize(p_.sub[s].k_reg); });
    }
    guard.rethrow();
  }

  void apply(const double* x, double* y) override {
    ScopedTimer t(timings_, "apply");
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[s];
        scatter_cpu(x, s, lam_[s].data());
        la::spmv_trans(1.0, fs.b, lam_[s].data(), 0.0, tmp_[s].data());
        solvers_[s]->solve(tmp_[s].data(), tmp2_[s].data());
        la::spmv(1.0, fs.b, tmp2_[s].data(), 0.0, q_[s].data());
      });
    }
    guard.rethrow();
    std::fill_n(y, p_.num_lambdas, 0.0);
    for (idx s = 0; s < nsub; ++s) gather_add_cpu(q_[s].data(), s, y);
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override {
    return backend_ == sparse::Backend::Supernodal ? "impl mkl"
                                                   : "impl cholmod";
  }

 private:
  sparse::Backend backend_;
  sparse::OrderingKind ordering_;
  std::vector<std::unique_ptr<sparse::DirectSolver>> solvers_;
  std::vector<std::vector<double>> lam_, tmp_, tmp2_, q_;
};

// ---------------------------------------------------------------------------
// Shared pieces of the explicit CPU operators.
// ---------------------------------------------------------------------------

/// Common explicit-CPU state: dense F̃ᵢ (upper triangle) + SYMV application.
class ExplicitCpuBase : public DualOperator {
 public:
  using DualOperator::DualOperator;

  void apply(const double* x, double* y) override {
    ScopedTimer t(timings_, "apply");
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        scatter_cpu(x, s, lam_[s].data());
        la::symv(la::Uplo::Upper, 1.0, f_[s].cview(), lam_[s].data(), 0.0,
                 q_[s].data());
      });
    }
    guard.rethrow();
    std::fill_n(y, p_.num_lambdas, 0.0);
    for (idx s = 0; s < nsub; ++s) gather_add_cpu(q_[s].data(), s, y);
  }

 protected:
  void alloc_dense_f() {
    const idx nsub = p_.num_subdomains();
    f_.resize(static_cast<std::size_t>(nsub));
    lam_.resize(f_.size());
    q_.resize(f_.size());
    for (idx s = 0; s < nsub; ++s) {
      const idx m = p_.sub[s].num_local_lambdas();
      f_[s] = la::DenseMatrix(m, m, la::Layout::ColMajor);
      lam_[s].resize(static_cast<std::size_t>(m));
      q_[s].resize(static_cast<std::size_t>(m));
    }
  }

  std::vector<la::DenseMatrix> f_;
  std::vector<std::vector<double>> lam_, q_;
};

/// expl mkl: augmented incomplete factorization (Schur path).
class ExplicitCpuSchurDualOp final : public ExplicitCpuBase {
 public:
  ExplicitCpuSchurDualOp(const decomp::FetiProblem& p,
                         sparse::OrderingKind ordering)
      : ExplicitCpuBase(p), ordering_(ordering) {}

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const idx nsub = p_.num_subdomains();
    solvers_.resize(static_cast<std::size_t>(nsub));
    alloc_dense_f();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        solvers_[s] = std::make_unique<sparse::SupernodalCholesky>();
        solvers_[s]->analyze_schur(p_.sub[s].k_reg, p_.sub[s].b, ordering_);
      });
    }
    guard.rethrow();
  }

  void preprocess() override {
    ScopedTimer t(timings_, "preprocess");
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        solvers_[s]->factorize_schur(p_.sub[s].k_reg, p_.sub[s].b,
                                     f_[s].view(), la::Uplo::Upper);
      });
    }
    guard.rethrow();
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override { return "expl mkl"; }

 private:
  sparse::OrderingKind ordering_;
  std::vector<std::unique_ptr<sparse::SupernodalCholesky>> solvers_;
};

/// expl cholmod: factor extraction, densified B̃ᵀ, TRSM + SYRK.
class ExplicitCpuTrsmDualOp final : public ExplicitCpuBase {
 public:
  ExplicitCpuTrsmDualOp(const decomp::FetiProblem& p,
                        sparse::OrderingKind ordering)
      : ExplicitCpuBase(p), ordering_(ordering) {}

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const idx nsub = p_.num_subdomains();
    solvers_.resize(static_cast<std::size_t>(nsub));
    bperm_.resize(solvers_.size());
    alloc_dense_f();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        solvers_[s] = std::make_unique<sparse::SimplicialCholesky>();
        solvers_[s]->analyze(p_.sub[s].k_reg, ordering_);
        bperm_[s] = permute_columns(p_.sub[s].b, solvers_[s]->permutation());
      });
    }
    guard.rethrow();
  }

  void preprocess() override {
    ScopedTimer t(timings_, "preprocess");
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[s];
        solvers_[s]->factorize(fs.k_reg);
        const la::Csr& u = solvers_[s]->factor_upper();
        // Densified right-hand side X = (B̃ᵢ P^T)^T — the point the paper
        // makes about this approach: the sparsity of B̃ᵢ is not used.
        la::DenseMatrix x(fs.ndof(), fs.num_local_lambdas(),
                          la::Layout::RowMajor);
        for (idx r = 0; r < bperm_[s].nrows(); ++r)
          for (idx k = bperm_[s].row_begin(r); k < bperm_[s].row_end(r); ++k)
            x.at(bperm_[s].col(k), r) = bperm_[s].val(k);
        // Forward solve L X = X (U^T X = X), then F = X^T X.
        la::sp_trsm(la::Uplo::Upper, la::Trans::Yes, u, x.view());
        la::syrk(la::Uplo::Upper, la::Trans::Yes, 1.0, x.cview(), 0.0,
                 f_[s].view());
      });
    }
    guard.rethrow();
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override { return "expl cholmod"; }

 private:
  sparse::OrderingKind ordering_;
  std::vector<std::unique_ptr<sparse::SimplicialCholesky>> solvers_;
  std::vector<la::Csr> bperm_;
};

}  // namespace

std::unique_ptr<DualOperator> make_implicit_cpu(
    const decomp::FetiProblem& p, sparse::Backend backend,
    sparse::OrderingKind ordering) {
  return std::make_unique<ImplicitCpuDualOp>(p, backend, ordering);
}

std::unique_ptr<DualOperator> make_explicit_cpu_schur(
    const decomp::FetiProblem& p, sparse::OrderingKind ordering) {
  return std::make_unique<ExplicitCpuSchurDualOp>(p, ordering);
}

std::unique_ptr<DualOperator> make_explicit_cpu_trsm(
    const decomp::FetiProblem& p, sparse::OrderingKind ordering) {
  return std::make_unique<ExplicitCpuTrsmDualOp>(p, ordering);
}

}  // namespace feti::core
