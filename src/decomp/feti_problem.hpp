#pragma once

// The assembled Total FETI problem: everything the dual-operator
// implementations and the PCPG solver need, per subdomain and cluster-wide.

#include <vector>

#include "decomp/kernel.hpp"
#include "decomp/lagrange.hpp"
#include "decomp/regularization.hpp"
#include "fem/assembler.hpp"
#include "mesh/grid.hpp"

namespace feti::decomp {

struct FetiSubdomain {
  fem::SubdomainSystem sys;    ///< K (singular), f, local Dirichlet DOFs
  la::Csr k_reg;               ///< regularized SPD stiffness
  la::DenseMatrix r;           ///< orthonormal kernel basis (ndof x rdim)
  la::Csr b;                   ///< local gluing matrix B̃ᵢ
  std::vector<idx> lm_l2c;     ///< local λ -> cluster λ
  std::vector<idx> fixing_dofs;
  std::vector<idx> dof_l2g;    ///< local DOF -> global DOF

  [[nodiscard]] idx ndof() const { return sys.ndof; }
  [[nodiscard]] idx num_local_lambdas() const { return b.nrows(); }
  [[nodiscard]] idx kernel_dim() const { return r.cols(); }
};

struct FetiProblem {
  fem::Physics physics = fem::Physics::HeatTransfer;
  int dim = 2;
  idx num_lambdas = 0;          ///< cluster-wide dual dimension
  idx global_dofs = 0;
  std::vector<double> c;        ///< constraint right-hand side
  std::vector<FetiSubdomain> sub;

  [[nodiscard]] idx num_subdomains() const {
    return static_cast<idx>(sub.size());
  }
  [[nodiscard]] idx total_kernel_dim() const {
    idx t = 0;
    for (const auto& s : sub) t += s.kernel_dim();
    return t;
  }
  /// Largest subdomain primal dimension (the paper's per-subdomain DOFs).
  [[nodiscard]] idx max_subdomain_dofs() const {
    idx t = 0;
    for (const auto& s : sub) t = std::max(t, s.ndof());
    return t;
  }
};

/// Assembles the complete FETI problem from a mesh decomposition.
FetiProblem build_feti_problem(const mesh::Decomposition& dec,
                               fem::Physics physics,
                               const fem::Material& material = {},
                               Redundancy redundancy = Redundancy::Full);

/// Multi-step support: scales all stiffness values by `factor` (pattern
/// unchanged), emulating material coefficients that change between time
/// steps; K_reg is updated consistently. The right-hand side is scaled too,
/// so the exact solution is step-invariant (handy for validation).
void scale_step(FetiProblem& p, double factor);

/// Gathers the subdomain solution vectors into a global solution, averaging
/// the (identical, up to solver tolerance) interface copies.
std::vector<double> gather_solution(
    const FetiProblem& p, const std::vector<std::vector<double>>& u_local);

}  // namespace feti::decomp
