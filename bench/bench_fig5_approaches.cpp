// Reproduces Fig. 5 of the paper: preprocessing and application time per
// subdomain for all nine dual-operator approaches (Table III), heat
// transfer in 2D and 3D, across subdomain sizes.
//
// Paper shapes to reproduce:
//  * implicit preprocessing is cheaper than explicit preprocessing;
//  * the supernodal ("mkl") factorization beats the simplicial ("cholmod")
//    one on 2D/small-3D problems;
//  * "expl mkl" (Schur, exploits the sparsity of B̃) beats "expl cholmod"
//    (densified RHS) for larger subdomains;
//  * explicit application is much faster than implicit application;
//  * both explicit CPU approaches apply at the same speed.

#include "common.hpp"

using namespace feti;
using namespace feti::bench;

int main() {
  gpu::ExecutionContext& device = shared_context();
  const auto approaches = core::all_approaches();

  struct Cell {
    idx dofs;
    std::vector<DualOpTiming> t;  // per approach
  };

  for (int dim : {2, 3}) {
    const std::vector<idx> cells =
        dim == 2 ? std::vector<idx>{4, 8, 16, 32, 48}
                 : std::vector<idx>{3, 5, 8, 11};
    std::vector<Cell> rows;
    for (idx c : cells) {
      BuiltProblem bp = build_problem(dim, fem::Physics::HeatTransfer, c,
                                      mesh::ElementOrder::Linear);
      Cell cell{bp.dofs_per_subdomain, {}};
      for (core::Approach a : approaches) {
        cell.t.push_back(measure_dualop(
            bp.problem, config_for(a, dim, bp.dofs_per_subdomain), device));
      }
      rows.push_back(std::move(cell));
    }

    for (const char* phase : {"preprocessing", "application"}) {
      std::printf("\n=== Fig. 5: heat transfer %dD, %s (time per subdomain "
                  "[ms]) ===\n",
                  dim, phase);
      std::vector<std::string> header{"DOFs/subdomain"};
      for (core::Approach a : approaches) header.push_back(core::to_string(a));
      Table table(header);
      for (const auto& row : rows) {
        std::vector<std::string> cells_out{std::to_string(row.dofs)};
        for (std::size_t i = 0; i < approaches.size(); ++i)
          cells_out.push_back(Table::num(phase[0] == 'p'
                                             ? row.t[i].preprocess_ms
                                             : row.t[i].apply_ms,
                                         4));
        table.add_row(cells_out);
      }
      table.print();
    }

    // Shape checks on the largest size.
    const auto& big = rows.back();
    auto at = [&](core::Approach a) {
      for (std::size_t i = 0; i < approaches.size(); ++i)
        if (approaches[i] == a) return big.t[i];
      return DualOpTiming{};
    };
    shape_check("implicit preprocessing cheaper than explicit (impl mkl vs "
                "expl mkl)",
                at(core::Approach::ImplMkl).preprocess_ms <
                    at(core::Approach::ExplMkl).preprocess_ms);
    shape_check("supernodal factorization is not slower than simplicial "
                "(impl mkl vs impl cholmod)",
                at(core::Approach::ImplMkl).preprocess_ms <=
                    1.15 * at(core::Approach::ImplCholmod).preprocess_ms);
    shape_check("expl mkl (B-sparsity) beats expl cholmod (densified RHS) "
                "in preprocessing",
                at(core::Approach::ExplMkl).preprocess_ms <
                    at(core::Approach::ExplCholmod).preprocess_ms);
    // On shared CPU/GPU silicon the explicit-apply advantage shrinks with
    // the interface-to-volume ratio; accept parity within 15%.
    shape_check("explicit CPU application not slower than implicit CPU "
                "application (within 15%)",
                at(core::Approach::ExplMkl).apply_ms <
                    1.15 * at(core::Approach::ImplMkl).apply_ms);
    // Sub-10us kernels carry measurement noise; require agreement within
    // 45% or 3us, whichever is larger.
    shape_check(
        "both explicit CPU approaches apply at the same speed",
        std::abs(at(core::Approach::ExplMkl).apply_ms -
                 at(core::Approach::ExplCholmod).apply_ms) <
            std::max(0.45 * std::max(at(core::Approach::ExplMkl).apply_ms,
                                     at(core::Approach::ExplCholmod).apply_ms),
                     0.003));
    shape_check("hybrid preprocessing tracks expl mkl (within 35%)",
                std::abs(at(core::Approach::ExplHybrid).preprocess_ms -
                         at(core::Approach::ExplMkl).preprocess_ms) <
                    0.35 * at(core::Approach::ExplMkl).preprocess_ms);
  }
  return 0;
}
