#pragma once

// Analytic regularization of the singular subdomain stiffness matrices
// (fixing nodes, paper reference [11]).
//
// K_reg = K + rho * (E E^T R)(E E^T R)^T, where E selects a small set of
// "fixing" DOFs and R is the (orthonormal) kernel. Provided E^T R has full
// column rank, range(E E^T R) intersects range(K) trivially, which makes
// K_reg^{-1} an *exact* generalized inverse of K — while only adding a tiny
// dense block at the fixing DOFs, so sparsity is preserved.

#include <vector>

#include "fem/physics.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "mesh/grid.hpp"

namespace feti::decomp {

struct Regularization {
  la::Csr k_reg;                  ///< SPD regularized matrix
  std::vector<idx> fixing_dofs;   ///< DOFs carrying the regularization block
  double rho = 0.0;               ///< scaling used
};

/// Selects well-spread fixing nodes for the mesh (1 for heat, 3 for 2D
/// elasticity, 4 for 3D elasticity) and returns their DOF indices.
std::vector<idx> select_fixing_dofs(const mesh::Mesh& mesh,
                                    fem::Physics physics);

/// Builds K_reg from the subdomain stiffness and its orthonormal kernel.
Regularization regularize(const la::Csr& k, la::ConstDenseView kernel,
                          const mesh::Mesh& mesh, fem::Physics physics);

}  // namespace feti::decomp
