// Compares all nine dual-operator approaches (Table III of the paper) on a
// 3D heat-transfer problem: per-approach preprocessing time, application
// time, PCPG iteration count, and the resulting amortization estimate —
// after how many iterations an explicit approach overtakes "impl mkl".

#include <cstdio>
#include <cmath>

#include "core/autotune.hpp"
#include "core/dualop_registry.hpp"
#include "core/feti_solver.hpp"
#include "util/table.hpp"

int main() {
  using namespace feti;

  const idx cells = 8, splits = 2;
  mesh::Mesh m = mesh::make_grid_3d(cells, cells, cells,
                                    mesh::ElementOrder::Linear);
  mesh::Decomposition dec =
      mesh::decompose_3d(m, cells, cells, cells, splits, splits, splits);
  decomp::FetiProblem problem =
      decomp::build_feti_problem(dec, fem::Physics::HeatTransfer);
  std::printf("heat transfer 3D: %d nodes, %zu subdomains, %d multipliers\n\n",
              m.num_nodes, dec.subdomains.size(), problem.num_lambdas);

  gpu::ExecutionContext context(gpu::DeviceConfig::from_env());

  Table table({"approach", "preproc [ms]", "apply/iter [ms]", "iters",
               "residual"});
  double impl_mkl_apply = 0.0, impl_mkl_preproc = 0.0;
  struct Row {
    std::string name;
    double preproc;
    double apply;
  };
  std::vector<Row> rows;

  // Every implementation registered in the dual-operator registry — new
  // approaches show up here without touching this example.
  auto& registry = core::DualOperatorRegistry::instance();
  for (const std::string& key : registry.keys()) {
    core::FetiSolverOptions opts;
    opts.dualop = core::recommend_config(key, 3,
                                         problem.max_subdomain_dofs());
    // The PCPG tolerance must sit above the operator's noise floor: the
    // fp32-storage keys cannot be iterated below cond(F̃) × fp32 eps,
    // and this 3D problem's dual operator is conditioned around 1e3.
    const bool f32 =
        registry.info(key).axes.precision == core::Precision::F32;
    opts.pcpg.rel_tolerance = f32 ? 1e-4 : 1e-9;
    core::FetiSolver solver(problem, opts, &context);
    solver.prepare();
    core::FetiStepResult res = solver.solve_step();
    const double apply_per_iter =
        res.pcpg_iterations > 0 ? res.apply_seconds / (res.pcpg_iterations + 1) : 0.0;
    table.add_row({key, Table::num(res.preprocess_seconds * 1e3, 3),
                   Table::num(apply_per_iter * 1e3, 4),
                   std::to_string(res.pcpg_iterations),
                   Table::sci(res.rel_residual, 1)});
    rows.push_back({key, res.preprocess_seconds, apply_per_iter});
    if (key == "impl mkl") {
      impl_mkl_apply = apply_per_iter;
      impl_mkl_preproc = res.preprocess_seconds;
    }
  }
  table.print();

  // Amortization analysis (paper Section V-C): the iteration count after
  // which an approach's total time beats "impl mkl".
  std::printf("\namortization vs impl mkl (preproc + k * apply):\n");
  for (const auto& row : rows) {
    if (row.name == "impl mkl" || row.apply >= impl_mkl_apply) continue;
    const double k = (row.preproc - impl_mkl_preproc) /
                     (impl_mkl_apply - row.apply);
    std::printf("  %-13s pays off after %6.1f iterations\n",
                row.name.c_str(), std::max(0.0, k));
  }
  return 0;
}
