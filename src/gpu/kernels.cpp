#include "gpu/kernels.hpp"

#include <algorithm>

namespace feti::gpu::kernels {

void scatter_batch(Stream& s, const double* cluster,
                   std::vector<DualMap> jobs) {
  s.submit([cluster, jobs = std::move(jobs)] {
    for (const auto& j : jobs)
      for (idx i = 0; i < j.n; ++i) j.local[i] = cluster[j.map[i]];
  });
}

void gather_batch(Stream& s, double* cluster, idx cluster_size,
                  std::vector<DualMap> jobs) {
  s.submit([cluster, cluster_size, jobs = std::move(jobs)] {
    std::fill_n(cluster, cluster_size, 0.0);
    for (const auto& j : jobs)
      for (idx i = 0; i < j.n; ++i) cluster[j.map[i]] += j.local[i];
  });
}

void fill_zero(Stream& s, double* data, idx n) {
  s.submit([data, n] { std::fill_n(data, n, 0.0); });
}

}  // namespace feti::gpu::kernels
