#pragma once

// Gauss quadrature rules on reference simplices (triangle, tetrahedron).
// Reference triangle: vertices (0,0), (1,0), (0,1); area 1/2.
// Reference tetrahedron: vertices at the origin and unit axes; volume 1/6.

#include <array>
#include <vector>

#include "util/common.hpp"

namespace feti::fem {

struct QuadraturePoint {
  std::array<double, 3> xi;  ///< reference coordinates (z unused in 2D)
  double weight;             ///< includes the reference simplex measure
};

/// Returns a rule exact for polynomials up to `degree` on the reference
/// simplex of dimension `dim` (2 or 3). Supported degrees: 1..4.
std::vector<QuadraturePoint> simplex_rule(int dim, int degree);

}  // namespace feti::fem
