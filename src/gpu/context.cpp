#include "gpu/context.hpp"

#include <algorithm>
#include <thread>

namespace feti::gpu {

// ---------------------------------------------------------------------------
// ExecutionContext
// ---------------------------------------------------------------------------

int ExecutionContext::clamp_streams(int requested) {
  return std::max(1, std::min(requested, kMaxStreams));
}

ExecutionContext::ExecutionContext(Device& device) : device_(&device) {}

ExecutionContext::ExecutionContext(DeviceConfig cfg)
    : owned_(std::make_unique<Device>(cfg)), device_(owned_.get()) {}

Stream ExecutionContext::main_stream() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!main_.valid()) main_ = device_->create_stream();
  return main_;
}

std::vector<Stream> ExecutionContext::stream_span(int requested) {
  const int n = clamp_streams(requested);
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(pool_.size()) < n)
    pool_.push_back(device_->create_stream());
  return {pool_.begin(), pool_.begin() + n};
}

int ExecutionContext::pooled_streams() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(pool_.size());
}

void ExecutionContext::ensure_workspace() { device_->ensure_temp_pool(); }

void ExecutionContext::init_workspace(std::size_t reserve) {
  device_->init_temp_pool(reserve);
}

TempAllocator& ExecutionContext::workspace() { return device_->temp(); }

void ExecutionContext::synchronize() { device_->synchronize(); }

// ---------------------------------------------------------------------------
// DevicePool
// ---------------------------------------------------------------------------

DevicePool::DevicePool(int num_shards, const DeviceConfig& per_shard_cfg) {
  check(num_shards >= 1, "DevicePool: need at least one shard");
  owned_.reserve(static_cast<std::size_t>(num_shards));
  contexts_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    owned_.push_back(std::make_unique<Device>(per_shard_cfg));
    contexts_.push_back(std::make_unique<ExecutionContext>(*owned_.back()));
  }
}

DevicePool::DevicePool(const std::vector<Device*>& devices) {
  check(!devices.empty(), "DevicePool: need at least one device");
  contexts_.reserve(devices.size());
  for (Device* d : devices) {
    check(d != nullptr, "DevicePool: null device");
    contexts_.push_back(std::make_unique<ExecutionContext>(*d));
  }
}

ExecutionContext& DevicePool::context(std::size_t shard) {
  check(shard < contexts_.size(), "DevicePool::context: shard out of range");
  return *contexts_[shard];
}

Device& DevicePool::device(std::size_t shard) {
  return context(shard).device();
}

std::vector<idx> DevicePool::owned_subdomains(std::size_t shard,
                                             idx num_subdomains) const {
  check(shard < contexts_.size(),
        "DevicePool::owned_subdomains: shard out of range");
  std::vector<idx> out;
  for (idx s = static_cast<idx>(shard); s < num_subdomains;
       s += static_cast<idx>(size()))
    out.push_back(s);
  return out;
}

DeviceTopology DevicePool::topology() const {
  DeviceTopology t;
  t.num_devices = static_cast<int>(size());
  t.streams_per_device = contexts_.front()->device().config().worker_threads;
  return t;
}

void DevicePool::synchronize() {
  for (auto& ctx : contexts_) ctx->synchronize();
}

void DevicePool::Lease::release() {
  if (pool_ == nullptr) return;
  std::lock_guard<std::mutex> lock(pool_->lease_mutex_);
  --pool_->active_leases_[shard_];
  pool_ = nullptr;
}

DevicePool::Lease DevicePool::acquire() {
  std::lock_guard<std::mutex> lock(lease_mutex_);
  if (active_leases_.size() != contexts_.size())
    active_leases_.assign(contexts_.size(), 0);
  std::size_t best = 0;
  for (std::size_t s = 1; s < active_leases_.size(); ++s)
    if (active_leases_[s] < active_leases_[best]) best = s;
  ++active_leases_[best];
  return Lease(this, best);
}

DevicePool::Lease DevicePool::acquire(std::size_t shard) {
  check(shard < contexts_.size(), "DevicePool::acquire: shard out of range");
  std::lock_guard<std::mutex> lock(lease_mutex_);
  if (active_leases_.size() != contexts_.size())
    active_leases_.assign(contexts_.size(), 0);
  ++active_leases_[shard];
  return Lease(this, shard);
}

int DevicePool::active_leases(std::size_t shard) const {
  check(shard < contexts_.size(),
        "DevicePool::active_leases: shard out of range");
  std::lock_guard<std::mutex> lock(lease_mutex_);
  return shard < active_leases_.size() ? active_leases_[shard] : 0;
}

DeviceConfig DevicePool::split_config(DeviceConfig total, int num_shards) {
  check(num_shards >= 1, "DevicePool::split_config: need at least one shard");
  int workers = total.worker_threads;
  if (workers <= 0)
    workers = static_cast<int>(std::thread::hardware_concurrency());
  total.worker_threads = std::max(1, workers / num_shards);
  total.memory_bytes =
      std::max<std::size_t>(total.memory_bytes / num_shards, 1u << 20);
  return total;
}

}  // namespace feti::gpu
