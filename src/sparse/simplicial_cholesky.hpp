#pragma once

// Simplicial (up-looking) sparse Cholesky — the CHOLMOD stand-in.
//
// Stores the factor as U = L^T in CSR with the diagonal first in each row,
// which is simultaneously L in CSC — the natural format both for the
// up-looking numeric kernel and for feeding the GPU assembly (which wants the
// factor in either CSR or CSC depending on the Table-I "factor order"
// parameter).

#include "sparse/etree.hpp"
#include "sparse/solver.hpp"

namespace feti::sparse {

class SimplicialCholesky final : public DirectSolver {
 public:
  void analyze(const la::Csr& a, OrderingKind ordering) override;
  void factorize(const la::Csr& a) override;
  void solve(const double* b, double* x) const override;

  [[nodiscard]] idx dim() const override { return n_; }
  [[nodiscard]] widx factor_nnz() const override { return sym_.nnz; }
  [[nodiscard]] const std::vector<idx>& permutation() const override {
    return perm_;
  }

  [[nodiscard]] bool supports_factor_extraction() const override {
    return true;
  }
  [[nodiscard]] const la::Csr& factor_lower() const override;
  [[nodiscard]] const la::Csr& factor_upper() const override;

  /// Elimination tree of the permuted matrix (exposed for tests).
  [[nodiscard]] const SymbolicFactor& symbolic() const { return sym_; }

  /// Factor structure (pattern, values zero until factorize()) available
  /// right after analyze(); the GPU preparation phase uses it to create
  /// triangular-solve plans before any numeric factorization has run.
  [[nodiscard]] const la::Csr& factor_upper_structure() const {
    check(analyzed_, "factor_upper_structure: analyze() first");
    return upper_;
  }

 private:
  idx n_ = 0;
  bool analyzed_ = false;
  bool factorized_ = false;
  std::vector<idx> perm_, iperm_;
  SymbolicFactor sym_;
  /// Permuted pattern with value_map_ routing original values into it.
  la::Csr ap_;
  std::vector<idx> value_map_;
  /// U = L^T, CSR, diagonal first per row; structure fixed by analyze().
  la::Csr upper_;
  mutable la::Csr lower_;
  mutable bool lower_valid_ = false;
};

}  // namespace feti::sparse
