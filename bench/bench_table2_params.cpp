// Reproduces Table II of the paper: the exhaustive search over the
// explicit-assembly parameter space (Table I) and the resulting optimal
// settings per (CUDA API generation, dimensionality, subdomain size).
// The SYRK path has no backward solve, so its backward parameters are not
// swept (the paper's Table I structure).

#include <limits>

#include "common.hpp"

using namespace feti;
using namespace feti::bench;
using core::FactorStorage;
using core::Path;

namespace {

struct SweepResult {
  core::ExplicitGpuOptions best;
  double best_ms = std::numeric_limits<double>::max();
  int configs = 0;
};

SweepResult sweep(decomp::FetiProblem& p, gpu::sparse::Api api,
                  gpu::ExecutionContext& dev) {
  SweepResult out;
  const auto layouts = {la::Layout::RowMajor, la::Layout::ColMajor};
  const auto storages = {FactorStorage::Sparse, FactorStorage::Dense};
  auto try_config = [&](const core::ExplicitGpuOptions& opt) {
    core::DualOpConfig cfg;
    cfg.approach = api == gpu::sparse::Api::Legacy
                       ? core::Approach::ExplLegacy
                       : core::Approach::ExplModern;
    cfg.gpu = opt;
    const double ms =
        measure_dualop(p, cfg, dev, 2, 0.01).preprocess_ms;
    out.configs += 1;
    if (ms < out.best_ms) {
      out.best_ms = ms;
      out.best = opt;
    }
  };
  for (FactorStorage fst : storages)
    for (la::Layout ford : layouts)
      for (la::Layout rhs : layouts) {
        core::ExplicitGpuOptions opt;
        opt.fwd_storage = fst;
        opt.fwd_order = ford;
        opt.rhs_order = rhs;
        opt.path = Path::Syrk;
        try_config(opt);
        for (FactorStorage bst : storages)
          for (la::Layout bord : layouts) {
            opt.path = Path::Trsm;
            opt.bwd_storage = bst;
            opt.bwd_order = bord;
            try_config(opt);
          }
      }
  return out;
}

}  // namespace

int main() {
  gpu::ExecutionContext& device = shared_context();
  Table table({"API", "dim", "DOFs/subdomain", "configs", "best [ms]",
               "optimal parameters"});
  int syrk_wins = 0, total_cells = 0;
  bool modern_always_dense = true;

  for (auto api : {gpu::sparse::Api::Legacy, gpu::sparse::Api::Modern}) {
    for (int dim : {2, 3}) {
      const std::vector<idx> cells =
          dim == 2 ? std::vector<idx>{8, 24} : std::vector<idx>{4, 8};
      for (idx c : cells) {
        BuiltProblem bp = build_problem(dim, fem::Physics::HeatTransfer, c,
                                        mesh::ElementOrder::Linear);
        SweepResult res = sweep(bp.problem, api, device);
        table.add_row({gpu::sparse::to_string(api), std::to_string(dim),
                       std::to_string(bp.dofs_per_subdomain),
                       std::to_string(res.configs),
                       Table::num(res.best_ms, 4), res.best.describe()});
        total_cells += 1;
        if (res.best.path == Path::Syrk) syrk_wins += 1;
        if (api == gpu::sparse::Api::Modern &&
            res.best.fwd_storage != FactorStorage::Dense)
          modern_always_dense = false;
      }
    }
  }
  std::printf("=== Table II: optimal explicit-assembly parameters "
              "(exhaustive sweep) ===\n");
  table.print();
  shape_check("SYRK path optimal for the (large) majority of problems",
              syrk_wins * 2 >= total_cells);
  shape_check("modern API always prefers dense factor storage",
              modern_always_dense);
  return 0;
}
